// Allocation budgets for the hot kernels, pinned to the numbers
// recorded in BENCH_plane.json and BENCH_parallel.json. `make ci` runs
// this test (the alloc-budget target): a change that makes any kernel
// allocate more per call than its recorded budget fails the build, so
// alloc regressions can't slip in silently behind unchanged ns/op on a
// noisy shared host. Budgets are per-call allocation counts — they are
// host-independent, unlike wall-clock numbers.
package coruscant

import (
	"testing"

	"repro/internal/dbc"
	"repro/internal/params"
	"repro/internal/pim"
)

// allocBudget runs f through testing.AllocsPerRun and fails if the
// per-call allocation count exceeds the recorded budget.
func allocBudget(t *testing.T, name string, budget float64, f func()) {
	t.Helper()
	got := testing.AllocsPerRun(32, f)
	t.Logf("%s: %.1f allocs/op (budget %.0f)", name, got, budget)
	if got > budget {
		t.Errorf("%s: %.1f allocs/op exceeds the recorded budget of %.0f", name, got, budget)
	}
}

// TestAllocBudget pins the per-call allocation counts of the PIM
// kernels (the BENCH_plane.json rows) and of the batch execution paths
// (the BENCH_parallel.json rows). Budgets are the recorded numbers.
func TestAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation inflates allocation counts; budgets are pinned by the non-race ci run (make alloc-budget)")
	}
	u := pim.MustNewUnit(params.DefaultConfig())

	addRows := make([]dbc.Row, 5)
	vals := make([]uint64, 64)
	for i := range vals {
		vals[i] = uint64(i * 3 % 256)
	}
	for i := range addRows {
		addRows[i] = pim.MustPackLanes(vals, 8, 512)
	}
	allocBudget(t, "AddMulti", 2, func() {
		if _, err := u.AddMulti(addRows, 8); err != nil {
			t.Fatal(err)
		}
	})

	xorRows := make([]dbc.Row, 7)
	for i := range xorRows {
		xorRows[i] = dbc.NewRow(512)
		for j := 0; j < 512; j++ {
			xorRows[i].Set(j, uint8((i+j)%2))
		}
	}
	allocBudget(t, "BulkBitwise", 1, func() {
		if _, err := u.BulkBitwise(dbc.OpXOR, xorRows); err != nil {
			t.Fatal(err)
		}
	})

	mulVals := make([]uint64, 32)
	for i := range mulVals {
		mulVals[i] = uint64(i*7 + 3)
	}
	allocBudget(t, "Multiply", 31, func() {
		if _, err := u.MultiplyValues(mulVals, mulVals, 8); err != nil {
			t.Fatal(err)
		}
	})

	maxRows := make([]dbc.Row, 7)
	for i := range maxRows {
		mv := make([]uint64, 64)
		for j := range mv {
			mv[j] = uint64((i*37 + j*11) % 256)
		}
		maxRows[i] = pim.MustPackLanes(mv, 8, 512)
	}
	// The ISSUE acceptance bound is ≤ 8; the kernel measures 1 (one
	// result-row allocation) after the transverse-read scratch moved
	// into the unit's reusable buffers.
	allocBudget(t, "MaxTR", 8, func() {
		if _, err := u.MaxTR(maxRows, 8); err != nil {
			t.Fatal(err)
		}
	})

	// Batch paths: the 32-request fixture from bench_parallel_test.go.
	// Budgets are per batch (32 requests), matching BENCH_parallel.json.
	m, reqs := batchFixture(t)
	allocBudget(t, "BatchSerial", 480, func() {
		for _, r := range reqs {
			if _, err := m.Execute(r.In, r.Operands, r.Dst); err != nil {
				t.Fatal(err)
			}
		}
	})
	m.SetWorkers(1)
	allocBudget(t, "ExecuteBatch/workers=1", 289, func() {
		for _, res := range m.ExecuteBatch(reqs) {
			if res.Err != nil {
				t.Fatal(res.Err)
			}
		}
	})
}
