// Pipelined-schedule benchmarks (recorded in BENCH_pipeline.json): every
// example pimasm program compiled at -O1 (placement-aware, level-barrier
// schedule) and -O2 (pipelined windows) and executed on a fresh memory.
// ns/op tracks end-to-end compile+run latency; the interesting outputs
// are the custom metrics — `makespan` (critical-path cycles, what -O2
// shrinks by overlapping staging with compute) and `cycles` (the serial
// device-cycle sum, which pipelining must NOT change: the same work is
// done, only scheduled wider).
package coruscant

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/isa/compile"
	"repro/internal/memory"
	"repro/internal/params"
	"repro/internal/pim"
)

// pipelineRun compiles src at the given level, seeds its load rows
// deterministically, runs the plan, and returns the run's telemetry
// cycle count and makespan.
func pipelineRun(tb testing.TB, cfg params.Config, src string, level int) (uint64, uint64) {
	tb.Helper()
	res, err := compile.Compile(src, cfg, compile.Options{Level: level})
	if err != nil {
		tb.Fatalf("compile -O%d: %v", level, err)
	}
	m, err := memory.New(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	g := cfg.Geometry
	inputs := append([]compile.Output(nil), res.Inputs...)
	sort.Slice(inputs, func(i, j int) bool { return inputs[i].Addr.Linear(g) < inputs[j].Addr.Linear(g) })
	for i, in := range inputs {
		rng := rand.New(rand.NewSource(int64(i)*2654435761 + 99))
		lanes := make([]uint64, g.TrackWidth/8)
		for l := range lanes {
			lanes[l] = rng.Uint64() & 0xFF
		}
		if err := m.WriteRow(in.Addr, pim.MustPackLanes(lanes, 8, g.TrackWidth)); err != nil {
			tb.Fatal(err)
		}
	}
	if err := res.Plan.Run(m); err != nil {
		tb.Fatalf("run -O%d: %v", level, err)
	}
	return m.Recorder().Cycle(), m.Recorder().Makespan()
}

// BenchmarkPipeline runs the example corpus at -O1 and -O2 and reports
// makespan and cycles alongside wall-clock compile+run cost. The -O2
// rows' makespan against the matching -O1 rows is the pinned claim
// (also asserted by compile's TestPipelinedCorpus: never worse per
// program, ≥10% shorter over the corpus).
func BenchmarkPipeline(b *testing.B) {
	files, err := filepath.Glob(filepath.Join("examples", "pimasm", "*.pimasm"))
	if err != nil || len(files) == 0 {
		b.Fatalf("example corpus not found: %v", err)
	}
	cfg := params.DefaultConfig()
	for _, f := range files {
		srcBytes, err := os.ReadFile(f)
		if err != nil {
			b.Fatal(err)
		}
		src := string(srcBytes)
		name := filepath.Base(f)
		for _, level := range []int{1, 2} {
			b.Run(fmt.Sprintf("%s/O%d", name, level), func(b *testing.B) {
				var cycles, makespan uint64
				for i := 0; i < b.N; i++ {
					cycles, makespan = pipelineRun(b, cfg, src, level)
				}
				b.ReportMetric(float64(makespan), "makespan")
				b.ReportMetric(float64(cycles), "cycles")
			})
		}
	}
}
