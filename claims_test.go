package coruscant_test

import (
	"strconv"
	"testing"

	coruscant "repro"
)

// TestAbstractClaims is the acceptance test for the reproduction: every
// quantitative claim in the paper's abstract must hold in this
// implementation (within the tolerance bands recorded in
// EXPERIMENTS.md). It exercises only the public façade.
func TestAbstractClaims(t *testing.T) {
	// "CORUSCANT provides a 1.6× speedup compared to the leading DRAM
	// PIM technique for query applications."
	t.Run("bitmap-query-1.6x", func(t *testing.T) {
		tb, err := coruscant.Experiment("fig12")
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, row := range tb.Rows {
			if row[0] == "2" && row[1] == "CORUSCANT" {
				found = true
				v, err := strconv.ParseFloat(row[4], 64)
				if err != nil {
					t.Fatal(err)
				}
				if v < 1.4 || v > 1.9 {
					t.Errorf("w=2 speedup over ELP2IM = %.2f, abstract claims 1.6x", v)
				}
			}
		}
		if !found {
			t.Fatal("fig12 CORUSCANT row missing")
		}
	})

	// "Compared to the leading PIM technique for DWM, CORUSCANT improves
	// performance by 6.9×, 2.3× and energy by 5.5×, 3.4× for 8-bit
	// addition and multiplication."
	t.Run("vs-spim-ops", func(t *testing.T) {
		// One 8-bit lane, matching Table III's per-operation anchors.
		cfg := coruscant.DefaultConfig()
		cfg.Geometry.TrackWidth = 8
		u, err := coruscant.NewUnit(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rows := make([]coruscant.Row, 5)
		for i := range rows {
			rows[i], _ = coruscant.PackLanes([]uint64{uint64(17 * (i + 1))}, 8, 8)
		}
		if _, err := u.AddMulti(rows, 8); err != nil {
			t.Fatal(err)
		}
		// SPIM 5-op add latency-optimized: 179 cycles / 121.6 pJ.
		speed := 179.0 / float64(u.Stats().Cycles())
		energy := 121.6 / u.Cost().EnergyPJ
		if speed < 6.0 || speed > 7.8 {
			t.Errorf("add speedup vs SPIM = %.1f, abstract claims 6.9x", speed)
		}
		if energy < 4.5 || energy > 6.5 {
			t.Errorf("add energy gain vs SPIM = %.1f, abstract claims 5.5x", energy)
		}

		// The multiply needs one 16-bit product lane.
		cfg.Geometry.TrackWidth = 16
		u2, err := coruscant.NewUnit(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := u2.MultiplyValues([]uint64{199}, []uint64{76}, 8); err != nil {
			t.Fatal(err)
		}
		// SPIM 2-op multiply: 149 cycles.
		multSpeed := 149.0 / float64(u2.Stats().Cycles())
		if multSpeed < 1.9 || multSpeed > 3.0 {
			t.Errorf("mult speedup vs SPIM = %.1f, abstract claims 2.3x", multSpeed)
		}
	})

	// "For arithmetic heavy benchmarks, CORUSCANT reduces access latency
	// by 2.1×, while decreasing energy consumption by 25.2× ... versus
	// non-PIM DWM."
	t.Run("polybench-2.1x-25x", func(t *testing.T) {
		lat, err := coruscant.Experiment("fig10")
		if err != nil {
			t.Fatal(err)
		}
		avgRow := lat.Rows[len(lat.Rows)-1]
		v, err := strconv.ParseFloat(avgRow[2], 64)
		if err != nil {
			t.Fatal(err)
		}
		if v < 1.8 || v > 2.5 {
			t.Errorf("average latency gain = %.2f, abstract claims 2.1x", v)
		}
		en, err := coruscant.Experiment("fig11")
		if err != nil {
			t.Fatal(err)
		}
		avgRow = en.Rows[len(en.Rows)-1]
		v, err = strconv.ParseFloat(avgRow[3], 64)
		if err != nil {
			t.Fatal(err)
		}
		if v < 20 || v > 45 {
			t.Errorf("average energy gain = %.1f, abstract claims 25.2x", v)
		}
	})

	// "...for a 10% area overhead."
	t.Run("area-10pct", func(t *testing.T) {
		tb, err := coruscant.Experiment("table1")
		if err != nil {
			t.Fatal(err)
		}
		last := tb.Rows[len(tb.Rows)-1]
		if last[0] != "MUL+ADD5+BBO" {
			t.Fatalf("unexpected final design row %q", last[0])
		}
		if last[1] != "10.0%" {
			t.Errorf("full-design overhead = %s, abstract claims 10%%", last[1])
		}
	})
}
