package coruscant

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/memory"
	"repro/internal/params"
	"repro/internal/pim"
	"repro/internal/reliability"
	"repro/internal/resilient"
	"repro/internal/telemetry"
)

// Recovery: the fault detect/retry/degrade layer (internal/resilient).
type (
	// RecoveryPolicy selects verification mode, retry budget, backoff
	// and quarantine threshold for recovered execution.
	RecoveryPolicy = resilient.Policy
	// VerifyMode is a RecoveryPolicy verification mode.
	VerifyMode = resilient.VerifyMode
	// RecoveryOutcome summarizes one recovered execution.
	RecoveryOutcome = resilient.Outcome
	// RecoveryExecutor runs operations on one Unit under a policy.
	RecoveryExecutor = resilient.Executor
	// HealthReport is a Memory's health-ledger snapshot.
	HealthReport = memory.HealthReport
	// QuarantineRecord describes one quarantined (remapped) DBC.
	QuarantineRecord = memory.QuarantineRecord
	// FaultProfile is per-DBC deterministic fault injection; unlike a
	// global FaultInjector it keeps ExecuteBatch parallel.
	FaultProfile = memory.FaultProfile
	// Campaign is a Monte Carlo fault sweep through the recovered path.
	Campaign = reliability.Campaign
	// CampaignReport is the outcome of a Campaign.
	CampaignReport = reliability.CampaignReport
)

// Verification modes.
const (
	VerifyOff = resilient.VerifyOff
	VerifyNMR = resilient.VerifyNMR
	VerifyDup = resilient.VerifyDup
)

// DefaultRecoveryPolicy returns the reference protection level (NMR-3
// with a small retry budget).
func DefaultRecoveryPolicy() RecoveryPolicy { return resilient.DefaultPolicy() }

// ParseRecoveryPolicy decodes "off", "dup", "nmr3", "nmr5" or "nmr7".
func ParseRecoveryPolicy(s string) (RecoveryPolicy, error) { return resilient.ParsePolicy(s) }

// NewRecoveryExecutor wraps a Unit with a recovery policy for direct
// (non-Memory) recovered execution.
func NewRecoveryExecutor(u *Unit, p RecoveryPolicy) (*RecoveryExecutor, error) {
	return resilient.NewExecutor(u, p)
}

// Error taxonomy. Every sentinel is wrapped with %w by the layer that
// detects the condition, so errors.Is works through the whole stack.
var (
	// ErrBadTRD reports an invalid transverse-read distance or an
	// operand/redundancy count that exceeds the TR window.
	ErrBadTRD = params.ErrBadTRD
	// ErrLaneOverflow reports a value or lane count that overflows the
	// lane layout.
	ErrLaneOverflow = pim.ErrLaneOverflow
	// ErrQuarantined reports an access to a DBC the health ledger took
	// out of service.
	ErrQuarantined = memory.ErrQuarantined
	// ErrUnverified reports a result that failed verification after the
	// retry budget under a policy that cannot correct (VerifyDup).
	ErrUnverified = resilient.ErrUnverified
)

// options collects the construction-time attachments shared by the
// NewUnit/NewMemory/NewController option lists.
type options struct {
	rec        *telemetry.Recorder
	recSet     bool
	inj        *FaultInjector
	injSet     bool
	pol        RecoveryPolicy
	polSet     bool
	workers    int
	workersSet bool
}

// Option configures a Unit, Memory or Controller at construction.
// Options not applicable to the constructed type are an error, so a
// misplaced attachment fails loudly instead of being silently dropped.
type Option func(*options)

// WithTelemetry attaches a telemetry recorder at construction
// (replacing a later SetTelemetry call). Applies to NewUnit, NewMemory
// and NewController.
func WithTelemetry(rec *Recorder) Option {
	return func(o *options) { o.rec, o.recSet = rec, true }
}

// WithFaults attaches a fault injector at construction. Applies to
// NewUnit, NewMemory (as the global, batch-serializing injector; see
// Memory.SetFaultProfile for the parallel per-DBC form) and
// NewController.
func WithFaults(inj *FaultInjector) Option {
	return func(o *options) { o.inj, o.injSet = inj, true }
}

// WithRecovery installs a recovery policy at construction. Applies to
// NewMemory and NewController.
func WithRecovery(p RecoveryPolicy) Option {
	return func(o *options) { o.pol, o.polSet = p, true }
}

// WithWorkers sets the ExecuteBatch worker-pool size. Applies to
// NewMemory.
func WithWorkers(n int) Option {
	return func(o *options) { o.workers, o.workersSet = n, true }
}

// gather folds an option list.
func gather(opts []Option) options {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// UnitSource is the telemetry source label of a standalone Unit built
// through the façade.
const UnitSource = telemetry.Source("unit")

// NewUnit builds a PIM unit for the configuration. Accepts
// WithTelemetry and WithFaults.
func NewUnit(cfg Config, opts ...Option) (*Unit, error) {
	o := gather(opts)
	if o.polSet {
		return nil, fmt.Errorf("coruscant: WithRecovery does not apply to NewUnit (wrap the unit with NewRecoveryExecutor)")
	}
	if o.workersSet {
		return nil, fmt.Errorf("coruscant: WithWorkers does not apply to NewUnit")
	}
	u, err := pim.NewUnit(cfg)
	if err != nil {
		return nil, err
	}
	if o.recSet {
		u.SetTelemetry(o.rec, UnitSource)
	}
	if o.injSet {
		u.D.SetFaultInjector(o.inj)
	}
	return u, nil
}

// NewMemory returns an empty functional memory (clusters materialize
// lazily, so the full 1 GB geometry is addressable). Accepts
// WithTelemetry, WithFaults, WithRecovery and WithWorkers.
func NewMemory(cfg Config, opts ...Option) (*Memory, error) {
	o := gather(opts)
	m, err := memory.New(cfg)
	if err != nil {
		return nil, err
	}
	if o.recSet {
		m.SetTelemetry(o.rec)
	}
	if o.injSet {
		m.SetFaultInjector(o.inj)
	}
	if o.workersSet {
		m.SetWorkers(o.workers)
	}
	if o.polSet {
		if err := m.SetRecovery(o.pol); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// ShardPool is a fixed set of independent Memory shards behind one
// owner — the substrate of the coruscantd service front end. Shards
// share nothing, so pool-level parallelism stacks on each shard's
// bank-level parallelism. Routing is the caller's concern (the service
// routes by explicit shard id or tenant hash).
type ShardPool = memory.Pool

// NewShardPool builds n independent memory shards of one
// configuration. Accepts WithWorkers and WithRecovery, applied to
// every shard. WithTelemetry and WithFaults are errors here: one
// shared recorder or injector would serialize the shards — attach
// per-shard observability through the service layer (service.Config
// Telemetry/Sinks) or per shard via Shard(i).SetTelemetry.
func NewShardPool(cfg Config, n int, opts ...Option) (*ShardPool, error) {
	o := gather(opts)
	if o.recSet {
		return nil, fmt.Errorf("coruscant: WithTelemetry does not apply to NewShardPool (one recorder would serialize the shards; attach per shard via Shard(i).SetTelemetry or through the service layer)")
	}
	if o.injSet {
		return nil, fmt.Errorf("coruscant: WithFaults does not apply to NewShardPool (attach per shard via Shard(i).SetFaultInjector)")
	}
	p, err := memory.NewPool(cfg, n)
	if err != nil {
		return nil, err
	}
	if o.workersSet {
		p.SetWorkers(o.workers)
	}
	if o.polSet {
		if err := p.SetRecovery(o.pol); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// NewController builds a cpim controller over a fresh PIM unit. Accepts
// WithTelemetry, WithFaults and WithRecovery.
func NewController(cfg Config, opts ...Option) (*Controller, error) {
	o := gather(opts)
	if o.workersSet {
		return nil, fmt.Errorf("coruscant: WithWorkers does not apply to NewController")
	}
	c, err := isa.NewController(cfg)
	if err != nil {
		return nil, err
	}
	if o.recSet {
		c.Unit.SetTelemetry(o.rec, UnitSource)
	}
	if o.injSet {
		c.Unit.D.SetFaultInjector(o.inj)
	}
	if o.polSet {
		if err := c.SetRecovery(o.pol); err != nil {
			return nil, err
		}
	}
	return c, nil
}
