package coruscant

import (
	"testing"

	"repro/internal/dbc"
	"repro/internal/params"
	"repro/internal/pim"
)

// Ablation benchmarks for the design choices the paper motivates:
// transverse write vs whole-nanowire shifting (§IV-B), carry-save
// reduction vs chained additions (§III-D3), per-step vs end-of-add NMR
// voting (§III-F), and the TRD sensitivity (§V-E). Each reports the
// device-cycle cost as a metric so a bench run documents the trade-off.

// BenchmarkAblationMaxTW compares the TW-based max rotation against the
// whole-nanowire-shift baseline; the paper claims a 28.5% cycle saving.
func BenchmarkAblationMaxTW(b *testing.B) {
	mk := func() []dbc.Row {
		cands := make([]dbc.Row, 7)
		for i := range cands {
			vals := make([]uint64, 8)
			for l := range vals {
				vals[l] = uint64((i*53 + l*17) % 256)
			}
			cands[i] = pim.MustPackLanes(vals, 8, 64)
		}
		return cands
	}
	cfg := params.DefaultConfig()
	cfg.Geometry.TrackWidth = 64
	var twCycles, fsCycles int
	for i := 0; i < b.N; i++ {
		u := pim.MustNewUnit(cfg)
		if _, err := u.MaxTR(mk(), 8); err != nil {
			b.Fatal(err)
		}
		twCycles = u.Stats().Cycles()
		u2 := pim.MustNewUnit(cfg)
		if _, err := u2.MaxTRFullShift(mk(), 8); err != nil {
			b.Fatal(err)
		}
		fsCycles = u2.Stats().Cycles()
	}
	b.ReportMetric(float64(twCycles), "tw-cycles")
	b.ReportMetric(float64(fsCycles), "fullshift-cycles")
	b.ReportMetric(100*(1-float64(twCycles)/float64(fsCycles)), "saving-%")
}

// BenchmarkAblationCSAReduction compares the carry-save large addition
// against chained multi-operand adds for a 33-operand reduction.
func BenchmarkAblationCSAReduction(b *testing.B) {
	cfg := params.DefaultConfig()
	cfg.Geometry.TrackWidth = 64
	operands := make([]dbc.Row, 33)
	for i := range operands {
		operands[i] = pim.MustPackLanes([]uint64{uint64(i * 999)}, 32, 64)
	}
	var csa, chained int
	for i := 0; i < b.N; i++ {
		u := pim.MustNewUnit(cfg)
		if _, err := u.AddLarge(operands, 32); err != nil {
			b.Fatal(err)
		}
		csa = u.Stats().Cycles()
		u2 := pim.MustNewUnit(cfg)
		if _, err := u2.AddChained(operands, 32); err != nil {
			b.Fatal(err)
		}
		chained = u2.Stats().Cycles()
	}
	b.ReportMetric(float64(csa), "csa-cycles")
	b.ReportMetric(float64(chained), "chained-cycles")
	b.ReportMetric(float64(chained)/float64(csa), "speedup")
}

// BenchmarkAblationTRD sweeps the transverse-read distance over the
// 8-bit multiply (the §V-E sensitivity study's core operation).
func BenchmarkAblationTRD(b *testing.B) {
	cycles := map[params.TRD]int{}
	for i := 0; i < b.N; i++ {
		for _, trd := range []params.TRD{params.TRD3, params.TRD5, params.TRD7} {
			cfg := params.DefaultConfig()
			cfg.TRD = trd
			cfg.Geometry.TrackWidth = 16
			u := pim.MustNewUnit(cfg)
			if _, err := u.MultiplyValues([]uint64{201}, []uint64{57}, 8); err != nil {
				b.Fatal(err)
			}
			cycles[trd] = u.Stats().Cycles()
		}
	}
	b.ReportMetric(float64(cycles[params.TRD3]), "mult-cycles-trd3")
	b.ReportMetric(float64(cycles[params.TRD5]), "mult-cycles-trd5")
	b.ReportMetric(float64(cycles[params.TRD7]), "mult-cycles-trd7")
}

// BenchmarkAblationNMRVoting compares per-step against end-of-operation
// TMR for the 8-bit add (the §III-F performance side of the trade-off;
// the reliability side is in the reliability package).
func BenchmarkAblationNMRVoting(b *testing.B) {
	cfg := params.DefaultConfig()
	cfg.Geometry.TrackWidth = 8
	a := pim.MustPackLanes([]uint64{123}, 8, 8)
	c := pim.MustPackLanes([]uint64{99}, 8, 8)
	var perStep, end int
	for i := 0; i < b.N; i++ {
		u := pim.MustNewUnit(cfg)
		if _, err := u.AddMultiNMR(3, []dbc.Row{a, c}, 8); err != nil {
			b.Fatal(err)
		}
		perStep = u.Stats().Cycles()
		u2 := pim.MustNewUnit(cfg)
		if _, err := u2.RunNMR(3, func() (dbc.Row, error) {
			return u2.AddMulti([]dbc.Row{a, c}, 8)
		}); err != nil {
			b.Fatal(err)
		}
		end = u2.Stats().Cycles()
	}
	b.ReportMetric(float64(perStep), "per-step-cycles")
	b.ReportMetric(float64(end), "end-vote-cycles")
}
