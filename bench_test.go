// Benchmarks regenerating every table and figure of the paper's
// evaluation (run with `go test -bench=. -benchmem`), plus
// micro-benchmarks of the core PIM operations. Each experiment benchmark
// reports the headline quantity of its table/figure as a custom metric,
// so a bench run doubles as a reproduction log.
package coruscant

import (
	"strconv"
	"testing"

	"repro/internal/area"
	"repro/internal/baseline/spim"
	"repro/internal/dbc"
	"repro/internal/experiments"
	"repro/internal/mem"
	"repro/internal/params"
	"repro/internal/pim"
	"repro/internal/reliability"
	"repro/internal/workloads/bitmapidx"
	"repro/internal/workloads/cnn"
	"repro/internal/workloads/polybench"
)

// --- Experiment benchmarks (one per table/figure) -------------------------

// BenchmarkTable1 regenerates the PIM area-overhead table; the reported
// metric is the full-design overhead percentage (paper: 10.0%).
func BenchmarkTable1(b *testing.B) {
	var overhead float64
	for i := 0; i < b.N; i++ {
		overhead = area.TableI(params.DefaultGeometry())[area.Full]
	}
	b.ReportMetric(overhead*100, "overhead-%")
}

// BenchmarkTable3 measures the 8-bit five-operand add and multiply on
// the bit-level simulator; metrics are the cycle counts (paper: 26/64)
// and the speedup over SPIM (paper: 6.9×).
func BenchmarkTable3(b *testing.B) {
	cfg := params.DefaultConfig()
	cfg.Geometry.TrackWidth = 16
	var addCycles, multCycles int
	for i := 0; i < b.N; i++ {
		u := pim.MustNewUnit(cfg)
		rows := make([]dbc.Row, 5)
		for j := range rows {
			rows[j] = pim.MustPackLanes([]uint64{uint64(13 * (j + 1))}, 8, 16)
		}
		if _, err := u.AddMulti(rows, 8); err != nil {
			b.Fatal(err)
		}
		addCycles = u.Stats().Cycles()
		u2 := pim.MustNewUnit(cfg)
		if _, err := u2.MultiplyValues([]uint64{173}, []uint64{89}, 8); err != nil {
			b.Fatal(err)
		}
		multCycles = u2.Stats().Cycles()
	}
	b.ReportMetric(float64(addCycles), "add-cycles")
	b.ReportMetric(float64(multCycles), "mult-cycles")
	b.ReportMetric(float64(spim.Add5LatOpt(8).Cycles)/float64(addCycles), "speedup-vs-SPIM")
}

// BenchmarkTable4 regenerates the CNN throughput matrix; the metric is
// the CORUSCANT-7/SPIM full-precision AlexNet speedup (paper: 2.8×).
func BenchmarkTable4(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		cells, err := cnn.Table4()
		if err != nil {
			b.Fatal(err)
		}
		c7, err := cnn.Find(cells, "CORUSCANT-7", cnn.Full, "Alexnet")
		if err != nil {
			b.Fatal(err)
		}
		sp, err := cnn.Find(cells, "SPIM", cnn.Full, "Alexnet")
		if err != nil {
			b.Fatal(err)
		}
		speedup = c7.FPS / sp.FPS
	}
	b.ReportMetric(speedup, "C7/SPIM-x")
}

// BenchmarkTable5 regenerates the reliability table; the metric is the
// TMR-protected 8-bit add error exponent (paper: ≈5.6e-12 → -11.25).
func BenchmarkTable5(b *testing.B) {
	var tmrAdd float64
	for i := 0; i < b.N; i++ {
		p := reliability.DefaultTRFaultProb
		q := reliability.AddErrorRate(8, p) / 8
		var err error
		tmrAdd, err = reliability.NModular(3, q, p, params.TRD7, 8)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(tmrAdd*1e12, "tmr-add-1e-12")
}

// BenchmarkTable6 regenerates the NMR CNN table; the metric is the
// TRD=7 ternary AlexNet TMR throughput (paper: 155.8 FPS).
func BenchmarkTable6(b *testing.B) {
	var fps float64
	for i := 0; i < b.N; i++ {
		cells, err := cnn.Table6()
		if err != nil {
			b.Fatal(err)
		}
		c, err := cnn.FindNMR(cells, params.TRD7, 3, cnn.TWN, "Alexnet")
		if err != nil {
			b.Fatal(err)
		}
		fps = c.FPS
	}
	b.ReportMetric(fps, "tmr-twn-alexnet-fps")
}

// BenchmarkFig10 regenerates the Polybench latency comparison; the
// metric is the average DWM-CPU/PIM improvement (paper: 2.07×).
func BenchmarkFig10(b *testing.B) {
	var avg float64
	for i := 0; i < b.N; i++ {
		t, err := experiments.Fig10()
		if err != nil {
			b.Fatal(err)
		}
		avg = lastRowValue(t, 2)
	}
	b.ReportMetric(avg, "dwm-latency-x")
}

// BenchmarkFig11 regenerates the Polybench energy comparison; the metric
// is the average energy reduction (paper: >25×).
func BenchmarkFig11(b *testing.B) {
	var avg float64
	for i := 0; i < b.N; i++ {
		t, err := experiments.Fig11()
		if err != nil {
			b.Fatal(err)
		}
		avg = lastRowValue(t, 3)
	}
	b.ReportMetric(avg, "energy-x")
}

// BenchmarkFig12 regenerates the bitmap-index query; the metric is the
// CORUSCANT speedup over ELP²IM at three criteria (paper: 1.6×).
func BenchmarkFig12(b *testing.B) {
	sys := mem.NewSystem(params.DefaultConfig())
	store := bitmapidx.NewStore(1<<24, 4, 20061)
	var speedup float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := bitmapidx.Query(store, 2, sys)
		if err != nil {
			b.Fatal(err)
		}
		var elp, cor float64
		for _, r := range results {
			switch r.Engine {
			case "ELP2IM":
				elp = r.LatencyNS
			case "CORUSCANT":
				cor = r.LatencyNS
			}
		}
		speedup = elp / cor
	}
	b.ReportMetric(speedup, "vs-elp2im-x")
}

func lastRowValue(t *experiments.Table, col int) float64 {
	row := t.Rows[len(t.Rows)-1]
	v, err := strconv.ParseFloat(row[col], 64)
	if err != nil {
		panic(err)
	}
	return v
}

// --- Micro-benchmarks of the core operations -------------------------------

// BenchmarkAddMulti benchmarks the 512-wire five-operand addition (64
// 8-bit lanes per call).
func BenchmarkAddMulti(b *testing.B) {
	u := pim.MustNewUnit(params.DefaultConfig())
	rows := make([]dbc.Row, 5)
	vals := make([]uint64, 64)
	for i := range vals {
		vals[i] = uint64(i * 3 % 256)
	}
	for i := range rows {
		rows[i] = pim.MustPackLanes(vals, 8, 512)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := u.AddMulti(rows, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDBCAddMulti is BenchmarkAddMulti under the name matched by
// the CI bench target (`make bench` runs 'BenchmarkDBC|BenchmarkBulk'),
// so the word-packed engine's multi-operand-add throughput is tracked
// alongside the DBC primitive benchmarks.
func BenchmarkDBCAddMulti(b *testing.B) { BenchmarkAddMulti(b) }

// BenchmarkMultiply benchmarks the 512-wire 8-bit multiply (32 lanes).
func BenchmarkMultiply(b *testing.B) {
	u := pim.MustNewUnit(params.DefaultConfig())
	vals := make([]uint64, 32)
	for i := range vals {
		vals[i] = uint64(i*7 + 3)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := u.MultiplyValues(vals, vals, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBulkBitwise benchmarks a seven-operand XOR over 512 wires.
func BenchmarkBulkBitwise(b *testing.B) {
	u := pim.MustNewUnit(params.DefaultConfig())
	rows := make([]dbc.Row, 7)
	for i := range rows {
		rows[i] = dbc.NewRow(512)
		for j := 0; j < 512; j++ {
			rows[i].Set(j, uint8((i+j)%2))
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := u.BulkBitwise(dbc.OpXOR, rows); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMaxTR benchmarks the seven-candidate max tournament.
func BenchmarkMaxTR(b *testing.B) {
	u := pim.MustNewUnit(params.DefaultConfig())
	rows := make([]dbc.Row, 7)
	for i := range rows {
		vals := make([]uint64, 64)
		for j := range vals {
			vals[j] = uint64((i*37 + j*11) % 256)
		}
		rows[i] = pim.MustPackLanes(vals, 8, 512)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := u.MaxTR(rows, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPolybenchGemm benchmarks the instrumented gemm kernel run.
func BenchmarkPolybenchGemm(b *testing.B) {
	k, err := polybench.ByName("gemm")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		var c polybench.Ctx
		k.Run(&c, 32)
	}
}

// BenchmarkTinyCNNInference benchmarks the bit-exact in-memory CNN.
func BenchmarkTinyCNNInference(b *testing.B) {
	cfg := params.DefaultConfig()
	cfg.Geometry.TrackWidth = 256
	u := pim.MustNewUnit(cfg)
	net := &cnn.TinyCNN{Kernel: [3][3]int{{1, -2, 1}, {2, 4, -1}, {-3, 1, 2}}}
	img := make([][]int, 6)
	for y := range img {
		img[y] = make([]int, 6)
		for x := range img[y] {
			img[y][x] = (y*7 + x*3) % 16
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := net.InferPIM(u, img); err != nil {
			b.Fatal(err)
		}
	}
}
