// Recovery-layer benchmarks (recorded in BENCH_resilient.json): the
// price of each verification policy on the memory Execute path. The
// no-fault rows measure pure replication cost (dup = 2x execution,
// nmr3 = 3x, plus the unanimity compare); the faulty rows add the
// detect/retry/backoff loop at an exaggerated fault rate. "off" is the
// unprotected baseline the <2% hot-path budget is measured against —
// the recovery layer must stay out of the way when disabled.
package coruscant

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/memory"
	"repro/internal/params"
	"repro/internal/pim"
	"repro/internal/resilient"
)

// resilientFixture builds a memory with one staged two-operand add on
// bank 0's PIM DBC.
func resilientFixture(tb testing.TB, pol resilient.Policy, prof memory.FaultProfile) (*memory.Memory, memory.Request) {
	tb.Helper()
	cfg := params.DefaultConfig()
	m, err := memory.New(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	if prof.TRProb > 0 || prof.ShiftProb > 0 {
		m.SetFaultProfile(prof)
	}
	if err := m.SetRecovery(pol); err != nil {
		tb.Fatal(err)
	}
	g := cfg.Geometry
	pimDBC := isa.Addr{Bank: 0, Tile: 0, DBC: g.DBCsPerTile - g.PIMDBCsPerTile}
	operands := make([]isa.Addr, 2)
	lanes := g.TrackWidth / 8
	for r := range operands {
		vals := make([]uint64, lanes)
		for l := range vals {
			vals[l] = uint64((3*r + l) % 100)
		}
		row, err := pim.PackLanes(vals, 8, g.TrackWidth)
		if err != nil {
			tb.Fatal(err)
		}
		a := isa.Addr{Bank: 0, Subarray: 1, Tile: 1, Row: r}
		if err := m.WriteRow(a, row); err != nil {
			tb.Fatal(err)
		}
		operands[r] = a
	}
	req := memory.Request{
		In:       isa.Instruction{Op: isa.OpAdd, Src: pimDBC, Blocksize: 8, Operands: 2},
		Operands: operands,
		Dst:      isa.Addr{Bank: 0, Subarray: 1, Tile: 2},
	}
	return m, req
}

func benchPolicies() []struct {
	name string
	pol  resilient.Policy
} {
	return []struct {
		name string
		pol  resilient.Policy
	}{
		{"off", resilient.Policy{}},
		{"dup", resilient.Policy{Verify: resilient.VerifyDup, MaxRetries: 3, BackoffCycles: 8}},
		{"nmr3", resilient.Policy{Verify: resilient.VerifyNMR, NMR: 3, MaxRetries: 3, BackoffCycles: 8}},
		{"nmr5", resilient.Policy{Verify: resilient.VerifyNMR, NMR: 5, MaxRetries: 3, BackoffCycles: 8}},
	}
}

// BenchmarkResilientExecute measures one recovered Execute per policy
// with no faults injected: the steady-state replication overhead.
func BenchmarkResilientExecute(b *testing.B) {
	for _, tc := range benchPolicies() {
		b.Run(tc.name, func(b *testing.B) {
			m, req := resilientFixture(b, tc.pol, memory.FaultProfile{})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.Execute(req.In, req.Operands, req.Dst); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkResilientExecuteFaulty adds per-DBC fault injection at an
// exaggerated rate (1e-2 per TR sense), so the detect/retry loop runs
// often enough to show up in the mean.
func BenchmarkResilientExecuteFaulty(b *testing.B) {
	prof := memory.FaultProfile{TRProb: 1e-2, Seed: 17}
	for _, tc := range benchPolicies() {
		b.Run(tc.name, func(b *testing.B) {
			m, req := resilientFixture(b, tc.pol, prof)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Faulty unprotected runs deliver wrong rows, never errors;
				// protected dup runs can surface ErrUnverified after the retry
				// budget. Both are valid measurements, so only plumbing errors
				// (which return before executing) abort the benchmark.
				_, _ = m.Execute(req.In, req.Operands, req.Dst)
			}
		})
	}
}
