// pimc compiler benchmarks (recorded in BENCH_compile.json): a fixed
// three-program corpus compiled at -O0 (naive single-DBC staging) and
// -O1 (placement-aware), measuring compile latency and the measured
// cost of running the compiled plans — row-buffer moves, racetrack
// shift steps and device cycles, reported as custom metrics. The -O1
// rows must come in under naive on moves and cycles; the differential
// tests in internal/isa/compile prove the results are bit-identical.
package coruscant

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/isa/compile"
	"repro/internal/memory"
	"repro/internal/params"
	"repro/internal/pim"
)

// benchCorpus loads the fixed program set from examples/pimasm in
// filename order: mixed arithmetic on one bank, the PIRM-style ops
// (div/mod/shifts/fma), and cross-bank traffic that forces staging
// moves. Keeping the corpus on disk gives `pimasm vet` (and make
// lint's sweep) the same programs the benchmarks measure.
func benchCorpus(tb testing.TB) []string {
	tb.Helper()
	paths, err := filepath.Glob(filepath.Join("examples", "pimasm", "*.pimasm"))
	if err != nil {
		tb.Fatal(err)
	}
	sort.Strings(paths)
	if len(paths) != 3 {
		tb.Fatalf("examples/pimasm holds %d programs, want the fixed 3-program corpus", len(paths))
	}
	progs := make([]string, len(paths))
	for i, p := range paths {
		src, err := os.ReadFile(p)
		if err != nil {
			tb.Fatal(err)
		}
		progs[i] = string(src)
	}
	return progs
}

func benchCompileConfig() params.Config {
	cfg := params.DefaultConfig()
	cfg.Geometry.TrackWidth = 64
	return cfg
}

// seedInputs writes deterministic lane values into every load row of a
// compiled program.
func seedInputs(tb testing.TB, m *memory.Memory, res *compile.Result, prog int) {
	tb.Helper()
	for i, in := range res.Inputs {
		vals := make([]uint64, 8)
		for l := range vals {
			vals[l] = uint64((7*i + 3*l + 11*prog + 1) % 256)
		}
		row, err := pim.PackLanes(vals, 8, 64)
		if err != nil {
			tb.Fatal(err)
		}
		if err := m.WriteRow(in.Addr, row); err != nil {
			tb.Fatal(err)
		}
	}
}

// BenchmarkCompileProgram measures compile latency over the corpus at
// both optimization levels (at -O1 this includes pricing the naive
// layout for the moves/shifts-saved telemetry).
func BenchmarkCompileProgram(b *testing.B) {
	cfg := benchCompileConfig()
	corpus := benchCorpus(b)
	for _, level := range []int{0, 1} {
		b.Run(fmt.Sprintf("O%d", level), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, src := range corpus {
					if _, err := compile.Compile(src, cfg, compile.Options{Level: level}); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkCompiledExec measures running the compiled corpus. The
// moves/shifts/cycles metrics are the measured totals of one corpus
// pass on a fresh memory — the numbers the acceptance criterion
// compares across levels; ns/op times repeated plan execution (plans
// are idempotent: stores never alias loads).
func BenchmarkCompiledExec(b *testing.B) {
	cfg := benchCompileConfig()
	corpus := benchCorpus(b)
	for _, level := range []int{0, 1} {
		b.Run(fmt.Sprintf("O%d", level), func(b *testing.B) {
			var plans []*compile.Plan
			var results []*compile.Result
			for _, src := range corpus {
				res, err := compile.Compile(src, cfg, compile.Options{Level: level})
				if err != nil {
					b.Fatal(err)
				}
				plans = append(plans, res.Plan)
				results = append(results, res)
			}

			// One instrumented corpus pass for the cost metrics.
			mm, err := memory.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			for i, res := range results {
				seedInputs(b, mm, res, i)
			}
			for _, p := range plans {
				if err := p.Run(mm); err != nil {
					b.Fatal(err)
				}
			}
			moves := mm.Moves()
			stats := mm.Stats()

			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, p := range plans {
					if err := p.Run(mm); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.StopTimer()
			// ResetTimer deletes user metrics, so report them after the
			// timed loop.
			b.ReportMetric(float64(moves.RowCopies), "moves/corpus")
			b.ReportMetric(float64(stats.ShiftSteps), "shifts/corpus")
			b.ReportMetric(float64(stats.Cycles()), "cycles/corpus")
		})
	}
}
