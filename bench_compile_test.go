// pimc compiler benchmarks (recorded in BENCH_compile.json): a fixed
// three-program corpus compiled at -O0 (naive single-DBC staging) and
// -O1 (placement-aware), measuring compile latency and the measured
// cost of running the compiled plans — row-buffer moves, racetrack
// shift steps and device cycles, reported as custom metrics. The -O1
// rows must come in under naive on moves and cycles; the differential
// tests in internal/isa/compile prove the results are bit-identical.
package coruscant

import (
	"fmt"
	"testing"

	"repro/internal/isa/compile"
	"repro/internal/memory"
	"repro/internal/params"
	"repro/internal/pim"
)

// benchCorpus is the fixed program set: mixed arithmetic on one bank,
// the PIRM-style ops (div/mod/shifts/fma), and cross-bank traffic that
// forces staging moves.
var benchCorpus = []string{
	`; mixed arithmetic, single bank, heavy operand reuse
%a = load b0.s0.t1.d0.r0
%b = load b0.s0.t1.d0.r1
%c = load b0.s0.t1.d0.r2
%e = load b0.s0.t1.d0.r3
%k = li 7 bs=8
%s = add %a, %b, %c bs=8
%d = sub %s, %k bs=8
%na = shr %a bs=8 imm=4
%nb = shr %b bs=8 imm=4
%p = mult %na, %nb bs=8
%q = xor %d, %p bs=8
%t = and %q, %e bs=8
%u = or %t, %a bs=8
%v = add %u, %b, %k bs=8
%w = max %v, %c bs=8
%x = xor %w, %e bs=8
store %q, b0.s0.t2.d0.r0
store %d, b0.s0.t2.d0.r1
store %x, b0.s0.t2.d0.r2
`,
	`; PIRM ops: division, modulo, shifts, fused multiply-add
%a = load b0.s0.t1.d1.r0
%b = load b0.s0.t1.d1.r1
%c = load b0.s0.t1.d1.r2
%e = load b0.s0.t1.d1.r3
%q = div %a, %b bs=8
%r = mod %a, %b bs=8
%h = shr %c bs=8 imm=3
%l = shl %c bs=8 imm=2
%na = shr %a bs=8 imm=4
%nb = shr %b bs=8 imm=4
%f = fma %na, %nb, %c bs=8
%x = or %q, %r bs=8
%y = xor %h, %l bs=8
%z = add %x, %y, %f bs=8
%g = div %z, %e bs=8
%m = mod %z, %e bs=8
%n = add %g, %m, %h bs=8
store %z, b0.s0.t2.d1.r0
store %n, b0.s0.t2.d1.r1
`,
	`; cross-bank operands force explicit staging moves
%a = load b0.s0.t1.d0.r4
%b = load b1.s0.t1.d0.r5
%c = load b0.s1.t1.d0.r6
%e = load b0.s0.t1.d0.r7
%s = add %a, %b bs=8
%t = max %s, %c bs=8
%u = not %t bs=8
%v = and %u, %e bs=8
%w = add %v, %a, %s bs=8
%x = xor %w, %t bs=8
store %u, b1.s0.t2.d0.r6
store %t, b0.s0.t2.d2.r7
store %x, b0.s0.t2.d2.r8
`,
}

func benchCompileConfig() params.Config {
	cfg := params.DefaultConfig()
	cfg.Geometry.TrackWidth = 64
	return cfg
}

// seedInputs writes deterministic lane values into every load row of a
// compiled program.
func seedInputs(tb testing.TB, m *memory.Memory, res *compile.Result, prog int) {
	tb.Helper()
	for i, in := range res.Inputs {
		vals := make([]uint64, 8)
		for l := range vals {
			vals[l] = uint64((7*i + 3*l + 11*prog + 1) % 256)
		}
		row, err := pim.PackLanes(vals, 8, 64)
		if err != nil {
			tb.Fatal(err)
		}
		if err := m.WriteRow(in.Addr, row); err != nil {
			tb.Fatal(err)
		}
	}
}

// BenchmarkCompileProgram measures compile latency over the corpus at
// both optimization levels (at -O1 this includes pricing the naive
// layout for the moves/shifts-saved telemetry).
func BenchmarkCompileProgram(b *testing.B) {
	cfg := benchCompileConfig()
	for _, level := range []int{0, 1} {
		b.Run(fmt.Sprintf("O%d", level), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, src := range benchCorpus {
					if _, err := compile.Compile(src, cfg, compile.Options{Level: level}); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkCompiledExec measures running the compiled corpus. The
// moves/shifts/cycles metrics are the measured totals of one corpus
// pass on a fresh memory — the numbers the acceptance criterion
// compares across levels; ns/op times repeated plan execution (plans
// are idempotent: stores never alias loads).
func BenchmarkCompiledExec(b *testing.B) {
	cfg := benchCompileConfig()
	for _, level := range []int{0, 1} {
		b.Run(fmt.Sprintf("O%d", level), func(b *testing.B) {
			var plans []*compile.Plan
			var results []*compile.Result
			for _, src := range benchCorpus {
				res, err := compile.Compile(src, cfg, compile.Options{Level: level})
				if err != nil {
					b.Fatal(err)
				}
				plans = append(plans, res.Plan)
				results = append(results, res)
			}

			// One instrumented corpus pass for the cost metrics.
			mm, err := memory.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			for i, res := range results {
				seedInputs(b, mm, res, i)
			}
			for _, p := range plans {
				if err := p.Run(mm); err != nil {
					b.Fatal(err)
				}
			}
			moves := mm.Moves()
			stats := mm.Stats()

			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, p := range plans {
					if err := p.Run(mm); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.StopTimer()
			// ResetTimer deletes user metrics, so report them after the
			// timed loop.
			b.ReportMetric(float64(moves.RowCopies), "moves/corpus")
			b.ReportMetric(float64(stats.ShiftSteps), "shifts/corpus")
			b.ReportMetric(float64(stats.Cycles()), "cycles/corpus")
		})
	}
}
