// Bitmap-index database query (§V-D): over a synthetic user table,
// count the male users active in each of the past w weeks. The query is
// answered four ways — DRAM+CPU, Ambit, ELP²IM and CORUSCANT — all
// returning the bit-exact count, with each engine's modelled latency.
package main

import (
	"fmt"
	"log"

	coruscant "repro"
	"repro/internal/workloads/bitmapidx"
)

func main() {
	sys := coruscant.NewSystem(coruscant.DefaultConfig())

	// A smaller store than the paper's 16M users keeps the functional
	// engines fast; the latency model scales with the store size.
	const users = 1 << 20
	store := bitmapidx.NewStore(users, 4, 42)
	fmt.Printf("bitmap store: %d users, %d weekly activity bitmaps\n\n", users, len(store.Weeks))

	for w := 2; w <= 4; w++ {
		results, err := bitmapidx.Query(store, w, sys)
		if err != nil {
			log.Fatal(err)
		}
		ref, err := store.Reference(w)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("male AND active %d weeks (%d criteria) -> %d users\n", w, w+1, ref)
		var elp float64
		for _, r := range results {
			if r.Engine == "ELP2IM" {
				elp = r.LatencyNS
			}
		}
		for _, r := range results {
			status := "ok"
			if r.Count != ref {
				status = "WRONG"
			}
			extra := ""
			if r.Engine == "CORUSCANT" {
				extra = fmt.Sprintf("  (%.1fx faster than ELP2IM)", elp/r.LatencyNS)
			}
			fmt.Printf("  %-10s %9.2f us  count=%d %s%s\n",
				r.Engine, r.LatencyNS/1e3, r.Count, status, extra)
		}
		fmt.Println()
	}
	fmt.Println("CORUSCANT answers any k<=TRD criteria in a single multi-operand")
	fmt.Println("AND pass, while the DRAM PIMs chain k-1 two-operand passes (Fig. 12).")

	// Arbitrary boolean queries compile the same way: every <=TRD-ary
	// node is one transverse-read pass.
	q := bitmapidx.And(
		bitmapidx.Male(),
		bitmapidx.Or(bitmapidx.Week(0), bitmapidx.Week(1), bitmapidx.Week(2)),
		bitmapidx.Not(bitmapidx.Week(3)),
	)
	count, err := bitmapidx.Count(store, q)
	if err != nil {
		log.Fatal(err)
	}
	plan := bitmapidx.PlanQuery(q, sys.Cfg.TRD)
	fmt.Printf("\ncompound query %s\n", plan.Query)
	fmt.Printf("  -> %d users; %d CORUSCANT passes vs %d two-operand passes\n",
		count, plan.CoruscantPasses, plan.TwoOpPasses)
}
