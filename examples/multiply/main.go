// Constant multiplication (§III-D1): compiles the paper's example
// constant 20061 into a canonical-signed-digit plan, executes it on the
// PIM unit in two addition steps, and compares against the generic
// carry-save multiplier and naive repeated addition.
package main

import (
	"fmt"
	"log"

	coruscant "repro"
)

func main() {
	cfg := coruscant.DefaultConfig()
	cfg.Geometry.TrackWidth = 64 // two 32-bit product lanes
	u, err := coruscant.NewUnit(cfg)
	if err != nil {
		log.Fatal(err)
	}

	const c = 20061 // "100111001011101" — the paper's running example
	digits := coruscant.CSD(c)
	fmt.Printf("constant %d recodes into %d signed digits (vs %d set bits):\n  ", c, len(digits), popcount(c))
	for _, d := range digits {
		sign := "+"
		if d.Sign < 0 {
			sign = "-"
		}
		fmt.Printf("%s2^%d ", sign, d.Shift)
	}
	fmt.Println()

	a := []uint64{4321, 57005}
	row, err := coruscant.PackLanes(a, 32, u.Width())
	if err != nil {
		log.Fatal(err)
	}
	prod, err := u.ConstMultiply(row, c, 16)
	if err != nil {
		log.Fatal(err)
	}
	got := coruscant.UnpackLanes(prod, 32)
	fmt.Printf("\n%d x %v = %v (expect %v)\n", c, a, got, []uint64{a[0] * c, a[1] * c})
	fmt.Printf("constant-multiply cost: %d cycles\n", u.Stats().Cycles())

	// The generic path for comparison.
	u2, err := coruscant.NewUnit(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := u2.MultiplyValues(a, []uint64{c, c}, 16); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generic multiply cost: %d cycles\n", u2.Stats().Cycles())
	fmt.Printf("naive repeated addition would need ~%d cycles (%d five-operand adds)\n",
		(c/4)*26, c/4)
}

func popcount(v uint64) int {
	n := 0
	for ; v != 0; v &= v - 1 {
		n++
	}
	return n
}
