// Fault tolerance (§III-F, §V-F): injects transverse-read faults into
// the simulator at an exaggerated rate and shows how N-modular
// redundancy recovers correctness — including the paper's per-step vs
// end-of-operation voting trade-off for addition.
package main

import (
	"fmt"
	"log"
	"math/rand"

	coruscant "repro"
	"repro/internal/reliability"
)

func main() {
	const faultP = 0.02 // ~20,000× the intrinsic 1e-6, to make faults visible
	const trials = 3000

	fmt.Printf("TR fault probability: %.0e (intrinsic: 1e-6)\n", faultP)
	fmt.Printf("running %d random 8-bit additions per configuration\n\n", trials)

	run := func(mode string) int {
		cfg := coruscant.DefaultConfig()
		cfg.Geometry.TrackWidth = 8
		u, err := coruscant.NewUnit(cfg)
		if err != nil {
			log.Fatal(err)
		}
		u.D.SetFaultInjector(coruscant.NewFaultInjector(faultP, 0, 17))
		rng := rand.New(rand.NewSource(17))
		wrong := 0
		for i := 0; i < trials; i++ {
			av, bv := uint64(rng.Intn(256)), uint64(rng.Intn(256))
			a, _ := coruscant.PackLanes([]uint64{av}, 8, 8)
			b, _ := coruscant.PackLanes([]uint64{bv}, 8, 8)
			var sum coruscant.Row
			switch mode {
			case "unprotected":
				sum, err = u.AddMulti([]coruscant.Row{a, b}, 8)
			case "end-voted TMR":
				sum, err = u.RunNMR(3, func() (coruscant.Row, error) {
					return u.AddMulti([]coruscant.Row{a, b}, 8)
				})
			case "per-step TMR":
				sum, err = u.AddMultiNMR(3, []coruscant.Row{a, b}, 8)
			}
			if err != nil {
				log.Fatal(err)
			}
			if coruscant.UnpackLanes(sum, 8)[0] != (av+bv)&0xff {
				wrong++
			}
		}
		return wrong
	}

	for _, mode := range []string{"unprotected", "end-voted TMR", "per-step TMR"} {
		wrong := run(mode)
		fmt.Printf("%-14s %5d/%d wrong (%.3f%%)\n", mode, wrong, trials,
			100*float64(wrong)/float64(trials))
	}

	fmt.Println("\nanalytic rates at the intrinsic fault probability (1e-6):")
	p := reliability.DefaultTRFaultProb
	fmt.Printf("  unprotected 8-bit add : %.1e\n", reliability.AddErrorRate(8, p))
	fmt.Printf("  end-voted TMR         : %.1e\n", reliability.AddNMREndRate(3, 8, p))
	fmt.Printf("  per-step TMR          : %.1e\n", reliability.AddNMRPerStepRate(3, 8, p))
	fmt.Printf("  per-step N=5          : %.1e  (>10-year target: <=5e-18)\n",
		reliability.AddNMRPerStepRate(5, 8, p))
}
