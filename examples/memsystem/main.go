// Whole-memory view (Fig. 2): addresses in the bank/subarray/tile/DBC
// hierarchy, row-buffer data movement between clusters, and cpim
// instructions executing on addressed rows inside a PIM-enabled DBC —
// the complete §III-A/§III-E offload path on the functional memory.
package main

import (
	"fmt"
	"log"

	coruscant "repro"
	"repro/internal/isa"
)

func main() {
	cfg := coruscant.DefaultConfig()
	cfg.Geometry.TrackWidth = 64
	m, err := coruscant.NewMemory(cfg)
	if err != nil {
		log.Fatal(err)
	}
	g := cfg.Geometry
	fmt.Printf("memory: %d banks x %d subarrays x %d tiles x %d DBCs (%d PIM-enabled)\n\n",
		g.Banks, g.SubarraysPerBank, g.TilesPerSubarray, g.DBCsPerTile, g.TotalPIMDBCs())

	// Application data lives in ordinary DBCs spread over the hierarchy.
	vecA := isa.Addr{Bank: 2, Subarray: 10, Tile: 4, DBC: 3, Row: 7}
	vecB := isa.Addr{Bank: 2, Subarray: 10, Tile: 4, DBC: 3, Row: 8}
	vecC := isa.Addr{Bank: 7, Subarray: 1, Tile: 9, DBC: 0, Row: 0}
	dst := isa.Addr{Bank: 2, Subarray: 10, Tile: 8, DBC: 1, Row: 12}

	store := func(a isa.Addr, vals []uint64) {
		row, err := coruscant.PackLanes(vals, 8, 64)
		if err != nil {
			log.Fatal(err)
		}
		if err := m.WriteRow(a, row); err != nil {
			log.Fatal(err)
		}
	}
	store(vecA, []uint64{10, 20, 30, 40, 50, 60, 70, 80})
	store(vecB, []uint64{5, 5, 5, 5, 5, 5, 5, 5})
	store(vecC, []uint64{100, 100, 100, 100, 100, 100, 100, 100})

	// The OS reserved the PIM region (§III-E); the compiler picked the
	// PIM-enabled DBC of the data's subarray.
	pimDBC := isa.Addr{Bank: 2, Subarray: 10, Tile: 0, DBC: g.DBCsPerTile - 1}

	in := isa.Instruction{Op: isa.OpAdd, Src: pimDBC, Blocksize: 8, Operands: 3}
	word, err := in.Encode(g, cfg.TRD)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cpim word: %#011x  (%v)\n", word, in)

	result, err := m.Execute(isa.Decode(word), []isa.Addr{vecA, vecB, vecC}, dst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("A + B + C =", coruscant.UnpackLanes(result, 8))

	back, err := m.ReadRow(dst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("read back  =", coruscant.UnpackLanes(back, 8))

	fmt.Printf("\nrow movement: %+v\n", m.Moves())
	fmt.Printf("device trace: %v\n", m.Stats())
	fmt.Printf("materialized DBCs: %d of %d (lazy)\n",
		m.MaterializedDBCs(),
		g.Banks*g.SubarraysPerBank*g.TilesPerSubarray*g.DBCsPerTile)
}
