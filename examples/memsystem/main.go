// Whole-memory view (Fig. 2): addresses in the bank/subarray/tile/DBC
// hierarchy, row-buffer data movement between clusters, and cpim
// instructions executing on addressed rows inside a PIM-enabled DBC —
// the complete §III-A/§III-E offload path on the functional memory,
// including the bank staging rule and bank-parallel batch execution.
package main

import (
	"errors"
	"fmt"
	"log"

	coruscant "repro"
	"repro/internal/isa"
)

func main() {
	cfg := coruscant.DefaultConfig()
	cfg.Geometry.TrackWidth = 64
	m, err := coruscant.NewMemory(cfg)
	if err != nil {
		log.Fatal(err)
	}
	g := cfg.Geometry
	fmt.Printf("memory: %d banks x %d subarrays x %d tiles x %d DBCs (%d PIM-enabled)\n\n",
		g.Banks, g.SubarraysPerBank, g.TilesPerSubarray, g.DBCsPerTile, g.TotalPIMDBCs())

	// Application data lives in ordinary DBCs spread over the hierarchy.
	// vecC starts in the wrong bank on purpose.
	vecA := isa.Addr{Bank: 2, Subarray: 10, Tile: 4, DBC: 3, Row: 7}
	vecB := isa.Addr{Bank: 2, Subarray: 10, Tile: 4, DBC: 3, Row: 8}
	vecC := isa.Addr{Bank: 7, Subarray: 1, Tile: 9, DBC: 0, Row: 0}
	dst := isa.Addr{Bank: 2, Subarray: 10, Tile: 8, DBC: 1, Row: 12}

	store := func(a isa.Addr, vals []uint64) {
		row, err := coruscant.PackLanes(vals, 8, 64)
		if err != nil {
			log.Fatal(err)
		}
		if err := m.WriteRow(a, row); err != nil {
			log.Fatal(err)
		}
	}
	store(vecA, []uint64{10, 20, 30, 40, 50, 60, 70, 80})
	store(vecB, []uint64{5, 5, 5, 5, 5, 5, 5, 5})
	store(vecC, []uint64{100, 100, 100, 100, 100, 100, 100, 100})

	// The OS reserved the PIM region (§III-E); the compiler picked the
	// PIM-enabled DBC of the data's subarray.
	pimDBC := isa.Addr{Bank: 2, Subarray: 10, Tile: 0, DBC: g.DBCsPerTile - 1}

	in := isa.Instruction{Op: isa.OpAdd, Src: pimDBC, Blocksize: 8, Operands: 3}
	word, err := in.Encode(g, cfg.TRD)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cpim word: %#011x  (%v)\n", word, in)

	// Operands reach a PIM DBC over the bank-shared row buffer (§III-A),
	// so an operand in another bank is rejected before anything runs.
	_, err = m.Execute(isa.Decode(word), []isa.Addr{vecA, vecB, vecC}, dst)
	if !errors.Is(err, coruscant.ErrCrossDBC) {
		log.Fatalf("expected ErrCrossDBC, got %v", err)
	}
	fmt.Println("vecC in bank 7:", err)

	// Stage it into the executing bank with an explicit row copy, as the
	// memory controller would, then re-issue the instruction.
	staged := isa.Addr{Bank: 2, Subarray: 10, Tile: 4, DBC: 3, Row: 9}
	if err := m.CopyRow(vecC, staged); err != nil {
		log.Fatal(err)
	}
	result, err := m.Execute(isa.Decode(word), []isa.Addr{vecA, vecB, staged}, dst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("A + B + C =", coruscant.UnpackLanes(result, 8))

	back, err := m.ReadRow(dst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("read back  =", coruscant.UnpackLanes(back, 8))

	// Bank-level parallelism: one batch of independent adds, one per
	// bank, executed by a worker pool over the striped per-DBC locks.
	// Results and telemetry are bit-identical for any worker count.
	m.SetWorkers(4)
	reqs := make([]coruscant.BatchRequest, 4)
	for bank := range reqs {
		p := isa.Addr{Bank: bank, Tile: 0, DBC: g.DBCsPerTile - 1}
		a, b := p, p
		a.Row, b.Row = 0, 1
		store(a, []uint64{1, 2, 3, 4, 5, 6, 7, 8})
		store(b, []uint64{10 * uint64(bank), 1, 1, 1, 1, 1, 1, 1})
		d := p
		d.Row = 10
		reqs[bank] = coruscant.BatchRequest{
			In:       isa.Instruction{Op: isa.OpAdd, Src: p, Blocksize: 8, Operands: 2},
			Operands: []isa.Addr{a, b},
			Dst:      d,
		}
	}
	fmt.Printf("\nbatch of %d adds across banks (%d workers):\n", len(reqs), m.Workers())
	for bank, res := range m.ExecuteBatch(reqs) {
		if res.Err != nil {
			log.Fatalf("bank %d: %v", bank, res.Err)
		}
		fmt.Printf("  bank %d: %v\n", bank, coruscant.UnpackLanes(res.Row, 8))
	}

	fmt.Printf("\nrow movement: %+v\n", m.Moves())
	fmt.Printf("device trace: %v\n", m.Stats())
	fmt.Printf("materialized DBCs: %d of %d (lazy)\n",
		m.MaterializedDBCs(),
		g.Banks*g.SubarraysPerBank*g.TilesPerSubarray*g.DBCsPerTile)
}
