// End-to-end in-memory inference (§IV): a hand-weighted two-layer
// network — Sobel-style convolution, max pooling, fully-connected
// read-out — classifies stripe patterns while every multiplication,
// addition, ReLU and pooling comparison executes inside the simulated
// racetrack memory.
package main

import (
	"fmt"
	"log"

	coruscant "repro"
	"repro/internal/workloads/cnn"
)

func main() {
	cfg := coruscant.DefaultConfig()
	cfg.Geometry.TrackWidth = 256
	u, err := coruscant.NewUnit(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Feature extractors: horizontal- and vertical-edge kernels.
	conv := &cnn.ConvLayer{
		W: [][][3][3]int{
			{{{1, 2, 1}, {0, 0, 0}, {-1, -2, -1}}}, // horizontal edges
			{{{1, 0, -1}, {2, 0, -2}, {1, 0, -1}}}, // vertical edges
		},
		B: []int{0, 0},
	}
	// Read-out: class 0 = horizontal stripes, 1 = vertical stripes,
	// 2 = flat. Each class sums its channel's pooled features; the flat
	// class fires from its bias when neither edge channel responds.
	fc := &cnn.FCLayer{
		W: [][]int{
			{2, 2, 2, 2, -1, -1, -1, -1},
			{-1, -1, -1, -1, 2, 2, 2, 2},
			{-2, -2, -2, -2, -2, -2, -2, -2},
		},
		B: []int{0, 0, 30},
	}
	net := &cnn.Sequential{Layers: []cnn.PIMLayer{conv, cnn.PoolLayer{}, fc}}

	patterns := map[string][][]int{
		"horizontal": {
			{9, 9, 9, 9, 9, 9},
			{9, 9, 9, 9, 9, 9},
			{0, 0, 0, 0, 0, 0},
			{0, 0, 0, 0, 0, 0},
			{9, 9, 9, 9, 9, 9},
			{9, 9, 9, 9, 9, 9},
		},
		"vertical": {
			{9, 9, 0, 0, 9, 9},
			{9, 9, 0, 0, 9, 9},
			{9, 9, 0, 0, 9, 9},
			{9, 9, 0, 0, 9, 9},
			{9, 9, 0, 0, 9, 9},
			{9, 9, 0, 0, 9, 9},
		},
		"flat": {
			{5, 5, 5, 5, 5, 5},
			{5, 5, 5, 5, 5, 5},
			{5, 5, 5, 5, 5, 5},
			{5, 5, 5, 5, 5, 5},
			{5, 5, 5, 5, 5, 5},
			{5, 5, 5, 5, 5, 5},
		},
	}
	classes := []string{"horizontal", "vertical", "flat"}

	for _, name := range classes {
		x := cnn.Tensor3{patterns[name]}
		got, err := net.Forward(u, x)
		if err != nil {
			log.Fatal(err)
		}
		ref := net.ForwardRef(x)
		scores := make([]int, len(got))
		match := true
		for j := range got {
			scores[j] = got[j][0][0]
			if got[j][0][0] != ref[j][0][0] {
				match = false
			}
		}
		best := 0
		for j, s := range scores {
			if s > scores[best] {
				best = j
			}
		}
		status := "matches reference"
		if !match {
			status = "MISMATCH vs reference"
		}
		fmt.Printf("%-10s -> scores %v -> predicted %q (%s)\n",
			name, scores, classes[best], status)
	}
	fmt.Printf("\ndevice trace for all three inferences: %v\n", u.Stats())
}
