// CNN inference on PIM (§IV): runs a small convolution + ReLU + max-pool
// network bit-exactly on the PIM unit — multiplications through the
// carry-save multiplier, pooling through the transverse-read tournament —
// and then prints the Table IV throughput matrix for LeNet-5 and AlexNet
// across CORUSCANT, SPIM, Ambit, ELP²IM and ISAAC.
package main

import (
	"fmt"
	"log"

	coruscant "repro"
	"repro/internal/workloads/cnn"
)

func main() {
	// Part 1: bit-exact tiny CNN on the simulator.
	cfg := coruscant.DefaultConfig()
	cfg.Geometry.TrackWidth = 256
	u, err := coruscant.NewUnit(cfg)
	if err != nil {
		log.Fatal(err)
	}
	net := &cnn.TinyCNN{Kernel: [3][3]int{
		{-1, -1, -1},
		{-1, 8, -1},
		{-1, -1, -1}, // edge-detection kernel
	}}
	img := [][]int{
		{0, 0, 0, 0, 0, 0},
		{0, 9, 9, 9, 9, 0},
		{0, 9, 0, 0, 9, 0},
		{0, 9, 0, 0, 9, 0},
		{0, 9, 9, 9, 9, 0},
		{0, 0, 0, 0, 0, 0},
	}
	got, err := net.InferPIM(u, img)
	if err != nil {
		log.Fatal(err)
	}
	want := net.InferRef(img)
	fmt.Println("edge-detect conv + ReLU + 2x2 max-pool, computed in-memory:")
	match := true
	for y := range got {
		fmt.Printf("  %v\n", got[y])
		for x := range got[y] {
			if got[y][x] != want[y][x] {
				match = false
			}
		}
	}
	fmt.Printf("matches integer reference: %v\n", match)
	fmt.Printf("device trace: %v\n\n", u.Stats())

	// Part 2: the Table IV throughput matrix.
	cells, err := cnn.Table4()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Table IV — CNN inference throughput (FPS):")
	fmt.Printf("  %-14s %-5s %-8s %10s\n", "backend", "mode", "network", "FPS")
	for _, c := range cells {
		fmt.Printf("  %-14s %-5s %-8s %10.1f\n", c.Backend, c.Precision, c.Network, c.FPS)
	}
}
