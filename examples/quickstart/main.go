// Quickstart: build a PIM unit and run the polymorphic-gate operations —
// multi-operand bulk-bitwise logic, five-operand addition, carry-save
// reduction, and multiplication — with cycle/energy accounting.
package main

import (
	"fmt"
	"log"

	coruscant "repro"
)

func main() {
	cfg := coruscant.DefaultConfig()
	cfg.Geometry.TrackWidth = 64 // narrow DBC keeps the output readable
	u, err := coruscant.NewUnit(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CORUSCANT PIM unit: %d wires, %v window\n\n", u.Width(), u.TRD())

	// 1. Multi-operand bulk-bitwise logic: a single transverse read
	//    combines up to seven operand rows (§III-B).
	a := mustPack(u, []uint64{0xF0, 0xAA, 0x0F, 0x3C}, 8)
	b := mustPack(u, []uint64{0x0F, 0x55, 0xF0, 0xC3}, 8)
	c := mustPack(u, []uint64{0xFF, 0xFF, 0x00, 0xFF}, 8)
	for _, op := range []coruscant.Op{coruscant.OpAND, coruscant.OpOR, coruscant.OpXOR} {
		u.ResetStats()
		res, err := u.BulkBitwise(op, []coruscant.Row{a, b, c})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("3-operand %-4v = %#02x  (%d cycles, %.1f pJ)\n",
			op, coruscant.UnpackLanes(res, 8), u.Stats().Cycles(), u.Cost().EnergyPJ)
	}

	// 2. Five-operand addition through the C/C' carry chain (Fig. 6):
	//    eight independent 8-bit lanes per row, 26 cycles total.
	operands := [][]uint64{
		{11, 22, 33, 44, 55, 66, 77, 88},
		{1, 1, 2, 3, 5, 8, 13, 21},
		{200, 100, 50, 25, 12, 6, 3, 1},
		{7, 7, 7, 7, 7, 7, 7, 7},
		{0, 10, 20, 30, 40, 50, 60, 70},
	}
	rows := make([]coruscant.Row, len(operands))
	for i, v := range operands {
		rows[i] = mustPack(u, v, 8)
	}
	u.ResetStats()
	sum, err := u.AddMulti(rows, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n5-operand add  = %v\n", coruscant.UnpackLanes(sum, 8))
	fmt.Printf("cost: %d cycles, %.2f pJ for 8 lanes in parallel\n",
		u.Stats().Cycles(), u.Cost().EnergyPJ)
	fmt.Println("(a fresh single-lane unit hits the paper anchors: 26 cycles, 22.14 pJ)")

	// 3. Multiplication: O(n) via shifted partial products and 7→3
	//    carry-save reductions (§III-D).
	u.ResetStats()
	prods, err := u.MultiplyValues([]uint64{123, 45}, []uint64{231, 99}, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmultiply       = %v (123*231=%d, 45*99=%d)\n", prods, 123*231, 45*99)
	fmt.Printf("cost: %d cycles, %.2f pJ (paper: 64 cycles for a fresh unit)\n",
		u.Stats().Cycles(), u.Cost().EnergyPJ)

	// 4. Fault tolerance: triple-modular redundancy via the C' majority
	//    gate (§III-F) corrects an injected fault.
	u.ResetStats()
	good := mustPack(u, []uint64{0xDE, 0xAD, 0xBE, 0xEF}, 8)
	bad := mustPack(u, []uint64{0xDE, 0x2D, 0xBE, 0xEF}, 8)
	vote, err := u.Vote([]coruscant.Row{good, bad, good})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nTMR vote       = %#02x (faulty replica masked)\n", coruscant.UnpackLanes(vote, 8))
}

func mustPack(u *coruscant.Unit, vals []uint64, lane int) coruscant.Row {
	r, err := coruscant.PackLanes(vals, lane, u.Width())
	if err != nil {
		log.Fatal(err)
	}
	return r
}
