// Package coruscant is the public API of the CORUSCANT reproduction: a
// bit-level simulator of processing-in-racetrack-memory (DWM PIM) as
// described in "CORUSCANT: Fast Efficient Processing-in-Racetrack
// Memories" (MICRO 2022).
//
// The façade re-exports the building blocks a downstream user needs:
//
//   - Config/TRD/Geometry — device and system parameters (Table II);
//   - Unit — a PIM-enabled domain-block cluster executing multi-operand
//     bulk-bitwise logic, addition, carry-save reduction, multiplication,
//     max/ReLU, and N-modular-redundancy voting, all bit-exact and with
//     cycle/energy accounting;
//   - Controller/Instruction — the cpim ISA front end (§III-E);
//   - System — the memory-hierarchy timing/energy model;
//   - RecoveryPolicy/Campaign — the fault detect/retry/degrade layer
//     and its Monte Carlo evaluation harness;
//   - the experiment generators that regenerate every table and figure
//     of the paper's evaluation.
//
// Constructors take functional options for attachments that used to
// need post-construction setters: WithTelemetry, WithFaults,
// WithRecovery, WithWorkers (options.go). The setters remain for
// call sites that attach later.
//
// Quickstart:
//
//	u, err := coruscant.NewUnit(coruscant.DefaultConfig())
//	...
//	sums, err := u.AddMulti(rows, 8) // five-operand lane-wise addition
//
// Recovered execution:
//
//	m, err := coruscant.NewMemory(cfg,
//	    coruscant.WithRecovery(coruscant.DefaultRecoveryPolicy()))
//
// See the examples directory for runnable programs.
package coruscant

import (
	"io"
	"net/http"

	"repro/internal/dbc"
	"repro/internal/device"
	"repro/internal/experiments"
	"repro/internal/isa"
	"repro/internal/isa/compile"
	"repro/internal/mem"
	"repro/internal/memory"
	"repro/internal/params"
	"repro/internal/pim"
	"repro/internal/service"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Core parameter types.
type (
	// Config bundles the device, geometry, timing and energy parameters.
	Config = params.Config
	// TRD is a transverse-read distance (3, 5 or 7).
	TRD = params.TRD
	// Geometry describes the bank/subarray/tile/DBC organization.
	Geometry = params.Geometry
	// Energy is the per-primitive energy table.
	Energy = params.Energy
	// Timing carries the DDR3 and device clock parameters.
	Timing = params.Timing
)

// Supported transverse-read distances.
const (
	TRD3 = params.TRD3
	TRD5 = params.TRD5
	TRD7 = params.TRD7
)

// DefaultConfig returns the paper's primary configuration: TRD=7 with
// the Table II geometry and calibrated energies.
func DefaultConfig() Config { return params.DefaultConfig() }

// Device and cluster types.
type (
	// Nanowire is a single DWM wire with two access ports, transverse
	// read and transverse write.
	Nanowire = device.Nanowire
	// DBC is a domain-block cluster of lockstepped nanowires.
	DBC = dbc.DBC
	// Row is a bit vector across a DBC's nanowires.
	Row = dbc.Row
	// Op is a bulk-bitwise polymorphic-gate operation.
	Op = dbc.Op
	// FaultInjector perturbs transverse reads and shifts (§V-F).
	FaultInjector = device.FaultInjector
)

// Bulk-bitwise operations of the PIM logic block (Fig. 4(b)).
const (
	OpOR   = dbc.OpOR
	OpNOR  = dbc.OpNOR
	OpAND  = dbc.OpAND
	OpNAND = dbc.OpNAND
	OpXOR  = dbc.OpXOR
	OpXNOR = dbc.OpXNOR
	OpNOT  = dbc.OpNOT
	OpMAJ  = dbc.OpMAJ
)

// NewNanowire builds a single wire with the given data rows and window.
func NewNanowire(rows int, trd TRD) (*Nanowire, error) {
	return device.NewNanowire(rows, trd)
}

// NewFaultInjector returns a deterministic fault source.
func NewFaultInjector(trProb, shiftProb float64, seed int64) *FaultInjector {
	return device.NewFaultInjector(trProb, shiftProb, seed)
}

// PIM execution.
type (
	// Unit is one PIM-enabled DBC with its sensing and logic circuits —
	// the primary object of this library.
	Unit = pim.Unit
	// Reduction is the S/C/C' output of a carry-save reduction.
	Reduction = pim.Reduction
	// Stats counts device primitives executed by a Unit.
	Stats = trace.Stats
	// Cost is a latency/energy pair.
	Cost = trace.Cost
)

// NewRow returns an all-zero row of n wires.
func NewRow(n int) Row { return dbc.NewRow(n) }

// FromBits packs per-wire bits into a row.
func FromBits(bits ...uint8) Row { return dbc.FromBits(bits...) }

// PackLanes packs values into a row of lane-bit lanes (little-endian
// along the wire index).
func PackLanes(vals []uint64, lane, width int) (Row, error) {
	return pim.PackLanes(vals, lane, width)
}

// UnpackLanes extracts lane values from a row.
func UnpackLanes(row Row, lane int) []uint64 { return pim.UnpackLanes(row, lane) }

// CSD returns the canonical signed-digit recoding used by constant
// multiplication (§III-D1).
func CSD(c uint64) []pim.SignedDigit { return pim.CSD(c) }

// ISA front end.
type (
	// Controller expands cpim instructions into PIM operations.
	Controller = isa.Controller
	// Instruction is one cpim operation.
	Instruction = isa.Instruction
	// Addr locates a row in the memory hierarchy.
	Addr = isa.Addr
	// OpCode enumerates cpim operations.
	OpCode = isa.OpCode
)

// cpim opcodes (§III-E).
const (
	OpcodeNop   = isa.OpNop
	OpcodeRead  = isa.OpRead
	OpcodeWrite = isa.OpWrite
	OpcodeAnd   = isa.OpAnd
	OpcodeOr    = isa.OpOr
	OpcodeNand  = isa.OpNand
	OpcodeNor   = isa.OpNor
	OpcodeXor   = isa.OpXor
	OpcodeXnor  = isa.OpXnor
	OpcodeNot   = isa.OpNot
	OpcodeAdd   = isa.OpAdd
	OpcodeMult  = isa.OpMult
	OpcodeMax   = isa.OpMax
	OpcodeRelu  = isa.OpRelu
	OpcodeVote  = isa.OpVote
	// PIRM-style arithmetic extension: restoring division/modulo,
	// variable logical shifts priced as racetrack shifts, and fused
	// multiply-add on the multiplier's partial-product planes.
	OpcodeDiv = isa.OpDiv
	OpcodeMod = isa.OpMod
	OpcodeShl = isa.OpShl
	OpcodeShr = isa.OpShr
	OpcodeFma = isa.OpFma
)

// pimc: the placement-aware compiler from pimasm programs to memory
// execution plans (parse → legalize → place → schedule).
type (
	// CompileOptions selects the placement level, telemetry recorder
	// and per-pass dump hook of a compilation.
	CompileOptions = compile.Options
	// CompileResult carries the executable plan, its input/output rows
	// and the placement cost model.
	CompileResult = compile.Result
	// CompiledPlan is an executable schedule over a Memory.
	CompiledPlan = compile.Plan
	// CompiledStep is one schedulable unit of a plan.
	CompiledStep = compile.Step
	// PlanStats is the placement pass's cost model accounting.
	PlanStats = compile.PlanStats
	// ProgramOutput names one load or store row of a compiled program.
	ProgramOutput = compile.Output
	// VetDiag is one diagnostic from the pimasm IR verifier.
	VetDiag = compile.Diag
	// VetErrorClass labels a verifier or front-end rejection
	// (use-before-def, width-overflow, dead-store, ...).
	VetErrorClass = compile.ErrorClass
)

// CompileProgram compiles a pimasm program into an executable plan.
// The compiled plan is result-identical to naive hand-placed execution;
// at Level >= 1 it needs fewer cross-DBC row-buffer moves and shorter
// port-alignment shifts, and at Level >= 2 it pipelines the schedule —
// staging overlaps compute inside batch windows, shrinking the
// critical-path cycle count reported by Recorder().Makespan().
func CompileProgram(src string, cfg Config, opts CompileOptions) (*CompileResult, error) {
	return compile.Compile(src, cfg, opts)
}

// VetProgram runs the pimasm front end and dataflow verifier without
// compiling: every diagnostic — syntax and semantic rejections as well
// as dead-store/unreachable-result warnings — comes back line-numbered
// and classed. Compile runs the same verifier and fails on its errors;
// VetProgram also surfaces the warnings Compile only reports through
// Options.Diag.
func VetProgram(src string, cfg Config) []VetDiag {
	return compile.Vet(src, cfg.Geometry)
}

// System model.
type (
	// System is the Table II machine model used by the system-level
	// experiments.
	System = mem.System
	// Tech selects DRAM or DWM timing.
	Tech = mem.Tech
)

// Memory technologies.
const (
	DRAM = mem.DRAM
	DWM  = mem.DWM
)

// NewSystem returns the Table II system model.
func NewSystem(cfg Config) *System { return mem.NewSystem(cfg) }

// Memory is the functional whole-memory model: the Fig. 2 hierarchy
// behind one address space, with row-buffer data movement and in-place
// cpim execution in the PIM-enabled DBCs. Locking is striped per DBC,
// so independent requests proceed in parallel; ExecuteBatch exploits
// that bank-level parallelism explicitly.
type Memory = memory.Memory

// MoveStats counts row-granularity data movement inside a Memory.
type MoveStats = memory.MoveStats

// Batch execution over a Memory.
type (
	// BatchRequest is one cpim execution for Memory.ExecuteBatch.
	BatchRequest = memory.Request
	// BatchResult is the positional outcome of one batch request.
	BatchResult = memory.Result
)

// ErrCrossDBC reports an operand outside the executing DBC's bank —
// the §III-A staging rule: operands reach a PIM DBC over the
// bank-shared row buffer, so cross-bank operands must be staged with
// CopyRow first. Test with errors.Is.
var ErrCrossDBC = memory.ErrCrossDBC

// LanePool runs independent cpim instructions across parallel
// controller lanes with deterministic, program-ordered telemetry.
type (
	LanePool   = isa.LanePool
	LaneJob    = isa.LaneJob
	LaneResult = isa.LaneResult
)

// NewLanePool returns a pool of n controller lanes.
func NewLanePool(cfg Config, n int) (*LanePool, error) { return isa.NewLanePool(cfg, n) }

// Telemetry: the engine-wide observability layer (cycle-accurate op
// tracing, pluggable sinks, runtime metrics).
type (
	// Recorder is the telemetry hub; attach one with Unit.SetTelemetry
	// or Memory.SetTelemetry. A nil *Recorder disables telemetry at the
	// cost of one branch per hook.
	Recorder = telemetry.Recorder
	// TelemetryEvent is one record of the telemetry stream.
	TelemetryEvent = telemetry.Event
	// TelemetrySink consumes telemetry events.
	TelemetrySink = telemetry.Sink
	// TelemetrySource labels an event's emitting component.
	TelemetrySource = telemetry.Source
	// Metrics aggregates counters and histograms over the stream.
	Metrics = telemetry.Metrics
	// RingSink keeps the last N events in memory.
	RingSink = telemetry.RingSink
	// JSONLSink streams events as JSON lines.
	JSONLSink = telemetry.JSONLSink
	// ChromeSink exports a Chrome trace_event file loadable in
	// Perfetto or chrome://tracing.
	ChromeSink = telemetry.ChromeSink
)

// NewRecorder builds a telemetry recorder pricing events with cfg's
// energy table and fanning out to the given sinks.
func NewRecorder(cfg Config, sinks ...TelemetrySink) *Recorder {
	return telemetry.NewRecorder(cfg, sinks...)
}

// NewRingSink keeps the most recent capacity events in memory.
func NewRingSink(capacity int) *RingSink { return telemetry.NewRingSink(capacity) }

// NewJSONLSink streams every event to w as one JSON object per line.
func NewJSONLSink(w io.Writer) *JSONLSink { return telemetry.NewJSONLSink(w) }

// NewChromeSink streams a Chrome trace_event JSON array to w; open the
// file in https://ui.perfetto.dev or chrome://tracing (1 µs = 1 device
// cycle).
func NewChromeSink(w io.Writer) *ChromeSink { return telemetry.NewChromeSink(w) }

// Service: the PIM-as-a-service layer behind cmd/coruscantd — a
// ShardPool (see NewShardPool) fronted by the versioned /v1 HTTP API
// with admission control, per-tenant quotas, request coalescing and
// graceful drain. internal/service documents the wire schema and its
// grow-only versioning policy.
type (
	// ServiceConfig sizes a service server: device, shards, workers,
	// queue depth, coalescing window, per-tenant quotas, telemetry.
	ServiceConfig = service.Config
	// ServiceServer owns the shard pool and serves the /v1 API.
	ServiceServer = service.Server
	// ServiceClient is the typed HTTP client for a running server.
	ServiceClient = service.Client
	// ServiceRequest is one wire operation (write/copy/read or cpim).
	ServiceRequest = service.Request
	// ServiceAddr locates a row in a shard's hierarchy on the wire.
	ServiceAddr = service.Addr
	// ServiceExecuteRequest wraps one ServiceRequest with its tenant
	// and optional explicit shard.
	ServiceExecuteRequest = service.ExecuteRequest
	// ServiceBatchRequest is an ordered batch for one shard,
	// bit-identical to serial execution.
	ServiceBatchRequest = service.BatchRequest
	// ServiceCounters is the server's admission/completion accounting.
	ServiceCounters = service.Counters
)

// NewServiceServer builds and starts a service server over its own
// shard pool. Drain it before discarding.
func NewServiceServer(cfg ServiceConfig) (*ServiceServer, error) { return service.NewServer(cfg) }

// NewServiceClient returns a typed client for a coruscantd base URL;
// httpc nil means http.DefaultClient.
func NewServiceClient(base string, httpc *http.Client) *ServiceClient {
	return service.NewClient(base, httpc)
}

// Service error taxonomy (wire code in parentheses); test with
// errors.Is. The envelope maps the engine sentinels too — see
// internal/service's contract table.
var (
	// ErrServiceBadRequest reports a malformed or unroutable request
	// (bad_request, 400).
	ErrServiceBadRequest = service.ErrBadRequest
	// ErrServiceQuota reports an exhausted per-tenant token bucket
	// (quota_exhausted, 429 + Retry-After).
	ErrServiceQuota = service.ErrQuota
	// ErrServiceOverloaded reports a full admission queue
	// (overloaded, 429 + Retry-After).
	ErrServiceOverloaded = service.ErrOverloaded
	// ErrServiceDraining reports a server in graceful shutdown
	// (draining, 503).
	ErrServiceDraining = service.ErrDraining
)

// Experiments.
type (
	// ExperimentTable is one regenerated table or figure.
	ExperimentTable = experiments.Table
)

// Experiment runs the named experiment ("table1", "table3", "table4",
// "table5", "table6", "fig10", "fig11", "fig12", "tops").
func Experiment(id string) (*ExperimentTable, error) {
	g, err := experiments.ByID(id)
	if err != nil {
		return nil, err
	}
	return g()
}

// ExperimentIDs lists the available experiments in paper order.
func ExperimentIDs() []string { return experiments.IDs() }

// AllExperiments regenerates every table and figure.
func AllExperiments() ([]*ExperimentTable, error) { return experiments.All() }
