package coruscant_test

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"

	coruscant "repro"
)

// The façade tests exercise the library exactly as the examples and a
// downstream user would: through the re-exported API only.

func newUnit(t *testing.T, width int) *coruscant.Unit {
	t.Helper()
	cfg := coruscant.DefaultConfig()
	cfg.Geometry.TrackWidth = width
	u, err := coruscant.NewUnit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func TestFacadeQuickstartFlow(t *testing.T) {
	u := newUnit(t, 64)
	a, err := coruscant.PackLanes([]uint64{100, 200}, 8, 64)
	if err != nil {
		t.Fatal(err)
	}
	b, err := coruscant.PackLanes([]uint64{55, 60}, 8, 64)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := u.Add2(a, b, 8)
	if err != nil {
		t.Fatal(err)
	}
	got := coruscant.UnpackLanes(sum, 8)
	if got[0] != 155 || got[1] != 4 { // 260 mod 256
		t.Errorf("Add2 = %v", got)
	}
	if u.Stats().Cycles() == 0 {
		t.Error("no cycles traced")
	}
	if u.Cost().EnergyPJ <= 0 {
		t.Error("no energy traced")
	}
}

func TestFacadeBulkOps(t *testing.T) {
	u := newUnit(t, 16)
	a := coruscant.FromBits(1, 0, 1, 0, 1, 0, 1, 0, 1, 1, 1, 1, 0, 0, 0, 0)
	b := coruscant.FromBits(1, 1, 0, 0, 1, 1, 0, 0, 1, 0, 1, 0, 1, 0, 1, 0)
	res, err := u.BulkBitwise(coruscant.OpNAND, []coruscant.Row{a, b})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < res.Len(); i++ {
		if res.Get(i) != 1-a.Get(i)&b.Get(i) {
			t.Fatalf("NAND bit %d", i)
		}
	}
}

func TestFacadeNanowire(t *testing.T) {
	w, err := coruscant.NewNanowire(32, coruscant.TRD7)
	if err != nil {
		t.Fatal(err)
	}
	if w.TotalDomains() != 57 {
		t.Errorf("TotalDomains = %d, want 57", w.TotalDomains())
	}
	w.PokeWindow(2, 1)
	w.PokeWindow(4, 1)
	if w.TR() != 2 {
		t.Errorf("TR = %d, want 2", w.TR())
	}
}

func TestFacadeController(t *testing.T) {
	cfg := coruscant.DefaultConfig()
	cfg.Geometry.TrackWidth = 32
	c, err := coruscant.NewController(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := coruscant.PackLanes([]uint64{3, 5}, 16, 32)
	b, _ := coruscant.PackLanes([]uint64{4, 6}, 16, 32)
	in := coruscant.Instruction{Op: coruscant.OpcodeAdd, Blocksize: 16, Operands: 2}
	sum, err := c.Execute(in, []coruscant.Row{a, b})
	if err != nil {
		t.Fatal(err)
	}
	got := coruscant.UnpackLanes(sum, 16)
	if got[0] != 7 || got[1] != 11 {
		t.Errorf("controller add = %v", got)
	}
}

func TestFacadeCSD(t *testing.T) {
	digits := coruscant.CSD(20061)
	var v int64
	for _, d := range digits {
		v += int64(d.Sign) << uint(d.Shift)
	}
	if v != 20061 {
		t.Errorf("CSD evaluates to %d", v)
	}
}

func TestFacadeFaultInjection(t *testing.T) {
	u := newUnit(t, 16)
	u.D.SetFaultInjector(coruscant.NewFaultInjector(1.0, 0, 5))
	a := coruscant.NewRow(16)
	res, err := u.BulkBitwise(coruscant.OpXOR, []coruscant.Row{a, a})
	if err != nil {
		t.Fatal(err)
	}
	if res.OnesCount() == 0 {
		t.Error("probability-1 fault injection produced no faults")
	}
}

func TestFacadeExperiments(t *testing.T) {
	ids := coruscant.ExperimentIDs()
	if len(ids) == 0 {
		t.Fatal("no experiments")
	}
	tb, err := coruscant.Experiment("table1")
	if err != nil {
		t.Fatal(err)
	}
	if tb.ID != "table1" || len(tb.Rows) != 4 {
		t.Errorf("table1 malformed: %+v", tb)
	}
	if _, err := coruscant.Experiment("bogus"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestFacadeSystemModel(t *testing.T) {
	sys := coruscant.NewSystem(coruscant.DefaultConfig())
	if sys.MissLatencyNS(coruscant.DRAM) <= sys.MissLatencyNS(coruscant.DWM) {
		t.Error("DRAM miss should exceed DWM miss")
	}
}

func TestFacadeGeometry(t *testing.T) {
	cfg := coruscant.DefaultConfig()
	if cfg.Geometry.TotalBytes() != 1<<30 {
		t.Error("default geometry is not 1 GiB")
	}
	if err := cfg.Validate(); err != nil {
		t.Error(err)
	}
}

func TestFacadeExecuteBatch(t *testing.T) {
	cfg := coruscant.DefaultConfig()
	cfg.Geometry.TrackWidth = 64
	m, err := coruscant.NewMemory(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.SetWorkers(4)
	pim := func(bank int) coruscant.Addr {
		return coruscant.Addr{Bank: bank, Tile: 0, DBC: cfg.Geometry.DBCsPerTile - 1}
	}
	row, err := coruscant.PackLanes([]uint64{9, 7}, 8, 64)
	if err != nil {
		t.Fatal(err)
	}
	reqs := make([]coruscant.BatchRequest, 4)
	for i := range reqs {
		a := pim(i)
		a.Row = 0
		if err := m.WriteRow(a, row); err != nil {
			t.Fatal(err)
		}
		dst := pim(i)
		dst.Row = 1
		reqs[i] = coruscant.BatchRequest{
			In:       coruscant.Instruction{Op: coruscant.OpcodeAdd, Src: pim(i), Blocksize: 8, Operands: 2},
			Operands: []coruscant.Addr{a, a},
			Dst:      dst,
		}
	}
	for i, res := range m.ExecuteBatch(reqs) {
		if res.Err != nil {
			t.Fatalf("request %d: %v", i, res.Err)
		}
		got := coruscant.UnpackLanes(res.Row, 8)
		if got[0] != 18 || got[1] != 14 {
			t.Errorf("request %d: lanes %v, want [18 14 ...]", i, got[:2])
		}
	}
}

func TestFacadeErrCrossDBC(t *testing.T) {
	cfg := coruscant.DefaultConfig()
	cfg.Geometry.TrackWidth = 64
	m, err := coruscant.NewMemory(cfg)
	if err != nil {
		t.Fatal(err)
	}
	src := coruscant.Addr{Bank: 0, Tile: 0, DBC: cfg.Geometry.DBCsPerTile - 1}
	other := coruscant.Addr{Bank: 1, Tile: 1} // different bank
	in := coruscant.Instruction{Op: coruscant.OpcodeAdd, Src: src, Blocksize: 8, Operands: 2}
	_, err = m.Execute(in, []coruscant.Addr{src, other}, src)
	if !errors.Is(err, coruscant.ErrCrossDBC) {
		t.Errorf("cross-bank operand: err = %v, want ErrCrossDBC", err)
	}
}

func TestFacadeLanePool(t *testing.T) {
	cfg := coruscant.DefaultConfig()
	cfg.Geometry.TrackWidth = 64
	pool, err := coruscant.NewLanePool(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := coruscant.PackLanes([]uint64{3, 5}, 16, 64)
	b, _ := coruscant.PackLanes([]uint64{4, 6}, 16, 64)
	in := coruscant.Instruction{Op: coruscant.OpcodeAdd, Blocksize: 16, Operands: 2}
	jobs := []coruscant.LaneJob{
		{In: in, Operands: []coruscant.Row{a, b}},
		{In: in, Operands: []coruscant.Row{b, b}},
	}
	results := pool.Run(jobs, nil)
	if results[0].Err != nil || results[1].Err != nil {
		t.Fatalf("errs: %v %v", results[0].Err, results[1].Err)
	}
	if got := coruscant.UnpackLanes(results[0].Row, 16); got[0] != 7 || got[1] != 11 {
		t.Errorf("job 0 = %v", got)
	}
	if got := coruscant.UnpackLanes(results[1].Row, 16); got[0] != 8 || got[1] != 12 {
		t.Errorf("job 1 = %v", got)
	}
}

func TestFacadeShardPool(t *testing.T) {
	cfg := coruscant.DefaultConfig()
	cfg.Geometry.TrackWidth = 64
	pool, err := coruscant.NewShardPool(cfg, 3,
		coruscant.WithWorkers(2),
		coruscant.WithRecovery(coruscant.DefaultRecoveryPolicy()))
	if err != nil {
		t.Fatal(err)
	}
	if pool.Shards() != 3 {
		t.Fatalf("Shards = %d, want 3", pool.Shards())
	}
	// Shards share nothing: the same address holds different rows.
	addr := coruscant.Addr{Tile: 1, Row: 0}
	for i := 0; i < pool.Shards(); i++ {
		row, err := coruscant.PackLanes([]uint64{uint64(i) + 1}, 8, 64)
		if err != nil {
			t.Fatal(err)
		}
		if err := pool.Shard(i).WriteRow(addr, row); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < pool.Shards(); i++ {
		row, err := pool.Shard(i).ReadRow(addr)
		if err != nil {
			t.Fatal(err)
		}
		if got := coruscant.UnpackLanes(row, 8)[0]; got != uint64(i)+1 {
			t.Errorf("shard %d lane 0 = %d, want %d", i, got, i+1)
		}
	}

	// Inapplicable options fail loudly instead of being dropped.
	if _, err := coruscant.NewShardPool(cfg, 2, coruscant.WithTelemetry(coruscant.NewRecorder(cfg))); err == nil {
		t.Error("WithTelemetry accepted by NewShardPool")
	}
	if _, err := coruscant.NewShardPool(cfg, 2, coruscant.WithFaults(coruscant.NewFaultInjector(0.1, 0, 1))); err == nil {
		t.Error("WithFaults accepted by NewShardPool")
	}
	if _, err := coruscant.NewShardPool(cfg, 0); err == nil {
		t.Error("empty pool accepted")
	}
}

func TestFacadeService(t *testing.T) {
	cfg := coruscant.DefaultConfig()
	cfg.Geometry.TrackWidth = 64
	srv, err := coruscant.NewServiceServer(coruscant.ServiceConfig{Device: cfg, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Drain()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	api := coruscant.NewServiceClient(ts.URL, nil)
	ctx := context.Background()
	h, err := api.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Shards != 2 || h.Status != "ok" {
		t.Fatalf("health = %+v", h)
	}
	var c coruscant.ServiceCounters = srv.Counters()
	if c.Accepted != 0 {
		t.Fatalf("counters before traffic: %+v", c)
	}

	// The service sentinels round-trip the wire through the façade names.
	quota, err := coruscant.NewServiceServer(coruscant.ServiceConfig{
		Device: cfg, QuotaRate: 0.001, QuotaBurst: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer quota.Drain()
	qs := httptest.NewServer(quota.Handler())
	defer qs.Close()
	qapi := coruscant.NewServiceClient(qs.URL, nil)
	req := coruscant.ServiceRequest{Op: "read", Src: &coruscant.ServiceAddr{Tile: 1}}
	if _, err := qapi.Execute(ctx, coruscant.ServiceExecuteRequest{Tenant: "t", Request: req}); err != nil {
		t.Fatal(err)
	}
	_, err = qapi.Execute(ctx, coruscant.ServiceExecuteRequest{Tenant: "t", Request: req})
	if !errors.Is(err, coruscant.ErrServiceQuota) {
		t.Fatalf("second request err = %v, want ErrServiceQuota", err)
	}
}

func TestFacadeCompileProgram(t *testing.T) {
	cfg := coruscant.DefaultConfig()
	cfg.Geometry.TrackWidth = 64
	const src = `
%a = load b0.s0.t1.d0.r0
%k = li 10 bs=8
%s = add %a, %k bs=8
store %s, b0.s0.t2.d0.r5
`
	rec := coruscant.NewRecorder(cfg)
	res, err := coruscant.CompileProgram(src, cfg, coruscant.CompileOptions{
		Level:    1,
		Recorder: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Inputs) != 1 || len(res.Outputs) != 1 {
		t.Fatalf("inputs=%d outputs=%d, want 1/1", len(res.Inputs), len(res.Outputs))
	}

	m, err := coruscant.NewMemory(cfg, coruscant.WithTelemetry(rec))
	if err != nil {
		t.Fatal(err)
	}
	row, err := coruscant.PackLanes([]uint64{1, 2, 3}, 8, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.WriteRow(res.Inputs[0].Addr, row); err != nil {
		t.Fatal(err)
	}
	if err := res.Plan.Run(m); err != nil {
		t.Fatal(err)
	}
	out, err := m.ReadRow(res.Outputs[0].Addr)
	if err != nil {
		t.Fatal(err)
	}
	got := coruscant.UnpackLanes(out, 8)
	if got[0] != 11 || got[1] != 12 || got[2] != 13 {
		t.Errorf("compiled add = %v, want 11 12 13...", got[:3])
	}

	// Compilation at level 1 publishes the placement savings as marks.
	met := rec.Metrics()
	if mk := met.Mark("moves-saved"); mk.Count == 0 {
		t.Error("no moves-saved mark recorded")
	}
	if sp := met.Span("pimc-place"); sp.Count == 0 {
		t.Error("no pimc-place span recorded")
	}
}
