// Telemetry overhead guard benchmarks (recorded in BENCH_obs.json):
// the same hot operations as BenchmarkAddMulti/BenchmarkBulkBitwise
// run with telemetry disabled (nil recorder — the default engine
// state, whose cost is one branch per hook) and with a metrics-only
// recorder attached. The disabled variants must stay within 2% of the
// un-instrumented seed numbers.
package coruscant

import (
	"testing"

	"repro/internal/dbc"
	"repro/internal/params"
	"repro/internal/pim"
	"repro/internal/telemetry"
)

func addMultiFixture() (*pim.Unit, []dbc.Row) {
	u := pim.MustNewUnit(params.DefaultConfig())
	rows := make([]dbc.Row, 5)
	vals := make([]uint64, 64)
	for i := range vals {
		vals[i] = uint64(i * 3 % 256)
	}
	for i := range rows {
		rows[i] = pim.MustPackLanes(vals, 8, 512)
	}
	return u, rows
}

func bulkFixture() (*pim.Unit, []dbc.Row) {
	u := pim.MustNewUnit(params.DefaultConfig())
	rows := make([]dbc.Row, 7)
	for i := range rows {
		rows[i] = dbc.NewRow(512)
		for j := 0; j < 512; j++ {
			rows[i].Set(j, uint8((i+j)%2))
		}
	}
	return u, rows
}

// BenchmarkTelemetryOffAddMulti is the disabled-telemetry guard: the
// unit carries a nil recorder, so every hook is a single branch.
func BenchmarkTelemetryOffAddMulti(b *testing.B) {
	u, rows := addMultiFixture()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := u.AddMulti(rows, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTelemetryOnAddMulti attaches a metrics-only recorder — the
// cost of full accounting without any sink I/O.
func BenchmarkTelemetryOnAddMulti(b *testing.B) {
	u, rows := addMultiFixture()
	u.SetTelemetry(telemetry.NewRecorder(params.DefaultConfig()), "bench")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := u.AddMulti(rows, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTelemetryRingAddMulti adds a ring sink on top of metrics —
// the cost of keeping the event stream inspectable in memory.
func BenchmarkTelemetryRingAddMulti(b *testing.B) {
	u, rows := addMultiFixture()
	u.SetTelemetry(telemetry.NewRecorder(params.DefaultConfig(), telemetry.NewRingSink(4096)), "bench")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := u.AddMulti(rows, 8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTelemetryOffBulkBitwise(b *testing.B) {
	u, rows := bulkFixture()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := u.BulkBitwise(dbc.OpXOR, rows); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTelemetryOnBulkBitwise(b *testing.B) {
	u, rows := bulkFixture()
	u.SetTelemetry(telemetry.NewRecorder(params.DefaultConfig()), "bench")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := u.BulkBitwise(dbc.OpXOR, rows); err != nil {
			b.Fatal(err)
		}
	}
}
