package main

import (
	"context"
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/service"
)

// TestDaemonLifecycle boots the daemon on an ephemeral port, serves a
// request, shuts down gracefully, and checks the listener actually
// closed and post-drain requests were being rejected with 503.
func TestDaemonLifecycle(t *testing.T) {
	d, err := newDaemon([]string{"-addr", "127.0.0.1:0", "-shards", "2", "-track-width", "64"})
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- d.serve() }()
	base := "http://" + d.lis.Addr().String()
	api := service.NewClient(base, nil)
	ctx := context.Background()

	h, err := api.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Shards != 2 || h.Status != "ok" {
		t.Fatalf("health = %+v", h)
	}
	shard := 1
	if _, err := api.Execute(ctx, service.ExecuteRequest{Shard: &shard, Request: service.Request{
		Op: "write", Dst: &service.Addr{Tile: 1}, Blocksize: 8, Values: []uint64{9, 8, 7, 6, 5, 4, 3, 2},
	}}); err != nil {
		t.Fatal(err)
	}
	page, err := api.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(page), "coruscantd_requests_accepted_total") {
		t.Fatalf("metrics page lacks service counters:\n%.300s", page)
	}

	if err := d.shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := <-served; err != nil {
		t.Fatalf("serve returned %v", err)
	}
	// Drained service rejects; closed listener refuses.
	if _, err := api.Health(ctx); err == nil {
		t.Fatal("health succeeded after shutdown")
	}
	if _, err := net.DialTimeout("tcp", d.lis.Addr().String(), 200*time.Millisecond); err == nil {
		t.Fatal("listener still accepting after shutdown")
	}
}

// TestDaemonFlagErrors: bad flags and addresses surface as errors, not
// a half-started daemon.
func TestDaemonFlagErrors(t *testing.T) {
	if _, err := newDaemon([]string{"-shards", "0", "-addr", "127.0.0.1:0"}); err == nil {
		// Shards 0 defaults to 1 inside the service; that is fine —
		// only a truly invalid config errors.
		t.Log("shards 0 accepted (defaults to 1)")
	}
	if _, err := newDaemon([]string{"-track-width", "-3"}); err == nil {
		t.Log("negative track width ignored (keeps default)")
	}
	if _, err := newDaemon([]string{"surprise-positional"}); err == nil {
		t.Fatal("positional argument accepted")
	}
	if _, err := newDaemon([]string{"-addr", "256.256.256.256:1"}); err == nil {
		t.Fatal("unlistenable address accepted")
	}
}

// TestDrainingRejectionSurvivesUntilListenerCloses: between Drain and
// listener close the daemon answers 503 draining — clients see a clean
// signal, not a connection reset.
func TestDrainingRejectionSurvivesUntilListenerCloses(t *testing.T) {
	d, err := newDaemon([]string{"-addr", "127.0.0.1:0", "-track-width", "64"})
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- d.serve() }()
	api := service.NewClient("http://"+d.lis.Addr().String(), nil)
	ctx := context.Background()

	// Drain without closing the listener (the shutdown sequence does
	// this first), then observe the 503.
	d.srv.Drain()
	_, err = api.Execute(ctx, service.ExecuteRequest{Request: service.Request{
		Op: "read", Src: &service.Addr{Tile: 1},
	}})
	if !errors.Is(err, service.ErrDraining) {
		t.Fatalf("mid-drain err = %v, want ErrDraining", err)
	}
	if err := d.shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := <-served; err != nil {
		t.Fatal(err)
	}
}
