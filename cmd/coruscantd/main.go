// Command coruscantd is the CORUSCANT PIM-as-a-service daemon: a pool
// of independent racetrack memory shards behind the versioned HTTP
// API of internal/service.
//
// Usage:
//
//	coruscantd                          # 1 shard on :7917
//	coruscantd -addr :7917 -shards 4    # 4 shards
//	coruscantd -quota-rate 500 -quota-burst 20
//	coruscantd -queue-depth 64 -coalesce-max 8 -coalesce-window 200us
//
// Endpoints (see internal/service for the wire schema):
//
//	POST /v1/execute   one operation (write/copy/read or a cpim op)
//	POST /v1/batch     a batch on one shard, bit-identical to serial
//	POST /v1/compile   compile + run a pimasm program
//	GET  /v1/health    status, geometry, service counters
//	GET  /v1/metrics   service counters + per-shard hardware profiler
//	                   (also at /metrics for `coruscant top`)
//
// Admission control rejects with 429 (quota or full queue, with
// Retry-After) and 503 while draining. SIGTERM/SIGINT triggers a
// graceful drain: accepted requests finish and are answered, new ones
// are rejected, telemetry flushes, then the listener closes and the
// process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/params"
	"repro/internal/service"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "coruscantd:", err)
		os.Exit(1)
	}
}

// run is the daemon body: parse flags, serve until a termination
// signal, drain, exit.
func run(args []string, out *os.File) error {
	d, err := newDaemon(args)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "coruscantd: %d shard(s) of %s on http://%s\n",
		d.cfg.Shards, geometrySummary(d.cfg.Device), d.lis.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	done := make(chan error, 1)
	go func() { done <- d.serve() }()
	select {
	case err := <-done:
		return err
	case <-ctx.Done():
		fmt.Fprintln(out, "coruscantd: draining")
		return d.shutdown(context.Background())
	}
}

// daemon ties the service server to its HTTP front end; split from
// run so tests can drive the full lifecycle in-process.
type daemon struct {
	cfg  service.Config
	srv  *service.Server
	http *http.Server
	lis  net.Listener
}

func newDaemon(args []string) (*daemon, error) {
	fs := flag.NewFlagSet("coruscantd", flag.ContinueOnError)
	addr := fs.String("addr", ":7917", "listen address")
	shards := fs.Int("shards", 1, "independent memory shards")
	workers := fs.Int("workers", 0, "batch workers per shard (0 = GOMAXPROCS)")
	queueDepth := fs.Int("queue-depth", 64, "admission queue depth per shard")
	coalesceMax := fs.Int("coalesce-max", 8, "max requests merged into one execution window")
	coalesceWindow := fs.Duration("coalesce-window", 0, "how long a window waits for more requests (0 = only merge what is queued)")
	quotaRate := fs.Float64("quota-rate", 0, "per-tenant requests/second (0 = no quotas)")
	quotaBurst := fs.Int("quota-burst", 8, "per-tenant token-bucket depth")
	telemetry := fs.Bool("telemetry", true, "per-shard hardware profilers on /v1/metrics")
	trackWidth := fs.Int("track-width", 0, "override racetrack width in wires (0 = default geometry)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if len(fs.Args()) > 0 {
		return nil, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	device := params.DefaultConfig()
	if *trackWidth > 0 {
		device.Geometry.TrackWidth = *trackWidth
	}
	if err := device.Validate(); err != nil {
		return nil, err
	}
	cfg := service.Config{
		Device:         device,
		Shards:         *shards,
		Workers:        *workers,
		QueueDepth:     *queueDepth,
		CoalesceMax:    *coalesceMax,
		CoalesceWindow: *coalesceWindow,
		QuotaRate:      *quotaRate,
		QuotaBurst:     *quotaBurst,
		Telemetry:      *telemetry,
	}
	srv, err := service.NewServer(cfg)
	if err != nil {
		return nil, err
	}
	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		srv.Drain()
		return nil, err
	}
	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	// Alias for `coruscant top <addr>`, which scrapes /metrics.
	mux.Handle("/metrics", http.RedirectHandler(service.PathMetrics, http.StatusTemporaryRedirect))
	return &daemon{
		cfg:  cfg,
		srv:  srv,
		http: &http.Server{Handler: mux},
		lis:  lis,
	}, nil
}

// serve blocks until the listener closes.
func (d *daemon) serve() error {
	if err := d.http.Serve(d.lis); err != nil && err != http.ErrServerClosed {
		return err
	}
	return nil
}

// shutdown is the graceful exit: drain the service first — in-flight
// work completes and is answered, new requests get 503 while the
// listener is still up, telemetry flushes — then close the listener.
func (d *daemon) shutdown(ctx context.Context) error {
	d.srv.Drain()
	ctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	return d.http.Shutdown(ctx)
}

func geometrySummary(cfg params.Config) string {
	g := cfg.Geometry
	return fmt.Sprintf("%db x %ds x %dt x %dd (%dw tracks)",
		g.Banks, g.SubarraysPerBank, g.TilesPerSubarray, g.DBCsPerTile, g.TrackWidth)
}
