package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/telemetry"
)

func TestRunAsmDis(t *testing.T) {
	if err := run([]string{"asm", "add", "b2.s10.t0.d15.r0", "bs=8", "k=3"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"dis", "0x20078142a"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"ops"}); err != nil {
		t.Fatal(err)
	}
	if err := run(nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	for _, args := range [][]string{
		{"asm"},
		{"asm", "bogus instruction"},
		{"dis"},
		{"dis", "zzz"},
		{"frob"},
	} {
		if err := run(args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestRunExec(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "exec.json")
	err := run([]string{"-trace", tracePath, "-metrics", "exec",
		"add b2.s10.t0.d15.r0 bs=8 k=3",
		"xor b2.s10.t0.d15.r0 k=4",
		"mult b2.s10.t0.d15.r0 bs=16 k=2",
		"vote b2.s10.t0.d15.r0 k=3",
		"relu b2.s10.t0.d15.r0 bs=8 k=1",
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	records, err := telemetry.ValidateChromeTrace(data)
	if err != nil {
		t.Fatal(err)
	}
	var sawCpim bool
	for _, r := range records {
		if r.Ph == "B" && r.Name == "cpim-add" {
			sawCpim = true
		}
	}
	if !sawCpim {
		t.Error("no cpim-add span in exec trace")
	}
}

func TestRunExecErrors(t *testing.T) {
	for _, args := range [][]string{
		{"exec"},
		{"exec", "bogus"},
	} {
		if err := run(args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
