package main

import "testing"

func TestRunAsmDis(t *testing.T) {
	if err := run([]string{"asm", "add", "b2.s10.t0.d15.r0", "bs=8", "k=3"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"dis", "0x20078142a"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"ops"}); err != nil {
		t.Fatal(err)
	}
	if err := run(nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	for _, args := range [][]string{
		{"asm"},
		{"asm", "bogus instruction"},
		{"dis"},
		{"dis", "zzz"},
		{"frob"},
	} {
		if err := run(args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
