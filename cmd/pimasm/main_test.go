package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

func TestRunAsmDis(t *testing.T) {
	if err := run([]string{"asm", "add", "b2.s10.t0.d15.r0", "bs=8", "k=3"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"dis", "0x00400f0284a"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"ops"}); err != nil {
		t.Fatal(err)
	}
	if err := run(nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	for _, args := range [][]string{
		{"asm"},
		{"asm", "bogus instruction"},
		{"dis"},
		{"dis", "zzz"},
		{"frob"},
	} {
		if err := run(args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestRunExec(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "exec.json")
	err := run([]string{"-trace", tracePath, "-metrics", "exec",
		"add b2.s10.t0.d15.r0 bs=8 k=3",
		"xor b2.s10.t0.d15.r0 k=4",
		"mult b2.s10.t0.d15.r0 bs=16 k=2",
		"vote b2.s10.t0.d15.r0 k=3",
		"relu b2.s10.t0.d15.r0 bs=8 k=1",
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	records, err := telemetry.ValidateChromeTrace(data)
	if err != nil {
		t.Fatal(err)
	}
	var sawCpim bool
	for _, r := range records {
		if r.Ph == "B" && r.Name == "cpim-add" {
			sawCpim = true
		}
	}
	if !sawCpim {
		t.Error("no cpim-add span in exec trace")
	}
}

const testProg = `; pimc smoke program
%a = load b0.s0.t1.d0.r0
%b = load b0.s0.t1.d0.r1
%k = li 3 bs=8
%s = add %a, %b bs=8
%d = sub %s, %k bs=8
%h = shr %d bs=8 imm=1
store %h, b0.s0.t2.d0.r3
`

func TestRunCompileProgram(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "prog.pim")
	if err := os.WriteFile(path, []byte(testProg), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, args := range [][]string{
		{"compile", path},
		{"-O", "0", "compile", path},
		{"-dump", "compile", path},
	} {
		if err := run(args); err != nil {
			t.Fatalf("args %v: %v", args, err)
		}
	}
}

func TestRunExecProgram(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "prog.pim")
	if err := os.WriteFile(path, []byte(testProg), 0o644); err != nil {
		t.Fatal(err)
	}
	tracePath := filepath.Join(dir, "exec.json")
	if err := run([]string{"-trace", tracePath, "-metrics", "exec", path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	records, err := telemetry.ValidateChromeTrace(data)
	if err != nil {
		t.Fatal(err)
	}
	saw := make(map[string]bool)
	for _, r := range records {
		if r.Ph == "B" {
			saw[r.Name] = true
		}
	}
	for _, want := range []string{"pimc-parse", "pimc-legalize", "pimc-place", "pimc-schedule"} {
		if !saw[want] {
			t.Errorf("no %s span in exec trace", want)
		}
	}

	// Bad program: error carries the line number.
	bad := filepath.Join(dir, "bad.pim")
	if err := os.WriteFile(bad, []byte("%a = li 1 bs=8\n%a = li 2 bs=8\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"exec", bad}); err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("bad program: err = %v, want line 2", err)
	}
}

func TestRunExecErrors(t *testing.T) {
	for _, args := range [][]string{
		{"exec"},
		{"exec", "bogus"},
	} {
		if err := run(args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

// TestRunExecProfile checks the -profile model-vs-measured report:
// exec prints both columns, compile only the prediction column, and
// the flag is rejected for raw instruction streams (there is no
// placement model to compare against).
func TestRunExecProfile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "prog.pim")
	if err := os.WriteFile(path, []byte(testProg), 0o644); err != nil {
		t.Fatal(err)
	}
	out := captureStdout(t, func() {
		if err := run([]string{"-profile", "exec", path}); err != nil {
			t.Fatal(err)
		}
	})
	if !strings.Contains(out, "model vs measured shift steps per DBC") {
		t.Errorf("exec -profile output lacks the comparison table:\n%s", out)
	}
	for _, col := range []string{"MODEL", "MEASURED", "DELTA", "total"} {
		if !strings.Contains(out, col) {
			t.Errorf("exec -profile output lacks %q:\n%s", col, out)
		}
	}

	out = captureStdout(t, func() {
		if err := run([]string{"-profile", "compile", path}); err != nil {
			t.Fatal(err)
		}
	})
	if !strings.Contains(out, "predicted shift steps per DBC") {
		t.Errorf("compile -profile output lacks the prediction table:\n%s", out)
	}
	if strings.Contains(out, "MEASURED") {
		t.Errorf("compile -profile must not claim measurements:\n%s", out)
	}

	if err := run([]string{"-profile", "exec", "add b2.s10.t0.d15.r0 bs=8 k=3"}); err == nil {
		t.Error("-profile accepted for a raw instruction stream")
	}
}

// captureStdout runs f with os.Stdout redirected into a pipe and
// returns what it printed.
func captureStdout(t *testing.T, f func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	f()
	w.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}
