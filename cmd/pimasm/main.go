// Command pimasm assembles, disassembles, compiles and executes cpim
// programs (§III-E), the instruction-set extension a CPU drives the
// memory controller with.
//
// Usage:
//
//	pimasm asm "add b2.s10.t0.d15.r0 bs=8 k=3"
//	pimasm dis <hexword>
//	pimasm ops                     # list mnemonics and limits
//	pimasm exec "add ... k=3" ...  # run instructions on a PIM unit
//	pimasm vet prog.pim ...        # verify programs without compiling
//	pimasm compile prog.pim        # compile a pimasm program (pimc)
//	pimasm exec prog.pim           # compile and run it on a memory
//
// exec with instruction strings drives each one on a cpim controller
// lane with deterministic operand lanes and reports the result values
// plus the cycle/energy accounting. Independent instructions spread
// across -workers parallel lanes (§IV-B high-throughput mode); output
// order, costs and telemetry are identical for any worker count.
//
// vet runs only the pimc front end and dataflow verifier over each
// file, printing every line-numbered diagnostic (use-before-def and
// width-overflow are errors; dead stores and unreachable results are
// warnings) and exits non-zero if any file has an error. compile runs
// the same verifier automatically and fails on its errors.
//
// exec with a program file (or compile, which stops before running)
// feeds the pimc compiler: -O selects the placement level (0 = naive
// hand-placed layout, 1 = placement-aware, 2 = pipelined batch windows
// with overlapped staging; default 1) and -dump prints each compiler
// pass's output. The measured line reports both total cycles and the
// makespan — the critical-path cycles after batch windows overlap
// disjoint lanes; -O 2 exists to drive the makespan down. Telemetry
// flags apply to both modes:
//
//	pimasm -trace out.json exec "add b2.s10.t0.d15.r0 bs=8 k=3"
//	pimasm -metrics -O 1 -dump compile prog.pim
//	pimasm -metrics exec prog.pim
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"

	"repro/internal/dbc"
	"repro/internal/isa"
	"repro/internal/isa/compile"
	"repro/internal/memory"
	"repro/internal/params"
	"repro/internal/pim"
	"repro/internal/telemetry"
	"repro/internal/telemetry/profile"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "pimasm:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("pimasm", flag.ContinueOnError)
	tracePath := fs.String("trace", "", "write a Chrome trace_event JSON file for exec (open in Perfetto)")
	jsonlPath := fs.String("jsonl", "", "write exec telemetry events as JSON lines")
	metrics := fs.Bool("metrics", false, "print the telemetry metrics report after exec")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "parallel controller lanes for exec")
	level := fs.Int("O", 1, "pimc placement level: 0 naive, 1 placement-aware, 2 pipelined windows")
	dump := fs.Bool("dump", false, "print each pimc compiler pass's output")
	prof := fs.Bool("profile", false, "print the placement model's predicted vs profiled measured shift steps per DBC (program files only)")
	fs.Usage = func() {
		fmt.Println("usage: pimasm [flags] asm \"<op> <addr> [bs=N] [k=N]\" | dis <hexword> | ops | vet <file>... | compile <file> | exec <instr>...|<file>")
		fmt.Println("flags:")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	args = fs.Args()
	if len(args) == 0 {
		fs.Usage()
		return nil
	}
	cfg := params.DefaultConfig()
	switch args[0] {
	case "asm":
		if len(args) < 2 {
			return fmt.Errorf("asm needs an instruction string")
		}
		in, err := isa.ParseInstruction(strings.Join(args[1:], " "))
		if err != nil {
			return err
		}
		word, err := in.Encode(cfg.Geometry, cfg.TRD)
		if err != nil {
			return err
		}
		fmt.Printf("%#011x  ; %s\n", word, isa.FormatInstruction(in))
		return nil
	case "dis":
		if len(args) < 2 {
			return fmt.Errorf("dis needs a hex word")
		}
		word, err := strconv.ParseUint(strings.TrimPrefix(args[1], "0x"), 16, 64)
		if err != nil {
			return err
		}
		in := isa.Decode(word)
		if err := in.Validate(cfg.Geometry, cfg.TRD); err != nil {
			return fmt.Errorf("decoded instruction invalid: %w", err)
		}
		fmt.Println(isa.FormatInstruction(in))
		return nil
	case "ops":
		fmt.Println("mnemonics: nop read write and or nand nor xor xnor not add mult max relu vote div mod shl shr fma")
		fmt.Println("pimc-only: sub (lowered to not + add-with-one); shl/shr carry imm=<amount>")
		fmt.Printf("blocksizes: %v\n", params.BlockSizes)
		fmt.Printf("operands: 1..%d (TRD=%d)\n", cfg.TRD.MaxBulkOperands(), int(cfg.TRD))
		return nil
	case "vet":
		if len(args) < 2 {
			return fmt.Errorf("vet needs program files")
		}
		return vetProgs(cfg, args[1:])
	case "compile":
		if len(args) < 2 {
			return fmt.Errorf("compile needs a program file")
		}
		return compileProg(cfg, args[1], *level, *dump, *tracePath, *jsonlPath, *metrics, false, *prof)
	case "exec":
		if len(args) < 2 {
			return fmt.Errorf("exec needs instruction strings or a program file")
		}
		if len(args) == 2 {
			if _, err := os.Stat(args[1]); err == nil {
				return compileProg(cfg, args[1], *level, *dump, *tracePath, *jsonlPath, *metrics, true, *prof)
			}
		}
		if *prof {
			return fmt.Errorf("-profile compares the placement model against a profiled run, so it needs a program file")
		}
		return exec(cfg, args[1:], *tracePath, *jsonlPath, *metrics, *workers)
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

// vetProgs verifies each program file and prints its diagnostics as
// "file:line: class: severity: message". Warnings alone exit zero;
// any error makes the whole run fail after every file has printed.
func vetProgs(cfg params.Config, paths []string) error {
	bad := 0
	for _, path := range paths {
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		diags := compile.Vet(string(src), cfg.Geometry)
		for _, d := range diags {
			fmt.Printf("%s:%s\n", path, strings.TrimPrefix(d.String(), "line "))
			if d.Err {
				bad++
			}
		}
	}
	if bad > 0 {
		return fmt.Errorf("vet: %d error(s)", bad)
	}
	return nil
}

// newRecorder wires the telemetry flags into a recorder (nil when no
// flag asked for one) plus the files to close afterwards. Extra sinks
// (the hardware profiler) force recorder creation.
func newRecorder(cfg params.Config, tracePath, jsonlPath string, metrics bool, extra ...telemetry.Sink) (*telemetry.Recorder, []*os.File, error) {
	var sinks []telemetry.Sink
	var files []*os.File
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return nil, nil, err
		}
		files = append(files, f)
		sinks = append(sinks, telemetry.NewChromeSink(f))
	}
	if jsonlPath != "" {
		f, err := os.Create(jsonlPath)
		if err != nil {
			for _, f := range files {
				f.Close()
			}
			return nil, nil, err
		}
		files = append(files, f)
		sinks = append(sinks, telemetry.NewJSONLSink(f))
	}
	sinks = append(sinks, extra...)
	var rec *telemetry.Recorder
	if len(sinks) > 0 || metrics {
		rec = telemetry.NewRecorder(cfg, sinks...)
	}
	return rec, files, nil
}

// compileProg compiles a pimasm program file through pimc and, when run
// is set, executes the plan on a fresh memory with deterministic input
// rows and prints every stored output.
func compileProg(cfg params.Config, path string, level int, dump bool, tracePath, jsonlPath string, metrics, run, profiled bool) error {
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var prof *profile.Profiler
	var extra []telemetry.Sink
	if profiled && run {
		prof = profile.New(cfg)
		extra = append(extra, prof)
	}
	rec, files, err := newRecorder(cfg, tracePath, jsonlPath, metrics, extra...)
	if err != nil {
		return err
	}
	runErr := func() error {
		opts := compile.Options{Level: level, Recorder: rec}
		if dump {
			opts.Dump = func(pass, text string) {
				fmt.Printf("--- %s ---\n%s", pass, text)
			}
		}
		res, err := compile.Compile(string(src), cfg, opts)
		if err != nil {
			return err
		}
		fmt.Printf("plan (-O%d): %d steps, %d requests in %d batches\n",
			level, len(res.Plan.Steps), res.Stats.Requests, res.Stats.Batches)
		fmt.Printf("cost model: %d cross-DBC moves, %d port shifts\n",
			res.Stats.CrossDBCMoves, res.Stats.PortShifts)
		if level >= 1 {
			fmt.Printf("vs naive:   %d cross-DBC moves, %d port shifts (saved %d moves, %d shifts)\n",
				res.Naive.CrossDBCMoves, res.Naive.PortShifts,
				res.Naive.CrossDBCMoves-res.Stats.CrossDBCMoves,
				res.Naive.PortShifts-res.Stats.PortShifts)
		}
		if !run {
			if profiled {
				writeProfileReport(os.Stdout, res.ShiftsByDBC, nil)
			}
			if !dump {
				fmt.Print(res.Plan.String())
			}
			return nil
		}
		m, err := memory.New(cfg)
		if err != nil {
			return err
		}
		if rec != nil {
			m.SetTelemetry(rec)
		}
		width := cfg.Geometry.TrackWidth
		for i, in := range res.Inputs {
			lanes := make([]uint64, width/8)
			for j := range lanes {
				lanes[j] = uint64(7*i+3*j+1) % 256
			}
			row, err := pim.PackLanes(lanes, 8, width)
			if err != nil {
				return err
			}
			if err := m.WriteRow(in.Addr, row); err != nil {
				return err
			}
		}
		if err := res.Plan.Run(m); err != nil {
			return err
		}
		for _, out := range res.Outputs {
			row, err := m.ReadRow(out.Addr)
			if err != nil {
				return err
			}
			if out.Blocksize > 0 {
				vals := pim.UnpackLanes(row, out.Blocksize)
				fmt.Printf("%%%s @ %s (bs=%d): %v\n", out.Name, isa.FormatAddr(out.Addr), out.Blocksize, preview(vals, 8))
			} else {
				fmt.Printf("%%%s @ %s: raw row\n", out.Name, isa.FormatAddr(out.Addr))
			}
		}
		moves, stats := m.Moves(), m.Stats()
		fmt.Printf("measured: %d row copies, %d shift steps, %d cycles, makespan %d\n",
			moves.RowCopies, stats.ShiftSteps, stats.Cycles(), m.Recorder().Makespan())
		if prof != nil {
			writeProfileReport(os.Stdout, res.ShiftsByDBC, prof.ShiftStepsBySource())
		}
		return nil
	}()
	if err := rec.Close(); err != nil && runErr == nil {
		runErr = err
	}
	for _, f := range files {
		if err := f.Close(); err != nil && runErr == nil {
			runErr = err
		}
	}
	if runErr == nil && metrics && rec != nil {
		runErr = rec.Metrics().WriteText(os.Stdout)
	}
	return runErr
}

// exec parses each instruction string and runs the stream across a pool
// of cpim controller lanes, synthesizing deterministic operand rows, so
// the encoded stream's cost and behaviour can be inspected without
// writing a program. Results print in program order and telemetry is
// replayed in program order, so any -workers value produces identical
// output.
func exec(cfg params.Config, instrs []string, tracePath, jsonlPath string, metrics bool, workers int) error {
	rec, files, err := newRecorder(cfg, tracePath, jsonlPath, metrics)
	if err != nil {
		return err
	}

	runErr := func() error {
		jobs := make([]isa.LaneJob, len(instrs))
		for i, text := range instrs {
			in, err := isa.ParseInstruction(text)
			if err != nil {
				return err
			}
			jobs[i] = isa.LaneJob{In: in, Operands: operandRows(cfg.Geometry.TrackWidth, in)}
		}
		pool, err := isa.NewLanePool(cfg, workers)
		if err != nil {
			return err
		}
		results := pool.Run(jobs, rec)
		for i, res := range results {
			if res.Err != nil {
				return res.Err
			}
			in := jobs[i].In
			fmt.Printf("%s\n", isa.FormatInstruction(in))
			if bs := laneWidth(in); bs > 0 && res.Row.N > 0 {
				vals := pim.UnpackLanes(res.Row, bs)
				fmt.Printf("  result lanes (bs=%d): %v\n", bs, preview(vals, 8))
			}
			fmt.Printf("  cost: %d cycles, %.1f pJ\n", res.Stats.Cycles(), res.Stats.EnergyPJ(cfg.Energy, cfg.TRD))
		}
		return nil
	}()

	if err := rec.Close(); err != nil && runErr == nil {
		runErr = err
	}
	for _, f := range files {
		if err := f.Close(); err != nil && runErr == nil {
			runErr = err
		}
	}
	if runErr == nil && metrics && rec != nil {
		runErr = rec.Metrics().WriteText(os.Stdout)
	}
	if tracePath != "" && runErr == nil {
		fmt.Fprintf(os.Stderr, "pimasm: wrote %s (open in https://ui.perfetto.dev)\n", tracePath)
	}
	return runErr
}

// operandRows synthesizes deterministic operand rows for an exec
// instruction: lane j of operand i holds (7i+3j+1) mod 2^min(bs,8), so
// results are reproducible and non-trivial.
func operandRows(width int, in isa.Instruction) []dbc.Row {
	bs := laneWidth(in)
	if bs == 0 {
		bs = 8
	}
	valBits := bs
	if in.Op == isa.OpMult {
		valBits = bs / 2 // multiplier lanes carry bs/2-bit inputs
	}
	if valBits > 8 {
		valBits = 8
	}
	mod := uint64(1) << uint(valBits)
	rows := make([]dbc.Row, in.Operands)
	for i := range rows {
		lanes := make([]uint64, width/bs)
		for j := range lanes {
			lanes[j] = uint64(7*i+3*j+1) % mod
		}
		r, err := pim.PackLanes(lanes, bs, width)
		if err != nil {
			// Lane widths are validated by the instruction parser, so
			// packing can only fail on a geometry mismatch; surface it
			// as an empty operand and let Execute report the error.
			return rows
		}
		if in.Op == isa.OpVote && i > 0 {
			r = rows[0] // identical replicas vote cleanly
		}
		rows[i] = r
	}
	return rows
}

// laneWidth returns the lane size results should be unpacked at, or 0
// when the op has no lane structure.
func laneWidth(in isa.Instruction) int {
	switch in.Op {
	case isa.OpNop, isa.OpRead, isa.OpWrite, isa.OpVote,
		isa.OpAnd, isa.OpOr, isa.OpNand, isa.OpNor, isa.OpXor, isa.OpXnor, isa.OpNot:
		return 0
	}
	return in.Blocksize
}

// preview truncates a slice for display.
func preview(vals []uint64, n int) []uint64 {
	if len(vals) <= n {
		return vals
	}
	return vals[:n]
}

// writeProfileReport prints the model-vs-measured shift table per DBC:
// the placement cost model's predicted align steps against the shift
// steps the hardware profiler measured during the run. measured may be
// nil (compile without exec), which prints the prediction column only.
// The two sides are joined on the isa.DBCSource name, so staging DBCs
// the model priced and DBCs only the runtime touched both show up.
func writeProfileReport(w io.Writer, model map[string]int, measured map[string]uint64) {
	names := make(map[string]bool, len(model)+len(measured))
	for n := range model {
		names[n] = true
	}
	for n := range measured {
		names[n] = true
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)

	if measured == nil {
		fmt.Fprintln(w, "profile: predicted shift steps per DBC")
		fmt.Fprintf(w, "  %-20s %8s\n", "DBC", "MODEL")
		total := 0
		for _, n := range sorted {
			fmt.Fprintf(w, "  %-20s %8d\n", n, model[n])
			total += model[n]
		}
		fmt.Fprintf(w, "  %-20s %8d\n", "total", total)
		return
	}
	fmt.Fprintln(w, "profile: model vs measured shift steps per DBC")
	fmt.Fprintf(w, "  %-20s %8s %8s %8s\n", "DBC", "MODEL", "MEASURED", "DELTA")
	var mTotal, sTotal int64
	for _, n := range sorted {
		mod, meas := int64(model[n]), int64(measured[n])
		fmt.Fprintf(w, "  %-20s %8d %8d %+8d\n", n, mod, meas, meas-mod)
		mTotal += mod
		sTotal += meas
	}
	fmt.Fprintf(w, "  %-20s %8d %8d %+8d\n", "total", mTotal, sTotal, sTotal-mTotal)
}
