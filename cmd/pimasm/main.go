// Command pimasm assembles and disassembles cpim instruction words
// (§III-E), the binary form a CPU writes to the memory controller.
//
// Usage:
//
//	pimasm asm "add b2.s10.t0.d15.r0 bs=8 k=3"
//	pimasm dis 0x20078142a
//	pimasm ops                     # list mnemonics and limits
package main

import (
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/isa"
	"repro/internal/params"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "pimasm:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		fmt.Println("usage: pimasm asm \"<op> <addr> [bs=N] [k=N]\" | dis <hexword> | ops")
		return nil
	}
	cfg := params.DefaultConfig()
	switch args[0] {
	case "asm":
		if len(args) < 2 {
			return fmt.Errorf("asm needs an instruction string")
		}
		in, err := isa.ParseInstruction(strings.Join(args[1:], " "))
		if err != nil {
			return err
		}
		word, err := in.Encode(cfg.Geometry, cfg.TRD)
		if err != nil {
			return err
		}
		fmt.Printf("%#011x  ; %s\n", word, isa.FormatInstruction(in))
		return nil
	case "dis":
		if len(args) < 2 {
			return fmt.Errorf("dis needs a hex word")
		}
		word, err := strconv.ParseUint(strings.TrimPrefix(args[1], "0x"), 16, 64)
		if err != nil {
			return err
		}
		in := isa.Decode(word)
		if err := in.Validate(cfg.Geometry, cfg.TRD); err != nil {
			return fmt.Errorf("decoded instruction invalid: %w", err)
		}
		fmt.Println(isa.FormatInstruction(in))
		return nil
	case "ops":
		fmt.Println("mnemonics: nop read write and or nand nor xor xnor not add mult max relu vote")
		fmt.Printf("blocksizes: %v\n", params.BlockSizes)
		fmt.Printf("operands: 1..%d (TRD=%d)\n", cfg.TRD.MaxBulkOperands(), int(cfg.TRD))
		return nil
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}
