package main

import (
	"context"
	"fmt"
	"os"
	"strings"

	"repro/internal/params"
	"repro/internal/service"
)

// loadFlags carries the load subcommand's flag values.
type loadFlags struct {
	clients      int
	requests     int
	blocksize    int
	compileEvery int
	seed         int64
}

// loadTarget normalizes a coruscantd base URL: bare host:port or
// ":7917" gets the scheme, paths are stripped.
func loadTarget(target string) string {
	if !strings.Contains(target, "://") {
		if strings.HasPrefix(target, ":") {
			target = "localhost" + target
		}
		target = "http://" + target
	}
	return strings.TrimRight(target, "/")
}

// runLoad soaks a running coruscantd with the mixed service workload:
// concurrent clients, disjoint bank slices, every read bit-checked
// against a private serial mirror. The device model is taken from the
// server's own /v1/health geometry, so the mirrors match the shards.
func runLoad(target string, lf loadFlags) error {
	base := loadTarget(target)
	h, err := service.NewClient(base, nil).Health(context.Background())
	if err != nil {
		return fmt.Errorf("load: health probe of %s: %w", base, err)
	}
	device := params.DefaultConfig()
	g := &device.Geometry
	g.Banks = h.Geometry.Banks
	g.SubarraysPerBank = h.Geometry.SubarraysPerBank
	g.TilesPerSubarray = h.Geometry.TilesPerSubarray
	g.DBCsPerTile = h.Geometry.DBCsPerTile
	g.PIMDBCsPerTile = h.Geometry.PIMDBCsPerTile
	g.PIMTilesPerSub = h.Geometry.PIMTilesPerSub
	g.TrackWidth = h.Geometry.TrackWidth
	g.RowsPerDBC = h.Geometry.RowsPerDBC
	if err := device.Validate(); err != nil {
		return fmt.Errorf("load: server geometry: %w", err)
	}

	fmt.Fprintf(os.Stderr, "load: %s — %d shard(s), %d clients x %d requests\n",
		base, h.Shards, lf.clients, lf.requests)
	rep, err := service.RunLoad(context.Background(), service.LoadConfig{
		Base:         base,
		Device:       device,
		Shards:       h.Shards,
		Clients:      lf.clients,
		Requests:     lf.requests,
		Blocksize:    lf.blocksize,
		CompileEvery: lf.compileEvery,
		Seed:         lf.seed,
	})
	if err != nil {
		return err
	}
	fmt.Printf("clients         %d\n", rep.Clients)
	fmt.Printf("requests ok     %d (%.0f req/s)\n", rep.Sent, rep.ReqPerS)
	fmt.Printf("bit checks      %d (%d mismatches)\n", rep.BitChecks, rep.Mismatch)
	fmt.Printf("latency         p50 %v  p95 %v\n", rep.P50, rep.P95)
	fmt.Printf("backpressure    quota %d  overload %d  retries %d\n",
		rep.QuotaRejected, rep.OverloadRejected, rep.Retries)
	fmt.Printf("errors          %d\n", rep.Errors)
	fmt.Printf("elapsed         %v\n", rep.Elapsed)
	if rep.Mismatch > 0 {
		return fmt.Errorf("load: %d bit-identity mismatches against serial execution", rep.Mismatch)
	}
	if rep.Errors > 0 {
		return fmt.Errorf("load: %d requests failed", rep.Errors)
	}
	return nil
}
