// Command coruscant regenerates the paper's evaluation tables and
// figures and offers small demonstrations of the PIM unit.
//
// Usage:
//
//	coruscant all                 # every table and figure, paper order
//	coruscant table1 table3 ...   # selected experiments
//	coruscant fig10 fig11 fig12
//	coruscant demo                # bit-level PIM walkthrough
//	coruscant list                # experiment ids
package main

import (
	"fmt"
	"os"

	"repro/internal/dbc"
	"repro/internal/experiments"
	"repro/internal/params"
	"repro/internal/pim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "coruscant:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		usage()
		return nil
	}
	for _, arg := range args {
		switch arg {
		case "help", "-h", "--help":
			usage()
		case "list":
			for _, id := range experiments.IDs() {
				fmt.Println(id)
			}
		case "all":
			tables, err := experiments.All()
			if err != nil {
				return err
			}
			for _, t := range tables {
				t.Render(os.Stdout)
			}
		case "demo":
			if err := demo(); err != nil {
				return err
			}
		case "json":
			tables, err := experiments.All()
			if err != nil {
				return err
			}
			for i, t := range tables {
				b, err := t.JSON()
				if err != nil {
					return err
				}
				if i > 0 {
					fmt.Println(",")
				} else {
					fmt.Println("[")
				}
				os.Stdout.Write(b)
			}
			fmt.Println("\n]")
		case "svg":
			// Render the figure-style experiments to SVG files in the
			// working directory.
			for _, id := range []string{"fig10", "fig11", "fig12", "sens"} {
				svg, err := experiments.FigureSVG(id)
				if err != nil {
					return err
				}
				name := id + ".svg"
				if err := os.WriteFile(name, []byte(svg), 0o644); err != nil {
					return err
				}
				fmt.Println("wrote", name)
			}
		default:
			gen, err := experiments.ByID(arg)
			if err != nil {
				return err
			}
			t, err := gen()
			if err != nil {
				return err
			}
			t.Render(os.Stdout)
		}
	}
	return nil
}

func usage() {
	fmt.Println("usage: coruscant [all|demo|svg|json|list|<experiment>...]")
	fmt.Println("experiments:", experiments.IDs())
}

// demo walks through the PIM unit's core operations at the bit level.
func demo() error {
	cfg := params.DefaultConfig()
	cfg.Geometry.TrackWidth = 64
	u, err := pim.NewUnit(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("PIM unit: %d nanowires x %d rows, %v (window at rows %d..%d)\n",
		u.Width(), cfg.Geometry.RowsPerDBC, cfg.TRD,
		first(params.PortPlacement(cfg.Geometry.RowsPerDBC, cfg.TRD)),
		second(params.PortPlacement(cfg.Geometry.RowsPerDBC, cfg.TRD)))

	// Five-operand addition, eight 8-bit lanes at once.
	vals := [][]uint64{
		{10, 20, 30, 40, 50, 60, 70, 80},
		{1, 2, 3, 4, 5, 6, 7, 8},
		{100, 90, 80, 70, 60, 50, 40, 30},
		{5, 5, 5, 5, 5, 5, 5, 5},
		{9, 8, 7, 6, 5, 4, 3, 2},
	}
	rows := make([]dbc.Row, len(vals))
	for i, v := range vals {
		r, err := pim.PackLanes(v, 8, u.Width())
		if err != nil {
			return err
		}
		rows[i] = r
	}
	sum, err := u.AddMulti(rows, 8)
	if err != nil {
		return err
	}
	fmt.Println("5-operand add:", pim.UnpackLanes(sum, 8))
	fmt.Println("trace:", u.Stats())

	// Multiplication.
	u.ResetStats()
	prods, err := u.MultiplyValues([]uint64{13, 250, 99, 7}, []uint64{11, 250, 44, 200}, 8)
	if err != nil {
		return err
	}
	fmt.Println("multiply:", prods)
	fmt.Println("trace:", u.Stats())

	// Max pooling.
	u.ResetStats()
	cands := make([]dbc.Row, 4)
	for i, v := range [][]uint64{
		{3, 200, 17, 4, 90, 6, 250, 1},
		{77, 3, 18, 200, 13, 91, 4, 2},
		{5, 100, 200, 6, 7, 8, 9, 255},
		{60, 60, 60, 60, 60, 60, 60, 60},
	} {
		r, err := pim.PackLanes(v, 8, u.Width())
		if err != nil {
			return err
		}
		cands[i] = r
	}
	maxRow, err := u.MaxTR(cands, 8)
	if err != nil {
		return err
	}
	fmt.Println("max (TR tournament):", pim.UnpackLanes(maxRow, 8))
	fmt.Println("trace:", u.Stats())
	return nil
}

func first(a, _ int) int  { return a }
func second(_, b int) int { return b }
