// Command coruscant regenerates the paper's evaluation tables and
// figures and offers small demonstrations of the PIM unit.
//
// Usage:
//
//	coruscant all                 # every table and figure, paper order
//	coruscant table1 table3 ...   # selected experiments
//	coruscant fig10 fig11 fig12
//	coruscant demo                # bit-level PIM walkthrough
//	coruscant batch               # bank-parallel ExecuteBatch demo
//	coruscant campaign            # fault-recovery Monte Carlo sweep
//	coruscant list                # experiment ids
//
// Campaign flags (with the campaign subcommand):
//
//	coruscant -p 1e-3 -ops 10000 -policy nmr3 campaign
//	coruscant -policy dup -retries 5 campaign
//
// Observability flags (most useful with demo, which drives the PIM
// unit through a telemetry recorder):
//
//	coruscant -trace out.json demo   # Chrome trace_event JSON; open in
//	                                 # https://ui.perfetto.dev
//	coruscant -jsonl out.jsonl demo  # one JSON event per line
//	coruscant -metrics demo          # text metrics report on exit
//	coruscant -debug-addr :8080 all  # /debug/vars + /debug/pprof server
//	coruscant -cpuprofile cpu.pb all # runtime profiles
package main

import (
	_ "expvar" // registers /debug/vars on the default mux
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/dbc"
	"repro/internal/experiments"
	"repro/internal/isa"
	"repro/internal/memory"
	"repro/internal/params"
	"repro/internal/pim"
	"repro/internal/reliability"
	"repro/internal/resilient"
	"repro/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "coruscant:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("coruscant", flag.ContinueOnError)
	tracePath := fs.String("trace", "", "write a Chrome trace_event JSON file (open in Perfetto)")
	jsonlPath := fs.String("jsonl", "", "write telemetry events as JSON lines")
	metrics := fs.Bool("metrics", false, "print the telemetry metrics report on exit")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile")
	memProfile := fs.String("memprofile", "", "write a heap profile on exit")
	debugAddr := fs.String("debug-addr", "", "serve /debug/vars and /debug/pprof on this address")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "worker goroutines for the batch and campaign subcommands")
	faultP := fs.Float64("p", 1e-3, "campaign: per-sense TR fault probability (§V-F)")
	shiftP := fs.Float64("shift-p", 0, "campaign: per-step shift fault probability")
	campaignOps := fs.Int("ops", 10000, "campaign: number of cpim operations")
	policySpec := fs.String("policy", "nmr3", "campaign: recovery policy (off|dup|nmr3|nmr5|nmr7)")
	retries := fs.Int("retries", -1, "campaign: retry budget override (-1 = policy default)")
	quarantineAfter := fs.Int("quarantine-after", 0, "campaign: detected faults per DBC before quarantine (0 = never)")
	seed := fs.Int64("seed", 1, "campaign: workload and fault-stream seed")
	fs.Usage = func() {
		usage()
		fmt.Println("flags:")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	args = fs.Args()
	if len(args) == 0 {
		fs.Usage()
		return nil
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *debugAddr != "" {
		// Expose expvar (/debug/vars) and pprof (/debug/pprof) for the
		// duration of the run; telemetry metrics publish there too.
		go func() {
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "coruscant: debug server:", err)
			}
		}()
	}

	// Assemble the telemetry recorder when any observability output is
	// requested; a nil recorder keeps the disabled path free.
	var sinks []telemetry.Sink
	var closers []*os.File
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			return err
		}
		closers = append(closers, f)
		sinks = append(sinks, telemetry.NewChromeSink(f))
	}
	if *jsonlPath != "" {
		f, err := os.Create(*jsonlPath)
		if err != nil {
			return err
		}
		closers = append(closers, f)
		sinks = append(sinks, telemetry.NewJSONLSink(f))
	}
	var rec *telemetry.Recorder
	if len(sinks) > 0 || *metrics || *debugAddr != "" {
		rec = telemetry.NewRecorder(params.DefaultConfig(), sinks...)
		rec.Metrics().PublishExpvar("coruscant.telemetry")
	}

	camp := campaignFlags{
		faultP: *faultP, shiftP: *shiftP, ops: *campaignOps,
		policy: *policySpec, retries: *retries,
		quarantineAfter: *quarantineAfter, seed: *seed, workers: *workers,
	}
	runErr := dispatch(args, rec, *workers, camp)

	if err := rec.Close(); err != nil && runErr == nil {
		runErr = err
	}
	for _, f := range closers {
		if err := f.Close(); err != nil && runErr == nil {
			runErr = err
		}
	}
	if runErr == nil && *metrics && rec != nil {
		runErr = rec.Metrics().WriteText(os.Stdout)
	}
	if runErr == nil && *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		runtime.GC()
		runErr = pprof.WriteHeapProfile(f)
	}
	if *tracePath != "" && runErr == nil {
		fmt.Fprintf(os.Stderr, "coruscant: wrote %s (open in https://ui.perfetto.dev)\n", *tracePath)
	}
	return runErr
}

// dispatch runs the positional subcommands with the (possibly nil)
// telemetry recorder.
func dispatch(args []string, rec *telemetry.Recorder, workers int, camp campaignFlags) error {
	for _, arg := range args {
		switch arg {
		case "help", "-h", "--help":
			usage()
		case "list":
			for _, id := range experiments.IDs() {
				fmt.Println(id)
			}
		case "all":
			tables, err := experiments.All()
			if err != nil {
				return err
			}
			for _, t := range tables {
				t.Render(os.Stdout)
			}
		case "demo":
			if err := demo(rec); err != nil {
				return err
			}
		case "batch":
			if err := batchDemo(rec, workers); err != nil {
				return err
			}
		case "campaign":
			if err := runCampaign(camp); err != nil {
				return err
			}
		case "json":
			tables, err := experiments.All()
			if err != nil {
				return err
			}
			for i, t := range tables {
				b, err := t.JSON()
				if err != nil {
					return err
				}
				if i > 0 {
					fmt.Println(",")
				} else {
					fmt.Println("[")
				}
				os.Stdout.Write(b)
			}
			fmt.Println("\n]")
		case "svg":
			// Render the figure-style experiments to SVG files in the
			// working directory.
			for _, id := range []string{"fig10", "fig11", "fig12", "sens"} {
				svg, err := experiments.FigureSVG(id)
				if err != nil {
					return err
				}
				name := id + ".svg"
				if err := os.WriteFile(name, []byte(svg), 0o644); err != nil {
					return err
				}
				fmt.Println("wrote", name)
			}
		default:
			gen, err := experiments.ByID(arg)
			if err != nil {
				return err
			}
			t, err := gen()
			if err != nil {
				return err
			}
			t.Render(os.Stdout)
		}
	}
	return nil
}

func usage() {
	fmt.Println("usage: coruscant [flags] [all|demo|batch|campaign|svg|json|list|<experiment>...]")
	fmt.Println("experiments:", experiments.IDs())
}

// campaignFlags carries the campaign subcommand's flag values.
type campaignFlags struct {
	faultP, shiftP  float64
	ops             int
	policy          string
	retries         int
	quarantineAfter int
	seed            int64
	workers         int
}

// runCampaign drives a fault-injection Monte Carlo sweep through the
// recovered execution path and reports achieved versus raw delivered
// error rates.
func runCampaign(f campaignFlags) error {
	pol, err := resilient.ParsePolicy(f.policy)
	if err != nil {
		return err
	}
	if f.retries >= 0 {
		pol.MaxRetries = f.retries
	}
	pol.QuarantineAfter = f.quarantineAfter
	c := reliability.Campaign{
		TRProb:    f.faultP,
		ShiftProb: f.shiftP,
		Policy:    pol,
		Ops:       f.ops,
		Seed:      f.seed,
		Workers:   f.workers,
	}
	fmt.Printf("campaign: %d ops at p=%g, policy %s (retries=%d, backoff=%d cycles, quarantine-after=%d)\n",
		f.ops, f.faultP, pol, pol.MaxRetries, pol.BackoffCycles, pol.QuarantineAfter)
	rep, err := c.Run()
	if err != nil {
		return err
	}
	fmt.Printf("  raw:       %6d / %d wrong results (%.3e per op)\n", rep.RawErrors, rep.Ops, rep.RawRate())
	fmt.Printf("  recovered: %6d / %d wrong results (%.3e per op)\n", rep.RecovErrors, rep.Ops, rep.RecovRate())
	fmt.Printf("  improvement: %.0fx (error-rate reduction", rep.Improvement())
	if rep.RecovErrors == 0 && rep.RawErrors > 0 {
		fmt.Printf(", lower bound: zero delivered errors")
	}
	fmt.Println(")")
	fmt.Printf("  recovery:  %d detected, %d quarantined (%d remapped to spares)\n",
		rep.Detected, rep.Quarantined, rep.SparesUsed)
	fmt.Printf("  overhead:  %.2fx cycles (%d raw, %d recovered, stalls included)\n",
		rep.Overhead(), rep.RawStats.Cycles(), rep.RecovStats.Cycles())
	return nil
}

// batchDemo exercises the whole-memory model's bank-parallel batch
// path: one cpim add per bank, all submitted as a single ExecuteBatch
// over the requested worker count. Results and telemetry totals are
// identical for any -workers value.
func batchDemo(rec *telemetry.Recorder, workers int) error {
	cfg := params.DefaultConfig()
	cfg.Geometry.TrackWidth = 64
	m, err := memory.New(cfg)
	if err != nil {
		return err
	}
	m.SetTelemetry(rec)
	m.SetWorkers(workers)

	banks := 8
	if banks > cfg.Geometry.Banks {
		banks = cfg.Geometry.Banks
	}
	pimDBC := func(bank int) isa.Addr {
		return isa.Addr{Bank: bank, Tile: 0, DBC: cfg.Geometry.DBCsPerTile - 1}
	}
	reqs := make([]memory.Request, banks)
	for bank := 0; bank < banks; bank++ {
		for r := 0; r < 3; r++ {
			vals := make([]uint64, 8)
			for l := range vals {
				vals[l] = uint64(10*bank + 3*r + l)
			}
			row, err := pim.PackLanes(vals, 8, cfg.Geometry.TrackWidth)
			if err != nil {
				return err
			}
			a := pimDBC(bank)
			a.Row = r
			if err := m.WriteRow(a, row); err != nil {
				return err
			}
		}
		operands := make([]isa.Addr, 3)
		for r := range operands {
			operands[r] = pimDBC(bank)
			operands[r].Row = r
		}
		dst := pimDBC(bank)
		dst.Row = 10
		reqs[bank] = memory.Request{
			In:       isa.Instruction{Op: isa.OpAdd, Src: pimDBC(bank), Blocksize: 8, Operands: 3},
			Operands: operands,
			Dst:      dst,
		}
	}
	fmt.Printf("batch: %d three-operand adds across %d banks, %d workers\n", banks, banks, m.Workers())
	for bank, res := range m.ExecuteBatch(reqs) {
		if res.Err != nil {
			return fmt.Errorf("bank %d: %w", bank, res.Err)
		}
		fmt.Printf("  bank %d: %v\n", bank, pim.UnpackLanes(res.Row, 8))
	}
	st := m.Stats()
	fmt.Printf("totals: %d cycles, %d DBCs materialized, moves %+v\n",
		st.Cycles(), m.MaterializedDBCs(), m.Moves())
	return nil
}

// demo walks through the PIM unit's core operations at the bit level.
// With a telemetry recorder attached, every primitive lands in the
// requested sinks under the "demo" source lane.
func demo(rec *telemetry.Recorder) error {
	cfg := params.DefaultConfig()
	cfg.Geometry.TrackWidth = 64
	u, err := pim.NewUnit(cfg)
	if err != nil {
		return err
	}
	u.SetTelemetry(rec, "demo")
	fmt.Printf("PIM unit: %d nanowires x %d rows, %v (window at rows %d..%d)\n",
		u.Width(), cfg.Geometry.RowsPerDBC, cfg.TRD,
		first(params.PortPlacement(cfg.Geometry.RowsPerDBC, cfg.TRD)),
		second(params.PortPlacement(cfg.Geometry.RowsPerDBC, cfg.TRD)))

	// Five-operand addition, eight 8-bit lanes at once.
	vals := [][]uint64{
		{10, 20, 30, 40, 50, 60, 70, 80},
		{1, 2, 3, 4, 5, 6, 7, 8},
		{100, 90, 80, 70, 60, 50, 40, 30},
		{5, 5, 5, 5, 5, 5, 5, 5},
		{9, 8, 7, 6, 5, 4, 3, 2},
	}
	rows := make([]dbc.Row, len(vals))
	for i, v := range vals {
		r, err := pim.PackLanes(v, 8, u.Width())
		if err != nil {
			return err
		}
		rows[i] = r
	}
	sum, err := u.AddMulti(rows, 8)
	if err != nil {
		return err
	}
	fmt.Println("5-operand add:", pim.UnpackLanes(sum, 8))
	fmt.Println("trace:", u.Stats())

	// Multiplication.
	u.ResetStats()
	prods, err := u.MultiplyValues([]uint64{13, 250, 99, 7}, []uint64{11, 250, 44, 200}, 8)
	if err != nil {
		return err
	}
	fmt.Println("multiply:", prods)
	fmt.Println("trace:", u.Stats())

	// Max pooling.
	u.ResetStats()
	cands := make([]dbc.Row, 4)
	for i, v := range [][]uint64{
		{3, 200, 17, 4, 90, 6, 250, 1},
		{77, 3, 18, 200, 13, 91, 4, 2},
		{5, 100, 200, 6, 7, 8, 9, 255},
		{60, 60, 60, 60, 60, 60, 60, 60},
	} {
		r, err := pim.PackLanes(v, 8, u.Width())
		if err != nil {
			return err
		}
		cands[i] = r
	}
	maxRow, err := u.MaxTR(cands, 8)
	if err != nil {
		return err
	}
	fmt.Println("max (TR tournament):", pim.UnpackLanes(maxRow, 8))
	fmt.Println("trace:", u.Stats())
	if rec != nil {
		fmt.Printf("telemetry: %d cycles, %.1f pJ\n", rec.Cycle(), rec.EnergyPJ())
	}
	return nil
}

func first(a, _ int) int  { return a }
func second(_, b int) int { return b }
