// Command coruscant regenerates the paper's evaluation tables and
// figures and offers small demonstrations of the PIM unit.
//
// Usage:
//
//	coruscant all                 # every table and figure, paper order
//	coruscant table1 table3 ...   # selected experiments
//	coruscant fig10 fig11 fig12
//	coruscant demo                # bit-level PIM walkthrough
//	coruscant batch               # bank-parallel ExecuteBatch demo
//	coruscant campaign            # fault-recovery Monte Carlo sweep
//	coruscant list                # experiment ids
//
// Campaign flags (with the campaign subcommand):
//
//	coruscant -p 1e-3 -ops 10000 -policy nmr3 campaign
//	coruscant -policy dup -retries 5 campaign
//
// Observability flags (most useful with demo, which drives the PIM
// unit through a telemetry recorder):
//
//	coruscant -trace out.json demo   # Chrome trace_event JSON; open in
//	                                 # https://ui.perfetto.dev
//	coruscant -jsonl out.jsonl demo  # one JSON event per line
//	coruscant -metrics demo          # text metrics report on exit
//	coruscant -debug-addr :8080 all  # /debug/vars + /debug/pprof +
//	                                 # /metrics (Prometheus) server
//	coruscant -cpuprofile cpu.pb all # runtime profiles
//
// Any recorder-backed run also feeds the racetrack hardware profiler
// (internal/telemetry/profile): per-DBC wear, head occupancy and
// shift-distance heatmaps. With -debug-addr the profiler serves
// Prometheus text exposition at /metrics, which the live terminal
// heatmap polls:
//
//	coruscant -debug-addr :8080 batch &   # long-running profiled work
//	coruscant top :8080                   # live per-DBC heatmap
//	coruscant -top-count 1 top :8080      # one scrape, then exit
//
// Against a running coruscantd (see cmd/coruscantd), top renders one
// utilization line per (shard, DBC), and the load generator soaks the
// service with mixed traffic, bit-checking every read against a
// private serial mirror:
//
//	coruscantd -shards 4 &
//	coruscant -load-clients 8 -load-requests 2000 load :7917
//	coruscant top :7917
package main

import (
	_ "expvar" // registers /debug/vars on the default mux
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"time"

	"repro/internal/dbc"
	"repro/internal/experiments"
	"repro/internal/isa"
	"repro/internal/memory"
	"repro/internal/params"
	"repro/internal/pim"
	"repro/internal/reliability"
	"repro/internal/resilient"
	"repro/internal/telemetry"
	"repro/internal/telemetry/profile"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "coruscant:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("coruscant", flag.ContinueOnError)
	tracePath := fs.String("trace", "", "write a Chrome trace_event JSON file (open in Perfetto)")
	jsonlPath := fs.String("jsonl", "", "write telemetry events as JSON lines")
	metrics := fs.Bool("metrics", false, "print the telemetry metrics report on exit")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile")
	memProfile := fs.String("memprofile", "", "write a heap profile on exit")
	debugAddr := fs.String("debug-addr", "", "serve /debug/vars and /debug/pprof on this address")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "worker goroutines for the batch and campaign subcommands")
	faultP := fs.Float64("p", 1e-3, "campaign: per-sense TR fault probability (§V-F)")
	shiftP := fs.Float64("shift-p", 0, "campaign: per-step shift fault probability")
	campaignOps := fs.Int("ops", 10000, "campaign: number of cpim operations")
	policySpec := fs.String("policy", "nmr3", "campaign: recovery policy (off|dup|nmr3|nmr5|nmr7)")
	retries := fs.Int("retries", -1, "campaign: retry budget override (-1 = policy default)")
	quarantineAfter := fs.Int("quarantine-after", 0, "campaign: detected faults per DBC before quarantine (0 = never)")
	seed := fs.Int64("seed", 1, "campaign: workload and fault-stream seed")
	topInterval := fs.Duration("top-interval", 2*time.Second, "top: poll interval")
	topN := fs.Int("top-n", 16, "top: show at most this many DBCs (0 = all)")
	topCount := fs.Int("top-count", 0, "top: number of polls before exiting (0 = forever)")
	loadClients := fs.Int("load-clients", 4, "load: concurrent clients")
	loadRequests := fs.Int("load-requests", 500, "load: requests per client")
	loadBlocksize := fs.Int("load-blocksize", 8, "load: lane width of generated arithmetic")
	loadCompileEvery := fs.Int("load-compile-every", 16, "load: every n-th request compiles a pimasm kernel (-1 = never)")
	fs.Usage = func() {
		usage()
		fmt.Println("flags:")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	args = fs.Args()
	if len(args) == 0 {
		fs.Usage()
		return nil
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	// Assemble the telemetry recorder when any observability output is
	// requested; a nil recorder keeps the disabled path free.
	var sinks []telemetry.Sink
	var closers []*os.File
	var chrome *telemetry.ChromeSink
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			return err
		}
		closers = append(closers, f)
		chrome = telemetry.NewChromeSink(f)
		sinks = append(sinks, chrome)
	}
	if *jsonlPath != "" {
		f, err := os.Create(*jsonlPath)
		if err != nil {
			return err
		}
		closers = append(closers, f)
		sinks = append(sinks, telemetry.NewJSONLSink(f))
	}
	var rec *telemetry.Recorder
	if len(sinks) > 0 || *metrics || *debugAddr != "" {
		// Every recorder-backed run also feeds the hardware profiler;
		// with a Chrome sink attached its per-DBC counters stream into
		// the trace as Perfetto counter tracks.
		var opts []profile.Option
		if chrome != nil {
			opts = append(opts, profile.WithChromeCounters(chrome, 64))
		}
		prof := profile.New(params.DefaultConfig(), opts...)
		mountMetrics(prof)
		sinks = append(sinks, prof)
		rec = telemetry.NewRecorder(params.DefaultConfig(), sinks...)
		rec.Metrics().PublishExpvar("coruscant.telemetry")
	}
	if *debugAddr != "" {
		// Expose expvar (/debug/vars), pprof (/debug/pprof) and the
		// profiler's Prometheus exposition (/metrics) for the duration
		// of the run; telemetry metrics publish there too.
		go func() {
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "coruscant: debug server:", err)
			}
		}()
	}

	camp := campaignFlags{
		faultP: *faultP, shiftP: *shiftP, ops: *campaignOps,
		policy: *policySpec, retries: *retries,
		quarantineAfter: *quarantineAfter, seed: *seed, workers: *workers,
	}
	top := topFlags{interval: *topInterval, n: *topN, count: *topCount}
	load := loadFlags{
		clients: *loadClients, requests: *loadRequests,
		blocksize: *loadBlocksize, compileEvery: *loadCompileEvery, seed: *seed,
	}
	runErr := dispatch(args, rec, *workers, camp, top, load)

	if err := rec.Close(); err != nil && runErr == nil {
		runErr = err
	}
	for _, f := range closers {
		if err := f.Close(); err != nil && runErr == nil {
			runErr = err
		}
	}
	if runErr == nil && *metrics && rec != nil {
		runErr = rec.Metrics().WriteText(os.Stdout)
	}
	if runErr == nil && *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		runtime.GC()
		runErr = pprof.WriteHeapProfile(f)
	}
	if *tracePath != "" && runErr == nil {
		fmt.Fprintf(os.Stderr, "coruscant: wrote %s (open in https://ui.perfetto.dev)\n", *tracePath)
	}
	return runErr
}

// mountMetrics publishes the profiler's Prometheus exposition at
// /metrics on the default mux. The handler is registered once per
// process and delegates through a swappable pointer, so repeated run()
// calls (tests) never double-register.
var (
	metricsMu   sync.Mutex
	metricsProf *profile.Profiler
	metricsOnce sync.Once
)

func mountMetrics(p *profile.Profiler) {
	metricsMu.Lock()
	metricsProf = p
	metricsMu.Unlock()
	metricsOnce.Do(func() {
		http.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			metricsMu.Lock()
			p := metricsProf
			metricsMu.Unlock()
			if p == nil {
				http.NotFound(w, r)
				return
			}
			p.Handler().ServeHTTP(w, r)
		})
	})
}

// dispatch runs the positional subcommands with the (possibly nil)
// telemetry recorder. The loop is indexed because `top` consumes the
// following argument as its scrape target.
func dispatch(args []string, rec *telemetry.Recorder, workers int, camp campaignFlags, top topFlags, load loadFlags) error {
	for i := 0; i < len(args); i++ {
		arg := args[i]
		switch arg {
		case "top":
			if i+1 >= len(args) {
				return fmt.Errorf("top needs a target (host:port or URL of a -debug-addr server)")
			}
			i++
			if err := runTop(args[i], top); err != nil {
				return err
			}
		case "load":
			if i+1 >= len(args) {
				return fmt.Errorf("load needs a target (host:port or URL of a coruscantd)")
			}
			i++
			if err := runLoad(args[i], load); err != nil {
				return err
			}
		case "help", "-h", "--help":
			usage()
		case "list":
			for _, id := range experiments.IDs() {
				fmt.Println(id)
			}
		case "all":
			tables, err := experiments.All()
			if err != nil {
				return err
			}
			for _, t := range tables {
				t.Render(os.Stdout)
			}
		case "demo":
			if err := demo(rec); err != nil {
				return err
			}
		case "batch":
			if err := batchDemo(rec, workers); err != nil {
				return err
			}
		case "campaign":
			if err := runCampaign(camp); err != nil {
				return err
			}
		case "json":
			tables, err := experiments.All()
			if err != nil {
				return err
			}
			for i, t := range tables {
				b, err := t.JSON()
				if err != nil {
					return err
				}
				if i > 0 {
					fmt.Println(",")
				} else {
					fmt.Println("[")
				}
				os.Stdout.Write(b)
			}
			fmt.Println("\n]")
		case "svg":
			// Render the figure-style experiments to SVG files in the
			// working directory.
			for _, id := range []string{"fig10", "fig11", "fig12", "sens"} {
				svg, err := experiments.FigureSVG(id)
				if err != nil {
					return err
				}
				name := id + ".svg"
				if err := os.WriteFile(name, []byte(svg), 0o644); err != nil {
					return err
				}
				fmt.Println("wrote", name)
			}
		default:
			gen, err := experiments.ByID(arg)
			if err != nil {
				return err
			}
			t, err := gen()
			if err != nil {
				return err
			}
			t.Render(os.Stdout)
		}
	}
	return nil
}

func usage() {
	fmt.Println("usage: coruscant [flags] [all|demo|batch|campaign|svg|json|list|top <target>|load <target>|<experiment>...]")
	fmt.Println("experiments:", experiments.IDs())
}

// topFlags carries the top subcommand's flag values.
type topFlags struct {
	interval time.Duration
	n        int
	count    int
}

// topTarget normalizes a top scrape target: a bare host:port (or
// ":8080") gets the http scheme and the /metrics path of the
// -debug-addr server; full URLs pass through.
func topTarget(target string) string {
	if !strings.Contains(target, "://") {
		if strings.HasPrefix(target, ":") {
			target = "localhost" + target
		}
		target = "http://" + target
	}
	if i := strings.Index(target, "://"); !strings.Contains(target[i+3:], "/") {
		target += "/metrics"
	}
	return target
}

// runTop polls the profiler's Prometheus endpoint and renders the live
// per-DBC terminal heatmap: utilization, shift and wear counters, the
// hottest row, and align-distance p50/p95.
func runTop(target string, f topFlags) error {
	url := topTarget(target)
	for poll := 0; ; poll++ {
		if f.count > 0 && poll >= f.count {
			return nil
		}
		if poll > 0 {
			time.Sleep(f.interval)
		}
		resp, err := http.Get(url)
		if err != nil {
			return fmt.Errorf("top: %w", err)
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			return fmt.Errorf("top: %s returned %s", url, resp.Status)
		}
		samples, err := profile.ParsePrometheus(resp.Body)
		resp.Body.Close()
		if err != nil {
			return fmt.Errorf("top: %s: %w", url, err)
		}
		if f.count != 1 {
			fmt.Print("\033[2J\033[H") // clear screen between polls
		}
		fmt.Printf("coruscant top — %s — every %v\n\n", url, f.interval)
		profile.RenderTop(os.Stdout, profile.TopFromSamples(samples), f.n)
	}
}

// campaignFlags carries the campaign subcommand's flag values.
type campaignFlags struct {
	faultP, shiftP  float64
	ops             int
	policy          string
	retries         int
	quarantineAfter int
	seed            int64
	workers         int
}

// runCampaign drives a fault-injection Monte Carlo sweep through the
// recovered execution path and reports achieved versus raw delivered
// error rates.
func runCampaign(f campaignFlags) error {
	pol, err := resilient.ParsePolicy(f.policy)
	if err != nil {
		return err
	}
	if f.retries >= 0 {
		pol.MaxRetries = f.retries
	}
	pol.QuarantineAfter = f.quarantineAfter
	c := reliability.Campaign{
		TRProb:    f.faultP,
		ShiftProb: f.shiftP,
		Policy:    pol,
		Ops:       f.ops,
		Seed:      f.seed,
		Workers:   f.workers,
	}
	fmt.Printf("campaign: %d ops at p=%g, policy %s (retries=%d, backoff=%d cycles, quarantine-after=%d)\n",
		f.ops, f.faultP, pol, pol.MaxRetries, pol.BackoffCycles, pol.QuarantineAfter)
	rep, err := c.Run()
	if err != nil {
		return err
	}
	fmt.Printf("  raw:       %6d / %d wrong results (%.3e per op)\n", rep.RawErrors, rep.Ops, rep.RawRate())
	fmt.Printf("  recovered: %6d / %d wrong results (%.3e per op)\n", rep.RecovErrors, rep.Ops, rep.RecovRate())
	fmt.Printf("  improvement: %.0fx (error-rate reduction", rep.Improvement())
	if rep.RecovErrors == 0 && rep.RawErrors > 0 {
		fmt.Printf(", lower bound: zero delivered errors")
	}
	fmt.Println(")")
	fmt.Printf("  recovery:  %d detected, %d quarantined (%d remapped to spares)\n",
		rep.Detected, rep.Quarantined, rep.SparesUsed)
	fmt.Printf("  overhead:  %.2fx cycles (%d raw, %d recovered, stalls included)\n",
		rep.Overhead(), rep.RawStats.Cycles(), rep.RecovStats.Cycles())
	return nil
}

// batchDemo exercises the whole-memory model's bank-parallel batch
// path: one cpim add per bank, all submitted as a single ExecuteBatch
// over the requested worker count. Results and telemetry totals are
// identical for any -workers value.
func batchDemo(rec *telemetry.Recorder, workers int) error {
	cfg := params.DefaultConfig()
	cfg.Geometry.TrackWidth = 64
	m, err := memory.New(cfg)
	if err != nil {
		return err
	}
	m.SetTelemetry(rec)
	m.SetWorkers(workers)

	banks := 8
	if banks > cfg.Geometry.Banks {
		banks = cfg.Geometry.Banks
	}
	pimDBC := func(bank int) isa.Addr {
		return isa.Addr{Bank: bank, Tile: 0, DBC: cfg.Geometry.DBCsPerTile - 1}
	}
	reqs := make([]memory.Request, banks)
	for bank := 0; bank < banks; bank++ {
		for r := 0; r < 3; r++ {
			vals := make([]uint64, 8)
			for l := range vals {
				vals[l] = uint64(10*bank + 3*r + l)
			}
			row, err := pim.PackLanes(vals, 8, cfg.Geometry.TrackWidth)
			if err != nil {
				return err
			}
			a := pimDBC(bank)
			a.Row = r
			if err := m.WriteRow(a, row); err != nil {
				return err
			}
		}
		operands := make([]isa.Addr, 3)
		for r := range operands {
			operands[r] = pimDBC(bank)
			operands[r].Row = r
		}
		dst := pimDBC(bank)
		dst.Row = 10
		reqs[bank] = memory.Request{
			In:       isa.Instruction{Op: isa.OpAdd, Src: pimDBC(bank), Blocksize: 8, Operands: 3},
			Operands: operands,
			Dst:      dst,
		}
	}
	fmt.Printf("batch: %d three-operand adds across %d banks, %d workers\n", banks, banks, m.Workers())
	for bank, res := range m.ExecuteBatch(reqs) {
		if res.Err != nil {
			return fmt.Errorf("bank %d: %w", bank, res.Err)
		}
		fmt.Printf("  bank %d: %v\n", bank, pim.UnpackLanes(res.Row, 8))
	}
	st := m.Stats()
	fmt.Printf("totals: %d cycles, %d DBCs materialized, moves %+v\n",
		st.Cycles(), m.MaterializedDBCs(), m.Moves())
	return nil
}

// demo walks through the PIM unit's core operations at the bit level.
// With a telemetry recorder attached, every primitive lands in the
// requested sinks under the "demo" source lane.
func demo(rec *telemetry.Recorder) error {
	cfg := params.DefaultConfig()
	cfg.Geometry.TrackWidth = 64
	u, err := pim.NewUnit(cfg)
	if err != nil {
		return err
	}
	u.SetTelemetry(rec, "demo")
	fmt.Printf("PIM unit: %d nanowires x %d rows, %v (window at rows %d..%d)\n",
		u.Width(), cfg.Geometry.RowsPerDBC, cfg.TRD,
		first(params.PortPlacement(cfg.Geometry.RowsPerDBC, cfg.TRD)),
		second(params.PortPlacement(cfg.Geometry.RowsPerDBC, cfg.TRD)))

	// Five-operand addition, eight 8-bit lanes at once.
	vals := [][]uint64{
		{10, 20, 30, 40, 50, 60, 70, 80},
		{1, 2, 3, 4, 5, 6, 7, 8},
		{100, 90, 80, 70, 60, 50, 40, 30},
		{5, 5, 5, 5, 5, 5, 5, 5},
		{9, 8, 7, 6, 5, 4, 3, 2},
	}
	rows := make([]dbc.Row, len(vals))
	for i, v := range vals {
		r, err := pim.PackLanes(v, 8, u.Width())
		if err != nil {
			return err
		}
		rows[i] = r
	}
	sum, err := u.AddMulti(rows, 8)
	if err != nil {
		return err
	}
	fmt.Println("5-operand add:", pim.UnpackLanes(sum, 8))
	fmt.Println("trace:", u.Stats())

	// Multiplication.
	u.ResetStats()
	prods, err := u.MultiplyValues([]uint64{13, 250, 99, 7}, []uint64{11, 250, 44, 200}, 8)
	if err != nil {
		return err
	}
	fmt.Println("multiply:", prods)
	fmt.Println("trace:", u.Stats())

	// Max pooling.
	u.ResetStats()
	cands := make([]dbc.Row, 4)
	for i, v := range [][]uint64{
		{3, 200, 17, 4, 90, 6, 250, 1},
		{77, 3, 18, 200, 13, 91, 4, 2},
		{5, 100, 200, 6, 7, 8, 9, 255},
		{60, 60, 60, 60, 60, 60, 60, 60},
	} {
		r, err := pim.PackLanes(v, 8, u.Width())
		if err != nil {
			return err
		}
		cands[i] = r
	}
	maxRow, err := u.MaxTR(cands, 8)
	if err != nil {
		return err
	}
	fmt.Println("max (TR tournament):", pim.UnpackLanes(maxRow, 8))
	fmt.Println("trace:", u.Stats())
	if rec != nil {
		fmt.Printf("telemetry: %d cycles, %.1f pJ\n", rec.Cycle(), rec.EnergyPJ())
	}
	return nil
}

func first(a, _ int) int  { return a }
func second(_, b int) int { return b }
