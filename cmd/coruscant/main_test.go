package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/telemetry"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknown(t *testing.T) {
	if err := run([]string{"nosuch-experiment"}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunSingleExperiment(t *testing.T) {
	if err := run([]string{"table1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunMultiple(t *testing.T) {
	if err := run([]string{"table1", "sens"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunDemo(t *testing.T) {
	if err := run([]string{"demo"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunHelpAndEmpty(t *testing.T) {
	if err := run(nil); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"help"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunDemoWithTraceProducesValidChromeJSON(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "out.json")
	jsonlPath := filepath.Join(dir, "out.jsonl")
	if err := run([]string{"-trace", tracePath, "-jsonl", jsonlPath, "-metrics", "demo"}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	records, err := telemetry.ValidateChromeTrace(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) == 0 {
		t.Fatal("trace file has no events")
	}
	jl, err := os.ReadFile(jsonlPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(jl) == 0 {
		t.Fatal("jsonl file is empty")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-nosuch-flag", "demo"}); err == nil {
		t.Error("unknown flag accepted")
	}
}
