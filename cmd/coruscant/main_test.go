package main

import "testing"

func TestRunList(t *testing.T) {
	if err := run([]string{"list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknown(t *testing.T) {
	if err := run([]string{"nosuch-experiment"}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunSingleExperiment(t *testing.T) {
	if err := run([]string{"table1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunMultiple(t *testing.T) {
	if err := run([]string{"table1", "sens"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunDemo(t *testing.T) {
	if err := run([]string{"demo"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunHelpAndEmpty(t *testing.T) {
	if err := run(nil); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"help"}); err != nil {
		t.Fatal(err)
	}
}
