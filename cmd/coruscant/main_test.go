package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/params"
	"repro/internal/telemetry"
	"repro/internal/telemetry/profile"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknown(t *testing.T) {
	if err := run([]string{"nosuch-experiment"}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunSingleExperiment(t *testing.T) {
	if err := run([]string{"table1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunMultiple(t *testing.T) {
	if err := run([]string{"table1", "sens"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunDemo(t *testing.T) {
	if err := run([]string{"demo"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunHelpAndEmpty(t *testing.T) {
	if err := run(nil); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"help"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunDemoWithTraceProducesValidChromeJSON(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "out.json")
	jsonlPath := filepath.Join(dir, "out.jsonl")
	if err := run([]string{"-trace", tracePath, "-jsonl", jsonlPath, "-metrics", "demo"}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	records, err := telemetry.ValidateChromeTrace(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) == 0 {
		t.Fatal("trace file has no events")
	}
	jl, err := os.ReadFile(jsonlPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(jl) == 0 {
		t.Fatal("jsonl file is empty")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-nosuch-flag", "demo"}); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestTopTargetNormalization(t *testing.T) {
	for in, want := range map[string]string{
		":8080":                        "http://localhost:8080/metrics",
		"host:9090":                    "http://host:9090/metrics",
		"http://host:9090":             "http://host:9090/metrics",
		"http://host:9090/metrics":     "http://host:9090/metrics",
		"https://host/custom/endpoint": "https://host/custom/endpoint",
	} {
		if got := topTarget(in); got != want {
			t.Errorf("topTarget(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestRunTopAgainstScrapeEndpoint drives `coruscant top` against a
// live Prometheus endpoint backed by a profiled batch run and checks
// the rendered heatmap names real DBCs.
func TestRunTopAgainstScrapeEndpoint(t *testing.T) {
	// A profiled workload behind the same handler the -debug-addr mux
	// mounts.
	prof, rec := newTestProfiler(t)
	if err := batchDemo(rec, 2); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(prof.Handler())
	defer srv.Close()

	out := captureStdout(t, func() {
		if err := run([]string{"-top-count", "1", "-top-n", "4", "top", srv.URL}); err != nil {
			t.Fatal(err)
		}
	})
	if !strings.Contains(out, "coruscant top") {
		t.Errorf("top output lacks header:\n%s", out)
	}
	if !strings.Contains(out, "b0.s0.t0.d") {
		t.Errorf("top output names no DBCs:\n%s", out)
	}
	for _, col := range []string{"UTIL", "SHIFTS", "WEAR", "P95"} {
		if !strings.Contains(out, col) {
			t.Errorf("top output lacks column %q:\n%s", col, out)
		}
	}

	// Without a target the subcommand refuses.
	if err := run([]string{"top"}); err == nil {
		t.Error("top without a target accepted")
	}
	// An unreachable target is an error, not a hang.
	if err := run([]string{"-top-count", "1", "top", "127.0.0.1:1"}); err == nil {
		t.Error("top against a dead endpoint succeeded")
	}
}

// TestMetricsMountOnDefaultMux checks a recorder-backed run leaves the
// profiler scrapeable at /metrics on the default mux (what -debug-addr
// serves), and that repeated runs swap the profiler without
// double-registering the route.
func TestMetricsMountOnDefaultMux(t *testing.T) {
	for i := 0; i < 2; i++ {
		if err := run([]string{"-metrics", "batch"}); err != nil {
			t.Fatal(err)
		}
		req := httptest.NewRequest("GET", "/metrics", nil)
		rr := httptest.NewRecorder()
		http.DefaultServeMux.ServeHTTP(rr, req)
		if rr.Code != http.StatusOK {
			t.Fatalf("run %d: /metrics returned %d", i, rr.Code)
		}
		samples, err := profile.ParsePrometheus(rr.Body)
		if err != nil {
			t.Fatalf("run %d: /metrics does not validate: %v", i, err)
		}
		if len(samples) == 0 {
			t.Fatalf("run %d: /metrics served no samples", i)
		}
	}
}

// newTestProfiler builds the profiler+recorder pair the way run() does.
func newTestProfiler(t *testing.T) (*profile.Profiler, *telemetry.Recorder) {
	t.Helper()
	cfg := params.DefaultConfig()
	prof := profile.New(cfg)
	return prof, telemetry.NewRecorder(cfg, prof)
}

// captureStdout runs f with os.Stdout redirected into a pipe and
// returns what it printed.
func captureStdout(t *testing.T, f func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	f()
	w.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}
