// Command coruscantvet is the repository's domain-specific vet tool: a
// unitchecker bundling the analyzers under internal/analysis that
// machine-check the bit-plane engine's invariants.
//
// It is meant to be driven by the go command:
//
//	go build -o bin/coruscantvet ./cmd/coruscantvet
//	go vet -vettool=bin/coruscantvet ./...
//
// (make lint does exactly that.) Deliberate violations are silenced
// line-by-line with
//
//	//coruscantvet:ignore <analyzer names> -- <reason>
//
// where the reason is mandatory; see DESIGN.md "Invariants & static
// analysis" for each analyzer's contract.
package main

import (
	"golang.org/x/tools/go/analysis/unitchecker"

	"repro/internal/analysis/facadeerr"
	"repro/internal/analysis/lockorder"
	"repro/internal/analysis/masktail"
	"repro/internal/analysis/panicmsg"
	"repro/internal/analysis/rowalias"
	"repro/internal/analysis/scratchescape"
	"repro/internal/analysis/seededrand"
	"repro/internal/analysis/spanbalance"
)

func main() {
	unitchecker.Main(
		facadeerr.Analyzer,
		lockorder.Analyzer,
		masktail.Analyzer,
		panicmsg.Analyzer,
		rowalias.Analyzer,
		scratchescape.Analyzer,
		seededrand.Analyzer,
		spanbalance.Analyzer,
	)
}
