// Bank-parallel batch benchmarks (recorded in BENCH_parallel.json):
// one ExecuteBatch of independent three-operand adds spread over the
// memory's banks and subarrays — disjoint DBC footprints, so the
// striped locks let every request proceed concurrently — measured at
// worker counts 1/2/4/8 against the request-at-a-time serial loop.
// Results are bit-identical at every worker count; only wall clock
// moves, and only when the host has cores to offer.
package coruscant

import (
	"fmt"
	"testing"

	"repro/internal/isa"
	"repro/internal/memory"
	"repro/internal/params"
	"repro/internal/pim"
)

// batchFixture builds a memory with operands staged in 32 distinct PIM
// DBCs (8 banks x 4 subarrays) and the matching batch of independent
// adds, one per DBC.
func batchFixture(tb testing.TB) (*memory.Memory, []memory.Request) {
	tb.Helper()
	cfg := params.DefaultConfig()
	m, err := memory.New(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	g := cfg.Geometry
	lanes := g.TrackWidth / 8
	var reqs []memory.Request
	for bank := 0; bank < 8 && bank < g.Banks; bank++ {
		for sub := 0; sub < 4 && sub < g.SubarraysPerBank; sub++ {
			pimDBC := isa.Addr{Bank: bank, Subarray: sub, Tile: 0, DBC: g.DBCsPerTile - 1}
			operands := make([]isa.Addr, 3)
			for r := range operands {
				vals := make([]uint64, lanes)
				for l := range vals {
					vals[l] = uint64((bank + 7*sub + 3*r + l) % 256)
				}
				row, err := pim.PackLanes(vals, 8, g.TrackWidth)
				if err != nil {
					tb.Fatal(err)
				}
				a := pimDBC
				a.Row = r
				if err := m.WriteRow(a, row); err != nil {
					tb.Fatal(err)
				}
				operands[r] = a
			}
			dst := pimDBC
			dst.Row = 10
			reqs = append(reqs, memory.Request{
				In:       isa.Instruction{Op: isa.OpAdd, Src: pimDBC, Blocksize: 8, Operands: 3},
				Operands: operands,
				Dst:      dst,
			})
		}
	}
	return m, reqs
}

// BenchmarkBatchSerial is the baseline: the same requests issued one
// Execute at a time, as a driver without the batch API would.
func BenchmarkBatchSerial(b *testing.B) {
	m, reqs := batchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range reqs {
			if _, err := m.Execute(r.In, r.Operands, r.Dst); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkBatchExecute runs the batch through the worker pool at the
// worker counts recorded in BENCH_parallel.json.
func BenchmarkBatchExecute(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			m, reqs := batchFixture(b)
			m.SetWorkers(workers)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, res := range m.ExecuteBatch(reqs) {
					if res.Err != nil {
						b.Fatal(res.Err)
					}
				}
			}
		})
	}
}
