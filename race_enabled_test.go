//go:build race

package coruscant

// raceEnabled reports that this binary was built with the race
// detector, whose instrumentation inflates per-call allocation counts;
// TestAllocBudget only pins budgets in non-race builds.
const raceEnabled = true
