# CI entry points for the CORUSCANT reproduction. `make ci` is the gate:
# lint (go vet + coruscantvet + gofmt) + build + race-enabled tests +
# short fuzz smoke + the DBC-engine benchmarks.

GO ?= go
BIN := bin

.PHONY: ci vet lint audit build test race race-obs fuzz alloc-budget bench bench-obs bench-profile bench-parallel bench-resilient bench-compile bench-pipeline bench-serve

ci: lint build race race-obs fuzz alloc-budget bench bench-obs bench-profile bench-parallel bench-resilient bench-compile bench-pipeline bench-serve

vet:
	$(GO) vet ./...

# bin/coruscantvet rebuilds only when the checker's inputs change: the
# command itself, the analyzers under internal/analysis, and the
# vendored x/tools analysis framework they build on.
VET_SRCS := $(shell find cmd/coruscantvet internal/analysis third_party -name '*.go' -not -path '*/testdata/*')

$(BIN)/coruscantvet: $(VET_SRCS) go.mod
	$(GO) build -o $@ ./cmd/coruscantvet

# lint runs the stock vet analyzers, then the repository's own
# coruscantvet suite (internal/analysis: rowalias, scratchescape,
# masktail, seededrand, panicmsg, facadeerr, and the CFG-based
# spanbalance and lockorder — see DESIGN.md "Invariants & static
# analysis"), then checks formatting, then runs the pimasm IR verifier
# over every .pimasm program in the tree (the examples and the
# bench-compile corpus). The ./... sweep covers every package including
# the pimc compiler (internal/isa/compile). third_party/ carries
# vendored upstream code and is exempt from gofmt drift.
lint: vet $(BIN)/coruscantvet
	$(GO) vet -vettool=$(BIN)/coruscantvet ./...
	@fmt_out=$$(gofmt -l . | grep -v '^third_party/' || true); \
	if [ -n "$$fmt_out" ]; then \
		echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; \
	fi
	$(GO) run ./cmd/pimasm vet $(shell find examples -name '*.pimasm')

# audit is advisory, not a gate: it runs govulncheck when the tool is
# installed and succeeds with a notice otherwise (the build environment
# is offline).
audit:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./... || true; \
	else \
		echo "audit: govulncheck not installed; skipping (non-blocking)"; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# race-obs re-runs the concurrency-bearing packages under the race
# detector with -count=2: the recorder is shared mutable state threaded
# through memory, pim and dbc; memory's striped locks, the isa lane
# pool and the parallel CNN/bitmapidx drivers all hammer it from worker
# goroutines. A second pass catches ordering flakes the single ./...
# sweep can miss.
race-obs:
	$(GO) test -race -count=2 ./internal/memory ./internal/telemetry \
		./internal/telemetry/profile ./internal/service ./cmd/coruscantd \
		./internal/isa ./internal/workloads/cnn ./internal/workloads/bitmapidx

# fuzz gives each native fuzz target a short deterministic smoke run;
# longer sessions are manual (`go test -fuzz <name> -fuzztime 5m`).
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzRowRoundTrip -fuzztime 5s ./internal/dbc
	$(GO) test -run '^$$' -fuzz FuzzEncodeDecode -fuzztime 5s ./internal/isa
	$(GO) test -run '^$$' -fuzz FuzzParseProgram -fuzztime 5s ./internal/isa/compile

# Benchmarks of the word-packed bit-plane engine: DBC primitives, the
# bulk/multi-operand PIM operations built on them, and the add carry
# chain. Reference numbers are recorded in BENCH_plane.json and
# BENCH_lint.json.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkDBC|BenchmarkBulk|BenchmarkPIM|BenchmarkAdd' -benchmem ./...

# alloc-budget is the allocation-regression gate: every hot kernel's
# allocs/op is pinned to the number recorded in BENCH_plane.json /
# BENCH_parallel.json (TestAllocBudget, alloc_budget_test.go). A change
# that makes any kernel allocate more per call fails ci even when the
# wall-clock columns are too noisy to notice.
alloc-budget:
	$(GO) test -run 'TestAllocBudget' -count=1 -v .

# bench-parallel measures the bank-parallel batch path: one ExecuteBatch
# of independent adds across banks/subarrays at worker counts 1/2/4/8
# against the request-at-a-time serial loop. Reference numbers (and the
# single-core-host caveat) are recorded in BENCH_parallel.json.
bench-parallel:
	$(GO) test -run '^$$' -bench 'BenchmarkBatch' -benchmem .

# bench-resilient measures the recovery layer: the per-policy cost of
# recovered Execute (off/dup/nmr3/nmr5) with and without fault
# injection. Reference numbers and the disabled-path budget are
# recorded in BENCH_resilient.json.
bench-resilient:
	$(GO) test -run '^$$' -bench 'BenchmarkResilient' -benchmem .

# bench-obs measures the telemetry overhead guard: the hot PIM ops with
# telemetry disabled (nil recorder — must match the un-instrumented
# baseline), with a metrics-only recorder, and with a ring sink.
# Reference numbers and the <2% disabled-path budget are recorded in
# BENCH_obs.json.
bench-obs:
	$(GO) test -run '^$$' -bench 'BenchmarkTelemetry' -benchmem .

# bench-profile measures the hardware-profiler overhead guard: the same
# hot ops with no recorder (the disabled path must stay within noise of
# the bench-obs disabled numbers — the profiler is a sink, the hooks
# did not grow) and with the spatial profiler attached. Reference
# numbers are recorded in BENCH_profile.json.
bench-profile:
	$(GO) test -run '^$$' -bench 'BenchmarkProfile' -benchmem .

# bench-pipeline measures the pipelined -O2 schedule against -O1 over
# the example corpus: makespan (critical-path cycles) and cycles (serial
# sum) as custom metrics. Reference numbers (and the >=10% corpus
# makespan reduction, also pinned by compile's TestPipelinedCorpus) are
# recorded in BENCH_pipeline.json.
bench-pipeline:
	$(GO) test -run '^$$' -bench 'BenchmarkPipeline' -benchmem .

# bench-serve measures the coruscantd serving path end-to-end: the
# mixed RunLoad workload over real HTTP against an in-process 2-shard
# server at batch worker counts 1 vs 4, every read bit-checked against
# serial mirrors. req/s and client-observed p50/p95 come out as custom
# metrics. Reference numbers (and the single-core-host caveat) are
# recorded in BENCH_serve.json.
bench-serve:
	$(GO) test -run '^$$' -bench 'BenchmarkServe' -benchmem .

# bench-compile measures the pimc compiler on a fixed three-program
# corpus: compile latency per optimization level, and the measured cost
# of running the compiled plans — row-buffer moves, racetrack shift
# steps and device cycles as custom metrics, -O1 vs the naive -O0
# layout. Reference numbers (and the -O1 fewer-moves/fewer-cycles
# acceptance deltas) are recorded in BENCH_compile.json.
bench-compile:
	$(GO) test -run '^$$' -bench 'BenchmarkCompile' -benchmem .
