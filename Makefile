# CI entry points for the CORUSCANT reproduction. `make ci` is the gate:
# vet + build + race-enabled tests + the DBC-engine benchmarks.

GO ?= go

.PHONY: ci vet build test race bench

ci: vet build race bench

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Benchmarks of the word-packed bit-plane engine: DBC primitives and the
# bulk/multi-operand PIM operations built on them. Reference numbers for
# the seed (per-byte) engine and this one are recorded in
# BENCH_plane.json.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkDBC|BenchmarkBulk' -benchmem ./...
