// Hardware-profiler overhead guard benchmarks (recorded in
// BENCH_profile.json): the same hot operations as bench_obs_test.go
// run with no profiler (nil recorder — the spatial hooks cost the same
// single branch as every other telemetry hook) and with the full
// spatial profiler attached as a sink. The Off variants must stay
// within noise of the matching BENCH_obs.json disabled numbers — the
// profiler is a sink, so the disabled path gained no new work.
package coruscant

import (
	"testing"

	"repro/internal/dbc"
	"repro/internal/params"
	"repro/internal/telemetry"
	"repro/internal/telemetry/profile"
)

// BenchmarkProfileOffAddMulti is the disabled-path guard: nil
// recorder, spatial attribution hooks never taken.
func BenchmarkProfileOffAddMulti(b *testing.B) {
	u, rows := addMultiFixture()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := u.AddMulti(rows, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProfileOnAddMulti attaches the spatial profiler — per-DBC
// wear, occupancy and shift-distance aggregation on every event.
func BenchmarkProfileOnAddMulti(b *testing.B) {
	u, rows := addMultiFixture()
	cfg := params.DefaultConfig()
	u.SetTelemetry(telemetry.NewRecorder(cfg, profile.New(cfg)), "bench")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := u.AddMulti(rows, 8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProfileOffBulkBitwise(b *testing.B) {
	u, rows := bulkFixture()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := u.BulkBitwise(dbc.OpXOR, rows); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProfileOnBulkBitwise(b *testing.B) {
	u, rows := bulkFixture()
	cfg := params.DefaultConfig()
	u.SetTelemetry(telemetry.NewRecorder(cfg, profile.New(cfg)), "bench")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := u.BulkBitwise(dbc.OpXOR, rows); err != nil {
			b.Fatal(err)
		}
	}
}
