package coruscant_test

import (
	"errors"
	"testing"

	coruscant "repro"
)

// The recovery-layer façade tests drive detection, retry, degradation
// and the error taxonomy exactly as a downstream user would.

// TestErrorTaxonomyRoundTrips: every sentinel must survive errors.Is
// from the layer that raises it through the façade re-export.
func TestErrorTaxonomyRoundTrips(t *testing.T) {
	t.Run("ErrBadTRD", func(t *testing.T) {
		cfg := coruscant.DefaultConfig()
		cfg.TRD = 4
		if _, err := coruscant.NewUnit(cfg); !errors.Is(err, coruscant.ErrBadTRD) {
			t.Errorf("TRD=4 construction: %v", err)
		}
		u := newUnit(t, 32)
		// Operand count beyond the TR window.
		rows := make([]coruscant.Row, 9)
		for i := range rows {
			rows[i] = coruscant.NewRow(32)
		}
		if _, err := u.AddMulti(rows, 8); !errors.Is(err, coruscant.ErrBadTRD) {
			t.Errorf("9-operand add on TRD7: %v", err)
		}
	})

	t.Run("ErrLaneOverflow", func(t *testing.T) {
		if _, err := coruscant.PackLanes([]uint64{256}, 8, 32); !errors.Is(err, coruscant.ErrLaneOverflow) {
			t.Errorf("PackLanes(256, lane 8): %v", err)
		}
		u := newUnit(t, 32)
		a, err := coruscant.PackLanes([]uint64{300, 1}, 16, 32)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := u.Multiply(a, a, 8); !errors.Is(err, coruscant.ErrLaneOverflow) {
			t.Errorf("Multiply with an operand beyond the half-lane: %v", err)
		}
	})

	t.Run("ErrCrossDBC", func(t *testing.T) {
		cfg := coruscant.DefaultConfig()
		cfg.Geometry.TrackWidth = 32
		m, err := coruscant.NewMemory(cfg)
		if err != nil {
			t.Fatal(err)
		}
		g := cfg.Geometry
		pimAddr := coruscant.Addr{Bank: 0, Tile: 0, DBC: g.DBCsPerTile - g.PIMDBCsPerTile}
		in := coruscant.Instruction{Op: coruscant.OpcodeAdd, Src: pimAddr, Blocksize: 8, Operands: 2}
		ops := []coruscant.Addr{{Bank: 1, Tile: 1}, {Bank: 0, Tile: 1, Row: 1}}
		if _, err := m.Execute(in, ops, coruscant.Addr{Tile: 2}); !errors.Is(err, coruscant.ErrCrossDBC) {
			t.Errorf("cross-bank operand: %v", err)
		}
	})

	t.Run("ErrUnverified", func(t *testing.T) {
		u := newUnit(t, 32)
		pol := coruscant.RecoveryPolicy{Verify: coruscant.VerifyDup, MaxRetries: 1}
		ex, err := coruscant.NewRecoveryExecutor(u, pol)
		if err != nil {
			t.Fatal(err)
		}
		calls := 0
		_, _, err = ex.Do("op", func() (coruscant.Row, error) {
			calls++
			r := coruscant.NewRow(32)
			r.Set(0, uint8(calls%2))
			return r, nil
		})
		if !errors.Is(err, coruscant.ErrUnverified) {
			t.Errorf("persistent dup disagreement: %v", err)
		}
	})

	t.Run("ErrQuarantined", func(t *testing.T) {
		cfg := coruscant.DefaultConfig()
		cfg.Geometry.TrackWidth = 32
		cfg.Geometry.SubarraysPerBank = 1 // one PIM DBC per bank: no spare
		pol := coruscant.DefaultRecoveryPolicy()
		pol.QuarantineAfter = 3
		m, err := coruscant.NewMemory(cfg, coruscant.WithRecovery(pol))
		if err != nil {
			t.Fatal(err)
		}
		m.SetFaultProfile(coruscant.FaultProfile{TRProb: 0.05, Seed: 5})
		g := cfg.Geometry
		pimAddr := coruscant.Addr{Bank: 0, Tile: 0, DBC: g.DBCsPerTile - g.PIMDBCsPerTile}
		ops := []coruscant.Addr{{Bank: 0, Tile: 1}, {Bank: 0, Tile: 1, Row: 1}}
		row, err := coruscant.PackLanes([]uint64{3}, 8, 32)
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range ops {
			if err := m.WriteRow(a, row); err != nil {
				t.Fatal(err)
			}
		}
		in := coruscant.Instruction{Op: coruscant.OpcodeAdd, Src: pimAddr, Blocksize: 8, Operands: 2}
		var lastErr error
		for i := 0; i < 600; i++ {
			if _, lastErr = m.Execute(in, ops, coruscant.Addr{Tile: 2}); lastErr != nil {
				break
			}
		}
		if !errors.Is(lastErr, coruscant.ErrQuarantined) {
			t.Errorf("spare-exhausted bank: %v", lastErr)
		}
		if h := m.Health(); len(h.Quarantined) == 0 {
			t.Error("health ledger recorded no quarantine")
		}
	})
}

// TestConstructionOptions covers the functional-option constructors,
// including the loud failure of a misplaced option.
func TestConstructionOptions(t *testing.T) {
	cfg := coruscant.DefaultConfig()
	cfg.Geometry.TrackWidth = 32

	rec := coruscant.NewRecorder(cfg, coruscant.NewRingSink(16))
	inj := coruscant.NewFaultInjector(0.5, 0, 1)

	u, err := coruscant.NewUnit(cfg, coruscant.WithTelemetry(rec), coruscant.WithFaults(inj))
	if err != nil {
		t.Fatal(err)
	}
	if u.Recorder() != rec {
		t.Error("WithTelemetry not applied to unit")
	}
	if _, err := coruscant.NewUnit(cfg, coruscant.WithRecovery(coruscant.DefaultRecoveryPolicy())); err == nil {
		t.Error("WithRecovery on NewUnit should fail loudly")
	}
	if _, err := coruscant.NewUnit(cfg, coruscant.WithWorkers(4)); err == nil {
		t.Error("WithWorkers on NewUnit should fail loudly")
	}

	m, err := coruscant.NewMemory(cfg,
		coruscant.WithTelemetry(rec),
		coruscant.WithRecovery(coruscant.DefaultRecoveryPolicy()),
		coruscant.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if !m.Recovery().Enabled() {
		t.Error("WithRecovery not applied to memory")
	}
	if m.Workers() != 2 {
		t.Errorf("WithWorkers not applied: %d", m.Workers())
	}
	if m.Recorder() != rec {
		t.Error("WithTelemetry not applied to memory")
	}
	bad := coruscant.RecoveryPolicy{Verify: coruscant.VerifyNMR, NMR: 4}
	if _, err := coruscant.NewMemory(cfg, coruscant.WithRecovery(bad)); err == nil {
		t.Error("invalid recovery policy should fail construction")
	}

	c, err := coruscant.NewController(cfg, coruscant.WithRecovery(coruscant.DefaultRecoveryPolicy()))
	if err != nil {
		t.Fatal(err)
	}
	if !c.Recovery().Enabled() {
		t.Error("WithRecovery not applied to controller")
	}
	if _, err := coruscant.NewController(cfg, coruscant.WithWorkers(2)); err == nil {
		t.Error("WithWorkers on NewController should fail loudly")
	}
}

// TestRecoveredControllerExecution: a controller with faults and NMR
// recovery still delivers correct results.
func TestRecoveredControllerExecution(t *testing.T) {
	cfg := coruscant.DefaultConfig()
	cfg.Geometry.TrackWidth = 32
	inj := coruscant.NewFaultInjector(0.01, 0, 42)
	c, err := coruscant.NewController(cfg,
		coruscant.WithFaults(inj),
		coruscant.WithRecovery(coruscant.DefaultRecoveryPolicy()))
	if err != nil {
		t.Fatal(err)
	}
	pimAddr := coruscant.Addr{Tile: 0, DBC: cfg.Geometry.DBCsPerTile - 1}
	in := coruscant.Instruction{Op: coruscant.OpcodeAdd, Src: pimAddr, Blocksize: 8, Operands: 2}
	wrong := 0
	for i := 0; i < 50; i++ {
		a, b := uint64(i%50), uint64((7*i)%50)
		ra, err := coruscant.PackLanes([]uint64{a, a, a, a}, 8, 32)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := coruscant.PackLanes([]uint64{b, b, b, b}, 8, 32)
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Execute(in, []coruscant.Row{ra, rb})
		if err != nil {
			t.Fatal(err)
		}
		if coruscant.UnpackLanes(res, 8)[0] != a+b {
			wrong++
		}
	}
	if wrong > 2 {
		t.Errorf("recovered controller delivered %d/50 wrong sums", wrong)
	}
}

// TestExecuteNoFaultAllocsUnchanged pins the allocation count of the
// no-fault, no-recovery Execute path: installing then disabling
// recovery must leave the hot path allocation-identical to a memory
// that never saw the recovery layer.
func TestExecuteNoFaultAllocsUnchanged(t *testing.T) {
	cfg := coruscant.DefaultConfig()
	cfg.Geometry.TrackWidth = 32
	g := cfg.Geometry

	measure := func(m *coruscant.Memory) float64 {
		pimAddr := coruscant.Addr{Bank: 0, Tile: 0, DBC: g.DBCsPerTile - g.PIMDBCsPerTile}
		ops := []coruscant.Addr{{Bank: 0, Tile: 1}, {Bank: 0, Tile: 1, Row: 1}}
		dst := coruscant.Addr{Bank: 0, Tile: 2}
		row, err := coruscant.PackLanes([]uint64{5}, 8, 32)
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range ops {
			if err := m.WriteRow(a, row); err != nil {
				t.Fatal(err)
			}
		}
		in := coruscant.Instruction{Op: coruscant.OpcodeAdd, Src: pimAddr, Blocksize: 8, Operands: 2}
		run := func() {
			if _, err := m.Execute(in, ops, dst); err != nil {
				t.Fatal(err)
			}
		}
		run() // materialize shards outside the measurement
		return testing.AllocsPerRun(50, run)
	}

	plain, err := coruscant.NewMemory(cfg)
	if err != nil {
		t.Fatal(err)
	}
	toggled, err := coruscant.NewMemory(cfg, coruscant.WithRecovery(coruscant.DefaultRecoveryPolicy()))
	if err != nil {
		t.Fatal(err)
	}
	if err := toggled.SetRecovery(coruscant.RecoveryPolicy{}); err != nil {
		t.Fatal(err)
	}

	base := measure(plain)
	after := measure(toggled)
	if after > base {
		t.Errorf("disabled-recovery Execute allocates %.1f/op, plain memory %.1f/op", after, base)
	}
}
