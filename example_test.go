package coruscant_test

import (
	"fmt"
	"log"

	coruscant "repro"
)

// Example demonstrates the core flow: pack lane values, run a
// multi-operand addition on the PIM unit, inspect the cost.
func Example() {
	cfg := coruscant.DefaultConfig()
	cfg.Geometry.TrackWidth = 32
	u, err := coruscant.NewUnit(cfg)
	if err != nil {
		log.Fatal(err)
	}
	a, _ := coruscant.PackLanes([]uint64{100, 200, 30, 4}, 8, 32)
	b, _ := coruscant.PackLanes([]uint64{28, 60, 70, 8}, 8, 32)
	c, _ := coruscant.PackLanes([]uint64{1, 2, 3, 4}, 8, 32)
	sum, err := u.AddMulti([]coruscant.Row{a, b, c}, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(coruscant.UnpackLanes(sum, 8))
	fmt.Println("cycles:", u.Stats().Cycles())
	// Output:
	// [129 6 103 16]
	// cycles: 22
}

// ExampleUnit_MultiplyValues shows exact in-memory multiplication.
func ExampleUnit_MultiplyValues() {
	cfg := coruscant.DefaultConfig()
	cfg.Geometry.TrackWidth = 32
	u, err := coruscant.NewUnit(cfg)
	if err != nil {
		log.Fatal(err)
	}
	prods, err := u.MultiplyValues([]uint64{12, 255}, []uint64{12, 255}, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(prods)
	// Output:
	// [144 65025]
}

// ExampleUnit_BulkBitwise shows a three-operand XOR through a single
// transverse read.
func ExampleUnit_BulkBitwise() {
	cfg := coruscant.DefaultConfig()
	cfg.Geometry.TrackWidth = 8
	u, err := coruscant.NewUnit(cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := u.BulkBitwise(coruscant.OpXOR, []coruscant.Row{
		coruscant.FromBits(1, 1, 0, 0, 1, 1, 0, 0),
		coruscant.FromBits(1, 0, 1, 0, 1, 0, 1, 0),
		coruscant.FromBits(1, 1, 1, 1, 0, 0, 0, 0),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Bits())
	// Output:
	// [1 0 0 1 0 1 1 0]
}

// ExampleCSD shows the constant-multiplication recoding of the paper's
// running example.
func ExampleCSD() {
	for _, d := range coruscant.CSD(20061) {
		fmt.Printf("%+d·2^%d ", d.Sign, d.Shift)
	}
	fmt.Println()
	// Output:
	// +1·2^0 -1·2^2 -1·2^5 +1·2^7 -1·2^9 +1·2^12 +1·2^14
}

// ExampleNewNanowire shows the device-level transverse read.
func ExampleNewNanowire() {
	w, err := coruscant.NewNanowire(32, coruscant.TRD7)
	if err != nil {
		log.Fatal(err)
	}
	w.PokeWindow(1, 1)
	w.PokeWindow(3, 1)
	w.PokeWindow(6, 1)
	fmt.Println("ones in window:", w.TR())
	// Output:
	// ones in window: 3
}
