// Package device models the DWM (racetrack) nanowire at the domain level:
// domain-wall shifting, access-port reads and writes, the transverse read
// (TR) that senses the number of '1' domains between two access ports,
// and the transverse write (TW) with segmented shifting proposed by the
// paper (§IV-B, Fig. 9). It also provides the fault models used by the
// reliability study (§V-F).
package device

import (
	"fmt"

	"repro/internal/params"
)

// Bit is a single stored domain value, 0 or 1.
type Bit = uint8

// Side selects one of the two access ports of a PIM-enabled nanowire.
type Side int

// Access-port sides. The left port is the one closer to row 0.
const (
	Left Side = iota
	Right
)

func (s Side) String() string {
	if s == Left {
		return "left"
	}
	return "right"
}

// Nanowire is a single DWM nanowire with two access ports spaced a
// transverse-read distance apart (Fig. 1, Fig. 2(d)). The wire stores
// Rows data domains plus the overhead domains required so that any data
// row can align with its nearest port without data loss (§III-A).
//
// Physically, access ports are fixed and the magnetic domains move; the
// model stores the domain contents in a fixed physical array and slides
// the data region across it.
type Nanowire struct {
	rows  int        // Y: number of data domains
	trd   params.TRD // window length between the ports, inclusive
	total int        // physical domains including overhead

	portL, portR int // physical indices of the access ports

	domains []Bit // physical domain array, index 0 = leftmost
	start   int   // physical index currently holding data row 0
	minS    int   // smallest legal start (rightmost excursion of row Y-1)
	maxS    int   // largest legal start (leftmost data row under port L)
}

// NewNanowire returns a wire with the given number of data rows and a
// port window of trd domains, ports centred per params.PortPlacement.
// All domains start at zero.
func NewNanowire(rows int, trd params.TRD) (*Nanowire, error) {
	if !trd.Valid() {
		return nil, fmt.Errorf("device: invalid %v", trd)
	}
	if rows < int(trd) {
		return nil, fmt.Errorf("device: rows %d < TRD %d", rows, int(trd))
	}
	pl, pr := params.PortPlacement(rows, trd)
	// Excursions: rows right of the window align to the right port
	// (data slides left by up to rows-1-pr), rows left of it align to
	// the left port (data slides right by up to pl).
	leftOver := rows - 1 - pr // overhead on the left extremity
	rightOver := pl           // overhead on the right extremity
	total := rows + leftOver + rightOver
	w := &Nanowire{
		rows:    rows,
		trd:     trd,
		total:   total,
		portL:   pl + leftOver,
		portR:   pr + leftOver,
		domains: make([]Bit, total),
		start:   leftOver,
		minS:    0,
		maxS:    leftOver + rightOver,
	}
	return w, nil
}

// Rows returns the number of data domains.
func (w *Nanowire) Rows() int { return w.rows }

// TRD returns the port window length.
func (w *Nanowire) TRD() params.TRD { return w.trd }

// TotalDomains returns the physical wire length including overhead
// domains (for Y=32, TRD=7 this is 57: 32 data + 25 overhead, §III-A).
func (w *Nanowire) TotalDomains() int { return w.total }

// Offset returns the current shift displacement of the data region from
// its rest position: positive means the data has moved right.
func (w *Nanowire) Offset() int {
	pl, _ := params.PortPlacement(w.rows, w.trd)
	rest := w.portL - pl
	return w.start - rest
}

// OffsetBounds returns the legal excursion of Offset: the most negative
// and most positive displacements the overhead domains allow (the
// reference-model counterpart of PlaneArray.OffsetBounds).
func (w *Nanowire) OffsetBounds() (lo, hi int) {
	pl, _ := params.PortPlacement(w.rows, w.trd)
	rest := w.portL - pl
	return w.minS - rest, w.maxS - rest
}

// rowPhys returns the physical index currently holding data row r.
func (w *Nanowire) rowPhys(r int) int { return w.start + r }

// SetRow overwrites data row r directly, bypassing the access ports.
// It models the initial state of the memory (data written before the
// traced operation begins) and is also used by tests.
func (w *Nanowire) SetRow(r int, b Bit) {
	w.checkRow(r)
	w.domains[w.rowPhys(r)] = b & 1
}

// PeekRow returns data row r without modelling an access (for tests and
// result extraction).
func (w *Nanowire) PeekRow(r int) Bit {
	w.checkRow(r)
	return w.domains[w.rowPhys(r)]
}

func (w *Nanowire) checkRow(r int) {
	if r < 0 || r >= w.rows {
		panic(fmt.Sprintf("device: row %d out of range [0,%d)", r, w.rows))
	}
}

// ShiftRight moves every domain one position toward the right extremity.
// The domain at the right extremity is pushed off the wire (it is always
// an overhead domain when shift bounds are respected).
func (w *Nanowire) ShiftRight() error {
	if w.start+1 > w.maxS {
		return fmt.Errorf("device: shift right would push data off the wire (start=%d)", w.start)
	}
	copy(w.domains[1:], w.domains[:w.total-1])
	w.domains[0] = 0
	w.start++
	return nil
}

// ShiftLeft moves every domain one position toward the left extremity.
func (w *Nanowire) ShiftLeft() error {
	if w.start-1 < w.minS {
		return fmt.Errorf("device: shift left would push data off the wire (start=%d)", w.start)
	}
	copy(w.domains[:w.total-1], w.domains[1:])
	w.domains[w.total-1] = 0
	w.start--
	return nil
}

// Shift moves the data by steps positions (positive = right), one step at
// a time.
func (w *Nanowire) Shift(steps int) error {
	for ; steps > 0; steps-- {
		if err := w.ShiftRight(); err != nil {
			return err
		}
	}
	for ; steps < 0; steps++ {
		if err := w.ShiftLeft(); err != nil {
			return err
		}
	}
	return nil
}

// port returns the physical index of the requested port.
func (w *Nanowire) port(s Side) int {
	if s == Left {
		return w.portL
	}
	return w.portR
}

// RowAtPort returns the data row currently aligned under the port, or -1
// if an overhead domain is under it.
func (w *Nanowire) RowAtPort(s Side) int {
	r := w.port(s) - w.start
	if r < 0 || r >= w.rows {
		return -1
	}
	return r
}

// AlignSteps returns the signed shift (positive = right) that aligns data
// row r under the given port.
func (w *Nanowire) AlignSteps(r int, s Side) int {
	w.checkRow(r)
	return w.port(s) - w.rowPhys(r)
}

// feasible reports whether row r can physically align under port s
// without data falling off an extremity: rows near the right end of the
// wire can only reach the right port and vice versa.
func (w *Nanowire) feasible(r int, s Side) bool {
	start := w.port(s) - r
	return start >= w.minS && start <= w.maxS
}

// NearestPort returns the feasible port requiring the fewest shift steps
// to align row r, along with that signed step count.
func (w *Nanowire) NearestPort(r int) (Side, int) {
	w.checkRow(r)
	dl := w.AlignSteps(r, Left)
	dr := w.AlignSteps(r, Right)
	lOK := w.feasible(r, Left)
	rOK := w.feasible(r, Right)
	if lOK && (!rOK || abs(dl) <= abs(dr)) {
		return Left, dl
	}
	return Right, dr
}

// Align shifts the wire so data row r sits under the given port and
// returns the number of single-domain shift steps performed.
func (w *Nanowire) Align(r int, s Side) (steps int, err error) {
	d := w.AlignSteps(r, s)
	if err := w.Shift(d); err != nil {
		return 0, err
	}
	return abs(d), nil
}

// ReadPort reads the domain under the port (a conventional access-point
// read through the MTJ, Fig. 1).
func (w *Nanowire) ReadPort(s Side) Bit {
	return w.domains[w.port(s)]
}

// WritePort writes the domain under the port (shift-based write [27]).
func (w *Nanowire) WritePort(s Side, b Bit) {
	w.domains[w.port(s)] = b & 1
}

// TR performs a transverse read over the window between the two ports,
// inclusive, returning the number of '1' domains (§II-D). The result
// carries no position information, exactly like the physical aggregate
// resistance measurement.
func (w *Nanowire) TR() int {
	n := 0
	for p := w.portL; p <= w.portR; p++ {
		n += int(w.domains[p])
	}
	return n
}

// TW performs a transverse write (§IV-B, Fig. 9): the bit is written
// under the left port while the window contents shift one position toward
// the right port, whose previous domain is forced out to ground. Domains
// outside the window are not disturbed (segmented shifting).
func (w *Nanowire) TW(b Bit) {
	copy(w.domains[w.portL+1:w.portR+1], w.domains[w.portL:w.portR])
	w.domains[w.portL] = b & 1
}

// WindowRow returns the data-row index currently aligned with window
// position i (0 = under the left port), or -1 for an overhead domain.
func (w *Nanowire) WindowRow(i int) int {
	if i < 0 || i >= int(w.trd) {
		panic(fmt.Sprintf("device: window index %d out of range [0,%d)", i, int(w.trd)))
	}
	r := w.portL + i - w.start
	if r < 0 || r >= w.rows {
		return -1
	}
	return r
}

// PokeWindow overwrites the physical domain at window position i
// (0 = under the left port) without modelling an access. It supports
// maintaining the Fig. 7 pre-populated padding constants.
func (w *Nanowire) PokeWindow(i int, b Bit) {
	if i < 0 || i >= int(w.trd) {
		panic(fmt.Sprintf("device: window index %d out of range [0,%d)", i, int(w.trd)))
	}
	w.domains[w.portL+i] = b & 1
}

// PeekWindowBit returns the domain at window position i without
// modelling an access (for result extraction and tests).
func (w *Nanowire) PeekWindowBit(i int) Bit {
	if i < 0 || i >= int(w.trd) {
		panic(fmt.Sprintf("device: window index %d out of range [0,%d)", i, int(w.trd)))
	}
	return w.domains[w.portL+i]
}

// Snapshot returns a copy of the data rows in row order (for tests).
func (w *Nanowire) Snapshot() []Bit {
	out := make([]Bit, w.rows)
	copy(out, w.domains[w.start:w.start+w.rows])
	return out
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
