package device

import (
	"math/rand"
	"testing"

	"repro/internal/params"
)

func randPlaneWords(wires int, rng *rand.Rand) []uint64 {
	ws := make([]uint64, (wires+63)/64)
	for i := range ws {
		ws[i] = rng.Uint64()
	}
	ws[len(ws)-1] &= tailMask(wires)
	return ws
}

// TestPlaneArrayRowRoundTrip: SetRow/RowWords/RowBit must round-trip the
// packed representation exactly, including non-word-multiple widths
// where the tail mask matters.
func TestPlaneArrayRowRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(301))
	for _, wires := range []int{1, 63, 64, 65, 100, 128, 512} {
		pa, err := NewPlaneArray(wires, 32, params.TRD7)
		if err != nil {
			t.Fatal(err)
		}
		want := make([][]uint64, 32)
		for r := range want {
			want[r] = randPlaneWords(wires, rng)
			pa.SetRow(r, want[r])
		}
		got := make([]uint64, pa.Words())
		for r := range want {
			pa.RowWords(r, got)
			for i := range got {
				if got[i] != want[r][i] {
					t.Fatalf("wires=%d row %d word %d = %#x, want %#x", wires, r, i, got[i], want[r][i])
				}
			}
			for w := 0; w < wires; w++ {
				if pa.RowBit(r, w) != Bit(want[r][w>>6]>>uint(w&63))&1 {
					t.Fatalf("wires=%d row %d wire %d bit mismatch", wires, r, w)
				}
			}
		}
	}
}

// TestPlaneArrayTailInvariant: stray bits past the wire count in a
// caller's source words must never enter the planes.
func TestPlaneArrayTailInvariant(t *testing.T) {
	pa, err := NewPlaneArray(100, 32, params.TRD7)
	if err != nil {
		t.Fatal(err)
	}
	dirty := []uint64{^uint64(0), ^uint64(0)}
	pa.SetRow(3, dirty)
	got := make([]uint64, pa.Words())
	pa.RowWords(3, got)
	if got[1] != tailMask(100) {
		t.Errorf("tail word = %#x, want %#x", got[1], tailMask(100))
	}
}

// TestPlaneArrayShiftIdentity: a shift excursion followed by its inverse
// must restore every data row bit-exactly (the overhead domains absorb
// the excursion).
func TestPlaneArrayShiftIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(302))
	for _, trd := range []params.TRD{params.TRD3, params.TRD5, params.TRD7} {
		pa, err := NewPlaneArray(96, 32, trd)
		if err != nil {
			t.Fatal(err)
		}
		want := make([][]uint64, 32)
		for r := range want {
			want[r] = randPlaneWords(96, rng)
			pa.SetRow(r, want[r])
		}
		for k := 0; k < 7; k++ {
			if err := pa.ShiftRight(); err != nil {
				t.Fatalf("%v shift right %d: %v", trd, k, err)
			}
		}
		for k := 0; k < 7; k++ {
			if err := pa.ShiftLeft(); err != nil {
				t.Fatalf("%v shift left %d: %v", trd, k, err)
			}
		}
		got := make([]uint64, pa.Words())
		for r := range want {
			pa.RowWords(r, got)
			for i := range got {
				if got[i] != want[r][i] {
					t.Fatalf("%v: row %d changed after shift round trip", trd, r)
				}
			}
		}
	}
}

// TestPlaneArrayShiftBounds: shifting past the overhead domains must
// refuse rather than destroy data.
func TestPlaneArrayShiftBounds(t *testing.T) {
	pa, err := NewPlaneArray(8, 32, params.TRD7)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewNanowire(32, params.TRD7)
	if err != nil {
		t.Fatal(err)
	}
	rights := 0
	for pa.ShiftRight() == nil {
		if ref.ShiftRight() != nil {
			t.Fatal("plane allowed a right shift the nanowire refused")
		}
		rights++
		if rights > 1000 {
			t.Fatal("right shifts never refused")
		}
	}
	if ref.ShiftRight() == nil {
		t.Fatal("plane refused a right shift the nanowire allowed")
	}
	lefts := 0
	for pa.ShiftLeft() == nil {
		if ref.ShiftLeft() != nil {
			t.Fatal("plane allowed a left shift the nanowire refused")
		}
		lefts++
		if lefts > 1000 {
			t.Fatal("left shifts never refused")
		}
	}
	if ref.ShiftLeft() == nil {
		t.Fatal("plane refused a left shift the nanowire allowed")
	}
	if rights == 0 || lefts <= rights {
		t.Errorf("excursion range implausible: rights=%d lefts=%d", rights, lefts)
	}
}

// TestPlaneArrayTRPopcount: the bit-sliced TR counters must equal a
// naive per-wire popcount of the window for every wire.
func TestPlaneArrayTRPopcount(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	for _, trd := range []params.TRD{params.TRD3, params.TRD5, params.TRD7} {
		for trial := 0; trial < 50; trial++ {
			wires := 1 + rng.Intn(130)
			pa, err := NewPlaneArray(wires, 32, trd)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < int(trd); i++ {
				pa.PokeWindow(i, randPlaneWords(wires, rng))
			}
			words := pa.Words()
			c0 := make([]uint64, words)
			c1 := make([]uint64, words)
			c2 := make([]uint64, words)
			pa.TRPlanes(c0, c1, c2)
			naiveTotal := 0
			for w := 0; w < wires; w++ {
				word, bit := w>>6, uint(w&63)
				level := int(c0[word]>>bit&1) | int(c1[word]>>bit&1)<<1 | int(c2[word]>>bit&1)<<2
				naive := 0
				buf := make([]uint64, words)
				for i := 0; i < int(trd); i++ {
					pa.PeekWindow(i, buf)
					naive += int(buf[word] >> bit & 1)
				}
				naiveTotal += naive
				if level != naive {
					t.Fatalf("%v wires=%d wire %d: bit-sliced level %d, naive %d", trd, wires, w, level, naive)
				}
				if got := pa.TRWire(w); got != naive {
					t.Fatalf("%v wire %d: TRWire %d, naive %d", trd, w, got, naive)
				}
			}
			if got := pa.WindowOnes(); got != naiveTotal {
				t.Fatalf("%v: WindowOnes %d, naive %d", trd, got, naiveTotal)
			}
		}
	}
}

// TestPlaneArrayMatchesNanowire drives a PlaneArray and one reference
// Nanowire per wire through a random operation mix and requires
// bit-identical state throughout — the packed engine must be
// indistinguishable from the single-wire device physics.
func TestPlaneArrayMatchesNanowire(t *testing.T) {
	const wires, rows = 67, 32
	for _, trd := range []params.TRD{params.TRD3, params.TRD5, params.TRD7} {
		pa, err := NewPlaneArray(wires, rows, trd)
		if err != nil {
			t.Fatal(err)
		}
		ref := make([]*Nanowire, wires)
		for i := range ref {
			w, err := NewNanowire(rows, trd)
			if err != nil {
				t.Fatal(err)
			}
			ref[i] = w
		}
		rng := rand.New(rand.NewSource(304 + int64(trd)))
		words := pa.Words()
		buf := make([]uint64, words)
		for step := 0; step < 500; step++ {
			switch rng.Intn(7) {
			case 0: // row store
				r := rng.Intn(rows)
				src := randPlaneWords(wires, rng)
				pa.SetRow(r, src)
				for i, w := range ref {
					w.SetRow(r, Bit(src[i>>6]>>uint(i&63))&1)
				}
			case 1: // shift
				var errP, errR error
				if rng.Intn(2) == 0 {
					errP = pa.ShiftRight()
					for _, w := range ref {
						errR = w.ShiftRight()
					}
				} else {
					errP = pa.ShiftLeft()
					for _, w := range ref {
						errR = w.ShiftLeft()
					}
				}
				if (errP == nil) != (errR == nil) {
					t.Fatalf("%v step %d: shift legality diverged", trd, step)
				}
			case 2: // port write
				side := Side(rng.Intn(2))
				src := randPlaneWords(wires, rng)
				pa.WritePort(side, src)
				for i, w := range ref {
					w.WritePort(side, Bit(src[i>>6]>>uint(i&63))&1)
				}
			case 3: // port read
				side := Side(rng.Intn(2))
				pa.ReadPort(side, buf)
				for i, w := range ref {
					if Bit(buf[i>>6]>>uint(i&63))&1 != w.ReadPort(side) {
						t.Fatalf("%v step %d: ReadPort diverged on wire %d", trd, step, i)
					}
				}
			case 4: // transverse read
				for i, w := range ref {
					if pa.TRWire(i) != w.TR() {
						t.Fatalf("%v step %d: TR diverged on wire %d", trd, step, i)
					}
				}
			case 5: // transverse write
				src := randPlaneWords(wires, rng)
				pa.TW(src)
				for i, w := range ref {
					w.TW(Bit(src[i>>6]>>uint(i&63)) & 1)
				}
			case 6: // full snapshot comparison
				if pa.Offset() != ref[0].Offset() {
					t.Fatalf("%v step %d: offset %d vs %d", trd, step, pa.Offset(), ref[0].Offset())
				}
				for i, w := range ref {
					snap := pa.WireSnapshot(i)
					want := w.Snapshot()
					for r := range snap {
						if snap[r] != want[r] {
							t.Fatalf("%v step %d: row %d wire %d diverged", trd, step, r, i)
						}
					}
				}
			}
		}
	}
}

// TestPerturbTRPlanesMatchesScalar: the word-masked fault perturbation
// must be exactly the bit-sliced form of the scalar PerturbTR clamp.
func TestPerturbTRPlanesMatchesScalar(t *testing.T) {
	for _, trd := range []int{3, 5, 7} {
		for seed := int64(0); seed < 40; seed++ {
			const wires = 70
			inj := NewFaultInjector(0.5, 0, seed)
			flip, up, any := inj.TRFaultMasks(wires)
			if !any {
				continue
			}
			rng := rand.New(rand.NewSource(seed * 31))
			words := (wires + 63) / 64
			c0 := make([]uint64, words)
			c1 := make([]uint64, words)
			c2 := make([]uint64, words)
			levels := make([]int, wires)
			for w := range levels {
				levels[w] = rng.Intn(trd + 1)
				c0[w>>6] |= uint64(levels[w]&1) << uint(w&63)
				c1[w>>6] |= uint64(levels[w]>>1&1) << uint(w&63)
				c2[w>>6] |= uint64(levels[w]>>2&1) << uint(w&63)
			}
			PerturbTRPlanes(c0, c1, c2, flip, up, trd)
			for w := range levels {
				want := levels[w]
				if flip[w>>6]>>uint(w&63)&1 != 0 {
					if up[w>>6]>>uint(w&63)&1 != 0 {
						if want < trd {
							want++
						}
					} else if want > 0 {
						want--
					}
				}
				word, bit := w>>6, uint(w&63)
				got := int(c0[word]>>bit&1) | int(c1[word]>>bit&1)<<1 | int(c2[word]>>bit&1)<<2
				if got != want {
					t.Fatalf("trd=%d seed=%d wire %d: perturbed level %d, want %d (orig %d)", trd, seed, w, got, want, levels[w])
				}
			}
		}
	}
}
