package device

import "math/rand"

// FaultInjector perturbs device operations according to the paper's
// fault models (§V-F): a transverse read returns a level off by one with
// probability TRProb (faults off by two or more levels are negligible),
// and a shift over- or under-shoots by one position with probability
// ShiftProb. A nil *FaultInjector injects nothing.
type FaultInjector struct {
	TRProb    float64
	ShiftProb float64
	rng       *rand.Rand
}

// NewFaultInjector returns an injector with a deterministic source.
func NewFaultInjector(trProb, shiftProb float64, seed int64) *FaultInjector {
	return &FaultInjector{TRProb: trProb, ShiftProb: shiftProb, rng: rand.New(rand.NewSource(seed))}
}

// PerturbTR returns the sensed level for a true level in [0, max]. With
// probability TRProb the level moves one step up or down (clamped to the
// valid range, since the sense circuit cannot report out-of-range levels).
func (f *FaultInjector) PerturbTR(level, max int) int {
	if f == nil || f.TRProb == 0 || f.rng.Float64() >= f.TRProb {
		return level
	}
	if f.rng.Intn(2) == 0 {
		level--
	} else {
		level++
	}
	if level < 0 {
		level = 0
	}
	if level > max {
		level = max
	}
	return level
}

// ShiftError returns the signed shift-step error to add to one shift
// operation: -1 (under-shift), +1 (over-shift), or 0.
func (f *FaultInjector) ShiftError() int {
	if f == nil || f.ShiftProb == 0 || f.rng.Float64() >= f.ShiftProb {
		return 0
	}
	if f.rng.Intn(2) == 0 {
		return -1
	}
	return 1
}
