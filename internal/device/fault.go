package device

import (
	"math/bits"
	"math/rand"
)

// OnesCount returns the number of set bits across the mask words — the
// wire count of a word-packed selection or fault mask, used by the
// telemetry layer to size fault events.
func OnesCount(mask []uint64) int {
	n := 0
	for _, w := range mask {
		n += bits.OnesCount64(w)
	}
	return n
}

// FaultInjector perturbs device operations according to the paper's
// fault models (§V-F): a transverse read returns a level off by one with
// probability TRProb (faults off by two or more levels are negligible),
// and a shift over- or under-shoots by one position with probability
// ShiftProb. A nil *FaultInjector injects nothing.
type FaultInjector struct {
	TRProb    float64
	ShiftProb float64
	rng       *rand.Rand
}

// NewFaultInjector returns an injector with a deterministic source.
func NewFaultInjector(trProb, shiftProb float64, seed int64) *FaultInjector {
	return &FaultInjector{TRProb: trProb, ShiftProb: shiftProb, rng: rand.New(rand.NewSource(seed))}
}

// PerturbTR returns the sensed level for a true level in [0, max]. With
// probability TRProb the level moves one step up or down (clamped to the
// valid range, since the sense circuit cannot report out-of-range levels).
func (f *FaultInjector) PerturbTR(level, max int) int {
	if f == nil || f.TRProb == 0 || f.rng.Float64() >= f.TRProb {
		return level
	}
	if f.rng.Intn(2) == 0 {
		level--
	} else {
		level++
	}
	if level < 0 {
		level = 0
	}
	if level > max {
		level = max
	}
	return level
}

// TRFaultMasks returns word-packed fault masks for one lockstepped
// transverse read of n wires: bit w of flip is set when wire w's sensed
// level is perturbed, and the matching bit of up selects the direction
// (+1 when set, -1 otherwise). any is false — and both masks nil — when
// no wire faulted. The random draws happen wire by wire in wire order,
// consuming exactly the stream the historical per-wire PerturbTR loop
// consumed, so fixed-seed experiments reproduce the same fault pattern
// on the packed and the reference engine alike.
func (f *FaultInjector) TRFaultMasks(n int) (flip, up []uint64, any bool) {
	if f == nil || f.TRProb == 0 {
		return nil, nil, false
	}
	words := (n + 63) / 64
	flip = make([]uint64, words)
	up = make([]uint64, words)
	for w := 0; w < n; w++ {
		if f.rng.Float64() >= f.TRProb {
			continue
		}
		any = true
		flip[w>>6] |= 1 << uint(w&63)
		if f.rng.Intn(2) != 0 {
			up[w>>6] |= 1 << uint(w&63)
		}
	}
	if !any {
		return nil, nil, false
	}
	return flip, up, true
}

// PerturbTRPlanes applies the word-masked TR fault model to bit-sliced
// level planes: on lanes selected by flip the 3-bit level c2c1c0 moves
// one step up or down per the up mask, clamped to [0, max] exactly like
// the scalar PerturbTR (the sense circuit cannot report out-of-range
// levels). All 64 lanes of a word are perturbed with a handful of
// bitwise operations.
func PerturbTRPlanes(c0, c1, c2, flip, up []uint64, max int) {
	var m0, m1, m2 uint64
	if max&1 != 0 {
		m0 = ^uint64(0)
	}
	if max&2 != 0 {
		m1 = ^uint64(0)
	}
	if max&4 != 0 {
		m2 = ^uint64(0)
	}
	for i := range c0 {
		fl := flip[i]
		if fl == 0 {
			continue
		}
		atMax := ^(c0[i] ^ m0) & ^(c1[i] ^ m1) & ^(c2[i] ^ m2)
		atZero := ^(c0[i] | c1[i] | c2[i])
		inc := fl & up[i] &^ atMax
		dec := fl &^ up[i] &^ atZero
		// Bit-sliced +1 on inc lanes (no overflow: max ≤ 7 and lanes at
		// max are excluded).
		carry := inc
		t := c0[i] & carry
		c0[i] ^= carry
		carry = t
		t = c1[i] & carry
		c1[i] ^= carry
		c2[i] ^= t
		// Bit-sliced -1 on dec lanes (disjoint from inc lanes).
		borrow := dec
		t = ^c0[i] & borrow
		c0[i] ^= borrow
		borrow = t
		t = ^c1[i] & borrow
		c1[i] ^= borrow
		c2[i] ^= t
	}
}

// ShiftError returns the signed shift-step error to add to one shift
// operation: -1 (under-shift), +1 (over-shift), or 0.
func (f *FaultInjector) ShiftError() int {
	if f == nil || f.ShiftProb == 0 || f.rng.Float64() >= f.ShiftProb {
		return 0
	}
	if f.rng.Intn(2) == 0 {
		return -1
	}
	return 1
}
