package device

import (
	"testing"

	"repro/internal/params"
)

func newBenchWire(b *testing.B) *Nanowire {
	b.Helper()
	w, err := NewNanowire(32, params.TRD7)
	if err != nil {
		b.Fatal(err)
	}
	for r := 0; r < 32; r++ {
		w.SetRow(r, Bit(r&1))
	}
	return w
}

func BenchmarkNanowireShift(b *testing.B) {
	w := newBenchWire(b)
	for i := 0; i < b.N; i++ {
		if err := w.ShiftRight(); err != nil {
			b.Fatal(err)
		}
		if err := w.ShiftLeft(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNanowireTR(b *testing.B) {
	w := newBenchWire(b)
	sink := 0
	for i := 0; i < b.N; i++ {
		sink += w.TR()
	}
	_ = sink
}

func BenchmarkNanowireTW(b *testing.B) {
	w := newBenchWire(b)
	for i := 0; i < b.N; i++ {
		w.TW(Bit(i & 1))
	}
}

func BenchmarkSegmentedTR(b *testing.B) {
	w := newBenchWire(b)
	for i := 0; i < b.N; i++ {
		w.SegmentedTR(7)
	}
}

func BenchmarkNanowireAlign(b *testing.B) {
	w := newBenchWire(b)
	for i := 0; i < b.N; i++ {
		r := i % 32
		side, _ := w.NearestPort(r)
		if _, err := w.Align(r, side); err != nil {
			b.Fatal(err)
		}
	}
}
