package device

import (
	"fmt"
	"math/bits"

	"repro/internal/params"
)

// PlaneArray stores the lockstepped domain state of a whole DBC — X
// nanowires of identical geometry shifting under shared control (Fig.
// 2(d)) — as horizontal bit planes instead of X independent Nanowire
// objects. Plane p holds physical domain row p of every wire, packed 64
// wires per machine word: wire w is bit w%64 of word w/64. One shift,
// port access or transverse read therefore touches ceil(X/64) words per
// plane instead of X scalar domains, which is what lets the simulator
// run 64 wires per instruction.
//
// The geometry (port positions, overhead domains, legal shift excursion)
// is exactly that of Nanowire, which remains the single-wire reference
// model the packed engine is differentially tested against.
type PlaneArray struct {
	wires int        // X: nanowires (bits per plane)
	words int        // ceil(wires/64)
	rows  int        // Y: data domains per wire
	trd   params.TRD // window length between the ports, inclusive
	total int        // physical domains per wire including overhead

	portL, portR int // physical plane indices of the access ports

	start int // physical plane currently holding data row 0
	rest  int // start value at rest (zero offset), cached for Offset
	minS  int // smallest legal start
	maxS  int // largest legal start

	tail uint64 // valid-bit mask of the last word of every plane

	// buf is a ring of total planes: physical plane p lives at
	// buf[(origin+p)%total]. A lockstep shift is pure index bookkeeping —
	// origin moves and one vacated plane is zeroed — no data is copied.
	buf    [][]uint64
	origin int
}

// NewPlaneArray returns the packed domain state of wires nanowires of
// rows data rows each with a port window of trd domains. All domains
// start at zero.
func NewPlaneArray(wires, rows int, trd params.TRD) (*PlaneArray, error) {
	if wires <= 0 {
		return nil, fmt.Errorf("device: non-positive wire count %d", wires)
	}
	if !trd.Valid() {
		return nil, fmt.Errorf("device: invalid %v", trd)
	}
	if rows < int(trd) {
		return nil, fmt.Errorf("device: rows %d < TRD %d", rows, int(trd))
	}
	pl, pr := params.PortPlacement(rows, trd)
	leftOver := rows - 1 - pr // overhead on the left extremity
	rightOver := pl           // overhead on the right extremity
	total := rows + leftOver + rightOver
	words := (wires + 63) / 64
	pa := &PlaneArray{
		wires: wires,
		words: words,
		rows:  rows,
		trd:   trd,
		total: total,
		portL: pl + leftOver,
		portR: pr + leftOver,
		start: leftOver,
		rest:  leftOver,
		minS:  0,
		maxS:  leftOver + rightOver,
		tail:  tailMask(wires),
		buf:   make([][]uint64, total),
	}
	backing := make([]uint64, total*words)
	for p := range pa.buf {
		pa.buf[p] = backing[p*words : (p+1)*words : (p+1)*words]
	}
	return pa, nil
}

// tailMask returns the mask of valid bits in the last word of an n-bit
// plane (all ones when n is a multiple of 64).
func tailMask(n int) uint64 {
	if r := n % 64; r != 0 {
		return 1<<uint(r) - 1
	}
	return ^uint64(0)
}

// Wires returns X, the number of nanowires.
func (pa *PlaneArray) Wires() int { return pa.wires }

// Words returns the number of 64-bit words per plane.
func (pa *PlaneArray) Words() int { return pa.words }

// Rows returns Y, the number of data rows.
func (pa *PlaneArray) Rows() int { return pa.rows }

// TRD returns the port window length.
func (pa *PlaneArray) TRD() params.TRD { return pa.trd }

// TotalDomains returns the physical wire length including overhead.
func (pa *PlaneArray) TotalDomains() int { return pa.total }

// plane returns the storage of physical plane p.
func (pa *PlaneArray) plane(p int) []uint64 {
	i := pa.origin + p
	if i >= pa.total {
		i -= pa.total
	}
	return pa.buf[i]
}

// Offset returns the current shift displacement of the lockstepped data
// region from its rest position (positive = right), as Nanowire.Offset.
// It is two loads and a subtract, cheap enough for the telemetry shift
// hook to call once per recorded shift step.
func (pa *PlaneArray) Offset() int {
	return pa.start - pa.rest
}

// OffsetBounds returns the legal excursion of Offset: the most negative
// and most positive displacements the overhead domains allow. The
// hardware profiler uses it to scale head-position occupancy rendering.
func (pa *PlaneArray) OffsetBounds() (lo, hi int) {
	return pa.minS - pa.rest, pa.maxS - pa.rest
}

// OffsetRange returns the legal head-offset excursion of a wire of the
// given geometry without building one: the OffsetBounds any
// PlaneArray/Nanowire of that shape would report. Consumers that only
// see the telemetry stream (the hardware profiler) use it to bound the
// head-position axis.
func OffsetRange(rows int, trd params.TRD) (lo, hi int) {
	pl, pr := params.PortPlacement(rows, trd)
	return -(rows - 1 - pr), pl
}

// checkRow panics on an out-of-range data row index.
func (pa *PlaneArray) checkRow(r int) {
	if r < 0 || r >= pa.rows {
		panic(fmt.Sprintf("device: row %d out of range [0,%d)", r, pa.rows))
	}
}

// SetRow overwrites data row r from src (words of packed wire bits),
// bypassing the access ports. Bits beyond the wire count are ignored.
func (pa *PlaneArray) SetRow(r int, src []uint64) {
	pa.checkRow(r)
	pa.storePlane(pa.plane(pa.start+r), src)
}

// FillRow fills data row r with a constant bit.
func (pa *PlaneArray) FillRow(r int, b Bit) {
	pa.checkRow(r)
	pa.fillPlane(pa.plane(pa.start+r), b)
}

// RowWords copies data row r into dst without modelling an access.
func (pa *PlaneArray) RowWords(r int, dst []uint64) {
	pa.checkRow(r)
	copy(dst, pa.plane(pa.start+r))
}

// SetRowBit overwrites the single domain of wire w in data row r.
func (pa *PlaneArray) SetRowBit(r, w int, b Bit) {
	pa.checkRow(r)
	setBit(pa.plane(pa.start+r), w, b)
}

// RowBit returns the domain of wire w in data row r.
func (pa *PlaneArray) RowBit(r, w int) Bit {
	pa.checkRow(r)
	return getBit(pa.plane(pa.start+r), w)
}

// storePlane copies src into dst, masking stray bits beyond the wire
// count so planes always hold a clean tail.
func (pa *PlaneArray) storePlane(dst, src []uint64) {
	n := copy(dst, src)
	for ; n < pa.words; n++ {
		dst[n] = 0
	}
	dst[pa.words-1] &= pa.tail
}

// fillPlane fills dst with a constant bit, respecting the tail mask.
func (pa *PlaneArray) fillPlane(dst []uint64, b Bit) {
	var v uint64
	if b&1 != 0 {
		v = ^uint64(0)
	}
	for i := range dst {
		dst[i] = v
	}
	dst[pa.words-1] &= pa.tail
}

func setBit(plane []uint64, w int, b Bit) {
	if b&1 != 0 {
		plane[w>>6] |= 1 << uint(w&63)
	} else {
		plane[w>>6] &^= 1 << uint(w&63)
	}
}

func getBit(plane []uint64, w int) Bit {
	return Bit(plane[w>>6]>>uint(w&63)) & 1
}

// ShiftRight moves every wire's domains one position toward the right
// extremity in lockstep: origin bookkeeping plus zeroing the single
// vacated plane — no plane data moves.
func (pa *PlaneArray) ShiftRight() error {
	if pa.start+1 > pa.maxS {
		return fmt.Errorf("device: shift right would push data off the wire (start=%d)", pa.start)
	}
	pa.origin--
	if pa.origin < 0 {
		pa.origin += pa.total
	}
	// The plane that fell off the right extremity becomes physical
	// plane 0, which shifts in cleared domains.
	zero(pa.buf[pa.origin])
	pa.start++
	return nil
}

// ShiftLeft moves every wire's domains one position toward the left
// extremity in lockstep.
func (pa *PlaneArray) ShiftLeft() error {
	if pa.start-1 < pa.minS {
		return fmt.Errorf("device: shift left would push data off the wire (start=%d)", pa.start)
	}
	// Physical plane 0 falls off the left extremity and becomes the new
	// rightmost plane, shifting in cleared domains.
	zero(pa.buf[pa.origin])
	pa.origin++
	if pa.origin >= pa.total {
		pa.origin -= pa.total
	}
	pa.start--
	return nil
}

func zero(ws []uint64) {
	for i := range ws {
		ws[i] = 0
	}
}

// port returns the physical plane index of the requested port.
func (pa *PlaneArray) port(s Side) int {
	if s == Left {
		return pa.portL
	}
	return pa.portR
}

// RowAtPort returns the data row currently aligned under the port, or -1.
func (pa *PlaneArray) RowAtPort(s Side) int {
	r := pa.port(s) - pa.start
	if r < 0 || r >= pa.rows {
		return -1
	}
	return r
}

// AlignSteps returns the signed shift (positive = right) aligning data
// row r under the given port.
func (pa *PlaneArray) AlignSteps(r int, s Side) int {
	pa.checkRow(r)
	return pa.port(s) - (pa.start + r)
}

// feasible reports whether row r can align under port s without data
// falling off an extremity.
func (pa *PlaneArray) feasible(r int, s Side) bool {
	start := pa.port(s) - r
	return start >= pa.minS && start <= pa.maxS
}

// NearestPort returns the feasible port requiring the fewest shift steps
// to align row r, along with that signed step count.
func (pa *PlaneArray) NearestPort(r int) (Side, int) {
	pa.checkRow(r)
	dl := pa.AlignSteps(r, Left)
	dr := pa.AlignSteps(r, Right)
	if pa.feasible(r, Left) && (!pa.feasible(r, Right) || abs(dl) <= abs(dr)) {
		return Left, dl
	}
	return Right, dr
}

// ReadPort copies the plane under the port into dst (a conventional
// access-point read on every wire at once).
func (pa *PlaneArray) ReadPort(s Side, dst []uint64) {
	copy(dst, pa.plane(pa.port(s)))
}

// WritePort overwrites the plane under the port from src.
func (pa *PlaneArray) WritePort(s Side, src []uint64) {
	pa.storePlane(pa.plane(pa.port(s)), src)
}

// WritePortMasked writes src bits into the plane under the port on the
// wires selected by mask, leaving the other wires' domains untouched —
// the word-parallel form of a scatter of single-wire port writes (the
// Fig. 6 carry chain writes S/C/C' to periodic wire subsets). A nil
// mask is a no-op.
func (pa *PlaneArray) WritePortMasked(s Side, src, mask []uint64) {
	if mask == nil {
		return
	}
	pl := pa.plane(pa.port(s))
	for i := range pl {
		pl[i] = pl[i]&^mask[i] | src[i]&mask[i]
	}
}

// PortBit returns the domain of wire w under the port.
func (pa *PlaneArray) PortBit(s Side, w int) Bit {
	return getBit(pa.plane(pa.port(s)), w)
}

// SetPortBit writes the domain of wire w under the port (a single-wire
// port write inside a compound step, e.g. the Fig. 6 carry scatter).
func (pa *PlaneArray) SetPortBit(s Side, w int, b Bit) {
	setBit(pa.plane(pa.port(s)), w, b)
}

// TRPlanes accumulates the transverse-read levels of every wire over the
// TRD window into the bit-sliced counter planes c0/c1/c2 (level of wire
// w is the 3-bit number c2c1c0 at bit position w). One carry-save pass
// per window plane: 64 wires per word operation, no per-wire loop. A
// window of at most 7 domains always fits the 3-bit counter.
func (pa *PlaneArray) TRPlanes(c0, c1, c2 []uint64) {
	for i := 0; i < pa.words; i++ {
		c0[i], c1[i], c2[i] = 0, 0, 0
	}
	for p := pa.portL; p <= pa.portR; p++ {
		x := pa.plane(p)
		for i, w := range x {
			t0 := c0[i] & w
			c0[i] ^= w
			t1 := c1[i] & t0
			c1[i] ^= t0
			c2[i] |= t1
		}
	}
}

// TRWire returns the transverse-read level of a single wire: the number
// of '1' domains in its window.
func (pa *PlaneArray) TRWire(w int) int {
	word, bit := w>>6, uint(w&63)
	n := 0
	for p := pa.portL; p <= pa.portR; p++ {
		n += int(pa.plane(p)[word] >> bit & 1)
	}
	return n
}

// WindowOnes returns the total number of '1' domains inside the window
// across all wires — the aggregate the shared sense amplifiers see —
// via per-plane popcounts.
func (pa *PlaneArray) WindowOnes() int {
	n := 0
	for p := pa.portL; p <= pa.portR; p++ {
		for _, w := range pa.plane(p) {
			n += bits.OnesCount64(w)
		}
	}
	return n
}

// TW performs the transverse write of §IV-B on every wire at once: src
// is written under the left port while the window contents shift one
// position toward the right port (segmented shift — planes outside the
// window are not disturbed).
func (pa *PlaneArray) TW(src []uint64) {
	for p := pa.portR; p > pa.portL; p-- {
		copy(pa.plane(p), pa.plane(p-1))
	}
	pa.storePlane(pa.plane(pa.portL), src)
}

// checkWindow panics on an out-of-range window position.
func (pa *PlaneArray) checkWindow(i int) {
	if i < 0 || i >= int(pa.trd) {
		panic(fmt.Sprintf("device: window index %d out of range [0,%d)", i, int(pa.trd)))
	}
}

// WindowRow returns the data row currently aligned with window position
// i (0 = under the left port), or -1 for an overhead domain.
func (pa *PlaneArray) WindowRow(i int) int {
	pa.checkWindow(i)
	r := pa.portL + i - pa.start
	if r < 0 || r >= pa.rows {
		return -1
	}
	return r
}

// PokeWindow overwrites the plane at window position i from src without
// modelling an access (Fig. 7 pre-populated padding).
func (pa *PlaneArray) PokeWindow(i int, src []uint64) {
	pa.checkWindow(i)
	pa.storePlane(pa.plane(pa.portL+i), src)
}

// PokeWindowFill fills window position i with a constant bit.
func (pa *PlaneArray) PokeWindowFill(i int, b Bit) {
	pa.checkWindow(i)
	pa.fillPlane(pa.plane(pa.portL+i), b)
}

// PeekWindow copies the plane at window position i into dst.
func (pa *PlaneArray) PeekWindow(i int, dst []uint64) {
	pa.checkWindow(i)
	copy(dst, pa.plane(pa.portL+i))
}

// WireSnapshot returns wire w's data rows in row order (for tests and
// differential comparison against the Nanowire reference).
func (pa *PlaneArray) WireSnapshot(w int) []Bit {
	out := make([]Bit, pa.rows)
	for r := range out {
		out[r] = getBit(pa.plane(pa.start+r), w)
	}
	return out
}
