package device

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/params"
)

func TestSegmentedTRCounts(t *testing.T) {
	w := mustWire(t, 32, params.TRD7)
	// Set a known pattern across the data rows.
	rng := rand.New(rand.NewSource(50))
	want := 0
	for r := 0; r < 32; r++ {
		b := Bit(rng.Intn(2))
		w.SetRow(r, b)
		want += int(b)
	}
	counts, steps := w.SegmentedTR(7)
	total := 0
	for _, c := range counts {
		if c < 0 || c > 7 {
			t.Fatalf("segment count %d outside [0,7]", c)
		}
		total += c
	}
	if total != want {
		t.Errorf("segmented total = %d, want %d", total, want)
	}
	if steps != 2 {
		t.Errorf("steps = %d, want 2 (alternating segments, Fig. 3)", steps)
	}
	if got := (w.TotalDomains() + 6) / 7; len(counts) != got {
		t.Errorf("%d segments, want %d", len(counts), got)
	}
}

func TestSegmentedTRSingleSegment(t *testing.T) {
	w := mustWire(t, 32, params.TRD7)
	counts, steps := w.SegmentedTR(w.TotalDomains())
	if len(counts) != 1 || steps != 1 {
		t.Errorf("full-wire query: %d segments in %d steps", len(counts), steps)
	}
}

func TestCountOnesProperty(t *testing.T) {
	check := func(pattern [32]bool, segSeed uint8) bool {
		w, _ := NewNanowire(32, params.TRD7)
		want := 0
		for r, b := range pattern {
			if b {
				w.SetRow(r, 1)
				want++
			}
		}
		segLen := int(segSeed)%10 + 1
		return w.CountOnes(segLen) == want
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSegmentedTRPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("segment length 0 accepted")
		}
	}()
	w := mustWire(t, 32, params.TRD7)
	w.SegmentedTR(0)
}
