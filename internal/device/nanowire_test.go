package device

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/params"
)

func mustWire(t *testing.T, rows int, trd params.TRD) *Nanowire {
	t.Helper()
	w, err := NewNanowire(rows, trd)
	if err != nil {
		t.Fatalf("NewNanowire(%d, %v): %v", rows, trd, err)
	}
	return w
}

func TestNanowireGeometry(t *testing.T) {
	// §III-A: Y=32 with TRD=7 ports at (1-indexed) 14 and 20 requires
	// 25 overhead domains, i.e. 57 total.
	w := mustWire(t, 32, params.TRD7)
	if got := w.TotalDomains(); got != 57 {
		t.Errorf("TotalDomains = %d, want 57", got)
	}
	if got := params.OverheadDomains(32, params.TRD7); got != 25 {
		t.Errorf("OverheadDomains = %d, want 25", got)
	}
	pl, pr := params.PortPlacement(32, params.TRD7)
	if pl != 13 || pr != 19 {
		t.Errorf("PortPlacement = (%d,%d), want (13,19)", pl, pr)
	}
	// Single access point needs 2Y−1 = 63 domains; two ports reduce it.
	if w.TotalDomains() >= 63 {
		t.Errorf("two-port wire should need fewer than 63 domains, got %d", w.TotalDomains())
	}
}

func TestNanowireGeometryAllTRDs(t *testing.T) {
	for _, trd := range []params.TRD{params.TRD3, params.TRD5, params.TRD7} {
		w := mustWire(t, 32, trd)
		pl, pr := params.PortPlacement(32, trd)
		if pr-pl+1 != int(trd) {
			t.Errorf("%v: window spans %d domains", trd, pr-pl+1)
		}
		if w.TotalDomains() != 32+params.OverheadDomains(32, trd) {
			t.Errorf("%v: total %d != data+overhead", trd, w.TotalDomains())
		}
	}
}

func TestNanowireInvalid(t *testing.T) {
	if _, err := NewNanowire(32, params.TRD(4)); err == nil {
		t.Error("TRD=4 accepted")
	}
	if _, err := NewNanowire(5, params.TRD7); err == nil {
		t.Error("rows < TRD accepted")
	}
}

func TestNanowireSetPeekRows(t *testing.T) {
	w := mustWire(t, 32, params.TRD7)
	for r := 0; r < 32; r++ {
		w.SetRow(r, uint8(r%2))
	}
	for r := 0; r < 32; r++ {
		if got := w.PeekRow(r); got != uint8(r%2) {
			t.Fatalf("row %d = %d, want %d", r, got, r%2)
		}
	}
}

func TestNanowireShiftPreservesData(t *testing.T) {
	w := mustWire(t, 32, params.TRD7)
	want := make([]Bit, 32)
	rng := rand.New(rand.NewSource(1))
	for r := range want {
		want[r] = Bit(rng.Intn(2))
		w.SetRow(r, want[r])
	}
	// Walk to both excursion extremes and back.
	seq := []int{5, -10, 13, -13, 2, -2}
	for _, s := range seq {
		if err := w.Shift(s); err != nil {
			t.Fatalf("Shift(%d): %v", s, err)
		}
	}
	got := w.Snapshot()
	for r := range want {
		if got[r] != want[r] {
			t.Fatalf("after shifts, row %d = %d, want %d", r, got[r], want[r])
		}
	}
	if w.Offset() != -5 {
		t.Errorf("Offset = %d, want -5", w.Offset())
	}
}

func TestNanowireShiftBounds(t *testing.T) {
	w := mustWire(t, 32, params.TRD7)
	// Align row 0 under the left port: the largest legal rightward move.
	if _, err := w.Align(0, Left); err != nil {
		t.Fatalf("Align(0, Left): %v", err)
	}
	if err := w.ShiftRight(); err == nil {
		t.Error("shift beyond right excursion accepted")
	}
	if _, err := w.Align(31, Right); err != nil {
		t.Fatalf("Align(31, Right): %v", err)
	}
	if err := w.ShiftLeft(); err == nil {
		t.Error("shift beyond left excursion accepted")
	}
}

func TestNanowireAlignAndAccess(t *testing.T) {
	w := mustWire(t, 32, params.TRD7)
	for r := 0; r < 32; r++ {
		w.SetRow(r, Bit(r&1))
	}
	for r := 0; r < 32; r++ {
		side, steps := w.NearestPort(r)
		if _, err := w.Align(r, side); err != nil {
			t.Fatalf("Align(%d, %v): %v", r, side, err)
		}
		if got := w.RowAtPort(side); got != r {
			t.Fatalf("RowAtPort after align = %d, want %d", got, r)
		}
		if got := w.ReadPort(side); got != Bit(r&1) {
			t.Fatalf("ReadPort(row %d) = %d, want %d", r, got, r&1)
		}
		if steps > 13 || steps < -13 {
			t.Fatalf("NearestPort steps %d exceed worst case 13", steps)
		}
	}
}

func TestNanowireNearestPortMaxShift(t *testing.T) {
	// §III-A: with ports at 14/20 the worst-case shift is 13 (row 0).
	w := mustWire(t, 32, params.TRD7)
	worst := 0
	for r := 0; r < 32; r++ {
		_, d := w.NearestPort(r)
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}
	if worst != 13 {
		t.Errorf("worst-case shift = %d, want 13", worst)
	}
}

func TestNanowireWriteReadPort(t *testing.T) {
	w := mustWire(t, 32, params.TRD7)
	w.WritePort(Left, 1)
	if got := w.ReadPort(Left); got != 1 {
		t.Fatalf("ReadPort(Left) = %d, want 1", got)
	}
	if got := w.ReadPort(Right); got != 0 {
		t.Fatalf("ReadPort(Right) = %d, want 0", got)
	}
	w.WritePort(Right, 1)
	w.WritePort(Left, 0)
	if got := w.ReadPort(Left); got != 0 {
		t.Fatalf("ReadPort(Left) after overwrite = %d, want 0", got)
	}
	if got := w.ReadPort(Right); got != 1 {
		t.Fatalf("ReadPort(Right) = %d, want 1", got)
	}
}

func TestNanowireTRCountsOnes(t *testing.T) {
	// Property: TR equals the popcount of the window, for any window
	// contents, with no position information.
	check := func(bits [7]bool) bool {
		w, _ := NewNanowire(32, params.TRD7)
		want := 0
		for i, b := range bits {
			if b {
				w.PokeWindow(i, 1)
				want++
			}
		}
		return w.TR() == want
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestNanowireTRPositionBlind(t *testing.T) {
	// Two windows with the same popcount but different layouts must give
	// identical TR values.
	a := mustWire(t, 32, params.TRD7)
	b := mustWire(t, 32, params.TRD7)
	a.PokeWindow(0, 1)
	a.PokeWindow(1, 1)
	b.PokeWindow(5, 1)
	b.PokeWindow(6, 1)
	if a.TR() != b.TR() {
		t.Errorf("TR depends on position: %d vs %d", a.TR(), b.TR())
	}
}

func TestNanowireTW(t *testing.T) {
	// Fig. 9: TW writes under the left head while the window shifts one
	// position right, ejecting the domain under the right head; domains
	// outside the window are untouched.
	w := mustWire(t, 32, params.TRD7)
	for i := 0; i < 7; i++ {
		w.PokeWindow(i, Bit(i&1)) // 0,1,0,1,0,1,0
	}
	outsideL := w.PeekRow(0)
	w.TW(1)
	want := []Bit{1, 0, 1, 0, 1, 0, 1}
	for i := 0; i < 7; i++ {
		if got := w.PeekWindowBit(i); got != want[i] {
			t.Fatalf("window[%d] = %d, want %d", i, got, want[i])
		}
	}
	if w.PeekRow(0) != outsideL {
		t.Error("TW disturbed a domain outside the window")
	}
}

func TestNanowireTWRotation(t *testing.T) {
	// Reading the right port then TW-ing the value back at the left
	// port rotates the window; TRD iterations restore it (§IV-B).
	w := mustWire(t, 32, params.TRD7)
	want := make([]Bit, 7)
	rng := rand.New(rand.NewSource(7))
	for i := range want {
		want[i] = Bit(rng.Intn(2))
		w.PokeWindow(i, want[i])
	}
	for i := 0; i < 7; i++ {
		v := w.ReadPort(Right)
		w.TW(v)
	}
	for i := range want {
		if got := w.PeekWindowBit(i); got != want[i] {
			t.Fatalf("after full rotation window[%d] = %d, want %d", i, got, want[i])
		}
	}
}

func TestFaultInjectorDisabled(t *testing.T) {
	var f *FaultInjector
	if got := f.PerturbTR(3, 7); got != 3 {
		t.Errorf("nil injector changed TR level to %d", got)
	}
	if got := f.ShiftError(); got != 0 {
		t.Errorf("nil injector produced shift error %d", got)
	}
	f = NewFaultInjector(0, 0, 1)
	if got := f.PerturbTR(3, 7); got != 3 {
		t.Errorf("zero-probability injector changed TR level to %d", got)
	}
}

func TestFaultInjectorRate(t *testing.T) {
	f := NewFaultInjector(0.5, 0, 42)
	n, faults := 20000, 0
	for i := 0; i < n; i++ {
		l := f.PerturbTR(3, 7)
		if l != 3 {
			faults++
			if l != 2 && l != 4 {
				t.Fatalf("fault moved level by more than one: %d", l)
			}
		}
	}
	rate := float64(faults) / float64(n)
	if rate < 0.45 || rate > 0.55 {
		t.Errorf("fault rate %.3f, want ≈0.5", rate)
	}
}

func TestFaultInjectorClamps(t *testing.T) {
	f := NewFaultInjector(1.0, 0, 3)
	for i := 0; i < 100; i++ {
		if l := f.PerturbTR(0, 7); l < 0 || l > 7 {
			t.Fatalf("level %d out of range", l)
		}
		if l := f.PerturbTR(7, 7); l < 0 || l > 7 {
			t.Fatalf("level %d out of range", l)
		}
	}
}

func TestFaultInjectorShiftError(t *testing.T) {
	f := NewFaultInjector(0, 1.0, 9)
	seen := map[int]bool{}
	for i := 0; i < 100; i++ {
		e := f.ShiftError()
		if e != -1 && e != 1 {
			t.Fatalf("shift error %d with probability 1", e)
		}
		seen[e] = true
	}
	if !seen[-1] || !seen[1] {
		t.Error("shift errors not in both directions")
	}
}
