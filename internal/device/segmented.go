package device

// SegmentedTR queries the full nanowire with transverse reads over
// consecutive segments of at most segLen domains (Fig. 3): extra bitline
// taps partition the wire, and because the nanowire resistivity isolates
// non-adjacent regions, alternating segments are sensed simultaneously —
// the whole wire is covered in at most two steps.
//
// It returns the per-segment '1' counts (position-blind within each
// segment, like any TR) and the number of parallel control steps used.
func (w *Nanowire) SegmentedTR(segLen int) (counts []int, steps int) {
	if segLen < 1 {
		panic("device: segment length must be positive")
	}
	for start := 0; start < w.total; start += segLen {
		end := start + segLen
		if end > w.total {
			end = w.total
		}
		n := 0
		for p := start; p < end; p++ {
			n += int(w.domains[p])
		}
		counts = append(counts, n)
	}
	if len(counts) > 1 {
		return counts, 2 // odd and even segments interleave (Fig. 3)
	}
	return counts, 1
}

// CountOnes returns the total number of '1' domains on the wire using a
// segmented transverse read — a two-step whole-wire population count,
// one of the reliability-checking uses TR was first proposed for (§II-D).
func (w *Nanowire) CountOnes(segLen int) int {
	counts, _ := w.SegmentedTR(segLen)
	total := 0
	for _, c := range counts {
		total += c
	}
	return total
}
