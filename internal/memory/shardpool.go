package memory

import (
	"fmt"

	"repro/internal/params"
	"repro/internal/resilient"
)

// Pool is a fixed set of independent Memory shards behind one owner —
// the substrate of the coruscantd service front end. Each shard is a
// complete Memory (its own address space, striped per-DBC locks, its
// own telemetry recorder), so the shards share nothing and requests
// routed to distinct shards never contend on anything: pool-level
// parallelism stacks on top of each Memory's bank-level parallelism.
//
// Routing is the caller's concern: a Pool has no cross-shard address
// space and never moves rows between shards (that is ROADMAP's elastic
// state item, not this layer). The service routes by explicit shard id
// or tenant hash; see internal/service.
type Pool struct {
	shards []*Memory
}

// NewPool builds n independent shards of the given configuration.
func NewPool(cfg params.Config, n int) (*Pool, error) {
	if n <= 0 {
		return nil, fmt.Errorf("memory: pool needs at least 1 shard, got %d", n)
	}
	p := &Pool{shards: make([]*Memory, n)}
	for i := range p.shards {
		m, err := New(cfg)
		if err != nil {
			return nil, err
		}
		p.shards[i] = m
	}
	return p, nil
}

// Shards returns the number of shards.
func (p *Pool) Shards() int { return len(p.shards) }

// Shard returns shard i; callers use the full Memory API on it.
func (p *Pool) Shard(i int) *Memory {
	if i < 0 || i >= len(p.shards) {
		panic(fmt.Sprintf("memory: shard %d outside pool of %d", i, len(p.shards)))
	}
	return p.shards[i]
}

// Config returns the shards' (shared) configuration.
func (p *Pool) Config() params.Config { return p.shards[0].Config() }

// SetWorkers sets every shard's ExecuteBatch worker-pool size.
func (p *Pool) SetWorkers(n int) {
	for _, m := range p.shards {
		m.SetWorkers(n)
	}
}

// SetRecovery installs a recovery policy on every shard.
func (p *Pool) SetRecovery(pol resilient.Policy) error {
	for _, m := range p.shards {
		if err := m.SetRecovery(pol); err != nil {
			return err
		}
	}
	return nil
}
