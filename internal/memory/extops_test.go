package memory

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/pim"
)

// TestExecuteExtensionOps drives the PIRM extension opcodes through the
// full staged-execute path (operands in ordinary DBCs, computed in the
// PIM DBC, stored elsewhere) and through ExecuteBatch.
func TestExecuteExtensionOps(t *testing.T) {
	m := testMemory(t)
	pimAddr := isa.Addr{Tile: 0, DBC: 15}
	a := isa.Addr{Tile: 1, DBC: 0, Row: 0}
	b := isa.Addr{Tile: 1, DBC: 0, Row: 1}
	c := isa.Addr{Tile: 1, DBC: 0, Row: 2}

	av := []uint64{200, 77, 5, 0}
	dv := []uint64{7, 0, 9, 3}
	if err := m.WriteRow(a, pim.MustPackLanes(av, 8, 32)); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteRow(b, pim.MustPackLanes(dv, 8, 32)); err != nil {
		t.Fatal(err)
	}

	q, err := m.Execute(isa.Instruction{Op: isa.OpDiv, Src: pimAddr, Blocksize: 8, Operands: 2},
		[]isa.Addr{a, b}, isa.Addr{Tile: 2, Row: 0})
	if err != nil {
		t.Fatal(err)
	}
	r, err := m.Execute(isa.Instruction{Op: isa.OpMod, Src: pimAddr, Blocksize: 8, Operands: 2},
		[]isa.Addr{a, b}, isa.Addr{Tile: 2, Row: 1})
	if err != nil {
		t.Fatal(err)
	}
	qs, rs := pim.UnpackLanes(q, 8), pim.UnpackLanes(r, 8)
	for l := range av {
		wantQ, wantR := uint64(255), av[l]
		if dv[l] != 0 {
			wantQ, wantR = av[l]/dv[l], av[l]%dv[l]
		}
		if qs[l] != wantQ || rs[l] != wantR {
			t.Errorf("lane %d: div/mod = %d,%d want %d,%d", l, qs[l], rs[l], wantQ, wantR)
		}
	}

	sh, err := m.Execute(isa.Instruction{Op: isa.OpShl, Src: pimAddr, Blocksize: 8, Operands: 1, Imm: 2},
		[]isa.Addr{a}, isa.Addr{Tile: 2, Row: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := pim.UnpackLanes(sh, 8)[0]; got != (200<<2)&0xFF {
		t.Errorf("shl = %d, want %d", got, (200<<2)&0xFF)
	}

	if err := m.WriteRow(a, pim.MustPackLanes([]uint64{13, 9}, 16, 32)); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteRow(b, pim.MustPackLanes([]uint64{7, 200}, 16, 32)); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteRow(c, pim.MustPackLanes([]uint64{1000, 60000}, 16, 32)); err != nil {
		t.Fatal(err)
	}
	res := m.ExecuteBatch([]Request{{
		In:       isa.Instruction{Op: isa.OpFma, Src: pimAddr, Blocksize: 16, Operands: 3},
		Operands: []isa.Addr{a, b, c},
		Dst:      isa.Addr{Tile: 2, Row: 3},
	}, {
		In:       isa.Instruction{Op: isa.OpShr, Src: isa.Addr{Bank: 1, Tile: 0, DBC: 15}, Blocksize: 16, Operands: 1, Imm: 4},
		Operands: []isa.Addr{{Bank: 1, Tile: 1, Row: 0}},
		Dst:      isa.Addr{Bank: 1, Tile: 2, Row: 0},
	}})
	if res[0].Err != nil {
		t.Fatal(res[0].Err)
	}
	fs := pim.UnpackLanes(res[0].Row, 16)
	if fs[0] != 13*7+1000 || fs[1] != (9*200+60000)&0xFFFF {
		t.Errorf("batched fma = %v", fs[:2])
	}
	// The second request reads an unwritten row (all zeros): shr of zero
	// is zero, but the dispatch itself must succeed.
	if res[1].Err != nil {
		t.Fatal(res[1].Err)
	}
}
