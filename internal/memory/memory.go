// Package memory is the functional CORUSCANT main memory (Fig. 2): the
// full bank → subarray → tile → DBC hierarchy behind one address space,
// with row-buffer-mediated data movement between DBCs (§II-B's
// RowClone-style intra-memory copies) and in-place execution of cpim
// operations inside the PIM-enabled DBCs.
//
// DBCs materialize lazily, so the Table II geometry (a 1 GB memory of
// half a million DBCs) is addressable without allocating it: only
// touched clusters exist. All accesses are traced; the per-operation
// device costs accumulate in the memory's tracer and every access is
// also recorded by the memory's telemetry recorder — row movement
// included — so MoveStats is a view over the unified telemetry
// counters rather than a bespoke tally.
package memory

import (
	"fmt"
	"sync"

	"repro/internal/dbc"
	"repro/internal/device"
	"repro/internal/isa"
	"repro/internal/params"
	"repro/internal/pim"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Memory is one CORUSCANT main memory. It is safe for concurrent use:
// a single lock serializes accesses, mirroring the one memory controller
// in front of the arrays.
type Memory struct {
	mu     sync.Mutex
	cfg    params.Config
	plain  map[isa.Addr]*dbc.DBC // non-PIM DBCs, keyed by row-0 address
	units  map[isa.Addr]*pim.Unit
	tracer *trace.Tracer
	rec    *telemetry.Recorder // always non-nil: metrics-only by default
	inj    *device.FaultInjector
}

// MoveStats counts row-granularity data movement inside the memory. It
// is derived from the telemetry recorder's unified counters (the
// OpRowRead/OpRowWrite/OpRowCopy instants).
type MoveStats struct {
	RowReads  int
	RowWrites int
	RowCopies int // row-buffer transfers between DBCs
}

// New returns an empty memory with the given configuration.
func New(cfg params.Config) (*Memory, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Memory{
		cfg:    cfg,
		plain:  make(map[isa.Addr]*dbc.DBC),
		units:  make(map[isa.Addr]*pim.Unit),
		tracer: &trace.Tracer{},
		rec:    telemetry.NewRecorder(cfg),
	}, nil
}

// Config returns the memory's configuration.
func (m *Memory) Config() params.Config { return m.cfg }

// Stats returns the accumulated device-primitive counts of every DBC.
func (m *Memory) Stats() trace.Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.tracer.Stats()
}

// Moves returns the row-movement counters, derived from the unified
// telemetry metrics.
func (m *Memory) Moves() MoveStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	met := m.rec.Metrics()
	return MoveStats{
		RowReads:  int(met.Count(telemetry.OpRowRead)),
		RowWrites: int(met.Count(telemetry.OpRowWrite)),
		RowCopies: int(met.Count(telemetry.OpRowCopy)),
	}
}

// Recorder returns the memory's telemetry recorder (never nil).
func (m *Memory) Recorder() *telemetry.Recorder {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.rec
}

// SetTelemetry replaces the memory's telemetry recorder, re-attaching
// every materialized DBC to it. Passing nil installs a fresh
// metrics-only recorder (the memory always records: MoveStats derives
// from the recorder's counters), which also resets the counters.
func (m *Memory) SetTelemetry(rec *telemetry.Recorder) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if rec == nil {
		rec = telemetry.NewRecorder(m.cfg)
	}
	m.rec = rec
	for base, d := range m.plain {
		d.SetTelemetry(rec, srcFor(base))
	}
	for base, u := range m.units {
		u.SetTelemetry(rec, srcFor(base))
	}
}

// srcFor names a DBC's telemetry source after its coordinates, e.g.
// "b0.s1.t2.d3" — one Chrome-trace lane per touched DBC.
func srcFor(base isa.Addr) telemetry.Source {
	return telemetry.Source(fmt.Sprintf("b%d.s%d.t%d.d%d", base.Bank, base.Subarray, base.Tile, base.DBC))
}

// dbcBase strips the row from an address, keying the containing DBC.
func dbcBase(a isa.Addr) isa.Addr {
	a.Row = 0
	return a
}

// checkAddr validates an address against the geometry.
func (m *Memory) checkAddr(a isa.Addr) error {
	if !a.Valid(m.cfg.Geometry) {
		return fmt.Errorf("memory: address %+v outside geometry", a)
	}
	return nil
}

// cluster materializes (or returns) the DBC holding the address. For
// PIM-enabled locations the DBC belongs to a PIM unit.
func (m *Memory) cluster(a isa.Addr) (*dbc.DBC, error) {
	if err := m.checkAddr(a); err != nil {
		return nil, err
	}
	base := dbcBase(a)
	if a.IsPIMEnabled(m.cfg.Geometry) {
		u, err := m.unit(base)
		if err != nil {
			return nil, err
		}
		return u.D, nil
	}
	if d, ok := m.plain[base]; ok {
		return d, nil
	}
	d, err := dbc.New(m.cfg.Geometry.TrackWidth, m.cfg.Geometry.RowsPerDBC, m.cfg.TRD)
	if err != nil {
		return nil, err
	}
	d.SetTracer(m.tracer)
	d.SetFaultInjector(m.inj)
	d.SetTelemetry(m.rec, srcFor(base))
	m.plain[base] = d
	return d, nil
}

// unit materializes the PIM unit of a PIM-enabled DBC address.
func (m *Memory) unit(base isa.Addr) (*pim.Unit, error) {
	if u, ok := m.units[base]; ok {
		return u, nil
	}
	u, err := pim.NewUnit(m.cfg)
	if err != nil {
		return nil, err
	}
	// Route the unit's accounting into the memory-wide tracer.
	u.D.SetTracer(m.tracer)
	u.D.SetFaultInjector(m.inj)
	u.SetTelemetry(m.rec, srcFor(base))
	m.units[base] = u
	return u, nil
}

// WriteRow stores a row at the address through its DBC's nearest access
// port (shift-align plus port write, all traced).
func (m *Memory) WriteRow(a isa.Addr, row dbc.Row) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.writeRowLocked(a, row)
}

func (m *Memory) writeRowLocked(a isa.Addr, row dbc.Row) error {
	d, err := m.cluster(a)
	if err != nil {
		return err
	}
	if row.N != d.Width() {
		return fmt.Errorf("memory: row width %d, want %d", row.N, d.Width())
	}
	side, _, err := d.AlignNearest(a.Row)
	if err != nil {
		return err
	}
	d.WritePort(side, row)
	m.rec.Move(d.Source(), telemetry.OpRowWrite, row.N)
	return nil
}

// ReadRow loads the row at the address.
func (m *Memory) ReadRow(a isa.Addr) (dbc.Row, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.readRowLocked(a)
}

func (m *Memory) readRowLocked(a isa.Addr) (dbc.Row, error) {
	d, err := m.cluster(a)
	if err != nil {
		return dbc.Row{}, err
	}
	side, _, err := d.AlignNearest(a.Row)
	if err != nil {
		return dbc.Row{}, err
	}
	m.rec.Move(d.Source(), telemetry.OpRowRead, d.Width())
	return d.ReadPort(side), nil
}

// CopyRow moves a row between two locations over the shared row buffer
// (§II-B / [35]): an activate-read at the source and an activate-write
// at the destination, without crossing the memory bus.
func (m *Memory) CopyRow(src, dst isa.Addr) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	row, err := m.readRowLocked(src)
	if err != nil {
		return err
	}
	if err := m.writeRowLocked(dst, row); err != nil {
		return err
	}
	m.rec.Move(srcFor(dbcBase(dst)), telemetry.OpRowCopy, row.N)
	return nil
}

// SetFaultInjector attaches fault injection to every future cluster
// materialization and all already-materialized clusters.
func (m *Memory) SetFaultInjector(f *device.FaultInjector) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.inj = f
	for _, d := range m.plain {
		d.SetFaultInjector(f)
	}
	for _, u := range m.units {
		u.D.SetFaultInjector(f)
	}
}

// Execute runs a cpim instruction whose operands live at memory
// addresses: the controller stages each operand into the PIM-enabled
// DBC named by in.Src over the row buffer (§III-A: "the shared row
// buffer ... can be used to move data from non-PIM DBCs to PIM-enabled
// DBCs"), executes the operation there, and writes the result to dst.
func (m *Memory) Execute(in isa.Instruction, operands []isa.Addr, dst isa.Addr) (dbc.Row, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := in.Validate(m.cfg.Geometry, m.cfg.TRD); err != nil {
		return dbc.Row{}, err
	}
	if !in.Src.IsPIMEnabled(m.cfg.Geometry) {
		return dbc.Row{}, fmt.Errorf("memory: %+v is not a PIM-enabled DBC", in.Src)
	}
	if len(operands) != in.Operands {
		return dbc.Row{}, fmt.Errorf("memory: %v expects %d operands, got %d", in.Op, in.Operands, len(operands))
	}
	u, err := m.unit(dbcBase(in.Src))
	if err != nil {
		return dbc.Row{}, err
	}
	defer m.rec.Span(srcFor(dbcBase(in.Src)), "exec-"+in.Op.String())()
	rows := make([]dbc.Row, len(operands))
	for i, a := range operands {
		row, err := m.readRowLocked(a)
		if err != nil {
			return dbc.Row{}, fmt.Errorf("memory: operand %d: %w", i, err)
		}
		if !sameDBC(a, in.Src) {
			// Staged over the row buffer into the executing DBC.
			m.rec.Move(srcFor(dbcBase(in.Src)), telemetry.OpRowCopy, row.N)
		}
		rows[i] = row
	}

	var result dbc.Row
	switch in.Op {
	case isa.OpAdd:
		result, err = u.AddMulti(rows, in.Blocksize)
	case isa.OpMult:
		if len(rows) != 2 {
			return dbc.Row{}, fmt.Errorf("memory: mult expects 2 operands")
		}
		result, err = u.Multiply(rows[0], rows[1], in.Blocksize/2)
	case isa.OpMax:
		result, err = u.MaxTR(rows, in.Blocksize)
	case isa.OpRelu:
		result, err = u.ReLU(rows[0], in.Blocksize)
	case isa.OpVote:
		result, err = u.Vote(rows)
	case isa.OpAnd, isa.OpOr, isa.OpNand, isa.OpNor, isa.OpXor, isa.OpXnor, isa.OpNot:
		op, _ := bulkOp(in.Op)
		result, err = u.BulkBitwise(op, rows)
	default:
		return dbc.Row{}, fmt.Errorf("memory: opcode %v is not a PIM operation", in.Op)
	}
	if err != nil {
		return dbc.Row{}, err
	}
	if err := m.writeRowLocked(dst, result); err != nil {
		return dbc.Row{}, err
	}
	return result, nil
}

// sameDBC reports whether two addresses share a DBC.
func sameDBC(a, b isa.Addr) bool { return dbcBase(a) == dbcBase(b) }

// bulkOp maps a bulk opcode to the PIM logic selector.
func bulkOp(o isa.OpCode) (dbc.Op, bool) {
	switch o {
	case isa.OpAnd:
		return dbc.OpAND, true
	case isa.OpOr:
		return dbc.OpOR, true
	case isa.OpNand:
		return dbc.OpNAND, true
	case isa.OpNor:
		return dbc.OpNOR, true
	case isa.OpXor:
		return dbc.OpXOR, true
	case isa.OpXnor:
		return dbc.OpXNOR, true
	case isa.OpNot:
		return dbc.OpNOT, true
	}
	return 0, false
}

// MaterializedDBCs reports how many clusters have been touched (for
// tests and capacity sanity checks).
func (m *Memory) MaterializedDBCs() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.plain) + len(m.units)
}
