// Package memory is the functional CORUSCANT main memory (Fig. 2): the
// full bank → subarray → tile → DBC hierarchy behind one address space,
// with row-buffer-mediated data movement between DBCs (§II-B's
// RowClone-style intra-memory copies) and in-place execution of cpim
// operations inside the PIM-enabled DBCs.
//
// DBCs materialize lazily, so the Table II geometry (a 1 GB memory of
// half a million DBCs) is addressable without allocating it: only
// touched clusters exist.
//
// Concurrency model: the memory is striped per DBC — each materialized
// cluster is a shard with its own lock and its own trace.Tracer, so
// operations on disjoint clusters never contend (the bank-level
// parallelism the DBC organization exists to provide). Multi-DBC
// operations (CopyRow, Execute's operand staging) take the involved
// shard locks in global address order, which makes deadlock impossible.
// ExecuteBatch (batch.go) runs whole request groups on a worker pool on
// top of the same striping. All accesses are traced; Stats() merges the
// per-shard tracers under their locks, so it is safe — and consistent —
// while operations are in flight. Every access is also recorded by the
// memory's telemetry recorder, row movement included, so MoveStats is a
// view over the unified telemetry counters rather than a bespoke tally.
//
// Fault injection is the one feature that serializes: the injector's
// random stream is consumed in operation order, so reproducible
// experiments require serial execution (ExecuteBatch degrades to the
// serial path when an injector is attached, and direct concurrent
// access with an injector installed needs external ordering anyway for
// the fault pattern to be meaningful).
package memory

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/dbc"
	"repro/internal/device"
	"repro/internal/isa"
	"repro/internal/params"
	"repro/internal/pim"
	"repro/internal/resilient"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// ErrCrossDBC reports a cpim instruction whose operand or destination
// rows cannot be staged into the executing DBC: staging rides the
// bank's shared row buffer (§III-A), so every operand and the
// destination must live in the same bank as the PIM-enabled DBC named
// by the instruction. The error is returned by Execute and ExecuteBatch
// before any lock is taken or any row is moved; callers stage remote
// rows explicitly with CopyRow first. Test with errors.Is.
var ErrCrossDBC = errors.New("memory: operand outside the executing DBC's bank")

// shard is one materialized DBC with its lock and accounting. The DBC
// (and, for PIM-enabled clusters, the unit wrapping it) is only touched
// with mu held.
type shard struct {
	mu   sync.Mutex
	base isa.Addr
	d    *dbc.DBC
	u    *pim.Unit           // non-nil iff the cluster is PIM-enabled
	ex   *resilient.Executor // non-nil iff u != nil and recovery is enabled
	// tr is the shard's slice of the memory-wide device accounting;
	// trace.Tracer is plain counters, so sharing one across shards would
	// race. Stats() folds the shards together.
	tr *trace.Tracer
}

// setRecorder points the shard's DBC (and unit) at rec. Callers hold
// sh.mu; ExecuteBatch uses this to divert a group's events into a
// capture recorder for deterministic merging.
func (sh *shard) setRecorder(rec *telemetry.Recorder) {
	if sh.u != nil {
		sh.u.SetTelemetry(rec, srcFor(sh.base))
		return
	}
	sh.d.SetTelemetry(rec, srcFor(sh.base))
}

// recorder returns the recorder currently attached to the shard's DBC.
func (sh *shard) recorder() *telemetry.Recorder { return sh.d.Recorder() }

// Memory is one CORUSCANT main memory, safe for concurrent use through
// per-DBC striped locking.
type Memory struct {
	cfg params.Config

	// tableMu guards the shard table only; shard state is behind each
	// shard's own lock.
	tableMu sync.RWMutex
	shards  map[isa.Addr]*shard

	// cfgMu guards the attachment state below.
	cfgMu   sync.Mutex
	rec     *telemetry.Recorder // always non-nil: metrics-only by default
	inj     *device.FaultInjector
	prof    *FaultProfile // per-shard deterministic injectors; excludes inj
	pol     resilient.Policy
	workers int // ExecuteBatch pool size; 0 = GOMAXPROCS

	// health is the fault ledger behind quarantine and remapping
	// (health.go); it has its own lock.
	health healthLedger
}

// MoveStats counts row-granularity data movement inside the memory. It
// is derived from the telemetry recorder's unified counters (the
// OpRowRead/OpRowWrite/OpRowCopy instants).
type MoveStats struct {
	RowReads  int
	RowWrites int
	RowCopies int // row-buffer transfers between DBCs
}

// New returns an empty memory with the given configuration.
func New(cfg params.Config) (*Memory, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Memory{
		cfg:    cfg,
		shards: make(map[isa.Addr]*shard),
		rec:    telemetry.NewRecorder(cfg),
	}
	m.health.init()
	return m, nil
}

// Config returns the memory's configuration.
func (m *Memory) Config() params.Config { return m.cfg }

// snapshotShards returns the materialized shards in address order.
func (m *Memory) snapshotShards() []*shard {
	m.tableMu.RLock()
	out := make([]*shard, 0, len(m.shards))
	for _, sh := range m.shards {
		out = append(out, sh)
	}
	m.tableMu.RUnlock()
	g := m.cfg.Geometry
	sort.Slice(out, func(i, j int) bool {
		return out[i].base.Linear(g) < out[j].base.Linear(g)
	})
	return out
}

// Stats returns the accumulated device-primitive counts of every DBC.
// It folds the per-shard tracers under their locks, one shard at a
// time, so it is safe to call while operations — including a batch —
// are in flight and never blocks the whole memory.
func (m *Memory) Stats() trace.Stats {
	var total trace.Stats
	for _, sh := range m.snapshotShards() {
		sh.mu.Lock()
		s := sh.tr.Stats()
		sh.mu.Unlock()
		total.Add(s)
	}
	return total
}

// Moves returns the row-movement counters, derived from the unified
// telemetry metrics. Events of an in-flight batch group appear once the
// group's capture is merged.
func (m *Memory) Moves() MoveStats {
	met := m.Recorder().Metrics()
	return MoveStats{
		RowReads:  int(met.Count(telemetry.OpRowRead)),
		RowWrites: int(met.Count(telemetry.OpRowWrite)),
		RowCopies: int(met.Count(telemetry.OpRowCopy)),
	}
}

// Recorder returns the memory's telemetry recorder (never nil).
func (m *Memory) Recorder() *telemetry.Recorder {
	m.cfgMu.Lock()
	defer m.cfgMu.Unlock()
	return m.rec
}

// SetTelemetry replaces the memory's telemetry recorder, re-attaching
// every materialized DBC to it. Passing nil installs a fresh
// metrics-only recorder (the memory always records: MoveStats derives
// from the recorder's counters), which also resets the counters.
//
// Deprecated: new code should attach the recorder at construction with
// the façade's WithTelemetry option; the setter remains for call sites
// that attach or swap telemetry after construction.
func (m *Memory) SetTelemetry(rec *telemetry.Recorder) {
	if rec == nil {
		rec = telemetry.NewRecorder(m.cfg)
	}
	m.cfgMu.Lock()
	m.rec = rec
	m.cfgMu.Unlock()
	for _, sh := range m.snapshotShards() {
		sh.mu.Lock()
		sh.setRecorder(rec)
		sh.mu.Unlock()
	}
}

// SetWorkers sets the ExecuteBatch worker-pool size; n ≤ 0 restores the
// default (GOMAXPROCS).
func (m *Memory) SetWorkers(n int) {
	m.cfgMu.Lock()
	defer m.cfgMu.Unlock()
	if n < 0 {
		n = 0
	}
	m.workers = n
}

// Workers returns the configured ExecuteBatch pool size (0 = default).
func (m *Memory) Workers() int {
	m.cfgMu.Lock()
	defer m.cfgMu.Unlock()
	return m.workers
}

// srcFor names a DBC's telemetry source after its coordinates, e.g.
// "b0.s1.t2.d3" — one Chrome-trace lane per touched DBC.
func srcFor(base isa.Addr) telemetry.Source {
	return telemetry.Source(isa.DBCSource(base))
}

// dbcBase strips the row from an address, keying the containing DBC.
func dbcBase(a isa.Addr) isa.Addr {
	a.Row = 0
	return a
}

// checkAddr validates an address against the geometry.
func (m *Memory) checkAddr(a isa.Addr) error {
	if !a.Valid(m.cfg.Geometry) {
		return fmt.Errorf("memory: address %+v outside geometry", a)
	}
	return nil
}

// shardFor materializes (or returns) the shard holding the address. For
// PIM-enabled locations the shard's DBC belongs to a PIM unit.
func (m *Memory) shardFor(a isa.Addr) (*shard, error) {
	if err := m.checkAddr(a); err != nil {
		return nil, err
	}
	base := dbcBase(a)
	if err := m.checkQuarantine(base); err != nil {
		return nil, err
	}
	m.tableMu.RLock()
	sh, ok := m.shards[base]
	m.tableMu.RUnlock()
	if ok {
		return sh, nil
	}

	m.tableMu.Lock()
	defer m.tableMu.Unlock()
	if sh, ok := m.shards[base]; ok {
		return sh, nil
	}
	sh = &shard{base: base, tr: &trace.Tracer{}}
	m.cfgMu.Lock()
	rec, pol := m.rec, m.pol
	m.cfgMu.Unlock()
	inj := m.injectorFor(base)
	if a.IsPIMEnabled(m.cfg.Geometry) {
		u, err := pim.NewUnit(m.cfg)
		if err != nil {
			return nil, err
		}
		// Route the unit's device accounting into the shard tracer.
		u.D.SetTracer(sh.tr)
		u.D.SetFaultInjector(inj)
		u.SetTelemetry(rec, srcFor(base))
		sh.u, sh.d = u, u.D
		if pol.Enabled() {
			ex, err := resilient.NewExecutor(u, pol)
			if err != nil {
				return nil, err
			}
			sh.ex = ex
		}
	} else {
		d, err := dbc.New(m.cfg.Geometry.TrackWidth, m.cfg.Geometry.RowsPerDBC, m.cfg.TRD)
		if err != nil {
			return nil, err
		}
		d.SetTracer(sh.tr)
		d.SetFaultInjector(inj)
		d.SetTelemetry(rec, srcFor(base))
		sh.d = d
	}
	m.shards[base] = sh
	return sh, nil
}

// lockOrdered materializes and locks the shards of the given DBC bases
// in global address order (the deadlock-freedom invariant: every
// multi-shard operation acquires in the same order). bases must be
// duplicate-free; sortBases provides that. The returned unlock releases
// in reverse order.
func (m *Memory) lockOrdered(bases []isa.Addr) ([]*shard, func(), error) {
	shards, err := m.lockInto(make([]*shard, 0, len(bases)), bases)
	if err != nil {
		return nil, nil, err
	}
	return shards, func() { unlockShards(shards) }, nil
}

// lockInto is lockOrdered on a caller-owned buffer: shards are appended
// to dst (reusing its capacity) and locked in order, with no unlock
// closure allocated — the batch fast path's per-group locking primitive.
// On error nothing is locked. Callers release with unlockShards.
func (m *Memory) lockInto(dst []*shard, bases []isa.Addr) ([]*shard, error) {
	for _, b := range bases {
		sh, err := m.shardFor(b)
		if err != nil {
			return dst[:0], err
		}
		dst = append(dst, sh)
	}
	for _, sh := range dst {
		//coruscantvet:ignore lockorder -- the sanctioned helper itself: bases are sorted by Linear, so the pairwise order is global
		sh.mu.Lock()
	}
	return dst, nil
}

// unlockShards releases a lockInto set in reverse acquisition order.
func unlockShards(shards []*shard) {
	for i := len(shards) - 1; i >= 0; i-- {
		shards[i].mu.Unlock()
	}
}

// sortBases deduplicates and orders DBC base addresses by their global
// linear index — the lock acquisition order.
func (m *Memory) sortBases(bases []isa.Addr) []isa.Addr {
	g := m.cfg.Geometry
	// Insertion sort: lock sets are tiny (≤ operands+2), and sort.Slice
	// costs an allocation per call — visible on the batch planning path.
	for i := 1; i < len(bases); i++ {
		for j := i; j > 0 && bases[j].Linear(g) < bases[j-1].Linear(g); j-- {
			bases[j], bases[j-1] = bases[j-1], bases[j]
		}
	}
	out := bases[:0]
	for i, b := range bases {
		if i == 0 || b != bases[i-1] {
			out = append(out, b)
		}
	}
	return out
}

// writeRowOn stores a row through the shard's nearest access port;
// sh.mu held.
func (sh *shard) writeRow(a isa.Addr, row dbc.Row) error {
	d := sh.d
	if row.N != d.Width() {
		return fmt.Errorf("memory: row width %d, want %d", row.N, d.Width())
	}
	side, _, err := d.AlignNearest(a.Row)
	if err != nil {
		return err
	}
	d.WritePort(side, row)
	sh.recorder().Move(d.Source(), telemetry.OpRowWrite, row.N)
	return nil
}

// readRow loads the row at the address; sh.mu held.
func (sh *shard) readRow(a isa.Addr) (dbc.Row, error) {
	d := sh.d
	side, _, err := d.AlignNearest(a.Row)
	if err != nil {
		return dbc.Row{}, err
	}
	sh.recorder().Move(d.Source(), telemetry.OpRowRead, d.Width())
	return d.ReadPort(side), nil
}

// WriteRow stores a row at the address through its DBC's nearest access
// port (shift-align plus port write, all traced).
func (m *Memory) WriteRow(a isa.Addr, row dbc.Row) error {
	sh, err := m.shardFor(a)
	if err != nil {
		return err
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.writeRow(a, row)
}

// ReadRow loads the row at the address.
func (m *Memory) ReadRow(a isa.Addr) (dbc.Row, error) {
	sh, err := m.shardFor(a)
	if err != nil {
		return dbc.Row{}, err
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.readRow(a)
}

// CopyRow moves a row between two locations over the shared row buffer
// (§II-B / [35]): an activate-read at the source and an activate-write
// at the destination, without crossing the memory bus. The two shard
// locks are taken in address order.
func (m *Memory) CopyRow(src, dst isa.Addr) error {
	if err := m.checkAddr(src); err != nil {
		return err
	}
	if err := m.checkAddr(dst); err != nil {
		return err
	}
	bases := m.sortBases([]isa.Addr{dbcBase(src), dbcBase(dst)})
	shards, unlock, err := m.lockOrdered(bases)
	if err != nil {
		return err
	}
	defer unlock()
	_, err = copyLocked(shards, src, dst)
	return err
}

// copyLocked is CopyRow's body with the shard locks already held:
// activate-read at src, activate-write at dst, and the row-buffer move
// instant — the same event stream in the same order. shards must hold
// the lock set covering both addresses.
func copyLocked(shards []*shard, src, dst isa.Addr) (dbc.Row, error) {
	row, err := shardByBase(shards, dbcBase(src)).readRow(src)
	if err != nil {
		return dbc.Row{}, err
	}
	dstSh := shardByBase(shards, dbcBase(dst))
	if err := dstSh.writeRow(dst, row); err != nil {
		return dbc.Row{}, err
	}
	dstSh.recorder().Move(srcFor(dbcBase(dst)), telemetry.OpRowCopy, row.N)
	return row, nil
}

// shardByBase resolves a DBC base within a locked shard set.
func shardByBase(shards []*shard, b isa.Addr) *shard {
	for _, sh := range shards {
		if sh.base == b {
			return sh
		}
	}
	return nil
}

// SetFaultInjector attaches fault injection to every future cluster
// materialization and all already-materialized clusters. With an
// injector attached, ExecuteBatch runs serially: the injector's random
// stream is consumed in operation order, so parallel interleaving would
// destroy the reproducibility fixed-seed experiments rely on.
//
// Deprecated: new code should attach the injector at construction with
// the façade's WithFaults option (or use SetFaultProfile for per-DBC
// injection that keeps batches parallel); the setter remains for call
// sites that attach faults after construction.
func (m *Memory) SetFaultInjector(f *device.FaultInjector) {
	m.cfgMu.Lock()
	m.inj = f
	m.prof = nil
	m.cfgMu.Unlock()
	for _, sh := range m.snapshotShards() {
		sh.mu.Lock()
		sh.d.SetFaultInjector(f)
		sh.mu.Unlock()
	}
}

// FaultProfile describes statistically independent per-DBC fault
// injection: every cluster gets its own injector, seeded from Seed and
// the cluster's linear address, so its fault stream depends only on the
// sequence of operations on that cluster — not on how operations on
// other clusters interleave. This is what lets ExecuteBatch keep its
// full bank parallelism under fault injection (unlike the single
// order-dependent stream of SetFaultInjector, which forces the serial
// path) while staying exactly reproducible for a fixed seed.
type FaultProfile struct {
	TRProb    float64 // per-sense probability of a ±1-level TR fault (§V-F)
	ShiftProb float64 // per-step probability of an over-/under-shift
	Seed      int64
}

// enabled reports whether the profile injects anything.
func (p FaultProfile) enabled() bool { return p.TRProb > 0 || p.ShiftProb > 0 }

// SetFaultProfile installs (or, with a zero profile, removes) per-DBC
// fault injection on every current and future cluster. It replaces any
// global SetFaultInjector injector.
func (m *Memory) SetFaultProfile(p FaultProfile) {
	m.cfgMu.Lock()
	m.inj = nil
	if p.enabled() {
		m.prof = &p
	} else {
		m.prof = nil
	}
	m.cfgMu.Unlock()
	for _, sh := range m.snapshotShards() {
		// Build the injector before taking the shard lock: injectorFor
		// reads cfg state under cfgMu, and cfg-class mutexes order
		// strictly before shard locks.
		inj := m.injectorFor(sh.base)
		sh.mu.Lock()
		sh.d.SetFaultInjector(inj)
		sh.mu.Unlock()
	}
}

// injectorFor builds the injector a cluster at base should carry under
// the current attachment state: the profile's per-shard injector, the
// global injector, or none.
func (m *Memory) injectorFor(base isa.Addr) *device.FaultInjector {
	m.cfgMu.Lock()
	prof, inj := m.prof, m.inj
	m.cfgMu.Unlock()
	if prof == nil {
		return inj
	}
	return device.NewFaultInjector(prof.TRProb, prof.ShiftProb, prof.Seed^base.Linear(m.cfg.Geometry))
}

// SetRecovery installs a recovery policy (resilient.Policy) on every
// current and future PIM-enabled cluster: cpim executions are verified,
// retried and degraded per the policy, detected faults feed the health
// ledger, and clusters crossing Policy.QuarantineAfter are remapped to
// spares. A zero policy (or VerifyOff) disables recovery.
func (m *Memory) SetRecovery(p resilient.Policy) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if p.Verify == resilient.VerifyNMR && p.NMR > int(m.cfg.TRD) {
		return fmt.Errorf("memory: NMR degree %d exceeds %v window: %w", p.NMR, m.cfg.TRD, params.ErrBadTRD)
	}
	m.cfgMu.Lock()
	m.pol = p
	m.cfgMu.Unlock()
	for _, sh := range m.snapshotShards() {
		sh.mu.Lock()
		if sh.u != nil {
			sh.ex = nil
			if p.Enabled() {
				ex, err := resilient.NewExecutor(sh.u, p)
				if err != nil {
					sh.mu.Unlock()
					return err
				}
				sh.ex = ex
			}
		}
		sh.mu.Unlock()
	}
	return nil
}

// Recovery returns the installed recovery policy (zero when disabled).
func (m *Memory) Recovery() resilient.Policy {
	m.cfgMu.Lock()
	defer m.cfgMu.Unlock()
	return m.pol
}

// execPlan is a fully validated batch request: every address checked,
// the bank-staging rule enforced, and the lock set precomputed — all
// before any lock is taken, so an invalid request fails without
// touching (or blocking) any shard. Planning reads only the immutable
// geometry (quarantine is checked at lock time, in shardFor), so plans
// stay valid across executions and can be memoized (see PlanBatch).
type execPlan struct {
	kind     RequestKind
	in       isa.Instruction
	operands []isa.Addr
	dst      isa.Addr
	src      isa.Addr   // KindCopy: source row
	row      dbc.Row    // KindWrite: payload
	bases    []isa.Addr // sorted, deduplicated lock set
}

// planRequest validates one batch request of any kind and returns its
// plan (planExecute generalized to copy and write requests). buf, when
// non-nil, is an empty slice whose backing array the returned plan's
// lock set reuses — the batch planner passes each pooled plan's
// previous bases array so steady-state planning allocates nothing.
func (m *Memory) planRequest(r Request, buf []isa.Addr) (execPlan, error) {
	switch r.Kind {
	case KindExec:
		return m.planExecute(r.In, r.Operands, r.Dst, buf)
	case KindCopy:
		if err := m.checkAddr(r.Src); err != nil {
			return execPlan{}, err
		}
		if err := m.checkAddr(r.Dst); err != nil {
			return execPlan{}, err
		}
		return execPlan{
			kind: KindCopy, src: r.Src, dst: r.Dst,
			bases: m.sortBases(append(buf, dbcBase(r.Src), dbcBase(r.Dst))),
		}, nil
	case KindWrite:
		if err := m.checkAddr(r.Dst); err != nil {
			return execPlan{}, err
		}
		if r.Row.N != m.cfg.Geometry.TrackWidth {
			return execPlan{}, fmt.Errorf("memory: row width %d, want %d", r.Row.N, m.cfg.Geometry.TrackWidth)
		}
		return execPlan{kind: KindWrite, dst: r.Dst, row: r.Row, bases: append(buf, dbcBase(r.Dst))}, nil
	case KindRead:
		if err := m.checkAddr(r.Src); err != nil {
			return execPlan{}, err
		}
		return execPlan{kind: KindRead, src: r.Src, bases: append(buf, dbcBase(r.Src))}, nil
	default:
		return execPlan{}, fmt.Errorf("memory: unknown request kind %d", r.Kind)
	}
}

// runRequest executes a validated plan of any kind over its locked
// shards, mirroring the serial primitives exactly: KindExec is runPlan,
// KindCopy is CopyRow's locked body, KindWrite is WriteRow's.
func (m *Memory) runRequest(p execPlan, shards []*shard) (dbc.Row, error) {
	switch p.kind {
	case KindCopy:
		return copyLocked(shards, p.src, p.dst)
	case KindWrite:
		return p.row, shardByBase(shards, dbcBase(p.dst)).writeRow(p.dst, p.row)
	case KindRead:
		return shardByBase(shards, dbcBase(p.src)).readRow(p.src)
	default:
		return m.runPlan(p, shards)
	}
}

// planExecute validates the request upfront and returns its plan. The
// plan's lock set is built on buf's backing array when one is passed.
func (m *Memory) planExecute(in isa.Instruction, operands []isa.Addr, dst isa.Addr, buf []isa.Addr) (execPlan, error) {
	if err := in.Validate(m.cfg.Geometry, m.cfg.TRD); err != nil {
		return execPlan{}, err
	}
	if !in.Src.IsPIMEnabled(m.cfg.Geometry) {
		return execPlan{}, fmt.Errorf("memory: %+v is not a PIM-enabled DBC", in.Src)
	}
	if len(operands) != in.Operands {
		return execPlan{}, fmt.Errorf("memory: %v expects %d operands, got %d", in.Op, in.Operands, len(operands))
	}
	switch in.Op {
	case isa.OpMult:
		if len(operands) != 2 {
			return execPlan{}, fmt.Errorf("memory: mult expects 2 operands, got %d", len(operands))
		}
	case isa.OpAdd, isa.OpMax, isa.OpRelu, isa.OpVote,
		isa.OpDiv, isa.OpMod, isa.OpShl, isa.OpShr, isa.OpFma,
		isa.OpAnd, isa.OpOr, isa.OpNand, isa.OpNor, isa.OpXor, isa.OpXnor, isa.OpNot:
	default:
		return execPlan{}, fmt.Errorf("memory: opcode %v is not a PIM operation", in.Op)
	}
	if err := m.checkAddr(dst); err != nil {
		return execPlan{}, err
	}
	if buf == nil {
		// One right-sized allocation for the one-shot Execute path;
		// batch planning passes a pooled buffer instead.
		buf = make([]isa.Addr, 0, len(operands)+2)
	}
	bases := append(buf, dbcBase(in.Src))
	for i, a := range operands {
		if err := m.checkAddr(a); err != nil {
			return execPlan{}, fmt.Errorf("memory: operand %d: %w", i, err)
		}
		if a.Bank != in.Src.Bank {
			return execPlan{}, fmt.Errorf("memory: operand %d at %+v, executing DBC in bank %d: %w",
				i, a, in.Src.Bank, ErrCrossDBC)
		}
		bases = append(bases, dbcBase(a))
	}
	if dst.Bank != in.Src.Bank {
		return execPlan{}, fmt.Errorf("memory: destination %+v, executing DBC in bank %d: %w",
			dst, in.Src.Bank, ErrCrossDBC)
	}
	bases = append(bases, dbcBase(dst))
	return execPlan{in: in, operands: operands, dst: dst, bases: m.sortBases(bases)}, nil
}

// runPlan executes a validated plan over its locked shards, in
// program order: stage operands, run the PIM op (through the recovery
// executor when one is installed), write the result. shards holds the
// plan's lock set (all locks held by the caller).
func (m *Memory) runPlan(p execPlan, shards []*shard) (dbc.Row, error) {
	execSh := shardByBase(shards, dbcBase(p.in.Src))
	u := execSh.u
	defer execSh.recorder().Span(srcFor(execSh.base), "exec-"+p.in.Op.String())()
	rows := make([]dbc.Row, len(p.operands))
	for i, a := range p.operands {
		row, err := shardByBase(shards, dbcBase(a)).readRow(a)
		if err != nil {
			return dbc.Row{}, fmt.Errorf("memory: operand %d: %w", i, err)
		}
		if dbcBase(a) != dbcBase(p.in.Src) {
			// Staged over the row buffer into the executing DBC.
			execSh.recorder().Move(srcFor(execSh.base), telemetry.OpRowCopy, row.N)
		}
		rows[i] = row
	}

	var result dbc.Row
	var err error
	if ex := execSh.ex; ex != nil {
		// Recovered path: the executor re-runs the op per its policy,
		// prices retries into the shard tracer, and reports detected
		// faults to the health ledger (quarantines are processed by the
		// caller once all locks are released).
		var out resilient.Outcome
		result, out, err = ex.Do(p.in.Op.String(), func() (dbc.Row, error) {
			return dispatchOp(u, p.in, rows)
		})
		if out.Detected > 0 {
			m.noteFaults(execSh.base, out.Detected, ex.Policy.QuarantineAfter)
		}
	} else {
		result, err = dispatchOp(u, p.in, rows)
	}
	if err != nil {
		return dbc.Row{}, err
	}
	if err := shardByBase(shards, dbcBase(p.dst)).writeRow(p.dst, result); err != nil {
		return dbc.Row{}, err
	}
	return result, nil
}

// dispatchOp runs one cpim opcode on the unit. It is re-executable:
// every operation rewrites the DBC window from the staged operand rows,
// so the recovery executor can replay it verbatim.
func dispatchOp(u *pim.Unit, in isa.Instruction, rows []dbc.Row) (dbc.Row, error) {
	switch in.Op {
	case isa.OpAdd:
		return u.AddMulti(rows, in.Blocksize)
	case isa.OpMult:
		return u.Multiply(rows[0], rows[1], in.Blocksize/2)
	case isa.OpMax:
		return u.MaxTR(rows, in.Blocksize)
	case isa.OpRelu:
		return u.ReLU(rows[0], in.Blocksize)
	case isa.OpVote:
		return u.Vote(rows)
	case isa.OpDiv:
		q, _, err := u.DivMod(rows[0], rows[1], in.Blocksize)
		return q, err
	case isa.OpMod:
		_, r, err := u.DivMod(rows[0], rows[1], in.Blocksize)
		return r, err
	case isa.OpShl:
		return u.LogicalShift(rows[0], in.Imm, in.Blocksize, true)
	case isa.OpShr:
		return u.LogicalShift(rows[0], in.Imm, in.Blocksize, false)
	case isa.OpFma:
		return u.FMA(rows[0], rows[1], rows[2], in.Blocksize/2)
	default:
		op, _ := bulkOp(in.Op)
		return u.BulkBitwise(op, rows)
	}
}

// Execute runs a cpim instruction whose operands live at memory
// addresses: the controller stages each operand into the PIM-enabled
// DBC named by in.Src over the bank's shared row buffer (§III-A: "the
// shared row buffer ... can be used to move data from non-PIM DBCs to
// PIM-enabled DBCs"), executes the operation there, and writes the
// result to dst.
//
// The request is validated in full — instruction encoding, address
// geometry, and the bank-staging rule — before any shard lock is taken;
// operands or destinations outside in.Src's bank return ErrCrossDBC
// (stage them with CopyRow first). The involved shard locks are then
// acquired in address order and held for the whole operation.
func (m *Memory) Execute(in isa.Instruction, operands []isa.Addr, dst isa.Addr) (dbc.Row, error) {
	p, err := m.planExecute(in, operands, dst, nil)
	if err != nil {
		return dbc.Row{}, err
	}
	// Quarantines scheduled by this execution are processed after the
	// shard locks are released (defers run LIFO).
	defer m.processQuarantines()
	shards, unlock, err := m.lockOrdered(p.bases)
	if err != nil {
		return dbc.Row{}, err
	}
	defer unlock()
	return m.runPlan(p, shards)
}

// bulkOp maps a bulk opcode to the PIM logic selector.
func bulkOp(o isa.OpCode) (dbc.Op, bool) {
	switch o {
	case isa.OpAnd:
		return dbc.OpAND, true
	case isa.OpOr:
		return dbc.OpOR, true
	case isa.OpNand:
		return dbc.OpNAND, true
	case isa.OpNor:
		return dbc.OpNOR, true
	case isa.OpXor:
		return dbc.OpXOR, true
	case isa.OpXnor:
		return dbc.OpXNOR, true
	case isa.OpNot:
		return dbc.OpNOT, true
	}
	return 0, false
}

// MaterializedDBCs reports how many clusters have been touched (for
// tests and capacity sanity checks).
func (m *Memory) MaterializedDBCs() int {
	m.tableMu.RLock()
	defer m.tableMu.RUnlock()
	return len(m.shards)
}
