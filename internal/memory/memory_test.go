package memory

import (
	"math/rand"
	"testing"

	"repro/internal/dbc"
	"repro/internal/device"
	"repro/internal/isa"
	"repro/internal/params"
	"repro/internal/pim"
)

func testMemory(t *testing.T) *Memory {
	t.Helper()
	cfg := params.DefaultConfig()
	cfg.Geometry.TrackWidth = 32
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func randRow(n int, rng *rand.Rand) dbc.Row {
	r := dbc.NewRow(n)
	for i := 0; i < n; i++ {
		r.Set(i, uint8(rng.Intn(2)))
	}
	return r
}

func TestWriteReadRoundTrip(t *testing.T) {
	m := testMemory(t)
	rng := rand.New(rand.NewSource(70))
	addrs := []isa.Addr{
		{Bank: 0, Subarray: 0, Tile: 3, DBC: 2, Row: 0},
		{Bank: 31, Subarray: 63, Tile: 15, DBC: 15, Row: 31},
		{Bank: 5, Subarray: 9, Tile: 0, DBC: 15, Row: 17}, // PIM-enabled
		{Bank: 5, Subarray: 9, Tile: 0, DBC: 15, Row: 3},  // same DBC
	}
	want := make(map[isa.Addr]dbc.Row)
	for _, a := range addrs {
		row := randRow(32, rng)
		want[a] = row
		if err := m.WriteRow(a, row); err != nil {
			t.Fatalf("WriteRow(%+v): %v", a, err)
		}
	}
	for _, a := range addrs {
		got, err := m.ReadRow(a)
		if err != nil {
			t.Fatalf("ReadRow(%+v): %v", a, err)
		}
		if !got.Equal(want[a]) {
			t.Fatalf("addr %+v = %v, want %v", a, got, want[a])
		}
	}
	if m.MaterializedDBCs() != 3 {
		t.Errorf("materialized %d DBCs, want 3 (lazy allocation)", m.MaterializedDBCs())
	}
	if m.Moves().RowWrites != 4 || m.Moves().RowReads != 4 {
		t.Errorf("moves = %+v", m.Moves())
	}
}

func TestAddressableWithoutAllocation(t *testing.T) {
	// The Table II geometry holds half a million DBCs; touching two far
	// corners must not materialize anything else.
	m := testMemory(t)
	if err := m.WriteRow(isa.Addr{Row: 0}, dbc.NewRow(32)); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteRow(isa.Addr{Bank: 31, Subarray: 63, Tile: 15, DBC: 14, Row: 31}, dbc.NewRow(32)); err != nil {
		t.Fatal(err)
	}
	if m.MaterializedDBCs() != 2 {
		t.Errorf("materialized %d DBCs, want 2", m.MaterializedDBCs())
	}
}

func TestCopyRowAcrossDBCs(t *testing.T) {
	m := testMemory(t)
	rng := rand.New(rand.NewSource(71))
	src := isa.Addr{Bank: 1, Subarray: 2, Tile: 3, DBC: 4, Row: 5}
	dst := isa.Addr{Bank: 9, Subarray: 8, Tile: 7, DBC: 6, Row: 30}
	row := randRow(32, rng)
	if err := m.WriteRow(src, row); err != nil {
		t.Fatal(err)
	}
	if err := m.CopyRow(src, dst); err != nil {
		t.Fatal(err)
	}
	got, err := m.ReadRow(dst)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(row) {
		t.Fatalf("copied row = %v, want %v", got, row)
	}
	if m.Moves().RowCopies != 1 {
		t.Errorf("copies = %d, want 1", m.Moves().RowCopies)
	}
}

func TestExecuteStagesAndStores(t *testing.T) {
	// The full §III-A flow: operands in ordinary DBCs, staged into the
	// PIM DBC over the row buffer, added there, result stored elsewhere.
	m := testMemory(t)
	pimAddr := isa.Addr{Bank: 0, Subarray: 0, Tile: 0, DBC: 15, Row: 0}
	a := isa.Addr{Bank: 0, Subarray: 0, Tile: 2, DBC: 1, Row: 4}
	b := isa.Addr{Bank: 0, Subarray: 0, Tile: 2, DBC: 1, Row: 9}
	dst := isa.Addr{Bank: 0, Subarray: 0, Tile: 5, DBC: 0, Row: 1}

	av := []uint64{250, 17, 99, 3}
	bv := []uint64{10, 29, 1, 250}
	ra := pim.MustPackLanes(av, 8, 32)
	rb := pim.MustPackLanes(bv, 8, 32)
	if err := m.WriteRow(a, ra); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteRow(b, rb); err != nil {
		t.Fatal(err)
	}

	in := isa.Instruction{Op: isa.OpAdd, Src: pimAddr, Blocksize: 8, Operands: 2}
	res, err := m.Execute(in, []isa.Addr{a, b}, dst)
	if err != nil {
		t.Fatal(err)
	}
	got := pim.UnpackLanes(res, 8)
	for l := range av {
		want := (av[l] + bv[l]) & 0xff
		if got[l] != want {
			t.Fatalf("lane %d = %d, want %d", l, got[l], want)
		}
	}
	stored, err := m.ReadRow(dst)
	if err != nil {
		t.Fatal(err)
	}
	if !stored.Equal(res) {
		t.Fatal("stored result differs from returned result")
	}
	if m.Moves().RowCopies < 2 {
		t.Errorf("staging should count row-buffer copies, got %+v", m.Moves())
	}
}

func TestExecuteBulkAndMult(t *testing.T) {
	m := testMemory(t)
	pimAddr := isa.Addr{Tile: 0, DBC: 15}
	a := isa.Addr{Tile: 1, DBC: 0, Row: 0}
	b := isa.Addr{Tile: 1, DBC: 0, Row: 1}
	rng := rand.New(rand.NewSource(72))
	ra, rb := randRow(32, rng), randRow(32, rng)
	if err := m.WriteRow(a, ra); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteRow(b, rb); err != nil {
		t.Fatal(err)
	}
	res, err := m.Execute(isa.Instruction{Op: isa.OpXor, Src: pimAddr, Blocksize: 8, Operands: 2},
		[]isa.Addr{a, b}, isa.Addr{Tile: 2, Row: 0})
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < res.Len(); w++ {
		if res.Get(w) != ra.Get(w)^rb.Get(w) {
			t.Fatalf("XOR wire %d", w)
		}
	}

	ma := pim.MustPackLanes([]uint64{210}, 16, 32)
	mb := pim.MustPackLanes([]uint64{123}, 16, 32)
	if err := m.WriteRow(a, ma); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteRow(b, mb); err != nil {
		t.Fatal(err)
	}
	res, err = m.Execute(isa.Instruction{Op: isa.OpMult, Src: pimAddr, Blocksize: 16, Operands: 2},
		[]isa.Addr{a, b}, isa.Addr{Tile: 2, Row: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := pim.UnpackLanes(res, 16)[0]; got != 210*123 {
		t.Fatalf("mult = %d, want %d", got, 210*123)
	}
}

func TestExecuteErrors(t *testing.T) {
	m := testMemory(t)
	nonPIM := isa.Addr{Tile: 5, DBC: 0}
	if _, err := m.Execute(isa.Instruction{Op: isa.OpAdd, Src: nonPIM, Blocksize: 8, Operands: 2},
		[]isa.Addr{{}, {}}, isa.Addr{}); err == nil {
		t.Error("execution on a non-PIM DBC accepted")
	}
	pimAddr := isa.Addr{Tile: 0, DBC: 15}
	if _, err := m.Execute(isa.Instruction{Op: isa.OpAdd, Src: pimAddr, Blocksize: 8, Operands: 2},
		[]isa.Addr{{}}, isa.Addr{}); err == nil {
		t.Error("operand-count mismatch accepted")
	}
	if _, err := m.Execute(isa.Instruction{Op: isa.OpRead, Src: pimAddr},
		nil, isa.Addr{}); err == nil {
		t.Error("bypass opcode accepted by Execute")
	}
	if err := m.WriteRow(isa.Addr{Bank: 99}, dbc.NewRow(32)); err == nil {
		t.Error("out-of-range address accepted")
	}
	if err := m.WriteRow(isa.Addr{}, dbc.NewRow(5)); err == nil {
		t.Error("wrong row width accepted")
	}
}

func TestMemoryFaultInjection(t *testing.T) {
	m := testMemory(t)
	pimAddr := isa.Addr{Tile: 0, DBC: 15}
	a := isa.Addr{Tile: 1, Row: 0}
	zero := dbc.NewRow(32)
	if err := m.WriteRow(a, zero); err != nil {
		t.Fatal(err)
	}
	m.SetFaultInjector(device.NewFaultInjector(1.0, 0, 9))
	res, err := m.Execute(isa.Instruction{Op: isa.OpXor, Src: pimAddr, Blocksize: 8, Operands: 2},
		[]isa.Addr{a, a}, isa.Addr{Tile: 2, Row: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.OnesCount() == 0 {
		t.Error("probability-1 faults produced a clean result")
	}
}

func TestStatsAccumulate(t *testing.T) {
	m := testMemory(t)
	if err := m.WriteRow(isa.Addr{Row: 20}, dbc.NewRow(32)); err != nil {
		t.Fatal(err)
	}
	s := m.Stats()
	if s.Cycles() == 0 {
		t.Error("no device cycles traced for an aligned write")
	}
	if s.WriteSteps != 1 {
		t.Errorf("write steps = %d, want 1", s.WriteSteps)
	}
}
