package memory

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/dbc"
	"repro/internal/isa"
	"repro/internal/params"
	"repro/internal/pim"
	"repro/internal/resilient"
)

// faultyMemory builds a small-track memory with per-DBC fault injection
// and the given recovery policy installed.
func faultyMemory(t *testing.T, prof FaultProfile, pol resilient.Policy) *Memory {
	t.Helper()
	cfg := params.DefaultConfig()
	cfg.Geometry.TrackWidth = 32
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.SetFaultProfile(prof)
	if err := m.SetRecovery(pol); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSetRecoveryValidation(t *testing.T) {
	m := testMemory(t)
	if err := m.SetRecovery(resilient.Policy{Verify: resilient.VerifyNMR, NMR: 4}); err == nil {
		t.Error("NMR 4 should be rejected")
	}
	cfg := params.DefaultConfig()
	cfg.TRD = params.TRD3
	cfg.Geometry.TrackWidth = 32
	m3, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	err = m3.SetRecovery(resilient.Policy{Verify: resilient.VerifyNMR, NMR: 5})
	if !errors.Is(err, params.ErrBadTRD) {
		t.Errorf("NMR 5 on TRD3 memory should wrap ErrBadTRD, got %v", err)
	}
	// Valid install, then disable.
	if err := m.SetRecovery(resilient.DefaultPolicy()); err != nil {
		t.Fatal(err)
	}
	if got := m.Recovery(); !got.Enabled() || got.NMR != 3 {
		t.Errorf("Recovery() = %+v after install", got)
	}
	if err := m.SetRecovery(resilient.Policy{}); err != nil {
		t.Fatal(err)
	}
	if m.Recovery().Enabled() {
		t.Error("zero policy should disable recovery")
	}
}

// execAdd stages two operand rows and executes one cpim add on the
// bank's PIM DBC, returning the delivered lane sums.
func execAdd(t *testing.T, m *Memory, bank int, vals [2]uint64) []uint64 {
	t.Helper()
	g := m.Config().Geometry
	pimAddr := isa.Addr{Bank: bank, Tile: 0, DBC: g.DBCsPerTile - g.PIMDBCsPerTile}
	ops := []isa.Addr{
		{Bank: bank, Subarray: 1, Tile: 1, Row: 0},
		{Bank: bank, Subarray: 1, Tile: 1, Row: 1},
	}
	w := m.Config().Geometry.TrackWidth
	for i, a := range ops {
		if err := m.WriteRow(a, pim.MustPackLanes([]uint64{vals[i]}, 8, w)); err != nil {
			t.Fatal(err)
		}
	}
	dst := isa.Addr{Bank: bank, Subarray: 1, Tile: 2}
	res, err := m.Execute(isa.Instruction{Op: isa.OpAdd, Src: pimAddr, Blocksize: 8, Operands: 2}, ops, dst)
	if err != nil {
		t.Fatal(err)
	}
	return pim.UnpackLanes(res, 8)
}

// TestRecoveredExecutionDetectsFaults: under aggressive TR fault
// injection the recovery layer must observe detections in the health
// ledger while still delivering mostly correct sums.
func TestRecoveredExecutionDetectsFaults(t *testing.T) {
	m := faultyMemory(t, FaultProfile{TRProb: 0.02, Seed: 11}, resilient.DefaultPolicy())
	wrong := 0
	const n = 60
	for i := 0; i < n; i++ {
		a, b := uint64(i%40), uint64((3*i)%40)
		sums := execAdd(t, m, i%4, [2]uint64{a, b})
		if sums[0] != a+b {
			wrong++
		}
	}
	h := m.Health()
	if h.TotalDetected == 0 {
		t.Fatal("no faults detected at TRProb=0.02; detection is not wired")
	}
	if wrong > n/10 {
		t.Errorf("recovered run delivered %d/%d wrong sums", wrong, n)
	}
}

// TestQuarantineRemapsToSpare drives one PIM DBC past its fault
// threshold and checks the full degradation protocol: the logical
// address survives (remapped to a spare), the spare's own address
// leaves the address space, and the ledger records the decision.
func TestQuarantineRemapsToSpare(t *testing.T) {
	pol := resilient.DefaultPolicy()
	pol.QuarantineAfter = 5
	m := faultyMemory(t, FaultProfile{TRProb: 0.05, Seed: 5}, pol)
	g := m.Config().Geometry
	pimAddr := isa.Addr{Bank: 0, Tile: 0, DBC: g.DBCsPerTile - g.PIMDBCsPerTile}

	for i := 0; i < 400 && m.Health().SparesUsed() == 0; i++ {
		execAdd(t, m, 0, [2]uint64{uint64(i % 32), uint64(i % 17)})
	}
	h := m.Health()
	if h.SparesUsed() == 0 {
		t.Fatalf("no quarantine after sustained faults; ledger: %+v", h)
	}
	q := h.Quarantined[0]
	if q.Logical != pimAddr {
		t.Errorf("quarantined %+v, want %+v", q.Logical, pimAddr)
	}
	if !q.Remapped || q.Faults < pol.QuarantineAfter {
		t.Errorf("quarantine record = %+v", q)
	}
	if q.Spare.Bank != 0 || !q.Spare.IsPIMEnabled(g) {
		t.Errorf("spare %+v should be a PIM DBC in the victim's bank", q.Spare)
	}

	// The logical address still executes.
	if sums := execAdd(t, m, 0, [2]uint64{9, 4}); sums[0] != 13 {
		// A post-remap fault can still corrupt a sum; only flag systematic
		// failure (the remapped cluster not executing at all is t.Fatal'd
		// inside execAdd).
		t.Logf("post-remap sum = %d (fault injection still active)", sums[0])
	}

	// The spare's own address is out of the address space now.
	_, err := m.ReadRow(q.Spare)
	if !errors.Is(err, ErrQuarantined) {
		t.Errorf("spare access should be ErrQuarantined, got %v", err)
	}
}

// TestQuarantineSpareExhaustion shrinks the geometry to one PIM DBC per
// bank: quarantine has no spare, the cluster fails, and further access
// reports ErrQuarantined.
func TestQuarantineSpareExhaustion(t *testing.T) {
	cfg := params.DefaultConfig()
	cfg.Geometry.TrackWidth = 32
	cfg.Geometry.SubarraysPerBank = 1
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.SetFaultProfile(FaultProfile{TRProb: 0.05, Seed: 5})
	pol := resilient.DefaultPolicy()
	pol.QuarantineAfter = 3
	if err := m.SetRecovery(pol); err != nil {
		t.Fatal(err)
	}
	g := cfg.Geometry
	pimAddr := isa.Addr{Bank: 0, Tile: 0, DBC: g.DBCsPerTile - g.PIMDBCsPerTile}
	ops := []isa.Addr{{Bank: 0, Tile: 1, Row: 0}, {Bank: 0, Tile: 1, Row: 1}}
	row := pim.MustPackLanes([]uint64{3}, 8, g.TrackWidth)
	for _, a := range ops {
		if err := m.WriteRow(a, row); err != nil {
			t.Fatal(err)
		}
	}
	in := isa.Instruction{Op: isa.OpAdd, Src: pimAddr, Blocksize: 8, Operands: 2}
	dst := isa.Addr{Bank: 0, Tile: 2}
	var lastErr error
	for i := 0; i < 600; i++ {
		if _, lastErr = m.Execute(in, ops, dst); lastErr != nil {
			break
		}
	}
	if !errors.Is(lastErr, ErrQuarantined) {
		t.Fatalf("exhausted bank should fail with ErrQuarantined, got %v", lastErr)
	}
	h := m.Health()
	if len(h.Quarantined) == 0 || h.Quarantined[0].Remapped {
		t.Fatalf("ledger should record a failed (unremapped) quarantine: %+v", h)
	}
}

// TestFaultProfileBatchMatchesSerial is the -race stress point of the
// PR: under per-DBC fault injection with NMR recovery, a parallel
// ExecuteBatch must be bit-identical to the serial execution of the
// same requests — outcomes, stats and health ledger alike.
func TestFaultProfileBatchMatchesSerial(t *testing.T) {
	build := func(workers int) *Memory {
		cfg := params.DefaultConfig()
		cfg.Geometry.TrackWidth = 32
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		m.SetFaultProfile(FaultProfile{TRProb: 5e-3, Seed: 99})
		if err := m.SetRecovery(resilient.DefaultPolicy()); err != nil {
			t.Fatal(err)
		}
		m.SetWorkers(workers)
		return m
	}
	const banks = 8
	makeReqs := func(m *Memory) []Request {
		g := m.Config().Geometry
		rng := rand.New(rand.NewSource(4))
		var reqs []Request
		for i := 0; i < 64; i++ {
			bank := i % banks
			ops := []isa.Addr{
				{Bank: bank, Subarray: 1, Tile: 1, Row: i / banks * 2},
				{Bank: bank, Subarray: 1, Tile: 1, Row: i/banks*2 + 1},
			}
			for _, a := range ops {
				v := uint64(rng.Intn(100))
				if err := m.WriteRow(a, pim.MustPackLanes([]uint64{v}, 8, g.TrackWidth)); err != nil {
					t.Fatal(err)
				}
			}
			reqs = append(reqs, Request{
				In: isa.Instruction{
					Op:        isa.OpAdd,
					Src:       isa.Addr{Bank: bank, Tile: 0, DBC: g.DBCsPerTile - g.PIMDBCsPerTile},
					Blocksize: 8, Operands: 2,
				},
				Operands: ops,
				Dst:      isa.Addr{Bank: bank, Subarray: 1, Tile: 2, Row: i / banks},
			})
		}
		return reqs
	}

	serial := build(1)
	wide := build(8)
	serialRes := serial.ExecuteBatch(makeReqs(serial))
	wideRes := wide.ExecuteBatch(makeReqs(wide))

	for i := range serialRes {
		a, b := serialRes[i], wideRes[i]
		if (a.Err == nil) != (b.Err == nil) {
			t.Fatalf("req %d: err mismatch: %v vs %v", i, a.Err, b.Err)
		}
		if !rowsEqual(a.Row, b.Row) {
			t.Fatalf("req %d: parallel result differs from serial", i)
		}
	}
	if serial.Stats() != wide.Stats() {
		t.Errorf("stats diverge:\n  serial: %+v\n  wide:   %+v", serial.Stats(), wide.Stats())
	}
	hs, hw := serial.Health(), wide.Health()
	if hs.TotalDetected != hw.TotalDetected || len(hs.Quarantined) != len(hw.Quarantined) {
		t.Errorf("health diverges: serial detected=%d q=%d, wide detected=%d q=%d",
			hs.TotalDetected, len(hs.Quarantined), hw.TotalDetected, len(hw.Quarantined))
	}
}

func rowsEqual(a, b dbc.Row) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i := 0; i < a.Len(); i++ {
		if a.Get(i) != b.Get(i) {
			return false
		}
	}
	return true
}

// TestHealthReportSnapshot: Health() must be a copy, not a live view.
func TestHealthReportSnapshot(t *testing.T) {
	m := faultyMemory(t, FaultProfile{TRProb: 0.02, Seed: 11}, resilient.DefaultPolicy())
	for i := 0; i < 40; i++ {
		execAdd(t, m, 0, [2]uint64{uint64(i % 20), 1})
	}
	h := m.Health()
	if h.TotalDetected == 0 {
		t.Skip("no detections in this window")
	}
	before := h.TotalDetected
	h.Faults[isa.Addr{}] = 1 << 20
	if got := m.Health().TotalDetected; got != before {
		t.Errorf("mutating a report changed the ledger: %d vs %d", got, before)
	}
}
