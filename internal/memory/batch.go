package memory

import (
	"runtime"
	"sync"

	"repro/internal/dbc"
	"repro/internal/isa"
	"repro/internal/telemetry"
)

// RequestKind selects what a batch Request does. The zero value is
// KindExec, so pre-existing Request literals keep their meaning.
type RequestKind uint8

const (
	// KindExec runs a cpim instruction — the arguments of an Execute call.
	KindExec RequestKind = iota
	// KindCopy moves Src to Dst over the row buffer (CopyRow).
	KindCopy
	// KindWrite stores Row at Dst through the nearest port (WriteRow).
	KindWrite
	// KindRead loads the row at Src (ReadRow); the row comes back in the
	// request's Result. Reads participate in footprint grouping like
	// every other kind, so a read of a row another request of the batch
	// writes observes the program-order value.
	KindRead
)

// Request is one batch operation for ExecuteBatch. Kind selects the
// shape: KindExec uses In/Operands/Dst, KindCopy uses Src/Dst,
// KindWrite uses Row/Dst, and KindRead uses Src. Copies and writes
// participate in the same
// footprint grouping as executions, which is what lets a compiled plan
// hand its staging traffic and compute to one batch and still preserve
// every data dependence (any two requests that touch a common row share
// a DBC, so they land in the same group, in program order).
type Request struct {
	Kind     RequestKind
	In       isa.Instruction
	Operands []isa.Addr
	Dst      isa.Addr
	Src      isa.Addr // KindCopy: source row
	Row      dbc.Row  // KindWrite: payload
}

// Result is the outcome of one batch request. For KindCopy and
// KindWrite, Row is the moved/stored row; for KindRead, the loaded row.
type Result struct {
	Row dbc.Row
	Err error
}

// batchGroup is a connected component of requests whose DBC footprints
// overlap: its requests must run in program order relative to each
// other, while distinct groups touch disjoint shards and run
// concurrently.
type batchGroup struct {
	reqs  []int      // request indices, ascending (program order)
	bases []isa.Addr // union of the requests' lock sets, sorted
}

// batchScratch holds every planning-time buffer of a batch: the plans,
// the grouping union-find, and the groups themselves. ExecuteBatch
// draws one from a pool and returns it, so steady-state batches plan
// without allocating; PlanBatch owns one per plan for memoized reuse.
type batchScratch struct {
	plans    []execPlan
	runnable []bool
	errs     []error // planning error per request (nil when runnable)
	groups   []batchGroup

	reqParent []int      // union-find over request indices
	baseAddr  []isa.Addr // distinct DBC bases seen so far
	baseReq   []int      // first request that claimed baseAddr[i]
	groupIdx  []int      // union-find root -> index into groups

	shards []*shard // serial fast path: per-group lock buffer
}

var scratchPool = sync.Pool{New: func() interface{} { return new(batchScratch) }}

// reset sizes the per-request buffers for n requests, reusing capacity.
func (s *batchScratch) reset(n int) {
	if cap(s.plans) < n {
		s.plans = make([]execPlan, n)
		s.runnable = make([]bool, n)
		s.errs = make([]error, n)
		s.reqParent = make([]int, n)
		s.groupIdx = make([]int, n)
	}
	s.plans = s.plans[:n]
	s.runnable = s.runnable[:n]
	s.errs = s.errs[:n]
	s.reqParent = s.reqParent[:n]
	s.groupIdx = s.groupIdx[:n]
	for i := 0; i < n; i++ {
		// Keep each plan's bases backing array: planBatch hands it back
		// to planRequest, so steady-state planning reuses it.
		s.plans[i] = execPlan{bases: s.plans[i].bases[:0]}
		s.runnable[i] = false
		s.errs[i] = nil
		s.reqParent[i] = i
		s.groupIdx[i] = -1
	}
	s.baseAddr = s.baseAddr[:0]
	s.baseReq = s.baseReq[:0]
	s.groups = s.groups[:0]
}

// ufRoot finds i's union-find root with path halving.
func ufRoot(parent []int, i int) int {
	for parent[i] != i {
		parent[i] = parent[parent[i]]
		i = parent[i]
	}
	return i
}

// planBatch validates every request and partitions the runnable ones
// into connected components by DBC footprint. Groups come out ordered
// by their first request index (the union root is always the lowest
// index of its component), and each group's request list preserves
// program order. All state lands in s.
func (m *Memory) planBatch(reqs []Request, s *batchScratch) {
	s.reset(len(reqs))
	for i, r := range reqs {
		p, err := m.planRequest(r, s.plans[i].bases)
		if err != nil {
			s.errs[i] = err
			continue
		}
		s.plans[i], s.runnable[i] = p, true
	}

	// Union-find over lock-set overlap. Distinct bases are tracked in a
	// flat slice with linear lookup: lock sets are tiny (≤ operands+2),
	// and the scan beats a map both in allocs and in constant factor at
	// batch sizes the compiler emits.
	for i := range s.plans {
		if !s.runnable[i] {
			continue
		}
		for _, b := range s.plans[i].bases {
			j := -1
			for k := range s.baseAddr {
				if s.baseAddr[k] == b {
					j = k
					break
				}
			}
			if j < 0 {
				s.baseAddr = append(s.baseAddr, b)
				s.baseReq = append(s.baseReq, i)
				continue
			}
			ra, rb := ufRoot(s.reqParent, i), ufRoot(s.reqParent, s.baseReq[j])
			if ra != rb {
				if ra > rb {
					ra, rb = rb, ra
				}
				s.reqParent[rb] = ra // lowest request index becomes the root
			}
		}
	}

	for i := range s.plans {
		if !s.runnable[i] {
			continue
		}
		r := ufRoot(s.reqParent, i)
		gi := s.groupIdx[r]
		if gi < 0 {
			gi = len(s.groups)
			s.groupIdx[r] = gi
			if len(s.groups) < cap(s.groups) {
				// Re-extend into pooled capacity, reusing the retired
				// group's inner slices.
				s.groups = s.groups[:gi+1]
				s.groups[gi].reqs = s.groups[gi].reqs[:0]
				s.groups[gi].bases = s.groups[gi].bases[:0]
			} else {
				s.groups = append(s.groups, batchGroup{})
			}
		}
		g := &s.groups[gi]
		g.reqs = append(g.reqs, i)
		g.bases = append(g.bases, s.plans[i].bases...)
	}
	for gi := range s.groups {
		s.groups[gi].bases = m.sortBases(s.groups[gi].bases)
	}
}

// ExecuteBatch runs a batch of requests, exploiting DBC-level
// parallelism: requests are grouped by the DBCs they touch (requests
// with overlapping footprints form one group and keep their program
// order; disjoint groups run concurrently on a worker pool of
// SetWorkers goroutines, default GOMAXPROCS). Results are positional.
//
// Every request is validated upfront exactly as the serial primitives
// validate — invalid requests (including ErrCrossDBC) fail in their
// Result without blocking the rest of the batch, and a request that
// fails at runtime does not stop later requests of its group.
//
// Determinism: the memory state after ExecuteBatch is bit-identical to
// running the requests serially in order — only requests with disjoint
// footprints are reordered, and those commute. Telemetry is merged
// deterministically: each group records into a private capture
// recorder, and after the barrier the captured streams are replayed
// into the memory's recorder in first-request order, so cycle totals,
// energy and metrics equal the serial run's exactly. With workers == 1
// the capture detour is skipped entirely — groups run in first-request
// order directly on the memory's recorder, which is the same order the
// merge would have produced, so the event stream is identical and the
// serial configuration pays no parallel-infrastructure tax.
//
// Both paths bracket the batch in window markers (Recorder.WindowBegin
// / WindowLane / WindowEnd), one lane per group, so Recorder.Makespan
// reports the critical path — the longest group — as the batch's cost,
// while the cycle clock keeps the serial sum.
//
// With a global fault injector attached (SetFaultInjector) the batch
// runs serially in program order with no window markers — that
// injector's random stream is order-dependent, and the schedule really
// is serial — while a per-DBC fault profile (SetFaultProfile) keeps
// full parallelism. Recovery (SetRecovery) runs inside the groups;
// quarantines triggered by the batch are processed after the barrier.
func (m *Memory) ExecuteBatch(reqs []Request) []Result {
	results := make([]Result, len(reqs))
	s := scratchPool.Get().(*batchScratch)
	m.planBatch(reqs, s)
	m.runBatch(s, results)
	scratchPool.Put(s)
	return results
}

// BatchPlan is a validated, grouped batch, ready to run repeatedly
// against the memory that planned it. Planning depends only on the
// immutable geometry — quarantine is re-checked at lock time — so a
// plan never goes stale. A BatchPlan is not safe for concurrent Run
// calls on itself (distinct plans may run concurrently).
type BatchPlan struct {
	mem *Memory
	n   int
	s   batchScratch
}

// PlanBatch validates and groups the requests once; Run executes the
// plan. Compiled kernels that replay a fixed batch shape (isa/compile
// StepBatch) use this to hoist planning out of the execution loop.
// The request slices (Operands, Row payloads) are retained by value.
func (m *Memory) PlanBatch(reqs []Request) *BatchPlan {
	bp := &BatchPlan{mem: m, n: len(reqs)}
	m.planBatch(reqs, &bp.s)
	return bp
}

// Memory returns the memory the plan was built against.
func (bp *BatchPlan) Memory() *Memory { return bp.mem }

// Run executes the planned batch, exactly like ExecuteBatch on the
// original requests. Results are freshly allocated and positional.
func (bp *BatchPlan) Run() []Result {
	results := make([]Result, bp.n)
	bp.mem.runBatch(&bp.s, results)
	return results
}

// runBatch executes a planned batch. Planning errors land in results
// first; the runnable groups then run on one of three paths: serial
// program order (global fault injector), serial group order (one
// worker or one group — the fast path), or the parallel capture/merge
// pool.
func (m *Memory) runBatch(s *batchScratch, results []Result) {
	for i, err := range s.errs {
		if err != nil {
			results[i].Err = err
		}
	}

	m.cfgMu.Lock()
	workers, inj := m.workers, m.inj
	m.cfgMu.Unlock()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if inj != nil {
		// Serialize in program order: the global injector's random stream
		// is order-dependent, and since nothing overlaps in time the
		// schedule has no lanes — makespan degenerates to the cycle sum.
		for i := range s.plans {
			if !s.runnable[i] {
				continue
			}
			shards, err := m.lockInto(s.shards[:0], s.plans[i].bases)
			s.shards = shards[:0]
			if err != nil {
				results[i].Err = err
				continue
			}
			results[i].Row, results[i].Err = m.runRequest(s.plans[i], shards)
			unlockShards(shards)
		}
		m.processQuarantines()
		return
	}

	groups := s.groups
	if workers == 1 || len(groups) == 1 {
		// Serial fast path: groups in first-request order directly on the
		// memory's recorder — the exact order the parallel merge produces,
		// with no capture detour. One window, one lane per group.
		rec := m.Recorder()
		rec.WindowBegin()
		for gi := range groups {
			g := &groups[gi]
			rec.WindowLane()
			shards, err := m.lockInto(s.shards[:0], g.bases)
			s.shards = shards[:0]
			if err != nil {
				for _, ri := range g.reqs {
					results[ri].Err = err
				}
				continue
			}
			for _, ri := range g.reqs {
				results[ri].Row, results[ri].Err = m.runRequest(s.plans[ri], shards)
			}
			unlockShards(shards)
		}
		rec.WindowEnd()
		m.processQuarantines()
		return
	}

	rec := m.Recorder()
	rec.WindowBegin()
	captures := make([]*telemetry.CaptureSink, len(groups))
	var wg sync.WaitGroup
	next := make(chan int)
	worker := func() {
		defer wg.Done()
		for gi := range next {
			captures[gi] = m.runGroup(groups[gi], s.plans, results)
		}
	}
	n := workers
	if n > len(groups) {
		n = len(groups)
	}
	wg.Add(n)
	for i := 0; i < n; i++ {
		go worker()
	}
	for gi := range groups {
		next <- gi
	}
	close(next)
	wg.Wait()

	// Merge: replay each group's capture into the main recorder in
	// first-request order (groups are already ordered by construction),
	// re-stamping cycles and re-pricing energy so totals match a serial
	// run exactly. Each capture opens with its lane marker, so the
	// merged stream is byte-for-byte the serial fast path's. Drained
	// sinks go back to the pool.
	for _, c := range captures {
		if c != nil {
			c.ReplayAll(rec)
			c.Reset()
			capturePool.Put(c)
		}
	}
	rec.WindowEnd()
	m.processQuarantines()
}

// capturePool recycles the per-group capture buffers across batches;
// the event slices inside are the batch path's dominant allocation.
var capturePool = sync.Pool{New: func() interface{} { return telemetry.NewCaptureSink() }}

// runGroup executes one group's requests in program order with the
// group's shards locked throughout and their telemetry diverted into a
// fresh capture recorder. The capture's first event is the group's
// lane marker, so ordered replay rebuilds the window structure on the
// main recorder. Returns the capture for ordered merging.
func (m *Memory) runGroup(g batchGroup, plans []execPlan, results []Result) *telemetry.CaptureSink {
	capture := capturePool.Get().(*telemetry.CaptureSink)
	groupRec := telemetry.NewCaptureRecorder(m.cfg, capture)
	groupRec.WindowLane()
	// Take the cfg-class mutex (inside Recorder) before the shard locks:
	// cfg-class mutexes order strictly before shard mutexes.
	restore := m.Recorder()
	shards, unlock, err := m.lockOrdered(g.bases)
	if err != nil {
		for _, ri := range g.reqs {
			results[ri].Err = err
		}
		// Return the capture anyway: it already holds the lane marker,
		// and replaying it keeps the merged stream identical to the
		// serial fast path, which emits the lane before failing the lock.
		return capture
	}
	defer unlock()
	for _, sh := range shards {
		sh.setRecorder(groupRec)
	}
	defer func() {
		for _, sh := range shards {
			sh.setRecorder(restore)
		}
	}()
	for _, ri := range g.reqs {
		results[ri].Row, results[ri].Err = m.runRequest(plans[ri], shards)
	}
	return capture
}
