package memory

import (
	"runtime"
	"sync"

	"repro/internal/dbc"
	"repro/internal/isa"
	"repro/internal/telemetry"
)

// Request is one cpim execution for ExecuteBatch — the arguments of an
// Execute call.
type Request struct {
	In       isa.Instruction
	Operands []isa.Addr
	Dst      isa.Addr
}

// Result is the outcome of one batch request.
type Result struct {
	Row dbc.Row
	Err error
}

// batchGroup is a connected component of requests whose DBC footprints
// overlap: its requests must run in program order relative to each
// other, while distinct groups touch disjoint shards and run
// concurrently.
type batchGroup struct {
	reqs  []int      // request indices, ascending (program order)
	bases []isa.Addr // union of the requests' lock sets, sorted
}

// ExecuteBatch runs a batch of cpim requests, exploiting DBC-level
// parallelism: requests are grouped by the DBCs they touch (requests
// with overlapping footprints form one group and keep their program
// order; disjoint groups run concurrently on a worker pool of
// SetWorkers goroutines, default GOMAXPROCS). Results are positional.
//
// Every request is validated upfront exactly as Execute validates —
// invalid requests (including ErrCrossDBC) fail in their Result without
// blocking the rest of the batch, and a request that fails at runtime
// does not stop later requests of its group.
//
// Determinism: the memory state after ExecuteBatch is bit-identical to
// running the requests serially in order — only requests with disjoint
// footprints are reordered, and those commute. Telemetry is merged
// deterministically: each group records into a private capture
// recorder, and after the barrier the captured streams are replayed
// into the memory's recorder in first-request order, so cycle totals,
// energy and metrics equal the serial run's exactly. With a global
// fault injector attached (SetFaultInjector) the batch runs serially in
// program order — that injector's random stream is order-dependent —
// while a per-DBC fault profile (SetFaultProfile) keeps full
// parallelism: each cluster's stream depends only on its own operation
// order, which grouping preserves. Recovery (SetRecovery) runs inside
// the groups; quarantines triggered by the batch are processed after
// the barrier.
func (m *Memory) ExecuteBatch(reqs []Request) []Result {
	results := make([]Result, len(reqs))
	plans := make([]execPlan, len(reqs))
	runnable := make([]bool, len(reqs))
	for i, r := range reqs {
		p, err := m.planExecute(r.In, r.Operands, r.Dst)
		if err != nil {
			results[i].Err = err
			continue
		}
		plans[i], runnable[i] = p, true
	}

	m.cfgMu.Lock()
	workers, inj := m.workers, m.inj
	m.cfgMu.Unlock()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if inj != nil {
		workers = 1 // serialize: the fault stream is order-dependent
	}

	groups := m.groupRequests(plans, runnable)
	if workers == 1 || len(groups) == 1 {
		// Serial path: program order on the memory's own recorder; no
		// capture/replay detour needed.
		for i := range reqs {
			if !runnable[i] {
				continue
			}
			shards, unlock, err := m.lockOrdered(plans[i].bases)
			if err != nil {
				results[i].Err = err
				continue
			}
			results[i].Row, results[i].Err = m.runPlan(plans[i], shards)
			unlock()
		}
		m.processQuarantines()
		return results
	}

	captures := make([]*telemetry.CaptureSink, len(groups))
	var wg sync.WaitGroup
	next := make(chan int)
	worker := func() {
		defer wg.Done()
		for gi := range next {
			captures[gi] = m.runGroup(groups[gi], plans, results)
		}
	}
	n := workers
	if n > len(groups) {
		n = len(groups)
	}
	wg.Add(n)
	for i := 0; i < n; i++ {
		go worker()
	}
	for gi := range groups {
		next <- gi
	}
	close(next)
	wg.Wait()

	// Merge: replay each group's capture into the main recorder in
	// first-request order (groups are already ordered by construction),
	// re-stamping cycles and re-pricing energy so totals match a serial
	// run exactly. Drained sinks go back to the pool.
	rec := m.Recorder()
	for _, c := range captures {
		if c != nil {
			c.ReplayAll(rec)
			c.Reset()
			capturePool.Put(c)
		}
	}
	m.processQuarantines()
	return results
}

// capturePool recycles the per-group capture buffers across batches;
// the event slices inside are the batch path's dominant allocation.
var capturePool = sync.Pool{New: func() interface{} { return telemetry.NewCaptureSink() }}

// runGroup executes one group's requests in program order with the
// group's shards locked throughout and their telemetry diverted into a
// fresh capture recorder. Returns the capture for ordered merging.
func (m *Memory) runGroup(g batchGroup, plans []execPlan, results []Result) *telemetry.CaptureSink {
	capture := capturePool.Get().(*telemetry.CaptureSink)
	groupRec := telemetry.NewCaptureRecorder(m.cfg, capture)
	// Take the cfg-class mutex (inside Recorder) before the shard locks:
	// cfg-class mutexes order strictly before shard mutexes.
	restore := m.Recorder()
	shards, unlock, err := m.lockOrdered(g.bases)
	if err != nil {
		for _, ri := range g.reqs {
			results[ri].Err = err
		}
		capturePool.Put(capture)
		return nil
	}
	defer unlock()
	for _, sh := range shards {
		sh.setRecorder(groupRec)
	}
	defer func() {
		for _, sh := range shards {
			sh.setRecorder(restore)
		}
	}()
	for _, ri := range g.reqs {
		results[ri].Row, results[ri].Err = m.runPlan(plans[ri], shards)
	}
	return capture
}

// groupRequests partitions the runnable requests into connected
// components by DBC footprint (union-find over lock-set overlap).
// Groups come out ordered by their first request index, and each
// group's request list preserves program order.
func (m *Memory) groupRequests(plans []execPlan, runnable []bool) []batchGroup {
	parent := make(map[isa.Addr]int) // DBC base → first request that claimed it

	// Union-find over request indices.
	reqParent := make([]int, len(plans))
	for i := range reqParent {
		reqParent[i] = i
	}
	var root func(int) int
	root = func(i int) int {
		if reqParent[i] != i {
			reqParent[i] = root(reqParent[i])
		}
		return reqParent[i]
	}
	union := func(a, b int) {
		ra, rb := root(a), root(b)
		if ra != rb {
			if ra > rb {
				ra, rb = rb, ra
			}
			reqParent[rb] = ra // lowest request index becomes the root
		}
	}
	for i, p := range plans {
		if !runnable[i] {
			continue
		}
		for _, b := range p.bases {
			if j, ok := parent[b]; ok {
				union(i, j)
			} else {
				parent[b] = i
			}
		}
	}

	byRoot := make(map[int]*batchGroup)
	var order []int
	for i, p := range plans {
		if !runnable[i] {
			continue
		}
		r := root(i)
		g, ok := byRoot[r]
		if !ok {
			g = &batchGroup{}
			byRoot[r] = g
			order = append(order, r)
		}
		g.reqs = append(g.reqs, i)
		g.bases = append(g.bases, p.bases...)
	}
	groups := make([]batchGroup, 0, len(order))
	for _, r := range order {
		g := byRoot[r]
		g.bases = m.sortBases(g.bases)
		groups = append(groups, *g)
	}
	return groups
}
