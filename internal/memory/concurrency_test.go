package memory

import (
	"sync"
	"testing"

	"repro/internal/isa"
	"repro/internal/params"
	"repro/internal/pim"
)

// TestConcurrentAccess hammers one memory from many goroutines (run
// with -race to validate the locking): disjoint addresses must never
// interfere and every read must see its own write.
func TestConcurrentAccess(t *testing.T) {
	cfg := params.DefaultConfig()
	cfg.Geometry.TrackWidth = 32
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			a := isa.Addr{Bank: g % 8, Subarray: g, Tile: 3, DBC: 2, Row: g % 32}
			row := pim.MustPackLanes([]uint64{uint64(g), uint64(g * 7)}, 16, 32)
			for i := 0; i < 20; i++ {
				if err := m.WriteRow(a, row); err != nil {
					errs <- err
					return
				}
				got, err := m.ReadRow(a)
				if err != nil {
					errs <- err
					return
				}
				if !got.Equal(row) {
					errs <- errMismatch{g, i}
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if m.Moves().RowWrites != 16*20 {
		t.Errorf("writes = %d, want %d", m.Moves().RowWrites, 16*20)
	}
}

type errMismatch [2]int

func (e errMismatch) Error() string { return "concurrent read saw foreign data" }

// TestConcurrentExecute runs PIM operations from several goroutines,
// each against its own subarray's PIM DBC.
func TestConcurrentExecute(t *testing.T) {
	cfg := params.DefaultConfig()
	cfg.Geometry.TrackWidth = 32
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			src := isa.Addr{Subarray: g, Tile: 1, DBC: 0, Row: 0}
			dst := isa.Addr{Subarray: g, Tile: 1, DBC: 0, Row: 1}
			pimDBC := isa.Addr{Subarray: g, Tile: 0, DBC: 15}
			av := uint64(10 * (g + 1))
			row := pim.MustPackLanes([]uint64{av}, 16, 32)
			if err := m.WriteRow(src, row); err != nil {
				errs <- err
				return
			}
			in := isa.Instruction{Op: isa.OpAdd, Src: pimDBC, Blocksize: 16, Operands: 2}
			res, err := m.Execute(in, []isa.Addr{src, src}, dst)
			if err != nil {
				errs <- err
				return
			}
			if got := pim.UnpackLanes(res, 16)[0]; got != 2*av {
				errs <- errMismatch{g, int(got)}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
