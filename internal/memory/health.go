package memory

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/dbc"
	"repro/internal/isa"
	"repro/internal/pim"
	"repro/internal/resilient"
	"repro/internal/telemetry"
)

// ErrQuarantined reports an access to a DBC the health ledger has taken
// out of service: either a cluster that exceeded its detected-fault
// threshold and could not be remapped (no spare left in its bank), or
// the physical spare now backing a remapped cluster (the spare's own
// address leaves the address space when it is reserved). Test with
// errors.Is.
var ErrQuarantined = errors.New("memory: DBC quarantined")

// QuarantineRecord describes one remapped (or failed) cluster.
type QuarantineRecord struct {
	Logical  isa.Addr // the quarantined DBC's address (row 0)
	Spare    isa.Addr // physical spare now backing it; zero Addr if none was left
	Faults   int      // detected faults that triggered the quarantine
	Remapped bool     // false = no spare available, accesses fail
}

// HealthReport is a point-in-time snapshot of the health ledger.
type HealthReport struct {
	// Faults maps DBC base addresses to their detected-fault counts
	// (counts reset when a cluster is remapped to a spare).
	Faults map[isa.Addr]int
	// Quarantined lists every quarantine decision, in the order taken.
	Quarantined []QuarantineRecord
	// TotalDetected is the lifetime detected-fault count across all
	// clusters; unlike Faults it survives quarantine resets.
	TotalDetected int
}

// SparesUsed counts successfully remapped clusters.
func (h HealthReport) SparesUsed() int {
	n := 0
	for _, q := range h.Quarantined {
		if q.Remapped {
			n++
		}
	}
	return n
}

// healthLedger tracks per-DBC detected faults and quarantine state. It
// has its own lock, never held while a shard lock is held: execution
// paths only append observations (noteFaults), and the expensive
// remapping work runs in processQuarantines after all shard locks are
// released.
type healthLedger struct {
	mu       sync.Mutex
	faults   map[isa.Addr]int      // detected faults per DBC base
	remap    map[isa.Addr]isa.Addr // quarantined logical base → spare base
	reserved map[isa.Addr]bool     // spare bases taken out of the address space
	failed   map[isa.Addr]bool     // quarantined with no spare: accesses error
	pending  []isa.Addr            // crossed threshold, awaiting remap
	history  []QuarantineRecord
	detected int // lifetime detected-fault total (never reset)

	// active flips to true once any base is reserved or failed, so the
	// no-recovery hot path checks quarantine state with one atomic load
	// instead of a mutex acquisition per shard lookup.
	active atomic.Bool
}

func (h *healthLedger) init() {
	h.faults = make(map[isa.Addr]int)
	h.remap = make(map[isa.Addr]isa.Addr)
	h.reserved = make(map[isa.Addr]bool)
	h.failed = make(map[isa.Addr]bool)
}

// noteFaults credits n detected faults to the DBC and schedules a
// quarantine once the threshold is crossed. threshold ≤ 0 disables
// quarantining (faults are still counted for Health()).
func (m *Memory) noteFaults(base isa.Addr, n, threshold int) {
	h := &m.health
	h.mu.Lock()
	defer h.mu.Unlock()
	h.faults[base] += n
	h.detected += n
	if threshold <= 0 || h.faults[base] < threshold {
		return
	}
	if _, ok := h.remap[base]; ok {
		return // already remapped once; spares are not chained
	}
	if h.failed[base] {
		return
	}
	for _, p := range h.pending {
		if p == base {
			return
		}
	}
	h.pending = append(h.pending, base)
}

// checkQuarantine rejects addresses the ledger has taken out of
// service. The inactive path — no quarantine ever taken — is one
// atomic load.
func (m *Memory) checkQuarantine(base isa.Addr) error {
	h := &m.health
	if !h.active.Load() {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.reserved[base] {
		return fmt.Errorf("memory: %+v is a reserved spare: %w", base, ErrQuarantined)
	}
	if h.failed[base] {
		return fmt.Errorf("memory: %+v exceeded its fault threshold with no spare available: %w", base, ErrQuarantined)
	}
	return nil
}

// processQuarantines remaps every cluster scheduled by noteFaults. It
// must be called with no shard locks held (end of Execute and
// ExecuteBatch); remapping takes the ledger lock, the table lock and
// the victim's shard lock in that order.
func (m *Memory) processQuarantines() {
	h := &m.health
	h.mu.Lock()
	if len(h.pending) == 0 {
		h.mu.Unlock()
		return
	}
	pending := h.pending
	h.pending = nil
	h.mu.Unlock()
	for _, base := range pending {
		m.quarantine(base)
	}
}

// quarantine takes one cluster out of service: it reserves a spare DBC
// in the same bank, migrates the victim's rows onto it, and swaps the
// spare in behind the victim's logical address — reads, writes and
// executions keep their addresses; only the backing physical cluster
// changes. With no spare left the logical address itself is failed and
// subsequent accesses return ErrQuarantined.
func (m *Memory) quarantine(base isa.Addr) {
	h := &m.health
	h.mu.Lock()
	faults := h.faults[base]
	spare, ok := m.findSpareLocked(base)
	if !ok {
		h.failed[base] = true
		h.active.Store(true)
		h.history = append(h.history, QuarantineRecord{Logical: base, Faults: faults})
		h.mu.Unlock()
		m.Recorder().Mark(resilient.Source, "quarantine-failed:"+string(srcFor(base)), faults)
		return
	}
	h.reserved[spare] = true
	h.remap[base] = spare
	h.faults[base] = 0 // the new physical cluster starts healthy
	h.active.Store(true)
	h.history = append(h.history, QuarantineRecord{Logical: base, Spare: spare, Faults: faults, Remapped: true})
	h.mu.Unlock()

	if err := m.remapShard(base, spare); err != nil {
		// Materialization of the replacement can only fail on geometry
		// errors, which checkAddr has already excluded; record defensively.
		m.Recorder().Mark(resilient.Source, "quarantine-error:"+string(srcFor(base)), faults)
		return
	}
	m.Recorder().Mark(resilient.Source, "quarantine:"+string(srcFor(base)), faults)
}

// findSpareLocked picks an unused DBC base in the victim's bank with the
// same PIM capability, scanning subarray-major. Caller holds h.mu.
func (m *Memory) findSpareLocked(victim isa.Addr) (isa.Addr, bool) {
	g := m.cfg.Geometry
	h := &m.health
	m.tableMu.RLock()
	defer m.tableMu.RUnlock()
	wantPIM := victim.IsPIMEnabled(g)
	for s := 0; s < g.SubarraysPerBank; s++ {
		for t := 0; t < g.TilesPerSubarray; t++ {
			for d := 0; d < g.DBCsPerTile; d++ {
				cand := isa.Addr{Bank: victim.Bank, Subarray: s, Tile: t, DBC: d}
				if cand == victim || cand.IsPIMEnabled(g) != wantPIM {
					continue
				}
				if _, materialized := m.shards[cand]; materialized {
					continue
				}
				if h.reserved[cand] || h.failed[cand] {
					continue
				}
				if _, quarantined := h.remap[cand]; quarantined {
					continue
				}
				return cand, true
			}
		}
	}
	return isa.Addr{}, false
}

// remapShard replaces the victim shard's physical cluster with a fresh
// one (the spare), migrating all rows. The shard object — and with it
// the lock, the tracer and the telemetry source — survives, so in-flight
// lock-ordering invariants are unaffected; the swap happens under the
// shard lock.
func (m *Memory) remapShard(base, spare isa.Addr) error {
	m.tableMu.RLock()
	sh := m.shards[base]
	m.tableMu.RUnlock()
	if sh == nil {
		return fmt.Errorf("memory: quarantined DBC %+v never materialized", base)
	}
	m.cfgMu.Lock()
	rec, pol := m.rec, m.pol
	m.cfgMu.Unlock()
	inj := m.injectorFor(spare)

	sh.mu.Lock()
	defer sh.mu.Unlock()
	old := sh.d
	var nd *dbc.DBC
	if sh.u != nil {
		u, err := pim.NewUnit(m.cfg)
		if err != nil {
			return err
		}
		u.D.SetTracer(sh.tr)
		u.D.SetFaultInjector(inj)
		u.SetTelemetry(rec, srcFor(base))
		nd = u.D
		sh.u = u
		sh.ex = nil
		if pol.Enabled() {
			ex, err := resilient.NewExecutor(u, pol)
			if err != nil {
				return err
			}
			sh.ex = ex
		}
	} else {
		d, err := dbc.New(m.cfg.Geometry.TrackWidth, m.cfg.Geometry.RowsPerDBC, m.cfg.TRD)
		if err != nil {
			return err
		}
		d.SetTracer(sh.tr)
		d.SetFaultInjector(inj)
		d.SetTelemetry(rec, srcFor(base))
		nd = d
	}
	// Migrate the victim's contents row by row. The copies ride the row
	// buffer like any other intra-bank movement, so they are priced as
	// row copies on the telemetry stream.
	for r := 0; r < m.cfg.Geometry.RowsPerDBC; r++ {
		nd.LoadRow(r, old.PeekRow(r))
		rec.Move(srcFor(base), telemetry.OpRowCopy, nd.Width())
	}
	sh.d = nd
	return nil
}

// Health returns a snapshot of the health ledger: per-DBC detected
// fault counts and every quarantine decision taken so far.
func (m *Memory) Health() HealthReport {
	h := &m.health
	h.mu.Lock()
	defer h.mu.Unlock()
	rep := HealthReport{Faults: make(map[isa.Addr]int, len(h.faults)), TotalDetected: h.detected}
	for b, n := range h.faults {
		if n > 0 {
			rep.Faults[b] = n
		}
	}
	rep.Quarantined = append(rep.Quarantined, h.history...)
	return rep
}
