package memory

import (
	"testing"

	"repro/internal/dbc"
	"repro/internal/isa"
	"repro/internal/params"
)

func poolCfg() params.Config {
	cfg := params.DefaultConfig()
	cfg.Geometry.TrackWidth = 64
	return cfg
}

// Shards are fully independent address spaces: a write to one shard is
// invisible to every other.
func TestPoolShardsIndependent(t *testing.T) {
	p, err := NewPool(poolCfg(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if p.Shards() != 3 {
		t.Fatalf("Shards() = %d, want 3", p.Shards())
	}
	a := isa.Addr{Bank: 0, Row: 1}
	row := dbc.ConstRow(64, 1)
	if err := p.Shard(0).WriteRow(a, row); err != nil {
		t.Fatal(err)
	}
	got, err := p.Shard(0).ReadRow(a)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(row) {
		t.Fatal("shard 0 readback mismatch")
	}
	other, err := p.Shard(1).ReadRow(a)
	if err != nil {
		t.Fatal(err)
	}
	if other.OnesCount() != 0 {
		t.Fatal("write to shard 0 leaked into shard 1")
	}
	if p.Shard(1).MaterializedDBCs() != 1 || p.Shard(2).MaterializedDBCs() != 0 {
		t.Fatalf("materialization leaked across shards: %d/%d/%d",
			p.Shard(0).MaterializedDBCs(), p.Shard(1).MaterializedDBCs(), p.Shard(2).MaterializedDBCs())
	}
}

func TestNewPoolRejectsZeroShards(t *testing.T) {
	if _, err := NewPool(poolCfg(), 0); err == nil {
		t.Fatal("NewPool(_, 0) succeeded, want error")
	}
}

// KindRead loads a row through the batch path, and a read grouped with
// a write of the same row observes the program-order value.
func TestBatchKindRead(t *testing.T) {
	m, err := New(poolCfg())
	if err != nil {
		t.Fatal(err)
	}
	a := isa.Addr{Bank: 2, Row: 4}
	seeded := dbc.ConstRow(64, 1)
	if err := m.WriteRow(a, seeded); err != nil {
		t.Fatal(err)
	}

	fresh := dbc.NewRow(64)
	fresh.Set(0, 1)
	fresh.Set(63, 1)
	reqs := []Request{
		{Kind: KindRead, Src: a},              // sees the pre-seeded row
		{Kind: KindWrite, Dst: a, Row: fresh}, // same footprint: program order
		{Kind: KindRead, Src: a},              // sees the batch's write
	}
	res := m.ExecuteBatch(reqs)
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("request %d: %v", i, r.Err)
		}
	}
	if !res[0].Row.Equal(seeded) {
		t.Fatal("first read did not observe the pre-batch row")
	}
	if !res[2].Row.Equal(fresh) {
		t.Fatal("second read did not observe the in-batch write in program order")
	}

	// Invalid read addresses fail in their Result, like every kind.
	bad := m.ExecuteBatch([]Request{{Kind: KindRead, Src: isa.Addr{Bank: -1}}})
	if bad[0].Err == nil {
		t.Fatal("out-of-geometry read succeeded")
	}
}
