package memory

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/isa"
	"repro/internal/params"
	"repro/internal/pim"
	"repro/internal/telemetry"
	"repro/internal/telemetry/profile"
)

// pimAddr returns the PIM-enabled DBC of the given bank/subarray under
// the default geometry (tile 0, last DBC).
func pimAddr(g params.Geometry, bank, sub, row int) isa.Addr {
	return isa.Addr{Bank: bank, Subarray: sub, Tile: 0, DBC: g.DBCsPerTile - 1, Row: row}
}

// addRequest builds one k-operand add whose operands and destination
// live in the PIM DBC of the given subarray, with deterministic lane
// data seeded by tag.
func addRequest(t *testing.T, m *Memory, g params.Geometry, bank, sub, tag int) Request {
	t.Helper()
	width := m.Config().Geometry.TrackWidth
	operands := make([]isa.Addr, 3)
	for i := range operands {
		operands[i] = pimAddr(g, bank, sub, i)
		vals := make([]uint64, width/8)
		for l := range vals {
			vals[l] = uint64(tag*31+i*7+l*3+1) % 256
		}
		if err := m.WriteRow(operands[i], pim.MustPackLanes(vals, 8, width)); err != nil {
			t.Fatal(err)
		}
	}
	return Request{
		In:       isa.Instruction{Op: isa.OpAdd, Src: pimAddr(g, bank, sub, 0), Blocksize: 8, Operands: 3},
		Operands: operands,
		Dst:      pimAddr(g, bank, sub, 10),
	}
}

// TestExecuteBatchMatchesSerial is the core determinism contract:
// ExecuteBatch over independent DBCs returns exactly what serial
// Execute calls return, leaves identical memory state, and its
// telemetry totals equal the serial run's.
func TestExecuteBatchMatchesSerial(t *testing.T) {
	cfg := params.DefaultConfig()
	g := cfg.Geometry
	const nDBC = 8

	build := func() (*Memory, []Request) {
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		reqs := make([]Request, 0, 2*nDBC)
		for s := 0; s < nDBC; s++ {
			reqs = append(reqs, addRequest(t, m, g, 0, s, s))
		}
		// A second wave over the same DBCs: overlapping footprints, must
		// stay in program order behind the first wave.
		for s := 0; s < nDBC; s++ {
			r := addRequest(t, m, g, 0, s, 100+s)
			r.Dst = pimAddr(g, 0, s, 11)
			reqs = append(reqs, r)
		}
		return m, reqs
	}

	serialM, serialReqs := build()
	serialRes := make([]Result, len(serialReqs))
	for i, r := range serialReqs {
		serialRes[i].Row, serialRes[i].Err = serialM.Execute(r.In, r.Operands, r.Dst)
	}
	serialStats := serialM.Stats()

	for _, workers := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			m, reqs := build()
			m.SetWorkers(workers)
			res := m.ExecuteBatch(reqs)
			if len(res) != len(serialRes) {
				t.Fatalf("got %d results, want %d", len(res), len(serialRes))
			}
			for i := range res {
				if (res[i].Err == nil) != (serialRes[i].Err == nil) {
					t.Fatalf("request %d: err=%v, serial err=%v", i, res[i].Err, serialRes[i].Err)
				}
				if !res[i].Row.Equal(serialRes[i].Row) {
					t.Errorf("request %d: parallel result differs from serial", i)
				}
			}
			// Device accounting parity, snapshotted before the state
			// comparison below adds read traffic of its own.
			if gs := m.Stats(); gs != serialStats {
				t.Errorf("stats differ:\nparallel %+v\nserial   %+v", gs, serialStats)
			}
			// Memory state parity: every destination row matches.
			for i, r := range reqs {
				got, err := m.ReadRow(r.Dst)
				if err != nil {
					t.Fatal(err)
				}
				want, err := serialM.ReadRow(r.Dst)
				if err != nil {
					t.Fatal(err)
				}
				if !got.Equal(want) {
					t.Errorf("request %d: dst row differs from serial", i)
				}
			}
		})
	}
}

// TestBatchTelemetryTotalsEqualSerial asserts the satellite-6 contract:
// after a parallel batch, the memory recorder's cycle clock, energy
// total and per-op metrics equal a serial run's exactly (group captures
// replayed in stable order).
func TestBatchTelemetryTotalsEqualSerial(t *testing.T) {
	cfg := params.DefaultConfig()
	g := cfg.Geometry
	const nDBC = 8

	run := func(parallel bool) *Memory {
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		reqs := make([]Request, 0, nDBC)
		for s := 0; s < nDBC; s++ {
			reqs = append(reqs, addRequest(t, m, g, 0, s, s))
		}
		if parallel {
			m.SetWorkers(8)
			for i, r := range m.ExecuteBatch(reqs) {
				if r.Err != nil {
					t.Fatalf("request %d: %v", i, r.Err)
				}
			}
		} else {
			for i, r := range reqs {
				if _, err := m.Execute(r.In, r.Operands, r.Dst); err != nil {
					t.Fatalf("request %d: %v", i, err)
				}
			}
		}
		return m
	}

	serial := run(false)
	par := run(true)

	if gc, wc := par.Recorder().Cycle(), serial.Recorder().Cycle(); gc != wc {
		t.Errorf("cycle clock: parallel %d, serial %d", gc, wc)
	}
	if ge, we := par.Recorder().EnergyPJ(), serial.Recorder().EnergyPJ(); math.Abs(ge-we) > 1e-6 {
		t.Errorf("energy: parallel %v, serial %v", ge, we)
	}
	for op := telemetry.Op(0); op < telemetry.OpSpan; op++ {
		if gm, wm := par.Recorder().Metrics().Op(op), serial.Recorder().Metrics().Op(op); gm != wm {
			t.Errorf("%v metrics: parallel %+v, serial %+v", op, gm, wm)
		}
	}
	if gm, wm := par.Moves(), serial.Moves(); gm != wm {
		t.Errorf("moves: parallel %+v, serial %+v", gm, wm)
	}
	for _, name := range serial.Recorder().Metrics().SpanNames() {
		gs, ws := par.Recorder().Metrics().Span(name), serial.Recorder().Metrics().Span(name)
		if gs != ws {
			t.Errorf("span %q: parallel %+v, serial %+v", name, gs, ws)
		}
	}
	// The cycle-clock == trace.Stats contract survives the merge.
	if got, want := par.Recorder().Cycle(), par.Stats().Cycles(); got != uint64(want) {
		t.Errorf("recorder cycle %d != stats cycles %d", got, want)
	}
}

// TestExecuteBatchErrorIsolation: invalid requests fail alone; the rest
// of the batch still runs.
func TestExecuteBatchErrorIsolation(t *testing.T) {
	cfg := params.DefaultConfig()
	g := cfg.Geometry
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	good := addRequest(t, m, g, 0, 0, 1)
	crossBank := addRequest(t, m, g, 0, 1, 2)
	crossBank.Operands[1].Bank = 3 // outside the executing DBC's bank
	notPIM := good
	notPIM.In.Src = isa.Addr{Bank: 0, Subarray: 0, Tile: 5, DBC: 0}

	res := m.ExecuteBatch([]Request{good, crossBank, notPIM})
	if res[0].Err != nil {
		t.Errorf("good request failed: %v", res[0].Err)
	}
	if !errors.Is(res[1].Err, ErrCrossDBC) {
		t.Errorf("cross-bank request: err=%v, want ErrCrossDBC", res[1].Err)
	}
	if res[2].Err == nil {
		t.Error("non-PIM src request succeeded")
	}
}

// TestExecuteCrossDBCValidatesBeforeLocking: a request that fails the
// bank rule must not move any row or touch any counter (validation
// precedes lock acquisition and staging).
func TestExecuteCrossDBCValidatesBeforeLocking(t *testing.T) {
	cfg := params.DefaultConfig()
	g := cfg.Geometry
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := addRequest(t, m, g, 0, 0, 1)
	before := m.Stats()
	movesBefore := m.Moves()

	r.Dst.Bank = 5
	if _, err := m.Execute(r.In, r.Operands, r.Dst); !errors.Is(err, ErrCrossDBC) {
		t.Fatalf("err=%v, want ErrCrossDBC", err)
	}
	r.Dst.Bank = 0
	r.Operands[0].Bank = 7
	if _, err := m.Execute(r.In, r.Operands, r.Dst); !errors.Is(err, ErrCrossDBC) {
		t.Fatalf("err=%v, want ErrCrossDBC", err)
	}

	if after := m.Stats(); after != before {
		t.Errorf("failed execute moved device counters: before %+v after %+v", before, after)
	}
	if after := m.Moves(); after != movesBefore {
		t.Errorf("failed execute recorded row moves: before %+v after %+v", movesBefore, after)
	}
	// Staging across banks is still possible — explicitly, via CopyRow.
	src := isa.Addr{Bank: 7, Subarray: 0, Tile: 2, DBC: 1, Row: 0}
	if err := m.CopyRow(src, r.Operands[0]); err != nil {
		t.Fatalf("CopyRow staging: %v", err)
	}
	r.Operands[0].Bank = 0
	if _, err := m.Execute(r.In, r.Operands, r.Dst); err != nil {
		t.Fatalf("execute after staging: %v", err)
	}
}

// TestBatchStressDifferential extends the refdbc differential-harness
// pattern to the concurrent engine: random concurrent
// ExecuteBatch/WriteRow/ReadRow traffic over ≥8 DBCs (run under -race),
// then a bit-identical comparison against the serial engine driven by
// the same seed.
func TestBatchStressDifferential(t *testing.T) {
	cfg := params.DefaultConfig()
	g := cfg.Geometry
	width := g.TrackWidth
	const (
		seed  = 12345
		nDBC  = 10
		waves = 4
	)

	// genReqs deterministically derives each wave's requests from the
	// seed; memory contents are (re)written before each wave so the
	// serial and concurrent engines see identical inputs.
	genReqs := func(rng *rand.Rand, m *Memory) []Request {
		reqs := make([]Request, 0, nDBC)
		for s := 0; s < nDBC; s++ {
			k := 2 + rng.Intn(2)
			operands := make([]isa.Addr, k)
			for i := range operands {
				operands[i] = pimAddr(g, 0, s, i)
				vals := make([]uint64, width/8)
				for l := range vals {
					vals[l] = rng.Uint64() % 256
				}
				if err := m.WriteRow(operands[i], pim.MustPackLanes(vals, 8, width)); err != nil {
					t.Fatal(err)
				}
			}
			op := isa.OpAdd
			switch rng.Intn(3) {
			case 1:
				op = isa.OpMax
			case 2:
				op = isa.OpXor
			}
			reqs = append(reqs, Request{
				In:       isa.Instruction{Op: op, Src: pimAddr(g, 0, s, 0), Blocksize: 8, Operands: k},
				Operands: operands,
				Dst:      pimAddr(g, 0, s, 12),
			})
		}
		return reqs
	}

	run := func(parallel bool) *Memory {
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		for w := 0; w < waves; w++ {
			reqs := genReqs(rng, m)
			if parallel {
				m.SetWorkers(8)
				// Concurrent mutators on unrelated DBCs while the batch
				// runs: plain traffic in other banks must not interfere.
				var wg sync.WaitGroup
				stop := make(chan struct{})
				for gi := 0; gi < 4; gi++ {
					wg.Add(1)
					go func(gi int) {
						defer wg.Done()
						a := isa.Addr{Bank: 2 + gi, Subarray: gi, Tile: 4, DBC: 1, Row: gi}
						row := pim.MustPackLanes([]uint64{uint64(gi + 1)}, 16, width)
						for {
							select {
							case <-stop:
								return
							default:
							}
							if err := m.WriteRow(a, row); err != nil {
								t.Error(err)
								return
							}
							if got, err := m.ReadRow(a); err != nil || !got.Equal(row) {
								t.Errorf("side traffic: err=%v equal=%v", err, err == nil && got.Equal(row))
								return
							}
						}
					}(gi)
				}
				for i, r := range m.ExecuteBatch(reqs) {
					if r.Err != nil {
						t.Fatalf("wave %d request %d: %v", w, i, r.Err)
					}
				}
				close(stop)
				wg.Wait()
			} else {
				for i, r := range reqs {
					if _, err := m.Execute(r.In, r.Operands, r.Dst); err != nil {
						t.Fatalf("wave %d request %d: %v", w, i, err)
					}
				}
			}
		}
		return m
	}

	serial := run(false)
	par := run(true)
	for s := 0; s < nDBC; s++ {
		dst := pimAddr(g, 0, s, 12)
		want, err := serial.ReadRow(dst)
		if err != nil {
			t.Fatal(err)
		}
		got, err := par.ReadRow(dst)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Errorf("DBC %d: concurrent result differs from serial engine", s)
		}
	}
}

// TestStatsSafeDuringBatch calls Stats()/Moves() continuously while a
// batch is in flight (satellite 6; meaningful under -race).
func TestStatsSafeDuringBatch(t *testing.T) {
	cfg := params.DefaultConfig()
	g := cfg.Geometry
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reqs := make([]Request, 0, 8)
	for s := 0; s < 8; s++ {
		reqs = append(reqs, addRequest(t, m, g, 0, s, s))
	}
	m.SetWorkers(4)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = m.Stats()
			_ = m.Moves()
		}
	}()
	for round := 0; round < 5; round++ {
		for i, r := range m.ExecuteBatch(reqs) {
			if r.Err != nil {
				t.Fatalf("round %d request %d: %v", round, i, r.Err)
			}
		}
	}
	close(stop)
	wg.Wait()
	if got, want := m.Recorder().Cycle(), m.Stats().Cycles(); got != uint64(want) {
		t.Errorf("recorder cycle %d != stats cycles %d after batches", got, want)
	}
}

// TestRecorderSafeDuringBatch pins the lock-ordering fix in runGroup:
// the cfg-class mutex (taken by Recorder) must be acquired before the
// group's shard locks, never under them. Hammering Recorder from
// another goroutine while parallel groups run keeps cfgMu contended
// through the exact window runGroup uses it; a reintroduced inversion
// shows up here as a -race report or a watchdog timeout instead of a
// silent latent deadlock.
func TestRecorderSafeDuringBatch(t *testing.T) {
	cfg := params.DefaultConfig()
	g := cfg.Geometry
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reqs := make([]Request, 0, 8)
	for s := 0; s < 8; s++ {
		reqs = append(reqs, addRequest(t, m, g, 0, s, 100+s))
	}
	m.SetWorkers(4)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			rec := m.Recorder()
			m.SetTelemetry(rec) // cfgMu write path, same recorder back
		}
	}()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for round := 0; round < 5; round++ {
			for i, r := range m.ExecuteBatch(reqs) {
				if r.Err != nil {
					t.Errorf("round %d request %d: %v", round, i, r.Err)
				}
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("batch execution wedged while cfg-class mutex was contended; check runGroup's lock order (cfg before shard)")
	}
	close(stop)
	wg.Wait()
}

// TestBatchWithFaultInjectorSerializes: with an injector attached the
// batch must reproduce the serial engine's fault stream bit-for-bit.
func TestBatchWithFaultInjectorSerializes(t *testing.T) {
	cfg := params.DefaultConfig()
	g := cfg.Geometry

	run := func(parallel bool) *Memory {
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		m.SetFaultInjector(device.NewFaultInjector(0.02, 0.01, 42))
		reqs := make([]Request, 0, 4)
		for s := 0; s < 4; s++ {
			reqs = append(reqs, addRequest(t, m, g, 0, s, s))
		}
		if parallel {
			m.SetWorkers(8)
			for i, r := range m.ExecuteBatch(reqs) {
				if r.Err != nil {
					t.Fatalf("request %d: %v", i, r.Err)
				}
			}
		} else {
			for i, r := range reqs {
				if _, err := m.Execute(r.In, r.Operands, r.Dst); err != nil {
					t.Fatalf("request %d: %v", i, err)
				}
			}
		}
		return m
	}

	serial := run(false)
	par := run(true)
	for s := 0; s < 4; s++ {
		dst := pimAddr(g, 0, s, 10)
		want, err := serial.ReadRow(dst)
		if err != nil {
			t.Fatal(err)
		}
		got, err := par.ReadRow(dst)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Errorf("DBC %d: faulted batch differs from faulted serial run", s)
		}
	}
}

// TestBatchProfilerSnapshotEqualsSerial is the hardware profiler's
// capture-replay acceptance test: with the spatial profiler attached
// as a sink, a parallel ExecuteBatch must produce a per-DBC snapshot —
// wear maps, head occupancy, per-port shift-distance histograms,
// energy — bit-identical to a serial run, because group captures
// replay the spatially-attributed events verbatim in program order.
func TestBatchProfilerSnapshotEqualsSerial(t *testing.T) {
	cfg := params.DefaultConfig()
	g := cfg.Geometry
	const nDBC = 8

	run := func(parallel bool) *profile.Profiler {
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		prof := profile.New(cfg)
		m.SetTelemetry(telemetry.NewRecorder(cfg, prof))
		reqs := make([]Request, 0, nDBC)
		for s := 0; s < nDBC; s++ {
			reqs = append(reqs, addRequest(t, m, g, 0, s, s))
		}
		if parallel {
			m.SetWorkers(8)
			for i, r := range m.ExecuteBatch(reqs) {
				if r.Err != nil {
					t.Fatalf("request %d: %v", i, r.Err)
				}
			}
		} else {
			for i, r := range reqs {
				if _, err := m.Execute(r.In, r.Operands, r.Dst); err != nil {
					t.Fatalf("request %d: %v", i, err)
				}
			}
		}
		return prof
	}

	serial := run(false).Snapshot()
	par := run(true).Snapshot()
	if len(serial) == 0 {
		t.Fatal("serial run profiled no sources")
	}
	if !reflect.DeepEqual(serial, par) {
		t.Errorf("profiler snapshots differ between serial and parallel runs")
		for i := range serial {
			if i < len(par) && !reflect.DeepEqual(serial[i], par[i]) {
				t.Errorf("first divergence at %s:\nserial   %+v\nparallel %+v",
					serial[i].Src, serial[i], par[i])
				break
			}
		}
	}
}
