// Package isaac models ISAAC [58], the ReRAM-crossbar CNN accelerator
// used as an analog-PIM comparison point in Table IV. ISAAC performs
// full-precision-equivalent inference with in-situ analog dot products;
// its throughput is bounded by the crossbar pipeline rather than by the
// layer arithmetic, so small networks gain disproportionately (LeNet-5
// reaches thousands of FPS while AlexNet sits near DWM PIM).
//
// The model reproduces the Table IV operating points from a pipeline
// throughput budget, documented here rather than re-derived from analog
// device physics (out of scope for a digital-PIM reproduction).
package isaac

// ThroughputOPS is the sustained crossbar MAC throughput of the modelled
// ISAAC node. The published peak for a full chip is far higher; Table
// IV's operating points reflect a memory-area-equivalent provisioning,
// and the throughput/overhead pair below is solved from the table's two
// cells (AlexNet 34 FPS, LeNet-5 2581 FPS).
const ThroughputOPS = 2.49e10

// overheadNS is the per-inference pipeline fill/drain and eDRAM buffer
// overhead, which dominates small networks.
const overheadNS = 3.71e5

// FPS returns the modelled inference rate for a network with the given
// total multiply-accumulate count.
func FPS(macs int64) float64 {
	secs := float64(macs)/ThroughputOPS + overheadNS*1e-9
	return 1 / secs
}
