package elp2im

import (
	"fmt"

	"repro/internal/baseline/ambit"
)

// Functional DrAcc-style addition (Eq. 3, §IV-A): operands are laid out
// vertically — bit j of every lane lives in row j — and one addition
// step computes, with row-wide bulk operations,
//
//	G_i = A_i & B_i;  P_i = A_i ^ B_i;
//	C_{i+1} = G_i | (P_i & C_i);  S_i = P_i ^ C_i.
//
// The carry rows are produced serially (the 40-cycle step cost of the
// cost model); everything is bit-parallel across the row's lanes.

// AddRows adds two vertically-laid-out operands: a[j] and b[j] are the
// bit-j rows. Returns the sum rows (same width, carry-out dropped, i.e.
// lane-wise mod 2^len(a)).
func AddRows(a, b []Row) ([]Row, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("elp2im: operand widths %d and %d differ", len(a), len(b))
	}
	if len(a) == 0 {
		return nil, fmt.Errorf("elp2im: empty operands")
	}
	width := len(a[0])
	sum := make([]Row, len(a))
	carry := make(Row, width)
	for j := range a {
		if len(a[j]) != width || len(b[j]) != width {
			return nil, fmt.Errorf("elp2im: ragged operand rows")
		}
		g := ambit.And(a[j], b[j])
		p := ambit.Xor(a[j], b[j])
		sum[j] = ambit.Xor(p, carry)
		carry = ambit.Or(g, ambit.And(p, carry))
	}
	return sum, nil
}

// PackVertical lays lane values out vertically: result[j][lane] is bit j
// of vals[lane].
func PackVertical(vals []uint64, bits int) []Row {
	rows := make([]Row, bits)
	for j := range rows {
		rows[j] = make(Row, len(vals))
		for l, v := range vals {
			rows[j][l] = uint8((v >> uint(j)) & 1)
		}
	}
	return rows
}

// UnpackVertical reverses PackVertical.
func UnpackVertical(rows []Row) []uint64 {
	if len(rows) == 0 {
		return nil
	}
	vals := make([]uint64, len(rows[0]))
	for j, row := range rows {
		for l, b := range row {
			vals[l] |= uint64(b&1) << uint(j)
		}
	}
	return vals
}
