// Package elp2im models ELP²IM [4], the fastest published DRAM PIM at
// the time of the paper: instead of cloning operands like Ambit, it
// manipulates the sense amplifier's pseudo-precharge state so logic
// happens in place, reaching a 3.2× speedup over Ambit on bulk bitwise
// operations (§II-C1).
//
// Functionally its operations match Ambit's (bitwise logic over rows);
// only the costs differ, so the functional helpers delegate to the same
// reference semantics.
package elp2im

import (
	"repro/internal/baseline/ambit"
	"repro/internal/params"
	"repro/internal/trace"
)

// Row is a bulk-bitwise operand.
type Row = ambit.Row

// And computes a AND b (same result semantics as Ambit, in-place state
// manipulation in hardware).
func And(a, b Row) Row { return ambit.And(a, b) }

// Or computes a OR b.
func Or(a, b Row) Row { return ambit.Or(a, b) }

// Xor computes a XOR b.
func Xor(a, b Row) Row { return ambit.Xor(a, b) }

// AndMulti reduces k operands with sequential two-operand ANDs.
func AndMulti(ops []Row) (Row, error) { return ambit.AndMulti(ops) }

// Model is the ELP²IM cost model.
type Model struct {
	T params.DDRTimings
	E params.Energy
}

// NewModel returns the Table II DRAM cost model.
func NewModel(cfg params.Config) Model {
	return Model{T: cfg.Timing.DRAM, E: cfg.Energy}
}

// opCost is one in-place bulk operation: a single activation plus two
// pseudo-precharge phases — 3.2× faster than Ambit's four AAPs.
func (m Model) opCost(n int) trace.Cost {
	ambitAnd := 4 * (2*m.T.TRAS + m.T.TRP)
	cyc := int(float64(ambitAnd)/3.2) + 1
	return trace.Cost{
		Cycles:   n * cyc,
		EnergyPJ: float64(n) * 1.2 * m.E.DRAMRowActPJ,
	}
}

// And2 returns the cost of one row-wide two-operand AND.
func (m Model) And2() trace.Cost { return m.opCost(1) }

// Or2 returns the cost of one row-wide two-operand OR.
func (m Model) Or2() trace.Cost { return m.opCost(1) }

// Xor2 returns the cost of a row-wide XOR (two pseudo-precharge ops).
func (m Model) Xor2() trace.Cost { return m.opCost(2) }

// AndMulti returns the cost of reducing k operands by sequential ANDs.
func (m Model) AndMulti(k int) trace.Cost { return m.And2().Scale(k - 1) }

// AddStep returns one row-wide two-operand addition step: the G/P/C/S
// carry-lookahead recipe of Eq. 3, 40 cycles (§IV-A).
func (m Model) AddStep() trace.Cost {
	return trace.Cost{Cycles: 40, EnergyPJ: 6 * m.E.DRAMRowActPJ}
}
