// Package baseline groups the comparator models CORUSCANT is evaluated
// against (§II-C, §V): the DRAM bulk-bitwise accelerators Ambit and
// ELP²IM, the DWM PIM proposals DW-NN and SPIM, the ISAAC ReRAM
// crossbar, and the non-PIM CPU system. Each lives in its own
// subpackage; this package holds their cross-cutting tests.
package baseline
