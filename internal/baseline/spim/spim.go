// Package spim models SPIM [8], the state-of-the-art DWM PIM prior to
// CORUSCANT: dedicated skyrmion-based computing units in which custom
// ferromagnetic domains are permanently linked into OR/AND channels and
// composed into full adders (§II-C2). Sum and carry are computed from a
// series of bitwise operations, which is why CORUSCANT's single-step
// S/C/C' sensing beats it even for two operands (§V-B).
//
// Costs are anchored to Table III's published 8-bit characterization and
// scale bit-serially.
package spim

import (
	"math"

	"repro/internal/trace"
)

// Table III anchors for 8-bit operations.
const (
	add2Cycles8  = 49
	add2PJ8      = 28.0
	add5AreaOpt8 = 244
	add5LatOpt8  = 179
	add5PJ8      = 121.6
	mult2Cycles8 = 149
	mult2PJ8     = 196.0
)

// Areas in µm² (Table III).
const (
	AddAreaUM2       = 2.0
	AddLatOptAreaUM2 = 4.0
	MultAreaUM2      = 16.8
)

// Add2 returns the cost of a two-operand add of the given width.
func Add2(bits int) trace.Cost {
	return trace.Cost{
		Cycles:   add2Cycles8 * bits / 8,
		EnergyPJ: add2PJ8 * float64(bits) / 8,
	}
}

// Add5AreaOpt returns the cost of a five-operand add computed serially
// on one full-adder unit.
func Add5AreaOpt(bits int) trace.Cost {
	return trace.Cost{
		Cycles:   add5AreaOpt8 * bits / 8,
		EnergyPJ: add5PJ8 * float64(bits) / 8,
	}
}

// Add5LatOpt returns the cost of a five-operand add on replicated units.
func Add5LatOpt(bits int) trace.Cost {
	return trace.Cost{
		Cycles:   add5LatOpt8 * bits / 8,
		EnergyPJ: add5PJ8 * float64(bits) / 8,
	}
}

// Mult2 returns the cost of a two-operand multiply (shift-and-add,
// quadratic in width).
func Mult2(bits int) trace.Cost {
	scale := float64(bits*bits) / 64
	return trace.Cost{
		Cycles:   int(math.Round(mult2Cycles8 * scale)),
		EnergyPJ: mult2PJ8 * scale,
	}
}
