package baseline_test

import (
	"testing"
	"testing/quick"

	"repro/internal/baseline/dwnn"
	"repro/internal/baseline/elp2im"
)

func TestDWNNAddFunctional(t *testing.T) {
	check := func(a, b uint8) bool {
		got, err := dwnn.AddFunctional(uint64(a), uint64(b), 8)
		return err == nil && got == uint64(a)+uint64(b)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDWNNAddWidths(t *testing.T) {
	for _, w := range []int{4, 8, 16, 32} {
		max := uint64(1)<<uint(w) - 1
		got, err := dwnn.AddFunctional(max, max, w)
		if err != nil {
			t.Fatalf("width %d: %v", w, err)
		}
		if got != 2*max { // carry-out preserved in bit w
			t.Errorf("width %d: %d + %d = %d", w, max, max, got)
		}
	}
	if _, err := dwnn.AddFunctional(1, 1, 0); err == nil {
		t.Error("width 0 accepted")
	}
}

func TestDWNNMultFunctional(t *testing.T) {
	check := func(a, b uint8) bool {
		got, err := dwnn.MultFunctional(uint64(a), uint64(b), 8)
		return err == nil && got == uint64(a)*uint64(b)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestELP2IMAddRows(t *testing.T) {
	check := func(av, bv [6]uint8) bool {
		a := make([]uint64, 6)
		b := make([]uint64, 6)
		for i := range av {
			a[i], b[i] = uint64(av[i]), uint64(bv[i])
		}
		ra := elp2im.PackVertical(a, 8)
		rb := elp2im.PackVertical(b, 8)
		sum, err := elp2im.AddRows(ra, rb)
		if err != nil {
			return false
		}
		got := elp2im.UnpackVertical(sum)
		for i := range a {
			if got[i] != (a[i]+b[i])&0xff {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestELP2IMAddRowsErrors(t *testing.T) {
	if _, err := elp2im.AddRows(nil, nil); err == nil {
		t.Error("empty operands accepted")
	}
	a := elp2im.PackVertical([]uint64{1}, 8)
	b := elp2im.PackVertical([]uint64{1}, 4)
	if _, err := elp2im.AddRows(a, b); err == nil {
		t.Error("width mismatch accepted")
	}
}

func TestVerticalPackRoundTrip(t *testing.T) {
	check := func(vals [5]uint16) bool {
		v := make([]uint64, 5)
		for i := range vals {
			v[i] = uint64(vals[i])
		}
		return equalU64(elp2im.UnpackVertical(elp2im.PackVertical(v, 16)), v)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func equalU64(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
