// Package baseline_test exercises the comparator models together: the
// functional DRAM PIM semantics and the Table III/IV cost anchors.
package baseline_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/baseline/ambit"
	"repro/internal/baseline/cpu"
	"repro/internal/baseline/dwnn"
	"repro/internal/baseline/elp2im"
	"repro/internal/baseline/isaac"
	"repro/internal/baseline/spim"
	"repro/internal/mem"
	"repro/internal/params"
)

func randRow(n int, rng *rand.Rand) ambit.Row {
	r := make(ambit.Row, n)
	for i := range r {
		r[i] = uint8(rng.Intn(2))
	}
	return r
}

func TestAmbitTRAIsMajority(t *testing.T) {
	check := func(a, b, c bool) bool {
		row := func(v bool) ambit.Row {
			if v {
				return ambit.Row{1}
			}
			return ambit.Row{0}
		}
		x, y, z := row(a), row(b), row(c)
		ambit.TRA(x, y, z)
		ones := 0
		for _, v := range []bool{a, b, c} {
			if v {
				ones++
			}
		}
		want := uint8(0)
		if ones >= 2 {
			want = 1
		}
		// TRA is destructive: all three rows now hold the majority.
		return x[0] == want && y[0] == want && z[0] == want
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestAmbitLogicOps(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a, b := randRow(64, rng), randRow(64, rng)
	and := ambit.And(a, b)
	or := ambit.Or(a, b)
	xor := ambit.Xor(a, b)
	not := ambit.Not(a)
	for i := range a {
		if and[i] != a[i]&b[i] {
			t.Fatalf("AND bit %d", i)
		}
		if or[i] != a[i]|b[i] {
			t.Fatalf("OR bit %d", i)
		}
		if xor[i] != a[i]^b[i] {
			t.Fatalf("XOR bit %d", i)
		}
		if not[i] != 1-a[i] {
			t.Fatalf("NOT bit %d", i)
		}
	}
	// The logic ops must not destroy their operands (RowClone copies
	// protect the originals, §II-C1).
	ac, bc := randRow(64, rng), randRow(64, rng)
	copy(ac, a)
	copy(bc, b)
	ambit.And(a, b)
	for i := range a {
		if a[i] != ac[i] || b[i] != bc[i] {
			t.Fatal("And destroyed its operands")
		}
	}
}

func TestAmbitAndMulti(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ops := []ambit.Row{randRow(32, rng), randRow(32, rng), randRow(32, rng), randRow(32, rng)}
	got, err := ambit.AndMulti(ops)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		want := uint8(1)
		for _, o := range ops {
			want &= o[i]
		}
		if got[i] != want {
			t.Fatalf("bit %d = %d, want %d", i, got[i], want)
		}
	}
	if _, err := ambit.AndMulti(nil); err == nil {
		t.Error("empty operand list accepted")
	}
	// ELP2IM shares the functional semantics.
	e, err := elp2im.AndMulti(ops)
	if err != nil {
		t.Fatal(err)
	}
	for i := range e {
		if e[i] != got[i] {
			t.Fatal("ELP2IM and Ambit semantics diverge")
		}
	}
}

func TestAmbitCostModel(t *testing.T) {
	m := ambit.NewModel(params.DefaultConfig())
	// AAP = 2·tRAS + tRP = 48 memory cycles.
	if got := m.AAPCycles(); got != 48 {
		t.Errorf("AAP = %d cycles, want 48", got)
	}
	if m.And2().Cycles != 4*48 {
		t.Errorf("AND = %d cycles, want 192", m.And2().Cycles)
	}
	if m.Xor2().Cycles <= m.And2().Cycles {
		t.Error("XOR (DCC recipe) should exceed AND")
	}
	if m.AndMulti(5).Cycles != 4*m.And2().Cycles {
		t.Error("k-operand AND must chain k-1 passes")
	}
	if m.Not1().Cycles >= m.And2().Cycles {
		t.Error("NOT should be cheaper than AND")
	}
}

func TestELP2IMFasterThanAmbit(t *testing.T) {
	cfg := params.DefaultConfig()
	a := ambit.NewModel(cfg)
	e := elp2im.NewModel(cfg)
	// §II-C1: ELP²IM demonstrates a 3.2× performance improvement.
	ratio := float64(a.And2().Cycles) / float64(e.And2().Cycles)
	if ratio < 2.8 || ratio > 3.6 {
		t.Errorf("ELP2IM AND speedup = %.2f, want ≈3.2", ratio)
	}
	if e.AddStep().Cycles != 40 {
		t.Errorf("ELP2IM add step = %d cycles, want 40 (§IV-A)", e.AddStep().Cycles)
	}
	if a.AddStep().Cycles <= e.AddStep().Cycles {
		t.Error("Ambit add step should exceed ELP2IM's")
	}
}

func TestDWNNAnchors(t *testing.T) {
	// Table III published values at 8 bits.
	if c := dwnn.Add2(8); c.Cycles != 54 || c.EnergyPJ != 40 {
		t.Errorf("DW-NN add2 = %+v", c)
	}
	if c := dwnn.Add5AreaOpt(8); c.Cycles != 264 {
		t.Errorf("DW-NN add5 area = %+v", c)
	}
	if c := dwnn.Add5LatOpt(8); c.Cycles != 194 {
		t.Errorf("DW-NN add5 lat = %+v", c)
	}
	if c := dwnn.Mult2(8); c.Cycles != 163 || c.EnergyPJ != 308 {
		t.Errorf("DW-NN mult = %+v", c)
	}
	// Bit-serial scaling: 16-bit add doubles; multiply quadruples.
	if dwnn.Add2(16).Cycles != 108 {
		t.Error("add scaling not linear")
	}
	if dwnn.Mult2(16).Cycles != 652 {
		t.Error("mult scaling not quadratic")
	}
}

func TestSPIMAnchors(t *testing.T) {
	if c := spim.Add2(8); c.Cycles != 49 || c.EnergyPJ != 28 {
		t.Errorf("SPIM add2 = %+v", c)
	}
	if c := spim.Add5LatOpt(8); c.Cycles != 179 || c.EnergyPJ != 121.6 {
		t.Errorf("SPIM add5 lat = %+v", c)
	}
	if c := spim.Mult2(8); c.Cycles != 149 || c.EnergyPJ != 196 {
		t.Errorf("SPIM mult = %+v", c)
	}
	// SPIM beats DW-NN everywhere (it is the state of the art, §II-C2).
	if spim.Add2(8).Cycles >= dwnn.Add2(8).Cycles {
		t.Error("SPIM add not faster than DW-NN")
	}
	if spim.Mult2(8).EnergyPJ >= dwnn.Mult2(8).EnergyPJ {
		t.Error("SPIM mult not cheaper than DW-NN")
	}
}

func TestISAACAnchors(t *testing.T) {
	// Table IV operating points: AlexNet 34 FPS, LeNet-5 2581 FPS.
	alex := isaac.FPS(724e6)
	lenet := isaac.FPS(416e3)
	if alex < 32 || alex > 36 {
		t.Errorf("ISAAC AlexNet = %.1f FPS, want ≈34", alex)
	}
	if lenet < 2450 || lenet > 2720 {
		t.Errorf("ISAAC LeNet = %.1f FPS, want ≈2581", lenet)
	}
}

func TestCPUOpCounts(t *testing.T) {
	o := cpu.OpCounts{Adds: 100, Mults: 50, BusBytes: 300}
	if o.Ops() != 150 {
		t.Errorf("Ops = %d", o.Ops())
	}
	if o.BytesPerOp() != 2 {
		t.Errorf("BytesPerOp = %v", o.BytesPerOp())
	}
	if (cpu.OpCounts{}).BytesPerOp() != 0 {
		t.Error("empty counts should give zero traffic")
	}
	e := params.DefaultEnergy()
	want := 300*e.TransPJPerB + 100*e.CPUAdd32PJ + 50*e.CPUMult32PJ
	if got := cpu.EnergyPJ(o, e); got != want {
		t.Errorf("energy = %v, want %v", got, want)
	}
	sys := mem.NewSystem(params.DefaultConfig())
	if cpu.LatencyNS(o, sys, mem.DWM) <= 0 {
		t.Error("non-positive latency")
	}
	if cpu.LatencyNS(cpu.OpCounts{}, sys, mem.DWM) != 0 {
		t.Error("empty kernel should cost nothing")
	}
}
