// Package cpu models the non-PIM baseline of Figs. 10–12: a Xeon
// X5670-class processor executing the kernel with all operands moved
// over the memory bus. Energy follows Table II ([3]): 1250 pJ per byte
// transferred, 111 pJ per 32-bit add, 164 pJ per 32-bit multiply.
package cpu

import (
	"repro/internal/mem"
	"repro/internal/params"
)

// OpCounts summarizes a kernel's work: arithmetic operations executed
// and the off-chip traffic they generate (after on-chip caching).
type OpCounts struct {
	Adds     int64
	Mults    int64
	BusBytes int64 // off-chip bytes moved (cache-filtered)
}

// Ops returns the total arithmetic operations.
func (o OpCounts) Ops() int64 { return o.Adds + o.Mults }

// BytesPerOp returns the average off-chip traffic per operation.
func (o OpCounts) BytesPerOp() float64 {
	if o.Ops() == 0 {
		return 0
	}
	return float64(o.BusBytes) / float64(o.Ops())
}

// EnergyPJ returns the CPU-side energy of executing the kernel: the bus
// transfer energy dominates (Fig. 11: "the data movement energy ... is
// 30× the compute energy").
func EnergyPJ(o OpCounts, e params.Energy) float64 {
	return float64(o.BusBytes)*e.TransPJPerB +
		float64(o.Adds)*e.CPUAdd32PJ +
		float64(o.Mults)*e.CPUMult32PJ
}

// LatencyNS returns the CPU execution time of the kernel against the
// given memory technology, using the system model's per-operation
// latency.
func LatencyNS(o OpCounts, s *mem.System, t mem.Tech) float64 {
	if o.Ops() == 0 {
		return 0
	}
	return float64(o.Ops()) * s.CPUOpLatencyNS(t, o.BytesPerOp())
}
