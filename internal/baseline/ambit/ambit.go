// Package ambit models Ambit [5], the commodity-DRAM in-memory
// accelerator CORUSCANT compares against for bulk-bitwise work (§II-C1):
// triple-row activation (TRA) computes a bitwise majority of three rows
// against the sense threshold, RowClone-style AAP sequences copy operands
// into the designated TRA rows, and dual-contact cells (DCC) provide
// inversion.
//
// The package provides both a functional model (bit-exact TRA, AND, OR,
// NOT, XOR on row vectors — used to cross-check the bitmap-index query
// results) and the AAP-based cost model used by Fig. 12 and Table IV.
package ambit

import (
	"fmt"

	"repro/internal/params"
	"repro/internal/trace"
)

// Row is a bulk-bitwise operand: one bit per entry.
type Row = []uint8

// TRA performs a triple-row activation: all three rows are driven to the
// bitwise majority of their contents — the operation is destructive,
// exactly like charge sharing on the bitlines (§II-C1).
func TRA(a, b, c Row) {
	for i := range a {
		m := a[i] + b[i] + c[i]
		v := uint8(0)
		if m >= 2 {
			v = 1
		}
		a[i], b[i], c[i] = v, v, v
	}
}

// Clone copies src into a new row (RowClone AAP).
func Clone(src Row) Row {
	dst := make(Row, len(src))
	copy(dst, src)
	return dst
}

// Not returns the inverse of src, read through a dual-contact cell.
func Not(src Row) Row {
	dst := make(Row, len(src))
	for i, b := range src {
		dst[i] = 1 - b&1
	}
	return dst
}

// And computes a AND b through TRA with a zero control row.
func And(a, b Row) Row {
	t0, t1, ctrl := Clone(a), Clone(b), make(Row, len(a))
	TRA(t0, t1, ctrl)
	return t0
}

// Or computes a OR b through TRA with a ones control row.
func Or(a, b Row) Row {
	t0, t1 := Clone(a), Clone(b)
	ctrl := make(Row, len(a))
	for i := range ctrl {
		ctrl[i] = 1
	}
	TRA(t0, t1, ctrl)
	return t0
}

// Xor computes a XOR b as (a AND NOT b) OR (NOT a AND b), the DCC-based
// recipe of §II-C1.
func Xor(a, b Row) Row {
	k := And(a, Not(b))
	kp := And(Not(a), b)
	return Or(k, kp)
}

// AndMulti reduces k operands with sequential two-operand ANDs — Ambit
// has no multi-operand primitive, which is the structural disadvantage
// Fig. 12 exposes.
func AndMulti(ops []Row) (Row, error) {
	if len(ops) == 0 {
		return nil, fmt.Errorf("ambit: no operands")
	}
	acc := Clone(ops[0])
	for _, o := range ops[1:] {
		acc = And(acc, o)
	}
	return acc, nil
}

// --- Cost model ---------------------------------------------------------

// Model converts AAP counts into cycles and energy under the Table II
// DRAM timings.
type Model struct {
	T params.DDRTimings
	E params.Energy
}

// NewModel returns the Table II DRAM cost model.
func NewModel(cfg params.Config) Model {
	return Model{T: cfg.Timing.DRAM, E: cfg.Energy}
}

// AAPCycles is one activate-activate-precharge sequence: two back-to-back
// activations sharing one precharge.
func (m Model) AAPCycles() int { return 2*m.T.TRAS + m.T.TRP }

// aapCost returns the cost of n AAPs.
func (m Model) aapCost(n int) trace.Cost {
	return trace.Cost{
		Cycles:   n * m.AAPCycles(),
		EnergyPJ: float64(2*n) * m.E.DRAMRowActPJ,
	}
}

// And2 returns the cost of one row-wide two-operand AND: four AAPs (two
// operand clones, the control row, and the TRA+result copy).
func (m Model) And2() trace.Cost { return m.aapCost(4) }

// Or2 returns the cost of one row-wide two-operand OR.
func (m Model) Or2() trace.Cost { return m.aapCost(4) }

// Not1 returns the cost of a row-wide NOT via a DCC row.
func (m Model) Not1() trace.Cost { return m.aapCost(2) }

// Xor2 returns the cost of a row-wide XOR: the k/k' AND pair plus the
// final OR, with DCC inversions (seven AAPs).
func (m Model) Xor2() trace.Cost { return m.aapCost(7) }

// AndMulti returns the cost of reducing k operands by sequential ANDs.
func (m Model) AndMulti(k int) trace.Cost { return m.And2().Scale(k - 1) }

// AddStep returns the cycles of one row-wide two-operand addition step
// built from the XOR/AND/OR carry recipe of Eq. 3. ELP²IM performs the
// same step in 40 cycles (§IV-A) and is 3.2× faster than Ambit on bulk
// operations; for the addition macro the gap narrows because both are
// dominated by the carry chain — calibrated to Table IV's BWN ratio
// (Ambit at ~0.9× of ELP²IM).
func (m Model) AddStep() trace.Cost {
	return trace.Cost{Cycles: 45, EnergyPJ: 8 * m.E.DRAMRowActPJ}
}
