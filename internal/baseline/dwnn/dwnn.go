// Package dwnn models DW-NN [7], the first DWM PIM proposal: operand
// bits are stored consecutively in a single nanowire and processed
// bit-serially through a stacked-domain GMR read that computes XOR, with
// a precharge sense amplifier (PCSA) deriving the carry (§II-C2).
//
// The per-operation costs are anchored to Table III's published 8-bit
// characterization (54 cycles / 40 pJ for a two-operand add, 163 cycles /
// 308 pJ for a multiply) and scale bit-serially with operand width.
package dwnn

import (
	"math"

	"repro/internal/trace"
)

// Table III anchors for 8-bit operations.
const (
	add2Cycles8  = 54
	add2PJ8      = 40.0
	add5AreaOpt8 = 264 // five-operand add, area-optimized (serial adds)
	add5LatOpt8  = 194 // five-operand add, latency-optimized (adder tree)
	add5PJ8      = 169.6
	mult2Cycles8 = 163
	mult2PJ8     = 308.0
)

// Areas in µm² (Table III).
const (
	AddAreaUM2       = 2.6
	AddLatOptAreaUM2 = 5.2
	MultAreaUM2      = 18.9
)

// Add2 returns the cost of a two-operand add of the given bit width:
// DW-NN is bit-serial (two XOR reads plus a PCSA carry compare and the
// alignment shifts per bit), so cycles and energy scale linearly.
func Add2(bits int) trace.Cost {
	return trace.Cost{
		Cycles:   add2Cycles8 * bits / 8,
		EnergyPJ: add2PJ8 * float64(bits) / 8,
	}
}

// Add5AreaOpt returns the cost of a five-operand add computed as four
// sequential two-operand adds on one processing element.
func Add5AreaOpt(bits int) trace.Cost {
	return trace.Cost{
		Cycles:   add5AreaOpt8 * bits / 8,
		EnergyPJ: add5PJ8 * float64(bits) / 8,
	}
}

// Add5LatOpt returns the cost of a five-operand add on replicated adder
// units (an adder tree): same energy, shorter critical path.
func Add5LatOpt(bits int) trace.Cost {
	return trace.Cost{
		Cycles:   add5LatOpt8 * bits / 8,
		EnergyPJ: add5PJ8 * float64(bits) / 8,
	}
}

// Mult2 returns the cost of a two-operand multiply: shift-and-add over
// the multiplier bits, quadratic in width.
func Mult2(bits int) trace.Cost {
	scale := float64(bits*bits) / 64
	return trace.Cost{
		Cycles:   int(math.Round(mult2Cycles8 * scale)),
		EnergyPJ: mult2PJ8 * scale,
	}
}
