package dwnn

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/params"
)

// Functional DW-NN adder (§II-C2): operand bits are stored in
// consecutive domains of single nanowires; each cycle the operand bits
// shift into alignment with the stacked-domain GMR port, which senses
// XOR (parallel magnetization → '0', anti-parallel → '1'), and a
// precharge sense amplifier derives the carry as the majority of
// A, B and C_in. The sum is two consecutive XORs.
//
// This model exists to demonstrate the baseline's dataflow bit-exactly;
// the cost figures come from the published Table III characterization.

// AddFunctional adds two values bit-serially through the GMR/PCSA
// dataflow, width bits wide, returning the (width+1)-bit sum.
func AddFunctional(a, b uint64, width int) (uint64, error) {
	if width < 1 || width > 63 {
		return 0, fmt.Errorf("dwnn: unsupported width %d", width)
	}
	// Operands live in two nanowires; bit i of each shifts under the
	// GMR stack at step i.
	wa, err := device.NewNanowire(width+1, params.TRD3)
	if err != nil {
		return 0, err
	}
	wb, err := device.NewNanowire(width+1, params.TRD3)
	if err != nil {
		return 0, err
	}
	for i := 0; i < width; i++ {
		wa.SetRow(i, device.Bit((a>>uint(i))&1))
		wb.SetRow(i, device.Bit((b>>uint(i))&1))
	}

	var sum uint64
	carry := device.Bit(0)
	for i := 0; i < width; i++ {
		sideA, _ := wa.NearestPort(i)
		if _, err := wa.Align(i, sideA); err != nil {
			return 0, err
		}
		sideB, _ := wb.NearestPort(i)
		if _, err := wb.Align(i, sideB); err != nil {
			return 0, err
		}
		ai := wa.ReadPort(sideA)
		bi := wb.ReadPort(sideB)
		// GMR stack: XOR of the two aligned domains.
		x := ai ^ bi
		// Second XOR against the carry gives the sum bit.
		s := x ^ carry
		// PCSA comparison PCSA(A,B,Cin) > PCSA(~A,~B,~Cin): majority.
		if int(ai)+int(bi)+int(carry) >= 2 {
			carry = 1
		} else {
			carry = 0
		}
		sum |= uint64(s) << uint(i)
	}
	sum |= uint64(carry) << uint(width)
	return sum, nil
}

// MultFunctional multiplies via DW-NN's shift-and-add over the
// multiplier bits (§II-C2: "multiplication is possible using addition
// of shifted versions of one operand").
func MultFunctional(a, b uint64, width int) (uint64, error) {
	if width < 1 || width > 31 {
		return 0, fmt.Errorf("dwnn: unsupported width %d", width)
	}
	var acc uint64
	for i := 0; i < width; i++ {
		if (b>>uint(i))&1 == 0 {
			continue
		}
		shifted := a << uint(i)
		s, err := AddFunctional(acc, shifted, 2*width)
		if err != nil {
			return 0, err
		}
		acc = s & (1<<uint(2*width) - 1)
	}
	return acc, nil
}
