// Package mem models the CORUSCANT main-memory organization (Fig. 2) at
// the system level: DDR3-1600 command timing for DRAM and DWM (Table II),
// row-granularity data movement inside the memory (RowClone-style
// copies), and the high-throughput PIM dispatch mode in which the memory
// controller issues cpim instructions round-robin across the PIM-enabled
// DBCs of every subarray (§V-C).
//
// The package provides the latency and energy accounting used by the
// Polybench (Fig. 10/11), bitmap-index (Fig. 12) and CNN (Table IV)
// experiments. Constants quoted from Table II are used directly;
// system-level calibration constants (issue gap, lane utilization, miss
// service time) are documented at their definitions.
package mem

import (
	"fmt"

	"repro/internal/params"
	"repro/internal/trace"
)

// Tech selects the memory technology being modelled.
type Tech int

// Supported memory technologies.
const (
	DRAM Tech = iota
	DWM
)

func (t Tech) String() string {
	if t == DRAM {
		return "DRAM"
	}
	return "DWM"
}

// System is the Table II machine: a 1 GB memory behind a 1000 MHz bus,
// with PIM-enabled DBCs in every subarray.
type System struct {
	Cfg params.Config

	// IssueGapCycles is the number of memory cycles the controller
	// spends issuing the multi-command sequence of one cpim instruction
	// in high-throughput mode (row activates, TR, write-back commands).
	// The queuing delay this creates dominates PIM runtime (§V-F:
	// "approximately 20% of the runtime [is compute] with 80% ...
	// coming from queuing delay").
	IssueGapCycles int

	// LaneUtilization is the average number of useful word lanes per
	// 512-bit PIM row operation. Perfect packing would give
	// 512/blocksize (16 for 32-bit words); compiler-laid-out but
	// imperfect traces reach most of that. Calibrated together with
	// IssueGapCycles so the system-level gains land on the paper's
	// Fig. 10/11 averages.
	LaneUtilization float64

	// MissServiceCycles is the memory-controller overhead (queuing,
	// bus turnaround, transfer) added to every row-buffer-missing CPU
	// access, in memory cycles.
	MissServiceCycles int

	// AvgShiftSteps is the average DWM shift distance per random row
	// access ("S" in Table II's 9-4-S-4-4), determined by data
	// placement; 4 matches the DBC's average port distance.
	AvgShiftSteps int
}

// NewSystem returns the Table II system model.
func NewSystem(cfg params.Config) *System {
	return &System{
		Cfg:               cfg,
		IssueGapCycles:    13,
		LaneUtilization:   13,
		MissServiceCycles: 16,
		AvgShiftSteps:     4,
	}
}

// timings returns the DDR timing tuple for the technology.
func (s *System) timings(t Tech) params.DDRTimings {
	if t == DRAM {
		return s.Cfg.Timing.DRAM
	}
	return s.Cfg.Timing.DWM
}

// RowAccessCycles returns the memory cycles for one row-buffer-missing
// access: activate (tRCD) + column access (tCAS) + restore (tRP for
// DRAM; the shift distance replaces precharge for DWM, §V-C).
func (s *System) RowAccessCycles(t Tech) int {
	tm := s.timings(t)
	shift := 0
	if t == DWM {
		shift = s.AvgShiftSteps
	}
	return tm.RowCycleRead(shift)
}

// MissLatencyNS returns the full service latency of a CPU cache miss.
func (s *System) MissLatencyNS(t Tech) float64 {
	return float64(s.RowAccessCycles(t)+s.MissServiceCycles) * s.Cfg.Timing.MemCycleNS
}

// CPU-side model constants. CoreNSPerOp covers the core pipeline plus
// on-chip cache hits for one arithmetic operation of a memory-bound
// kernel; MemLevelParallelism is the number of outstanding misses the
// core sustains. Together with the per-kernel off-chip traffic they are
// calibrated so the Fig. 10 latency gains land on the paper's 2.07×
// (DWM) / 2.20× (DRAM) averages.
const (
	lineBytes           = 64
	memLevelParallelism = 4
	coreNSPerOp         = 2.0
)

// CPUOpLatencyNS returns the average per-operation latency of executing
// a memory-bound kernel on the CPU: the off-chip miss traffic per
// operation (bytesPerOp over 64-byte lines) times the miss service
// latency — overlapped across MemLevelParallelism outstanding misses —
// plus the core-side cost.
func (s *System) CPUOpLatencyNS(t Tech, bytesPerOp float64) float64 {
	missesPerOp := bytesPerOp / lineBytes
	return missesPerOp*s.MissLatencyNS(t)/memLevelParallelism + coreNSPerOp
}

// PIMOpLatencyNS returns the average per-operation latency of the same
// kernel offloaded to PIM in high-throughput mode: instruction issue is
// the bottleneck (one cpim per IssueGapCycles), and each instruction
// covers LaneUtilization operations. Execution inside the 2048 PIM DBCs
// overlaps almost entirely with issue.
func (s *System) PIMOpLatencyNS(opDeviceCycles int) float64 {
	issueNS := float64(s.IssueGapCycles) * s.Cfg.Timing.MemCycleNS
	execNS := float64(opDeviceCycles) * s.Cfg.Timing.DeviceCycleNS / float64(s.Cfg.Geometry.PIMDBCs())
	perInstr := issueNS
	if execNS > issueNS {
		perInstr = execNS // execution-bound only for very long ops
	}
	return perInstr / s.LaneUtilization
}

// RowCopyCost returns the latency/energy of one in-memory row-to-row
// copy over the shared row buffer (RowClone [35] adapted to DWM): an
// activate-read of the source plus an activate-write of the destination.
func (s *System) RowCopyCost(t Tech) trace.Cost {
	tm := s.timings(t)
	shift := 0
	if t == DWM {
		shift = s.AvgShiftSteps
	}
	cycles := tm.RowCycleRead(shift) + tm.RowCycleWrite(shift)
	bits := float64(s.Cfg.Geometry.TrackWidth)
	var pj float64
	if t == DRAM {
		pj = s.Cfg.Energy.DRAMRowActPJ * 2
	} else {
		pj = bits * (s.Cfg.Energy.ReadPJ + s.Cfg.Energy.WritePJ + float64(shift)*s.Cfg.Energy.ShiftPJ)
	}
	return trace.Cost{Cycles: cycles, EnergyPJ: pj}
}

// BusTransferEnergyPJ returns the energy to move n bytes between the
// memory and the CPU (Table II: 1250 pJ/byte).
func (s *System) BusTransferEnergyPJ(n float64) float64 {
	return n * s.Cfg.Energy.TransPJPerB
}

// Validate reports model configuration errors.
func (s *System) Validate() error {
	if s.IssueGapCycles <= 0 {
		return fmt.Errorf("mem: non-positive issue gap %d", s.IssueGapCycles)
	}
	if s.LaneUtilization <= 0 {
		return fmt.Errorf("mem: non-positive lane utilization %v", s.LaneUtilization)
	}
	return s.Cfg.Validate()
}
