package mem

import (
	"testing"

	"repro/internal/params"
)

func TestRowAccessCycles(t *testing.T) {
	s := NewSystem(params.DefaultConfig())
	// Table II: DRAM 8+8+8 = 24 cycles; DWM 4+4 plus the average shift.
	if got := s.RowAccessCycles(DRAM); got != 24 {
		t.Errorf("DRAM row access = %d cycles, want 24", got)
	}
	if got := s.RowAccessCycles(DWM); got != 4+4+s.AvgShiftSteps {
		t.Errorf("DWM row access = %d cycles, want %d", got, 8+s.AvgShiftSteps)
	}
	// §V-C: DRAM is slower than DWM per access (precharge vs shift).
	if s.RowAccessCycles(DRAM) <= s.RowAccessCycles(DWM) {
		t.Error("DRAM access should exceed DWM access")
	}
}

func TestMissLatencyOrdering(t *testing.T) {
	s := NewSystem(params.DefaultConfig())
	if s.MissLatencyNS(DRAM) <= s.MissLatencyNS(DWM) {
		t.Error("DRAM miss latency should exceed DWM")
	}
}

func TestCPUOpLatencyMonotoneInTraffic(t *testing.T) {
	s := NewSystem(params.DefaultConfig())
	lo := s.CPUOpLatencyNS(DWM, 0.5)
	hi := s.CPUOpLatencyNS(DWM, 8)
	if lo >= hi {
		t.Errorf("latency not monotone in traffic: %v vs %v", lo, hi)
	}
	if lo < coreNSPerOp {
		t.Errorf("latency %v below the core floor %v", lo, coreNSPerOp)
	}
}

func TestPIMOpLatencyIssueBound(t *testing.T) {
	s := NewSystem(params.DefaultConfig())
	// A 64-cycle multiply spread over 2048 PIM DBCs executes far faster
	// than the controller can issue: latency is the issue gap divided by
	// lane utilization.
	want := float64(s.IssueGapCycles) * s.Cfg.Timing.MemCycleNS / s.LaneUtilization
	if got := s.PIMOpLatencyNS(64); got != want {
		t.Errorf("PIM op latency = %v, want issue-bound %v", got, want)
	}
	// §V-F: queuing (issue) delay dominates PIM runtime.
	exec := 64.0 / float64(s.Cfg.Geometry.PIMDBCs())
	if exec > float64(s.IssueGapCycles)*s.Cfg.Timing.MemCycleNS {
		t.Error("execution should overlap entirely with issue")
	}
}

func TestRowCopyCost(t *testing.T) {
	s := NewSystem(params.DefaultConfig())
	dwm := s.RowCopyCost(DWM)
	dram := s.RowCopyCost(DRAM)
	if dwm.Cycles <= 0 || dram.Cycles <= 0 {
		t.Error("non-positive copy cycles")
	}
	if dwm.EnergyPJ <= 0 || dram.EnergyPJ <= 0 {
		t.Error("non-positive copy energy")
	}
	// Spintronic row ops are much cheaper than DRAM activations.
	if dwm.EnergyPJ >= dram.EnergyPJ {
		t.Error("DWM row copy should cost less energy than DRAM")
	}
}

func TestBusTransferEnergy(t *testing.T) {
	s := NewSystem(params.DefaultConfig())
	// Table II: 1250 pJ per byte.
	if got := s.BusTransferEnergyPJ(4); got != 5000 {
		t.Errorf("4-byte transfer = %v pJ, want 5000", got)
	}
}

func TestSystemValidate(t *testing.T) {
	s := NewSystem(params.DefaultConfig())
	if err := s.Validate(); err != nil {
		t.Errorf("default system invalid: %v", err)
	}
	s.IssueGapCycles = 0
	if err := s.Validate(); err == nil {
		t.Error("zero issue gap accepted")
	}
	s = NewSystem(params.DefaultConfig())
	s.LaneUtilization = -1
	if err := s.Validate(); err == nil {
		t.Error("negative lane utilization accepted")
	}
}

func TestTechString(t *testing.T) {
	if DRAM.String() != "DRAM" || DWM.String() != "DWM" {
		t.Error("tech names wrong")
	}
}
