package service

import (
	"errors"
	"fmt"
	"net/http"

	"repro/internal/memory"
	"repro/internal/params"
	"repro/internal/pim"
	"repro/internal/resilient"
)

// Service-level sentinels: failures of the front end itself, as
// opposed to failures of the racetrack underneath. They join the
// façade taxonomy and round-trip through the wire envelope like the
// hardware sentinels do.
var (
	// ErrBadRequest marks a request the schema rejects before it
	// reaches a shard: malformed JSON, unknown op, missing fields.
	ErrBadRequest = errors.New("service: malformed request")
	// ErrQuota marks a request rejected by the tenant's token bucket.
	ErrQuota = errors.New("service: tenant quota exhausted")
	// ErrOverloaded marks a request rejected by admission control: the
	// target shard's queue is full. Clients should back off for the
	// envelope's retry_after_ms and retry.
	ErrOverloaded = errors.New("service: shard queue full")
	// ErrDraining marks a request arriving after graceful drain began;
	// the server finishes accepted work but admits nothing new.
	ErrDraining = errors.New("service: server draining")
)

// WireError is the stable error envelope every non-2xx response (and
// every failed batch item) carries. Code is the contract; Message is
// advisory human text and may change between releases.
type WireError struct {
	Code         string `json:"code"`
	Message      string `json:"message"`
	RetryAfterMS int    `json:"retry_after_ms,omitempty"`
}

// errorEnvelope is the non-2xx response body: {"error": {...}}.
type errorEnvelope struct {
	Error WireError `json:"error"`
}

// codings is the API error contract: one row per wire code, mapping a
// sentinel of the error taxonomy to its code and HTTP status. The
// table is ordered — the first sentinel that errors.Is-matches wins —
// and append-only within a schema version.
var codings = []struct {
	code     string
	sentinel error
	status   int
}{
	{"bad_request", ErrBadRequest, http.StatusBadRequest},
	{"bad_trd", params.ErrBadTRD, http.StatusBadRequest},
	{"lane_overflow", pim.ErrLaneOverflow, http.StatusBadRequest},
	{"shift_amount", pim.ErrShiftAmount, http.StatusBadRequest},
	{"cross_dbc", memory.ErrCrossDBC, http.StatusUnprocessableEntity},
	{"quarantined", memory.ErrQuarantined, http.StatusServiceUnavailable},
	{"unverified", resilient.ErrUnverified, http.StatusBadGateway},
	{"quota_exhausted", ErrQuota, http.StatusTooManyRequests},
	{"overloaded", ErrOverloaded, http.StatusTooManyRequests},
	{"draining", ErrDraining, http.StatusServiceUnavailable},
}

// encodeError maps an error onto (status, envelope). Errors outside
// the contract table become code "internal" with a generic message —
// the error text stays server-side, internals never leak onto the
// wire.
func encodeError(err error, retryAfterMS int) (int, WireError) {
	for _, c := range codings {
		if errors.Is(err, c.sentinel) {
			return c.status, WireError{Code: c.code, Message: err.Error(), RetryAfterMS: retryAfterMS}
		}
	}
	return http.StatusInternalServerError, WireError{Code: "internal", Message: "internal error"}
}

// APIError is a client-side decoded wire error. It unwraps to the
// sentinel its code names, so errors.Is(err, memory.ErrCrossDBC) holds
// across the wire exactly as in-process.
type APIError struct {
	Status       int // HTTP status, 0 for batch-item errors
	Code         string
	Message      string
	RetryAfterMS int
	sentinel     error
}

func (e *APIError) Error() string {
	return fmt.Sprintf("service: %s: %s", e.Code, e.Message)
}

// Unwrap exposes the sentinel behind the wire code (nil for codes the
// client does not know, e.g. "internal" or a future version's code).
func (e *APIError) Unwrap() error { return e.sentinel }

// decode turns a wire envelope back into an error carrying its
// sentinel.
func (we WireError) decode(status int) error {
	ae := &APIError{
		Status:       status,
		Code:         we.Code,
		Message:      we.Message,
		RetryAfterMS: we.RetryAfterMS,
	}
	for _, c := range codings {
		if c.code == we.Code {
			ae.sentinel = c.sentinel
			break
		}
	}
	return ae
}
