package service

import (
	"context"
	"errors"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// flushSink records whether the drain flushed it (Sink).
type flushSink struct{ closed atomic.Bool }

func (f *flushSink) Emit(telemetry.Event) {}
func (f *flushSink) Close() error         { f.closed.Store(true); return nil }

// TestGracefulDrain holds a request in an open coalescing window,
// drains the server mid-flight, and checks the drain contract: the
// in-flight batch completes and answers, later requests reject with
// ErrDraining/503, health flips to draining, accepted == completed
// (nothing admitted was lost), and the telemetry sinks flush.
func TestGracefulDrain(t *testing.T) {
	sink := &flushSink{}
	cfg := Config{
		Device: testConfig(t), Shards: 2, Telemetry: true,
		// A long window pins admitted work in the worker while the
		// drain starts; drain must still deliver it.
		CoalesceWindow: 150 * time.Millisecond, CoalesceMax: 64,
		Sinks: func(int) []telemetry.Sink { return []telemetry.Sink{sink} },
	}
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	api := NewClient(ts.URL, ts.Client())
	ctx := context.Background()
	shard := 0

	type outcome struct {
		resp *BatchResponse
		err  error
	}
	got := make(chan outcome, 1)
	go func() {
		resp, err := api.Batch(ctx, BatchRequest{Shard: &shard, Requests: []Request{
			{Op: "write", Dst: &Addr{Tile: 1}, Blocksize: 8, Values: []uint64{5, 6, 7, 8, 1, 2, 3, 4}},
			{Op: "read", Src: &Addr{Tile: 1}, Blocksize: 8},
		}})
		got <- outcome{resp, err}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for srv.Inflight() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if srv.Inflight() == 0 {
		t.Fatal("batch never admitted")
	}

	srv.Drain() // returns only after the in-flight window executed

	out := <-got
	if out.err != nil {
		t.Fatalf("in-flight batch lost to drain: %v", out.err)
	}
	if out.resp.Results[1].Values[0] != 5 {
		t.Fatalf("drained batch read lane 0 = %d, want 5", out.resp.Results[1].Values[0])
	}
	_, postErr := api.Execute(ctx, ExecuteRequest{Shard: &shard,
		Request: Request{Op: "read", Src: &Addr{Tile: 1}}})
	if !errors.Is(postErr, ErrDraining) {
		t.Fatalf("post-drain request err = %v, want ErrDraining", postErr)
	}
	var ae *APIError
	if !errors.As(postErr, &ae) || ae.Status != 503 {
		t.Fatalf("draining rejection = %+v, want status 503", ae)
	}
	h, err := api.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "draining" {
		t.Fatalf("health status = %q, want draining", h.Status)
	}
	c := srv.Counters()
	if c.Accepted == 0 || c.Accepted != c.Completed {
		t.Fatalf("accepted %d / completed %d after drain", c.Accepted, c.Completed)
	}
	if c.RejectedDraining == 0 {
		t.Fatal("draining rejection not counted")
	}
	if !sink.closed.Load() {
		t.Fatal("telemetry sink not flushed by drain")
	}
	// Drain is idempotent.
	srv.Drain()
}
