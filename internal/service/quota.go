package service

import (
	"sync"
	"time"
)

// quotas is the per-tenant token-bucket admission gate. Each tenant
// owns an independent bucket of `burst` tokens refilled at `rate`
// tokens/second; a request spends one token or is rejected with the
// time until the next token. rate <= 0 disables quotas entirely.
//
// Time is supplied by the owner (a monotonic clock), so tests drive
// the buckets deterministically.
type quotas struct {
	mu      sync.Mutex
	rate    float64 // tokens per second
	burst   float64
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newQuotas(rate float64, burst int) *quotas {
	if burst < 1 {
		burst = 1
	}
	return &quotas{rate: rate, burst: float64(burst), buckets: make(map[string]*bucket)}
}

// take spends one token from tenant's bucket at time now. On refusal
// it returns the wait until a token accrues — the Retry-After hint.
func (q *quotas) take(tenant string, now time.Time) (ok bool, retryAfter time.Duration) {
	if q == nil || q.rate <= 0 {
		return true, 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	b := q.buckets[tenant]
	if b == nil {
		b = &bucket{tokens: q.burst, last: now}
		q.buckets[tenant] = b
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * q.rate
		if b.tokens > q.burst {
			b.tokens = q.burst
		}
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	need := (1 - b.tokens) / q.rate
	return false, time.Duration(need * float64(time.Second))
}
