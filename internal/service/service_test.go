package service

import (
	"context"
	"net/http/httptest"
	"testing"

	"repro/internal/memory"
	"repro/internal/params"
	"repro/internal/pim"
)

// testConfig is the small soak geometry: 4 banks so tests can spread
// clients, narrow tracks so rows stay cheap.
func testConfig(t *testing.T) params.Config {
	t.Helper()
	cfg := params.DefaultConfig()
	cfg.Geometry.Banks = 4
	cfg.Geometry.SubarraysPerBank = 2
	cfg.Geometry.TrackWidth = 64
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	return cfg
}

// startServer spins a server and an httptest front end, torn down in
// order (listener first, then drain) at cleanup.
func startServer(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	cfg.Device = testConfig(t)
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Drain()
	})
	return srv, NewClient(ts.URL, ts.Client())
}

func TestExecuteRoundTrip(t *testing.T) {
	srv, api := startServer(t, Config{Shards: 2})
	ctx := context.Background()

	// Write two operand rows, add them in the PIM DBC, read the result
	// back — and check the served bits against a direct serial run.
	a := Addr{Bank: 1, Tile: 1, DBC: 0, Row: 0}
	b := Addr{Bank: 1, Tile: 1, DBC: 0, Row: 1}
	dst := Addr{Bank: 1, Tile: 2, DBC: 0, Row: 0}
	pimDBC := Addr{Bank: 1, Tile: 0, DBC: 15}
	va := []uint64{3, 250, 7, 9, 11, 13, 15, 17}
	vb := []uint64{10, 20, 30, 40, 50, 60, 70, 80}
	shard := 1

	for _, req := range []Request{
		{Op: "write", Dst: &a, Blocksize: 8, Values: va},
		{Op: "write", Dst: &b, Blocksize: 8, Values: vb},
	} {
		if _, err := api.Execute(ctx, ExecuteRequest{Shard: &shard, Request: req}); err != nil {
			t.Fatal(err)
		}
	}
	got, err := api.Execute(ctx, ExecuteRequest{Shard: &shard, Request: Request{
		Op: "add", Src: &pimDBC, Blocksize: 8, Operands: []Addr{a, b}, Dst: &dst,
	}})
	if err != nil {
		t.Fatal(err)
	}
	for i := range va {
		want := (va[i] + vb[i]) & 0xff
		if got.Values[i] != want {
			t.Fatalf("lane %d = %d, want %d", i, got.Values[i], want)
		}
	}

	// The read must return the stored result bit-for-bit vs a serial
	// in-process run of the same ops.
	rd, err := api.Execute(ctx, ExecuteRequest{Shard: &shard, Request: Request{Op: "read", Src: &dst}})
	if err != nil {
		t.Fatal(err)
	}
	mirror, err := memory.New(srv.cfg.Device)
	if err != nil {
		t.Fatal(err)
	}
	rowA, _ := pim.PackLanes(va, 8, 64)
	rowB, _ := pim.PackLanes(vb, 8, 64)
	if err := mirror.WriteRow(a.isa(), rowA); err != nil {
		t.Fatal(err)
	}
	if err := mirror.WriteRow(b.isa(), rowB); err != nil {
		t.Fatal(err)
	}
	mreq, err := Request{Op: "add", Src: &pimDBC, Blocksize: 8, Operands: []Addr{a, b}, Dst: &dst}.toMemory(srv.cfg.Device, pim.PackLanes)
	if err != nil {
		t.Fatal(err)
	}
	if res := mirror.ExecuteBatch([]memory.Request{mreq}); res[0].Err != nil {
		t.Fatal(res[0].Err)
	}
	want, err := mirror.ReadRow(dst.isa())
	if err != nil {
		t.Fatal(err)
	}
	gotRow, err := rd.Row.row()
	if err != nil {
		t.Fatal(err)
	}
	if gotRow.N != want.N || len(gotRow.Words) != len(want.Words) {
		t.Fatalf("row shape %d/%d, want %d/%d", gotRow.N, len(gotRow.Words), want.N, len(want.Words))
	}
	for i := range want.Words {
		if gotRow.Words[i] != want.Words[i] {
			t.Fatalf("word %d = %#x, want %#x", i, gotRow.Words[i], want.Words[i])
		}
	}
}

func TestBatchAndCompile(t *testing.T) {
	_, api := startServer(t, Config{Shards: 1})
	ctx := context.Background()
	shard := 0

	// Seed rows for the compiled kernel and batch. Multiplicative ops
	// want operands within blocksize/2 bits, so keep values under 16.
	for r := 0; r < 3; r++ {
		vals := make([]uint64, 8)
		for i := range vals {
			vals[i] = uint64((r*8+i)%13 + 1)
		}
		if _, err := api.Execute(ctx, ExecuteRequest{Shard: &shard, Request: Request{
			Op: "write", Dst: &Addr{Tile: 1, DBC: 0, Row: r}, Blocksize: 8, Values: vals,
		}}); err != nil {
			t.Fatal(err)
		}
	}

	pimDBC := Addr{Tile: 0, DBC: 15}
	resp, err := api.Batch(ctx, BatchRequest{Shard: &shard, Requests: []Request{
		{Op: "mult", Src: &pimDBC, Blocksize: 8,
			Operands: []Addr{{Tile: 1, DBC: 0, Row: 0}, {Tile: 1, DBC: 0, Row: 1}},
			Dst:      &Addr{Tile: 2, DBC: 0, Row: 0}},
		{Op: "read", Src: &Addr{Tile: 2, DBC: 0, Row: 0}, Blocksize: 8},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 2 {
		t.Fatalf("results = %d, want 2", len(resp.Results))
	}
	for i, item := range resp.Results {
		if e := item.Err(); e != nil {
			t.Fatalf("item %d: %v", i, e)
		}
	}
	// mult then read must agree: lane 0 is 1 * 9.
	if resp.Results[1].Values[0] != 9 {
		t.Fatalf("read lane 0 = %d, want 9", resp.Results[1].Values[0])
	}

	cres, err := api.Compile(ctx, CompileRequest{Shard: &shard, Level: 2, Source: `
%x = load b0.s0.t1.d0.r0
%w = load b0.s0.t1.d0.r1
%b = load b0.s0.t1.d0.r2
%y = fma %x, %w, %b bs=8
store %y, b0.s0.t2.d1.r0
`})
	if err != nil {
		t.Fatal(err)
	}
	if len(cres.Outputs) != 1 {
		t.Fatalf("outputs = %d, want 1", len(cres.Outputs))
	}
	// fma lane 0: 1*9 + 4 = 13.
	if cres.Outputs[0].Values[0] != 13 {
		t.Fatalf("compiled fma lane 0 = %d, want 13", cres.Outputs[0].Values[0])
	}
}

func TestHealthAndRouting(t *testing.T) {
	_, api := startServer(t, Config{Shards: 3})
	h, err := api.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Shards != 3 || h.Version != APIVersion {
		t.Fatalf("health = %+v", h)
	}
	if h.Geometry.Banks != 4 || h.Geometry.TrackWidth != 64 {
		t.Fatalf("geometry = %+v", h.Geometry)
	}
	// An out-of-range explicit shard is a schema error.
	bad := 9
	_, err = api.Execute(context.Background(), ExecuteRequest{Shard: &bad, Request: Request{Op: "read", Src: &Addr{Tile: 1}}})
	if err == nil {
		t.Fatal("shard 9 of 3 accepted")
	}
}
