package service

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/isa/compile"
	"repro/internal/memory"
	"repro/internal/params"
	"repro/internal/pim"
)

// LoadConfig shapes a RunLoad soak: concurrent clients firing a mixed
// stream of bulk-bitwise/arithmetic executes, multi-op batches, row
// writes, spot-check reads and compiled CNN-style kernels at a
// coruscantd, each client verifying every byte it reads against a
// private serial mirror of its slice of the memory.
type LoadConfig struct {
	// Base is the server address ("http://127.0.0.1:7917").
	Base string
	// Device must equal the server's device configuration — each
	// client replays its traffic on a serial mirror built from it, and
	// every read is compared bit-for-bit against the mirror.
	Device params.Config
	// Shards must equal the server's shard count; clients spread
	// round-robin across shards and use disjoint banks within a shard.
	Shards int
	// Clients is the number of concurrent clients (default 4).
	Clients int
	// Requests is the request count per client (default 100).
	Requests int
	// Blocksize is the lane width of the generated arithmetic
	// (default 8).
	Blocksize int
	// CompileEvery makes every n-th request a compiled pimasm kernel
	// (0 disables compile traffic; default 16).
	CompileEvery int
	// Seed makes the whole soak deterministic.
	Seed int64
	// MaxRetries bounds the 429-retry loop per request (default 400).
	MaxRetries int
	// Tenant labels requests; each client appends its index, so quota
	// buckets are per client.
	Tenant string
}

func (c *LoadConfig) fill() {
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.Clients <= 0 {
		c.Clients = 4
	}
	if c.Requests <= 0 {
		c.Requests = 100
	}
	if c.Blocksize <= 0 {
		c.Blocksize = 8
	}
	if c.CompileEvery < 0 {
		c.CompileEvery = 0
	} else if c.CompileEvery == 0 {
		c.CompileEvery = 16
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 400
	}
	if c.Tenant == "" {
		c.Tenant = "load"
	}
}

// LoadReport is the outcome of a soak.
type LoadReport struct {
	Clients   int
	Sent      uint64 // requests that eventually got a 200
	BitChecks uint64 // rows compared bit-for-bit against the mirror
	Mismatch  uint64 // rows that differed (must be 0)
	Errors    uint64 // non-backpressure failures

	QuotaRejected    uint64 // 429 quota_exhausted rejections observed
	OverloadRejected uint64 // 429 overloaded rejections observed
	Retries          uint64 // backoff-and-retry cycles taken

	P50, P95 time.Duration // per-request latency over successful calls
	Elapsed  time.Duration
	ReqPerS  float64
}

// clientState is one soak client: a deterministic traffic source over
// its private bank slice, with a serial mirror for bit-identity.
type clientState struct {
	id     int
	shard  int
	bank   int
	tenant string
	rng    *rand.Rand
	mirror *memory.Memory
	cfg    *LoadConfig

	lat []time.Duration
	rep LoadReport
}

// RunLoad drives the soak and aggregates the per-client reports. A
// non-zero Mismatch means the service diverged from serial execution —
// the one thing the whole design promises cannot happen.
func RunLoad(ctx context.Context, cfg LoadConfig) (*LoadReport, error) {
	cfg.fill()
	g := cfg.Device.Geometry
	banksPerShard := g.Banks
	if maxClients := cfg.Shards * banksPerShard; cfg.Clients > maxClients {
		return nil, fmt.Errorf("service: %d clients exceed %d shards x %d banks", cfg.Clients, cfg.Shards, banksPerShard)
	}
	clients := make([]*clientState, cfg.Clients)
	for i := range clients {
		mirror, err := memory.New(cfg.Device)
		if err != nil {
			return nil, err
		}
		clients[i] = &clientState{
			id:     i,
			shard:  i % cfg.Shards,
			bank:   (i / cfg.Shards) % banksPerShard,
			tenant: fmt.Sprintf("%s-%d", cfg.Tenant, i),
			rng:    rand.New(rand.NewSource(cfg.Seed + int64(i)*7919)),
			mirror: mirror,
			cfg:    &cfg,
		}
	}
	start := time.Now()
	var wg sync.WaitGroup
	wg.Add(len(clients))
	for _, c := range clients {
		go func(c *clientState) {
			defer wg.Done()
			c.run(ctx)
		}(c)
	}
	wg.Wait()

	total := LoadReport{Clients: cfg.Clients, Elapsed: time.Since(start)}
	var lats []time.Duration
	for _, c := range clients {
		total.Sent += c.rep.Sent
		total.BitChecks += c.rep.BitChecks
		total.Mismatch += c.rep.Mismatch
		total.Errors += c.rep.Errors
		total.QuotaRejected += c.rep.QuotaRejected
		total.OverloadRejected += c.rep.OverloadRejected
		total.Retries += c.rep.Retries
		lats = append(lats, c.lat...)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	if n := len(lats); n > 0 {
		total.P50 = lats[n/2]
		total.P95 = lats[n*95/100]
		total.ReqPerS = float64(total.Sent) / total.Elapsed.Seconds()
	}
	return &total, nil
}

// addr forms an address in the client's private bank.
func (c *clientState) addr(tile, dbcIdx, row int) Addr {
	return Addr{Bank: c.bank, Subarray: 0, Tile: tile, DBC: dbcIdx, Row: row}
}

// pimAddr is the client's bank's PIM-enabled DBC (§III-A: last
// PIMDBCsPerTile DBCs of the first PIM tile execute in place).
func (c *clientState) pimAddr() Addr {
	g := c.cfg.Device.Geometry
	return Addr{Bank: c.bank, Subarray: 0, Tile: 0, DBC: g.DBCsPerTile - g.PIMDBCsPerTile, Row: 0}
}

// lanes draws a full track of random lane values, masked to half the
// blocksize so multiplicative ops (mult, fma) never overflow a lane.
func (c *clientState) lanes() []uint64 {
	g := c.cfg.Device.Geometry
	n := g.TrackWidth / c.cfg.Blocksize
	vals := make([]uint64, n)
	mask := uint64(1)<<uint(c.cfg.Blocksize/2) - 1
	for i := range vals {
		vals[i] = c.rng.Uint64() & mask
	}
	return vals
}

var execOps = []string{"add", "mult", "and", "xor", "max", "or"}

// run fires the client's request stream: writes seed rows, executes
// combine them, batches mix several ops, reads spot-check rows against
// the mirror, and every CompileEvery-th request compiles a CNN-style
// fma+max kernel over the client's rows.
func (c *clientState) run(ctx context.Context) {
	api := NewClient(c.cfg.Base, nil)
	bs := c.cfg.Blocksize
	// Seed rows 0..3 of the data DBC so executes always have operands.
	for r := 0; r < 4; r++ {
		c.execute(ctx, api, Request{Op: "write", Dst: ptr(c.addr(1, 0, r)), Blocksize: bs, Values: c.lanes()})
	}
	for i := 4; i < c.cfg.Requests; i++ {
		if ctx.Err() != nil {
			return
		}
		if c.cfg.CompileEvery > 0 && i%c.cfg.CompileEvery == 0 {
			c.compileKernel(ctx, api)
			continue
		}
		switch i % 4 {
		case 0: // refresh a seed row
			c.execute(ctx, api, Request{Op: "write", Dst: ptr(c.addr(1, 0, c.rng.Intn(4))), Blocksize: bs, Values: c.lanes()})
		case 1: // bulk-bitwise / arithmetic execute into a result row
			op := execOps[c.rng.Intn(len(execOps))]
			a, b := c.rng.Intn(4), c.rng.Intn(4)
			c.execute(ctx, api, Request{
				Op: op, Src: ptr(c.pimAddr()), Blocksize: bs,
				Operands: []Addr{c.addr(1, 0, a), c.addr(1, 0, b)},
				Dst:      ptr(c.addr(2, 0, 4+c.rng.Intn(4))),
			})
		case 2: // multi-op batch: two executes feeding a read-back
			op := execOps[c.rng.Intn(len(execOps))]
			dst := c.addr(2, 0, 8+c.rng.Intn(4))
			c.batch(ctx, api, []Request{
				{Op: op, Src: ptr(c.pimAddr()), Blocksize: bs,
					Operands: []Addr{c.addr(1, 0, c.rng.Intn(4)), c.addr(1, 0, c.rng.Intn(4))}, Dst: ptr(dst)},
				{Op: "add", Src: ptr(c.pimAddr()), Blocksize: bs,
					Operands: []Addr{dst, c.addr(1, 0, c.rng.Intn(4))}, Dst: ptr(c.addr(2, 0, 12))},
				{Op: "read", Src: ptr(c.addr(2, 0, 12))},
			})
		case 3: // spot-check read of a random touched row
			c.execute(ctx, api, Request{Op: "read", Src: ptr(c.addr(1, 0, c.rng.Intn(4)))})
		}
	}
}

func ptr[T any](v T) *T { return &v }

// backoff classifies a request error: backpressure rejections are
// counted, slept through and retried; anything else is terminal for
// the request.
func (c *clientState) backoff(err error) (retry bool) {
	var ae *APIError
	switch {
	case errors.Is(err, ErrQuota):
		c.rep.QuotaRejected++
	case errors.Is(err, ErrOverloaded):
		c.rep.OverloadRejected++
	case errors.Is(err, ErrDraining):
		c.rep.Errors++
		return false
	default:
		c.rep.Errors++
		return false
	}
	c.rep.Retries++
	wait := 2 * time.Millisecond
	if errors.As(err, &ae) && ae.RetryAfterMS > 0 {
		wait = time.Duration(ae.RetryAfterMS) * time.Millisecond
		if wait > 250*time.Millisecond {
			wait = 250 * time.Millisecond
		}
	}
	time.Sleep(wait)
	return true
}

// mirrorRun replays the lowered requests on the serial mirror.
func (c *clientState) mirrorRun(reqs []Request) []memory.Result {
	mreqs := make([]memory.Request, len(reqs))
	for i, wr := range reqs {
		mr, err := wr.toMemory(c.cfg.Device, pim.PackLanes)
		if err != nil {
			c.rep.Errors++
			return nil
		}
		mreqs[i] = mr
	}
	return c.mirror.ExecuteBatch(mreqs)
}

// check compares a served row against the mirror's, bit for bit.
func (c *clientState) check(got RowData, want memory.Result) {
	c.rep.BitChecks++
	if want.Err != nil {
		c.rep.Mismatch++
		return
	}
	row, err := got.row()
	if err != nil || row.N != want.Row.N || len(row.Words) != len(want.Row.Words) {
		c.rep.Mismatch++
		return
	}
	for i := range row.Words {
		if row.Words[i] != want.Row.Words[i] {
			c.rep.Mismatch++
			return
		}
	}
}

// execute sends one request with retry-on-backpressure, mirrors it,
// and bit-checks any returned row.
func (c *clientState) execute(ctx context.Context, api *Client, req Request) {
	ereq := ExecuteRequest{Tenant: c.tenant, Shard: ptr(c.shard), Request: req}
	for attempt := 0; attempt <= c.cfg.MaxRetries; attempt++ {
		t0 := time.Now()
		resp, err := api.Execute(ctx, ereq)
		if err != nil {
			if c.backoff(err) && ctx.Err() == nil {
				continue
			}
			return
		}
		c.lat = append(c.lat, time.Since(t0))
		c.rep.Sent++
		want := c.mirrorRun([]Request{req})
		if want == nil {
			return
		}
		c.check(resp.Row, want[0])
		return
	}
	c.rep.Errors++ // retry budget exhausted
}

// batch sends a multi-op batch, mirrors it, and bit-checks every item.
func (c *clientState) batch(ctx context.Context, api *Client, reqs []Request) {
	breq := BatchRequest{Tenant: c.tenant, Shard: ptr(c.shard), Requests: reqs}
	for attempt := 0; attempt <= c.cfg.MaxRetries; attempt++ {
		t0 := time.Now()
		resp, err := api.Batch(ctx, breq)
		if err != nil {
			if c.backoff(err) && ctx.Err() == nil {
				continue
			}
			return
		}
		c.lat = append(c.lat, time.Since(t0))
		c.rep.Sent++
		want := c.mirrorRun(reqs)
		if want == nil {
			return
		}
		for i, item := range resp.Results {
			if item.Error != nil {
				if want[i].Err == nil {
					c.rep.Mismatch++
				}
				continue
			}
			if item.Row != nil {
				c.check(*item.Row, want[i])
			}
		}
		return
	}
	c.rep.Errors++
}

// compileKernel runs the CNN-style kernel — a fused multiply-add over
// an input and weight row plus a bias, rectified by max — through
// /v1/compile, then replays the same compile on the mirror and
// bit-checks every output row.
func (c *clientState) compileKernel(ctx context.Context, api *Client) {
	bs := c.cfg.Blocksize
	src := fmt.Sprintf(`; cnn-ish: y = max(fma(x, w, b), x)
%%x = load b%[1]d.s0.t1.d0.r0
%%w = load b%[1]d.s0.t1.d0.r1
%%b = load b%[1]d.s0.t1.d0.r2
%%y = fma %%x, %%w, %%b bs=%[2]d
%%r = max %%y, %%x bs=%[2]d
store %%r, b%[1]d.s0.t2.d1.r0
store %%y, b%[1]d.s0.t2.d1.r1
`, c.bank, bs)
	creq := CompileRequest{Tenant: c.tenant, Shard: ptr(c.shard), Source: src, Level: 2}
	for attempt := 0; attempt <= c.cfg.MaxRetries; attempt++ {
		t0 := time.Now()
		resp, err := api.Compile(ctx, creq)
		if err != nil {
			if c.backoff(err) && ctx.Err() == nil {
				continue
			}
			return
		}
		c.lat = append(c.lat, time.Since(t0))
		c.rep.Sent++
		res, err := compile.Compile(src, c.cfg.Device, compile.Options{Level: 2})
		if err != nil {
			c.rep.Errors++
			return
		}
		if err := res.Plan.Run(c.mirror); err != nil {
			c.rep.Errors++
			return
		}
		for _, out := range resp.Outputs {
			row, err := c.mirror.ReadRow(out.Addr.isa())
			if err != nil {
				c.rep.Mismatch++
				continue
			}
			c.check(out.Row, memory.Result{Row: row})
		}
		return
	}
	c.rep.Errors++
}
