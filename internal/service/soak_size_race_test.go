//go:build race

package service

// Race-detector builds scale the soak down: the instrumentation costs
// ~10x, and the race coverage does not grow with the request count.
const (
	soakClients           = 4
	soakRequestsPerClient = 120
	// Instrumented clients are slow, so the quota must be tight for
	// rejections to occur at all.
	soakQuotaRate  = 90
	soakQuotaBurst = 2
)
