package service

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/memory"
	"repro/internal/params"
	"repro/internal/pim"
	"repro/internal/resilient"
)

// TestErrorContractRoundTrip is the API error contract: every exported
// sentinel of the taxonomy encodes to its documented (code, status)
// and — decoded client-side from the envelope — still satisfies
// errors.Is against the original sentinel.
func TestErrorContractRoundTrip(t *testing.T) {
	cases := []struct {
		sentinel error
		code     string
		status   int
	}{
		{ErrBadRequest, "bad_request", http.StatusBadRequest},
		{params.ErrBadTRD, "bad_trd", http.StatusBadRequest},
		{pim.ErrLaneOverflow, "lane_overflow", http.StatusBadRequest},
		{pim.ErrShiftAmount, "shift_amount", http.StatusBadRequest},
		{memory.ErrCrossDBC, "cross_dbc", http.StatusUnprocessableEntity},
		{memory.ErrQuarantined, "quarantined", http.StatusServiceUnavailable},
		{resilient.ErrUnverified, "unverified", http.StatusBadGateway},
		{ErrQuota, "quota_exhausted", http.StatusTooManyRequests},
		{ErrOverloaded, "overloaded", http.StatusTooManyRequests},
		{ErrDraining, "draining", http.StatusServiceUnavailable},
	}
	for _, c := range cases {
		t.Run(c.code, func(t *testing.T) {
			// Wrapped the way handlers produce them.
			wrapped := errors.Join(errors.New("context"), c.sentinel)
			status, we := encodeError(wrapped, 0)
			if status != c.status || we.Code != c.code {
				t.Fatalf("encode = (%d, %q), want (%d, %q)", status, we.Code, c.status, c.code)
			}
			// Serialize through the literal envelope JSON, as the wire does.
			raw, err := json.Marshal(errorEnvelope{Error: we})
			if err != nil {
				t.Fatal(err)
			}
			var env errorEnvelope
			if err := json.Unmarshal(raw, &env); err != nil {
				t.Fatal(err)
			}
			decoded := env.Error.decode(status)
			if !errors.Is(decoded, c.sentinel) {
				t.Fatalf("decoded %v does not errors.Is its sentinel", decoded)
			}
			var ae *APIError
			if !errors.As(decoded, &ae) || ae.Status != status || ae.Code != c.code {
				t.Fatalf("decoded APIError = %+v", ae)
			}
		})
	}
}

// TestErrorContractOverWire drives a representative subset end to end
// through real handlers and the real client, so the contract holds on
// the wire and not just in the codec.
func TestErrorContractOverWire(t *testing.T) {
	srv, api := startServer(t, Config{Shards: 1, QuotaRate: 0.001, QuotaBurst: 1})
	ctx := context.Background()
	shard := 0

	// cross_dbc: operand in a different bank than the executing DBC.
	// (Distinct tenants per probe — the quota config below is per
	// tenant, burst 1.)
	_, err := api.Execute(ctx, ExecuteRequest{Tenant: "t-cross", Shard: &shard, Request: Request{
		Op: "add", Src: &Addr{Tile: 0, DBC: 15}, Blocksize: 8,
		Operands: []Addr{{Bank: 2, Tile: 1}}, Dst: &Addr{Tile: 2},
	}})
	if !errors.Is(err, memory.ErrCrossDBC) {
		t.Fatalf("cross-bank operand err = %v, want ErrCrossDBC", err)
	}

	// lane_overflow: a write whose values exceed the lane width.
	_, err = api.Execute(ctx, ExecuteRequest{Tenant: "t-overflow", Shard: &shard, Request: Request{
		Op: "write", Dst: &Addr{Tile: 1}, Blocksize: 8, Values: []uint64{1 << 20},
	}})
	if !errors.Is(err, pim.ErrLaneOverflow) {
		t.Fatalf("overflow write err = %v, want ErrLaneOverflow", err)
	}

	// bad_request: malformed JSON and unknown fields both reject.
	resp, err := http.Post(api.base+PathExecute, "application/json", strings.NewReader(`{"op": `))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("truncated JSON status = %d, want 400", resp.StatusCode)
	}
	resp, err = http.Post(api.base+PathExecute, "application/json", strings.NewReader(`{"op":"read","surprise":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown-field status = %d, want 400", resp.StatusCode)
	}

	// quota_exhausted: burst 1 at ~0 refill — the second call rejects
	// with Retry-After populated.
	for i := 0; i < 2; i++ {
		_, err = api.Execute(ctx, ExecuteRequest{Tenant: "starved", Shard: &shard,
			Request: Request{Op: "read", Src: &Addr{Tile: 1}}})
	}
	if !errors.Is(err, ErrQuota) {
		t.Fatalf("second call err = %v, want ErrQuota", err)
	}
	var ae *APIError
	if !errors.As(err, &ae) || ae.RetryAfterMS <= 0 {
		t.Fatalf("quota rejection lacks retry hint: %+v", ae)
	}
	if srv.Counters().RejectedQuota == 0 {
		t.Fatal("quota rejection not counted")
	}
}

// TestUnknownErrorsDoNotLeak: an error outside the contract table maps
// to a 500 with code "internal" and a generic message — the internal
// error text must not cross the wire.
func TestUnknownErrorsDoNotLeak(t *testing.T) {
	secret := errors.New("connstring password=hunter2")
	rec := httptest.NewRecorder()
	writeError(rec, secret, 0)
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rec.Code)
	}
	body := rec.Body.String()
	if strings.Contains(body, "hunter2") || strings.Contains(body, "connstring") {
		t.Fatalf("internal detail leaked: %s", body)
	}
	var env errorEnvelope
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Code != "internal" || env.Error.Message != "internal error" {
		t.Fatalf("envelope = %+v", env.Error)
	}
	// Client-side, an unknown code decodes to an APIError with no
	// sentinel — errors.Is matches nothing in the taxonomy.
	decoded := env.Error.decode(rec.Code)
	for _, s := range []error{ErrBadRequest, ErrQuota, ErrOverloaded, ErrDraining, memory.ErrCrossDBC} {
		if errors.Is(decoded, s) {
			t.Fatalf("unknown code spuriously matches %v", s)
		}
	}
}
