// Package service is the PIM-as-a-service front end: the versioned
// HTTP/JSON request schema, the coruscantd server that owns a
// memory.Pool of shards behind admission control, per-tenant quotas,
// request coalescing and graceful drain, and the typed client that
// maps the wire error envelope back onto the façade's sentinel error
// taxonomy.
//
// # Wire schema and versioning policy
//
// Every endpoint lives under a version prefix (/v1/execute, /v1/batch,
// /v1/compile, /v1/health, /v1/metrics). Within a version the schema
// only grows: new optional request fields and new response fields are
// backwards compatible; renaming or re-typing a field, changing an
// error code, or changing a status mapping is a breaking change and
// bumps the prefix to /v2 (serving /v1 beside it until retired).
// Unknown request fields are rejected (DisallowUnknownFields), so a
// client built against a newer minor schema fails loudly against an
// older server instead of being silently misread.
//
// Failures are reported through a stable error envelope:
//
//	{"error": {"code": "cross_dbc", "message": "...", "retry_after_ms": 0}}
//
// The code set is part of the API contract (see errors.go): each code
// maps 1:1 onto one exported sentinel of the façade taxonomy, so a
// client-side errors.Is works across the wire exactly as it does
// in-process. Unrecognized internal errors map to code "internal" and
// status 500 with a generic message — internals never leak.
package service

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/dbc"
	"repro/internal/isa"
	"repro/internal/memory"
	"repro/internal/params"
)

// APIVersion is the served wire-schema version.
const APIVersion = "v1"

// Endpoint paths of the current schema version.
const (
	PathExecute = "/v1/execute"
	PathBatch   = "/v1/batch"
	PathCompile = "/v1/compile"
	PathHealth  = "/v1/health"
	PathMetrics = "/v1/metrics"
)

// Addr locates a row in a shard's memory hierarchy — the wire form of
// isa.Addr, with stable lowercase field names.
type Addr struct {
	Bank     int `json:"bank"`
	Subarray int `json:"subarray"`
	Tile     int `json:"tile"`
	DBC      int `json:"dbc"`
	Row      int `json:"row"`
}

func (a Addr) isa() isa.Addr {
	return isa.Addr{Bank: a.Bank, Subarray: a.Subarray, Tile: a.Tile, DBC: a.DBC, Row: a.Row}
}

func wireAddr(a isa.Addr) Addr {
	return Addr{Bank: a.Bank, Subarray: a.Subarray, Tile: a.Tile, DBC: a.DBC, Row: a.Row}
}

// RowData is a row bit vector on the wire: n wires packed
// little-endian into 64-bit words, each word a hex string (JSON
// numbers cannot carry 64 bits losslessly).
type RowData struct {
	N     int      `json:"n"`
	Words []string `json:"words"`
}

func rowData(r dbc.Row) RowData {
	rd := RowData{N: r.N, Words: make([]string, len(r.Words))}
	for i, w := range r.Words {
		rd.Words[i] = "0x" + strconv.FormatUint(w, 16)
	}
	return rd
}

func (rd RowData) row() (dbc.Row, error) {
	if rd.N < 0 || len(rd.Words) != (rd.N+63)/64 {
		return dbc.Row{}, fmt.Errorf("row of %d wires wants %d words, got %d",
			rd.N, (rd.N+63)/64, len(rd.Words))
	}
	words := make([]uint64, len(rd.Words))
	for i, s := range rd.Words {
		w, err := strconv.ParseUint(strings.TrimPrefix(s, "0x"), 16, 64)
		if err != nil {
			return dbc.Row{}, fmt.Errorf("row word %d: %v", i, err)
		}
		words[i] = w
	}
	r := dbc.Row{N: rd.N, Words: words}
	r.MaskTail()
	return r, nil
}

// Request is one operation of an execute or batch call. Op selects the
// shape:
//
//   - a cpim mnemonic ("add", "mult", "max", "relu", "vote", "div",
//     "mod", "shl", "shr", "fma", "and", "or", "nand", "nor", "xor",
//     "xnor", "not") executes in the PIM-enabled DBC at Src, reading
//     Operands and writing the result row to Dst;
//   - "write" stores Row (or Values packed into Blocksize-bit lanes)
//     at Dst;
//   - "copy" moves the row at Src to Dst over the bank row buffer;
//   - "read" returns the row at Src.
type Request struct {
	Op        string   `json:"op"`
	Src       *Addr    `json:"src,omitempty"`
	Operands  []Addr   `json:"operands,omitempty"`
	Dst       *Addr    `json:"dst,omitempty"`
	Blocksize int      `json:"blocksize,omitempty"`
	Imm       int      `json:"imm,omitempty"`
	Row       *RowData `json:"row,omitempty"`
	// Values is the write payload as lane values: packed into
	// Blocksize-bit lanes across the track (pim.PackLanes). Ignored
	// when Row is set.
	Values []uint64 `json:"values,omitempty"`
}

// toMemory lowers a wire request onto the memory batch request it
// means. Validation beyond shape (geometry, bank-staging, lane
// overflow) happens inside the memory layer, so the service maps its
// sentinel taxonomy rather than duplicating it.
func (r Request) toMemory(cfg params.Config, pack func([]uint64, int, int) (dbc.Row, error)) (memory.Request, error) {
	switch r.Op {
	case "":
		return memory.Request{}, fmt.Errorf("%w: missing op", ErrBadRequest)
	case "write":
		if r.Dst == nil {
			return memory.Request{}, fmt.Errorf("%w: write needs dst", ErrBadRequest)
		}
		var row dbc.Row
		var err error
		switch {
		case r.Row != nil:
			row, err = r.Row.row()
			if err != nil {
				return memory.Request{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
			}
		case r.Values != nil:
			if r.Blocksize <= 0 {
				return memory.Request{}, fmt.Errorf("%w: write values need a blocksize", ErrBadRequest)
			}
			row, err = pack(r.Values, r.Blocksize, cfg.Geometry.TrackWidth)
			if err != nil {
				return memory.Request{}, err // carries ErrLaneOverflow
			}
		default:
			return memory.Request{}, fmt.Errorf("%w: write needs row or values", ErrBadRequest)
		}
		return memory.Request{Kind: memory.KindWrite, Dst: r.Dst.isa(), Row: row}, nil
	case "copy":
		if r.Src == nil || r.Dst == nil {
			return memory.Request{}, fmt.Errorf("%w: copy needs src and dst", ErrBadRequest)
		}
		return memory.Request{Kind: memory.KindCopy, Src: r.Src.isa(), Dst: r.Dst.isa()}, nil
	case "read":
		if r.Src == nil {
			return memory.Request{}, fmt.Errorf("%w: read needs src", ErrBadRequest)
		}
		return memory.Request{Kind: memory.KindRead, Src: r.Src.isa()}, nil
	}
	op, ok := isa.OpByName(r.Op)
	if !ok {
		return memory.Request{}, fmt.Errorf("%w: unknown op %q", ErrBadRequest, r.Op)
	}
	if r.Src == nil || r.Dst == nil {
		return memory.Request{}, fmt.Errorf("%w: %s needs src and dst", ErrBadRequest, r.Op)
	}
	operands := make([]isa.Addr, len(r.Operands))
	for i, a := range r.Operands {
		operands[i] = a.isa()
	}
	return memory.Request{
		Kind: memory.KindExec,
		In: isa.Instruction{
			Op: op, Src: r.Src.isa(), Blocksize: r.Blocksize,
			Operands: len(operands), Imm: r.Imm,
		},
		Operands: operands,
		Dst:      r.Dst.isa(),
	}, nil
}

// ExecuteRequest is the /v1/execute body: one Request, routed by
// explicit shard id when set, else by tenant hash.
type ExecuteRequest struct {
	Tenant string `json:"tenant,omitempty"`
	Shard  *int   `json:"shard,omitempty"`
	Request
}

// ExecuteResponse is the /v1/execute reply.
type ExecuteResponse struct {
	Shard int     `json:"shard"`
	Row   RowData `json:"row"`
	// Values is Row unpacked into Blocksize-bit lanes, echoed when the
	// request carried a blocksize.
	Values []uint64 `json:"values,omitempty"`
}

// BatchRequest is the /v1/batch body: the requests execute on one
// shard with the memory layer's batch semantics — requests with
// overlapping DBC footprints keep program order, disjoint ones run
// bank-parallel, and the outcome is bit-identical to running them
// serially in order.
type BatchRequest struct {
	Tenant   string    `json:"tenant,omitempty"`
	Shard    *int      `json:"shard,omitempty"`
	Requests []Request `json:"requests"`
}

// BatchItem is one positional outcome of a batch.
type BatchItem struct {
	Row    *RowData   `json:"row,omitempty"`
	Values []uint64   `json:"values,omitempty"`
	Error  *WireError `json:"error,omitempty"`
}

// Err returns the item's failure decoded to the sentinel taxonomy
// (nil on success). errors.Is works against the façade sentinels.
func (it BatchItem) Err() error {
	if it.Error == nil {
		return nil
	}
	return it.Error.decode(0)
}

// BatchResponse is the /v1/batch reply; Results are positional.
type BatchResponse struct {
	Shard   int         `json:"shard"`
	Results []BatchItem `json:"results"`
}

// CompileRequest is the /v1/compile body: a pimasm program compiled at
// the given optimization level and executed on one shard. Loads read
// the shard's current rows; Outputs return the stored result rows.
type CompileRequest struct {
	Tenant string `json:"tenant,omitempty"`
	Shard  *int   `json:"shard,omitempty"`
	Source string `json:"source"`
	Level  int    `json:"level"`
}

// CompileOutput is one stored result of a compiled program.
type CompileOutput struct {
	Name      string   `json:"name"`
	Addr      Addr     `json:"addr"`
	Blocksize int      `json:"blocksize,omitempty"`
	Row       RowData  `json:"row"`
	Values    []uint64 `json:"values,omitempty"`
}

// CompileResponse is the /v1/compile reply.
type CompileResponse struct {
	Shard    int             `json:"shard"`
	Outputs  []CompileOutput `json:"outputs"`
	Makespan uint64          `json:"makespan_cycles"`
	Cycles   uint64          `json:"cycles"`
}

// GeometrySummary carries the shard configuration a client needs to
// form addresses: the hierarchy bounds and the PIM-enablement rule
// (§III-A: in each of the first PIMTilesPerSub tiles, the last
// PIMDBCsPerTile DBCs execute in place).
type GeometrySummary struct {
	Banks            int `json:"banks"`
	SubarraysPerBank int `json:"subarrays_per_bank"`
	TilesPerSubarray int `json:"tiles_per_subarray"`
	DBCsPerTile      int `json:"dbcs_per_tile"`
	PIMDBCsPerTile   int `json:"pim_dbcs_per_tile"`
	PIMTilesPerSub   int `json:"pim_tiles_per_sub"`
	TrackWidth       int `json:"track_width"`
	RowsPerDBC       int `json:"rows_per_dbc"`
}

// Counters is the service-level accounting exposed by /v1/health and
// /v1/metrics. Accepted counts admissions into a shard queue; every
// accepted request is eventually Completed — including through a
// graceful drain — so Accepted == Completed once the server is idle
// or drained.
type Counters struct {
	Accepted          uint64 `json:"accepted"`
	Completed         uint64 `json:"completed"`
	RejectedQuota     uint64 `json:"rejected_quota"`
	RejectedOverload  uint64 `json:"rejected_overload"`
	RejectedDraining  uint64 `json:"rejected_draining"`
	CoalescedWindows  uint64 `json:"coalesced_windows"`
	CoalescedRequests uint64 `json:"coalesced_requests"`
}

// HealthResponse is the /v1/health reply.
type HealthResponse struct {
	Status   string          `json:"status"` // "ok" | "draining"
	Version  string          `json:"version"`
	Shards   int             `json:"shards"`
	Geometry GeometrySummary `json:"geometry"`
	Counters Counters        `json:"counters"`
}
