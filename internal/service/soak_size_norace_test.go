//go:build !race

package service

// Full soak size: >= 10k total requests from >= 4 concurrent clients
// (the acceptance floor of the coruscantd design).
const (
	soakClients           = 6
	soakRequestsPerClient = 1700
	// Tight enough that bursty clients hit quota rejections, loose
	// enough that retries finish the soak promptly.
	soakQuotaRate  = 700
	soakQuotaBurst = 3
)
