package service

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/memory"
)

// TestAdmissionTokenRelease walks every handler path and checks the
// admission gauge returns to zero: tokens are held only between admit
// and response, and every exit path — success, per-item failure,
// request error, schema reject, quota reject, overload reject,
// draining reject — releases.
func TestAdmissionTokenRelease(t *testing.T) {
	// An unstarted server admits deterministically: no worker drains
	// the queue, so occupancy is exactly what admit placed there.
	cfg := Config{Device: testConfig(t), Shards: 1, QueueDepth: 2}
	srv, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}

	mkJob := func() *job {
		return &job{reqs: []memory.Request{{Kind: memory.KindRead}}, done: make(chan struct{})}
	}
	j1, j2 := mkJob(), mkJob()
	rel1, err := srv.admit(0, j1)
	if err != nil {
		t.Fatal(err)
	}
	rel2, err := srv.admit(0, j2)
	if err != nil {
		t.Fatal(err)
	}
	if got := srv.Inflight(); got != 2 {
		t.Fatalf("inflight = %d, want 2", got)
	}
	// Queue full: the third admission must reject without leaking a
	// token.
	if _, err := srv.admit(0, mkJob()); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("overflow admit err = %v, want ErrOverloaded", err)
	}
	if got := srv.Inflight(); got != 2 {
		t.Fatalf("inflight after overload = %d, want 2", got)
	}
	if srv.Counters().RejectedOverload != 1 {
		t.Fatalf("overload not counted: %+v", srv.Counters())
	}

	// Start the workers; the queued jobs complete and their holders
	// release.
	srv.start()
	<-j1.done
	<-j2.done
	rel1()
	rel2()
	if got := srv.Inflight(); got != 0 {
		t.Fatalf("inflight after release = %d, want 0", got)
	}
	srv.Drain()
	if _, err := srv.admit(0, mkJob()); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain admit err = %v, want ErrDraining", err)
	}
	if got := srv.Inflight(); got != 0 {
		t.Fatalf("inflight after draining reject = %d, want 0", got)
	}
}

// TestHandlerPathsReleaseTokens drives the real handlers over HTTP
// through success and every rejection shape, then checks the gauge is
// zero and accepted == completed.
func TestHandlerPathsReleaseTokens(t *testing.T) {
	srv, api := startServer(t, Config{Shards: 1, QuotaRate: 0.001, QuotaBurst: 2})
	ctx := context.Background()
	shard := 0

	// Success path.
	if _, err := api.Execute(ctx, ExecuteRequest{Tenant: "a", Shard: &shard,
		Request: Request{Op: "write", Dst: &Addr{Tile: 1}, Blocksize: 8, Values: []uint64{1}}}); err != nil {
		t.Fatal(err)
	}
	// Request-error path (cross-DBC operand fails in the shard).
	if _, err := api.Execute(ctx, ExecuteRequest{Tenant: "b", Shard: &shard, Request: Request{
		Op: "add", Src: &Addr{Tile: 0, DBC: 15}, Blocksize: 8,
		Operands: []Addr{{Bank: 3, Tile: 1}}, Dst: &Addr{Tile: 2}}}); err == nil {
		t.Fatal("cross-bank exec succeeded")
	}
	// Per-item-error path: batch where one item fails, one succeeds.
	if resp, err := api.Batch(ctx, BatchRequest{Tenant: "c", Shard: &shard, Requests: []Request{
		{Op: "read", Src: &Addr{Tile: 1}},
		{Op: "read", Src: &Addr{Tile: 1, Row: 10_000}},
	}}); err != nil {
		t.Fatal(err)
	} else if resp.Results[1].Error == nil {
		t.Fatal("out-of-range read item did not fail")
	}
	// Schema-reject path: bad op never reaches a queue.
	if _, err := api.Execute(ctx, ExecuteRequest{Tenant: "d", Shard: &shard,
		Request: Request{Op: "frobnicate"}}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("unknown op err = %v", err)
	}
	// Quota-reject path: tenant a's burst of 2 is spent.
	if _, err := api.Execute(ctx, ExecuteRequest{Tenant: "a", Shard: &shard,
		Request: Request{Op: "read", Src: &Addr{Tile: 1}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := api.Execute(ctx, ExecuteRequest{Tenant: "a", Shard: &shard,
		Request: Request{Op: "read", Src: &Addr{Tile: 1}}}); !errors.Is(err, ErrQuota) {
		t.Fatalf("spent tenant err = %v, want ErrQuota", err)
	}
	// Compile success and compile-error paths.
	if _, err := api.Compile(ctx, CompileRequest{Tenant: "e", Shard: &shard, Source: "%a = load b0.s0.t1.d0.r0\nstore %a, b0.s0.t2.d0.r0\n"}); err != nil {
		t.Fatal(err)
	}
	if _, err := api.Compile(ctx, CompileRequest{Tenant: "f", Shard: &shard, Source: "this is not pimasm"}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("bad program err = %v, want ErrBadRequest", err)
	}

	deadline := time.Now().Add(2 * time.Second)
	for srv.Inflight() != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := srv.Inflight(); got != 0 {
		t.Fatalf("inflight settled at %d, want 0", got)
	}
	if c := srv.Counters(); c.Accepted != c.Completed {
		t.Fatalf("accepted %d != completed %d", c.Accepted, c.Completed)
	}
}
