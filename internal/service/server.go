package service

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/isa/compile"
	"repro/internal/memory"
	"repro/internal/params"
	"repro/internal/pim"
	"repro/internal/telemetry"
	"repro/internal/telemetry/profile"
)

// Config sizes a Server. The zero value of every knob picks a sane
// default (see the field comments); Device must validate.
type Config struct {
	// Device is the per-shard racetrack configuration; every shard is
	// built identically from it.
	Device params.Config
	// Shards is the number of independent memory shards (default 1).
	Shards int
	// Workers sets each shard's internal batch worker count
	// (memory.SetWorkers); 0 keeps the memory default (GOMAXPROCS).
	Workers int
	// QueueDepth bounds each shard's admission queue (default 64).
	// A full queue rejects with ErrOverloaded / HTTP 429.
	QueueDepth int
	// CoalesceMax caps how many queued batchable requests one
	// execution window merges into a single ExecuteBatch (default 8;
	// 1 disables coalescing).
	CoalesceMax int
	// CoalesceWindow is how long a window holds the shard waiting for
	// more requests to merge once at least one is in hand (default 0:
	// merge only what is already queued, never wait).
	CoalesceWindow time.Duration
	// QuotaRate is each tenant's sustained request rate in
	// requests/second; 0 disables quotas.
	QuotaRate float64
	// QuotaBurst is each tenant's token-bucket depth (default 1 when
	// quotas are on).
	QuotaBurst int
	// Telemetry attaches a per-shard recorder with a shard-labelled
	// hardware profiler, exposed on /v1/metrics.
	Telemetry bool
	// Sinks, when non-nil, supplies extra telemetry sinks per shard
	// (requires Telemetry); drained recorders flush them on Drain.
	Sinks func(shard int) []telemetry.Sink
}

func (c *Config) fill() {
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CoalesceMax <= 0 {
		c.CoalesceMax = 8
	}
	if c.QuotaBurst <= 0 {
		c.QuotaBurst = 1
	}
}

// job is one admitted unit of shard work: either a slice of batchable
// wire requests or a compile request. The worker publishes the outcome
// fields and then closes done; the handler reads them only after done.
type job struct {
	wire    []Request        // originals, for blocksize echo
	reqs    []memory.Request // lowered batchable ops (compile == nil)
	compile *CompileRequest

	res  []memory.Result
	cres *CompileResponse
	cerr error
	done chan struct{}
}

// Server owns a pool of memory shards behind the versioned HTTP API:
// per-tenant quotas, bounded admission queues with backpressure, a
// per-shard coalescing worker, and graceful drain. Create with
// NewServer, mount Handler, stop with Drain.
type Server struct {
	cfg    Config
	pool   *memory.Pool
	quotas *quotas

	recs  []*telemetry.Recorder
	profs []*profile.Profiler

	queues []chan *job

	// admitMu orders admission against drain: handlers enqueue under
	// RLock after checking draining; Drain flips the flag under Lock,
	// so no handler is mid-enqueue when the queues close.
	admitMu  sync.RWMutex
	draining bool
	wg       sync.WaitGroup

	inflight          atomic.Int64 // admitted, response not yet written
	accepted          atomic.Uint64
	completed         atomic.Uint64
	rejectedQuota     atomic.Uint64
	rejectedOverload  atomic.Uint64
	rejectedDraining  atomic.Uint64
	coalescedWindows  atomic.Uint64
	coalescedRequests atomic.Uint64
}

// newServer builds a server without starting its shard workers, so
// tests can exercise admission deterministically; NewServer is the
// public constructor.
func newServer(cfg Config) (*Server, error) {
	cfg.fill()
	pool, err := memory.NewPool(cfg.Device, cfg.Shards)
	if err != nil {
		return nil, err
	}
	s := &Server{cfg: cfg, pool: pool}
	if cfg.QuotaRate > 0 {
		s.quotas = newQuotas(cfg.QuotaRate, cfg.QuotaBurst)
	}
	if cfg.Workers > 0 {
		pool.SetWorkers(cfg.Workers)
	}
	if cfg.Telemetry {
		s.recs = make([]*telemetry.Recorder, cfg.Shards)
		s.profs = make([]*profile.Profiler, cfg.Shards)
		for i := 0; i < cfg.Shards; i++ {
			s.profs[i] = profile.New(cfg.Device, profile.WithLabel("shard", strconv.Itoa(i)))
			sinks := []telemetry.Sink{s.profs[i]}
			if cfg.Sinks != nil {
				sinks = append(sinks, cfg.Sinks(i)...)
			}
			s.recs[i] = telemetry.NewRecorder(cfg.Device, sinks...)
			pool.Shard(i).SetTelemetry(s.recs[i])
		}
	}
	s.queues = make([]chan *job, cfg.Shards)
	for i := range s.queues {
		s.queues[i] = make(chan *job, cfg.QueueDepth)
	}
	return s, nil
}

// start launches one coalescing worker per shard.
func (s *Server) start() {
	s.wg.Add(len(s.queues))
	for i := range s.queues {
		go s.worker(i)
	}
}

// NewServer builds the shard pool and starts the shard workers.
func NewServer(cfg Config) (*Server, error) {
	s, err := newServer(cfg)
	if err != nil {
		return nil, err
	}
	s.start()
	return s, nil
}

// Pool exposes the shard pool (read-mostly: seeding rows in tests,
// inspecting health).
func (s *Server) Pool() *memory.Pool { return s.pool }

// Counters snapshots the service-level accounting.
func (s *Server) Counters() Counters {
	return Counters{
		Accepted:          s.accepted.Load(),
		Completed:         s.completed.Load(),
		RejectedQuota:     s.rejectedQuota.Load(),
		RejectedOverload:  s.rejectedOverload.Load(),
		RejectedDraining:  s.rejectedDraining.Load(),
		CoalescedWindows:  s.coalescedWindows.Load(),
		CoalescedRequests: s.coalescedRequests.Load(),
	}
}

// Inflight returns the admission gauge: requests admitted to a queue
// whose response has not been written yet. Zero when idle — every
// handler path releases its token.
func (s *Server) Inflight() int64 { return s.inflight.Load() }

// Drain gracefully stops the server: new requests are rejected with
// ErrDraining, every already-accepted request completes and gets its
// response, the shard workers exit, and the telemetry recorders flush
// their sinks. Idempotent; returns after the drain is complete.
func (s *Server) Drain() {
	s.admitMu.Lock()
	if s.draining {
		s.admitMu.Unlock()
		s.wg.Wait()
		return
	}
	s.draining = true
	s.admitMu.Unlock()
	// No handler can be mid-enqueue now, so closing is safe; workers
	// drain the buffered jobs before exiting their range loops.
	for _, q := range s.queues {
		close(q)
	}
	s.wg.Wait()
	for _, rec := range s.recs {
		rec.Close()
	}
}

// shardFor routes a request: an explicit shard id wins, else the
// tenant hashes onto a shard so one tenant's traffic coalesces on one
// queue.
func (s *Server) shardFor(explicit *int, tenant string) (int, error) {
	if explicit != nil {
		if *explicit < 0 || *explicit >= len(s.queues) {
			return 0, fmt.Errorf("%w: shard %d outside pool of %d", ErrBadRequest, *explicit, len(s.queues))
		}
		return *explicit, nil
	}
	h := fnv.New32a()
	io.WriteString(h, tenant)
	return int(h.Sum32() % uint32(len(s.queues))), nil
}

// admit places a job on a shard queue, or rejects it: ErrDraining
// after Drain began, ErrOverloaded when the queue is full. On success
// the admission token (inflight gauge) is held until release is
// called — handlers defer it, so every path releases.
func (s *Server) admit(shard int, j *job) (release func(), err error) {
	s.admitMu.RLock()
	defer s.admitMu.RUnlock()
	if s.draining {
		s.rejectedDraining.Add(1)
		return nil, ErrDraining
	}
	select {
	case s.queues[shard] <- j:
		s.accepted.Add(1)
		s.inflight.Add(1)
		return func() { s.inflight.Add(-1) }, nil
	default:
		s.rejectedOverload.Add(1)
		return nil, fmt.Errorf("%w: shard %d", ErrOverloaded, shard)
	}
}

// worker is shard i's executor: it drains the shard queue, merging
// runs of batchable jobs into coalescing windows (one ExecuteBatch per
// window, so disjoint clients' requests exploit the shard's DBC
// parallelism), and running compile jobs exclusively between windows.
func (s *Server) worker(shard int) {
	defer s.wg.Done()
	q := s.queues[shard]
	mem := s.pool.Shard(shard)
	var pending *job
	for {
		j := pending
		pending = nil
		if j == nil {
			var ok bool
			if j, ok = <-q; !ok {
				return
			}
		}
		if j.compile != nil {
			s.runCompile(shard, mem, j)
			continue
		}
		window := []*job{j}
		total := len(j.reqs)
		// take folds the next queued job into the window; it reports
		// false when collection must stop (queue closed, or a compile
		// job that must run exclusively right after this window).
		take := func(nj *job, ok bool) bool {
			if !ok {
				return false
			}
			if nj.compile != nil {
				pending = nj
				return false
			}
			window = append(window, nj)
			total += len(nj.reqs)
			return true
		}
		if s.cfg.CoalesceWindow > 0 {
			// Hold the shard open for late arrivals until the window
			// elapses or the window fills.
			t := time.NewTimer(s.cfg.CoalesceWindow)
		wait:
			for len(window) < s.cfg.CoalesceMax {
				select {
				case nj, ok := <-q:
					if !take(nj, ok) {
						break wait
					}
				case <-t.C:
					break wait
				}
			}
			t.Stop()
		} else {
			// Merge only what is already queued; never wait.
			for len(window) < s.cfg.CoalesceMax {
				select {
				case nj, ok := <-q:
					if !take(nj, ok) {
						goto run
					}
				default:
					goto run
				}
			}
		}
	run:
		s.runWindow(mem, window, total)
	}
}

// runWindow concatenates the window's requests into one ExecuteBatch —
// program order within each job is preserved because ExecuteBatch
// keeps order inside overlapping footprints and jobs' own requests
// always land contiguously — then scatters the positional results back
// to their jobs.
func (s *Server) runWindow(mem *memory.Memory, window []*job, total int) {
	if len(window) > 1 {
		s.coalescedWindows.Add(1)
		s.coalescedRequests.Add(uint64(total))
	}
	merged := make([]memory.Request, 0, total)
	for _, j := range window {
		merged = append(merged, j.reqs...)
	}
	results := mem.ExecuteBatch(merged)
	off := 0
	for _, j := range window {
		j.res = results[off : off+len(j.reqs)]
		off += len(j.reqs)
		close(j.done)
		s.completed.Add(1)
	}
}

// runCompile compiles and executes a pimasm program on the shard,
// exclusively (no window shares the shard while a plan runs).
func (s *Server) runCompile(shard int, mem *memory.Memory, j *job) {
	defer func() {
		close(j.done)
		s.completed.Add(1)
	}()
	req := j.compile
	res, err := compile.Compile(req.Source, s.cfg.Device, compile.Options{Level: req.Level})
	if err != nil {
		j.cerr = fmt.Errorf("%w: %v", ErrBadRequest, err)
		return
	}
	var rec *telemetry.Recorder
	if s.recs != nil {
		rec = s.recs[shard]
	}
	var cycles0, span0 uint64
	if rec != nil {
		cycles0, span0 = rec.Cycle(), rec.Makespan()
	}
	if err := res.Plan.Run(mem); err != nil {
		j.cerr = err
		return
	}
	out := &CompileResponse{Shard: shard, Outputs: make([]CompileOutput, 0, len(res.Outputs))}
	if rec != nil {
		out.Cycles = rec.Cycle() - cycles0
		out.Makespan = rec.Makespan() - span0
	}
	for _, o := range res.Outputs {
		row, err := mem.ReadRow(o.Addr)
		if err != nil {
			j.cerr = err
			return
		}
		co := CompileOutput{Name: o.Name, Addr: wireAddr(o.Addr), Blocksize: o.Blocksize, Row: rowData(row)}
		if o.Blocksize > 0 {
			co.Values = pim.UnpackLanes(row, o.Blocksize)
		}
		out.Outputs = append(out.Outputs, co)
	}
	j.cres = out
}

// Handler returns the versioned API mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(PathExecute, s.handleExecute)
	mux.HandleFunc(PathBatch, s.handleBatch)
	mux.HandleFunc(PathCompile, s.handleCompile)
	mux.HandleFunc(PathHealth, s.handleHealth)
	mux.HandleFunc(PathMetrics, s.handleMetrics)
	return mux
}

// decodeBody strictly decodes a JSON request body into dst.
func decodeBody(r *http.Request, dst any) error {
	if r.Method != http.MethodPost {
		return fmt.Errorf("%w: %s requires POST", ErrBadRequest, r.URL.Path)
	}
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// writeError maps err through the contract table onto the envelope.
func writeError(w http.ResponseWriter, err error, retryAfter time.Duration) {
	ms := int(retryAfter / time.Millisecond)
	if retryAfter > 0 && ms == 0 {
		ms = 1
	}
	status, we := encodeError(err, ms)
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		secs := int((retryAfter + time.Second - 1) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	writeJSON(w, status, errorEnvelope{Error: we})
}

// gate runs the shared admission pipeline: tenant quota, shard
// routing. Returns the shard or writes the rejection.
func (s *Server) gate(w http.ResponseWriter, tenant string, explicit *int) (int, bool) {
	if ok, wait := s.quotas.take(tenant, time.Now()); !ok {
		s.rejectedQuota.Add(1)
		writeError(w, fmt.Errorf("%w: tenant %q", ErrQuota, tenant), wait)
		return 0, false
	}
	shard, err := s.shardFor(explicit, tenant)
	if err != nil {
		writeError(w, err, 0)
		return 0, false
	}
	return shard, true
}

// submit admits the job and waits for the worker's outcome; the
// admission token is released however the handler exits.
func (s *Server) submit(w http.ResponseWriter, shard int, j *job) (ok bool, release func()) {
	release, err := s.admit(shard, j)
	if err != nil {
		writeError(w, err, 25*time.Millisecond)
		return false, nil
	}
	return true, release
}

func (s *Server) handleExecute(w http.ResponseWriter, r *http.Request) {
	var req ExecuteRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, err, 0)
		return
	}
	shard, ok := s.gate(w, req.Tenant, req.Shard)
	if !ok {
		return
	}
	mreq, err := req.Request.toMemory(s.cfg.Device, pim.PackLanes)
	if err != nil {
		writeError(w, err, 0)
		return
	}
	j := &job{wire: []Request{req.Request}, reqs: []memory.Request{mreq}, done: make(chan struct{})}
	ok, release := s.submit(w, shard, j)
	if !ok {
		return
	}
	defer release()
	<-j.done
	if err := j.res[0].Err; err != nil {
		writeError(w, err, 0)
		return
	}
	resp := ExecuteResponse{Shard: shard, Row: rowData(j.res[0].Row)}
	if req.Blocksize > 0 {
		resp.Values = pim.UnpackLanes(j.res[0].Row, req.Blocksize)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, err, 0)
		return
	}
	if len(req.Requests) == 0 {
		writeError(w, fmt.Errorf("%w: empty batch", ErrBadRequest), 0)
		return
	}
	shard, ok := s.gate(w, req.Tenant, req.Shard)
	if !ok {
		return
	}
	mreqs := make([]memory.Request, len(req.Requests))
	for i, wr := range req.Requests {
		mr, err := wr.toMemory(s.cfg.Device, pim.PackLanes)
		if err != nil {
			writeError(w, fmt.Errorf("request %d: %w", i, err), 0)
			return
		}
		mreqs[i] = mr
	}
	j := &job{wire: req.Requests, reqs: mreqs, done: make(chan struct{})}
	ok, release := s.submit(w, shard, j)
	if !ok {
		return
	}
	defer release()
	<-j.done
	resp := BatchResponse{Shard: shard, Results: make([]BatchItem, len(j.res))}
	for i, res := range j.res {
		if res.Err != nil {
			_, we := encodeError(res.Err, 0)
			resp.Results[i].Error = &we
			continue
		}
		rd := rowData(res.Row)
		resp.Results[i].Row = &rd
		if bs := req.Requests[i].Blocksize; bs > 0 {
			resp.Results[i].Values = pim.UnpackLanes(res.Row, bs)
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	var req CompileRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, err, 0)
		return
	}
	if req.Source == "" {
		writeError(w, fmt.Errorf("%w: empty source", ErrBadRequest), 0)
		return
	}
	shard, ok := s.gate(w, req.Tenant, req.Shard)
	if !ok {
		return
	}
	j := &job{compile: &req, done: make(chan struct{})}
	ok, release := s.submit(w, shard, j)
	if !ok {
		return
	}
	defer release()
	<-j.done
	if j.cerr != nil {
		writeError(w, j.cerr, 0)
		return
	}
	j.cres.Shard = shard
	writeJSON(w, http.StatusOK, j.cres)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.admitMu.RLock()
	status := "ok"
	if s.draining {
		status = "draining"
	}
	s.admitMu.RUnlock()
	g := s.cfg.Device.Geometry
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:  status,
		Version: APIVersion,
		Shards:  len(s.queues),
		Geometry: GeometrySummary{
			Banks:            g.Banks,
			SubarraysPerBank: g.SubarraysPerBank,
			TilesPerSubarray: g.TilesPerSubarray,
			DBCsPerTile:      g.DBCsPerTile,
			PIMDBCsPerTile:   g.PIMDBCsPerTile,
			PIMTilesPerSub:   g.PIMTilesPerSub,
			TrackWidth:       g.TrackWidth,
			RowsPerDBC:       g.RowsPerDBC,
		},
		Counters: s.Counters(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	c := s.Counters()
	for _, m := range []struct {
		name, help string
		val        uint64
	}{
		{"coruscantd_requests_accepted_total", "Requests admitted to a shard queue.", c.Accepted},
		{"coruscantd_requests_completed_total", "Admitted requests answered.", c.Completed},
		{"coruscantd_rejected_quota_total", "Requests rejected by tenant quota.", c.RejectedQuota},
		{"coruscantd_rejected_overload_total", "Requests rejected by a full shard queue.", c.RejectedOverload},
		{"coruscantd_rejected_draining_total", "Requests rejected during graceful drain.", c.RejectedDraining},
		{"coruscantd_coalesced_windows_total", "Execution windows that merged more than one request.", c.CoalescedWindows},
		{"coruscantd_coalesced_requests_total", "Requests that rode a merged window.", c.CoalescedRequests},
	} {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", m.name, m.help, m.name, m.name, m.val)
	}
	fmt.Fprintf(w, "# HELP coruscantd_inflight Admitted requests not yet answered.\n# TYPE coruscantd_inflight gauge\ncoruscantd_inflight %d\n", s.Inflight())
	if len(s.profs) > 0 {
		profile.WriteManyPrometheus(w, s.profs...)
	}
}
