package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

// Client is the typed client of the v1 API. Errors decoded from the
// wire envelope carry their sentinel: errors.Is(err, memory.ErrCrossDBC)
// (and every other taxonomy sentinel) works across the wire.
type Client struct {
	base string
	http *http.Client
}

// NewClient returns a client for a coruscantd at base
// (e.g. "http://localhost:7917"). httpc nil uses http.DefaultClient.
func NewClient(base string, httpc *http.Client) *Client {
	if httpc == nil {
		httpc = http.DefaultClient
	}
	return &Client{base: base, http: httpc}
}

// post sends body to path and decodes a 2xx reply into out, or returns
// the decoded *APIError.
func (c *Client) post(ctx context.Context, path string, body, out any) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("service: encode request: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(buf))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var env errorEnvelope
		if err := json.NewDecoder(resp.Body).Decode(&env); err != nil || env.Error.Code == "" {
			return &APIError{Status: resp.StatusCode, Code: "internal",
				Message: fmt.Sprintf("undecodable %d reply", resp.StatusCode)}
		}
		return env.Error.decode(resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Execute runs one request.
func (c *Client) Execute(ctx context.Context, req ExecuteRequest) (*ExecuteResponse, error) {
	var out ExecuteResponse
	if err := c.post(ctx, PathExecute, req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Batch runs a batch on one shard; per-item failures land in the
// items (BatchItem.Err), not in the call error.
func (c *Client) Batch(ctx context.Context, req BatchRequest) (*BatchResponse, error) {
	var out BatchResponse
	if err := c.post(ctx, PathBatch, req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Compile compiles and executes a pimasm program on one shard.
func (c *Client) Compile(ctx context.Context, req CompileRequest) (*CompileResponse, error) {
	var out CompileResponse
	if err := c.post(ctx, PathCompile, req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Health fetches the server status and geometry.
func (c *Client) Health(ctx context.Context) (*HealthResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+PathHealth, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var out HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Metrics fetches the raw Prometheus exposition page.
func (c *Client) Metrics(ctx context.Context) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+PathMetrics, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return io.ReadAll(resp.Body)
}
