package service

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// burstUntilOverload fires rounds of 32 concurrent heavy read batches
// at shard 0 until at least one is rejected by the bounded queue,
// returning the rejection count. Reads in bank 3 touch no soak
// client's state, so the bit-identity mirrors stay valid.
func burstUntilOverload(t *testing.T, base string) uint64 {
	t.Helper()
	api := NewClient(base, nil)
	ctx := context.Background()
	shard := 0
	reqs := make([]Request, 16)
	for i := range reqs {
		reqs[i] = Request{Op: "read", Src: &Addr{Bank: 3, Tile: 1, Row: i}}
	}
	var rejected atomic.Uint64
	for round := 0; round < 50 && rejected.Load() == 0; round++ {
		var wg sync.WaitGroup
		for i := 0; i < 32; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				_, err := api.Batch(ctx, BatchRequest{
					Tenant:   fmt.Sprintf("burst-%d-%d", round, i),
					Shard:    &shard,
					Requests: reqs,
				})
				if errors.Is(err, ErrOverloaded) {
					rejected.Add(1)
				} else if err != nil {
					t.Errorf("burst request failed oddly: %v", err)
				}
			}(i)
		}
		wg.Wait()
	}
	return rejected.Load()
}

// TestSoakMixedTraffic is the coruscantd acceptance soak: concurrent
// clients fire a mixed stream (row writes, bulk-bitwise and arithmetic
// executes, multi-op batches, spot-check reads, compiled CNN-style
// kernels) at a multi-shard server sized to exercise backpressure,
// with per-tenant quotas tight enough to reject. Every row a client
// reads back is compared bit-for-bit against that client's private
// serial mirror; then the server drains and must account for every
// admitted request.
func TestSoakMixedTraffic(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short")
	}
	device := testConfig(t)
	cfg := Config{
		Device: device,
		Shards: 2,
		// Shallow queues + eager windows: overload rejections are part
		// of the acceptance criteria, and coalescing still merges
		// whatever is queued.
		QueueDepth:  2,
		CoalesceMax: 8,
		// Per-tenant buckets sized (per build tag) so quota rejections
		// occur while retries still finish the soak promptly.
		QuotaRate:  soakQuotaRate,
		QuotaBurst: soakQuotaBurst,
	}
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	rep, err := RunLoad(ctx, LoadConfig{
		Base:     ts.URL,
		Device:   device,
		Shards:   cfg.Shards,
		Clients:  soakClients,
		Requests: soakRequestsPerClient,
		Seed:     42,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("soak: %d clients, %d ok (%.0f req/s), %d bit-checks, %d mismatches, quota rej %d, overload rej %d, retries %d, errors %d, p50 %v p95 %v",
		rep.Clients, rep.Sent, rep.ReqPerS, rep.BitChecks, rep.Mismatch,
		rep.QuotaRejected, rep.OverloadRejected, rep.Retries, rep.Errors, rep.P50, rep.P95)

	if rep.Mismatch != 0 {
		t.Fatalf("%d bit-identity mismatches against serial execution", rep.Mismatch)
	}
	if rep.BitChecks == 0 {
		t.Fatal("soak performed no bit-identity checks")
	}
	if rep.Errors != 0 {
		t.Fatalf("%d non-backpressure errors", rep.Errors)
	}
	wantSent := uint64(soakClients * soakRequestsPerClient)
	if rep.Sent != wantSent {
		t.Fatalf("sent %d, want %d (every request must eventually land)", rep.Sent, wantSent)
	}
	if rep.QuotaRejected == 0 {
		t.Fatal("soak never hit a quota rejection; quotas untested")
	}

	// Backpressure phase: a single-core host serializes the organic
	// handlers too well to overflow a queue by accident, so flood one
	// shard with concurrent bursts (distinct tenants, read-only, in a
	// bank no soak client owns) until the bounded queue pushes back.
	overload := rep.OverloadRejected + burstUntilOverload(t, ts.URL)
	if overload == 0 {
		t.Fatal("queue backpressure never observed; admission control untested")
	}
	if srv.Counters().RejectedOverload == 0 {
		t.Fatal("server did not count its overload rejections")
	}

	// Graceful drain after the storm: everything admitted was answered.
	srv.Drain()
	c := srv.Counters()
	if c.Accepted != c.Completed {
		t.Fatalf("drain lost work: accepted %d != completed %d", c.Accepted, c.Completed)
	}
	if srv.Inflight() != 0 {
		t.Fatalf("inflight = %d after drain", srv.Inflight())
	}
	if c.CoalescedWindows == 0 {
		t.Fatal("no window ever coalesced; coalescing untested")
	}
}
