package dbc

import (
	"fmt"

	"repro/internal/params"
)

// Op is a bulk-bitwise operation computable by the PIM logic block from a
// transverse-read level (Fig. 4(b), §III-B).
type Op int

// Supported polymorphic-gate operations.
const (
	OpOR Op = iota
	OpNOR
	OpAND
	OpNAND
	OpXOR
	OpXNOR
	OpNOT // NOR of a single operand padded with zeros
	OpMAJ // majority: the C' circuit reused for N-modular voting (§III-F)
)

var opNames = map[Op]string{
	OpOR: "OR", OpNOR: "NOR", OpAND: "AND", OpNAND: "NAND",
	OpXOR: "XOR", OpXNOR: "XNOR", OpNOT: "NOT", OpMAJ: "MAJ",
}

func (o Op) String() string {
	if n, ok := opNames[o]; ok {
		return n
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// PadBit returns the padding constant that makes the operation correct
// for fewer than TRD operands (Fig. 7): '1's for AND/NAND, '0's for the
// rest.
func (o Op) PadBit() uint8 {
	if o == OpAND || o == OpNAND {
		return 1
	}
	return 0
}

// PIMOutputs is the full output set of the PIM logic block for one
// nanowire's sensed level (Fig. 4(b)).
type PIMOutputs struct {
	OR, NOR, AND, NAND, XOR, XNOR uint8
	S                             uint8 // sum: identical to XOR (level bit 0)
	C                             uint8 // carry: level bit 1 ("above two and not above four, or above six")
	Cp                            uint8 // super-carry: level bit 2 ("above four"); also the majority output
}

// Sense evaluates the PIM logic block for a sensed level in [0, trd].
// The level's binary decomposition yields S/C/C' directly: a count of at
// most 7 fits in three bits.
func Sense(level int, trd params.TRD) PIMOutputs {
	if level < 0 || level > int(trd) {
		panic(fmt.Sprintf("dbc: level %d out of range [0,%d]", level, int(trd)))
	}
	var o PIMOutputs
	o.S = uint8(level & 1)
	o.XOR = o.S
	o.XNOR = 1 - o.XOR
	o.C = uint8((level >> 1) & 1)
	o.Cp = uint8((level >> 2) & 1)
	if level >= 1 {
		o.OR = 1
	}
	o.NOR = 1 - o.OR
	if level == int(trd) {
		o.AND = 1
	}
	o.NAND = 1 - o.AND
	return o
}

// Eval returns the single-bit result of op for a sensed level, assuming
// the window was padded per Fig. 7 when fewer than TRD operands are used.
// For OpMAJ the level must include the Fig. 7(c)/(d) vote padding so that
// the C' threshold (level ≥ 4) realizes the majority of the replicas.
func Eval(op Op, level int, trd params.TRD) uint8 {
	o := Sense(level, trd)
	switch op {
	case OpOR:
		return o.OR
	case OpNOR, OpNOT:
		return o.NOR
	case OpAND:
		return o.AND
	case OpNAND:
		return o.NAND
	case OpXOR:
		return o.XOR
	case OpXNOR:
		return o.XNOR
	case OpMAJ:
		// Majority over the full window: level ≥ ceil(TRD/2). For
		// TRD=7 this is the C' circuit (level ≥ 4, §III-F); smaller
		// windows use the corresponding SA threshold output directly.
		if level >= (int(trd)+1)/2 {
			return 1
		}
		return 0
	default:
		panic(fmt.Sprintf("dbc: unknown op %v", op))
	}
}

// EvalPlanes computes the single-bit result of op for every wire at once
// from the bit-sliced level planes of a transverse read — the
// word-parallel equivalent of calling Eval per wire. 64 wires are
// evaluated per handful of bitwise word operations.
func EvalPlanes(op Op, lp LevelPlanes, trd params.TRD) Row {
	out := Row{Words: make([]uint64, len(lp.C0)), N: lp.N}
	for i := range out.Words {
		var v uint64
		switch op {
		case OpOR:
			v = lp.C0[i] | lp.C1[i] | lp.C2[i]
		case OpNOR, OpNOT:
			v = ^(lp.C0[i] | lp.C1[i] | lp.C2[i])
		case OpAND:
			v = levelEQ(lp.C0[i], lp.C1[i], lp.C2[i], int(trd))
		case OpNAND:
			v = ^levelEQ(lp.C0[i], lp.C1[i], lp.C2[i], int(trd))
		case OpXOR:
			v = lp.C0[i]
		case OpXNOR:
			v = ^lp.C0[i]
		case OpMAJ:
			v = levelGE(lp.C0[i], lp.C1[i], lp.C2[i], (int(trd)+1)/2)
		default:
			panic(fmt.Sprintf("dbc: unknown op %v", op))
		}
		out.Words[i] = v
	}
	out.MaskTail()
	return out
}

// levelEQ returns the mask of lanes whose 3-bit level equals t.
func levelEQ(c0, c1, c2 uint64, t int) uint64 {
	t0, t1, t2 := broadcast(t&1), broadcast(t>>1&1), broadcast(t>>2&1)
	return ^(c0 ^ t0) & ^(c1 ^ t1) & ^(c2 ^ t2)
}

// levelGE returns the mask of lanes whose 3-bit level is at least t,
// via a bit-sliced lexicographic comparison from the MSB down.
func levelGE(c0, c1, c2 uint64, t int) uint64 {
	t0, t1, t2 := broadcast(t&1), broadcast(t>>1&1), broadcast(t>>2&1)
	gt := c2 &^ t2
	eq := ^(c2 ^ t2)
	gt |= eq & (c1 &^ t1)
	eq &= ^(c1 ^ t1)
	gt |= eq & (c0 &^ t0)
	eq &= ^(c0 ^ t0)
	return gt | eq
}

// broadcast replicates a single bit across a word.
func broadcast(b int) uint64 {
	if b != 0 {
		return ^uint64(0)
	}
	return 0
}

// SenseLevels applies Sense to a whole row of levels, skipping entries
// masked with -1 (unselected bitlines).
func SenseLevels(levels []int, trd params.TRD) []PIMOutputs {
	out := make([]PIMOutputs, len(levels))
	for i, l := range levels {
		if l < 0 {
			continue
		}
		out[i] = Sense(l, trd)
	}
	return out
}
