package dbc

import (
	"testing"

	"repro/internal/params"
)

// TestEvalPlanesMasksTail is the regression test for the EvalPlanes
// refactor from in-loop tail masking to a final MaskTail: for a width
// that does not fill the last word, inverting ops (NOR, NAND, XNOR)
// would set every tail bit, and junk beyond N in the sensed planes
// would leak through the non-inverting ones.
func TestEvalPlanesMasksTail(t *testing.T) {
	const n = 70 // 2 words, 6 valid bits in the last
	words := (n + 63) / 64
	lp := LevelPlanes{
		C0: make([]uint64, words),
		C1: make([]uint64, words),
		C2: make([]uint64, words),
		N:  n,
	}
	// A transverse read of a physical track can carry junk beyond N.
	for _, p := range [][]uint64{lp.C0, lp.C1, lp.C2} {
		p[words-1] = ^TailMask(n)
	}
	junk := ^TailMask(n)
	for _, op := range []Op{OpOR, OpNOR, OpAND, OpNAND, OpXOR, OpXNOR, OpMAJ, OpNOT} {
		out := EvalPlanes(op, lp, params.TRD3)
		if got := out.Words[words-1] & junk; got != 0 {
			t.Errorf("EvalPlanes(%v): tail bits %#x beyond N=%d are set", op, got, n)
		}
	}
}
