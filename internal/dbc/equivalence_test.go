package dbc

import (
	"math/rand"
	"testing"

	"repro/internal/device"
	"repro/internal/params"
)

// TestDBCEquivalentToIndependentNanowires drives a DBC and a bank of
// standalone nanowires through the same random operation sequence and
// checks that the cluster abstraction never diverges from the
// single-wire device physics.
func TestDBCEquivalentToIndependentNanowires(t *testing.T) {
	const width, rows = 8, 32
	d := MustNew(width, rows, params.TRD7)
	wires := make([]*device.Nanowire, width)
	for i := range wires {
		w, err := device.NewNanowire(rows, params.TRD7)
		if err != nil {
			t.Fatal(err)
		}
		wires[i] = w
	}
	rng := rand.New(rand.NewSource(60))

	// Seed identical contents.
	for r := 0; r < rows; r++ {
		row := randRow(width, rng)
		d.LoadRow(r, row)
		for i, w := range wires {
			w.SetRow(r, row.Get(i))
		}
	}

	randBits := func() Row { return randRow(width, rng) }
	for step := 0; step < 400; step++ {
		switch rng.Intn(6) {
		case 0: // bounded shift
			delta := rng.Intn(5) - 2
			cur := d.Offset()
			if cur+delta < -12 || cur+delta > 13 {
				delta = -delta
			}
			if err := d.Shift(delta); err != nil {
				t.Fatal(err)
			}
			for _, w := range wires {
				if err := w.Shift(delta); err != nil {
					t.Fatal(err)
				}
			}
		case 1: // port write
			side := device.Side(rng.Intn(2))
			bits := randBits()
			d.WritePort(side, bits)
			for i, w := range wires {
				w.WritePort(side, bits.Get(i))
			}
		case 2: // port read equivalence
			side := device.Side(rng.Intn(2))
			got := d.ReadPort(side)
			for i, w := range wires {
				if got.Get(i) != w.ReadPort(side) {
					t.Fatalf("step %d: ReadPort diverged on wire %d", step, i)
				}
			}
		case 3: // TR equivalence
			levels := d.TRAll()
			for i, w := range wires {
				if levels[i] != w.TR() {
					t.Fatalf("step %d: TR diverged on wire %d: %d vs %d", step, i, levels[i], w.TR())
				}
			}
		case 4: // transverse write
			bits := randBits()
			d.TW(bits)
			for i, w := range wires {
				w.TW(bits.Get(i))
			}
		case 5: // full state comparison
			for r := 0; r < rows; r++ {
				row := d.PeekRow(r)
				for i, w := range wires {
					if row.Get(i) != w.PeekRow(r) {
						t.Fatalf("step %d: row %d wire %d diverged", step, r, i)
					}
				}
			}
		}
	}
}

// TestDBCEquivalenceUnderFaultInjection repeats the nanowire-bank
// equivalence with TR and shift faults enabled: the word-masked fault
// path of the packed engine must reproduce the scalar per-wire fault
// path bit for bit when both draw from same-seeded injectors. The
// wire-by-wire reference lives in refdbc_test.go.
func TestDBCEquivalenceUnderFaultInjection(t *testing.T) {
	for _, trd := range []params.TRD{params.TRD3, params.TRD5, params.TRD7} {
		for seq := int64(0); seq < 50; seq++ {
			runDifferential(t, trd, 77_000+seq, true)
		}
	}
}
