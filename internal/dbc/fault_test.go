package dbc

import (
	"testing"

	"repro/internal/device"
	"repro/internal/params"
)

func TestShiftFaultsMisalignData(t *testing.T) {
	// With certain over/under-shifting (probability 1), a shift-align-read
	// sequence must return wrong rows — the §II-A alignment-fault problem
	// the cited companion works correct. The paper assumes their solutions
	// keep this negligible; the injector lets us model their absence.
	clean := MustNew(8, 32, params.TRD7)
	faulty := MustNew(8, 32, params.TRD7)
	for r := 0; r < 32; r++ {
		row := NewRow(8)
		for w := 0; w < 8; w++ {
			row.Set(w, uint8((r+w)%2))
		}
		clean.LoadRow(r, row)
		faulty.LoadRow(r, row)
	}
	faulty.SetFaultInjector(device.NewFaultInjector(0, 1.0, 21))

	if err := clean.Shift(5); err != nil {
		t.Fatal(err)
	}
	if err := faulty.Shift(5); err != nil {
		t.Fatal(err)
	}
	if clean.Offset() == faulty.Offset() {
		t.Errorf("probability-1 shift faults left alignment intact (offset %d)", faulty.Offset())
	}
}

func TestShiftFaultsOffByDefault(t *testing.T) {
	d := MustNew(8, 32, params.TRD7)
	if err := d.Shift(7); err != nil {
		t.Fatal(err)
	}
	if d.Offset() != 7 {
		t.Errorf("offset = %d, want 7 with no injector", d.Offset())
	}
}
