package dbc

import (
	"math/rand"
	"testing"

	"repro/internal/device"
	"repro/internal/params"
	"repro/internal/trace"
)

func randRow(width int, rng *rand.Rand) Row {
	r := NewRow(width)
	for i := 0; i < width; i++ {
		r.Set(i, uint8(rng.Intn(2)))
	}
	return r
}

func TestDBCLoadPeekRows(t *testing.T) {
	d := MustNew(64, 32, params.TRD7)
	rng := rand.New(rand.NewSource(1))
	rows := make([]Row, 32)
	for r := range rows {
		rows[r] = randRow(64, rng)
		d.LoadRow(r, rows[r])
	}
	for r := range rows {
		got := d.PeekRow(r)
		if !got.Equal(rows[r]) {
			t.Fatalf("row %d = %v, want %v", r, got, rows[r])
		}
	}
}

func TestDBCLockstepShift(t *testing.T) {
	d := MustNew(16, 32, params.TRD7)
	rng := rand.New(rand.NewSource(2))
	want := make([]Row, 32)
	for r := range want {
		want[r] = randRow(16, rng)
		d.LoadRow(r, want[r])
	}
	if err := d.Shift(7); err != nil {
		t.Fatal(err)
	}
	if err := d.Shift(-7); err != nil {
		t.Fatal(err)
	}
	for r := range want {
		if got := d.PeekRow(r); !got.Equal(want[r]) {
			t.Fatalf("after shifts row %d changed: %v != %v", r, got, want[r])
		}
	}
}

func TestDBCAlignReadWritePort(t *testing.T) {
	d := MustNew(8, 32, params.TRD7)
	row := FromBits(1, 0, 1, 1, 0, 0, 1, 0)
	d.LoadRow(5, row)
	if _, err := d.Align(5, device.Left); err != nil {
		t.Fatal(err)
	}
	if got := d.RowAtPort(device.Left); got != 5 {
		t.Fatalf("RowAtPort = %d, want 5", got)
	}
	got := d.ReadPort(device.Left)
	if !got.Equal(row) {
		t.Fatalf("ReadPort = %v, want %v", got, row)
	}
	d.WritePort(device.Left, FromBits(0, 1, 0, 0, 1, 1, 0, 1))
	got = d.PeekRow(5)
	for w := 0; w < got.Len(); w++ {
		if got.Get(w) != 1-row.Get(w) {
			t.Fatalf("after WritePort row 5 wire %d = %d", w, got.Get(w))
		}
	}
}

func TestDBCTRMatchesPopcount(t *testing.T) {
	// The DBC's per-wire TR must equal the per-wire popcount of the
	// window rows — cross-checking the lockstep model against the
	// single-wire device physics.
	d := MustNew(32, 32, params.TRD7)
	rng := rand.New(rand.NewSource(3))
	want := make([]int, 32)
	for i := 0; i < 7; i++ {
		row := randRow(32, rng)
		d.PokeWindow(i, row)
		for w := 0; w < row.Len(); w++ {
			want[w] += int(row.Get(w))
		}
	}
	got := d.TRAll()
	for w := range want {
		if got[w] != want[w] {
			t.Fatalf("TR wire %d = %d, want %d", w, got[w], want[w])
		}
	}
}

func TestDBCTRWiresMasking(t *testing.T) {
	d := MustNew(16, 32, params.TRD7)
	d.PokeWindowConst(3, 1)
	levels, err := d.TRWires([]int{2, 5})
	if err != nil {
		t.Fatal(err)
	}
	for w, l := range levels {
		switch w {
		case 2, 5:
			if l != 1 {
				t.Fatalf("selected wire %d level = %d, want 1", w, l)
			}
		default:
			if l != -1 {
				t.Fatalf("masked wire %d level = %d, want -1", w, l)
			}
		}
	}
}

func TestDBCTWRow(t *testing.T) {
	d := MustNew(4, 32, params.TRD7)
	first := FromBits(1, 1, 0, 0)
	d.PokeWindow(0, first)
	d.TW(FromBits(0, 1, 1, 0))
	got := d.PeekWindow(0)
	want := FromBits(0, 1, 1, 0)
	if !got.Equal(want) {
		t.Fatalf("window 0 = %v, want %v", got, want)
	}
	got = d.PeekWindow(1)
	if !got.Equal(first) {
		t.Fatalf("window 1 = %v, want %v (shifted)", got, first)
	}
}

func TestDBCWriteScatter(t *testing.T) {
	d := MustNew(8, 32, params.TRD7)
	tr := &trace.Tracer{}
	d.SetTracer(tr)
	d.WriteScatter([]PortBit{
		{Wire: 0, Side: device.Left, Bit: 1},
		{Wire: 1, Side: device.Right, Bit: 1},
		{Wire: 2, Side: device.Left, Bit: 0},
	})
	if got := d.PeekWindow(0).Get(0); got != 1 {
		t.Errorf("wire 0 left port = %d, want 1", got)
	}
	if got := d.PeekWindow(6).Get(1); got != 1 {
		t.Errorf("wire 1 right port = %d, want 1", got)
	}
	s := tr.Stats()
	if s.WriteSteps != 1 || s.WriteBits != 3 {
		t.Errorf("scatter traced %d steps / %d bits, want 1/3", s.WriteSteps, s.WriteBits)
	}
}

func TestDBCTracing(t *testing.T) {
	d := MustNew(8, 32, params.TRD7)
	tr := &trace.Tracer{}
	d.SetTracer(tr)
	if err := d.Shift(3); err != nil {
		t.Fatal(err)
	}
	d.TRAll()
	d.WritePort(device.Left, NewRow(8))
	d.ReadPort(device.Right)
	d.TW(NewRow(8))
	s := tr.Stats()
	if s.ShiftSteps != 3 || s.ShiftWires != 24 {
		t.Errorf("shift trace %d/%d, want 3/24", s.ShiftSteps, s.ShiftWires)
	}
	if s.TRSteps != 1 || s.TRWires != 8 {
		t.Errorf("TR trace %d/%d, want 1/8", s.TRSteps, s.TRWires)
	}
	if s.Cycles() != 3+1+1+1+1 {
		t.Errorf("cycles = %d, want 7", s.Cycles())
	}
}

func TestDBCFaultInjection(t *testing.T) {
	d := MustNew(4, 32, params.TRD7)
	d.SetFaultInjector(device.NewFaultInjector(1.0, 0, 11))
	d.PokeWindowConst(2, 1) // true level 1 everywhere
	levels := d.TRAll()
	for w, l := range levels {
		if l == 1 {
			t.Errorf("wire %d unperturbed at probability 1", w)
		}
		if l < 0 || l > 7 {
			t.Errorf("wire %d level %d out of range", w, l)
		}
	}
}

func TestSenseDecomposition(t *testing.T) {
	// The level's binary decomposition gives S/C/C' (§III-B): C is one
	// for levels {2,3,6,7} ("above two and not above four, or above
	// six") and C' for levels ≥ 4.
	for level := 0; level <= 7; level++ {
		o := Sense(level, params.TRD7)
		if o.S != uint8(level&1) {
			t.Errorf("level %d: S=%d", level, o.S)
		}
		wantC := uint8(0)
		if (level >= 2 && level < 4) || level >= 6 {
			wantC = 1
		}
		if o.C != wantC {
			t.Errorf("level %d: C=%d, want %d", level, o.C, wantC)
		}
		wantCp := uint8(0)
		if level >= 4 {
			wantCp = 1
		}
		if o.Cp != wantCp {
			t.Errorf("level %d: C'=%d, want %d", level, o.Cp, wantCp)
		}
		if o.S+2*o.C+4*o.Cp != uint8(level) {
			t.Errorf("level %d: decomposition %d+2·%d+4·%d", level, o.S, o.C, o.Cp)
		}
	}
}

func TestSenseLogicOps(t *testing.T) {
	for _, trd := range []params.TRD{params.TRD3, params.TRD5, params.TRD7} {
		for level := 0; level <= int(trd); level++ {
			o := Sense(level, trd)
			if (o.OR == 1) != (level >= 1) {
				t.Errorf("%v level %d: OR=%d", trd, level, o.OR)
			}
			if (o.AND == 1) != (level == int(trd)) {
				t.Errorf("%v level %d: AND=%d", trd, level, o.AND)
			}
			if o.NOR != 1-o.OR || o.NAND != 1-o.AND || o.XNOR != 1-o.XOR {
				t.Errorf("%v level %d: inversions wrong", trd, level)
			}
			if o.XOR != uint8(level&1) {
				t.Errorf("%v level %d: XOR=%d", trd, level, o.XOR)
			}
		}
	}
}

func TestEvalMajority(t *testing.T) {
	for _, trd := range []params.TRD{params.TRD3, params.TRD5, params.TRD7} {
		th := (int(trd) + 1) / 2
		for level := 0; level <= int(trd); level++ {
			want := uint8(0)
			if level >= th {
				want = 1
			}
			if got := Eval(OpMAJ, level, trd); got != want {
				t.Errorf("%v MAJ(%d) = %d, want %d", trd, level, got, want)
			}
		}
	}
}

func TestOpPadBits(t *testing.T) {
	if OpAND.PadBit() != 1 || OpNAND.PadBit() != 1 {
		t.Error("AND/NAND must pad with ones (Fig. 7a)")
	}
	for _, op := range []Op{OpOR, OpNOR, OpXOR, OpXNOR, OpNOT} {
		if op.PadBit() != 0 {
			t.Errorf("%v must pad with zeros (Fig. 7b)", op)
		}
	}
}

func TestOpStrings(t *testing.T) {
	for op, want := range map[Op]string{OpOR: "OR", OpNAND: "NAND", OpMAJ: "MAJ"} {
		if got := op.String(); got != want {
			t.Errorf("String = %q, want %q", got, want)
		}
	}
}
