package dbc

import (
	"math/rand"
	"testing"

	"repro/internal/device"
	"repro/internal/params"
	"repro/internal/trace"
)

// refDBC is a wire-by-wire reference implementation of the DBC built on
// the single-wire device.Nanowire model. It mirrors the packed engine's
// operation semantics — including the order in which fault-injector
// randomness is consumed and the trace accounting rules — so a DBC and a
// refDBC driven by the same op sequence with same-seeded injectors must
// stay bit-identical in state, TR levels and stats.
type refDBC struct {
	wires []*device.Nanowire
	width int
	trd   params.TRD
	inj   *device.FaultInjector
	stats trace.Stats
}

func newRefDBC(width, rows int, trd params.TRD) *refDBC {
	r := &refDBC{width: width, trd: trd}
	r.wires = make([]*device.Nanowire, width)
	for i := range r.wires {
		w, err := device.NewNanowire(rows, trd)
		if err != nil {
			panic(err)
		}
		r.wires[i] = w
	}
	return r
}

func (d *refDBC) loadRow(r int, bits Row) {
	for i, w := range d.wires {
		w.SetRow(r, bits.Get(i))
	}
}

func (d *refDBC) peekRow(r int) Row {
	out := NewRow(d.width)
	for i, w := range d.wires {
		out.Set(i, w.PeekRow(r))
	}
	return out
}

// shift mirrors DBC.Shift: one injector draw per intended step, the
// resulting 1+e physical steps applied to every wire, one trace event.
func (d *refDBC) shift(steps int) error {
	dir := 1
	if steps < 0 {
		dir, steps = -1, -steps
	}
	for i := 0; i < steps; i++ {
		n := 1
		if e := d.inj.ShiftError(); e != 0 {
			n += e * dir
		}
		for j := 0; j < n; j++ {
			for _, w := range d.wires {
				var err error
				if dir > 0 {
					err = w.ShiftRight()
				} else {
					err = w.ShiftLeft()
				}
				if err != nil {
					return err
				}
			}
		}
		d.stats.ShiftSteps++
		d.stats.ShiftWires += d.width
	}
	return nil
}

func (d *refDBC) writePort(s device.Side, bits Row) {
	for i, w := range d.wires {
		w.WritePort(s, bits.Get(i))
	}
	d.stats.WriteSteps++
	d.stats.WriteBits += d.width
}

func (d *refDBC) readPort(s device.Side) Row {
	out := NewRow(d.width)
	for i, w := range d.wires {
		out.Set(i, w.ReadPort(s))
	}
	d.stats.ReadSteps++
	d.stats.ReadBits += d.width
	return out
}

// trAll mirrors DBC.TRAllPlanes: the injector is consumed through
// TRFaultMasks (wire-order draws) and applied as the scalar clamp.
func (d *refDBC) trAll() []int {
	levels := make([]int, d.width)
	for i, w := range d.wires {
		levels[i] = w.TR()
	}
	if flip, up, any := d.inj.TRFaultMasks(d.width); any {
		for i := range levels {
			if flip[i>>6]>>uint(i&63)&1 == 0 {
				continue
			}
			if up[i>>6]>>uint(i&63)&1 != 0 {
				if levels[i] < int(d.trd) {
					levels[i]++
				}
			} else if levels[i] > 0 {
				levels[i]--
			}
		}
	}
	d.stats.TRSteps++
	d.stats.TRWires += d.width
	return levels
}

// trWires mirrors DBC.TRWires: per-selected-wire PerturbTR draws.
func (d *refDBC) trWires(sel []int) []int {
	levels := make([]int, d.width)
	for i := range levels {
		levels[i] = -1
	}
	for _, wi := range sel {
		levels[wi] = d.inj.PerturbTR(d.wires[wi].TR(), int(d.trd))
	}
	d.stats.TRSteps++
	d.stats.TRWires += len(sel)
	return levels
}

func (d *refDBC) tw(bits Row) {
	for i, w := range d.wires {
		w.TW(bits.Get(i))
	}
	d.stats.TWSteps++
	d.stats.TWBits += d.width
}

// runDifferential drives one freshly built (DBC, refDBC) pair through a
// random op sequence and fails on any divergence in row state, port
// reads, TR levels, offsets or trace stats.
func runDifferential(t *testing.T, trd params.TRD, seed int64, faulty bool) {
	t.Helper()
	const width, rows = 67, 32
	d := MustNew(width, rows, trd)
	tr := &trace.Tracer{}
	d.SetTracer(tr)
	ref := newRefDBC(width, rows, trd)
	if faulty {
		// Same-seeded injectors: both engines must consume the identical
		// random stream in the identical order.
		d.SetFaultInjector(device.NewFaultInjector(0.05, 0.05, seed))
		ref.inj = device.NewFaultInjector(0.05, 0.05, seed)
	}
	rng := rand.New(rand.NewSource(seed))

	for r := 0; r < rows; r++ {
		row := randRow(width, rng)
		d.LoadRow(r, row)
		ref.loadRow(r, row)
	}

	maxOff := 0
	switch trd {
	case params.TRD3:
		maxOff = 1
	case params.TRD5:
		maxOff = 2
	default:
		maxOff = 3
	}
	for step := 0; step < 16; step++ {
		switch rng.Intn(7) {
		case 0: // bounded shift (margin 1 for shift-fault overshoot)
			delta := rng.Intn(3) - 1
			if off := d.Offset(); off+delta < -maxOff || off+delta > maxOff {
				delta = -delta
			}
			errD := d.Shift(delta)
			errR := ref.shift(delta)
			if (errD == nil) != (errR == nil) {
				t.Fatalf("trd=%v seed=%d step %d: shift legality diverged (%v vs %v)", trd, seed, step, errD, errR)
			}
			if errD != nil {
				return // both engines rejected the same illegal excursion
			}
		case 1: // port write
			side := device.Side(rng.Intn(2))
			bits := randRow(width, rng)
			d.WritePort(side, bits)
			ref.writePort(side, bits)
		case 2: // port read
			side := device.Side(rng.Intn(2))
			if got, want := d.ReadPort(side), ref.readPort(side); !got.Equal(want) {
				t.Fatalf("trd=%v seed=%d step %d: ReadPort %v diverged:\n got %v\nwant %v", trd, seed, step, side, got, want)
			}
		case 3: // whole-DBC transverse read
			got := d.TRAll()
			want := ref.trAll()
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("trd=%v seed=%d step %d: TRAll wire %d = %d, want %d", trd, seed, step, i, got[i], want[i])
				}
			}
		case 4: // masked transverse read on a random wire subset
			sel := rng.Perm(width)[:1+rng.Intn(width)]
			got, err := d.TRWires(sel)
			if err != nil {
				t.Fatalf("trd=%v seed=%d step %d: TRWires: %v", trd, seed, step, err)
			}
			want := ref.trWires(sel)
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("trd=%v seed=%d step %d: TRWires wire %d = %d, want %d", trd, seed, step, i, got[i], want[i])
				}
			}
		case 5: // transverse write
			bits := randRow(width, rng)
			d.TW(bits)
			ref.tw(bits)
		case 6: // full state audit
			if d.Offset() != ref.wires[0].Offset() {
				t.Fatalf("trd=%v seed=%d step %d: offset %d vs %d", trd, seed, step, d.Offset(), ref.wires[0].Offset())
			}
			for r := 0; r < rows; r++ {
				if got, want := d.PeekRow(r), ref.peekRow(r); !got.Equal(want) {
					t.Fatalf("trd=%v seed=%d step %d: row %d diverged:\n got %v\nwant %v", trd, seed, step, r, got, want)
				}
			}
		}
	}
	if got := tr.Stats(); got != ref.stats {
		t.Fatalf("trd=%v seed=%d: trace stats diverged:\n got %+v\nwant %+v", trd, seed, got, ref.stats)
	}
	for r := 0; r < rows; r++ {
		if got, want := d.PeekRow(r), ref.peekRow(r); !got.Equal(want) {
			t.Fatalf("trd=%v seed=%d: final row %d diverged", trd, seed, r)
		}
	}
}

// TestDBCDifferentialVsNanowireRef runs ≥1000 random op sequences per
// TRD against the wire-by-wire reference, fault-free.
func TestDBCDifferentialVsNanowireRef(t *testing.T) {
	n := 1000
	if testing.Short() {
		n = 100
	}
	for _, trd := range []params.TRD{params.TRD3, params.TRD5, params.TRD7} {
		for seq := 0; seq < n; seq++ {
			runDifferential(t, trd, int64(seq), false)
		}
	}
}

// TestDBCDifferentialVsNanowireRefFaulty repeats the differential run
// with TR and shift fault injection enabled on both engines.
func TestDBCDifferentialVsNanowireRefFaulty(t *testing.T) {
	n := 1000
	if testing.Short() {
		n = 100
	}
	for _, trd := range []params.TRD{params.TRD3, params.TRD5, params.TRD7} {
		for seq := 0; seq < n; seq++ {
			runDifferential(t, trd, 10_000+int64(seq), true)
		}
	}
}

// TestPeekReturnsOwnedCopies: rows handed out by PeekRow, ReadPort and
// PeekWindow must be detached from domain state — mutating them must not
// write through to the DBC (regression for the historical aliasing bug
// where the backing slice was shared).
func TestPeekReturnsOwnedCopies(t *testing.T) {
	d := MustNew(16, 32, params.TRD7)
	orig := FromBits(1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1, 0, 0, 1, 0, 1)
	d.LoadRow(5, orig)

	peek := d.PeekRow(5)
	for i := 0; i < peek.Len(); i++ {
		peek.Set(i, 1-peek.Get(i))
	}
	if !d.PeekRow(5).Equal(orig) {
		t.Fatal("mutating PeekRow result wrote through to DBC state")
	}

	row := d.RowAtPort(device.Left)
	before := d.PeekRow(row)
	got := d.ReadPort(device.Left)
	for i := 0; i < got.Len(); i++ {
		got.Set(i, 1)
	}
	if !d.PeekRow(row).Equal(before) {
		t.Fatal("mutating ReadPort result wrote through to DBC state")
	}

	win := d.PeekWindow(0)
	snapWin := win.Clone()
	for i := 0; i < win.Len(); i++ {
		win.Set(i, 1-win.Get(i))
	}
	if !d.PeekWindow(0).Equal(snapWin) {
		t.Fatal("mutating PeekWindow result wrote through to DBC state")
	}

	// LoadRow must copy its argument, not capture it.
	src := FromBits(1, 1, 1, 1, 0, 0, 0, 0, 1, 1, 1, 1, 0, 0, 0, 0)
	d.LoadRow(7, src)
	snap := d.PeekRow(7)
	src.Set(0, 0)
	if !d.PeekRow(7).Equal(snap) {
		t.Fatal("mutating the LoadRow source wrote through to DBC state")
	}
}

// TestTRWiresValidation: out-of-range and duplicate wire selections are
// rejected, and a rejected call leaves the trace untouched.
func TestTRWiresValidation(t *testing.T) {
	d := MustNew(8, 32, params.TRD7)
	tr := &trace.Tracer{}
	d.SetTracer(tr)
	for _, bad := range [][]int{{-1}, {8}, {0, 17}, {3, 3}, {0, 1, 2, 1}} {
		if _, err := d.TRWires(bad); err == nil {
			t.Errorf("TRWires(%v): want error, got nil", bad)
		}
	}
	if got := tr.Stats(); got != (trace.Stats{}) {
		t.Errorf("rejected TRWires calls traced events: %+v", got)
	}
	if levels, err := d.TRWires([]int{1, 6}); err != nil || levels[1] != 0 || levels[6] != 0 || levels[0] != -1 {
		t.Errorf("valid TRWires failed: levels=%v err=%v", levels, err)
	}
	if got := tr.Stats(); got.TRSteps != 1 || got.TRWires != 2 {
		t.Errorf("valid TRWires mistraced: %+v", got)
	}
}
