package dbc

import (
	"math/rand"
	"testing"

	"repro/internal/device"
	"repro/internal/params"
)

func benchDBC(b *testing.B, width int) *DBC {
	b.Helper()
	d := MustNew(width, 32, params.TRD7)
	rng := rand.New(rand.NewSource(9))
	for r := 0; r < 32; r++ {
		d.LoadRow(r, randRow(width, rng))
	}
	return d
}

// BenchmarkDBCShift measures one DBC-wide shift step on 512 wires — with
// the plane representation this is ring-buffer index bookkeeping, not
// per-wire domain movement.
func BenchmarkDBCShift(b *testing.B) {
	d := benchDBC(b, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dir := 1
		if i&1 == 1 {
			dir = -1
		}
		if err := d.Shift(dir); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDBCTRAll measures a whole-DBC transverse read on 512 wires:
// eight bit-plane words are folded into carry-save counters per word
// column.
func BenchmarkDBCTRAll(b *testing.B) {
	d := benchDBC(b, 512)
	lp := LevelPlanes{C0: make([]uint64, 8), C1: make([]uint64, 8), C2: make([]uint64, 8), N: 512}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.pa.TRPlanes(lp.C0, lp.C1, lp.C2)
	}
}

// BenchmarkDBCTRAllLevels includes the per-wire level expansion that
// scalar consumers (reliability models, max search) use.
func BenchmarkDBCTRAllLevels(b *testing.B) {
	d := benchDBC(b, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := d.TRAll(); len(got) != 512 {
			b.Fatal("bad length")
		}
	}
}

// BenchmarkDBCEvalPlanes measures the word-parallel gate evaluation of a
// sensed window across 512 wires.
func BenchmarkDBCEvalPlanes(b *testing.B) {
	d := benchDBC(b, 512)
	lp := d.TRAllPlanes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := EvalPlanes(OpXOR, lp, params.TRD7); got.Len() != 512 {
			b.Fatal("bad length")
		}
	}
}

// BenchmarkDBCPortRoundTrip measures an aligned write+read through the
// left access port on 512 wires.
func BenchmarkDBCPortRoundTrip(b *testing.B) {
	d := benchDBC(b, 512)
	bits := ConstRow(512, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.WritePort(device.Left, bits)
		if got := d.ReadPort(device.Left); got.Len() != 512 {
			b.Fatal("bad length")
		}
	}
}

// BenchmarkDBCTW measures a transverse write (write + segmented shift)
// across 512 wires.
func BenchmarkDBCTW(b *testing.B) {
	d := benchDBC(b, 512)
	bits := ConstRow(512, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.TW(bits)
	}
}
