// Package dbc models a CORUSCANT domain-block cluster (DBC): X parallel
// DWM nanowires of Y data rows that shift in lockstep and share local
// sensing circuitry and write drivers (Fig. 2(d)). PIM-enabled DBCs add a
// second access port per wire spaced a transverse-read distance away, a
// multi-level sense amplifier, and the PIM logic block of Fig. 4.
//
// The cluster state lives in a word-packed device.PlaneArray — one bit
// plane per physical domain row, 64 wires per word — so shifts are index
// bookkeeping and row transfers, transverse reads and bulk-bitwise
// evaluation run 64 wires per machine instruction. device.Nanowire is
// the single-wire reference model the packed engine is differentially
// tested against (refdbc_test.go).
//
// All state-changing operations are traced: each control step logs into a
// trace.Tracer from which cycle latency and energy are derived, and —
// when a telemetry.Recorder is attached — also emits one timestamped
// telemetry event (injected faults emit additional tagged events).
package dbc

import (
	"fmt"
	"math/bits"

	"repro/internal/device"
	"repro/internal/params"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// DBC is a PIM-enabled domain-block cluster.
type DBC struct {
	width int // X: nanowires (bits per row)
	words int // ceil(width/64)
	rows  int // Y: data rows
	trd   params.TRD

	pa     *device.PlaneArray
	tracer *trace.Tracer
	rec    *telemetry.Recorder
	src    telemetry.Source
	inj    *device.FaultInjector
}

// New returns a DBC of width nanowires × rows data domains with a PIM
// window of trd domains. All domains start at zero.
func New(width, rows int, trd params.TRD) (*DBC, error) {
	if width <= 0 {
		return nil, fmt.Errorf("dbc: non-positive width %d", width)
	}
	pa, err := device.NewPlaneArray(width, rows, trd)
	if err != nil {
		return nil, err
	}
	return &DBC{width: width, words: pa.Words(), rows: rows, trd: trd, pa: pa}, nil
}

// MustNew is New for static configurations known to be valid.
func MustNew(width, rows int, trd params.TRD) *DBC {
	d, err := New(width, rows, trd)
	if err != nil {
		panic(err)
	}
	return d
}

// Width returns X, the number of nanowires (bits per row).
func (d *DBC) Width() int { return d.width }

// Rows returns Y, the number of data rows.
func (d *DBC) Rows() int { return d.rows }

// TRD returns the PIM window length.
func (d *DBC) TRD() params.TRD { return d.trd }

// SetTracer directs subsequent operation accounting to t (nil disables).
func (d *DBC) SetTracer(t *trace.Tracer) { d.tracer = t }

// Tracer returns the current tracer (possibly nil).
func (d *DBC) Tracer() *trace.Tracer { return d.tracer }

// SetTelemetry attaches a telemetry recorder (nil disables); src tags
// this DBC's events — memory.Memory uses the DBC coordinates.
func (d *DBC) SetTelemetry(rec *telemetry.Recorder, src telemetry.Source) {
	d.rec, d.src = rec, src
}

// Recorder returns the attached telemetry recorder (possibly nil).
func (d *DBC) Recorder() *telemetry.Recorder { return d.rec }

// Source returns the DBC's telemetry source tag.
func (d *DBC) Source() telemetry.Source { return d.src }

// SetFaultInjector enables fault injection on TRs and shifts.
func (d *DBC) SetFaultInjector(f *device.FaultInjector) { d.inj = f }

// checkRow validates a row argument width.
func (d *DBC) checkRow(r Row) {
	if r.N != d.width {
		panic(fmt.Sprintf("dbc: row length %d, want %d", r.N, d.width))
	}
}

// LoadRow initializes data row r with bits, bypassing the ports. It
// models pre-existing memory contents (and Fig. 7 pre-populated padding)
// and is not traced. The row is copied; the caller keeps ownership.
func (d *DBC) LoadRow(r int, bits Row) {
	d.checkRow(bits)
	d.pa.SetRow(r, bits.Words)
}

// LoadConst fills data row r with the constant bit (Fig. 7 padding).
func (d *DBC) LoadConst(r int, bit uint8) {
	d.pa.FillRow(r, bit)
}

// PeekRow returns an owned copy of data row r without modelling an
// access. Callers may mutate the result freely; domain state is never
// aliased.
func (d *DBC) PeekRow(r int) Row {
	out := NewRow(d.width)
	d.pa.RowWords(r, out.Words)
	return out
}

// Offset returns the current shift displacement of the lockstepped wires.
func (d *DBC) Offset() int { return d.pa.Offset() }

// OffsetBounds returns the legal excursion of Offset.
func (d *DBC) OffsetBounds() (lo, hi int) { return d.pa.OffsetBounds() }

// Shift moves all nanowires by steps positions (positive = right), one
// traced control step per position. With a fault injector attached, each
// step may over- or under-shoot; CORUSCANT assumes orthogonal alignment
// fault tolerance (§II-A), so injected shift errors model its absence.
func (d *DBC) Shift(steps int) error {
	dir := 1
	if steps < 0 {
		dir, steps = -1, -steps
	}
	for i := 0; i < steps; i++ {
		n := 1
		if e := d.inj.ShiftError(); e != 0 {
			n += e * dir // over/under shoot relative to intended direction
			detail := "shift-overshoot"
			if e < 0 {
				detail = "shift-undershoot"
			}
			d.rec.Fault(d.src, detail, d.width)
		}
		for j := 0; j < n; j++ {
			if err := d.shiftOne(dir); err != nil {
				return err
			}
		}
		d.tracer.Shift(d.width)
		if d.rec != nil {
			// The explicit nil guard keeps the disabled path at one
			// branch: Offset() is only computed when somebody listens.
			d.rec.StepShift(d.src, d.width, d.pa.Offset())
		}
	}
	return nil
}

func (d *DBC) shiftOne(dir int) error {
	if dir > 0 {
		return d.pa.ShiftRight()
	}
	return d.pa.ShiftLeft()
}

// Align shifts the DBC so data row r is under the given port, tracing
// each shift step. It returns the number of steps taken.
func (d *DBC) Align(r int, s device.Side) (int, error) {
	steps := d.pa.AlignSteps(r, s)
	if err := d.Shift(steps); err != nil {
		return 0, err
	}
	if steps < 0 {
		steps = -steps
	}
	return steps, nil
}

// AlignNearest shifts row r under its nearest port and returns the port
// used and the steps taken.
func (d *DBC) AlignNearest(r int) (device.Side, int, error) {
	side, _ := d.pa.NearestPort(r)
	steps, err := d.Align(r, side)
	return side, steps, err
}

// RowAtPort returns the data row currently under the port, or -1.
func (d *DBC) RowAtPort(s device.Side) int { return d.pa.RowAtPort(s) }

// ReadPort reads the full row under the port (one traced step). The
// returned row is an owned copy.
func (d *DBC) ReadPort(s device.Side) Row {
	out := NewRow(d.width)
	d.ReadPortInto(s, out)
	return out
}

// ReadPortInto is ReadPort writing into a caller-owned row of the DBC's
// width, for hot paths that reuse a scratch row across reads instead of
// allocating per read.
func (d *DBC) ReadPortInto(s device.Side, out Row) {
	d.checkRow(out)
	d.pa.ReadPort(s, out.Words)
	d.tracer.Read(d.width)
	if d.rec != nil {
		d.rec.StepPort(d.src, telemetry.OpRead, d.width, d.pa.RowAtPort(s), portOf(s))
	}
}

// portOf maps a device port side to the telemetry Pos encoding.
func portOf(s device.Side) int {
	if s == device.Left {
		return telemetry.PortLeft
	}
	return telemetry.PortRight
}

// WritePort writes the full row under the port (one traced step).
func (d *DBC) WritePort(s device.Side, bits Row) {
	d.checkRow(bits)
	d.pa.WritePort(s, bits.Words)
	d.tracer.Write(d.width)
	if d.rec != nil {
		d.rec.StepPort(d.src, telemetry.OpWrite, d.width, d.pa.RowAtPort(s), portOf(s))
	}
}

// WriteScatter performs, in one traced control step, a set of port writes
// on distinct (wire, port) targets. This models the addition carry chain
// of Fig. 6 where S, C and C' are written simultaneously to the left port
// of wire k, the right port of wire k+1 and the left port of wire k+2.
func (d *DBC) WriteScatter(writes []PortBit) {
	left, right := false, false
	for _, pw := range writes {
		d.pa.SetPortBit(pw.Side, pw.Wire, pw.Bit)
		if pw.Side == device.Left {
			left = true
		} else {
			right = true
		}
	}
	d.tracer.Write(len(writes))
	if d.rec != nil {
		d.stepScatter(len(writes), left, right)
	}
}

// stepScatter records one scatter-write control step with wear
// attribution: the touched row(s) are whatever sits under the used
// port(s). With both ports written the event carries the left-port row
// and PortBoth — the right-port row is TRD-1 rows further, which the
// profiler reconstructs from the geometry.
func (d *DBC) stepScatter(count int, left, right bool) {
	switch {
	case left && right:
		d.rec.StepPort(d.src, telemetry.OpWrite, count, d.pa.RowAtPort(device.Left), telemetry.PortBoth)
	case right:
		d.rec.StepPort(d.src, telemetry.OpWrite, count, d.pa.RowAtPort(device.Right), telemetry.PortRight)
	default:
		// Left-only, or an empty scatter (count 0) that still costs the
		// control step: attribute to the left port like the carry chain.
		d.rec.StepPort(d.src, telemetry.OpWrite, count, d.pa.RowAtPort(device.Left), telemetry.PortLeft)
	}
}

// PortBit names a single-bit port write target for WriteScatter.
type PortBit struct {
	Wire int
	Side device.Side
	Bit  uint8
}

// LevelPlanes is the bit-sliced output of a whole-DBC transverse read:
// the sensed level of wire w is the 3-bit number c2c1c0 read at bit
// position w%64 of word w/64 of the three counter planes. Word-parallel
// consumers (EvalPlanes, the carry-save reduction) combine the planes
// directly; Levels expands to per-wire integers.
type LevelPlanes struct {
	C0, C1, C2 []uint64
	N          int
}

// Level returns the sensed level of wire w.
func (lp LevelPlanes) Level(w int) int {
	word, bit := w>>6, uint(w&63)
	return int(lp.C0[word]>>bit&1) | int(lp.C1[word]>>bit&1)<<1 | int(lp.C2[word]>>bit&1)<<2
}

// Levels expands the planes into one level per wire.
func (lp LevelPlanes) Levels() []int {
	out := make([]int, lp.N)
	for w := range out {
		out[w] = lp.Level(w)
	}
	return out
}

// NewLevelPlanes returns zeroed level planes for a DBC of the given
// width, suitable as the destination of TRAllPlanesInto/TRMaskedInto.
func NewLevelPlanes(width int) LevelPlanes {
	words := (width + 63) / 64
	backing := make([]uint64, 3*words)
	return LevelPlanes{
		C0: backing[:words:words],
		C1: backing[words : 2*words : 2*words],
		C2: backing[2*words:],
		N:  width,
	}
}

// TRAllPlanes performs a transverse read on every nanowire in one traced
// control step, returning the bit-sliced level planes for word-parallel
// evaluation.
func (d *DBC) TRAllPlanes() LevelPlanes {
	lp := NewLevelPlanes(d.width)
	d.TRAllPlanesInto(&lp)
	return lp
}

// TRAllPlanesInto is TRAllPlanes writing into caller-owned planes (sized
// by NewLevelPlanes), for hot paths that reuse a scratch buffer across
// transverse reads instead of allocating per read.
func (d *DBC) TRAllPlanesInto(lp *LevelPlanes) {
	d.pa.TRPlanes(lp.C0, lp.C1, lp.C2)
	if flip, up, any := d.inj.TRFaultMasks(d.width); any {
		device.PerturbTRPlanes(lp.C0, lp.C1, lp.C2, flip, up, int(d.trd))
		d.rec.Fault(d.src, "tr-level", device.OnesCount(flip))
	}
	d.tracer.TR(d.width)
	d.rec.Step(d.src, telemetry.OpTR, d.width)
}

// TRAll performs a transverse read on every nanowire in one traced
// control step, returning the per-wire '1' counts (levels 0..TRD).
func (d *DBC) TRAll() []int {
	return d.TRAllPlanes().Levels()
}

// TRWires performs a transverse read on the selected nanowires in one
// traced control step (the memory controller masks the other bitlines,
// §III-E). Unselected entries of the result are -1. Duplicate or
// out-of-range wire indices are rejected: a physical bitline cannot be
// sensed twice in one step, and silently double-counting would corrupt
// the energy accounting of the trace.
func (d *DBC) TRWires(wires []int) ([]int, error) {
	levels := make([]int, d.width)
	if err := d.TRWiresInto(levels, wires); err != nil {
		return nil, err
	}
	return levels, nil
}

// TRWiresInto is TRWires writing into a caller-owned levels buffer of
// length Width(), for hot paths that reuse the buffer across reads. The
// buffer is reset to -1 before sensing; validation and fault-injection
// draw order match TRWires exactly.
func (d *DBC) TRWiresInto(levels []int, wires []int) error {
	if len(levels) != d.width {
		return fmt.Errorf("dbc: TR levels buffer length %d, want %d", len(levels), d.width)
	}
	for i := range levels {
		levels[i] = -1
	}
	for _, w := range wires {
		if w < 0 || w >= d.width {
			return fmt.Errorf("dbc: TR wire %d out of range [0,%d)", w, d.width)
		}
		if levels[w] != -1 {
			return fmt.Errorf("dbc: duplicate TR wire %d", w)
		}
		lvl := d.pa.TRWire(w)
		sensed := d.inj.PerturbTR(lvl, int(d.trd))
		if sensed != lvl {
			d.rec.Fault(d.src, "tr-level", 1)
		}
		levels[w] = sensed
	}
	d.tracer.TR(len(wires))
	d.rec.Step(d.src, telemetry.OpTR, len(wires))
	return nil
}

// TRMasked performs a transverse read on the bitlines selected by mask
// (bit w%64 of word w/64) in one traced control step — the word-parallel
// form of TRWires for periodic wire selections such as the Fig. 6 carry
// chain, where per-index validation is statically unnecessary. wires
// must be the number of selected bitlines (trace accounting). Unselected
// lanes of the returned planes are zero. With a fault injector attached,
// the per-wire perturbation draws happen in increasing wire order,
// consuming exactly the random stream of the equivalent TRWires call.
func (d *DBC) TRMasked(mask []uint64, wires int) LevelPlanes {
	lp := NewLevelPlanes(d.width)
	d.TRMaskedInto(&lp, mask, wires)
	return lp
}

// TRMaskedInto is TRMasked writing into caller-owned planes (sized by
// NewLevelPlanes), for hot paths that reuse a scratch buffer.
func (d *DBC) TRMaskedInto(lp *LevelPlanes, mask []uint64, wires int) {
	d.pa.TRPlanes(lp.C0, lp.C1, lp.C2)
	for i := range lp.C0 {
		lp.C0[i] &= mask[i]
		lp.C1[i] &= mask[i]
		lp.C2[i] &= mask[i]
	}
	if d.inj != nil && d.inj.TRProb != 0 {
		for i, m := range mask {
			for m != 0 {
				w := i<<6 + bits.TrailingZeros64(m)
				m &= m - 1
				lvl := lp.Level(w)
				if nl := d.inj.PerturbTR(lvl, int(d.trd)); nl != lvl {
					word, bit := w>>6, uint(w&63)
					clr := ^(uint64(1) << bit)
					lp.C0[word] = lp.C0[word]&clr | uint64(nl&1)<<bit
					lp.C1[word] = lp.C1[word]&clr | uint64(nl>>1&1)<<bit
					lp.C2[word] = lp.C2[word]&clr | uint64(nl>>2&1)<<bit
					d.rec.Fault(d.src, "tr-level", 1)
				}
			}
		}
	}
	d.tracer.TR(wires)
	d.rec.Step(d.src, telemetry.OpTR, wires)
}

// WriteScatterPlanes performs, in one traced control step, word-parallel
// masked writes to both access ports: src bits on wires selected by the
// matching mask overwrite that port's domain, other wires are untouched.
// It is the plane form of WriteScatter for writes already organized as
// bit planes (the Fig. 6 S/C/C' scatter). count must be the number of
// individual bits written (trace accounting). Nil masks skip that port.
func (d *DBC) WriteScatterPlanes(left, leftMask, right, rightMask []uint64, count int) {
	d.pa.WritePortMasked(device.Left, left, leftMask)
	d.pa.WritePortMasked(device.Right, right, rightMask)
	d.tracer.Write(count)
	if d.rec != nil {
		d.stepScatter(count, leftMask != nil, rightMask != nil)
	}
}

// TW performs a transverse write of a full row (§IV-B): on every wire the
// bit is written under the left port while the window contents shift one
// position right, ejecting the domain under the right port. One traced
// control step.
func (d *DBC) TW(bits Row) {
	d.checkRow(bits)
	d.pa.TW(bits.Words)
	d.tracer.TW(d.width)
	if d.rec != nil {
		d.rec.StepPort(d.src, telemetry.OpTW, d.width, d.pa.RowAtPort(device.Left), telemetry.PortLeft)
	}
}

// WindowRow maps window position i (0 = left port) to the data row
// currently aligned there, or -1 for an overhead domain.
func (d *DBC) WindowRow(i int) int { return d.pa.WindowRow(i) }

// PokeWindow overwrites the domain at window position i on every wire
// without tracing. It models Fig. 7 pre-populated padding constants that
// are maintained outside the traced operation.
func (d *DBC) PokeWindow(i int, bits Row) {
	d.checkRow(bits)
	d.pa.PokeWindow(i, bits.Words)
}

// PokeWindowConst fills window position i with a constant on every wire,
// without tracing (Fig. 7 padding).
func (d *DBC) PokeWindowConst(i int, bit uint8) {
	d.pa.PokeWindowFill(i, bit)
}

// PeekWindow returns an owned copy of the row at window position i
// without tracing.
func (d *DBC) PeekWindow(i int) Row {
	out := NewRow(d.width)
	d.pa.PeekWindow(i, out.Words)
	return out
}
