// Package dbc models a CORUSCANT domain-block cluster (DBC): X parallel
// DWM nanowires of Y data rows that shift in lockstep and share local
// sensing circuitry and write drivers (Fig. 2(d)). PIM-enabled DBCs add a
// second access port per wire spaced a transverse-read distance away, a
// multi-level sense amplifier, and the PIM logic block of Fig. 4.
//
// All state-changing operations are traced: each control step logs into a
// trace.Tracer from which cycle latency and energy are derived.
package dbc

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/params"
	"repro/internal/trace"
)

// Row is a horizontal bit vector across the DBC's nanowires: Row[w] is
// the bit stored by nanowire w, one of 0 or 1.
type Row = []uint8

// DBC is a PIM-enabled domain-block cluster.
type DBC struct {
	width int // X: nanowires (bits per row)
	rows  int // Y: data rows
	trd   params.TRD

	wires  []*device.Nanowire
	tracer *trace.Tracer
	inj    *device.FaultInjector
}

// New returns a DBC of width nanowires × rows data domains with a PIM
// window of trd domains. All domains start at zero.
func New(width, rows int, trd params.TRD) (*DBC, error) {
	if width <= 0 {
		return nil, fmt.Errorf("dbc: non-positive width %d", width)
	}
	d := &DBC{width: width, rows: rows, trd: trd, wires: make([]*device.Nanowire, width)}
	for i := range d.wires {
		w, err := device.NewNanowire(rows, trd)
		if err != nil {
			return nil, err
		}
		d.wires[i] = w
	}
	return d, nil
}

// MustNew is New for static configurations known to be valid.
func MustNew(width, rows int, trd params.TRD) *DBC {
	d, err := New(width, rows, trd)
	if err != nil {
		panic(err)
	}
	return d
}

// Width returns X, the number of nanowires (bits per row).
func (d *DBC) Width() int { return d.width }

// Rows returns Y, the number of data rows.
func (d *DBC) Rows() int { return d.rows }

// TRD returns the PIM window length.
func (d *DBC) TRD() params.TRD { return d.trd }

// SetTracer directs subsequent operation accounting to t (nil disables).
func (d *DBC) SetTracer(t *trace.Tracer) { d.tracer = t }

// Tracer returns the current tracer (possibly nil).
func (d *DBC) Tracer() *trace.Tracer { return d.tracer }

// SetFaultInjector enables fault injection on TRs and shifts.
func (d *DBC) SetFaultInjector(f *device.FaultInjector) { d.inj = f }

// checkRow validates a bit-vector argument length.
func (d *DBC) checkRow(bits Row) {
	if len(bits) != d.width {
		panic(fmt.Sprintf("dbc: row length %d, want %d", len(bits), d.width))
	}
}

// LoadRow initializes data row r with bits, bypassing the ports. It
// models pre-existing memory contents (and Fig. 7 pre-populated padding)
// and is not traced.
func (d *DBC) LoadRow(r int, bits Row) {
	d.checkRow(bits)
	for w, wire := range d.wires {
		wire.SetRow(r, bits[w])
	}
}

// LoadConst fills data row r with the constant bit (Fig. 7 padding).
func (d *DBC) LoadConst(r int, bit uint8) {
	for _, wire := range d.wires {
		wire.SetRow(r, bit)
	}
}

// PeekRow returns a copy of data row r without modelling an access.
func (d *DBC) PeekRow(r int) Row {
	out := make(Row, d.width)
	for w, wire := range d.wires {
		out[w] = wire.PeekRow(r)
	}
	return out
}

// Offset returns the current shift displacement of the lockstepped wires.
func (d *DBC) Offset() int { return d.wires[0].Offset() }

// Shift moves all nanowires by steps positions (positive = right), one
// traced control step per position. With a fault injector attached, each
// step may over- or under-shoot; CORUSCANT assumes orthogonal alignment
// fault tolerance (§II-A), so injected shift errors model its absence.
func (d *DBC) Shift(steps int) error {
	dir := 1
	if steps < 0 {
		dir, steps = -1, -steps
	}
	for i := 0; i < steps; i++ {
		n := 1
		if e := d.inj.ShiftError(); e != 0 {
			n += e * dir // over/under shoot relative to intended direction
		}
		for j := 0; j < n; j++ {
			if err := d.shiftOne(dir); err != nil {
				return err
			}
		}
		d.tracer.Shift(d.width)
	}
	return nil
}

func (d *DBC) shiftOne(dir int) error {
	for _, wire := range d.wires {
		var err error
		if dir > 0 {
			err = wire.ShiftRight()
		} else {
			err = wire.ShiftLeft()
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// Align shifts the DBC so data row r is under the given port, tracing
// each shift step. It returns the number of steps taken.
func (d *DBC) Align(r int, s device.Side) (int, error) {
	steps := d.wires[0].AlignSteps(r, s)
	if err := d.Shift(steps); err != nil {
		return 0, err
	}
	if steps < 0 {
		steps = -steps
	}
	return steps, nil
}

// AlignNearest shifts row r under its nearest port and returns the port
// used and the steps taken.
func (d *DBC) AlignNearest(r int) (device.Side, int, error) {
	side, _ := d.wires[0].NearestPort(r)
	steps, err := d.Align(r, side)
	return side, steps, err
}

// RowAtPort returns the data row currently under the port, or -1.
func (d *DBC) RowAtPort(s device.Side) int { return d.wires[0].RowAtPort(s) }

// ReadPort reads the full row under the port (one traced step).
func (d *DBC) ReadPort(s device.Side) Row {
	out := make(Row, d.width)
	for w, wire := range d.wires {
		out[w] = wire.ReadPort(s)
	}
	d.tracer.Read(d.width)
	return out
}

// WritePort writes the full row under the port (one traced step).
func (d *DBC) WritePort(s device.Side, bits Row) {
	d.checkRow(bits)
	for w, wire := range d.wires {
		wire.WritePort(s, bits[w])
	}
	d.tracer.Write(d.width)
}

// PortWrite is a single-wire port write used as part of a compound step;
// callers are responsible for tracing the enclosing step.
func (d *DBC) portWrite(wire int, s device.Side, bit uint8) {
	d.wires[wire].WritePort(s, bit)
}

// WriteScatter performs, in one traced control step, a set of port writes
// on distinct (wire, port) targets. This models the addition carry chain
// of Fig. 6 where S, C and C' are written simultaneously to the left port
// of wire k, the right port of wire k+1 and the left port of wire k+2.
func (d *DBC) WriteScatter(writes []PortBit) {
	for _, pw := range writes {
		d.portWrite(pw.Wire, pw.Side, pw.Bit)
	}
	d.tracer.Write(len(writes))
}

// PortBit names a single-bit port write target for WriteScatter.
type PortBit struct {
	Wire int
	Side device.Side
	Bit  uint8
}

// TRAll performs a transverse read on every nanowire in one traced
// control step, returning the per-wire '1' counts (levels 0..TRD).
func (d *DBC) TRAll() []int {
	levels := make([]int, d.width)
	for w, wire := range d.wires {
		levels[w] = d.inj.PerturbTR(wire.TR(), int(d.trd))
	}
	d.tracer.TR(d.width)
	return levels
}

// TRWires performs a transverse read on the selected nanowires in one
// traced control step (the memory controller masks the other bitlines,
// §III-E). Unselected entries of the result are -1.
func (d *DBC) TRWires(wires []int) []int {
	levels := make([]int, d.width)
	for i := range levels {
		levels[i] = -1
	}
	for _, w := range wires {
		levels[w] = d.inj.PerturbTR(d.wires[w].TR(), int(d.trd))
	}
	d.tracer.TR(len(wires))
	return levels
}

// TW performs a transverse write of a full row (§IV-B): on every wire the
// bit is written under the left port while the window contents shift one
// position right, ejecting the domain under the right port. One traced
// control step.
func (d *DBC) TW(bits Row) {
	d.checkRow(bits)
	for w, wire := range d.wires {
		wire.TW(bits[w])
	}
	d.tracer.TW(d.width)
}

// WindowRow maps window position i (0 = left port) to the data row
// currently aligned there, or -1 for an overhead domain.
func (d *DBC) WindowRow(i int) int { return d.wires[0].WindowRow(i) }

// PokeWindow overwrites the domain at window position i on every wire
// without tracing. It models Fig. 7 pre-populated padding constants that
// are maintained outside the traced operation.
func (d *DBC) PokeWindow(i int, bits Row) {
	d.checkRow(bits)
	for w := range d.wires {
		d.pokeWindowWire(w, i, bits[w])
	}
}

// PokeWindowConst fills window position i with a constant on every wire,
// without tracing (Fig. 7 padding).
func (d *DBC) PokeWindowConst(i int, bit uint8) {
	for w := range d.wires {
		d.pokeWindowWire(w, i, bit)
	}
}

func (d *DBC) pokeWindowWire(w, i int, bit uint8) {
	wire := d.wires[w]
	r := wire.WindowRow(i)
	if r >= 0 {
		wire.SetRow(r, bit)
		return
	}
	// Overhead domain inside the window: reach it through the port
	// machinery by writing the physical slot directly.
	wire.PokeWindow(i, bit)
}

// PeekWindow returns the row at window position i without tracing.
func (d *DBC) PeekWindow(i int) Row {
	out := make(Row, d.width)
	for w, wire := range d.wires {
		out[w] = wire.PeekWindowBit(i)
	}
	return out
}
