package dbc

import (
	"fmt"
	"math/bits"
)

// Row is a horizontal bit vector across a DBC's nanowires, word-packed
// 64 wires per machine word: the bit of wire w is bit w%64 of
// Words[w/64]. It is the unit of data exchanged with a DBC — port
// reads/writes, transverse writes and loads all move whole rows — and
// matches the bit-plane layout of device.PlaneArray, so those transfers
// are straight word copies.
//
// Ownership: every Row returned by a DBC accessor (PeekRow, ReadPort,
// PeekWindow, TRAll-derived results) is an owned copy; mutating it never
// aliases domain state. Rows passed *into* a DBC are copied on entry.
// The zero value Row{} is the "no row" sentinel (it has N == 0) used
// where a nil slice was idiomatic before the packed representation.
//
// Bits beyond N in the last word must be zero; all constructors and
// Set maintain that invariant, and word-level writers should finish
// with MaskTail.
type Row struct {
	Words []uint64
	N     int
}

// NewRow returns an all-zero row of n wires.
func NewRow(n int) Row {
	return Row{Words: make([]uint64, (n+63)/64), N: n}
}

// FromBits packs per-wire bits into a row.
func FromBits(bitsIn ...uint8) Row {
	r := NewRow(len(bitsIn))
	for i, b := range bitsIn {
		if b&1 != 0 {
			r.Words[i>>6] |= 1 << uint(i&63)
		}
	}
	return r
}

// ConstRow returns a row of n wires all holding bit.
func ConstRow(n int, bit uint8) Row {
	r := NewRow(n)
	if bit&1 != 0 {
		for i := range r.Words {
			r.Words[i] = ^uint64(0)
		}
		r.MaskTail()
	}
	return r
}

// Len returns the number of wires.
func (r Row) Len() int { return r.N }

// IsEmpty reports whether r is the zero-value "no row" sentinel.
func (r Row) IsEmpty() bool { return r.N == 0 && r.Words == nil }

// Get returns the bit of wire i.
func (r Row) Get(i int) uint8 {
	if i < 0 || i >= r.N {
		panic(fmt.Sprintf("dbc: wire %d out of range [0,%d)", i, r.N))
	}
	return uint8(r.Words[i>>6]>>uint(i&63)) & 1
}

// Set writes the bit of wire i. The receiver's backing words are
// mutated, so Set works through any copy of the Row header.
func (r Row) Set(i int, b uint8) {
	if i < 0 || i >= r.N {
		panic(fmt.Sprintf("dbc: wire %d out of range [0,%d)", i, r.N))
	}
	if b&1 != 0 {
		r.Words[i>>6] |= 1 << uint(i&63)
	} else {
		r.Words[i>>6] &^= 1 << uint(i&63)
	}
}

// Bits unpacks the row into one uint8 per wire.
func (r Row) Bits() []uint8 {
	out := make([]uint8, r.N)
	for i := range out {
		out[i] = uint8(r.Words[i>>6]>>uint(i&63)) & 1
	}
	return out
}

// Clone returns an owned copy of the row.
func (r Row) Clone() Row {
	out := Row{Words: make([]uint64, len(r.Words)), N: r.N}
	copy(out.Words, r.Words)
	return out
}

// Equal reports whether two rows hold the same bits.
func (r Row) Equal(o Row) bool {
	if r.N != o.N {
		return false
	}
	for i, w := range r.Words {
		if w != o.Words[i] {
			return false
		}
	}
	return true
}

// OnesCount returns the number of '1' bits in the row.
func (r Row) OnesCount() int {
	n := 0
	for _, w := range r.Words {
		n += bits.OnesCount64(w)
	}
	return n
}

// TailMask returns the valid-bit mask of the last word of an n-wire row.
func TailMask(n int) uint64 {
	if rem := n % 64; rem != 0 {
		return 1<<uint(rem) - 1
	}
	return ^uint64(0)
}

// MaskTail clears stray bits beyond N in the last word, restoring the
// Row invariant after word-level surgery on Words.
func (r Row) MaskTail() {
	if len(r.Words) > 0 {
		r.Words[len(r.Words)-1] &= TailMask(r.N)
	}
}

func (r Row) String() string {
	b := make([]byte, r.N)
	for i := range b {
		b[i] = '0' + byte(r.Get(i))
	}
	return string(b)
}
