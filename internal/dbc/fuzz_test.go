package dbc

import "testing"

// FuzzRowRoundTrip drives the Row bit accessors with arbitrary widths
// and bit patterns and checks the representation invariants: Bits/
// FromBits round-trips, Get agrees with the bits written by Set, Clone
// is equal but does not alias, and no word ever carries bits beyond N.
func FuzzRowRoundTrip(f *testing.F) {
	f.Add(8, []byte{0xAB})
	f.Add(70, []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add(64, []byte{})
	f.Add(1, []byte{0x01})
	f.Fuzz(func(t *testing.T, n int, data []byte) {
		if n <= 0 || n > 4096 {
			t.Skip()
		}
		r := NewRow(n)
		for i := 0; i < n; i++ {
			var bit uint8
			if i/8 < len(data) {
				bit = data[i/8] >> uint(i%8) & 1
			}
			r.Set(i, bit)
		}
		junk := ^TailMask(n)
		if got := r.Words[len(r.Words)-1] & junk; got != 0 {
			t.Fatalf("Set left tail bits %#x beyond N=%d", got, n)
		}
		for i := 0; i < n; i++ {
			var want uint8
			if i/8 < len(data) {
				want = data[i/8] >> uint(i%8) & 1
			}
			if got := r.Get(i); got != want {
				t.Fatalf("Get(%d) = %d, want %d", i, got, want)
			}
		}
		rt := FromBits(r.Bits()...)
		if !rt.Equal(r) {
			t.Fatalf("FromBits(Bits()) != original for N=%d", n)
		}
		if got := rt.Words[len(rt.Words)-1] & junk; got != 0 {
			t.Fatalf("FromBits left tail bits %#x beyond N=%d", got, n)
		}
		c := r.Clone()
		if !c.Equal(r) {
			t.Fatalf("Clone not equal for N=%d", n)
		}
		c.Set(0, 1-r.Get(0))
		if c.Equal(r) {
			t.Fatalf("Clone aliases original for N=%d", n)
		}
		ones := 0
		for _, b := range r.Bits() {
			ones += int(b)
		}
		if got := r.OnesCount(); got != ones {
			t.Fatalf("OnesCount = %d, want %d", got, ones)
		}
	})
}
