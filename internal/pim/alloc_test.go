package pim

import (
	"testing"

	"repro/internal/dbc"
	"repro/internal/params"
)

// The ISSUE-4 allocation regression gates: with the scratch arena in
// place, the steady state of each hot operation is exactly one
// allocation — the owned result row the dbc.Row ownership contract
// requires (scratch rows must never escape). The historical numbers
// these tests pin down were AddMulti 2, Multiply 31 and MaxTR 73
// allocs/op (BENCH_plane.json, pre-arena).
func TestAllocsPerOpSteadyState(t *testing.T) {
	u := MustNewUnit(params.DefaultConfig())
	width := u.Width()

	operands := make([]dbc.Row, 5)
	for i := range operands {
		vals := make([]uint64, width/8)
		for l := range vals {
			vals[l] = uint64(3*i+5*l+1) % 256
		}
		operands[i] = MustPackLanes(vals, 8, width)
	}
	mvals := make([]uint64, width/16)
	for l := range mvals {
		mvals[l] = uint64(7*l+3) % 256
	}
	ma := MustPackLanes(mvals, 16, width)
	mb := MustPackLanes(mvals, 16, width)

	dvals := make([]uint64, width/8)
	for l := range dvals {
		dvals[l] = uint64(5*l+3) % 256 // divisor row, some small, none huge
	}
	da := operands[0]
	dd := MustPackLanes(dvals, 8, width)

	cases := []struct {
		name string
		max  float64
		op   func() error
	}{
		{"AddMulti", 1, func() error { _, err := u.AddMulti(operands, 8); return err }},
		{"Multiply", 1, func() error { _, err := u.Multiply(ma, mb, 8); return err }},
		{"MaxTR", 1, func() error { _, err := u.MaxTR(operands, 8); return err }},
		// The new ops return owned rows too: DivMod q+r, DivModSigned
		// q+r, one result row each for shift and FMA.
		{"DivMod", 2, func() error { _, _, err := u.DivMod(da, dd, 8); return err }},
		{"DivModSigned", 2, func() error { _, _, err := u.DivModSigned(da, dd, 8); return err }},
		{"LogicalShift", 1, func() error { _, err := u.LogicalShift(da, 3, 8, true); return err }},
		{"FMA", 1, func() error { _, err := u.FMA(ma, mb, operands[1], 8); return err }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Warm the arena so pool growth is not measured.
			if err := tc.op(); err != nil {
				t.Fatal(err)
			}
			got := testing.AllocsPerRun(20, func() {
				if err := tc.op(); err != nil {
					t.Fatal(err)
				}
			})
			if got > tc.max {
				t.Errorf("%s: %.1f allocs/op, want ≤ %.0f (scratch arena regression)", tc.name, got, tc.max)
			}
		})
	}
}

// TestScratchReuseKeepsResultsIndependent guards the ownership
// contract the arena makes dangerous to break: results returned by
// consecutive operations must not share storage with the recycled
// scratch rows or with each other.
func TestScratchReuseKeepsResultsIndependent(t *testing.T) {
	u := MustNewUnit(params.DefaultConfig())
	width := u.Width()
	a := MustPackLanes([]uint64{3, 5, 7}, 16, width)
	b := MustPackLanes([]uint64{9, 11, 13}, 16, width)

	p1, err := u.Multiply(a, b, 8)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]uint64(nil), p1.Words...)
	// A second op of every arena-backed kind recycles all scratch rows.
	if _, err := u.Multiply(b, a, 8); err != nil {
		t.Fatal(err)
	}
	if _, err := u.MaxTR([]dbc.Row{a, b}, 16); err != nil {
		t.Fatal(err)
	}
	if _, err := u.AddMulti([]dbc.Row{a, b}, 16); err != nil {
		t.Fatal(err)
	}
	for i, w := range p1.Words {
		if w != want[i] {
			t.Fatalf("result mutated by later ops at word %d: scratch row escaped", i)
		}
	}
}
