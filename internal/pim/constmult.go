package pim

import (
	"fmt"

	"repro/internal/dbc"
	"repro/internal/telemetry"
)

// SignedDigit is one term of a canonical signed-digit (CSD) recoding: the
// value Sign·2^Shift. The paper (§III-D1) uses the P/0/N Booth-style
// notation for the same thing.
type SignedDigit struct {
	Shift int
	Sign  int // +1 or -1
}

// CSD returns the canonical signed-digit recoding of c: a minimal-weight
// representation with no two adjacent non-zero digits, so runs of '1's
// collapse into one addition and one subtraction (the paper's example:
// 20061 → POPOONOPONOONOP, nine '1's replaced by eight signed digits).
func CSD(c uint64) []SignedDigit {
	var digits []SignedDigit
	for i := 0; c != 0; i++ {
		if c&1 == 1 {
			// A run of ones ...0111 is cheaper as +2^k − 2^i when at
			// least two ones run together (c mod 4 == 3).
			if c&3 == 3 {
				digits = append(digits, SignedDigit{Shift: i, Sign: -1})
				c += 1 // borrow propagates the run into a single carry
			} else {
				digits = append(digits, SignedDigit{Shift: i, Sign: +1})
				c -= 1
			}
		}
		c >>= 1
	}
	return digits
}

// CSDValue evaluates a signed-digit recoding (for tests).
func CSDValue(digits []SignedDigit) int64 {
	var v int64
	for _, d := range digits {
		v += int64(d.Sign) * (1 << uint(d.Shift))
	}
	return v
}

// ConstMulPlan is a compiled schedule for multiplying by a known constant
// (§III-D1): groups of signed-digit terms, each group one multi-operand
// addition step. Negative terms are realized as one's complements with
// the "+1" corrections pre-summed into a single constant operand, so a
// group with negatives still takes one addition step.
type ConstMulPlan struct {
	Constant uint64
	Groups   [][]SignedDigit
}

// PlanConstMul compiles a constant into addition groups of at most
// maxOperands terms (reserving one operand slot for the +1 correction
// row when a group contains negative terms). Each group after the first
// also carries the previous group's running sum as an operand.
func PlanConstMul(c uint64, maxOperands int) (ConstMulPlan, error) {
	if maxOperands < 2 {
		return ConstMulPlan{}, fmt.Errorf("pim: const-mul needs at least 2-operand addition, got %d", maxOperands)
	}
	digits := CSD(c)
	if maxOperands == 2 {
		// A two-operand adder cannot host a complemented term plus its
		// +1 correction in one step, so fall back to the plain binary
		// (all-positive) expansion.
		digits = digits[:0]
		for i := 0; i < 64; i++ {
			if c&(1<<uint(i)) != 0 {
				digits = append(digits, SignedDigit{Shift: i, Sign: +1})
			}
		}
	}
	plan := ConstMulPlan{Constant: c}
	i := 0
	first := true
	for i < len(digits) {
		// Operand slots: the running sum (groups after the first)
		// consumes one; the first negative term consumes one extra for
		// the shared +1 correction row. Fill greedily.
		budget := maxOperands
		if !first {
			budget--
		}
		var group []SignedDigit
		hasNeg := false
		for i < len(digits) {
			d := digits[i]
			need := 1
			if d.Sign < 0 && !hasNeg {
				need = 2
			}
			if need > budget {
				break
			}
			budget -= need
			if d.Sign < 0 {
				hasNeg = true
			}
			group = append(group, d)
			i++
		}
		if len(group) == 0 {
			return ConstMulPlan{}, fmt.Errorf("pim: const-mul plan stalled at digit %d", i)
		}
		plan.Groups = append(plan.Groups, group)
		first = false
	}
	return plan, nil
}

// AdditionSteps returns the number of multi-operand addition steps the
// plan needs (the paper's metric: 20061·A takes two steps with TRD=7).
func (p ConstMulPlan) AdditionSteps() int { return len(p.Groups) }

// ConstMultiply multiplies the lane values of a by the compile-time
// constant c using shifted copies and the planned addition steps. Lanes
// are 2·bw bits wide with the bw-bit input in the low half; products are
// reduced modulo 2^(2·bw).
func (u *Unit) ConstMultiply(a dbc.Row, c uint64, bw int) (dbc.Row, error) {
	defer u.Span("const-mult")()
	laneW := 2 * bw
	if err := u.checkBlocksize(laneW); err != nil {
		return dbc.Row{}, fmt.Errorf("pim: product lane: %w", err)
	}
	if c == 0 {
		return zeroRow(u.D.Width()), nil
	}
	plan, err := PlanConstMul(c, u.maxAddOperands())
	if err != nil {
		return dbc.Row{}, err
	}
	width := u.D.Width()
	if a.N != width {
		return dbc.Row{}, fmt.Errorf("pim: operand width %d, want %d", a.N, width)
	}

	// Generate the shifted copies A<<s for every distinct shift in the
	// plan, charging the lateral copy chain up to the largest shift.
	maxShift := 0
	for _, g := range plan.Groups {
		for _, d := range g {
			if d.Shift > maxShift {
				maxShift = d.Shift
			}
		}
	}
	shifted := make([]dbc.Row, maxShift+1)
	shifted[0] = a
	for s := 1; s <= maxShift; s++ {
		shifted[s] = laneShiftLeft(shifted[s-1], laneW)
		u.tr.Copy(width)
		u.rec.Step(u.src, telemetry.OpCopy, width)
		u.tr.Shift(width)
		u.rec.Step(u.src, telemetry.OpShift, width)
	}

	var sum dbc.Row
	for _, g := range plan.Groups {
		operands := make([]dbc.Row, 0, len(g)+2)
		if !sum.IsEmpty() {
			operands = append(operands, sum)
		}
		var correction uint64
		for _, d := range g {
			term := shifted[d.Shift]
			if d.Sign < 0 {
				// −x = ~x + 1 (mod 2^laneW): complement the term and
				// accumulate the +1 into the shared correction row.
				term = complementLanes(term, laneW)
				u.tr.Logic() // inverted read through the NOR path
				u.rec.Step(u.src, telemetry.OpLogic, 0)
				correction++
			}
			operands = append(operands, term)
		}
		if correction > 0 {
			corr := make([]uint64, width/laneW)
			for i := range corr {
				corr[i] = correction
			}
			row, err := PackLanes(corr, laneW, width)
			if err != nil {
				return dbc.Row{}, err
			}
			operands = append(operands, row)
		}
		if len(operands) == 1 {
			sum = operands[0]
			continue
		}
		sum, err = u.AddMulti(operands, laneW)
		if err != nil {
			return dbc.Row{}, err
		}
	}
	return sum, nil
}

// complementLanes returns the bitwise complement of each lane
// (word-parallel; lanes tile the row exactly, so this is a whole-row
// complement under the tail mask).
func complementLanes(r dbc.Row, laneW int) dbc.Row {
	out := dbc.NewRow(r.N)
	for i, w := range r.Words {
		out.Words[i] = ^w
	}
	out.MaskTail()
	_ = laneW
	return out
}
