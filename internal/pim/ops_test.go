package pim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dbc"
	"repro/internal/device"
	"repro/internal/params"
)

// --- Multiplication -----------------------------------------------------

func TestMultiplyExactAllTRDs(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for _, trd := range []params.TRD{params.TRD3, params.TRD5, params.TRD7} {
		for trial := 0; trial < 25; trial++ {
			u := unitFor(t, trd, 64) // four 16-bit product lanes
			a := []uint64{uint64(rng.Intn(256)), uint64(rng.Intn(256)), uint64(rng.Intn(256)), uint64(rng.Intn(256))}
			b := []uint64{uint64(rng.Intn(256)), uint64(rng.Intn(256)), uint64(rng.Intn(256)), uint64(rng.Intn(256))}
			got, err := u.MultiplyValues(a, b, 8)
			if err != nil {
				t.Fatalf("%v: %v", trd, err)
			}
			for l := range a {
				if got[l] != a[l]*b[l] {
					t.Fatalf("%v: %d × %d = %d, want %d", trd, a[l], b[l], got[l], a[l]*b[l])
				}
			}
		}
	}
}

func TestMultiplyProperty(t *testing.T) {
	u := unitFor(t, params.TRD7, 64)
	check := func(a, b [4]uint8) bool {
		av := []uint64{uint64(a[0]), uint64(a[1]), uint64(a[2]), uint64(a[3])}
		bv := []uint64{uint64(b[0]), uint64(b[1]), uint64(b[2]), uint64(b[3])}
		got, err := u.MultiplyValues(av, bv, 8)
		if err != nil {
			return false
		}
		for l := range av {
			if got[l] != av[l]*bv[l] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMultiply16Bit(t *testing.T) {
	u := unitFor(t, params.TRD7, 64) // two 32-bit product lanes
	a := []uint64{40000, 12345}
	b := []uint64{65535, 54321}
	got, err := u.MultiplyValues(a, b, 16)
	if err != nil {
		t.Fatal(err)
	}
	for l := range a {
		if got[l] != a[l]*b[l] {
			t.Fatalf("%d × %d = %d, want %d", a[l], b[l], got[l], a[l]*b[l])
		}
	}
}

func TestMultiplyCycleNearAnchor(t *testing.T) {
	// §V-B / Table III: 8-bit multiply is 64 cycles at TRD=7 and 105 at
	// TRD=3. Our choreography lands at 61 and grows monotonically as
	// the TRD shrinks; assert the anchor band (±15%) and the ordering.
	cycles := map[params.TRD]int{}
	for _, trd := range []params.TRD{params.TRD3, params.TRD5, params.TRD7} {
		u := unitFor(t, trd, 16)
		if _, err := u.MultiplyValues([]uint64{123}, []uint64{231}, 8); err != nil {
			t.Fatal(err)
		}
		cycles[trd] = u.Stats().Cycles()
	}
	if c := cycles[params.TRD7]; c < 54 || c > 74 {
		t.Errorf("TRD=7 8-bit multiply = %d cycles, want ≈64 (paper anchor)", c)
	}
	if !(cycles[params.TRD3] > cycles[params.TRD5] && cycles[params.TRD5] > cycles[params.TRD7]) {
		t.Errorf("multiply cycles not monotone in TRD: %v", cycles)
	}
}

func TestMultiplyRejectsOversizedValues(t *testing.T) {
	u := unitFor(t, params.TRD7, 32)
	a := dbc.NewRow(32)
	b := dbc.NewRow(32)
	a.Set(12, 1) // bit 12 of lane 0 is in the high half for bw=8
	if _, err := u.Multiply(a, b, 8); err == nil {
		t.Error("operand with high-half bits accepted")
	}
}

func TestMultiplyErrors(t *testing.T) {
	u := unitFor(t, params.TRD7, 32)
	if _, err := u.MultiplyValues([]uint64{1}, []uint64{1, 2}, 8); err == nil {
		t.Error("mismatched operand counts accepted")
	}
	if _, err := u.Multiply(dbc.NewRow(8), dbc.NewRow(8), 8); err == nil {
		t.Error("wrong-width rows accepted")
	}
	if _, err := u.MultiplyValues([]uint64{1}, []uint64{1}, 32); err == nil {
		t.Error("product lane wider than track accepted")
	}
}

// --- Constant multiplication --------------------------------------------

func TestCSDRecoding(t *testing.T) {
	// The paper's example constant: 20061 has nine set bits but only
	// eight CSD digits, and CSD never has adjacent non-zeros.
	digits := CSD(20061)
	if got := CSDValue(digits); got != 20061 {
		t.Fatalf("CSD value = %d, want 20061", got)
	}
	if len(digits) >= 9 {
		t.Errorf("CSD of 20061 uses %d digits, want fewer than 9 set bits", len(digits))
	}
	for i := 1; i < len(digits); i++ {
		if digits[i].Shift == digits[i-1].Shift+1 {
			t.Errorf("adjacent non-zero digits at shifts %d,%d", digits[i-1].Shift, digits[i].Shift)
		}
	}
}

func TestCSDProperty(t *testing.T) {
	check := func(c uint32) bool {
		return CSDValue(CSD(uint64(c))) == int64(c)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestPlanConstMul20061(t *testing.T) {
	// §III-D1: 20061·A takes two addition steps with a five-operand
	// adder.
	plan, err := PlanConstMul(20061, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got := plan.AdditionSteps(); got != 2 {
		t.Errorf("20061 plan = %d addition steps, want 2", got)
	}
}

func TestPlanConstMulTwoOperand(t *testing.T) {
	plan, err := PlanConstMul(20061, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Binary fallback: 9 set bits → 9 groups of one term each... minus
	// the first group which can carry two? With budget 2 on the first
	// group and 1 after, expect 8 groups.
	if got := plan.AdditionSteps(); got != 8 {
		t.Errorf("two-operand 20061 plan = %d steps, want 8", got)
	}
}

func TestConstMultiplyExact(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, trd := range []params.TRD{params.TRD3, params.TRD5, params.TRD7} {
		for _, c := range []uint64{0, 1, 2, 3, 5, 9, 20061, 255, 515, 65535} {
			u := unitFor(t, trd, 64) // two 32-bit product lanes
			av := []uint64{uint64(rng.Intn(1 << 16)), uint64(rng.Intn(1 << 16))}
			row := MustPackLanes(av, 32, 64)
			prod, err := u.ConstMultiply(row, c, 16)
			if err != nil {
				t.Fatalf("%v c=%d: %v", trd, c, err)
			}
			got := UnpackLanes(prod, 32)
			for l := range av {
				want := (av[l] * c) & 0xffffffff
				if got[l] != want {
					t.Fatalf("%v: %d × %d = %d, want %d", trd, av[l], c, got[l], want)
				}
			}
		}
	}
}

func TestConstMultiplyBeatsRepeatedAddition(t *testing.T) {
	// §III-D1: 20061·A in two addition steps is "a significant
	// improvement over adding 20061 copies of A". Naive repeated
	// five-operand addition needs ⌈20060/4⌉ ≈ 5015 add steps of ≥26
	// cycles; the recoded plan must be orders of magnitude below that.
	uc := unitFor(t, params.TRD7, 64)
	row := MustPackLanes([]uint64{4321, 99}, 32, 64)
	if _, err := uc.ConstMultiply(row, 20061, 16); err != nil {
		t.Fatal(err)
	}
	constCycles := uc.Stats().Cycles()
	naive := (20060 / 4) * 26
	if constCycles*100 >= naive {
		t.Errorf("constant multiply = %d cycles, not ≪ naive %d", constCycles, naive)
	}
}

// --- Max / ReLU ----------------------------------------------------------

func TestMaxTRExact(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for _, trd := range []params.TRD{params.TRD3, params.TRD5, params.TRD7} {
		for k := 2; k <= int(trd); k++ {
			u := unitFor(t, trd, 64)
			cands := make([]dbc.Row, k)
			vals := make([][]uint64, k)
			for i := range cands {
				vals[i] = make([]uint64, 8)
				for l := range vals[i] {
					vals[i][l] = uint64(rng.Intn(256))
				}
				cands[i] = MustPackLanes(vals[i], 8, 64)
			}
			got, err := u.MaxTR(cands, 8)
			if err != nil {
				t.Fatalf("%v k=%d: %v", trd, k, err)
			}
			res := UnpackLanes(got, 8)
			for l := 0; l < 8; l++ {
				var want uint64
				for i := range vals {
					if vals[i][l] > want {
						want = vals[i][l]
					}
				}
				if res[l] != want {
					t.Fatalf("%v k=%d lane %d max = %d, want %d", trd, k, l, res[l], want)
				}
			}
		}
	}
}

func TestMaxTRTies(t *testing.T) {
	// Fig. 8 discussion: several words equal to the max must still read
	// out correctly.
	u := unitFor(t, params.TRD7, 16)
	cands := []dbc.Row{
		MustPackLanes([]uint64{200, 7}, 8, 16),
		MustPackLanes([]uint64{200, 7}, 8, 16),
		MustPackLanes([]uint64{100, 7}, 8, 16),
	}
	got, err := u.MaxTR(cands, 8)
	if err != nil {
		t.Fatal(err)
	}
	res := UnpackLanes(got, 8)
	if res[0] != 200 || res[1] != 7 {
		t.Errorf("max with ties = %v, want [200 7]", res)
	}
}

func TestMaxTRAllZero(t *testing.T) {
	u := unitFor(t, params.TRD7, 16)
	cands := []dbc.Row{dbc.NewRow(16), dbc.NewRow(16)}
	got, err := u.MaxTR(cands, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got.OnesCount() != 0 {
		t.Fatalf("all-zero max has bits set: %v", got)
	}
}

func TestMaxTRProperty(t *testing.T) {
	u := unitFor(t, params.TRD7, 32)
	check := func(a, b, c, d [4]uint8) bool {
		rows := make([]dbc.Row, 4)
		vals := [][4]uint8{a, b, c, d}
		for i, vs := range vals {
			u64 := make([]uint64, 4)
			for l, v := range vs {
				u64[l] = uint64(v)
			}
			rows[i] = MustPackLanes(u64, 8, 32)
		}
		got, err := u.MaxTR(rows, 8)
		if err != nil {
			return false
		}
		res := UnpackLanes(got, 8)
		for l := 0; l < 4; l++ {
			want := uint64(0)
			for i := range vals {
				if uint64(vals[i][l]) > want {
					want = uint64(vals[i][l])
				}
			}
			if res[l] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestMaxTRUsesTW(t *testing.T) {
	// The segmented-shift rotation must be built from transverse writes
	// (§IV-B), with TRD reads+TWs per bit position.
	u := unitFor(t, params.TRD7, 16)
	cands := []dbc.Row{MustPackLanes([]uint64{5, 1}, 8, 16), MustPackLanes([]uint64{9, 2}, 8, 16)}
	if _, err := u.MaxTR(cands, 8); err != nil {
		t.Fatal(err)
	}
	s := u.Stats()
	if s.TWSteps != 8*7 {
		t.Errorf("TW steps = %d, want 56 (8 bits × TRD rotations)", s.TWSteps)
	}
	if s.ReadSteps != 8*7 {
		t.Errorf("read steps = %d, want 56", s.ReadSteps)
	}
}

func TestReLU(t *testing.T) {
	u := unitFor(t, params.TRD7, 32)
	// Lanes: 100 (positive), 200 (MSB set → negative), 0, 127.
	row := MustPackLanes([]uint64{100, 200, 0, 127}, 8, 32)
	out, err := u.ReLU(row, 8)
	if err != nil {
		t.Fatal(err)
	}
	got := UnpackLanes(out, 8)
	want := []uint64{100, 0, 0, 127}
	for l := range want {
		if got[l] != want[l] {
			t.Errorf("ReLU lane %d = %d, want %d", l, got[l], want[l])
		}
	}
}

// --- N-modular redundancy -------------------------------------------------

func TestVoteMajority(t *testing.T) {
	for _, tc := range []struct {
		trd params.TRD
		n   int
	}{{params.TRD3, 3}, {params.TRD5, 3}, {params.TRD5, 5}, {params.TRD7, 3}, {params.TRD7, 5}, {params.TRD7, 7}} {
		u := unitFor(t, tc.trd, 32)
		rng := rand.New(rand.NewSource(int64(tc.n) * int64(tc.trd)))
		replicas := make([]dbc.Row, tc.n)
		for i := range replicas {
			replicas[i] = randBits(32, rng)
		}
		got, err := u.Vote(replicas)
		if err != nil {
			t.Fatalf("%v N=%d: %v", tc.trd, tc.n, err)
		}
		for w := 0; w < 32; w++ {
			ones := 0
			for _, r := range replicas {
				ones += int(r.Get(w))
			}
			want := b2u(2*ones > tc.n)
			if got.Get(w) != want {
				t.Fatalf("%v N=%d wire %d vote = %d, want %d", tc.trd, tc.n, w, got.Get(w), want)
			}
		}
	}
}

func TestVoteRejectsInvalidN(t *testing.T) {
	u := unitFor(t, params.TRD5, 16)
	seven := make([]dbc.Row, 7)
	for i := range seven {
		seven[i] = dbc.NewRow(16)
	}
	if _, err := u.Vote(seven); err == nil {
		t.Error("N=7 on TRD=5 accepted")
	}
	if _, err := u.Vote(seven[:4]); err == nil {
		t.Error("even N accepted")
	}
}

func TestRunNMRCorrectsSingleFault(t *testing.T) {
	// TMR must mask any single faulty replica (§III-F).
	u := unitFor(t, params.TRD7, 16)
	correct := MustPackLanes([]uint64{0xAB, 0xCD}, 8, 16)
	faulty := MustPackLanes([]uint64{0xAB ^ 0x10, 0xCD}, 8, 16)
	call := 0
	got, err := u.RunNMR(3, func() (dbc.Row, error) {
		call++
		if call == 2 {
			return copyRow(faulty), nil
		}
		return copyRow(correct), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(correct) {
		t.Fatal("TMR failed to mask single fault")
	}
}

func TestRunNMR5CorrectsTwoFaults(t *testing.T) {
	u := unitFor(t, params.TRD7, 16)
	correct := MustPackLanes([]uint64{0x5A, 0x3C}, 8, 16)
	faulty := MustPackLanes([]uint64{0xFF, 0x00}, 8, 16)
	call := 0
	got, err := u.RunNMR(5, func() (dbc.Row, error) {
		call++
		if call <= 2 {
			return copyRow(faulty), nil
		}
		return copyRow(correct), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(correct) {
		t.Fatal("5MR failed to mask two faults")
	}
}

func TestNMRWithInjectedTRFaults(t *testing.T) {
	// End-to-end: with a high injected TR fault rate, TMR-protected
	// bulk ops must be right far more often than unprotected ones.
	width := 64
	runOnce := func(seed int64, nmr bool) int {
		cfg := testConfig(params.TRD7, width)
		u := MustNewUnit(cfg)
		u.D.SetFaultInjector(device.NewFaultInjector(0.02, 0, seed))
		rng := rand.New(rand.NewSource(seed))
		wrong := 0
		for trial := 0; trial < 50; trial++ {
			a, b := randBits(width, rng), randBits(width, rng)
			op := func() (dbc.Row, error) { return u.BulkBitwise(dbc.OpXOR, []dbc.Row{a, b}) }
			var got dbc.Row
			var err error
			if nmr {
				got, err = u.RunNMR(3, op)
			} else {
				got, err = op()
			}
			if err != nil {
				panic(err)
			}
			for w := 0; w < width; w++ {
				if got.Get(w) != a.Get(w)^b.Get(w) {
					wrong++
					break
				}
			}
		}
		return wrong
	}
	plain := runOnce(99, false)
	protected := runOnce(99, true)
	if plain == 0 {
		t.Skip("fault injection produced no plain-run errors; seed too benign")
	}
	if protected >= plain {
		t.Errorf("TMR wrong results %d not fewer than unprotected %d", protected, plain)
	}
}
