// Package pim implements the CORUSCANT processing-in-memory operations on
// a PIM-enabled domain-block cluster: multi-operand bulk-bitwise logic,
// multi-operand addition with the C/C' carry chain (Fig. 6), the 7→3
// carry-save reduction, two-operand and constant multiplication (§III-D),
// the transverse-write-based max function and ReLU (§IV-B/C), and
// N-modular redundancy voting (§III-F).
//
// Every operation runs functionally on the bit-level DBC model — results
// are exact and are property-tested against integer arithmetic — while a
// trace.Tracer counts the device primitives from which cycle latency and
// energy derive. Cycle-count anchors from the paper (§V-B): an 8-bit
// five-operand add takes 10 cycles of operand placement plus 16 cycles of
// per-bit TR+write = 26 cycles; one 7→3 reduction takes 4 cycles.
package pim

import (
	"fmt"

	"repro/internal/dbc"
	"repro/internal/params"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Unit is one PIM-enabled DBC together with its sensing and PIM logic,
// executing CORUSCANT operations.
type Unit struct {
	D   *dbc.DBC
	cfg params.Config
	tr  *trace.Tracer
	rec *telemetry.Recorder
	src telemetry.Source

	// lp is the scratch destination for transverse reads: valid only
	// until the next TR, so every consumer copies what it keeps.
	lp dbc.LevelPlanes

	// scratch pools the hot-loop row and word buffers; see arena. Like
	// the DBC it fronts, a Unit is single-threaded — concurrent callers
	// get one Unit each (memory.Memory shards per DBC).
	scratch arena
}

// NewUnit builds a PIM unit for the given configuration.
func NewUnit(cfg params.Config) (*Unit, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d, err := dbc.New(cfg.Geometry.TrackWidth, cfg.Geometry.RowsPerDBC, cfg.TRD)
	if err != nil {
		return nil, err
	}
	u := &Unit{D: d, cfg: cfg, tr: &trace.Tracer{}, lp: dbc.NewLevelPlanes(cfg.Geometry.TrackWidth)}
	d.SetTracer(u.tr)
	return u, nil
}

// MustNewUnit is NewUnit for configurations known to be valid.
func MustNewUnit(cfg params.Config) *Unit {
	u, err := NewUnit(cfg)
	if err != nil {
		panic(err)
	}
	return u
}

// Config returns the unit's configuration.
func (u *Unit) Config() params.Config { return u.cfg }

// Width returns the DBC track width (bits per row).
func (u *Unit) Width() int { return u.D.Width() }

// TRD returns the unit's transverse-read distance.
func (u *Unit) TRD() params.TRD { return u.cfg.TRD }

// Tracer exposes the unit's primitive-op accounting.
func (u *Unit) Tracer() *trace.Tracer { return u.tr }

// SetTelemetry attaches a telemetry recorder to the unit and its DBC
// (nil disables); src tags the unit's events and names its track in the
// Chrome trace export.
func (u *Unit) SetTelemetry(rec *telemetry.Recorder, src telemetry.Source) {
	u.rec, u.src = rec, src
	u.D.SetTelemetry(rec, src)
}

// Recorder returns the attached telemetry recorder (possibly nil).
func (u *Unit) Recorder() *telemetry.Recorder { return u.rec }

// TelemetrySource returns the source label the unit's events carry.
func (u *Unit) TelemetrySource() telemetry.Source { return u.src }

// Span opens a named telemetry span on the unit's track and returns its
// closer, for the `defer u.Span("add")()` idiom. Every public PIM
// operation wraps itself in a span, so workload-level spans nest around
// operation spans, which nest around primitive steps. With no recorder
// attached the returned closer is a shared no-op.
func (u *Unit) Span(name string) func() { return u.rec.Span(u.src, name) }

// Stats returns the accumulated primitive counts.
func (u *Unit) Stats() trace.Stats { return u.tr.Stats() }

// ResetStats clears the accumulated counters.
func (u *Unit) ResetStats() { u.tr.Reset() }

// Cost converts the accumulated trace into a latency/energy cost.
func (u *Unit) Cost() trace.Cost {
	return trace.OfStats(u.tr.Stats(), u.cfg.Energy, u.cfg.TRD)
}

// maxAddOperands returns the operand limit for multi-operand addition.
func (u *Unit) maxAddOperands() int { return u.cfg.TRD.MaxAddOperands() }

// checkBlocksize validates a cpim blocksize argument.
func (u *Unit) checkBlocksize(b int) error {
	if !params.ValidBlockSize(b) {
		return fmt.Errorf("pim: invalid blocksize %d (want one of %v)", b, params.BlockSizes)
	}
	if b > u.D.Width() {
		return fmt.Errorf("pim: blocksize %d exceeds track width %d", b, u.D.Width())
	}
	return nil
}

// recenter returns the DBC to its rest alignment with traced shifts, so
// the following operation has full shift headroom. Fresh units are
// already at rest and pay nothing.
func (u *Unit) recenter() error {
	return u.D.Shift(-u.D.Offset())
}

// placeWindow loads the operand rows into the PIM window through the left
// access port: each operand costs one write step plus one shift step (the
// paper's "shifts and writes the words between the two heads", 10 cycles
// for five operands). With finalShift, operand i (0-based) ends at window
// position k-i, leaving position 0 free for the S/C' slot of the carry
// chain; without it, the last operand stays under the left port (the
// TRD=3 layout, where the sum overwrites an operand slot), costing 2k−1
// cycles.
//
// The pad constant models the Fig. 7 pre-populated padding rows in and
// adjacent to the window; restoring them is untraced, as the paper
// maintains them as preset constants.
func (u *Unit) placeWindow(rows []dbc.Row, pad uint8, finalShift bool) error {
	trd := int(u.cfg.TRD)
	if len(rows) > trd {
		return fmt.Errorf("pim: %d operands exceed window of %d: %w", len(rows), trd, params.ErrBadTRD)
	}
	if err := u.recenter(); err != nil {
		return err
	}
	if len(rows) == trd {
		// A full window leaves no slot to shift into; the last operand
		// stays under the left port.
		finalShift = false
	}
	for i := 0; i < trd; i++ {
		u.D.PokeWindowConst(i, pad)
	}
	for i, r := range rows {
		u.D.WritePort(dbcLeft, r)
		if !finalShift && i == len(rows)-1 {
			break
		}
		if err := u.D.Shift(1); err != nil {
			return err
		}
		// The domain shifted in under the left port comes from the
		// pre-populated padding region.
		u.D.PokeWindowConst(0, pad)
	}
	return nil
}

// chargeStep charges one device control step of the given kind across
// width wires to both cost sinks: the primitive tracer (latency/energy
// derivation) and the telemetry recorder (cycle clock). Operations whose
// functional result is computed word-parallel use it to account the
// device steps the hardware would issue, exactly as Multiply charges its
// predicated copy/shift pairs.
func (u *Unit) chargeStep(op telemetry.Op, width int) {
	switch op {
	case telemetry.OpShift:
		u.tr.Shift(width)
	case telemetry.OpTR:
		u.tr.TR(width)
	case telemetry.OpTW:
		u.tr.TW(width)
	case telemetry.OpRead:
		u.tr.Read(width)
	case telemetry.OpWrite:
		u.tr.Write(width)
	case telemetry.OpCopy:
		u.tr.Copy(width)
	}
	u.rec.Step(u.src, op, width)
}

// trAll performs a traced whole-DBC transverse read into the unit's
// scratch planes. The returned planes alias the scratch buffer and are
// valid only until the next transverse read; consumers copy what they
// keep.
func (u *Unit) trAll() dbc.LevelPlanes {
	u.D.TRAllPlanesInto(&u.lp)
	return u.lp
}
