package pim

import (
	"testing"
	"testing/quick"

	"repro/internal/dbc"
	"repro/internal/params"
)

func TestSubExact(t *testing.T) {
	for _, trd := range []params.TRD{params.TRD3, params.TRD5, params.TRD7} {
		u := unitFor(t, trd, 64)
		got, err := u.SubValues(
			[]uint64{200, 10, 128, 0, 255, 1, 100, 50},
			[]uint64{50, 20, 128, 1, 255, 2, 99, 200},
			8)
		if err != nil {
			t.Fatalf("%v: %v", trd, err)
		}
		want := []uint64{150, 246, 0, 255, 0, 255, 1, 106} // mod 256
		for l := range want {
			if got[l] != want[l] {
				t.Errorf("%v lane %d: %d, want %d", trd, l, got[l], want[l])
			}
		}
	}
}

func TestSubProperty(t *testing.T) {
	u := unitFor(t, params.TRD7, 64)
	check := func(a, b [8]uint8) bool {
		av := make([]uint64, 8)
		bv := make([]uint64, 8)
		for i := range a {
			av[i], bv[i] = uint64(a[i]), uint64(b[i])
		}
		got, err := u.SubValues(av, bv, 8)
		if err != nil {
			return false
		}
		for i := range a {
			if got[i] != uint64(uint8(a[i]-b[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSubThenReLUIsPositivePart(t *testing.T) {
	// Sub + ReLU is the paper's "pos − neg then rectify" idiom (§IV-C):
	// negative differences must rectify to zero, positive pass through.
	u := unitFor(t, params.TRD7, 64)
	a := []uint64{100, 10, 50, 0}
	b := []uint64{30, 90, 50, 1}
	diff, err := u.SubValues(a, b, 8)
	if err != nil {
		t.Fatal(err)
	}
	row, err := PackLanes(append(diff, 0, 0, 0, 0), 8, 64)
	if err != nil {
		t.Fatal(err)
	}
	relued, err := u.ReLU(row, 8)
	if err != nil {
		t.Fatal(err)
	}
	got := UnpackLanes(relued, 8)
	want := []uint64{70, 0, 0, 0}
	for l := range want {
		if got[l] != want[l] {
			t.Errorf("lane %d = %d, want %d", l, got[l], want[l])
		}
	}
}

func TestSubErrors(t *testing.T) {
	u := unitFor(t, params.TRD7, 32)
	if _, err := u.SubValues([]uint64{1}, []uint64{1, 2}, 8); err == nil {
		t.Error("mismatched counts accepted")
	}
	if _, err := u.Sub(dbc.NewRow(4), dbc.NewRow(4), 8); err == nil {
		t.Error("wrong widths accepted")
	}
}
