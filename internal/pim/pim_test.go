package pim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dbc"
	"repro/internal/params"
)

// testConfig returns a narrow unit configuration for fast tests.
func testConfig(trd params.TRD, width int) params.Config {
	cfg := params.DefaultConfig()
	cfg.TRD = trd
	cfg.Geometry.TrackWidth = width
	return cfg
}

func unitFor(t *testing.T, trd params.TRD, width int) *Unit {
	t.Helper()
	u, err := NewUnit(testConfig(trd, width))
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func TestPackUnpackLanes(t *testing.T) {
	vals := []uint64{0, 255, 170, 85, 1, 128}
	row, err := PackLanes(vals, 8, 64)
	if err != nil {
		t.Fatal(err)
	}
	got := UnpackLanes(row, 8)
	for i, v := range vals {
		if got[i] != v {
			t.Fatalf("lane %d = %d, want %d", i, got[i], v)
		}
	}
}

func TestPackLanesErrors(t *testing.T) {
	if _, err := PackLanes([]uint64{256}, 8, 64); err == nil {
		t.Error("oversized value accepted")
	}
	if _, err := PackLanes(nil, 7, 64); err == nil {
		t.Error("non-divisor lane accepted")
	}
	if _, err := PackLanes(make([]uint64, 9), 8, 64); err == nil {
		t.Error("too many values accepted")
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	check := func(vals [8]uint8) bool {
		u64 := make([]uint64, 8)
		for i, v := range vals {
			u64[i] = uint64(v)
		}
		row, err := PackLanes(u64, 8, 64)
		if err != nil {
			return false
		}
		got := UnpackLanes(row, 8)
		for i := range u64 {
			if got[i] != u64[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestLaneShiftLeft(t *testing.T) {
	row := MustPackLanes([]uint64{0x81, 0x40}, 8, 16)
	shifted := laneShiftLeft(row, 8)
	got := UnpackLanes(shifted, 8)
	if got[0] != 0x02 { // MSB of 0x81 discarded, rest doubled
		t.Errorf("lane 0 = %#x, want 0x02", got[0])
	}
	if got[1] != 0x80 {
		t.Errorf("lane 1 = %#x, want 0x80", got[1])
	}
}

// --- Bulk-bitwise -----------------------------------------------------

func refBulk(op dbc.Op, ops []dbc.Row, w int) uint8 {
	ones := 0
	for _, r := range ops {
		ones += int(r.Get(w))
	}
	k := len(ops)
	switch op {
	case dbc.OpOR:
		return b2u(ones >= 1)
	case dbc.OpNOR, dbc.OpNOT:
		return b2u(ones == 0)
	case dbc.OpAND:
		return b2u(ones == k)
	case dbc.OpNAND:
		return b2u(ones < k)
	case dbc.OpXOR:
		return uint8(ones & 1)
	case dbc.OpXNOR:
		return uint8(1 - ones&1)
	}
	panic("bad op")
}

func b2u(b bool) uint8 {
	if b {
		return 1
	}
	return 0
}

func TestBulkBitwiseAllOpsAllCardinalities(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ops := []dbc.Op{dbc.OpOR, dbc.OpNOR, dbc.OpAND, dbc.OpNAND, dbc.OpXOR, dbc.OpXNOR}
	for _, trd := range []params.TRD{params.TRD3, params.TRD5, params.TRD7} {
		for _, op := range ops {
			for k := 1; k <= int(trd); k++ {
				u := unitFor(t, trd, 32)
				operands := make([]dbc.Row, k)
				for i := range operands {
					operands[i] = randBits(32, rng)
				}
				got, err := u.BulkBitwise(op, operands)
				if err != nil {
					t.Fatalf("%v %v k=%d: %v", trd, op, k, err)
				}
				for w := 0; w < got.Len(); w++ {
					if want := refBulk(op, operands, w); got.Get(w) != want {
						t.Fatalf("%v %v k=%d wire %d = %d, want %d", trd, op, k, w, got.Get(w), want)
					}
				}
			}
		}
	}
}

func TestBulkBitwiseNOT(t *testing.T) {
	u := unitFor(t, params.TRD7, 16)
	rng := rand.New(rand.NewSource(6))
	in := randBits(16, rng)
	got, err := u.BulkBitwise(dbc.OpNOT, []dbc.Row{in})
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < got.Len(); w++ {
		if got.Get(w) != 1-in.Get(w) {
			t.Fatalf("NOT wire %d = %d", w, got.Get(w))
		}
	}
	if _, err := u.BulkBitwise(dbc.OpNOT, []dbc.Row{in, in}); err == nil {
		t.Error("NOT with two operands accepted")
	}
}

func TestBulkBitwiseErrors(t *testing.T) {
	u := unitFor(t, params.TRD3, 16)
	rows := make([]dbc.Row, 4)
	for i := range rows {
		rows[i] = dbc.NewRow(16)
	}
	if _, err := u.BulkBitwise(dbc.OpOR, rows); err == nil {
		t.Error("4 operands on TRD=3 accepted")
	}
	if _, err := u.BulkBitwise(dbc.OpOR, nil); err == nil {
		t.Error("0 operands accepted")
	}
	if _, err := u.BulkBitwise(dbc.OpOR, []dbc.Row{dbc.NewRow(3)}); err == nil {
		t.Error("wrong-width operand accepted")
	}
}

func TestBulkBitwiseCycleCost(t *testing.T) {
	// Placement is 2 cycles per operand, plus one TR and one write-back.
	u := unitFor(t, params.TRD7, 16)
	rng := rand.New(rand.NewSource(7))
	ops := []dbc.Row{randBits(16, rng), randBits(16, rng), randBits(16, rng)}
	if _, err := u.BulkBitwise(dbc.OpXOR, ops); err != nil {
		t.Fatal(err)
	}
	if got := u.Stats().Cycles(); got != 2*3+1+1 {
		t.Errorf("3-operand bulk op = %d cycles, want 8", got)
	}
}

func randBits(width int, rng *rand.Rand) dbc.Row {
	r := dbc.NewRow(width)
	for i := 0; i < width; i++ {
		r.Set(i, uint8(rng.Intn(2)))
	}
	return r
}

// --- Addition ----------------------------------------------------------

func TestAddMultiExact(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, trd := range []params.TRD{params.TRD3, params.TRD5, params.TRD7} {
		maxK := trd.MaxAddOperands()
		for k := 2; k <= maxK; k++ {
			for _, bs := range []int{8, 16} {
				u := unitFor(t, trd, 64)
				lanes := 64 / bs
				vals := make([][]uint64, k)
				operands := make([]dbc.Row, k)
				for i := range operands {
					vals[i] = make([]uint64, lanes)
					for l := range vals[i] {
						vals[i][l] = rng.Uint64() & ((1 << uint(bs)) - 1)
					}
					operands[i] = MustPackLanes(vals[i], bs, 64)
				}
				sum, err := u.AddMulti(operands, bs)
				if err != nil {
					t.Fatalf("%v k=%d bs=%d: %v", trd, k, bs, err)
				}
				got := UnpackLanes(sum, bs)
				for l := 0; l < lanes; l++ {
					var want uint64
					for i := 0; i < k; i++ {
						want += vals[i][l]
					}
					want &= (1 << uint(bs)) - 1
					if got[l] != want {
						t.Fatalf("%v k=%d bs=%d lane %d = %d, want %d", trd, k, bs, l, got[l], want)
					}
				}
			}
		}
	}
}

func TestAddMultiProperty(t *testing.T) {
	// testing/quick over the core invariant: five-operand 8-bit lane
	// addition is exact mod 256.
	u := unitFor(t, params.TRD7, 64)
	check := func(a, b, c, d, e [8]uint8) bool {
		operands := make([]dbc.Row, 5)
		all := [][8]uint8{a, b, c, d, e}
		for i, vs := range all {
			u64 := make([]uint64, 8)
			for l, v := range vs {
				u64[l] = uint64(v)
			}
			operands[i] = MustPackLanes(u64, 8, 64)
		}
		sum, err := u.AddMulti(operands, 8)
		if err != nil {
			return false
		}
		got := UnpackLanes(sum, 8)
		for l := 0; l < 8; l++ {
			want := (uint64(a[l]) + uint64(b[l]) + uint64(c[l]) + uint64(d[l]) + uint64(e[l])) & 0xff
			if got[l] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestAddMultiCycleAnchors(t *testing.T) {
	// §V-B: 8-bit add with TRD=7 = 10 placement + 16 compute = 26
	// cycles; Table III: TRD=3 two-operand add = 19 cycles.
	u := unitFor(t, params.TRD7, 8)
	ops := [][]uint64{{200}, {50}, {3}, {1}, {1}}
	rows := make([]dbc.Row, 5)
	for i, v := range ops {
		rows[i] = MustPackLanes(v, 8, 8)
	}
	if _, err := u.AddMulti(rows, 8); err != nil {
		t.Fatal(err)
	}
	if got := u.Stats().Cycles(); got != 26 {
		t.Errorf("TRD=7 5-op 8-bit add = %d cycles, want 26 (paper anchor)", got)
	}

	u3 := unitFor(t, params.TRD3, 8)
	rows3 := []dbc.Row{MustPackLanes([]uint64{200}, 8, 8), MustPackLanes([]uint64{50}, 8, 8)}
	if _, err := u3.AddMulti(rows3, 8); err != nil {
		t.Fatal(err)
	}
	if got := u3.Stats().Cycles(); got != 19 {
		t.Errorf("TRD=3 2-op 8-bit add = %d cycles, want 19 (paper anchor)", got)
	}
}

func TestAddMultiEnergyAnchors(t *testing.T) {
	// Table III: 8-bit adds at 22.14 pJ (TRD=7) and 10.15 pJ (TRD=3);
	// calibration must land within 5%.
	u := unitFor(t, params.TRD7, 8)
	rows := make([]dbc.Row, 5)
	for i := range rows {
		rows[i] = MustPackLanes([]uint64{uint64(i + 1)}, 8, 8)
	}
	if _, err := u.AddMulti(rows, 8); err != nil {
		t.Fatal(err)
	}
	if got, want := u.Cost().EnergyPJ, 22.14; got < want*0.95 || got > want*1.05 {
		t.Errorf("TRD=7 add energy = %.2f pJ, want ≈%.2f", got, want)
	}

	u3 := unitFor(t, params.TRD3, 8)
	rows3 := []dbc.Row{MustPackLanes([]uint64{7}, 8, 8), MustPackLanes([]uint64{9}, 8, 8)}
	if _, err := u3.AddMulti(rows3, 8); err != nil {
		t.Fatal(err)
	}
	if got, want := u3.Cost().EnergyPJ, 10.15; got < want*0.95 || got > want*1.05 {
		t.Errorf("TRD=3 add energy = %.2f pJ, want ≈%.2f", got, want)
	}
}

func TestAddMultiResultStoredAtPort(t *testing.T) {
	// The sum must physically remain in the DBC: the row under the left
	// port equals the returned row.
	u := unitFor(t, params.TRD7, 32)
	rows := []dbc.Row{
		MustPackLanes([]uint64{11, 22, 33, 44}, 8, 32),
		MustPackLanes([]uint64{55, 66, 77, 88}, 8, 32),
		MustPackLanes([]uint64{99, 1, 2, 3}, 8, 32),
	}
	sum, err := u.AddMulti(rows, 8)
	if err != nil {
		t.Fatal(err)
	}
	stored := u.D.PeekWindow(0)
	if !stored.Equal(sum) {
		t.Fatalf("stored row %v, want %v", stored, sum)
	}
}

func TestAddMultiErrors(t *testing.T) {
	u := unitFor(t, params.TRD7, 32)
	row := dbc.NewRow(32)
	if _, err := u.AddMulti([]dbc.Row{row}, 8); err == nil {
		t.Error("1 operand accepted")
	}
	six := make([]dbc.Row, 6)
	for i := range six {
		six[i] = dbc.NewRow(32)
	}
	if _, err := u.AddMulti(six, 8); err == nil {
		t.Error("6 operands accepted for TRD=7")
	}
	if _, err := u.AddMulti([]dbc.Row{row, row}, 7); err == nil {
		t.Error("blocksize 7 accepted")
	}
	if _, err := u.AddMulti([]dbc.Row{row, row}, 64); err == nil {
		t.Error("blocksize beyond track width accepted")
	}
	if _, err := u.AddMulti([]dbc.Row{row, dbc.NewRow(8)}, 8); err == nil {
		t.Error("mismatched operand width accepted")
	}
}

func TestAdd2(t *testing.T) {
	u := unitFor(t, params.TRD7, 16)
	a := MustPackLanes([]uint64{250, 3}, 8, 16)
	b := MustPackLanes([]uint64{10, 4}, 8, 16)
	sum, err := u.Add2(a, b, 8)
	if err != nil {
		t.Fatal(err)
	}
	got := UnpackLanes(sum, 8)
	if got[0] != 4 || got[1] != 7 { // 260 mod 256 = 4
		t.Errorf("Add2 = %v, want [4 7]", got)
	}
}

// --- Reduction ---------------------------------------------------------

func TestReduceInvariant(t *testing.T) {
	// Carry-save invariant: S+C+C' preserves the lane-wise sum mod 2^b.
	rng := rand.New(rand.NewSource(9))
	for _, trd := range []params.TRD{params.TRD3, params.TRD5, params.TRD7} {
		for k := 2; k <= int(trd); k++ {
			u := unitFor(t, trd, 64)
			operands := make([]dbc.Row, k)
			vals := make([][]uint64, k)
			for i := range operands {
				vals[i] = make([]uint64, 8)
				for l := range vals[i] {
					vals[i][l] = uint64(rng.Intn(256))
				}
				operands[i] = MustPackLanes(vals[i], 8, 64)
			}
			red, err := u.Reduce(operands, 8)
			if err != nil {
				t.Fatalf("%v k=%d: %v", trd, k, err)
			}
			outRows := red.Rows()
			if trd == params.TRD3 && len(outRows) != 2 {
				t.Fatalf("TRD=3 reduce returned %d rows, want 2", len(outRows))
			}
			s := UnpackLanes(red.S, 8)
			c := UnpackLanes(red.C, 8)
			cp := make([]uint64, 8)
			if !red.Cp.IsEmpty() {
				cp = UnpackLanes(red.Cp, 8)
			}
			for l := 0; l < 8; l++ {
				var want uint64
				for i := range vals {
					want += vals[i][l]
				}
				got := (s[l] + c[l] + cp[l]) & 0xff
				if got != want&0xff {
					t.Fatalf("%v k=%d lane %d: S+C+C'=%d, want %d", trd, k, l, got, want&0xff)
				}
			}
		}
	}
}

func TestReduceCycleAnchor(t *testing.T) {
	// §IV-A: a 7→3 reduction is O(1): 4 cycles beyond operand
	// placement, independent of lane width.
	u := unitFor(t, params.TRD7, 64)
	rng := rand.New(rand.NewSource(10))
	operands := make([]dbc.Row, 7)
	for i := range operands {
		operands[i] = randBits(64, rng)
	}
	if _, err := u.Reduce(operands, 8); err != nil {
		t.Fatal(err)
	}
	placement := 2*7 - 1 // full window: final shift elided
	if got := u.Stats().Cycles(); got != placement+4 {
		t.Errorf("7→3 reduce = %d cycles, want %d (placement) + 4", got, placement)
	}
}

func TestReduceFunctionalMatchesDBC(t *testing.T) {
	// The functional dataflow used by Multiply must agree with the
	// DBC-executed reduction.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		u := unitFor(t, params.TRD7, 32)
		operands := make([]dbc.Row, 7)
		for i := range operands {
			operands[i] = randBits(32, rng)
		}
		dbcRed, err := u.Reduce(operands, 8)
		if err != nil {
			t.Fatal(err)
		}
		funRed := reduceRowsFunctional(operands, 8, true)
		if !dbcRed.S.Equal(funRed.S) || !dbcRed.C.Equal(funRed.C) || !dbcRed.Cp.Equal(funRed.Cp) {
			t.Fatalf("trial %d: DBC and functional reductions differ", trial)
		}
	}
}

func TestReduceWindowStateAfter(t *testing.T) {
	// After reducePlaced the window holds C', C, S at positions 0..2.
	u := unitFor(t, params.TRD7, 32)
	rng := rand.New(rand.NewSource(12))
	operands := make([]dbc.Row, 7)
	for i := range operands {
		operands[i] = randBits(32, rng)
	}
	red, err := u.Reduce(operands, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := u.D.PeekWindow(0); !got.Equal(red.Cp) {
		t.Fatalf("window 0 = %v, want C'=%v", got, red.Cp)
	}
	if got := u.D.PeekWindow(1); !got.Equal(red.C) {
		t.Fatalf("window 1 = %v, want C=%v", got, red.C)
	}
	if got := u.D.PeekWindow(2); !got.Equal(red.S) {
		t.Fatalf("window 2 = %v, want S=%v", got, red.S)
	}
}
