package pim

import (
	"math/rand"
	"testing"

	"repro/internal/params"
)

// TestFMADifferential checks a·b+c against native arithmetic across
// TRDs and product-lane widths, with full-lane addends (the modular
// wrap path included).
func TestFMADifferential(t *testing.T) {
	for _, trd := range []params.TRD{params.TRD3, params.TRD5, params.TRD7} {
		for _, bw := range []int{4, 8, 16} {
			laneW := 2 * bw
			width := 4 * laneW
			u := unitFor(t, trd, width)
			rng := rand.New(rand.NewSource(int64(trd)*100 + int64(bw)))
			lanes := width / laneW
			bwMask := uint64(1)<<uint(bw) - 1
			laneMask := uint64(1)<<uint(laneW) - 1
			for iter := 0; iter < 8; iter++ {
				a := make([]uint64, lanes)
				b := make([]uint64, lanes)
				c := make([]uint64, lanes)
				for l := range a {
					a[l] = rng.Uint64() & bwMask
					b[l] = rng.Uint64() & bwMask
					c[l] = rng.Uint64() & laneMask // full-lane addend
				}
				got, err := u.FMAValues(a, b, c, bw)
				if err != nil {
					t.Fatal(err)
				}
				for l := range a {
					want := (a[l]*b[l] + c[l]) & laneMask
					if got[l] != want {
						t.Fatalf("trd=%v bw=%d lane %d: %d*%d+%d = %d, want %d",
							trd, bw, l, a[l], b[l], c[l], got[l], want)
					}
				}
			}
		}
	}
}

// TestFMAMatchesMultiplyPlusAdd confirms the fused path computes the
// same result as the two-step sequence while reusing the reduction: the
// fused op must not charge more TR steps than multiply-then-add.
func TestFMAMatchesMultiplyPlusAdd(t *testing.T) {
	u := unitFor(t, params.TRD7, 64)
	a := MustPackLanes([]uint64{13, 250, 7, 99}, 16, 64)
	b := MustPackLanes([]uint64{77, 201, 255, 3}, 16, 64)
	c := MustPackLanes([]uint64{60000, 1, 40000, 12345}, 16, 64)

	u.ResetStats()
	fused, err := u.FMA(a, b, c, 8)
	if err != nil {
		t.Fatal(err)
	}
	fusedTRs := u.Stats().TRSteps

	u.ResetStats()
	prod, err := u.Multiply(a, b, 8)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := u.Add2(prod, c, 16)
	if err != nil {
		t.Fatal(err)
	}
	twoStepTRs := u.Stats().TRSteps

	for i := range fused.Words {
		if fused.Words[i] != sum.Words[i] {
			t.Fatalf("fused result differs from multiply+add at word %d", i)
		}
	}
	if fusedTRs > twoStepTRs {
		t.Fatalf("fused FMA charged %d TR steps, more than multiply+add's %d", fusedTRs, twoStepTRs)
	}
}

// TestFMAErrors covers operand validation, including the bw-bit limit
// on the product inputs (not the addend).
func TestFMAErrors(t *testing.T) {
	u := unitFor(t, params.TRD7, 64)
	big := MustPackLanes([]uint64{300}, 16, 64) // exceeds 8 bits
	ok := MustPackLanes([]uint64{5}, 16, 64)
	if _, err := u.FMA(big, ok, ok, 8); err == nil {
		t.Fatal("oversized multiplicand accepted")
	}
	if _, err := u.FMA(ok, big, ok, 8); err == nil {
		t.Fatal("oversized multiplier accepted")
	}
	if _, err := u.FMA(ok, ok, big, 8); err != nil {
		t.Fatalf("full-lane addend rejected: %v", err)
	}
	if _, err := u.FMA(ok, ok, ok, 3); err == nil {
		t.Fatal("invalid product lane accepted")
	}
	if _, err := u.FMAValues([]uint64{1}, []uint64{1, 2}, []uint64{1}, 8); err == nil {
		t.Fatal("mismatched counts accepted")
	}
}
