package pim

import (
	"fmt"

	"repro/internal/dbc"
)

// MaxLarge computes the lane-wise maximum of arbitrarily many candidate
// rows by chunking the TR tournament: each round keeps the running
// maximum and consumes up to TRD−1 further candidates, exactly how a
// pooling layer with more inputs than the window handles them (§IV-B).
func (u *Unit) MaxLarge(candidates []dbc.Row, blocksize int) (dbc.Row, error) {
	defer u.Span("max-large")()
	switch len(candidates) {
	case 0:
		return dbc.Row{}, fmt.Errorf("pim: max with no candidates")
	case 1:
		return copyRow(candidates[0]), nil
	}
	maxK := u.cfg.TRD.MaxBulkOperands()
	acc := candidates[0]
	rest := candidates[1:]
	for len(rest) > 0 {
		take := min(maxK-1, len(rest))
		group := append([]dbc.Row{acc}, rest[:take]...)
		var err error
		acc, err = u.MaxTR(group, blocksize)
		if err != nil {
			return dbc.Row{}, err
		}
		rest = rest[take:]
	}
	return acc, nil
}
