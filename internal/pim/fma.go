package pim

import (
	"fmt"

	"repro/internal/dbc"
	"repro/internal/telemetry"
)

// FMA computes a·b + c lane-wise (fused multiply-add): operands divide
// into product lanes of 2·bw bits, a and b carry bw-bit values in their
// low halves exactly as Multiply, and the addend c may use the full
// 2·bw-bit lane. The result holds a·b + c modulo 2^(2·bw).
//
// The fusion reuses the Multiply partial-product planes: the addend row
// simply joins the bw shifted copies in the carry-save reduction set
// (one write plus one placement shift), so the accumulation costs no
// extra addition pass — the same reduction tree that compresses the
// partial products folds c in. This is the PIRM composition of the
// §III-D optimized multiplication.
func (u *Unit) FMA(a, b, c dbc.Row, bw int) (dbc.Row, error) {
	defer u.Span("fma")()
	laneW := 2 * bw
	if err := u.checkBlocksize(laneW); err != nil {
		return dbc.Row{}, fmt.Errorf("pim: product lane: %w", err)
	}
	width := u.D.Width()
	if a.N != width || b.N != width || c.N != width {
		return dbc.Row{}, fmt.Errorf("pim: operand widths %d,%d,%d, want %d", a.N, b.N, c.N, width)
	}
	for base := 0; base < width; base += laneW {
		for j := bw; j < laneW; j++ {
			if a.Get(base+j) != 0 || b.Get(base+j) != 0 {
				return dbc.Row{}, fmt.Errorf("pim: operand value exceeds %d bits in lane %d: %w", bw, base/laneW, ErrLaneOverflow)
			}
		}
	}

	u.enterOp()
	defer u.exitOp()

	rows := u.genPartialProducts(u.scratchRowList(bw+1), a, b, laneW, bw)
	// The addend joins the reduction set in the window: one write step
	// plus one placement shift, like any operand entering the window.
	rows = append(rows, c)
	u.chargeStep(telemetry.OpWrite, width)
	u.chargeStep(telemetry.OpShift, width)
	return u.reduceAndAddScratch(rows, laneW, min(int(u.cfg.TRD), len(rows)))
}

// FMAValues is the lane-value convenience wrapper for FMA: products and
// addends pack into 2·bw-bit lanes; results are a[i]·b[i]+c[i] modulo
// 2^(2·bw).
func (u *Unit) FMAValues(a, b, c []uint64, bw int) ([]uint64, error) {
	if len(a) != len(b) || len(a) != len(c) {
		return nil, fmt.Errorf("pim: operand counts %d, %d and %d differ", len(a), len(b), len(c))
	}
	laneW := 2 * bw
	ra, err := PackLanes(a, laneW, u.D.Width())
	if err != nil {
		return nil, err
	}
	rb, err := PackLanes(b, laneW, u.D.Width())
	if err != nil {
		return nil, err
	}
	rc, err := PackLanes(c, laneW, u.D.Width())
	if err != nil {
		return nil, err
	}
	out, err := u.FMA(ra, rb, rc, bw)
	if err != nil {
		return nil, err
	}
	return UnpackLanes(out, laneW)[:len(a)], nil
}
