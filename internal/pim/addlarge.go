package pim

import (
	"fmt"

	"repro/internal/dbc"
)

// AddLarge adds an arbitrary number of operand rows lane-wise — the
// "large cardinality additions found in many scientific and machine
// learning algorithms" of §III-D3. Operands beyond the window's
// single-addition capacity are first compressed with TRD→3 carry-save
// reduction rounds (each O(1) regardless of lane width), and a single
// multi-operand addition finishes the job. Complexity is O(k) reduction
// rounds for k operands plus one blocksize-cycle carry chain, versus
// O(k·blocksize) for chained additions.
func (u *Unit) AddLarge(operands []dbc.Row, blocksize int) (dbc.Row, error) {
	defer u.Span("add-large")()
	k := len(operands)
	if k == 0 {
		return dbc.Row{}, fmt.Errorf("pim: large add with no operands")
	}
	if err := u.checkBlocksize(blocksize); err != nil {
		return dbc.Row{}, err
	}
	width := u.D.Width()
	for _, r := range operands {
		if r.N != width {
			return dbc.Row{}, fmt.Errorf("pim: operand width %d, want %d", r.N, width)
		}
	}
	if k == 1 {
		return copyRow(operands[0]), nil
	}
	maxAdd := u.maxAddOperands()
	if k <= maxAdd {
		return u.AddMulti(operands, blocksize)
	}

	rows := make([]dbc.Row, k)
	copy(rows, operands)
	trdN := int(u.cfg.TRD)
	for len(rows) > maxAdd {
		take := min(trdN, len(rows))
		red, err := u.Reduce(rows[:take], blocksize)
		if err != nil {
			return dbc.Row{}, err
		}
		rows = append(red.Rows(), rows[take:]...)
	}
	return u.AddMulti(rows, blocksize)
}

// AddChained adds the operands with sequential multi-operand additions
// (no carry-save reductions) — the baseline AddLarge is measured
// against in the ablation benchmarks. Functionally identical.
func (u *Unit) AddChained(operands []dbc.Row, blocksize int) (dbc.Row, error) {
	defer u.Span("add-chained")()
	k := len(operands)
	if k == 0 {
		return dbc.Row{}, fmt.Errorf("pim: chained add with no operands")
	}
	if k == 1 {
		return copyRow(operands[0]), nil
	}
	maxAdd := u.maxAddOperands()
	acc := operands[0]
	rest := operands[1:]
	for len(rest) > 0 {
		take := min(maxAdd-1, len(rest))
		group := append([]dbc.Row{acc}, rest[:take]...)
		var err error
		acc, err = u.AddMulti(group, blocksize)
		if err != nil {
			return dbc.Row{}, err
		}
		rest = rest[take:]
	}
	return acc, nil
}
