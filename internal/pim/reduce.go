package pim

import (
	"fmt"

	"repro/internal/dbc"
	"repro/internal/params"
)

// Reduction is the output of a carry-save reduction step (§III-D3): three
// rows whose lane-wise sum equals the lane-wise sum of the inputs modulo
// 2^blocksize. For TRD=3 there is no super-carry and Cp is the empty row
// (a 3→2 reduction).
type Reduction struct {
	S  dbc.Row // level bit 0, at the original bit positions
	C  dbc.Row // level bit 1, already routed one bit position up
	Cp dbc.Row // level bit 2, already routed two bit positions up (empty for TRD=3)
}

// Rows returns the non-empty rows of the reduction.
func (r Reduction) Rows() []dbc.Row {
	if r.Cp.IsEmpty() {
		return []dbc.Row{r.S, r.C}
	}
	return []dbc.Row{r.S, r.C, r.Cp}
}

// Reduce performs one TRD→3 carry-save reduction over up to TRD operand
// rows: a single parallel transverse read of every nanowire senses all
// lanes' bit positions at once (no carry chain — the defining advantage
// over addition), and the level bits are written back as the S, C and C'
// rows. Carries crossing a lane boundary are masked.
//
// Cycle anchor (§IV-A): the reduction step itself is O(1) — one TR plus
// three write-backs (S through the left port, then C and C' by transverse
// writes that rotate the window) = 4 cycles for TRD≥5, 3 for TRD=3 —
// regardless of operand count or lane width. Operand placement, when the
// rows are not already in the window, costs 2k cycles as usual.
func (u *Unit) Reduce(operands []dbc.Row, blocksize int) (Reduction, error) {
	defer u.Span("reduce")()
	k := len(operands)
	if k < 2 {
		return Reduction{}, fmt.Errorf("pim: reduce needs at least 2 operands, got %d", k)
	}
	if k > u.cfg.TRD.MaxBulkOperands() {
		return Reduction{}, fmt.Errorf("pim: reduce with %d operands exceeds TRD %d: %w", k, int(u.cfg.TRD), params.ErrBadTRD)
	}
	if err := u.checkBlocksize(blocksize); err != nil {
		return Reduction{}, err
	}
	width := u.D.Width()
	for _, r := range operands {
		if r.N != width {
			return Reduction{}, fmt.Errorf("pim: operand width %d, want %d", r.N, width)
		}
	}
	if err := u.placeWindow(operands, 0, false); err != nil {
		return Reduction{}, err
	}
	return u.reducePlaced(blocksize)
}

// reducePlaced reduces whatever occupies the window. After it returns,
// the window holds the result rows: S under the left port region after
// the transverse writes rotate it inward (positions 0..2 hold C', C, S
// for TRD≥5; positions 0..1 hold C, S for TRD=3).
func (u *Unit) reducePlaced(blocksize int) (Reduction, error) {
	lp := u.trAll()
	red := reductionOfPlanes(lp, blocksize, u.cfg.TRD.HasSuperCarry())
	// Write-back: S through the left port, then rotate C (and C') in by
	// transverse writes so all outputs occupy window rows (§IV-B notes TW
	// also accelerates padding and multi-step operations).
	u.D.WritePort(dbcLeft, red.S)
	u.D.TW(red.C)
	if !red.Cp.IsEmpty() {
		u.D.TW(red.Cp)
	}
	return red, nil
}

// reductionOfPlanes converts bit-sliced TR level planes into the S/C/C'
// rows word-parallel: S is the level's bit 0 in place, C the level's bit
// 1 routed one position up, C' bit 2 routed two positions up, with
// carries masked at lane boundaries — exactly the lane shift used by the
// multiplication forwarding path.
func reductionOfPlanes(lp dbc.LevelPlanes, blocksize int, hasCp bool) Reduction {
	s := dbc.Row{Words: append([]uint64(nil), lp.C0...), N: lp.N}
	s.MaskTail()
	c := dbc.Row{Words: append([]uint64(nil), lp.C1...), N: lp.N}
	c.MaskTail()
	red := Reduction{S: s, C: laneShiftLeft(c, blocksize)}
	if hasCp {
		cp := dbc.Row{Words: append([]uint64(nil), lp.C2...), N: lp.N}
		cp.MaskTail()
		red.Cp = laneShiftLeftK(cp, blocksize, 2)
	}
	return red
}

// reductionOfLevels converts per-wire TR levels into the S/C/C' rows,
// masking carries at lane boundaries. It tolerates -1 (masked) entries
// and is the scalar reference for reductionOfPlanes.
func reductionOfLevels(levels []int, blocksize int, hasCp bool) Reduction {
	width := len(levels)
	red := Reduction{S: dbc.NewRow(width), C: dbc.NewRow(width)}
	if hasCp {
		red.Cp = dbc.NewRow(width)
	}
	for t, l := range levels {
		if l < 0 {
			continue
		}
		j := t % blocksize
		red.S.Set(t, uint8(l&1))
		if j+1 < blocksize {
			red.C.Set(t+1, uint8(l>>1&1))
		}
		if hasCp && j+2 < blocksize {
			red.Cp.Set(t+2, uint8(l>>2&1))
		}
	}
	return red
}

// reduceRowsFunctional is the dataflow of Reduce without touching the
// DBC: used by Multiply, which charges its cost explicitly, and by tests
// that check equivalence with the DBC-executed path. The operand bits
// are counted with the same word-parallel carry-save pass the plane
// engine uses for transverse reads.
func reduceRowsFunctional(rows []dbc.Row, blocksize int, hasCp bool) Reduction {
	words := len(rows[0].Words)
	c0 := make([]uint64, words)
	c1 := make([]uint64, words)
	c2 := make([]uint64, words)
	countRowsInto(c0, c1, c2, rows)
	lp := dbc.LevelPlanes{C0: c0, C1: c1, C2: c2, N: rows[0].N}
	return reductionOfPlanes(lp, blocksize, hasCp)
}

// countRowsInto accumulates the per-wire '1' counts of rows into zeroed
// carry-save counter planes, word-parallel.
func countRowsInto(c0, c1, c2 []uint64, rows []dbc.Row) {
	for _, r := range rows {
		for i, w := range r.Words {
			t0 := c0[i] & w
			c0[i] ^= w
			t1 := c1[i] & t0
			c1[i] ^= t0
			c2[i] |= t1
		}
	}
}

// reduceRowsScratch is reduceRowsFunctional on the unit's scratch arena:
// the counter planes live in a dedicated buffer and the S/C/C' outputs
// are scratch rows, valid until the enclosing top-level op returns. The
// in-place lane shifts route C and C' up one and two positions, exactly
// as reductionOfPlanes does.
func (u *Unit) reduceRowsScratch(rows []dbc.Row, blocksize int, hasCp bool) Reduction {
	words := len(rows[0].Words)
	cs := scratchWords(&u.scratch.redWords, 3*words)
	c0, c1, c2 := cs[:words], cs[words:2*words], cs[2*words:]
	countRowsInto(c0, c1, c2, rows)

	s := u.scratchRow()
	copy(s.Words, c0)
	s.MaskTail()
	c := u.scratchRow()
	copy(c.Words, c1)
	c.MaskTail()
	laneShiftLeftKInto(c, c, blocksize, 1)
	red := Reduction{S: s, C: c}
	if hasCp {
		cp := u.scratchRow()
		copy(cp.Words, c2)
		cp.MaskTail()
		laneShiftLeftKInto(cp, cp, blocksize, 2)
		red.Cp = cp
	}
	return red
}
