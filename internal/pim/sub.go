package pim

import (
	"fmt"

	"repro/internal/dbc"
)

// Sub computes a − b lane-wise in two's complement: the NOT output of
// the polymorphic gate complements the subtrahend (§III-B), and a single
// multi-operand addition folds in the +1 correction row — the same
// pattern the paper uses for negative Booth terms (§III-D1: "−515A can
// be computed by generating ~515A + 1 ... which is still one addition
// step"). Results are modulo 2^blocksize (two's-complement negatives
// have the lane MSB set; ReLU interprets them as negative).
func (u *Unit) Sub(a, b dbc.Row, blocksize int) (dbc.Row, error) {
	defer u.Span("sub")()
	if err := u.checkBlocksize(blocksize); err != nil {
		return dbc.Row{}, err
	}
	width := u.D.Width()
	if a.N != width || b.N != width {
		return dbc.Row{}, fmt.Errorf("pim: operand widths %d,%d, want %d", a.N, b.N, width)
	}
	// Complement the subtrahend through the NOT gate (one bulk pass).
	nb, err := u.BulkBitwise(dbc.OpNOT, []dbc.Row{b})
	if err != nil {
		return dbc.Row{}, err
	}
	lanes := width / blocksize
	ones := make([]uint64, lanes)
	for i := range ones {
		ones[i] = 1
	}
	oneRow, err := PackLanes(ones, blocksize, width)
	if err != nil {
		return dbc.Row{}, err
	}
	if u.maxAddOperands() >= 3 {
		return u.AddMulti([]dbc.Row{a, nb, oneRow}, blocksize)
	}
	// TRD=3: two-operand adder needs two steps.
	t, err := u.AddMulti([]dbc.Row{a, nb}, blocksize)
	if err != nil {
		return dbc.Row{}, err
	}
	return u.AddMulti([]dbc.Row{t, oneRow}, blocksize)
}

// SubValues is the lane-value convenience wrapper for Sub; results are
// modulo 2^blocksize.
func (u *Unit) SubValues(a, b []uint64, blocksize int) ([]uint64, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("pim: operand counts %d and %d differ", len(a), len(b))
	}
	ra, err := PackLanes(a, blocksize, u.D.Width())
	if err != nil {
		return nil, err
	}
	rb, err := PackLanes(b, blocksize, u.D.Width())
	if err != nil {
		return nil, err
	}
	diff, err := u.Sub(ra, rb, blocksize)
	if err != nil {
		return nil, err
	}
	return UnpackLanes(diff, blocksize)[:len(a)], nil
}
