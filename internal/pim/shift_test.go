package pim

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/params"
)

// TestLogicalShiftDifferential checks the variable shift against Go's
// native shifts across widths and every amount 0..blocksize, in both
// directions — including the full-width shift that clears all lanes.
func TestLogicalShiftDifferential(t *testing.T) {
	for _, bs := range []int{8, 16, 32, 64} {
		width := 4 * bs
		u := unitFor(t, params.TRD7, width)
		rng := rand.New(rand.NewSource(int64(bs)))
		lanes := width / bs
		mask := uint64(1)<<uint(bs) - 1
		if bs == 64 {
			mask = ^uint64(0)
		}
		vals := make([]uint64, lanes)
		for l := range vals {
			vals[l] = rng.Uint64() & mask
		}
		for amount := 0; amount <= bs; amount++ {
			for _, left := range []bool{true, false} {
				got, err := u.LogicalShiftValues(vals, amount, bs, left)
				if err != nil {
					t.Fatal(err)
				}
				for l, v := range vals {
					var want uint64
					if amount < 64 {
						if left {
							want = v << uint(amount) & mask
						} else {
							want = v >> uint(amount)
						}
					}
					if got[l] != want {
						t.Fatalf("bs=%d amount=%d left=%v lane %d: got %#x, want %#x",
							bs, amount, left, l, got[l], want)
					}
				}
			}
		}
	}
}

// TestLogicalShiftWideLanes covers lanes wider than a word, where the
// shift decomposes into whole-word moves plus a sub-word carry chain.
func TestLogicalShiftWideLanes(t *testing.T) {
	u := unitFor(t, params.TRD7, 256)
	in := MustPackLanes([]uint64{0xDEADBEEFCAFE, 0x12345678}, 128, 256)
	for _, amount := range []int{0, 1, 63, 64, 65, 100, 127, 128} {
		outL, err := u.LogicalShift(in, amount, 128, true)
		if err != nil {
			t.Fatal(err)
		}
		outR, err := u.LogicalShift(outL, amount, 128, false)
		if err != nil {
			t.Fatal(err)
		}
		// Left then right by the same amount preserves the bits that
		// did not fall off the top.
		for l := 0; l < 2; l++ {
			for j := 0; j < 128-amount; j++ {
				if outR.Get(l*128+j) != in.Get(l*128+j) {
					t.Fatalf("amount=%d lane %d bit %d: round-trip mismatch", amount, l, j)
				}
			}
			for j := 128 - amount; j < 128; j++ {
				if j >= 0 && outR.Get(l*128+j) != 0 {
					t.Fatalf("amount=%d lane %d bit %d: expected zero fill", amount, l, j)
				}
			}
		}
	}
}

// TestLogicalShiftCostModel pins the XDWM pricing: a k-bit shift is k
// racetrack shift steps plus one port read and one write — independent
// of the lane count, and with no row-buffer data moves.
func TestLogicalShiftCostModel(t *testing.T) {
	u := unitFor(t, params.TRD7, 64)
	in := MustPackLanes([]uint64{0xAB, 0xCD}, 8, 64)
	u.ResetStats()
	if _, err := u.LogicalShift(in, 5, 8, true); err != nil {
		t.Fatal(err)
	}
	st := u.Stats()
	if st.ShiftSteps != 5 || st.ReadSteps != 1 || st.WriteSteps != 1 || st.CopySteps != 0 {
		t.Fatalf("shift cost: %+v, want 5 shifts + 1 read + 1 write", st)
	}
}

// TestLogicalShiftErrors covers amount and width validation.
func TestLogicalShiftErrors(t *testing.T) {
	u := unitFor(t, params.TRD7, 64)
	in := MustPackLanes([]uint64{1}, 8, 64)
	if _, err := u.LogicalShift(in, -1, 8, true); !errors.Is(err, ErrShiftAmount) {
		t.Fatalf("negative amount: got %v", err)
	}
	if _, err := u.LogicalShift(in, 9, 8, true); !errors.Is(err, ErrShiftAmount) {
		t.Fatalf("amount > blocksize: got %v", err)
	}
	if _, err := u.LogicalShift(in, 1, 5, true); err == nil {
		t.Fatal("invalid blocksize accepted")
	}
	short := MustPackLanes([]uint64{1}, 8, 8)
	if _, err := u.LogicalShift(short, 1, 8, true); err == nil {
		t.Fatal("mismatched width accepted")
	}
}
