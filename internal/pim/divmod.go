package pim

import (
	"fmt"

	"repro/internal/dbc"
	"repro/internal/telemetry"
)

// DivMod divides lane-wise, unsigned: each blocksize-bit lane of a is
// divided by the matching lane of d, returning the quotient and
// remainder rows. The algorithm is restoring shift-and-subtract on the
// existing Fig. 6 carry chain (the PIRM arithmetic menu realized on the
// CORUSCANT substrate): per quotient bit the remainder doubles by one
// lateral racetrack shift, the trial subtraction rem − d runs as
// rem + ¬d + 1 through the same per-bit TR/scatter chain AddMulti uses,
// and a predicated write keeps either the difference or the untouched
// remainder — the restoring step costs no extra add.
//
// The loop invariant rem < d makes the b-bit window exact: the doubled
// remainder is at most 2d−1, so a single overflow bit (the remainder
// MSB captured before the shift) together with the in-window compare
// decides the subtraction. Lanes dividing by zero fall out of the same
// dataflow with the RISC-V convention: quotient all-ones, remainder a.
func (u *Unit) DivMod(a, d dbc.Row, blocksize int) (dbc.Row, dbc.Row, error) {
	defer u.Span("div")()
	if err := u.checkBlocksize(blocksize); err != nil {
		return dbc.Row{}, dbc.Row{}, err
	}
	width := u.D.Width()
	if a.N != width || d.N != width {
		return dbc.Row{}, dbc.Row{}, fmt.Errorf("pim: operand widths %d,%d, want %d", a.N, d.N, width)
	}
	u.enterOp()
	defer u.exitOp()

	b := blocksize
	lanes := width / b
	rem := u.scratchRow()
	diff := u.scratchRow()
	take := u.scratchRow()
	q := dbc.NewRow(width)

	// ¬d through the polymorphic NOT gate: one bulk pass, same charge as
	// the Sub complement. The +1 correction row is a preset constant
	// (bit 0 of every lane), maintained like the Fig. 7 padding.
	notd := u.scratchRow()
	for i, w := range d.Words {
		notd.Words[i] = ^w
	}
	notd.MaskTail()
	u.chargeStep(telemetry.OpTR, width)
	u.chargeStep(telemetry.OpWrite, width)
	one := u.scratchRow()
	for l := 0; l < lanes; l++ {
		one.Set(l*b, 1)
	}

	for j := b - 1; j >= 0; j-- {
		// Overflow bit: lanes whose remainder MSB is set before doubling
		// already exceed d after the shift, whatever the low bits say.
		for i := range take.Words {
			take.Words[i] = 0
		}
		for l := 0; l < lanes; l++ {
			if rem.Get(l*b+b-1) != 0 {
				setLane(take, l, b)
			}
		}
		// rem = rem<<1 | a_j: one lateral shift step on the racetrack.
		laneShiftLeftKInto(rem, rem, b, 1)
		for l := 0; l < lanes; l++ {
			if a.Get(l*b+j) != 0 {
				rem.Set(l*b, 1)
			}
		}
		u.chargeStep(telemetry.OpShift, width)
		// Trial subtraction on the carry chain.
		if err := u.subChainInto(diff, rem, notd, one, b); err != nil {
			return dbc.Row{}, dbc.Row{}, err
		}
		// Decide per lane and set the quotient bit.
		for l := 0; l < lanes; l++ {
			base := l * b
			if take.Get(base) == 0 && laneGE(rem, d, l, b) {
				setLane(take, l, b)
			}
			if take.Get(base) != 0 {
				q.Set(base+j, 1)
			}
		}
		// rem = take ? diff : rem — the predicated write driver keeps the
		// difference only in subtracting lanes (one copy step).
		for i := range rem.Words {
			rem.Words[i] = diff.Words[i]&take.Words[i] | rem.Words[i]&^take.Words[i]
		}
		rem.MaskTail()
		u.chargeStep(telemetry.OpCopy, width)
	}
	q.MaskTail()
	return q, copyRow(rem), nil
}

// subChainInto computes x − d into dst via the carry chain, with ¬d and
// the +1 correction already materialized: one three-operand window add
// for TRD ≥ 5, or two chained two-operand adds on the TRD=3 window.
func (u *Unit) subChainInto(dst, x, notd, one dbc.Row, blocksize int) error {
	if u.maxAddOperands() >= 3 {
		hasCp := u.cfg.TRD.HasSuperCarry()
		if err := u.placeWindow(append(u.scratchRowList(3), x, notd, one), 0, hasCp); err != nil {
			return err
		}
		return u.addPlacedInto(dst, blocksize, hasCp)
	}
	t := u.scratchRow()
	if err := u.placeWindow(append(u.scratchRowList(2), x, notd), 0, false); err != nil {
		return err
	}
	if err := u.addPlacedInto(t, blocksize, false); err != nil {
		return err
	}
	if err := u.placeWindow(append(u.scratchRowList(2), t, one), 0, false); err != nil {
		return err
	}
	return u.addPlacedInto(dst, blocksize, false)
}

// DivModSigned is DivMod on two's-complement lanes with truncated
// (round-toward-zero) semantics: the sign handling — conditional lane
// negation before and after the unsigned core — runs functionally with
// one complement pass (TR + write) and one predicated copy charged per
// negation, while the divide itself runs on the carry chain. Division
// by zero returns quotient all-ones (−1) and remainder a, and
// MinInt/−1 wraps to MinInt with remainder 0 (the Go/RISC-V overflow
// convention) — both fall out of the magnitude dataflow.
func (u *Unit) DivModSigned(a, d dbc.Row, blocksize int) (dbc.Row, dbc.Row, error) {
	defer u.Span("sdiv")()
	if err := u.checkBlocksize(blocksize); err != nil {
		return dbc.Row{}, dbc.Row{}, err
	}
	width := u.D.Width()
	if a.N != width || d.N != width {
		return dbc.Row{}, dbc.Row{}, fmt.Errorf("pim: operand widths %d,%d, want %d", a.N, d.N, width)
	}
	u.enterOp()
	defer u.exitOp()

	b := blocksize
	lanes := width / b
	magA := u.scratchRow()
	magD := u.scratchRow()
	copy(magA.Words, a.Words)
	copy(magD.Words, d.Words)
	for l := 0; l < lanes; l++ {
		if a.Get(l*b+b-1) != 0 {
			laneNegate(magA, l, b)
		}
		if d.Get(l*b+b-1) != 0 {
			laneNegate(magD, l, b)
		}
	}
	u.chargeStep(telemetry.OpTR, width)
	u.chargeStep(telemetry.OpWrite, width)
	u.chargeStep(telemetry.OpCopy, width)

	q, r, err := u.DivMod(magA, magD, b)
	if err != nil {
		return dbc.Row{}, dbc.Row{}, err
	}

	for l := 0; l < lanes; l++ {
		base := l * b
		sa := a.Get(base+b-1) != 0
		sd := d.Get(base+b-1) != 0
		if laneIsZero(d, l, b) {
			// q is already all-ones in zero-divisor lanes; restore r = a.
			for j := 0; j < b; j++ {
				r.Set(base+j, a.Get(base+j))
			}
			continue
		}
		if sa != sd {
			laneNegate(q, l, b)
		}
		if sa {
			laneNegate(r, l, b)
		}
	}
	q.MaskTail()
	r.MaskTail()
	u.chargeStep(telemetry.OpTR, width)
	u.chargeStep(telemetry.OpWrite, width)
	u.chargeStep(telemetry.OpCopy, width)
	return q, r, nil
}

// DivModValues is the lane-value convenience wrapper for DivMod.
func (u *Unit) DivModValues(a, d []uint64, blocksize int) (q, r []uint64, err error) {
	if len(a) != len(d) {
		return nil, nil, fmt.Errorf("pim: operand counts %d and %d differ", len(a), len(d))
	}
	ra, err := PackLanes(a, blocksize, u.D.Width())
	if err != nil {
		return nil, nil, err
	}
	rd, err := PackLanes(d, blocksize, u.D.Width())
	if err != nil {
		return nil, nil, err
	}
	rq, rr, err := u.DivMod(ra, rd, blocksize)
	if err != nil {
		return nil, nil, err
	}
	return UnpackLanes(rq, blocksize)[:len(a)], UnpackLanes(rr, blocksize)[:len(a)], nil
}

// DivModSignedValues is the lane-value wrapper for DivModSigned, for
// lanes of at most 64 bits (values are two's-complement encoded into
// the lane width).
func (u *Unit) DivModSignedValues(a, d []int64, blocksize int) (q, r []int64, err error) {
	if len(a) != len(d) {
		return nil, nil, fmt.Errorf("pim: operand counts %d and %d differ", len(a), len(d))
	}
	if blocksize > 64 {
		return nil, nil, fmt.Errorf("pim: signed value wrapper limited to 64-bit lanes, got %d: %w", blocksize, ErrLaneOverflow)
	}
	mask := uint64(1)<<uint(blocksize) - 1
	if blocksize == 64 {
		mask = ^uint64(0)
	}
	enc := func(vals []int64) ([]uint64, error) {
		out := make([]uint64, len(vals))
		for i, v := range vals {
			out[i] = uint64(v) & mask
		}
		return out, nil
	}
	ua, _ := enc(a)
	ud, _ := enc(d)
	ra, err := PackLanes(ua, blocksize, u.D.Width())
	if err != nil {
		return nil, nil, err
	}
	rd, err := PackLanes(ud, blocksize, u.D.Width())
	if err != nil {
		return nil, nil, err
	}
	rq, rr, err := u.DivModSigned(ra, rd, blocksize)
	if err != nil {
		return nil, nil, err
	}
	dec := func(row dbc.Row) []int64 {
		us := UnpackLanes(row, blocksize)[:len(a)]
		out := make([]int64, len(us))
		sign := uint64(1) << uint(blocksize-1)
		for i, v := range us {
			if blocksize < 64 && v&sign != 0 {
				v |= ^mask
			}
			out[i] = int64(v)
		}
		return out
	}
	return dec(rq), dec(rr), nil
}

// setLane fills lane l of row r with ones, word-at-a-time (the inverse
// of zeroLane).
func setLane(r dbc.Row, l, lane int) {
	base := l * lane
	switch {
	case 64%lane == 0:
		mask := (uint64(1)<<uint(lane) - 1) << uint(base%64)
		if lane == 64 {
			mask = ^uint64(0)
		}
		r.Words[base/64] |= mask
	case lane%64 == 0:
		for i := base / 64; i < (base+lane)/64; i++ {
			r.Words[i] = ^uint64(0)
		}
	default:
		for t := base; t < base+lane; t++ {
			r.Set(t, 1)
		}
	}
	r.MaskTail()
}

// laneGE reports whether lane l of x is ≥ lane l of y, comparing from
// the most significant bit down.
func laneGE(x, y dbc.Row, l, lane int) bool {
	base := l * lane
	for j := lane - 1; j >= 0; j-- {
		xb, yb := x.Get(base+j), y.Get(base+j)
		if xb != yb {
			return xb > yb
		}
	}
	return true
}

// laneIsZero reports whether lane l of r is all zeros.
func laneIsZero(r dbc.Row, l, lane int) bool {
	base := l * lane
	for j := 0; j < lane; j++ {
		if r.Get(base+j) != 0 {
			return false
		}
	}
	return true
}

// laneNegate two's-complement negates lane l of r in place: complement
// plus an in-lane ripple increment.
func laneNegate(r dbc.Row, l, lane int) {
	base := l * lane
	carry := uint8(1)
	for j := 0; j < lane; j++ {
		s := (1 - r.Get(base+j)) + carry
		r.Set(base+j, s&1)
		carry = s >> 1
	}
}
