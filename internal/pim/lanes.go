package pim

import (
	"fmt"

	"repro/internal/dbc"
	"repro/internal/device"
)

// Port side aliases used throughout the package.
const (
	dbcLeft  = device.Left
	dbcRight = device.Right
)

// PackLanes packs vals into a row of the given total width, one value per
// lane of lane bits. Bit j of vals[l] lands on wire l·lane+j, i.e. each
// lane is little-endian along the wire index — matching the carry chain,
// which propagates toward higher wire indices (Fig. 6). Values must fit
// in lane bits.
func PackLanes(vals []uint64, lane, width int) (dbc.Row, error) {
	if lane <= 0 || width%lane != 0 {
		return nil, fmt.Errorf("pim: width %d not divisible by lane %d", width, lane)
	}
	if len(vals) > width/lane {
		return nil, fmt.Errorf("pim: %d values exceed %d lanes", len(vals), width/lane)
	}
	row := make(dbc.Row, width)
	for l, v := range vals {
		if lane < 64 && v >= 1<<uint(lane) {
			return nil, fmt.Errorf("pim: value %d does not fit in %d-bit lane", v, lane)
		}
		for j := 0; j < lane && j < 64; j++ {
			row[l*lane+j] = uint8((v >> uint(j)) & 1)
		}
	}
	return row, nil
}

// MustPackLanes is PackLanes panicking on error, for fixed-shape callers.
func MustPackLanes(vals []uint64, lane, width int) dbc.Row {
	row, err := PackLanes(vals, lane, width)
	if err != nil {
		panic(err)
	}
	return row
}

// UnpackLanes extracts the lane values of a row (lanes wider than 64 bits
// are truncated to their low 64 bits).
func UnpackLanes(row dbc.Row, lane int) []uint64 {
	n := len(row) / lane
	vals := make([]uint64, n)
	for l := 0; l < n; l++ {
		var v uint64
		for j := 0; j < lane && j < 64; j++ {
			v |= uint64(row[l*lane+j]&1) << uint(j)
		}
		vals[l] = v
	}
	return vals
}

// zeroRow returns an all-zero row of the given width.
func zeroRow(width int) dbc.Row { return make(dbc.Row, width) }

// constRow returns a row filled with the given bit.
func constRow(width int, bit uint8) dbc.Row {
	r := make(dbc.Row, width)
	if bit != 0 {
		for i := range r {
			r[i] = 1
		}
	}
	return r
}

// copyRow returns a copy of r.
func copyRow(r dbc.Row) dbc.Row {
	out := make(dbc.Row, len(r))
	copy(out, r)
	return out
}

// laneShiftLeft returns r logically shifted left by one bit position
// within each lane of the given width: bit j moves to bit j+1, the lane
// MSB is discarded, bit 0 becomes zero. This is the Fig. 4(a) brown
// i→i+1 forwarding path (§III-D: a logical left shift, multiply by two).
func laneShiftLeft(r dbc.Row, lane int) dbc.Row {
	out := make(dbc.Row, len(r))
	for base := 0; base < len(r); base += lane {
		for j := lane - 1; j >= 1; j-- {
			out[base+j] = r[base+j-1]
		}
		out[base] = 0
	}
	return out
}
