package pim

import (
	"errors"
	"fmt"

	"repro/internal/dbc"
	"repro/internal/device"
)

// Port side aliases used throughout the package.
const (
	dbcLeft  = device.Left
	dbcRight = device.Right
)

// ErrLaneOverflow reports a lane-packing violation: a value that does
// not fit its lane, more values than the row has lanes, or a row width
// the lane size does not divide. Wrapped by PackLanes and the lane-wise
// operand checks; test with errors.Is.
var ErrLaneOverflow = errors.New("pim: value or lane count overflows the lane layout")

// PackLanes packs vals into a row of the given total width, one value per
// lane of lane bits. Bit j of vals[l] lands on wire l·lane+j, i.e. each
// lane is little-endian along the wire index — matching the carry chain,
// which propagates toward higher wire indices (Fig. 6). Values must fit
// in lane bits.
//
// Because the packed Row uses the same little-endian wire order, packing
// is a direct word move: a lane that divides the word size lands with one
// shift-or, and lanes of 64 bits or wider land with one word store.
func PackLanes(vals []uint64, lane, width int) (dbc.Row, error) {
	if lane <= 0 || width%lane != 0 {
		return dbc.Row{}, fmt.Errorf("pim: width %d not divisible by lane %d: %w", width, lane, ErrLaneOverflow)
	}
	if len(vals) > width/lane {
		return dbc.Row{}, fmt.Errorf("pim: %d values exceed %d lanes: %w", len(vals), width/lane, ErrLaneOverflow)
	}
	for _, v := range vals {
		if lane < 64 && v >= 1<<uint(lane) {
			return dbc.Row{}, fmt.Errorf("pim: value %d does not fit in %d-bit lane: %w", v, lane, ErrLaneOverflow)
		}
	}
	row := dbc.NewRow(width)
	for l, v := range vals {
		switch {
		case 64%lane == 0:
			per := 64 / lane
			row.Words[l/per] |= v << (uint(l%per) * uint(lane))
		case lane%64 == 0:
			row.Words[l*(lane/64)] = v
		default:
			for j := 0; j < lane && j < 64; j++ {
				row.Set(l*lane+j, uint8(v>>uint(j))&1)
			}
		}
	}
	row.MaskTail()
	return row, nil
}

// MustPackLanes is PackLanes panicking on error, for fixed-shape callers.
func MustPackLanes(vals []uint64, lane, width int) dbc.Row {
	row, err := PackLanes(vals, lane, width)
	if err != nil {
		panic(err)
	}
	return row
}

// UnpackLanes extracts the lane values of a row (lanes wider than 64 bits
// are truncated to their low 64 bits).
func UnpackLanes(row dbc.Row, lane int) []uint64 {
	n := row.N / lane
	vals := make([]uint64, n)
	for l := 0; l < n; l++ {
		switch {
		case 64%lane == 0:
			per := 64 / lane
			v := row.Words[l/per] >> (uint(l%per) * uint(lane))
			if lane < 64 {
				v &= 1<<uint(lane) - 1
			}
			vals[l] = v
		case lane%64 == 0:
			vals[l] = row.Words[l*(lane/64)]
		default:
			var v uint64
			for j := 0; j < lane && j < 64; j++ {
				v |= uint64(row.Get(l*lane+j)) << uint(j)
			}
			vals[l] = v
		}
	}
	return vals
}

// zeroRow returns an all-zero row of the given width.
func zeroRow(width int) dbc.Row { return dbc.NewRow(width) }

// constRow returns a row filled with the given bit.
func constRow(width int, bit uint8) dbc.Row { return dbc.ConstRow(width, bit) }

// copyRow returns a copy of r.
func copyRow(r dbc.Row) dbc.Row { return r.Clone() }

// lanePattern returns the word mask with bit `bit` of every lane set,
// for lanes that divide the word size.
func lanePattern(lane, bit int) uint64 {
	var p uint64
	for j := bit; j < 64; j += lane {
		p |= 1 << uint(j)
	}
	return p
}

// laneShiftLeft returns r logically shifted left by k bit positions
// within each lane of the given width: bit j moves to bit j+k, the lane's
// top k bits are discarded, the bottom k bits become zero. With k=1 this
// is the Fig. 4(a) brown i→i+1 forwarding path (§III-D: a logical left
// shift, multiply by two). The shift runs word-at-a-time: a cross-word
// carry chain plus one lane-boundary mask.
func laneShiftLeftK(r dbc.Row, lane, k int) dbc.Row {
	out := dbc.NewRow(r.N)
	laneShiftLeftKInto(out, r, lane, k)
	return out
}

// laneShiftLeftKInto is laneShiftLeftK writing into a caller-owned row
// of the same width. out == r is allowed (in-place shift): words are
// filled from the high index down, so every source word is read before
// it can be overwritten. Any k ≥ 0 is supported (k ≥ lane zeroes the
// lanes); shifts wider than a word decompose into a whole-word move
// plus a sub-word carry chain.
func laneShiftLeftKInto(out, r dbc.Row, lane, k int) {
	if k >= lane {
		for i := range out.Words {
			out.Words[i] = 0
		}
		return
	}
	kw, kb := k/64, uint(k%64)
	for i := len(r.Words) - 1; i >= 0; i-- {
		var w uint64
		if i-kw >= 0 {
			w = r.Words[i-kw] << kb
			if kb > 0 && i-kw-1 >= 0 {
				w |= r.Words[i-kw-1] >> (64 - kb)
			}
		}
		out.Words[i] = w
	}
	clearLaneLow(out, lane, k)
	out.MaskTail()
}

// clearLaneLow zeroes the k low bits of every lane of out in place.
func clearLaneLow(out dbc.Row, lane, k int) {
	switch {
	case k == 0:
	case 64%lane == 0:
		// Clear the k low bits of every lane in one mask per word.
		var low uint64
		for b := 0; b < k; b++ {
			low |= lanePattern(lane, b)
		}
		for i := range out.Words {
			out.Words[i] &^= low
		}
	case lane%64 == 0:
		for base := 0; base < len(out.Words); base += lane / 64 {
			for i := 0; i < k/64; i++ {
				out.Words[base+i] = 0
			}
			if kb := uint(k % 64); kb > 0 {
				out.Words[base+k/64] &^= 1<<kb - 1
			}
		}
	default:
		for base := 0; base < out.N; base += lane {
			for b := 0; b < k; b++ {
				out.Set(base+b, 0)
			}
		}
	}
}

// laneShiftRightKInto writes r logically shifted right by k bit
// positions within each lane into out: bit j moves to bit j−k, the
// lane's bottom k bits are discarded, the top k bits become zero.
// out == r is allowed: words fill from the low index up, reading only
// indices at or above the one being written.
func laneShiftRightKInto(out, r dbc.Row, lane, k int) {
	if k >= lane {
		for i := range out.Words {
			out.Words[i] = 0
		}
		return
	}
	kw, kb := k/64, uint(k%64)
	n := len(r.Words)
	for i := 0; i < n; i++ {
		var w uint64
		if i+kw < n {
			w = r.Words[i+kw] >> kb
			if kb > 0 && i+kw+1 < n {
				w |= r.Words[i+kw+1] << (64 - kb)
			}
		}
		out.Words[i] = w
	}
	clearLaneHigh(out, lane, k)
	out.MaskTail()
}

// clearLaneHigh zeroes the k high bits of every lane of out in place.
func clearLaneHigh(out dbc.Row, lane, k int) {
	switch {
	case k == 0:
	case 64%lane == 0:
		var high uint64
		for b := lane - k; b < lane; b++ {
			high |= lanePattern(lane, b)
		}
		for i := range out.Words {
			out.Words[i] &^= high
		}
	case lane%64 == 0:
		wpl := lane / 64
		for base := 0; base < len(out.Words); base += wpl {
			for i := 0; i < k/64; i++ {
				out.Words[base+wpl-1-i] = 0
			}
			if kb := uint(k % 64); kb > 0 {
				out.Words[base+wpl-1-k/64] &^= ((1 << kb) - 1) << (64 - kb)
			}
		}
	default:
		for base := 0; base < out.N; base += lane {
			for b := lane - k; b < lane; b++ {
				out.Set(base+b, 0)
			}
		}
	}
}

func laneShiftLeft(r dbc.Row, lane int) dbc.Row { return laneShiftLeftK(r, lane, 1) }

func laneShiftLeftInto(out, r dbc.Row, lane int) { laneShiftLeftKInto(out, r, lane, 1) }

// zeroLane clears lane l of row r in place, word-at-a-time.
func zeroLane(r dbc.Row, l, lane int) {
	base := l * lane
	switch {
	case 64%lane == 0:
		mask := (uint64(1)<<uint(lane) - 1) << uint(base%64)
		if lane == 64 {
			mask = ^uint64(0)
		}
		r.Words[base/64] &^= mask
	case lane%64 == 0:
		for i := base / 64; i < (base+lane)/64; i++ {
			r.Words[i] = 0
		}
	default:
		for t := base; t < base+lane; t++ {
			r.Set(t, 0)
		}
	}
}
