package pim

import (
	"fmt"

	"repro/internal/dbc"
	"repro/internal/params"
	"repro/internal/telemetry"
)

// ValidNMR reports whether n is a supported modular-redundancy degree for
// the unit's TRD: the paper supports N ∈ {3,5,7} with N ≤ TRD (§III-F).
func (u *Unit) ValidNMR(n int) bool {
	return (n == 3 || n == 5 || n == 7) && n <= int(u.cfg.TRD)
}

// Vote computes the bitwise majority of n replica rows using the C'
// circuit (§III-F, Fig. 7(c)/(d)): the replicas are placed in the window
// together with (TRD−N)/2 pre-populated '1' rows and (TRD−N)/2 '0' rows,
// so the level threshold TRD/2 rounds to the replica majority. One TR
// plus one write-back.
//
// An uncorrectable error needs ⌈N/2⌉ replicas faulty in the same bit
// position (or a C' sensing fault), giving the Table V reliability tiers.
func (u *Unit) Vote(replicas []dbc.Row) (dbc.Row, error) {
	defer u.Span("vote")()
	n := len(replicas)
	if !u.ValidNMR(n) {
		return dbc.Row{}, fmt.Errorf("pim: unsupported redundancy degree %d for %v: %w", n, u.cfg.TRD, params.ErrBadTRD)
	}
	width := u.D.Width()
	for _, r := range replicas {
		if r.N != width {
			return dbc.Row{}, fmt.Errorf("pim: replica width %d, want %d", r.N, width)
		}
	}
	pad := (int(u.cfg.TRD) - n) / 2
	rows := make([]dbc.Row, 0, n+pad)
	rows = append(rows, replicas...)
	for i := 0; i < pad; i++ {
		// The '1' halves of the balanced padding are placed as
		// operands; the '0' halves are the window's pad constant.
		rows = append(rows, constRow(width, 1))
	}
	if err := u.placeWindow(rows, 0, true); err != nil {
		return dbc.Row{}, err
	}
	// The C' threshold is the majority output (§III-F); evaluate it
	// word-parallel over the bit-sliced level planes.
	out := dbc.EvalPlanes(dbc.OpMAJ, u.trAll(), u.cfg.TRD)
	u.D.WritePort(dbcLeft, out)
	return out, nil
}

// AddMultiNMR performs the Fig. 6 multi-operand addition with per-step
// voting (§III-F): each bit position's transverse read repeats n times
// and the S/C/C' outputs are majority-voted *before* the scatter write,
// so a faulty sense cannot poison the carry chain. This is the
// fault-tolerance end of the paper's performance-versus-reliability
// trade-off — voting after the whole add is cheaper but lets carry
// errors accumulate ("nearly two orders of magnitude" apart, §V-F).
func (u *Unit) AddMultiNMR(n int, operands []dbc.Row, blocksize int) (dbc.Row, error) {
	defer u.Span("add-nmr")()
	if !u.ValidNMR(n) {
		return dbc.Row{}, fmt.Errorf("pim: unsupported redundancy degree %d for %v: %w", n, u.cfg.TRD, params.ErrBadTRD)
	}
	k := len(operands)
	if k < 2 {
		return dbc.Row{}, fmt.Errorf("pim: add needs at least 2 operands, got %d", k)
	}
	if max := u.maxAddOperands(); k > max {
		return dbc.Row{}, fmt.Errorf("pim: add with %d operands exceeds limit %d for %v", k, max, u.cfg.TRD)
	}
	if err := u.checkBlocksize(blocksize); err != nil {
		return dbc.Row{}, err
	}
	width := u.D.Width()
	for _, r := range operands {
		if r.N != width {
			return dbc.Row{}, fmt.Errorf("pim: operand width %d, want %d", r.N, width)
		}
	}
	hasCp := u.cfg.TRD.HasSuperCarry()
	if err := u.placeWindow(operands, 0, hasCp); err != nil {
		return dbc.Row{}, err
	}

	b := blocksize
	sum := dbc.NewRow(width)
	wires := make([]int, 0, width/b)
	for j := 0; j < b; j++ {
		wires = wires[:0]
		for t := j; t < width; t += b {
			wires = append(wires, t)
		}
		// Sense the same window n times; vote per output bit.
		votesS := make([]int, width)
		votesC := make([]int, width)
		votesCp := make([]int, width)
		for rep := 0; rep < n; rep++ {
			levels, err := u.D.TRWires(wires)
			if err != nil {
				return dbc.Row{}, err
			}
			for _, t := range wires {
				o := dbc.Sense(levels[t], u.cfg.TRD)
				votesS[t] += int(o.S)
				votesC[t] += int(o.C)
				votesCp[t] += int(o.Cp)
			}
		}
		u.Tracer().Logic() // the majority evaluation (C' circuit reuse)
		u.rec.Step(u.src, telemetry.OpLogic, 0)
		writes := make([]dbc.PortBit, 0, 3*len(wires))
		for _, t := range wires {
			s := majBit(votesS[t], n)
			sum.Set(t, s)
			writes = append(writes, dbc.PortBit{Wire: t, Side: dbcLeft, Bit: s})
			if j+1 < b {
				writes = append(writes, dbc.PortBit{Wire: t + 1, Side: dbcRight, Bit: majBit(votesC[t], n)})
			}
			if hasCp && j+2 < b {
				writes = append(writes, dbc.PortBit{Wire: t + 2, Side: dbcLeft, Bit: majBit(votesCp[t], n)})
			}
		}
		u.D.WriteScatter(writes)
	}
	return sum, nil
}

func majBit(votes, n int) uint8 {
	if 2*votes > n {
		return 1
	}
	return 0
}

// RunNMR executes op n times and votes on the results (§III-F). The op
// callback must perform one PIM operation and return its result row; it
// runs once per replica so injected faults differ between replicas.
func (u *Unit) RunNMR(n int, op func() (dbc.Row, error)) (dbc.Row, error) {
	if !u.ValidNMR(n) {
		return dbc.Row{}, fmt.Errorf("pim: unsupported redundancy degree %d for %v: %w", n, u.cfg.TRD, params.ErrBadTRD)
	}
	replicas := make([]dbc.Row, n)
	for i := range replicas {
		r, err := op()
		if err != nil {
			return dbc.Row{}, fmt.Errorf("pim: replica %d: %w", i, err)
		}
		replicas[i] = r
	}
	return u.Vote(replicas)
}
