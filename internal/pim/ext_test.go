package pim

import (
	"math/rand"
	"testing"

	"repro/internal/dbc"
	"repro/internal/device"
	"repro/internal/params"
)

// --- AddLarge --------------------------------------------------------------

func TestAddLargeExact(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	for _, trd := range []params.TRD{params.TRD3, params.TRD5, params.TRD7} {
		for _, k := range []int{1, 2, 5, 7, 9, 16, 33} {
			u := unitFor(t, trd, 64)
			operands := make([]dbc.Row, k)
			vals := make([][]uint64, k)
			for i := range operands {
				vals[i] = make([]uint64, 8)
				for l := range vals[i] {
					vals[i][l] = uint64(rng.Intn(256))
				}
				operands[i] = MustPackLanes(vals[i], 8, 64)
			}
			sum, err := u.AddLarge(operands, 8)
			if err != nil {
				t.Fatalf("%v k=%d: %v", trd, k, err)
			}
			got := UnpackLanes(sum, 8)
			for l := 0; l < 8; l++ {
				var want uint64
				for i := range vals {
					want += vals[i][l]
				}
				if got[l] != want&0xff {
					t.Fatalf("%v k=%d lane %d = %d, want %d", trd, k, l, got[l], want&0xff)
				}
			}
		}
	}
}

func TestAddChainedMatchesAddLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, k := range []int{3, 8, 20} {
		ul := unitFor(t, params.TRD7, 64)
		uc := unitFor(t, params.TRD7, 64)
		operands := make([]dbc.Row, k)
		for i := range operands {
			vals := make([]uint64, 8)
			for l := range vals {
				vals[l] = uint64(rng.Intn(256))
			}
			operands[i] = MustPackLanes(vals, 8, 64)
		}
		a, err := ul.AddLarge(operands, 8)
		if err != nil {
			t.Fatal(err)
		}
		b, err := uc.AddChained(operands, 8)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Equal(b) {
			t.Fatalf("k=%d: AddLarge and AddChained disagree", k)
		}
	}
}

func TestAddLargeBeatsChainedAdds(t *testing.T) {
	// §III-D3: the 7→3 reductions make large reductions O(k) cheap
	// steps instead of O(k) full carry chains. For 33 operands at 32-bit
	// lanes the reduction path must win clearly.
	k := 33
	operands := make([]dbc.Row, k)
	for i := range operands {
		operands[i] = MustPackLanes([]uint64{uint64(i * 1000)}, 32, 64)
	}
	ul := unitFor(t, params.TRD7, 64)
	if _, err := ul.AddLarge(operands, 32); err != nil {
		t.Fatal(err)
	}
	large := ul.Stats().Cycles()
	uc := unitFor(t, params.TRD7, 64)
	if _, err := uc.AddChained(operands, 32); err != nil {
		t.Fatal(err)
	}
	chained := uc.Stats().Cycles()
	if float64(large) > 0.6*float64(chained) {
		t.Errorf("AddLarge %d cycles vs chained %d: expected a clear win", large, chained)
	}
}

func TestAddLargeErrors(t *testing.T) {
	u := unitFor(t, params.TRD7, 32)
	if _, err := u.AddLarge(nil, 8); err == nil {
		t.Error("no operands accepted")
	}
	if _, err := u.AddLarge([]dbc.Row{dbc.NewRow(32)}, 9); err == nil {
		t.Error("bad blocksize accepted")
	}
	if _, err := u.AddLarge([]dbc.Row{dbc.NewRow(4), dbc.NewRow(4)}, 8); err == nil {
		t.Error("wrong width accepted")
	}
}

// --- Max ablation -------------------------------------------------------

func TestMaxTRFullShiftExact(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, trd := range []params.TRD{params.TRD3, params.TRD5, params.TRD7} {
		for k := 2; k <= int(trd); k++ {
			u := unitFor(t, trd, 32)
			cands := make([]dbc.Row, k)
			vals := make([][]uint64, k)
			for i := range cands {
				vals[i] = make([]uint64, 4)
				for l := range vals[i] {
					vals[i][l] = uint64(rng.Intn(256))
				}
				cands[i] = MustPackLanes(vals[i], 8, 32)
			}
			got, err := u.MaxTRFullShift(cands, 8)
			if err != nil {
				t.Fatalf("%v k=%d: %v", trd, k, err)
			}
			res := UnpackLanes(got, 8)
			for l := 0; l < 4; l++ {
				var want uint64
				for i := range vals {
					if vals[i][l] > want {
						want = vals[i][l]
					}
				}
				if res[l] != want {
					t.Fatalf("%v k=%d lane %d = %d, want %d", trd, k, l, res[l], want)
				}
			}
		}
	}
}

func TestTWSavesMaxCycles(t *testing.T) {
	// §IV-B: "TW for TRD = 7 reduces maximum function cycles by 28.5%".
	// Our choreography: TW rotation is 2 steps/candidate vs 3 with
	// whole-nanowire shifting → a ~30% saving; assert the band 20-40%.
	mk := func() []dbc.Row {
		cands := make([]dbc.Row, 7)
		for i := range cands {
			vals := make([]uint64, 4)
			for l := range vals {
				vals[l] = uint64((i*53 + l*17) % 256)
			}
			cands[i] = MustPackLanes(vals, 8, 32)
		}
		return cands
	}
	utw := unitFor(t, params.TRD7, 32)
	if _, err := utw.MaxTR(mk(), 8); err != nil {
		t.Fatal(err)
	}
	tw := utw.Stats().Cycles()
	ufs := unitFor(t, params.TRD7, 32)
	if _, err := ufs.MaxTRFullShift(mk(), 8); err != nil {
		t.Fatal(err)
	}
	fs := ufs.Stats().Cycles()
	saving := 1 - float64(tw)/float64(fs)
	if saving < 0.20 || saving > 0.40 {
		t.Errorf("TW saving = %.1f%% (TW %d vs full-shift %d), want ≈28.5%%", saving*100, tw, fs)
	}
}

// --- Per-step NMR addition -------------------------------------------------

func TestAddMultiNMRExactNoFaults(t *testing.T) {
	u := unitFor(t, params.TRD7, 64)
	rows := make([]dbc.Row, 4)
	vals := make([][]uint64, 4)
	rng := rand.New(rand.NewSource(43))
	for i := range rows {
		vals[i] = make([]uint64, 8)
		for l := range vals[i] {
			vals[i][l] = uint64(rng.Intn(256))
		}
		rows[i] = MustPackLanes(vals[i], 8, 64)
	}
	sum, err := u.AddMultiNMR(3, rows, 8)
	if err != nil {
		t.Fatal(err)
	}
	got := UnpackLanes(sum, 8)
	for l := 0; l < 8; l++ {
		var want uint64
		for i := range vals {
			want += vals[i][l]
		}
		if got[l] != want&0xff {
			t.Fatalf("lane %d = %d, want %d", l, got[l], want&0xff)
		}
	}
}

func TestAddMultiNMRCost(t *testing.T) {
	// Per-step voting triples the TR steps but not the placement/writes.
	base := unitFor(t, params.TRD7, 8)
	rows := []dbc.Row{MustPackLanes([]uint64{100}, 8, 8), MustPackLanes([]uint64{50}, 8, 8)}
	if _, err := base.AddMulti(rows, 8); err != nil {
		t.Fatal(err)
	}
	prot := unitFor(t, params.TRD7, 8)
	if _, err := prot.AddMultiNMR(3, rows, 8); err != nil {
		t.Fatal(err)
	}
	bs, ps := base.Stats(), prot.Stats()
	if ps.TRSteps != 3*bs.TRSteps {
		t.Errorf("TR steps %d, want %d", ps.TRSteps, 3*bs.TRSteps)
	}
	if ps.WriteSteps != bs.WriteSteps {
		t.Errorf("write steps %d, want unchanged %d", ps.WriteSteps, bs.WriteSteps)
	}
}

func TestAddMultiNMRBeatsEndVotingUnderFaults(t *testing.T) {
	// §III-F / §V-F: voting after each nanowire's S/C/C' computation
	// beats voting once at the end, because carry-chain corruption never
	// propagates. Compare empirically at an inflated fault rate.
	trials := 1200
	run := func(perStep bool, seed int64) int {
		cfg := testConfig(params.TRD7, 8)
		u := MustNewUnit(cfg)
		u.D.SetFaultInjector(device.NewFaultInjector(0.02, 0, seed))
		rng := rand.New(rand.NewSource(seed))
		wrong := 0
		for i := 0; i < trials; i++ {
			av, bv := uint64(rng.Intn(256)), uint64(rng.Intn(256))
			a := MustPackLanes([]uint64{av}, 8, 8)
			b := MustPackLanes([]uint64{bv}, 8, 8)
			var sum dbc.Row
			var err error
			if perStep {
				sum, err = u.AddMultiNMR(3, []dbc.Row{a, b}, 8)
			} else {
				sum, err = u.RunNMR(3, func() (dbc.Row, error) {
					return u.AddMulti([]dbc.Row{a, b}, 8)
				})
			}
			if err != nil {
				t.Fatal(err)
			}
			if UnpackLanes(sum, 8)[0] != (av+bv)&0xff {
				wrong++
			}
		}
		return wrong
	}
	end := run(false, 77)
	step := run(true, 77)
	if end == 0 {
		t.Skip("no end-voting failures at this fault rate")
	}
	if step >= end {
		t.Errorf("per-step voting (%d wrong) not better than end voting (%d wrong)", step, end)
	}
}

func TestAddMultiNMRRejectsBadN(t *testing.T) {
	u := unitFor(t, params.TRD5, 16)
	rows := []dbc.Row{dbc.NewRow(16), dbc.NewRow(16)}
	if _, err := u.AddMultiNMR(7, rows, 8); err == nil {
		t.Error("N=7 on TRD=5 accepted")
	}
	if _, err := u.AddMultiNMR(2, rows, 8); err == nil {
		t.Error("even N accepted")
	}
}
