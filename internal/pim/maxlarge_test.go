package pim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dbc"
	"repro/internal/params"
)

func TestMaxLargeExact(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for _, trd := range []params.TRD{params.TRD3, params.TRD5, params.TRD7} {
		for _, k := range []int{1, 2, 7, 9, 20} {
			u := unitFor(t, trd, 32)
			cands := make([]dbc.Row, k)
			vals := make([][]uint64, k)
			for i := range cands {
				vals[i] = make([]uint64, 4)
				for l := range vals[i] {
					vals[i][l] = uint64(rng.Intn(256))
				}
				cands[i] = MustPackLanes(vals[i], 8, 32)
			}
			got, err := u.MaxLarge(cands, 8)
			if err != nil {
				t.Fatalf("%v k=%d: %v", trd, k, err)
			}
			res := UnpackLanes(got, 8)
			for l := 0; l < 4; l++ {
				var want uint64
				for i := range vals {
					if vals[i][l] > want {
						want = vals[i][l]
					}
				}
				if res[l] != want {
					t.Fatalf("%v k=%d lane %d = %d, want %d", trd, k, l, res[l], want)
				}
			}
		}
	}
}

func TestMaxLargeProperty(t *testing.T) {
	u := unitFor(t, params.TRD7, 16)
	check := func(raw [11]uint8) bool {
		cands := make([]dbc.Row, len(raw))
		want := uint64(0)
		for i, v := range raw {
			cands[i] = MustPackLanes([]uint64{uint64(v), uint64(255 - v)}, 8, 16)
			if uint64(v) > want {
				want = uint64(v)
			}
		}
		got, err := u.MaxLarge(cands, 8)
		if err != nil {
			return false
		}
		res := UnpackLanes(got, 8)
		want2 := uint64(0)
		for _, v := range raw {
			if uint64(255-v) > want2 {
				want2 = uint64(255 - v)
			}
		}
		return res[0] == want && res[1] == want2
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestMaxLargeErrors(t *testing.T) {
	u := unitFor(t, params.TRD7, 16)
	if _, err := u.MaxLarge(nil, 8); err == nil {
		t.Error("no candidates accepted")
	}
}
