package pim

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/params"
)

// TestDivModDifferential checks the restoring divider bit-identically
// against Go integer division, across TRDs, lane widths and randomized
// operands, with divide-by-zero lanes mixed in (quotient all-ones,
// remainder = dividend — the RISC-V convention).
func TestDivModDifferential(t *testing.T) {
	for _, trd := range []params.TRD{params.TRD3, params.TRD5, params.TRD7} {
		for _, bs := range []int{8, 16, 32, 64} {
			width := 4 * bs
			u := unitFor(t, trd, width)
			rng := rand.New(rand.NewSource(int64(trd)*1000 + int64(bs)))
			lanes := width / bs
			mask := uint64(1)<<uint(bs) - 1
			if bs == 64 {
				mask = ^uint64(0)
			}
			for iter := 0; iter < 8; iter++ {
				a := make([]uint64, lanes)
				d := make([]uint64, lanes)
				for l := range a {
					a[l] = rng.Uint64() & mask
					switch rng.Intn(4) {
					case 0:
						d[l] = 0 // divide-by-zero lane
					case 1:
						d[l] = rng.Uint64() & mask >> (uint(rng.Intn(bs)) % 64) // small divisor
					default:
						d[l] = rng.Uint64() & mask
					}
				}
				q, r, err := u.DivModValues(a, d, bs)
				if err != nil {
					t.Fatal(err)
				}
				for l := range a {
					wantQ, wantR := mask, a[l]
					if d[l] != 0 {
						wantQ, wantR = a[l]/d[l], a[l]%d[l]
					}
					if q[l] != wantQ || r[l] != wantR {
						t.Fatalf("trd=%v bs=%d lane %d: %d /%% %d = (%d,%d), want (%d,%d)",
							trd, bs, l, a[l], d[l], q[l], r[l], wantQ, wantR)
					}
				}
			}
		}
	}
}

// TestDivModSignedDifferential checks truncated signed division against
// Go's native semantics, including MinInt/−1 overflow wrap and negative
// operands on both sides, plus divide-by-zero lanes.
func TestDivModSignedDifferential(t *testing.T) {
	for _, trd := range []params.TRD{params.TRD3, params.TRD7} {
		for _, bs := range []int{8, 16, 32} {
			width := 4 * bs
			u := unitFor(t, trd, width)
			rng := rand.New(rand.NewSource(int64(trd)*2000 + int64(bs)))
			lanes := width / bs
			minInt := int64(-1) << uint(bs-1)
			maxInt := -minInt - 1
			clamp := func(v int64) int64 { // wrap into the lane's range
				m := uint64(1)<<uint(bs) - 1
				uv := uint64(v) & m
				if uv>>(uint(bs)-1) != 0 {
					return int64(uv | ^m)
				}
				return int64(uv)
			}
			for iter := 0; iter < 8; iter++ {
				a := make([]int64, lanes)
				d := make([]int64, lanes)
				for l := range a {
					a[l] = clamp(rng.Int63n(maxInt+1) - rng.Int63n(maxInt+1))
					switch rng.Intn(5) {
					case 0:
						d[l] = 0
					case 1:
						a[l], d[l] = minInt, -1 // overflow wrap lane
					default:
						d[l] = clamp(rng.Int63n(maxInt+1) - rng.Int63n(maxInt+1))
					}
				}
				q, r, err := u.DivModSignedValues(a, d, bs)
				if err != nil {
					t.Fatal(err)
				}
				for l := range a {
					var wantQ, wantR int64
					switch {
					case d[l] == 0:
						wantQ, wantR = -1, a[l]
					case a[l] == minInt && d[l] == -1:
						wantQ, wantR = minInt, 0
					default:
						wantQ, wantR = a[l]/d[l], a[l]%d[l]
					}
					if q[l] != wantQ || r[l] != wantR {
						t.Fatalf("trd=%v bs=%d lane %d: %d /%% %d = (%d,%d), want (%d,%d)",
							trd, bs, l, a[l], d[l], q[l], r[l], wantQ, wantR)
					}
				}
			}
		}
	}
}

// TestDivModWideLanes exercises lanes wider than a word (the generic
// bit paths of the lane helpers).
func TestDivModWideLanes(t *testing.T) {
	u := unitFor(t, params.TRD7, 256)
	a := MustPackLanes([]uint64{1<<63 + 12345, 999}, 128, 256)
	d := MustPackLanes([]uint64{1 << 20, 7}, 128, 256)
	q, r, err := u.DivMod(a, d, 128)
	if err != nil {
		t.Fatal(err)
	}
	qs := UnpackLanes(q, 128)
	rs := UnpackLanes(r, 128)
	wantQ0 := (uint64(1)<<63 + 12345) / (1 << 20)
	wantR0 := (uint64(1)<<63 + 12345) % (1 << 20)
	if qs[0] != wantQ0 || rs[0] != wantR0 || qs[1] != 999/7 || rs[1] != 999%7 {
		t.Fatalf("wide-lane divide: got q=%v r=%v", qs[:2], rs[:2])
	}
}

// TestDivModErrors covers argument validation.
func TestDivModErrors(t *testing.T) {
	u := unitFor(t, params.TRD7, 64)
	a := MustPackLanes([]uint64{1}, 8, 64)
	if _, _, err := u.DivMod(a, a, 5); err == nil {
		t.Fatal("invalid blocksize accepted")
	}
	short := MustPackLanes([]uint64{1}, 8, 8)
	if _, _, err := u.DivMod(a, short, 8); err == nil {
		t.Fatal("mismatched width accepted")
	}
	if _, _, err := u.DivModValues([]uint64{1}, []uint64{1, 2}, 8); err == nil {
		t.Fatal("mismatched counts accepted")
	}
	if _, _, err := u.DivModSignedValues([]int64{1}, []int64{1}, 128); !errors.Is(err, ErrLaneOverflow) {
		t.Fatalf("128-bit signed wrapper: got %v, want ErrLaneOverflow", err)
	}
}

// TestDivModCharges pins the divider to the device cost model: every
// quotient bit costs one doubling shift, one predicated copy and one
// carry-chain subtraction, so shifts and TRs must scale with the lane
// width.
func TestDivModCharges(t *testing.T) {
	u := unitFor(t, params.TRD7, 64)
	a := MustPackLanes([]uint64{200}, 8, 64)
	d := MustPackLanes([]uint64{7}, 8, 64)
	u.ResetStats()
	if _, _, err := u.DivMod(a, d, 8); err != nil {
		t.Fatal(err)
	}
	st := u.Stats()
	if st.TRSteps < 8 || st.ShiftSteps < 8 || st.CopySteps < 8 {
		t.Fatalf("divider under-charged: %+v", st)
	}
}
