package pim

import (
	"math/rand"
	"testing"

	"repro/internal/dbc"
	"repro/internal/params"
)

// TestSoakRandomOpSequence drives one unit through a long random mix of
// operations, checking every result against integer arithmetic. It
// guards the cross-operation contract: no operation may leave the DBC in
// a state (alignment, stale window contents, padding) that corrupts a
// later one.
func TestSoakRandomOpSequence(t *testing.T) {
	for _, trd := range []params.TRD{params.TRD3, params.TRD5, params.TRD7} {
		rng := rand.New(rand.NewSource(int64(trd) * 1000))
		u := unitFor(t, trd, 64)
		const lanes = 8
		randVals := func() []uint64 {
			v := make([]uint64, lanes)
			for i := range v {
				v[i] = uint64(rng.Intn(256))
			}
			return v
		}
		pack := func(v []uint64) dbc.Row { return MustPackLanes(v, 8, 64) }

		for step := 0; step < 150; step++ {
			switch rng.Intn(5) {
			case 0: // multi-operand add
				k := 2 + rng.Intn(trd.MaxAddOperands()-1)
				vals := make([][]uint64, k)
				rows := make([]dbc.Row, k)
				for i := range rows {
					vals[i] = randVals()
					rows[i] = pack(vals[i])
				}
				sum, err := u.AddMulti(rows, 8)
				if err != nil {
					t.Fatalf("%v step %d add: %v", trd, step, err)
				}
				got := UnpackLanes(sum, 8)
				for l := 0; l < lanes; l++ {
					var want uint64
					for i := range vals {
						want += vals[i][l]
					}
					if got[l] != want&0xff {
						t.Fatalf("%v step %d add lane %d: %d != %d", trd, step, l, got[l], want&0xff)
					}
				}
			case 1: // bulk op
				ops := []dbc.Op{dbc.OpAND, dbc.OpOR, dbc.OpXOR, dbc.OpNAND, dbc.OpNOR, dbc.OpXNOR}
				op := ops[rng.Intn(len(ops))]
				k := 2 + rng.Intn(int(trd)-1)
				rows := make([]dbc.Row, k)
				for i := range rows {
					rows[i] = randBits(64, rng)
				}
				res, err := u.BulkBitwise(op, rows)
				if err != nil {
					t.Fatalf("%v step %d bulk %v: %v", trd, step, op, err)
				}
				for w := 0; w < res.Len(); w++ {
					if res.Get(w) != refBulk(op, rows, w) {
						t.Fatalf("%v step %d bulk %v wire %d wrong", trd, step, op, w)
					}
				}
			case 2: // multiply
				a := []uint64{uint64(rng.Intn(256)), uint64(rng.Intn(256))}
				b := []uint64{uint64(rng.Intn(256)), uint64(rng.Intn(256))}
				got, err := u.MultiplyValues(a, b, 8)
				if err != nil {
					t.Fatalf("%v step %d mult: %v", trd, step, err)
				}
				for l := range a {
					if got[l] != a[l]*b[l] {
						t.Fatalf("%v step %d mult lane %d: %d != %d", trd, step, l, got[l], a[l]*b[l])
					}
				}
			case 3: // max tournament
				k := 2 + rng.Intn(int(trd)-1)
				vals := make([][]uint64, k)
				rows := make([]dbc.Row, k)
				for i := range rows {
					vals[i] = randVals()
					rows[i] = pack(vals[i])
				}
				res, err := u.MaxTR(rows, 8)
				if err != nil {
					t.Fatalf("%v step %d max: %v", trd, step, err)
				}
				got := UnpackLanes(res, 8)
				for l := 0; l < lanes; l++ {
					var want uint64
					for i := range vals {
						if vals[i][l] > want {
							want = vals[i][l]
						}
					}
					if got[l] != want {
						t.Fatalf("%v step %d max lane %d: %d != %d", trd, step, l, got[l], want)
					}
				}
			case 4: // vote
				good := pack(randVals())
				bad := randBits(64, rng)
				res, err := u.Vote([]dbc.Row{good, bad, good})
				if err != nil {
					t.Fatalf("%v step %d vote: %v", trd, step, err)
				}
				if !res.Equal(good) {
					t.Fatalf("%v step %d vote wrong", trd, step)
				}
			}
		}
	}
}
