package pim

import (
	"fmt"

	"repro/internal/dbc"
	"repro/internal/params"
)

// MaxTRFullShift computes the same lane-wise maximum as MaxTR but
// rotates the candidates with whole-nanowire shifts instead of the
// transverse write's segmented shift: each candidate costs a read, a
// domain-wall shift, and a write (§IV-B: "each word is read from the
// right and re-written to the left access point, while shifting in
// between"). It exists as the ablation baseline for the paper's claim
// that TW reduces maximum-function cycles by 28.5%.
//
// Whole-nanowire shifting drifts the DBC alignment — the very problem
// §IV-B raises — so the rotation direction alternates per bit position
// to stay within the overhead-domain excursion.
func (u *Unit) MaxTRFullShift(candidates []dbc.Row, blocksize int) (dbc.Row, error) {
	k := len(candidates)
	if k < 2 {
		return dbc.Row{}, fmt.Errorf("pim: max needs at least 2 candidates, got %d", k)
	}
	if k > u.cfg.TRD.MaxBulkOperands() {
		return dbc.Row{}, fmt.Errorf("pim: max with %d candidates exceeds TRD %d: %w", k, int(u.cfg.TRD), params.ErrBadTRD)
	}
	if err := u.checkBlocksize(blocksize); err != nil {
		return dbc.Row{}, err
	}
	width := u.D.Width()
	for _, r := range candidates {
		if r.N != width {
			return dbc.Row{}, fmt.Errorf("pim: candidate width %d, want %d", r.N, width)
		}
	}
	if err := u.placeWindow(candidates, 0, false); err != nil {
		return dbc.Row{}, err
	}

	trd := int(u.cfg.TRD)
	lanes := width / blocksize
	rightward := true
	for j := blocksize - 1; j >= 0; j-- {
		wires := make([]int, lanes)
		for l := 0; l < lanes; l++ {
			wires[l] = l*blocksize + j
		}
		levels, err := u.D.TRWires(wires)
		if err != nil {
			return dbc.Row{}, err
		}
		for r := 0; r < trd; r++ {
			var row dbc.Row
			if rightward {
				row = u.D.ReadPort(dbcRight)
			} else {
				row = u.D.ReadPort(dbcLeft)
			}
			for l := 0; l < lanes; l++ {
				w := l*blocksize + j
				if levels[w] > 0 && row.Get(w) == 0 {
					zeroLane(row, l, blocksize)
				}
			}
			if rightward {
				if err := u.D.Shift(1); err != nil {
					return dbc.Row{}, err
				}
				u.D.WritePort(dbcLeft, row)
			} else {
				if err := u.D.Shift(-1); err != nil {
					return dbc.Row{}, err
				}
				u.D.WritePort(dbcRight, row)
			}
		}
		rightward = !rightward
	}

	return dbc.EvalPlanes(dbc.OpOR, u.trAll(), u.cfg.TRD), nil
}
