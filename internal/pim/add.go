package pim

import (
	"fmt"

	"repro/internal/dbc"
)

// AddMulti adds up to TRD−2 operand rows lane-wise (Fig. 6, §III-C).
// Each operand row is divided into independent lanes of blocksize bits
// (little-endian along the wire index); the result row holds the lane
// sums modulo 2^blocksize, with carries masked at lane boundaries by the
// memory controller (§III-E).
//
// The carry chain walks the lanes' bit positions serially: at step j a
// transverse read of wire j (in every lane, in parallel) senses the
// operand bits together with the incoming carry C (right port slot) and
// super-carry C' (left port slot); the level's binary decomposition gives
// S (kept at wire j's left port), C (sent to wire j+1's right port), and
// C' (sent to wire j+2's left port) in one simultaneous write step. The
// result remains stored in the DBC: the returned row equals the row under
// the left port.
//
// Cycle anchor (§V-B): 8-bit five-operand add = 10 placement + 16
// compute = 26 cycles for TRD=7; the TRD=3 two-operand layout saves the
// final placement shift: 3 + 16 = 19 cycles.
func (u *Unit) AddMulti(operands []dbc.Row, blocksize int) (dbc.Row, error) {
	k := len(operands)
	if k < 2 {
		return nil, fmt.Errorf("pim: add needs at least 2 operands, got %d", k)
	}
	if max := u.maxAddOperands(); k > max {
		return nil, fmt.Errorf("pim: add with %d operands exceeds limit %d for %v", k, max, u.cfg.TRD)
	}
	if err := u.checkBlocksize(blocksize); err != nil {
		return nil, err
	}
	width := u.D.Width()
	for _, r := range operands {
		if len(r) != width {
			return nil, fmt.Errorf("pim: operand width %d, want %d", len(r), width)
		}
	}
	hasCp := u.cfg.TRD.HasSuperCarry()
	// TRD≥5: operands at positions 1..k, position 0 is the S/C' slot and
	// the last position the C slot. TRD=3: operands at positions 0..k−1
	// (S overwrites an operand slot after its TR), C slot at the right.
	if err := u.placeWindow(operands, 0, hasCp); err != nil {
		return nil, err
	}
	return u.addPlaced(blocksize, hasCp)
}

// addPlaced runs the per-bit carry chain over operands already placed in
// the window and returns the sum row.
func (u *Unit) addPlaced(blocksize int, hasCp bool) (dbc.Row, error) {
	width := u.D.Width()
	b := blocksize
	sum := make(dbc.Row, width)
	wires := make([]int, 0, width/b)
	for j := 0; j < b; j++ {
		wires = wires[:0]
		for t := j; t < width; t += b {
			wires = append(wires, t)
		}
		levels := u.D.TRWires(wires)
		writes := make([]dbc.PortBit, 0, 3*len(wires))
		for _, t := range wires {
			o := dbc.Sense(levels[t], u.cfg.TRD)
			sum[t] = o.S
			writes = append(writes, dbc.PortBit{Wire: t, Side: dbcLeft, Bit: o.S})
			if j+1 < b {
				writes = append(writes, dbc.PortBit{Wire: t + 1, Side: dbcRight, Bit: o.C})
			}
			if hasCp && j+2 < b {
				writes = append(writes, dbc.PortBit{Wire: t + 2, Side: dbcLeft, Bit: o.Cp})
			}
		}
		u.D.WriteScatter(writes)
	}
	return sum, nil
}

// Add2 is a convenience wrapper adding two rows lane-wise.
func (u *Unit) Add2(a, b dbc.Row, blocksize int) (dbc.Row, error) {
	return u.AddMulti([]dbc.Row{a, b}, blocksize)
}
