package pim

import (
	"fmt"

	"repro/internal/dbc"
	"repro/internal/params"
)

// AddMulti adds up to TRD−2 operand rows lane-wise (Fig. 6, §III-C).
// Each operand row is divided into independent lanes of blocksize bits
// (little-endian along the wire index); the result row holds the lane
// sums modulo 2^blocksize, with carries masked at lane boundaries by the
// memory controller (§III-E).
//
// The carry chain walks the lanes' bit positions serially: at step j a
// transverse read of wire j (in every lane, in parallel) senses the
// operand bits together with the incoming carry C (right port slot) and
// super-carry C' (left port slot); the level's binary decomposition gives
// S (kept at wire j's left port), C (sent to wire j+1's right port), and
// C' (sent to wire j+2's left port) in one simultaneous write step. The
// result remains stored in the DBC: the returned row equals the row under
// the left port.
//
// Cycle anchor (§V-B): 8-bit five-operand add = 10 placement + 16
// compute = 26 cycles for TRD=7; the TRD=3 two-operand layout saves the
// final placement shift: 3 + 16 = 19 cycles.
func (u *Unit) AddMulti(operands []dbc.Row, blocksize int) (dbc.Row, error) {
	defer u.Span("add")()
	k := len(operands)
	if k < 2 {
		return dbc.Row{}, fmt.Errorf("pim: add needs at least 2 operands, got %d", k)
	}
	if max := u.maxAddOperands(); k > max {
		return dbc.Row{}, fmt.Errorf("pim: add with %d operands exceeds limit %d for %v: %w", k, max, u.cfg.TRD, params.ErrBadTRD)
	}
	if err := u.checkBlocksize(blocksize); err != nil {
		return dbc.Row{}, err
	}
	width := u.D.Width()
	for _, r := range operands {
		if r.N != width {
			return dbc.Row{}, fmt.Errorf("pim: operand width %d, want %d", r.N, width)
		}
	}
	u.enterOp()
	defer u.exitOp()
	hasCp := u.cfg.TRD.HasSuperCarry()
	// TRD≥5: operands at positions 1..k, position 0 is the S/C' slot and
	// the last position the C slot. TRD=3: operands at positions 0..k−1
	// (S overwrites an operand slot after its TR), C slot at the right.
	if err := u.placeWindow(operands, 0, hasCp); err != nil {
		return dbc.Row{}, err
	}
	return u.addPlaced(blocksize, hasCp)
}

// addPlaced runs the per-bit carry chain over operands already placed in
// the window and returns the sum row. The chain is word-parallel: at bit
// position j every lane's wire j is selected by a periodic phase mask,
// one masked transverse read senses all of them at once, and the level
// planes are the scatter planes directly — C0 is S (kept at the left
// port), C1 shifted up one wire is C (sent to the right port), C2
// shifted up two wires is C' (left port). 64 lanes per word operation;
// the trace records the same per-wire event counts as the historical
// scalar scatter.
func (u *Unit) addPlaced(blocksize int, hasCp bool) (dbc.Row, error) {
	sum := dbc.NewRow(u.D.Width())
	if err := u.addPlacedInto(sum, blocksize, hasCp); err != nil {
		return dbc.Row{}, err
	}
	return sum, nil
}

// addPlacedInto is addPlaced accumulating into a caller-owned row of the
// DBC width (cleared first), so iterative users of the chain — the
// restoring divider runs it once per quotient bit — stay on the scratch
// arena instead of allocating a fresh sum row per step.
func (u *Unit) addPlacedInto(sum dbc.Row, blocksize int, hasCp bool) error {
	width := u.D.Width()
	b := blocksize
	for i := range sum.Words {
		sum.Words[i] = 0
	}
	words := len(sum.Words)
	scratch := scratchWords(&u.scratch.addWords, 5*words)
	mask := scratch[:words]
	cBits := scratch[words : 2*words]
	cMask := scratch[2*words : 3*words]
	left := scratch[3*words : 4*words]
	leftMask := scratch[4*words:]
	for j := 0; j < b; j++ {
		nw := 0
		for i := range mask {
			mask[i] = 0
		}
		for t := j; t < width; t += b {
			mask[t>>6] |= 1 << uint(t&63)
			nw++
		}
		u.D.TRMaskedInto(&u.lp, mask, nw)
		lp := u.lp
		count := nw
		// S stays at the selected wires' left ports and is the result bit.
		copy(left, lp.C0)
		copy(leftMask, mask)
		for i := range sum.Words {
			sum.Words[i] |= lp.C0[i]
		}
		// C feeds the next bit position: right port of wire t+1.
		var rBits, rMask []uint64
		if j+1 < b {
			shiftWordsUp(cBits, lp.C1, 1)
			shiftWordsUp(cMask, mask, 1)
			rBits, rMask = cBits, cMask
			count += nw
		}
		// C' skips a position: left port of wire t+2 (disjoint from the S
		// wires whenever it is generated, since j+2 < b implies b > 2).
		if hasCp && j+2 < b {
			for i, w := range lp.C2 {
				var lo uint64
				if i > 0 {
					lo = lp.C2[i-1] >> 62
				}
				left[i] |= w<<2 | lo
				var lm uint64
				if i > 0 {
					lm = mask[i-1] >> 62
				}
				leftMask[i] |= mask[i]<<2 | lm
			}
			count += nw
		}
		u.D.WriteScatterPlanes(left, leftMask, rBits, rMask, count)
	}
	sum.MaskTail()
	return nil
}

// shiftWordsUp sets dst to src shifted k bit positions toward higher
// wire indices, carrying across word boundaries (k < 64).
func shiftWordsUp(dst, src []uint64, k uint) {
	var carry uint64
	for i, w := range src {
		dst[i] = w<<k | carry
		carry = w >> (64 - k)
	}
}

// Add2 is a convenience wrapper adding two rows lane-wise.
func (u *Unit) Add2(a, b dbc.Row, blocksize int) (dbc.Row, error) {
	return u.AddMulti([]dbc.Row{a, b}, blocksize)
}
