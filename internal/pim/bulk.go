package pim

import (
	"fmt"

	"repro/internal/dbc"
	"repro/internal/params"
)

// BulkBitwise computes a k-operand bulk-bitwise operation in a single
// transverse read (§III-B, Fig. 5). Up to TRD operand rows are combined;
// unused window slots carry the Fig. 7 padding constant so smaller
// cardinalities remain correct. The result is written back through the
// left port (one write step), as the paper stores it over an operand or
// in a separate DBC, and is also returned.
//
// The whole operation is word-parallel: the transverse read yields
// bit-sliced level planes and the polymorphic gate is evaluated 64 wires
// per word operation (dbc.EvalPlanes).
func (u *Unit) BulkBitwise(op dbc.Op, operands []dbc.Row) (dbc.Row, error) {
	// The span name is only materialized when telemetry is attached:
	// the string concat would otherwise allocate on the disabled path.
	if u.rec != nil {
		defer u.rec.Span(u.src, "bulk-"+op.String())()
	}
	k := len(operands)
	if k == 0 {
		return dbc.Row{}, fmt.Errorf("pim: bulk %v with no operands", op)
	}
	if k > u.cfg.TRD.MaxBulkOperands() {
		return dbc.Row{}, fmt.Errorf("pim: bulk %v with %d operands exceeds TRD %d: %w", op, k, int(u.cfg.TRD), params.ErrBadTRD)
	}
	if op == dbc.OpNOT && k != 1 {
		return dbc.Row{}, fmt.Errorf("pim: NOT takes exactly one operand, got %d", k)
	}
	for _, r := range operands {
		if r.N != u.D.Width() {
			return dbc.Row{}, fmt.Errorf("pim: operand width %d, want %d", r.N, u.D.Width())
		}
	}
	if err := u.placeWindow(operands, op.PadBit(), true); err != nil {
		return dbc.Row{}, err
	}
	out := dbc.EvalPlanes(op, u.trAll(), u.cfg.TRD)
	u.D.WritePort(dbcLeft, out)
	return out, nil
}
