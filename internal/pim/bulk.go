package pim

import (
	"fmt"

	"repro/internal/dbc"
)

// BulkBitwise computes a k-operand bulk-bitwise operation in a single
// transverse read (§III-B, Fig. 5). Up to TRD operand rows are combined;
// unused window slots carry the Fig. 7 padding constant so smaller
// cardinalities remain correct. The result is written back through the
// left port (one write step), as the paper stores it over an operand or
// in a separate DBC, and is also returned.
func (u *Unit) BulkBitwise(op dbc.Op, operands []dbc.Row) (dbc.Row, error) {
	k := len(operands)
	if k == 0 {
		return nil, fmt.Errorf("pim: bulk %v with no operands", op)
	}
	if k > u.cfg.TRD.MaxBulkOperands() {
		return nil, fmt.Errorf("pim: bulk %v with %d operands exceeds TRD %d", op, k, int(u.cfg.TRD))
	}
	if op == dbc.OpNOT && k != 1 {
		return nil, fmt.Errorf("pim: NOT takes exactly one operand, got %d", k)
	}
	for _, r := range operands {
		if len(r) != u.D.Width() {
			return nil, fmt.Errorf("pim: operand width %d, want %d", len(r), u.D.Width())
		}
	}
	if err := u.placeWindow(operands, op.PadBit(), true); err != nil {
		return nil, err
	}
	levels := u.D.TRAll()
	out := make(dbc.Row, u.D.Width())
	for w, l := range levels {
		out[w] = dbc.Eval(op, l, u.cfg.TRD)
	}
	u.D.WritePort(dbcLeft, out)
	return out, nil
}
