package pim

import (
	"fmt"

	"repro/internal/dbc"
	"repro/internal/params"
	"repro/internal/telemetry"
)

// MaxTR computes the lane-wise maximum of up to TRD candidate rows using
// the transverse-read tournament of §IV-B (Fig. 8): bit positions are
// examined MSB to LSB; at each position a TR across the candidates'
// bits decides, per lane, whether candidates with a '0' there are
// eliminated (overwritten with the zero vector). Each candidate is read
// from the right port and returned to its place through a transverse
// write from the left port — the segmented shift that motivates TW.
//
// Lanes are blocksize bits wide, values unsigned. Candidates that tie for
// the maximum all survive; the final result is extracted with a last TR
// whose OR output reads the surviving value regardless of its position.
func (u *Unit) MaxTR(candidates []dbc.Row, blocksize int) (dbc.Row, error) {
	defer u.Span("max")()
	k := len(candidates)
	if k < 2 {
		return dbc.Row{}, fmt.Errorf("pim: max needs at least 2 candidates, got %d", k)
	}
	if k > u.cfg.TRD.MaxBulkOperands() {
		return dbc.Row{}, fmt.Errorf("pim: max with %d candidates exceeds TRD %d: %w", k, int(u.cfg.TRD), params.ErrBadTRD)
	}
	if err := u.checkBlocksize(blocksize); err != nil {
		return dbc.Row{}, err
	}
	width := u.D.Width()
	for _, r := range candidates {
		if r.N != width {
			return dbc.Row{}, fmt.Errorf("pim: candidate width %d, want %d", r.N, width)
		}
	}
	u.enterOp()
	defer u.exitOp()
	if err := u.placeWindow(candidates, 0, false); err != nil {
		return dbc.Row{}, err
	}

	lanes := width / blocksize
	wires := scratchInts(&u.scratch.wires, lanes)
	levels := scratchInts(&u.scratch.levels, width)
	row := u.scratchRow() // tournament rotation buffer, reused per TW
	for j := blocksize - 1; j >= 0; j-- {
		// TR across the candidates' bit j, one wire per lane.
		for l := 0; l < lanes; l++ {
			wires[l] = l*blocksize + j
		}
		if err := u.D.TRWiresInto(levels, wires); err != nil {
			return dbc.Row{}, err
		}
		// Rotate all TRD window rows once around: read at the right
		// port, predicated row-buffer reset, transverse write at the
		// left port. Rows holding padding rotate like candidates so the
		// controller sequence is identical across subarrays (§IV-B).
		for r := 0; r < int(u.cfg.TRD); r++ {
			u.D.ReadPortInto(dbcRight, row)
			for l := 0; l < lanes; l++ {
				w := l*blocksize + j
				if levels[w] > 0 && row.Get(w) == 0 {
					// Some candidate has a '1' here and this one does
					// not: the predicated reset zeroes the lane.
					zeroLane(row, l, blocksize)
				}
			}
			u.D.TW(row)
		}
	}

	// Extraction: a final TR per wire; the OR output reads the max
	// (losers are zero vectors; ties overlap harmlessly).
	return dbc.EvalPlanes(dbc.OpOR, u.trAll(), u.cfg.TRD), nil
}

// ReLU applies the rectifier of §IV-C lane-wise to two's-complement
// values: lanes whose sign bit (lane MSB) is set are replaced by zero
// using a predicated row refresh; other lanes pass through. One read of
// the MSB wires plus one predicated write.
func (u *Unit) ReLU(row dbc.Row, blocksize int) (dbc.Row, error) {
	defer u.Span("relu")()
	if err := u.checkBlocksize(blocksize); err != nil {
		return dbc.Row{}, err
	}
	width := u.D.Width()
	if row.N != width {
		return dbc.Row{}, fmt.Errorf("pim: row width %d, want %d", row.N, width)
	}
	lanes := width / blocksize
	u.tr.Read(lanes) // sign-bit wires into the row buffer
	u.rec.Step(u.src, telemetry.OpRead, lanes)
	u.tr.Write(width) // predicated refresh
	u.rec.Step(u.src, telemetry.OpWrite, width)
	out := row.Clone()
	for l := 0; l < lanes; l++ {
		if out.Get(l*blocksize+blocksize-1) == 1 {
			zeroLane(out, l, blocksize)
		}
	}
	return out, nil
}
