package pim

import (
	"testing"

	"repro/internal/dbc"
	"repro/internal/params"
)

// tailJunk returns the bits of r's last word beyond its width.
func tailJunk(r dbc.Row) uint64 {
	if len(r.Words) == 0 {
		return 0
	}
	return r.Words[len(r.Words)-1] & ^dbc.TailMask(r.N)
}

// TestPackLanesMasksTail pins the tail invariant on the packing path
// for a width that does not fill the last word.
func TestPackLanesMasksTail(t *testing.T) {
	vals := make([]uint64, 9)
	for i := range vals {
		vals[i] = 0xFF
	}
	row, err := PackLanes(vals, 8, 72)
	if err != nil {
		t.Fatal(err)
	}
	if got := tailJunk(row); got != 0 {
		t.Fatalf("PackLanes: tail bits %#x beyond N=72 are set", got)
	}
}

// TestAddMultiMasksTail is the regression test for the missing
// sum.MaskTail in addPlaced: on a 96-wire track the OR-accumulation of
// the S plane must not leave bits beyond N in the result row.
func TestAddMultiMasksTail(t *testing.T) {
	u := unitFor(t, params.TRD3, 96)
	lanes := 96 / 8
	a := make([]uint64, lanes)
	b := make([]uint64, lanes)
	for l := 0; l < lanes; l++ {
		a[l] = 0xAB
		b[l] = 0xCD
	}
	sum, err := u.AddMulti([]dbc.Row{
		MustPackLanes(a, 8, 96),
		MustPackLanes(b, 8, 96),
	}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := tailJunk(sum); got != 0 {
		t.Fatalf("AddMulti: tail bits %#x beyond N=96 are set", got)
	}
	got := UnpackLanes(sum, 8)
	for l := 0; l < lanes; l++ {
		if want := uint64((0xAB + 0xCD) & 0xFF); got[l] != want {
			t.Fatalf("lane %d = %#x, want %#x", l, got[l], want)
		}
	}
}
