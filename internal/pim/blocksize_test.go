package pim

import (
	"math/rand"
	"testing"

	"repro/internal/dbc"
	"repro/internal/params"
)

// TestAddMultiFullRowBlocksize exercises the widest cpim blocksize: one
// 512-bit lane spanning the whole row (§III-E: "up to a full 512-bit
// addition"). Values are compared on their low 64 bits with operands
// chosen so no carry crosses bit 63.
func TestAddMultiFullRowBlocksize(t *testing.T) {
	cfg := params.DefaultConfig() // full 512-wire row
	u := MustNewUnit(cfg)
	vals := []uint64{1 << 40, 1 << 41, 1 << 42, 3, 9}
	rows := make([]dbc.Row, len(vals))
	for i, v := range vals {
		row := dbc.NewRow(512)
		row.Words[0] = v
		rows[i] = row
	}
	sum, err := u.AddMulti(rows, 512)
	if err != nil {
		t.Fatal(err)
	}
	got := sum.Words[0]
	var want uint64
	for _, v := range vals {
		want += v
	}
	if got != want {
		t.Errorf("512-bit add low word = %d, want %d", got, want)
	}
	for j := 64; j < 512; j++ {
		if sum.Get(j) != 0 {
			t.Fatalf("unexpected high bit %d set", j)
		}
	}
}

// TestAddMultiCarryAcross64 checks that carries propagate across the
// 64-bit boundary of a wide lane — the chain is genuinely bit-serial
// along the wires, not word-sized.
func TestAddMultiCarryAcross64(t *testing.T) {
	u := MustNewUnit(params.DefaultConfig())
	a := dbc.NewRow(512)
	b := dbc.NewRow(512)
	a.Words[0] = ^uint64(0) // a = 2^64 − 1 in a 128-bit lane
	b.Set(0, 1)             // b = 1
	sum, err := u.AddMulti([]dbc.Row{a, b}, 128)
	if err != nil {
		t.Fatal(err)
	}
	// a + b = 2^64: only bit 64 of lane 0 set.
	for j := 0; j < 128; j++ {
		want := uint8(0)
		if j == 64 {
			want = 1
		}
		if sum.Get(j) != want {
			t.Fatalf("bit %d = %d, want %d", j, sum.Get(j), want)
		}
	}
}

// TestMultiplyWideLanes runs 32-bit multiplication in 64-bit product
// lanes across the whole row.
func TestMultiplyWideLanes(t *testing.T) {
	u := MustNewUnit(params.DefaultConfig())
	rng := rand.New(rand.NewSource(110))
	a := make([]uint64, 8)
	b := make([]uint64, 8)
	for i := range a {
		a[i] = uint64(rng.Uint32())
		b[i] = uint64(rng.Uint32())
	}
	got, err := u.MultiplyValues(a, b, 32)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if got[i] != a[i]*b[i] {
			t.Errorf("lane %d: %d × %d = %d, want %d", i, a[i], b[i], got[i], a[i]*b[i])
		}
	}
}

// TestConsecutiveOpsRecenter verifies that back-to-back operations on
// one unit stay correct: each op recenters with traced shifts, so
// results never depend on the previous op's alignment.
func TestConsecutiveOpsRecenter(t *testing.T) {
	u := MustNewUnit(params.DefaultConfig())
	rng := rand.New(rand.NewSource(111))
	for trial := 0; trial < 10; trial++ {
		av := uint64(rng.Intn(256))
		bv := uint64(rng.Intn(256))
		a := MustPackLanes([]uint64{av}, 8, 512)
		b := MustPackLanes([]uint64{bv}, 8, 512)
		sum, err := u.AddMulti([]dbc.Row{a, b}, 8)
		if err != nil {
			t.Fatal(err)
		}
		if got := UnpackLanes(sum, 8)[0]; got != (av+bv)&0xff {
			t.Fatalf("trial %d: add drifted after prior ops: %d", trial, got)
		}
		prods, err := u.MultiplyValues([]uint64{av}, []uint64{bv}, 8)
		if err != nil {
			t.Fatal(err)
		}
		if prods[0] != av*bv {
			t.Fatalf("trial %d: mult drifted: %d", trial, prods[0])
		}
	}
}
