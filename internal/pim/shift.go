package pim

import (
	"fmt"

	"repro/internal/dbc"
	"repro/internal/telemetry"
)

// ErrShiftAmount reports a variable-shift amount outside 0..blocksize.
// Test with errors.Is.
var ErrShiftAmount = fmt.Errorf("pim: shift amount outside 0..blocksize")

// LogicalShift shifts every blocksize-bit lane of a by amount bits —
// toward the lane MSB when left is true — filling with zeros, and
// returns the result row. amount ranges 0..blocksize inclusive; a
// full-width shift clears every lane.
//
// The cost model follows XDWM's observation that a racetrack shifts
// data natively along the nanowire: the row is sensed once under the
// access port, the track performs `amount` lateral shift steps, and the
// shifted row is written back. Shifting is therefore priced as
// racetrack shift steps — not as data moves or per-bit gate
// evaluations — so a k-bit shift costs k + 2 control steps regardless
// of lane count.
func (u *Unit) LogicalShift(a dbc.Row, amount, blocksize int, left bool) (dbc.Row, error) {
	defer u.Span("shift")()
	if err := u.checkBlocksize(blocksize); err != nil {
		return dbc.Row{}, err
	}
	width := u.D.Width()
	if a.N != width {
		return dbc.Row{}, fmt.Errorf("pim: operand width %d, want %d", a.N, width)
	}
	if amount < 0 || amount > blocksize {
		return dbc.Row{}, fmt.Errorf("pim: amount %d with blocksize %d: %w", amount, blocksize, ErrShiftAmount)
	}
	out := dbc.NewRow(width)
	if left {
		laneShiftLeftKInto(out, a, blocksize, amount)
	} else {
		laneShiftRightKInto(out, a, blocksize, amount)
	}
	u.chargeStep(telemetry.OpRead, width)
	for s := 0; s < amount; s++ {
		u.chargeStep(telemetry.OpShift, width)
	}
	u.chargeStep(telemetry.OpWrite, width)
	return out, nil
}

// LogicalShiftValues is the lane-value convenience wrapper for
// LogicalShift.
func (u *Unit) LogicalShiftValues(vals []uint64, amount, blocksize int, left bool) ([]uint64, error) {
	r, err := PackLanes(vals, blocksize, u.D.Width())
	if err != nil {
		return nil, err
	}
	out, err := u.LogicalShift(r, amount, blocksize, left)
	if err != nil {
		return nil, err
	}
	return UnpackLanes(out, blocksize)[:len(vals)], nil
}
