package pim

import "repro/internal/dbc"

// arena is the unit's per-operation scratch allocator: a bump pool of
// width-sized rows plus a few dedicated flat buffers, so the Multiply /
// MaxTR / AddMulti hot loops reach zero steady-state allocations (the
// ISSUE-4 alloc hotspots). The pool resets when a *top-level* operation
// begins — a depth counter makes nested operations (Multiply's final
// AddMulti) share the enclosing op's pool instead of clobbering it.
//
// Scratch rows obey the same aliasing rule as the unit's level-plane
// scratch u.lp: they are valid only until the enclosing top-level
// operation returns and must never be handed to callers. Results that
// escape a public operation are always freshly allocated or cloned (the
// dbc.Row ownership contract); the scratchescape analyzer enforces this
// statically.
type arena struct {
	depth int

	rows []dbc.Row // pooled width-sized rows; rows[:used] are handed out
	used int

	addWords []uint64  // addPlaced: phase mask + scatter planes (5 × words)
	redWords []uint64  // reduceRowsScratch: carry-save counters (3 × words)
	wires    []int     // MaxTR: per-lane TR wire selection
	levels   []int     // MaxTR: TRWiresInto destination (width entries)
	rowList  []dbc.Row // Multiply: partial-product / reduction row list
}

// enterOp opens an operation scope: the outermost scope reclaims every
// pooled buffer. Pair with `defer u.exitOp()`.
func (u *Unit) enterOp() {
	if u.scratch.depth == 0 {
		u.scratch.used = 0
	}
	u.scratch.depth++
}

func (u *Unit) exitOp() { u.scratch.depth-- }

// scratchRow returns a zeroed scratch row of the DBC width, valid until
// the enclosing top-level operation returns. Never return one to a
// caller — Clone what escapes.
func (u *Unit) scratchRow() dbc.Row {
	a := &u.scratch
	if a.used == len(a.rows) {
		a.rows = append(a.rows, dbc.NewRow(u.D.Width()))
	}
	r := a.rows[a.used]
	a.used++
	for i := range r.Words {
		r.Words[i] = 0
	}
	return r
}

// scratchWords returns buf resized to n zeroed words, growing it in
// place so the steady state is allocation-free.
func scratchWords(buf *[]uint64, n int) []uint64 {
	if cap(*buf) < n {
		*buf = make([]uint64, n)
	}
	s := (*buf)[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// scratchInts is scratchWords for int buffers.
func scratchInts(buf *[]int, n int) []int {
	if cap(*buf) < n {
		*buf = make([]int, n)
	}
	return (*buf)[:n]
}

// scratchRowList returns an empty row list with capacity ≥ n backed by
// the arena, for the Multiply partial-product chain.
func (u *Unit) scratchRowList(n int) []dbc.Row {
	a := &u.scratch
	if cap(a.rowList) < n {
		a.rowList = make([]dbc.Row, 0, n)
	}
	return a.rowList[:0]
}
