package reliability

import (
	"fmt"
	"math/rand"

	"repro/internal/dbc"
	"repro/internal/isa"
	"repro/internal/memory"
	"repro/internal/params"
	"repro/internal/pim"
	"repro/internal/resilient"
	"repro/internal/trace"
)

// Campaign is a Monte Carlo fault-injection sweep through the full
// recovered execution path: the same randomized cpim workload runs
// twice on fault-injected memories — once unprotected and once under a
// recovery policy — and the delivered (end-to-end wrong-result) error
// rates are compared. Where MonteCarlo measures a bare unit, a campaign
// exercises the whole stack the policy protects: memory staging, batch
// grouping, the verify/retry/degrade loop, and quarantine remapping.
type Campaign struct {
	// Base is the memory configuration; the zero value means
	// params.DefaultConfig.
	Base params.Config
	// TRProb and ShiftProb parameterize the §V-F fault model, injected
	// per DBC (memory.FaultProfile) so batches keep their parallelism.
	TRProb    float64
	ShiftProb float64
	// Policy is the recovery protocol of the protected run.
	Policy resilient.Policy
	// Ops is the number of cpim additions per run.
	Ops int
	// Seed fixes the workload and both fault streams.
	Seed int64
	// Workers is the ExecuteBatch pool size (0 = GOMAXPROCS).
	Workers int
	// Banks bounds how many banks the workload spreads over; 0 uses up
	// to 8 (capped by the geometry). More banks = more parallel groups.
	Banks int
}

// CampaignReport is the outcome of one campaign.
type CampaignReport struct {
	Ops         int
	Policy      string
	TRProb      float64
	RawErrors   int // wrong results delivered by the unprotected run
	RecovErrors int // wrong results delivered by the recovered run
	Detected    int // faults the recovery layer detected
	Quarantined int // quarantine decisions taken
	SparesUsed  int // quarantines that remapped to a spare
	RawStats    trace.Stats
	RecovStats  trace.Stats
}

// RawRate returns the unprotected delivered error rate.
func (r CampaignReport) RawRate() float64 { return float64(r.RawErrors) / float64(r.Ops) }

// RecovRate returns the recovered delivered error rate.
func (r CampaignReport) RecovRate() float64 { return float64(r.RecovErrors) / float64(r.Ops) }

// Improvement returns the achieved error-rate reduction factor. A
// recovered run with zero delivered errors yields a lower bound: the
// factor assuming one error would have occurred on the next op.
func (r CampaignReport) Improvement() float64 {
	if r.RawErrors == 0 {
		return 1
	}
	errs := r.RecovErrors
	if errs == 0 {
		errs = 1 // resolution floor of the sample size
	}
	return float64(r.RawErrors) / float64(errs)
}

// Overhead returns the cycle multiplier the recovery policy cost
// (recovered cycles / raw cycles, retries and stalls included).
func (r CampaignReport) Overhead() float64 {
	raw := r.RawStats.Cycles()
	if raw == 0 {
		return 1
	}
	return float64(r.RecovStats.Cycles()) / float64(raw)
}

func (r CampaignReport) String() string {
	return fmt.Sprintf(
		"campaign: ops=%d policy=%s p=%g raw=%d (%.2e) recovered=%d (%.2e) improvement=%.0fx detected=%d quarantined=%d spares=%d overhead=%.2fx",
		r.Ops, r.Policy, r.TRProb, r.RawErrors, r.RawRate(), r.RecovErrors, r.RecovRate(),
		r.Improvement(), r.Detected, r.Quarantined, r.SparesUsed, r.Overhead())
}

// campaignOp is one randomized addition: three operand rows, the
// request executing them, and the precomputed expected lane sums.
type campaignOp struct {
	req         memory.Request
	operandRows []dbc.Row
	want        []uint64
}

// Run executes the campaign: one unprotected and one recovered pass
// over the identical workload, both driven through ExecuteBatch at full
// bank parallelism.
func (c Campaign) Run() (CampaignReport, error) {
	cfg := c.Base
	if cfg == (params.Config{}) {
		cfg = params.DefaultConfig()
	}
	if err := cfg.Validate(); err != nil {
		return CampaignReport{}, err
	}
	if c.Ops <= 0 {
		return CampaignReport{}, fmt.Errorf("reliability: campaign needs Ops > 0, got %d", c.Ops)
	}
	if err := c.Policy.Validate(); err != nil {
		return CampaignReport{}, err
	}
	rep := CampaignReport{Ops: c.Ops, Policy: c.Policy.String(), TRProb: c.TRProb}

	ops, err := c.workload(cfg)
	if err != nil {
		return CampaignReport{}, err
	}

	rawErrs, rawStats, _, err := c.runPass(cfg, ops, resilient.Policy{})
	if err != nil {
		return CampaignReport{}, fmt.Errorf("reliability: raw pass: %w", err)
	}
	rep.RawErrors, rep.RawStats = rawErrs, rawStats

	recovErrs, recovStats, health, err := c.runPass(cfg, ops, c.Policy)
	if err != nil {
		return CampaignReport{}, fmt.Errorf("reliability: recovered pass: %w", err)
	}
	rep.RecovErrors, rep.RecovStats = recovErrs, recovStats
	rep.Detected = health.TotalDetected
	rep.Quarantined = len(health.Quarantined)
	rep.SparesUsed = health.SparesUsed()
	return rep, nil
}

// campaign workload shape: 3-operand lane-wise adds, values bounded so
// lane sums never carry across the blocksize boundary.
const (
	campaignOperands  = 3
	campaignBlocksize = 8
)

// workload builds the randomized op list once; both passes replay it.
func (c Campaign) workload(cfg params.Config) ([]campaignOp, error) {
	g := cfg.Geometry
	banks := c.Banks
	if banks <= 0 {
		banks = 8
	}
	if banks > g.Banks {
		banks = g.Banks
	}
	lanes := g.TrackWidth / campaignBlocksize
	maxVal := int64(1<<campaignBlocksize) / campaignOperands // sums stay in-lane
	rng := rand.New(rand.NewSource(c.Seed))
	pimDBC := g.DBCsPerTile - g.PIMDBCsPerTile

	ops := make([]campaignOp, c.Ops)
	for i := range ops {
		bank := i % banks
		exec := isa.Addr{Bank: bank, Tile: 0, DBC: pimDBC}
		// Operands and destination live in a plain DBC of the same bank.
		data := isa.Addr{Bank: bank, Subarray: 1 % g.SubarraysPerBank, Tile: 1 % g.TilesPerSubarray}
		want := make([]uint64, lanes)
		operands := make([]isa.Addr, campaignOperands)
		for o := range operands {
			vals := make([]uint64, lanes)
			for l := range vals {
				vals[l] = uint64(rng.Int63n(maxVal))
				want[l] += vals[l]
			}
			row, err := pim.PackLanes(vals, campaignBlocksize, g.TrackWidth)
			if err != nil {
				return nil, err
			}
			operands[o] = data
			operands[o].Row = o
			ops[i].operandRows = append(ops[i].operandRows, row)
		}
		dst := data
		dst.Row = campaignOperands
		ops[i].req = memory.Request{
			In: isa.Instruction{
				Op: isa.OpAdd, Src: exec,
				Operands: campaignOperands, Blocksize: campaignBlocksize,
			},
			Operands: operands,
			Dst:      dst,
		}
		ops[i].want = want
	}
	return ops, nil
}

// runPass executes the workload on a fresh memory under the given
// policy (zero = unprotected) and counts delivered wrong results.
//
// Ops on one bank reuse the same operand addresses, so the pass runs in
// rounds: each round stages and executes one op per bank — distinct
// banks, disjoint footprints, full ExecuteBatch parallelism — and
// staging happens between rounds. Port reads and writes never consume
// the fault injector (faults live in shifts and TR senses), so with
// ShiftProb = 0 staging is exact and every delivered error is an
// execution-path error the recovery policy had a chance to catch.
func (c Campaign) runPass(cfg params.Config, ops []campaignOp, pol resilient.Policy) (int, trace.Stats, memory.HealthReport, error) {
	fail := func(err error) (int, trace.Stats, memory.HealthReport, error) {
		return 0, trace.Stats{}, memory.HealthReport{}, err
	}
	m, err := memory.New(cfg)
	if err != nil {
		return fail(err)
	}
	m.SetWorkers(c.Workers)
	if pol.Enabled() {
		if err := m.SetRecovery(pol); err != nil {
			return fail(err)
		}
	}
	m.SetFaultProfile(memory.FaultProfile{TRProb: c.TRProb, ShiftProb: c.ShiftProb, Seed: c.Seed + 1})

	banks := 0
	for _, op := range ops {
		if op.req.In.Src.Bank >= banks {
			banks = op.req.In.Src.Bank + 1
		}
	}
	errs := 0
	reqs := make([]memory.Request, 0, banks)
	for start := 0; start < len(ops); start += banks {
		end := start + banks
		if end > len(ops) {
			end = len(ops)
		}
		round := ops[start:end]
		for _, op := range round {
			for o, row := range op.operandRows {
				if err := m.WriteRow(op.req.Operands[o], row); err != nil {
					return fail(err)
				}
			}
		}
		reqs = reqs[:0]
		for _, op := range round {
			reqs = append(reqs, op.req)
		}
		for i, res := range m.ExecuteBatch(reqs) {
			if res.Err != nil {
				return fail(res.Err)
			}
			got := pim.UnpackLanes(res.Row, campaignBlocksize)
			for l, w := range round[i].want {
				if got[l] != w {
					errs++
					break
				}
			}
		}
	}
	return errs, m.Stats(), m.Health(), nil
}
