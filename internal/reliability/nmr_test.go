package reliability

import "testing"

func TestAddNMRPerStepBeatsEndVoting(t *testing.T) {
	// §V-F: per-nanowire voting is well over an order of magnitude more
	// reliable than end-of-add voting, because carry errors cannot
	// accumulate across the serial chain.
	p := DefaultTRFaultProb
	end := AddNMREndRate(3, 8, p)
	step := AddNMRPerStepRate(3, 8, p)
	if ratio := end / step; ratio < 10 || ratio > 100 {
		t.Errorf("end/per-step ratio = %.1f, want well over 10x", ratio)
	}
	if step > 1e-11 {
		t.Errorf("per-step TMR rate %.2g above the 1e-11 class", step)
	}
}

func TestAddNMRRatesScaleWithWidth(t *testing.T) {
	p := DefaultTRFaultProb
	if AddNMREndRate(3, 16, p) <= AddNMREndRate(3, 8, p) {
		t.Error("end-vote rate must grow with width")
	}
	if AddNMRPerStepRate(3, 16, p) != 2*AddNMRPerStepRate(3, 8, p) {
		t.Error("per-step rate must be linear in width")
	}
	// Wider words make the end-vote disadvantage worse (quadratic
	// accumulation vs linear).
	r8 := AddNMREndRate(3, 8, p) / AddNMRPerStepRate(3, 8, p)
	r16 := AddNMREndRate(3, 16, p) / AddNMRPerStepRate(3, 16, p)
	if r16 <= r8 {
		t.Error("accumulation penalty should grow with width")
	}
}

func TestAddNMRHigherNHelps(t *testing.T) {
	p := DefaultTRFaultProb
	if AddNMRPerStepRate(5, 8, p) >= AddNMRPerStepRate(3, 8, p) {
		t.Error("N=5 per-step not below N=3")
	}
	if AddNMREndRate(5, 8, p) >= AddNMREndRate(3, 8, p) {
		t.Error("N=5 end-vote not below N=3")
	}
}

func TestTenYearTarget(t *testing.T) {
	// §V-F: ">10 year error free runtime" needs ≤5e-18 per operation
	// under N=5. With the per-step scheme, even the serial add clears
	// the bar.
	p := DefaultTRFaultProb
	if got := AddNMRPerStepRate(5, 8, p); got > 5e-18 {
		t.Errorf("N=5 per-step rate %.2g misses the 5e-18 target", got)
	}
}
