// Package reliability implements the §V-F fault analysis (Table V): the
// transverse-read ±1-level fault model, analytic per-operation error
// rates, the N-modular-redundancy uncorrectable-error combinatorics, and
// a Monte-Carlo fault-injection harness that cross-checks the analytic
// rates against the bit-level simulator.
package reliability

import (
	"fmt"
	"math"

	"repro/internal/params"
)

// DefaultTRFaultProb is the intrinsic probability that one transverse
// read senses a level off by one (§V-F: circa 1e-6, derived from LLG
// sense margins under 4% MTJ process variation).
const DefaultTRFaultProb = 1e-6

// Func identifies the PIM logic output whose error rate is analyzed.
type Func int

// Analyzed logic functions (Table V rows).
const (
	FuncANDOR Func = iota // AND, OR and C' share a single flip boundary
	FuncXOR               // parity: every ±1 fault flips it
	FuncC                 // carry: level bit 1
)

func (f Func) String() string {
	switch f {
	case FuncANDOR:
		return "AND/OR/C'"
	case FuncXOR:
		return "XOR"
	default:
		return "C"
	}
}

// flipPairs returns how many of the TRD adjacent level pairs (l, l+1)
// change the function's output — the fraction of ±1 faults that corrupt
// it under the paper's uniform-boundary model. For AND/OR/C' exactly one
// boundary flips; for XOR every boundary does; for C the count follows
// bit 1 of the level (1 for TRD=3, 2 for TRD=5, 3 for TRD=7).
func flipPairs(f Func, trd params.TRD) int {
	switch f {
	case FuncANDOR:
		return 1
	case FuncXOR:
		return int(trd)
	default:
		n := 0
		for l := 0; l < int(trd); l++ {
			if (l>>1)&1 != ((l+1)>>1)&1 {
				n++
			}
		}
		return n
	}
}

// BitErrorRate returns the per-bit error probability of one sensed
// output under TR fault probability p (Table V, upper block):
// p × flipPairs/TRD. For TRD=7 this gives 1.4e-7 for AND/OR/C', 1e-6
// for XOR, and 4.3e-7 for C, matching the paper.
func BitErrorRate(f Func, trd params.TRD, p float64) float64 {
	return p * float64(flipPairs(f, trd)) / float64(int(trd))
}

// AddErrorRate returns the probability that a b-bit addition is wrong:
// the sum bit S is the level parity, so any of the b transverse reads'
// faults corrupts the result (§V-F: 8e-6 for 8 bits at p=1e-6,
// independent of TRD).
func AddErrorRate(bits int, p float64) float64 {
	return atLeastOnce(p, bits)
}

// MultiplyErrorRate returns the probability that a b-bit multiplication
// is wrong, given the number of individual transverse reads the
// choreography performs (each carries parity-critical information).
// The TR count comes from the traced functional implementation; smaller
// TRDs need more reduction rounds and therefore more TRs, reproducing
// the Table V ordering (C3 worst).
func MultiplyErrorRate(trEvents int, p float64) float64 {
	return atLeastOnce(p, trEvents)
}

// NModular returns the probability that N-modular redundancy produces an
// uncorrectable error for a value of the given width, where q is the
// per-bit error rate of one replica, p the TR fault probability and trd
// the voting window:
//
//   - m = ⌈N/2⌉ replicas must be wrong in the same bit position, agreeing
//     on the erroneous value (±1-level faults agree with probability 1/4
//     per additional faulty replica — calibrated against Table V's TMR
//     add row);
//   - or a replica fault coincides with a fault in sensing the majority
//     itself (the C' circuit, one flip boundary).
//
// Only odd degrees with a majority circuit in the TRD window are
// modeled; any n other than 3, 5 or 7 is reported as an error.
func NModular(n int, q, p float64, trd params.TRD, bits int) (float64, error) {
	if n != 3 && n != 5 && n != 7 {
		return 0, fmt.Errorf("reliability: unsupported redundancy degree %d (want 3, 5 or 7)", n)
	}
	m := (n + 1) / 2
	replicas := binom(n, m) * math.Pow(q, float64(m)) * math.Pow(0.25, float64(m-1))
	// The vote-sense fault counts as one of the m required coinciding
	// faults (§III-F: "a fault in one of A, B, and C and a fault in
	// sensing C'"), not as a standalone failure.
	voteFault := binom(n, m-1) * math.Pow(q, float64(m-1)) *
		(p / float64(int(trd))) * math.Pow(0.25, float64(m-1))
	perBit := replicas + voteFault
	return atLeastOnce(perBit, bits), nil
}

// AddNMREndRate returns the uncorrectable-error probability of a b-bit
// addition protected by voting once at the end (§V-F): a replica's bit j
// is wrong whenever any of the j+1 transverse reads feeding it (its own
// plus the carry chain behind it) faulted, so replica bit-error rates
// grow along the word and the replicas must disagree only where the
// accumulated errors coincide.
func AddNMREndRate(n, bits int, p float64) float64 {
	total := 0.0
	m := (n + 1) / 2
	for j := 1; j <= bits; j++ {
		q := float64(j) * p // accumulated susceptibility of bit j-1
		total += binom(n, m) * math.Pow(q, float64(m)) * math.Pow(0.25, float64(m-1))
	}
	return total
}

// AddNMRPerStepRate returns the uncorrectable-error probability when
// each bit position's S/C/C' is voted before the carry chain advances
// (§III-F's per-nanowire voting): every step is an independent vote of
// single-TR replicas, so no error accumulation occurs. The paper quotes
// a "nearly two orders of magnitude lower fault rate" than end-of-add
// TMR; our accumulation model gives AddNMREndRate/AddNMRPerStepRate =
// Σj²/b ≈ 25× for 8 bits — the same direction, somewhat smaller because
// the paper's end-vote figure additionally counts write-path exposure
// we fold elsewhere. Both orderings are asserted by tests.
func AddNMRPerStepRate(n, bits int, p float64) float64 {
	m := (n + 1) / 2
	perStep := binom(n, m) * math.Pow(p, float64(m)) * math.Pow(0.25, float64(m-1))
	return float64(bits) * perStep
}

// atLeastOnce returns 1−(1−q)^n, switching to the n·q series term when
// q is too small for the direct form to survive float64 rounding.
func atLeastOnce(q float64, n int) float64 {
	if q < 1e-9 {
		return float64(n) * q
	}
	return 1 - math.Pow(1-q, float64(n))
}

// binom returns the binomial coefficient C(n, k).
func binom(n, k int) float64 {
	r := 1.0
	for i := 0; i < k; i++ {
		r *= float64(n-i) / float64(i+1)
	}
	return r
}

// TableVRow is one operation's reliability across the TRD variants.
type TableVRow struct {
	Name string
	C3   float64
	C5   float64
	C7   float64
}

// multTREvents is the traced per-8-bit-multiply transverse-read count of
// the functional implementation for each TRD (see the pim package
// tests); smaller windows need more reduction rounds.
var multTREvents = map[params.TRD]int{
	params.TRD3: 112,
	params.TRD5: 64,
	params.TRD7: 32,
}

// SetMultTREvents overrides the traced multiply TR counts (used by the
// experiments harness to feed in the live simulator measurement).
func SetMultTREvents(m map[params.TRD]int) {
	for k, v := range m {
		multTREvents[k] = v
	}
}

// TableV computes the Table V upper block (intrinsic rates) for the
// given TR fault probability.
func TableV(p float64) []TableVRow {
	per := func(f Func) TableVRow {
		return TableVRow{
			Name: f.String() + " (per bit)",
			C3:   BitErrorRate(f, params.TRD3, p),
			C5:   BitErrorRate(f, params.TRD5, p),
			C7:   BitErrorRate(f, params.TRD7, p),
		}
	}
	add := AddErrorRate(8, p)
	return []TableVRow{
		per(FuncANDOR),
		per(FuncXOR),
		per(FuncC),
		{Name: "add (per 8 bits)", C3: add, C5: add, C7: add},
		{
			Name: "multiply (per 8 bits)",
			C3:   MultiplyErrorRate(multTREvents[params.TRD3], p),
			C5:   MultiplyErrorRate(multTREvents[params.TRD5], p),
			C7:   MultiplyErrorRate(multTREvents[params.TRD7], p),
		},
	}
}

// TableVNMR computes the Table V lower block: 8-bit uncorrectable-error
// rates under N ∈ {3,5,7}-modular redundancy for each function, per TRD
// variant (N ≤ TRD).
type NMRRow struct {
	Name string
	// Rate[n][trd] is the uncorrectable probability; absent
	// combinations (n > trd) are NaN.
	Rate map[int]map[params.TRD]float64
}

// TableVNMRRows returns the redundancy block for probability p.
func TableVNMRRows(p float64) []NMRRow {
	trds := []params.TRD{params.TRD3, params.TRD5, params.TRD7}
	mk := func(name string, q func(params.TRD) float64) NMRRow {
		row := NMRRow{Name: name, Rate: map[int]map[params.TRD]float64{}}
		for _, n := range []int{3, 5, 7} {
			row.Rate[n] = map[params.TRD]float64{}
			for _, trd := range trds {
				if n > int(trd) {
					row.Rate[n][trd] = math.NaN()
					continue
				}
				rate, err := NModular(n, q(trd), p, trd, 8)
				if err != nil { // unreachable: n ranges over 3, 5, 7
					rate = math.NaN()
				}
				row.Rate[n][trd] = rate
			}
		}
		return row
	}
	return []NMRRow{
		mk("AND, OR, C' (8-bit)", func(t params.TRD) float64 { return BitErrorRate(FuncANDOR, t, p) }),
		mk("XOR (8-bit)", func(t params.TRD) float64 { return BitErrorRate(FuncXOR, t, p) }),
		mk("C (8-bit)", func(t params.TRD) float64 { return BitErrorRate(FuncC, t, p) }),
		mk("add (8-bit)", func(params.TRD) float64 { return AddErrorRate(8, p) / 8 }),
		mk("multiply (8-bit)", func(t params.TRD) float64 {
			return MultiplyErrorRate(multTREvents[t], p) / 8
		}),
	}
}
