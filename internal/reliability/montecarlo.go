package reliability

import (
	"math/rand"

	"repro/internal/dbc"
	"repro/internal/device"
	"repro/internal/params"
	"repro/internal/pim"
)

// MonteCarlo estimates operation error rates empirically by running the
// bit-level simulator with TR fault injection at an inflated probability
// (real rates of 1e-6 would need billions of trials) and counting wrong
// results. The analytic model of this package is validated against it in
// the tests.
type MonteCarlo struct {
	TRD    params.TRD
	FaultP float64
	Trials int
	Seed   int64
	// Base, when non-zero, is the configuration the trial units derive
	// from (TRD and a narrow 8-wire track are still overridden per
	// trial); the zero value falls back to params.DefaultConfig, so
	// existing sweeps keep their behavior.
	Base params.Config
}

// MCResult summarizes one estimated rate.
type MCResult struct {
	Op       string
	Trials   int
	Failures int
}

// Rate returns the observed failure fraction.
func (r MCResult) Rate() float64 { return float64(r.Failures) / float64(r.Trials) }

// newUnit builds a narrow faulty unit for one trial batch, derived from
// the caller-supplied base configuration (timing, energy, geometry)
// when one is set.
func (m MonteCarlo) newUnit(seed int64) *pim.Unit {
	cfg := m.Base
	if cfg == (params.Config{}) {
		cfg = params.DefaultConfig()
	}
	cfg.TRD = m.TRD
	cfg.Geometry.TrackWidth = 8
	u := pim.MustNewUnit(cfg)
	u.D.SetFaultInjector(device.NewFaultInjector(m.FaultP, 0, seed))
	return u
}

// RunXOR estimates the two-operand bulk XOR error rate per 8-bit row.
func (m MonteCarlo) RunXOR() (MCResult, error) {
	rng := rand.New(rand.NewSource(m.Seed))
	res := MCResult{Op: "xor8", Trials: m.Trials}
	u := m.newUnit(m.Seed + 1)
	for t := 0; t < m.Trials; t++ {
		a, b := randRow(8, rng), randRow(8, rng)
		got, err := u.BulkBitwise(dbc.OpXOR, []dbc.Row{a, b})
		if err != nil {
			return res, err
		}
		want := dbc.Row{Words: make([]uint64, len(a.Words)), N: a.N}
		for i := range want.Words {
			want.Words[i] = a.Words[i] ^ b.Words[i]
		}
		want.MaskTail()
		if !got.Equal(want) {
			res.Failures++
		}
	}
	return res, nil
}

// RunAdd estimates the 8-bit two-operand addition error rate.
func (m MonteCarlo) RunAdd() (MCResult, error) {
	rng := rand.New(rand.NewSource(m.Seed))
	res := MCResult{Op: "add8", Trials: m.Trials}
	u := m.newUnit(m.Seed + 2)
	for t := 0; t < m.Trials; t++ {
		av, bv := uint64(rng.Intn(256)), uint64(rng.Intn(256))
		a := pim.MustPackLanes([]uint64{av}, 8, 8)
		b := pim.MustPackLanes([]uint64{bv}, 8, 8)
		got, err := u.AddMulti([]dbc.Row{a, b}, 8)
		if err != nil {
			return res, err
		}
		if pim.UnpackLanes(got, 8)[0] != (av+bv)&0xff {
			res.Failures++
		}
	}
	return res, nil
}

// RunAddNMR estimates the 8-bit addition error rate under N-modular
// redundancy with voting on the same faulty unit.
func (m MonteCarlo) RunAddNMR(n int) (MCResult, error) {
	rng := rand.New(rand.NewSource(m.Seed))
	res := MCResult{Op: "add8-nmr", Trials: m.Trials}
	u := m.newUnit(m.Seed + 3)
	for t := 0; t < m.Trials; t++ {
		av, bv := uint64(rng.Intn(256)), uint64(rng.Intn(256))
		a := pim.MustPackLanes([]uint64{av}, 8, 8)
		b := pim.MustPackLanes([]uint64{bv}, 8, 8)
		got, err := u.RunNMR(n, func() (dbc.Row, error) {
			return u.AddMulti([]dbc.Row{a, b}, 8)
		})
		if err != nil {
			return res, err
		}
		if pim.UnpackLanes(got, 8)[0] != (av+bv)&0xff {
			res.Failures++
		}
	}
	return res, nil
}

// MeasureMultTREvents runs one traced multiply per TRD and returns the
// per-8-bit transverse-read event counts the analytic multiply model
// consumes.
func MeasureMultTREvents() map[params.TRD]int {
	out := map[params.TRD]int{}
	for _, trd := range []params.TRD{params.TRD3, params.TRD5, params.TRD7} {
		cfg := params.DefaultConfig()
		cfg.TRD = trd
		cfg.Geometry.TrackWidth = 16
		u := pim.MustNewUnit(cfg)
		if _, err := u.MultiplyValues([]uint64{201}, []uint64{57}, 8); err != nil {
			panic(err)
		}
		out[trd] = u.Stats().TRWires
	}
	return out
}

func randRow(width int, rng *rand.Rand) dbc.Row {
	r := dbc.NewRow(width)
	for i := 0; i < width; i++ {
		r.Set(i, uint8(rng.Intn(2)))
	}
	return r
}
