package reliability

import (
	"math"
	"testing"

	"repro/internal/params"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol*want {
		t.Errorf("%s = %.3g, want ≈%.3g", name, got, want)
	}
}

func TestBitErrorRatesMatchTableV(t *testing.T) {
	p := DefaultTRFaultProb
	// Table V upper block.
	approx(t, "AND/OR/C' C3", BitErrorRate(FuncANDOR, params.TRD3, p), 3.3e-7, 0.02)
	approx(t, "AND/OR/C' C5", BitErrorRate(FuncANDOR, params.TRD5, p), 2.0e-7, 0.02)
	approx(t, "AND/OR/C' C7", BitErrorRate(FuncANDOR, params.TRD7, p), 1.4e-7, 0.03)
	for _, trd := range []params.TRD{params.TRD3, params.TRD5, params.TRD7} {
		approx(t, "XOR "+trd.String(), BitErrorRate(FuncXOR, trd, p), 1.0e-6, 0.01)
	}
	approx(t, "C C3", BitErrorRate(FuncC, params.TRD3, p), 3.3e-7, 0.02)
	approx(t, "C C5", BitErrorRate(FuncC, params.TRD5, p), 4.0e-7, 0.01)
	approx(t, "C C7", BitErrorRate(FuncC, params.TRD7, p), 4.3e-7, 0.01)
}

func TestAddErrorRateMatchesTableV(t *testing.T) {
	approx(t, "add8", AddErrorRate(8, DefaultTRFaultProb), 8.0e-6, 0.01)
}

func TestMultiplyErrorOrdering(t *testing.T) {
	// Table V: multiply error is worst for C3 and best for C7.
	p := DefaultTRFaultProb
	rows := TableV(p)
	var mult TableVRow
	for _, r := range rows {
		if r.Name == "multiply (per 8 bits)" {
			mult = r
		}
	}
	if !(mult.C3 > mult.C5 && mult.C5 > mult.C7) {
		t.Errorf("multiply rates not ordered C3 > C5 > C7: %+v", mult)
	}
	if mult.C7 < 1e-5/8 || mult.C3 > 1e-3 {
		t.Errorf("multiply rates out of Table V's order of magnitude: %+v", mult)
	}
}

func TestMeasuredMultTREventsFeedTheModel(t *testing.T) {
	events := MeasureMultTREvents()
	if !(events[params.TRD3] > events[params.TRD5] && events[params.TRD5] > events[params.TRD7]) {
		t.Errorf("TR event counts not decreasing with TRD: %v", events)
	}
	SetMultTREvents(events)
	rows := TableV(DefaultTRFaultProb)
	for _, r := range rows {
		if r.Name == "multiply (per 8 bits)" && !(r.C3 > r.C7) {
			t.Errorf("after live measurement, multiply ordering broken: %+v", r)
		}
	}
}

func TestNModularTMRAdd(t *testing.T) {
	// Table V: TMR brings the 8-bit add from 8e-6 to circa 5.6e-12.
	p := DefaultTRFaultProb
	q := AddErrorRate(8, p) / 8
	got, err := NModular(3, q, p, params.TRD7, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got < 1e-12 || got > 2e-11 {
		t.Errorf("TMR add = %.3g, want circa 5.6e-12", got)
	}
}

func TestNModularScaling(t *testing.T) {
	p := DefaultTRFaultProb
	q := 1e-6
	tmr, err3 := NModular(3, q, p, params.TRD7, 8)
	n5, err5 := NModular(5, q, p, params.TRD7, 8)
	n7, err7 := NModular(7, q, p, params.TRD7, 8)
	for _, err := range []error{err3, err5, err7} {
		if err != nil {
			t.Fatal(err)
		}
	}
	if !(tmr > n5 && n5 > n7) {
		t.Errorf("NMR rates not decreasing with N: %g %g %g", tmr, n5, n7)
	}
	// §V-F: N=5 achieves ≤ 5e-18-class rates for >10-year error-free
	// operation.
	if n5 > 1e-16 {
		t.Errorf("N=5 rate %.3g too high for the >10-year target", n5)
	}
}

func TestNModularMonotoneInQ(t *testing.T) {
	p := DefaultTRFaultProb
	lo, _ := NModular(3, 1e-8, p, params.TRD7, 8)
	hi, _ := NModular(3, 1e-5, p, params.TRD7, 8)
	if lo >= hi {
		t.Errorf("NMR not monotone in replica error rate: %g vs %g", lo, hi)
	}
}

func TestNModularRejectsBadN(t *testing.T) {
	for _, n := range []int{-1, 0, 1, 2, 4, 6, 9} {
		if _, err := NModular(n, 1e-6, 1e-6, params.TRD7, 8); err == nil {
			t.Errorf("N=%d accepted", n)
		}
	}
	if _, err := NModular(5, 1e-6, 1e-6, params.TRD7, 8); err != nil {
		t.Errorf("N=5 rejected: %v", err)
	}
}

func TestTableVRows(t *testing.T) {
	rows := TableV(DefaultTRFaultProb)
	if len(rows) != 5 {
		t.Fatalf("TableV rows = %d, want 5", len(rows))
	}
	nmr := TableVNMRRows(DefaultTRFaultProb)
	if len(nmr) != 5 {
		t.Fatalf("NMR rows = %d, want 5", len(nmr))
	}
	for _, r := range nmr {
		if !math.IsNaN(r.Rate[5][params.TRD3]) || !math.IsNaN(r.Rate[7][params.TRD5]) {
			t.Errorf("%s: N > TRD combinations must be absent", r.Name)
		}
		if math.IsNaN(r.Rate[3][params.TRD3]) || math.IsNaN(r.Rate[7][params.TRD7]) {
			t.Errorf("%s: valid combinations missing", r.Name)
		}
	}
}

func TestMonteCarloMatchesAnalyticXOR(t *testing.T) {
	// At an inflated fault probability the observed XOR row error rate
	// must track 1-(1-p)^8 (each of 8 wires senses once; every ±1 fault
	// flips the parity).
	mc := MonteCarlo{TRD: params.TRD7, FaultP: 0.01, Trials: 4000, Seed: 7}
	res, err := mc.RunXOR()
	if err != nil {
		t.Fatal(err)
	}
	want := 1 - math.Pow(1-0.01, 8)
	got := res.Rate()
	if got < want*0.7 || got > want*1.3 {
		t.Errorf("MC XOR rate %.4f, analytic %.4f", got, want)
	}
}

func TestMonteCarloMatchesAnalyticAdd(t *testing.T) {
	mc := MonteCarlo{TRD: params.TRD7, FaultP: 0.005, Trials: 4000, Seed: 11}
	res, err := mc.RunAdd()
	if err != nil {
		t.Fatal(err)
	}
	want := AddErrorRate(8, 0.005)
	got := res.Rate()
	if got < want*0.7 || got > want*1.3 {
		t.Errorf("MC add rate %.4f, analytic %.4f", got, want)
	}
}

func TestMonteCarloNMRImproves(t *testing.T) {
	mc := MonteCarlo{TRD: params.TRD7, FaultP: 0.01, Trials: 1500, Seed: 13}
	plain, err := mc.RunAdd()
	if err != nil {
		t.Fatal(err)
	}
	protected, err := mc.RunAddNMR(3)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Failures == 0 {
		t.Skip("no baseline failures at this seed")
	}
	if protected.Rate() >= plain.Rate() {
		t.Errorf("TMR rate %.4f not below unprotected %.4f", protected.Rate(), plain.Rate())
	}
}
