package reliability

import (
	"testing"

	"repro/internal/params"
)

// TestMonteCarloZeroFaultsZeroFailures pins the reference-row
// construction in RunXOR (now tail-masked like every Row): with fault
// injection off, every trial's engine result must compare equal to the
// reference, so any spurious failure is a mismatch between the two row
// constructions, not a device error.
func TestMonteCarloZeroFaultsZeroFailures(t *testing.T) {
	mc := MonteCarlo{TRD: params.TRD7, FaultP: 0, Trials: 300, Seed: 3}
	res, err := mc.RunXOR()
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures != 0 {
		t.Fatalf("RunXOR with FaultP=0: %d/%d spurious failures", res.Failures, res.Trials)
	}
}
