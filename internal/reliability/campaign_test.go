package reliability

import (
	"testing"

	"repro/internal/resilient"
)

// TestCampaignMeetsErrorRateTarget is the PR acceptance criterion: at a
// TR fault probability of 1e-3 under NMR(N=3), the campaign must report
// a delivered error rate at least 100x below the unprotected rate. Run
// at 2000 ops to keep CI fast; the 10k-op default of the CLI holds the
// same margin.
func TestCampaignMeetsErrorRateTarget(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign sweep is slow")
	}
	c := Campaign{
		TRProb: 1e-3,
		Policy: resilient.DefaultPolicy(),
		Ops:    2000,
		Seed:   1,
	}
	rep, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	t.Log(rep.String())
	if rep.RawErrors == 0 {
		t.Fatal("raw pass saw no faults; fault injection is not wired")
	}
	if got := rep.Improvement(); got < 100 {
		t.Fatalf("improvement = %.1fx, want >= 100x (%s)", got, rep)
	}
	if rep.Detected == 0 {
		t.Error("recovery layer detected no faults")
	}
	if rep.Overhead() <= 1 {
		t.Errorf("overhead = %.2fx; NMR must cost cycles", rep.Overhead())
	}
}

// TestCampaignDeterministic: same seed, different worker counts — the
// per-DBC fault streams make the sweep independent of scheduling.
func TestCampaignDeterministic(t *testing.T) {
	base := Campaign{
		TRProb: 1e-3,
		Policy: resilient.DefaultPolicy(),
		Ops:    400,
		Seed:   7,
	}
	serial := base
	serial.Workers = 1
	wide := base
	wide.Workers = 8

	a, err := serial.Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := wide.Run()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("campaign not deterministic across worker counts:\n  serial: %+v\n  wide:   %+v", a, b)
	}
}

// TestCampaignValidation covers the error paths.
func TestCampaignValidation(t *testing.T) {
	if _, err := (Campaign{Policy: resilient.DefaultPolicy()}).Run(); err == nil {
		t.Error("Ops=0 should be rejected")
	}
	bad := Campaign{Ops: 10, Policy: resilient.Policy{Verify: resilient.VerifyNMR, NMR: 4}}
	if _, err := bad.Run(); err == nil {
		t.Error("invalid policy should be rejected")
	}
}

// TestCampaignCleanRun: with no faults the raw and recovered passes
// must both deliver every result correctly.
func TestCampaignCleanRun(t *testing.T) {
	c := Campaign{
		Policy: resilient.DefaultPolicy(),
		Ops:    64,
		Seed:   3,
	}
	rep, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.RawErrors != 0 || rep.RecovErrors != 0 {
		t.Fatalf("clean campaign delivered errors: %+v", rep)
	}
	if rep.Detected != 0 {
		t.Fatalf("clean campaign detected %d faults", rep.Detected)
	}
}
