package a

import (
	"math/rand"
	"time"
)

// bad draws from the global stream and seeds from the clock.
func bad() int {
	n := rand.Intn(10)                                   // want `rand\.Intn draws from the global seed-shared stream`
	rand.Shuffle(n, func(i, j int) {})                   // want `rand\.Shuffle draws from the global seed-shared stream`
	r := rand.New(rand.NewSource(time.Now().UnixNano())) // want `time-derived seed for rand\.NewSource`
	return r.Intn(10)
}

// badValue passes a global draw function as a value.
func badValue() func() float64 {
	return rand.Float64 // want `rand\.Float64 draws from the global seed-shared stream`
}

// good uses an explicitly seeded source; methods on it are fine.
func good(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10) + rng.Perm(3)[0]
}

// suppressed documents why the global stream is acceptable here.
func suppressed() int {
	//coruscantvet:ignore seededrand -- demo output, reproducibility not required
	return rand.Intn(10)
}

// voidDirective has no reason, so the directive does not apply.
func voidDirective() int {
	//coruscantvet:ignore seededrand
	return rand.Intn(10) // want `rand\.Intn draws from the global seed-shared stream`
}
