// Package seededrand defines an analyzer enforcing the bit-reproducibility
// rule of the fault-injection engine: every random stream in non-test
// code must flow from an explicit seed.
//
// The word-masked fault injection of the plane engine is differentially
// tested against the scalar reference by replaying identical fault
// masks, and EXPERIMENTS.md records Monte-Carlo rates that must
// reproduce bit-exactly across runs. Both guarantees die silently the
// moment a kernel draws from the global math/rand stream (whose state
// is shared and, since Go 1.20, randomly seeded) or seeds a source from
// the wall clock.
package seededrand

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"repro/internal/analysis/vetutil"
)

// Name is the analyzer's name, as used in ignore directives.
const Name = "seededrand"

var Analyzer = &analysis.Analyzer{
	Name:     Name,
	Doc:      "forbid global math/rand streams and time-derived seeds in non-test code (fault experiments must reproduce bit-exactly)",
	URL:      "",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// randPkgs are the packages whose top-level draw functions are banned.
var randPkgs = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
}

// constructors build explicitly-seeded values and are allowed (their
// arguments are checked separately for time-derived seeds).
var constructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewPCG":     true,
	"NewChaCha8": true,
	"NewZipf":    true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	// Any mention of a package-level math/rand function outside the
	// constructor allowlist — called or passed as a value — taps the
	// shared global stream.
	ins.Preorder([]ast.Node{(*ast.SelectorExpr)(nil)}, func(n ast.Node) {
		sel := n.(*ast.SelectorExpr)
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || !randPkgs[fn.Pkg().Path()] {
			return
		}
		if fn.Type().(*types.Signature).Recv() != nil {
			return // method on an explicitly constructed *Rand/Source
		}
		if constructors[fn.Name()] {
			return
		}
		vetutil.Report(pass, Name, sel.Pos(),
			"%s.%s draws from the global seed-shared stream; use rand.New(rand.NewSource(seed)) with an explicit seed",
			fn.Pkg().Name(), fn.Name())
	})

	// Constructor calls whose seed derives from the wall clock.
	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || !randPkgs[fn.Pkg().Path()] || !constructors[fn.Name()] {
			return
		}
		for _, arg := range call.Args {
			if tc := timeCall(pass, arg); tc != nil {
				vetutil.Report(pass, Name, tc.Pos(),
					"time-derived seed for %s.%s; fault experiments must use a fixed explicit seed",
					fn.Pkg().Name(), fn.Name())
			}
		}
	})
	return nil, nil
}

// timeCall returns the first time.Now call inside e, or nil. It does
// not descend into nested rand constructor calls: those are visited as
// calls in their own right, so the diagnostic lands on the innermost
// constructor receiving the clock value.
func timeCall(pass *analysis.Pass, e ast.Expr) ast.Expr {
	var found ast.Expr
	ast.Inspect(e, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if s, ok := call.Fun.(*ast.SelectorExpr); ok {
				if fn, ok := pass.TypesInfo.Uses[s.Sel].(*types.Func); ok &&
					fn.Pkg() != nil && randPkgs[fn.Pkg().Path()] && constructors[fn.Name()] {
					return false
				}
			}
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok &&
			fn.Pkg() != nil && fn.Pkg().Path() == "time" && fn.Name() == "Now" {
			found = sel
			return false
		}
		return true
	})
	return found
}
