package seededrand_test

import (
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/seededrand"
)

func TestSeededRand(t *testing.T) {
	analyzertest.Run(t, "testdata", seededrand.Analyzer, "a")
}
