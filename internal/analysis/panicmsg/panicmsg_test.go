package panicmsg_test

import (
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/panicmsg"
)

func TestPanicMsg(t *testing.T) {
	analyzertest.Run(t, "testdata", panicmsg.Analyzer, "x/internal/eng", "pub")
}
