// Package panicmsg defines an analyzer enforcing the engine's panic
// message style: a panic raised in an internal package must identify
// its package with a "pkg: " prefix, matching the established
// "dbc: ..." / "device: ..." sites.
//
// Internal panics are the engine's contract for programmer errors
// (out-of-range wires, impossible levels); the prefix is what lets a
// differential-harness failure or a user stack trace be attributed to
// the right layer at a glance. Panics rethrowing an error value
// (panic(err)) are exempt — the error carries its own prefix from the
// fmt.Errorf site that built it.
package panicmsg

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"repro/internal/analysis/vetutil"
)

// Name is the analyzer's name, as used in ignore directives.
const Name = "panicmsg"

var Analyzer = &analysis.Analyzer{
	Name:     Name,
	Doc:      `panic messages in internal packages must carry the "pkg: " prefix`,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !internalPackage(pass.Pkg.Path()) {
		return nil, nil
	}
	prefix := pass.Pkg.Name() + ": "
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		id, ok := call.Fun.(*ast.Ident)
		if !ok || len(call.Args) != 1 {
			return
		}
		if _, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok || id.Name != "panic" {
			return
		}
		msg, ok := messageLiteral(pass, call.Args[0])
		if !ok {
			return // non-constant value (e.g. panic(err)): not checkable
		}
		if !strings.HasPrefix(msg, prefix) {
			vetutil.Report(pass, Name, call.Args[0].Pos(),
				"panic message %q lacks the %q package prefix", truncate(msg), prefix)
		}
	})
	return nil, nil
}

// internalPackage reports whether path has an "internal" segment.
func internalPackage(path string) bool {
	for _, seg := range strings.Split(path, "/") {
		if seg == "internal" {
			return true
		}
	}
	return false
}

// messageLiteral extracts the statically known leading text of a panic
// argument: a string literal, a fmt.Sprintf/Errorf with a literal
// format, or a concatenation whose leftmost operand is a literal.
func messageLiteral(pass *analysis.Pass, e ast.Expr) (string, bool) {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return messageLiteral(pass, e.X)
	case *ast.BinaryExpr:
		return messageLiteral(pass, e.X)
	case *ast.CallExpr:
		sel, ok := e.Fun.(*ast.SelectorExpr)
		if !ok || len(e.Args) == 0 {
			return "", false
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" {
			return "", false
		}
		switch fn.Name() {
		case "Sprintf", "Errorf", "Sprint", "Sprintln":
			return messageLiteral(pass, e.Args[0])
		}
		return "", false
	default:
		tv, ok := pass.TypesInfo.Types[e]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
			return "", false
		}
		return constant.StringVal(tv.Value), true
	}
}

func truncate(s string) string {
	if len(s) > 40 {
		return s[:40] + "..."
	}
	return s
}
