// Package pub is not under internal/, so panicmsg does not apply.
package pub

func anyStyle() {
	panic("whatever style it likes")
}
