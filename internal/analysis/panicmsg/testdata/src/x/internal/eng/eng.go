package eng

import (
	"errors"
	"fmt"
)

func good(i int) {
	panic(fmt.Sprintf("eng: wire %d out of range", i))
}

func goodLiteral() {
	panic("eng: segment length must be positive")
}

func goodConcat(what string) {
	panic("eng: bad " + what)
}

func goodErr() error {
	err := errors.New("eng: broken")
	panic(err) // non-constant: exempt
}

func badLiteral() {
	panic("segment length must be positive") // want `lacks the "eng: " package prefix`
}

func badSprintf(i int) {
	panic(fmt.Sprintf("wire %d out of range", i)) // want `lacks the "eng: " package prefix`
}

func badOtherPrefix() {
	panic("device: wrong layer") // want `lacks the "eng: " package prefix`
}

func suppressed() {
	//coruscantvet:ignore panicmsg -- message format mandated by external harness
	panic("EXTERNAL-HARNESS-MARKER")
}
