// Package scratchescape defines an analyzer enforcing the scratch-arena
// lifetime contract of internal/pim/scratch.go: buffers handed out by
// the unexported scratch* accessor family (scratchRow, scratchWords,
// scratchInts, scratchRowList) are arena-backed and valid only until the
// enclosing top-level operation returns. They must never outlive it.
//
// Two escape routes are checked:
//
//   - return: an exported function or method returning a value whose
//     backing storage derives from a scratch accessor — directly,
//     through a local, a slice/index expression, a Row{Words: ...}
//     wrapper, a struct literal adopting a scratch row (Reduction-style
//     results), an append chain rooted in a scratch list, or an
//     unexported same-package helper that itself returns scratch
//     storage (reduceRowsScratch-style wrappers);
//   - goroutine: any function — exported or not — passing scratch
//     storage to a spawned goroutine, as an argument or a closed-over
//     local. The arena is single-owner per Unit and reclaimed by the
//     next top-level operation, so a concurrent holder races with the
//     owner's reuse.
//
// Copies sanitize: Clone()/copyRow results, make+copy, and any other
// call not known to return scratch storage carry no taint. Like
// rowalias, this is one forward pass over idiomatic code, not an escape
// analysis; silence a deliberate escape with a
// //coruscantvet:ignore scratchescape directive carrying a reason.
package scratchescape

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"repro/internal/analysis/vetutil"
)

// Name is the analyzer's name, as used in ignore directives.
const Name = "scratchescape"

var Analyzer = &analysis.Analyzer{
	Name:     Name,
	Doc:      "arena-backed scratch buffers must not escape the operation that acquired them",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	// Pass 1: seed the scratch* accessors and summarize unexported
	// helpers that hand their result straight back, so taint flows
	// through one level of same-package wrapping.
	scratchy := map[*types.Func]bool{}
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Name.IsExported() || fd.Body == nil {
			return
		}
		fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
		if !ok {
			return
		}
		if isAccessorName(fn.Name()) {
			scratchy[fn] = true
			return
		}
		c := &checker{pass: pass, scratchy: scratchy}
		c.analyze(fd, func(*ast.ReturnStmt, ast.Expr) {
			scratchy[fn] = true
		}, nil)
	})

	// Pass 2: report escapes. Returns are diagnosed on exported
	// functions only (unexported returners became taint carriers above);
	// goroutine escapes are diagnosed everywhere, since no goroutine may
	// ever hold arena storage.
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Body == nil {
			return
		}
		c := &checker{pass: pass, scratchy: scratchy}
		var onReturn func(*ast.ReturnStmt, ast.Expr)
		if fd.Name.IsExported() {
			onReturn = func(_ *ast.ReturnStmt, res ast.Expr) {
				vetutil.Report(pass, Name, res.Pos(),
					"%s returns arena-backed scratch storage, which dies when the operation ends; return an owned copy (Clone / copyRow)",
					fd.Name.Name)
			}
		}
		c.analyze(fd, onReturn, func(pos ast.Node, what string) {
			vetutil.Report(pass, Name, pos.Pos(),
				"scratch storage %s escapes into a goroutine; the per-unit arena is single-owner and reclaimed by the next operation", what)
		})
	})
	return nil, nil
}

// isAccessorName reports whether name is one of the unexported arena
// accessors. The whole scratch* family is matched by prefix so a new
// accessor is covered the day it is added.
func isAccessorName(name string) bool {
	return !ast.IsExported(name) && strings.HasPrefix(name, "scratch")
}

// checker tracks, per function body, which locals hold scratch-backed
// storage.
type checker struct {
	pass     *analysis.Pass
	scratchy map[*types.Func]bool
	env      map[*types.Var]bool
}

// analyze walks fd's body in source order, calling onReturn for every
// scratch-tainted return expression and onGo for every scratch value
// that crosses into a go statement.
func (c *checker) analyze(fd *ast.FuncDecl, onReturn func(*ast.ReturnStmt, ast.Expr), onGo func(ast.Node, string)) {
	c.env = map[*types.Var]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// Deferred/inline closures share the operation's lifetime;
			// only the go-statement path below is an escape.
			return false
		case *ast.GoStmt:
			if onGo != nil {
				c.checkGo(n, onGo)
			}
			return false
		case *ast.AssignStmt:
			c.assign(n)
		case *ast.ReturnStmt:
			if onReturn != nil {
				for _, res := range n.Results {
					if c.tainted(res) {
						onReturn(n, res)
					}
				}
			}
		}
		return true
	})
}

// assign propagates taint through simple assignments to identifiers;
// stores into fields or elements keep the storage inside the unit and
// need no tracking.
func (c *checker) assign(as *ast.AssignStmt) {
	if len(as.Rhs) != len(as.Lhs) {
		return
	}
	for i, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			continue
		}
		t := c.tainted(as.Rhs[i])
		if v, ok := c.pass.TypesInfo.Defs[id].(*types.Var); ok {
			c.env[v] = t
		} else if v, ok := c.pass.TypesInfo.Uses[id].(*types.Var); ok {
			c.env[v] = t
		}
	}
}

// checkGo reports scratch storage crossing into a goroutine, whether
// passed as a call argument or captured by the spawned closure.
func (c *checker) checkGo(g *ast.GoStmt, onGo func(ast.Node, string)) {
	for _, arg := range g.Call.Args {
		if c.tainted(arg) {
			onGo(arg, describe(arg))
		}
	}
	lit, ok := g.Call.Fun.(*ast.FuncLit)
	if !ok {
		return
	}
	reported := map[*types.Var]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if v, ok := c.pass.TypesInfo.Uses[id].(*types.Var); ok && c.env[v] && !reported[v] {
			reported[v] = true
			onGo(id, id.Name)
		}
		return true
	})
}

// tainted reports whether e's backing storage derives from a scratch
// accessor.
func (c *checker) tainted(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return c.tainted(e.X)
	case *ast.UnaryExpr:
		return c.tainted(e.X)
	case *ast.StarExpr:
		return c.tainted(e.X)
	case *ast.Ident:
		v, ok := c.pass.TypesInfo.Uses[e].(*types.Var)
		return ok && c.env[v]
	case *ast.SelectorExpr:
		// Words of a scratch row (or any field of a scratch-holding
		// value) share its backing storage.
		return c.tainted(e.X)
	case *ast.IndexExpr:
		return c.tainted(e.X)
	case *ast.SliceExpr:
		return c.tainted(e.X)
	case *ast.CompositeLit:
		// Row{Words: w} and Reduction{S: s}-style wrappers adopt the
		// storage of their elements.
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if c.tainted(el) {
				return true
			}
		}
		return false
	case *ast.CallExpr:
		// append keeps the backing array of its first argument.
		if id, ok := e.Fun.(*ast.Ident); ok {
			if bi, ok := c.pass.TypesInfo.Uses[id].(*types.Builtin); ok {
				return bi.Name() == "append" && len(e.Args) > 0 && c.tainted(e.Args[0])
			}
		}
		if fn := c.callee(e); fn != nil && (c.scratchy[fn] || isAccessorName(fn.Name())) {
			return true
		}
		// Every other call returns owned storage: Clone, copyRow,
		// make+copy wrappers and constructors all sanitize.
		return false
	default:
		return false
	}
}

// callee resolves the *types.Func a call invokes, if any.
func (c *checker) callee(e *ast.CallExpr) *types.Func {
	switch f := e.Fun.(type) {
	case *ast.Ident:
		fn, _ := c.pass.TypesInfo.Uses[f].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := c.pass.TypesInfo.Uses[f.Sel].(*types.Func)
		return fn
	case *ast.ParenExpr:
		return c.callee(&ast.CallExpr{Fun: f.X})
	}
	return nil
}

// describe names an expression for the goroutine diagnostic.
func describe(e ast.Expr) string {
	if id, ok := e.(*ast.Ident); ok {
		return id.Name
	}
	return "value"
}
