package a

// Unit mirrors the pim.Unit scratch arena: a bump pool of rows plus a
// flat word buffer, reclaimed when the next top-level operation begins.
type Unit struct {
	rows  []Row
	used  int
	words []uint64
}

// scratchRow is a seed accessor: arena-backed, never to escape.
func (u *Unit) scratchRow() Row {
	if u.used == len(u.rows) {
		u.rows = append(u.rows, NewRow(64))
	}
	r := u.rows[u.used]
	u.used++
	return r
}

// scratchWords mirrors the flat-buffer accessor.
func scratchWords(buf *[]uint64, n int) []uint64 {
	if cap(*buf) < n {
		*buf = make([]uint64, n)
	}
	return (*buf)[:n]
}

// scratchRowList mirrors the pooled row-list accessor.
func (u *Unit) scratchRowList(n int) []Row {
	return make([]Row, 0, n)
}

// tempRow is an unexported wrapper: taint must flow through it.
func (u *Unit) tempRow() Row {
	return u.scratchRow()
}

// BadReturn hands the caller the live scratch row through a local.
func (u *Unit) BadReturn() Row {
	r := u.scratchRow()
	return r // want `BadReturn returns arena-backed scratch storage`
}

// BadDirect returns the accessor result directly.
func (u *Unit) BadDirect() Row {
	return u.scratchRow() // want `BadDirect returns arena-backed scratch storage`
}

// BadWords leaks a flat scratch buffer.
func (u *Unit) BadWords(n int) []uint64 {
	return scratchWords(&u.words, n) // want `BadWords returns arena-backed scratch storage`
}

// BadWrapped hides scratch words inside a caller-visible Row.
func (u *Unit) BadWrapped(n int) Row {
	w := scratchWords(&u.words, n)
	return Row{Words: w, N: n * 64} // want `BadWrapped returns arena-backed scratch storage`
}

// BadViaHelper leaks through the unexported wrapper.
func (u *Unit) BadViaHelper() Row {
	r := u.tempRow()
	return r // want `BadViaHelper returns arena-backed scratch storage`
}

// BadSlice: a reslice of scratch still aliases the arena.
func (u *Unit) BadSlice() []uint64 {
	r := u.scratchRow()
	return r.Words[:1] // want `BadSlice returns arena-backed scratch storage`
}

// BadAppend: append keeps the pooled list's backing array.
func (u *Unit) BadAppend() []Row {
	l := u.scratchRowList(4)
	l = append(l, u.scratchRow())
	return l // want `BadAppend returns arena-backed scratch storage`
}

// Pair mirrors Reduction: a result struct wrapping rows.
type Pair struct{ S, C Row }

// BadPair wraps scratch rows in a result struct.
func (u *Unit) BadPair() Pair {
	return Pair{S: u.scratchRow(), C: u.scratchRow()} // want `BadPair returns arena-backed scratch storage`
}

// BadGoCapture: a goroutine closes over a scratch row.
func (u *Unit) BadGoCapture(out chan<- uint64) {
	r := u.scratchRow()
	go func() {
		out <- r.Words[0] // want `scratch storage r escapes into a goroutine`
	}()
}

// BadGoArg: a scratch row handed to a spawned worker.
func (u *Unit) BadGoArg(out chan<- uint64) {
	r := u.scratchRow()
	go drain(r, out) // want `scratch storage r escapes into a goroutine`
}

func drain(r Row, out chan<- uint64) { out <- r.Words[0] }

// badGoUnexported: goroutine escapes are diagnosed in unexported
// functions too — no goroutine may ever hold arena storage.
func (u *Unit) badGoUnexported(out chan<- uint64) {
	r := u.scratchRow()
	go drain(r, out) // want `scratch storage r escapes into a goroutine`
}

// GoodClone returns an owned copy: calls sanitize.
func (u *Unit) GoodClone() Row {
	r := u.scratchRow()
	return r.Clone()
}

// GoodCopy copies the flat buffer out.
func (u *Unit) GoodCopy(n int) []uint64 {
	w := scratchWords(&u.words, n)
	out := make([]uint64, len(w))
	copy(out, w)
	return out
}

// GoodInternal keeps scratch inside the operation and clones the
// result; reassigning a local back to clean is tracked.
func (u *Unit) GoodInternal(a, b Row) Row {
	tmp := u.scratchRow()
	for i := range tmp.Words {
		tmp.Words[i] = a.Words[i] &^ b.Words[i]
	}
	tmp = tmp.Clone()
	return tmp
}

// GoodGo hands the goroutine an owned clone.
func (u *Unit) GoodGo(out chan<- uint64) {
	r := u.scratchRow().Clone()
	go func() { out <- r.Words[0] }()
}

// GoodIgnored is a deliberate escape, suppressed with a reason.
func (u *Unit) GoodIgnored() Row {
	//coruscantvet:ignore scratchescape -- caller synchronizes with the arena epoch in this fixture
	return u.scratchRow()
}
