package a

// Row mirrors the engine's word-packed row so the fixture is
// self-contained: the analyzers detect it structurally.
type Row struct {
	Words []uint64
	N     int
}

func NewRow(n int) Row {
	return Row{Words: make([]uint64, (n+63)/64), N: n}
}

func (r Row) MaskTail() {
	if rem := r.N % 64; rem != 0 && len(r.Words) > 0 {
		r.Words[len(r.Words)-1] &= 1<<uint(rem) - 1
	}
}

// Clone returns an owned copy: the canonical sanitizer.
func (r Row) Clone() Row {
	out := NewRow(r.N)
	copy(out.Words, r.Words)
	return out
}
