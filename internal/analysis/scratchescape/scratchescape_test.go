package scratchescape_test

import (
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/scratchescape"
)

func TestScratchEscape(t *testing.T) {
	analyzertest.Run(t, "testdata", scratchescape.Analyzer, "a")
}
