// Package vetutil holds the pieces shared by the coruscantvet analyzers:
// the suppression-directive convention, test-file filtering, and the
// structural detection of the word-packed Row type whose invariants the
// suite enforces.
//
// # Suppression convention
//
// A diagnostic may be silenced by a directive comment on the reported
// line or on the line immediately above it:
//
//	//coruscantvet:ignore masktail -- tail bits proven clear by caller
//
// The directive names one or more analyzers (comma-separated) and MUST
// carry a reason after " -- "; a directive without a reason is ignored
// and the diagnostic stands. See DESIGN.md "Invariants & static
// analysis".
package vetutil

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// directive is the comment prefix that suppresses a diagnostic.
const directive = "coruscantvet:ignore"

// IsTestFile reports whether pos lies in a _test.go file. The suite
// checks production invariants; tests deliberately build dirty rows,
// alias planes and reseed RNGs, so every analyzer skips test files.
func IsTestFile(pass *analysis.Pass, pos token.Pos) bool {
	f := pass.Fset.File(pos)
	return f == nil || strings.HasSuffix(f.Name(), "_test.go")
}

// FileOf returns the *ast.File of pass containing pos, or nil.
func FileOf(pass *analysis.Pass, pos token.Pos) *ast.File {
	for _, f := range pass.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}

// suppressed reports whether a well-formed ignore directive for the
// named analyzer covers the line of pos or the line above it.
func suppressed(pass *analysis.Pass, name string, pos token.Pos) bool {
	file := FileOf(pass, pos)
	if file == nil {
		return false
	}
	line := pass.Fset.Position(pos).Line
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), "/*")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, directive) {
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(text, directive))
			names, reason, ok := strings.Cut(rest, "--")
			if !ok || strings.TrimSpace(reason) == "" {
				continue // no reason given: directive is void
			}
			match := false
			for _, n := range strings.Split(names, ",") {
				if strings.TrimSpace(n) == name {
					match = true
					break
				}
			}
			if !match {
				continue
			}
			cline := pass.Fset.Position(c.End()).Line
			if cline == line || cline == line-1 {
				return true
			}
		}
	}
	return false
}

// Report files a diagnostic for the named analyzer at pos unless pos is
// in a test file or covered by an ignore directive. Every coruscantvet
// analyzer reports exclusively through this funnel so the suppression
// convention is uniform.
func Report(pass *analysis.Pass, name string, pos token.Pos, format string, args ...interface{}) {
	if IsTestFile(pass, pos) || suppressed(pass, name, pos) {
		return
	}
	pass.Report(analysis.Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// IsRowType reports whether t is (or points to) a word-packed row type:
// a named struct with a `Words []uint64` field and a MaskTail method.
// Detection is structural rather than by import path so the analyzers
// work on the dbc.Row production type, the coruscant.Row alias, and the
// self-contained fixtures under testdata alike.
func IsRowType(t types.Type) bool {
	if t == nil {
		return false
	}
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	hasWords := false
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() != "Words" {
			continue
		}
		if s, ok := f.Type().(*types.Slice); ok {
			if b, ok := s.Elem().(*types.Basic); ok && b.Kind() == types.Uint64 {
				hasWords = true
			}
		}
	}
	if !hasWords {
		return false
	}
	for i := 0; i < named.NumMethods(); i++ {
		if named.Method(i).Name() == "MaskTail" {
			return true
		}
	}
	return false
}

// IsSliceOfUint64 reports whether t is []uint64 or [][]uint64 — the
// plane storage types whose aliasing the rowalias analyzer tracks.
func IsSliceOfUint64(t types.Type) bool {
	s, ok := types.Unalias(t).Underlying().(*types.Slice)
	if !ok {
		return false
	}
	if b, ok := s.Elem().(*types.Basic); ok && b.Kind() == types.Uint64 {
		return true
	}
	return IsSliceOfUint64(s.Elem())
}
