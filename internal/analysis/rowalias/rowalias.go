// Package rowalias defines an analyzer enforcing the Row ownership
// contract of internal/dbc/row.go: every Row (or plane slice) that an
// exported accessor hands to a caller is an owned copy, and every Row
// a caller passes in is copied on entry. Mutating a returned value must
// never alias engine state, and engine state must never retain a
// caller's backing array.
//
// Two directions are checked in exported functions and methods:
//
//   - leak: returning a []uint64 (or a Row wrapping one) that derives
//     from the fields of a pointer receiver or pointer parameter —
//     directly, through a local, through an element of a [][]uint64
//     plane buffer, or through an unexported same-package accessor that
//     itself returns such storage (device.(*PlaneArray).plane is the
//     canonical case);
//   - capture: storing a caller-provided slice (a []uint64 parameter or
//     a value-Row parameter's Words) into storage rooted at a pointer
//     receiver.
//
// Copies sanitize: make/append/copy results, Clone() calls, and any
// other call not known to alias carry no taint. The tracking is a
// single forward pass over idiomatic code, not an escape analysis; use
// a //coruscantvet:ignore rowalias directive with a reason where a
// deliberate alias is intended.
package rowalias

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"repro/internal/analysis/vetutil"
)

// Name is the analyzer's name, as used in ignore directives.
const Name = "rowalias"

var Analyzer = &analysis.Analyzer{
	Name:     Name,
	Doc:      "exported accessors must return owned copies of engine state and copy caller rows on entry",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// color classifies where a slice value's backing array lives.
type color int

const (
	clean    color = iota
	internal       // derives from pointer-receiver / pointer-param fields
	external       // derives from a caller-supplied parameter
)

func run(pass *analysis.Pass) (interface{}, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	// Pass 1: summarize unexported functions/methods that return
	// receiver-internal storage, so calls to them propagate taint
	// (e.g. device.(*PlaneArray).plane).
	aliasing := map[*types.Func]bool{}
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Name.IsExported() || fd.Body == nil {
			return
		}
		fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
		if !ok {
			return
		}
		a := &checker{pass: pass, aliasing: aliasing}
		a.analyze(fd, func(ret *ast.ReturnStmt, c color) {
			if c == internal {
				aliasing[fn] = true
			}
		}, nil)
	})

	// Pass 2: report leaks and captures in exported functions/methods.
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if !fd.Name.IsExported() || fd.Body == nil {
			return
		}
		a := &checker{pass: pass, aliasing: aliasing}
		a.analyze(fd,
			func(ret *ast.ReturnStmt, c color) {
				if c == internal {
					vetutil.Report(pass, Name, ret.Pos(),
						"%s returns an alias of receiver-internal plane storage; return an owned copy (Clone / make+copy)",
						fd.Name.Name)
				}
			},
			func(as *ast.AssignStmt, c color) {
				if c == external {
					vetutil.Report(pass, Name, as.Pos(),
						"%s stores a caller-provided slice into receiver state; copy on entry instead (rows passed into a DBC are copied)",
						fd.Name.Name)
				}
			})
	})
	return nil, nil
}

type checker struct {
	pass     *analysis.Pass
	aliasing map[*types.Func]bool

	roots map[*types.Var]color // receiver/params
	env   map[*types.Var]color // locals
}

// analyze walks fd's body in source order, calling onReturn for each
// return-expression color and onCapture for each assignment whose LHS
// is rooted in the receiver.
func (a *checker) analyze(fd *ast.FuncDecl, onReturn func(*ast.ReturnStmt, color), onCapture func(*ast.AssignStmt, color)) {
	a.roots = map[*types.Var]color{}
	a.env = map[*types.Var]color{}
	if fd.Recv != nil {
		for _, f := range fd.Recv.List {
			for _, name := range f.Names {
				if v, ok := a.pass.TypesInfo.Defs[name].(*types.Var); ok {
					if _, isPtr := types.Unalias(v.Type()).(*types.Pointer); isPtr {
						a.roots[v] = internal
					}
				}
			}
		}
	}
	if fd.Type.Params != nil {
		for _, f := range fd.Type.Params.List {
			for _, name := range f.Names {
				v, ok := a.pass.TypesInfo.Defs[name].(*types.Var)
				if !ok {
					continue
				}
				if _, isPtr := types.Unalias(v.Type()).(*types.Pointer); isPtr {
					a.roots[v] = internal
				} else if vetutil.IsSliceOfUint64(v.Type()) || vetutil.IsRowType(v.Type()) {
					a.roots[v] = external
				}
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			a.assign(n, onCapture)
		case *ast.ReturnStmt:
			if onReturn != nil {
				for _, res := range n.Results {
					if c := a.colorOf(res); c != clean {
						onReturn(n, c)
					}
				}
			}
		}
		return true
	})
}

func (a *checker) assign(as *ast.AssignStmt, onCapture func(*ast.AssignStmt, color)) {
	for i, lhs := range as.Lhs {
		var rhs ast.Expr
		if len(as.Rhs) == len(as.Lhs) {
			rhs = as.Rhs[i]
		}
		if rhs == nil {
			continue
		}
		c := a.colorOf(rhs)
		if id, ok := lhs.(*ast.Ident); ok {
			if v, ok := a.pass.TypesInfo.Defs[id].(*types.Var); ok {
				a.env[v] = c
				continue
			}
			if v, ok := a.pass.TypesInfo.Uses[id].(*types.Var); ok && a.isLocal(v) {
				a.env[v] = c
				continue
			}
		}
		// Assignment into receiver-rooted storage captures the RHS.
		if onCapture != nil && a.receiverRooted(lhs) && c == external {
			onCapture(as, c)
		}
	}
}

// isLocal reports whether v is neither a root param nor package-level.
func (a *checker) isLocal(v *types.Var) bool {
	if _, isRoot := a.roots[v]; isRoot {
		return false
	}
	return v.Parent() != v.Pkg().Scope()
}

// receiverRooted reports whether the selector/index chain of lhs is
// anchored at the (internal) receiver or at internal-tainted storage.
func (a *checker) receiverRooted(lhs ast.Expr) bool {
	for {
		switch x := lhs.(type) {
		case *ast.ParenExpr:
			lhs = x.X
		case *ast.StarExpr:
			lhs = x.X
		case *ast.SelectorExpr:
			lhs = x.X
		case *ast.IndexExpr:
			lhs = x.X
		case *ast.Ident:
			if v, ok := a.pass.TypesInfo.Uses[x].(*types.Var); ok {
				return a.roots[v] == internal || a.env[v] == internal
			}
			return false
		default:
			return false
		}
	}
}

// colorOf computes the taint of an expression's backing array.
func (a *checker) colorOf(e ast.Expr) color {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return a.colorOf(e.X)
	case *ast.UnaryExpr:
		return a.colorOf(e.X)
	case *ast.StarExpr:
		return a.colorOf(e.X)
	case *ast.Ident:
		v, ok := a.pass.TypesInfo.Uses[e].(*types.Var)
		if !ok {
			return clean
		}
		if c, ok := a.env[v]; ok {
			return c
		}
		// A caller-supplied slice/Row parameter is external as a value.
		if a.roots[v] == external {
			return external
		}
		return clean
	case *ast.SelectorExpr:
		// X.f: field access keeps/acquires the taint of its root when
		// the result is slice-backed storage.
		if !vetutil.IsSliceOfUint64(a.pass.TypesInfo.TypeOf(e)) {
			return clean
		}
		return a.rootColor(e.X)
	case *ast.IndexExpr:
		if !vetutil.IsSliceOfUint64(a.pass.TypesInfo.TypeOf(e)) {
			return clean
		}
		return a.colorOf(e.X)
	case *ast.SliceExpr:
		return a.colorOf(e.X)
	case *ast.CompositeLit:
		// Row{Words: tainted} carries the taint of the adopted slice.
		if vetutil.IsRowType(a.pass.TypesInfo.TypeOf(e)) {
			for _, el := range e.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Words" {
						return a.colorOf(kv.Value)
					}
				}
			}
		}
		return clean
	case *ast.CallExpr:
		// Calls sanitize unless the callee is a known aliasing accessor.
		if sel, ok := e.Fun.(*ast.SelectorExpr); ok {
			if fn, ok := a.pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok && a.aliasing[fn] {
				return a.rootColor(sel.X)
			}
		}
		return clean
	default:
		return clean
	}
}

// rootColor resolves the taint of the object anchoring a selector: the
// pointer receiver/param (internal), an external param, or a tainted
// local.
func (a *checker) rootColor(x ast.Expr) color {
	for {
		switch t := x.(type) {
		case *ast.ParenExpr:
			x = t.X
		case *ast.StarExpr:
			x = t.X
		case *ast.SelectorExpr:
			x = t.X
		case *ast.IndexExpr:
			x = t.X
		case *ast.Ident:
			if v, ok := a.pass.TypesInfo.Uses[t].(*types.Var); ok {
				if c, ok := a.roots[v]; ok {
					return c
				}
				return a.env[v]
			}
			return clean
		default:
			return clean
		}
	}
}
