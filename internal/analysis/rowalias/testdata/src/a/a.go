package a

// PlaneArray mirrors device.PlaneArray: a flat buffer sliced into
// per-plane windows plus a scratch row.
type PlaneArray struct {
	buf     [][]uint64
	scratch []uint64
	rows    []Row
}

// plane is an unexported aliasing accessor: fine on its own, but taint
// must flow through calls to it.
func (pa *PlaneArray) plane(i int) []uint64 {
	return pa.buf[i]
}

// BadPeek hands the caller the live scratch slice.
func (pa *PlaneArray) BadPeek() []uint64 {
	return pa.scratch // want `BadPeek returns an alias of receiver-internal plane storage`
}

// BadPlane leaks a plane window via direct indexing.
func (pa *PlaneArray) BadPlane(i int) []uint64 {
	return pa.buf[i] // want `BadPlane returns an alias of receiver-internal plane storage`
}

// BadViaAccessor leaks through the unexported accessor and a local.
func (pa *PlaneArray) BadViaAccessor(i int) []uint64 {
	w := pa.plane(i)
	return w // want `BadViaAccessor returns an alias of receiver-internal plane storage`
}

// BadAsRow wraps internal storage in a caller-visible Row.
func (pa *PlaneArray) BadAsRow(i, n int) Row {
	return Row{Words: pa.buf[i], N: n} // want `BadAsRow returns an alias of receiver-internal plane storage`
}

// BadRowWords leaks the Words of a stored row.
func (pa *PlaneArray) BadRowWords(i int) []uint64 {
	return pa.rows[i].Words // want `BadRowWords returns an alias of receiver-internal plane storage`
}

// BadFree is a plain function; pointer params are internal roots too.
func BadFree(pa *PlaneArray) []uint64 {
	return pa.scratch // want `BadFree returns an alias of receiver-internal plane storage`
}

// GoodCopy returns an owned copy.
func (pa *PlaneArray) GoodCopy(i int) []uint64 {
	out := make([]uint64, len(pa.buf[i]))
	copy(out, pa.buf[i])
	return out
}

// GoodAppend copies via append.
func (pa *PlaneArray) GoodAppend() []uint64 {
	return append([]uint64(nil), pa.scratch...)
}

// GoodClone returns a cloned row: calls sanitize.
func (pa *PlaneArray) GoodClone(i int) Row {
	return pa.rows[i].Clone()
}

// GoodScalar returns a scalar element, not backing storage.
func (pa *PlaneArray) GoodScalar(i int) uint64 {
	return pa.scratch[i]
}

// BadCapture retains the caller's slice as engine state.
func (pa *PlaneArray) BadCapture(src []uint64) {
	pa.scratch = src // want `BadCapture stores a caller-provided slice into receiver state`
}

// BadCaptureRow retains a caller row's backing array in a plane window.
func (pa *PlaneArray) BadCaptureRow(i int, r Row) {
	pa.buf[i] = r.Words // want `BadCaptureRow stores a caller-provided slice into receiver state`
}

// BadCaptureViaLocal launders the caller slice through a local.
func (pa *PlaneArray) BadCaptureViaLocal(src []uint64) {
	tmp := src
	pa.scratch = tmp // want `BadCaptureViaLocal stores a caller-provided slice into receiver state`
}

// GoodCaptureCopy copies on entry.
func (pa *PlaneArray) GoodCaptureCopy(src []uint64) {
	copy(pa.scratch, src)
}

// GoodCaptureClone adopts an owned copy.
func (pa *PlaneArray) GoodCaptureClone(src []uint64) {
	pa.scratch = append([]uint64(nil), src...)
}

// SuppressedView is a documented deliberate alias.
func (pa *PlaneArray) SuppressedView() []uint64 {
	//coruscantvet:ignore rowalias -- read-only view documented on the method
	return pa.scratch
}
