package rowalias_test

import (
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/rowalias"
)

func TestRowAlias(t *testing.T) {
	analyzertest.Run(t, "testdata", rowalias.Analyzer, "a")
}
