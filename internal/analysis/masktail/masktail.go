// Package masktail defines an analyzer enforcing the Row tail
// invariant: bits beyond N in the last word of a Row must be zero, so
// any function that writes Row.Words at word granularity must call
// MaskTail before it can return (row.go: "word-level writers should
// finish with MaskTail").
//
// The check is flow-sensitive: a control-flow graph of the function is
// walked and a word-granular store is reported only if some path from
// the store reaches an exit without passing a MaskTail call on the same
// row. Bit-granularity operations cannot dirty the tail and are exempt:
// clearing ops (&=, &^=), stores of literal zero, and single-bit
// "1 << k" set/clear patterns (the Row.Set idiom, which is always
// bounds-checked). Rows constructed by a composite literal adopting an
// existing word slice (Row{Words: s}) are treated as dirty unless the
// slice comes fresh from make.
//
// Known limitations, by design (a linter, not a verifier): stores
// through a separately-bound alias of the Words slice are not tracked,
// and a helper that masks on the caller's behalf is invisible — use a
// //coruscantvet:ignore masktail directive with a reason for those.
package masktail

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/cfg"

	"repro/internal/analysis/vetutil"
)

// Name is the analyzer's name, as used in ignore directives.
const Name = "masktail"

var Analyzer = &analysis.Analyzer{
	Name:     Name,
	Doc:      "word-granularity writes to Row.Words must be followed by MaskTail on every path to return",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil), (*ast.FuncLit)(nil)}, func(n ast.Node) {
		var body *ast.BlockStmt
		switch n := n.(type) {
		case *ast.FuncDecl:
			body = n.Body
		case *ast.FuncLit:
			body = n.Body
		}
		if body == nil {
			return
		}
		checkFunc(pass, body)
	})
	return nil, nil
}

// event is one tail-relevant action inside a basic block, in source
// order: a dirtying store, or a cleaning MaskTail / whole-row rebind.
type event struct {
	base  string
	pos   token.Pos
	clean bool
}

// store identifies one dirtying write for reporting.
type store struct {
	base string
	pos  token.Pos
}

func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	// Rows covered by a deferred MaskTail are clean at every exit.
	deferred := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			if base, ok := maskTailCall(pass, d.Call); ok {
				deferred[base] = true
			}
		}
		return true
	})

	g := cfg.New(body, func(call *ast.CallExpr) bool { return !isPanic(pass, call) })

	events := make(map[*cfg.Block][]event)
	any := false
	for _, b := range g.Blocks {
		if !b.Live {
			continue
		}
		for _, n := range b.Nodes {
			evs := nodeEvents(pass, n)
			if len(evs) > 0 {
				events[b] = append(events[b], evs...)
				any = true
			}
		}
	}
	if !any {
		return
	}

	// Forward dataflow: the set of unmasked stores live at block entry.
	in := make(map[*cfg.Block]map[store]bool)
	for _, b := range g.Blocks {
		in[b] = map[store]bool{}
	}
	reported := map[store]struct{}{}
	var work []*cfg.Block
	for _, b := range g.Blocks {
		if b.Live {
			work = append(work, b)
		}
	}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		out := map[store]bool{}
		for s := range in[b] {
			out[s] = true
		}
		for _, ev := range events[b] {
			if ev.clean {
				for s := range out {
					if s.base == ev.base {
						delete(out, s)
					}
				}
			} else if !deferred[ev.base] {
				out[store{ev.base, ev.pos}] = true
			}
		}
		for _, succ := range b.Succs {
			changed := false
			for s := range out {
				if !in[succ][s] {
					in[succ][s] = true
					changed = true
				}
			}
			if changed {
				work = append(work, succ)
			}
		}
		if len(b.Succs) == 0 && reportingExit(pass, b) {
			for s := range out {
				reported[s] = struct{}{}
			}
		}
	}
	for s := range reported {
		vetutil.Report(pass, Name, s.pos,
			"word-granularity write to %s.Words can reach return without %s.MaskTail(); tail bits beyond N must be zero",
			s.base, s.base)
	}
}

// reportingExit reports whether dirty rows escaping through b matter: a
// return statement or the fall-off-the-end of the body, but not a panic
// (the row does not outlive the crash).
func reportingExit(pass *analysis.Pass, b *cfg.Block) bool {
	if b.Return() != nil {
		return true
	}
	if len(b.Nodes) > 0 {
		if call, ok := callOf(b.Nodes[len(b.Nodes)-1]); ok && isPanic(pass, call) {
			return false
		}
	}
	return true
}

func exprString(e ast.Expr) string { return types.ExprString(e) }

func callOf(n ast.Node) (*ast.CallExpr, bool) {
	switch n := n.(type) {
	case *ast.ExprStmt:
		c, ok := n.X.(*ast.CallExpr)
		return c, ok
	case *ast.CallExpr:
		return n, true
	}
	return nil, false
}

func isPanic(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic" && pass.TypesInfo.Uses[id] != nil
}

// nodeEvents extracts the tail-relevant actions of one CFG node.
func nodeEvents(pass *analysis.Pass, n ast.Node) []event {
	var evs []event
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			return false // analyzed separately
		case *ast.AssignStmt:
			for i, lhs := range m.Lhs {
				var rhs ast.Expr
				if len(m.Rhs) == len(m.Lhs) {
					rhs = m.Rhs[i]
				}
				evs = append(evs, bindEvents(pass, m.Tok, lhs, rhs)...)
			}
		case *ast.ValueSpec:
			for i, name := range m.Names {
				var rhs ast.Expr
				if i < len(m.Values) {
					rhs = m.Values[i]
				}
				evs = append(evs, bindEvents(pass, token.ASSIGN, name, rhs)...)
			}
		case *ast.ReturnStmt:
			// Returning a composite that adopts a foreign slice hands the
			// caller a possibly-dirty row with no chance to mask it.
			for _, res := range m.Results {
				if dirtyComposite(pass, res) {
					evs = append(evs, event{base: "returned row", pos: res.Pos()})
				}
			}
		case *ast.CallExpr:
			if base, ok := maskTailCall(pass, m); ok {
				evs = append(evs, event{base: base, pos: m.Pos(), clean: true})
			}
		}
		return true
	})
	return evs
}

// bindEvents classifies one assignment (or declaration) target.
func bindEvents(pass *analysis.Pass, tok token.Token, lhs, rhs ast.Expr) []event {
	// B.Words[i] <op>= rhs — a word store into a row.
	if ix, ok := lhs.(*ast.IndexExpr); ok {
		if base, ok := rowWordsBase(pass, ix.X); ok {
			if exemptStore(pass, tok, rhs) {
				return nil
			}
			return []event{{base: base, pos: lhs.Pos()}}
		}
		return nil
	}
	// B.Words = rhs — adopting a slice wholesale: clean only if fresh.
	if base, ok := rowWordsBase(pass, lhs); ok {
		if rhs != nil && !freshSlice(rhs) {
			return []event{{base: base, pos: rhs.Pos()}}
		}
		return []event{{base: base, pos: lhs.Pos(), clean: true}}
	}
	// B = rhs — rebinding the whole row supersedes earlier stores; a
	// composite adopting a non-fresh slice is itself dirtying.
	if vetutil.IsRowType(pass.TypesInfo.TypeOf(lhs)) {
		switch lhs.(type) {
		case *ast.Ident, *ast.SelectorExpr:
			base := exprString(lhs)
			if rhs != nil && dirtyComposite(pass, rhs) {
				return []event{{base: base, pos: rhs.Pos()}}
			}
			return []event{{base: base, pos: lhs.Pos(), clean: true}}
		}
	}
	return nil
}

// freshSlice reports whether e is a make(...) call, i.e. all-zero.
func freshSlice(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "make"
}

// rowWordsBase returns the printed base row expression of a
// `<base>.Words` selector, if that is what e is.
func rowWordsBase(pass *analysis.Pass, e ast.Expr) (string, bool) {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Words" {
		return "", false
	}
	if !vetutil.IsRowType(pass.TypesInfo.TypeOf(sel.X)) {
		return "", false
	}
	return exprString(sel.X), true
}

// maskTailCall matches `<base>.MaskTail()` on a row-typed base.
func maskTailCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "MaskTail" {
		return "", false
	}
	if !vetutil.IsRowType(pass.TypesInfo.TypeOf(sel.X)) {
		return "", false
	}
	return exprString(sel.X), true
}

// exemptStore reports whether a store cannot set bits beyond N: ops
// that only clear (&=, &^=), literal zero, and the bounds-checked
// single-bit Set idiom (`|= 1 << k`).
func exemptStore(pass *analysis.Pass, tok token.Token, rhs ast.Expr) bool {
	switch tok {
	case token.AND_ASSIGN, token.AND_NOT_ASSIGN:
		return true
	}
	if rhs == nil {
		return false
	}
	rhs = ast.Unparen(rhs)
	if lit, ok := rhs.(*ast.BasicLit); ok && lit.Value == "0" {
		return true
	}
	return singleBit(rhs)
}

// singleBit matches `1 << k` and conversions/parenthesizations of it.
func singleBit(e ast.Expr) bool {
	e = ast.Unparen(e)
	if call, ok := e.(*ast.CallExpr); ok && len(call.Args) == 1 {
		return singleBit(call.Args[0]) // uint64(1) << k handled below; T(1<<k)
	}
	bin, ok := e.(*ast.BinaryExpr)
	if !ok || bin.Op != token.SHL {
		return false
	}
	x := ast.Unparen(bin.X)
	if lit, ok := x.(*ast.BasicLit); ok && lit.Value == "1" {
		return true
	}
	if call, ok := x.(*ast.CallExpr); ok && len(call.Args) == 1 {
		if lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit); ok && lit.Value == "1" {
			return true
		}
	}
	return false
}

// dirtyComposite reports whether rhs builds a row whose Words adopt a
// possibly-dirty existing slice: Row{Words: e} with e not a fresh make.
func dirtyComposite(pass *analysis.Pass, rhs ast.Expr) bool {
	cl, ok := ast.Unparen(rhs).(*ast.CompositeLit)
	if !ok || !vetutil.IsRowType(pass.TypesInfo.TypeOf(cl)) {
		return false
	}
	for _, el := range cl.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Words" {
			if call, ok := ast.Unparen(kv.Value).(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "make" {
					return false
				}
			}
			return true
		}
	}
	return false
}
