package a

// Row mirrors the engine's word-packed row: the analyzers detect it
// structurally (Words []uint64 + MaskTail method), so the fixture is
// self-contained.
type Row struct {
	Words []uint64
	N     int
}

func NewRow(n int) Row {
	return Row{Words: make([]uint64, (n+63)/64), N: n}
}

func TailMask(n int) uint64 {
	if rem := n % 64; rem != 0 {
		return 1<<uint(rem) - 1
	}
	return ^uint64(0)
}

func (r Row) MaskTail() {
	if len(r.Words) > 0 {
		r.Words[len(r.Words)-1] &= TailMask(r.N)
	}
}

// Set is the bounds-checked single-bit idiom: exempt.
func (r Row) Set(i int, b uint8) {
	if i < 0 || i >= r.N {
		panic("a: out of range")
	}
	if b&1 != 0 {
		r.Words[i>>6] |= 1 << uint(i&63)
	} else {
		r.Words[i>>6] &^= 1 << uint(i&63)
	}
}
