package a

// badComplement writes whole words and returns without masking.
func badComplement(r Row) Row {
	out := NewRow(r.N)
	for i, w := range r.Words {
		out.Words[i] = ^w // want `write to out\.Words can reach return without out\.MaskTail`
	}
	return out
}

// badOr accumulates into a result row and forgets the tail.
func badOr(sum Row, planes []uint64) Row {
	for i := range sum.Words {
		sum.Words[i] |= planes[i] // want `write to sum\.Words can reach return without sum\.MaskTail`
	}
	return sum
}

// badBranch masks on one path but not the other.
func badBranch(r Row, fix bool) Row {
	out := NewRow(r.N)
	for i, w := range r.Words {
		out.Words[i] = w << 1 // want `write to out\.Words can reach return without out\.MaskTail`
	}
	if fix {
		out.MaskTail()
	}
	return out
}

// badAdopt hands the caller a row wrapped around a foreign slice.
func badAdopt(words []uint64, n int) Row {
	return Row{Words: words, N: n} // want `write to returned row\.Words can reach return`
}

// goodComplement masks before returning.
func goodComplement(r Row) Row {
	out := NewRow(r.N)
	for i, w := range r.Words {
		out.Words[i] = ^w
	}
	out.MaskTail()
	return out
}

// goodDefer masks via defer, covering every exit.
func goodDefer(r Row, early bool) Row {
	out := NewRow(r.N)
	defer out.MaskTail()
	for i, w := range r.Words {
		out.Words[i] = ^w
	}
	if early {
		return out
	}
	out.Words[0] = ^uint64(0)
	return out
}

// goodClearing only clears bits; the tail cannot become dirty.
func goodClearing(r Row, mask uint64) Row {
	for i := range r.Words {
		r.Words[i] &= mask
		r.Words[i] &^= 1 << 3
		r.Words[i+1] = 0
	}
	return r
}

// goodSingleBit uses the bounds-checked Set idiom.
func goodSingleBit(r Row) Row {
	r.Words[0] |= 1 << 7
	r.Set(3, 1)
	return r
}

// goodPanicPath: dirty words cannot escape through a panic.
func goodPanicPath(r Row) Row {
	for i, w := range r.Words {
		r.Words[i] = w << 2
	}
	if r.N == 0 {
		panic("a: empty row")
	}
	r.MaskTail()
	return r
}

// goodFreshComposite adopts a make-fresh slice: all zero, clean.
func goodFreshComposite(n int) Row {
	return Row{Words: make([]uint64, (n+63)/64), N: n}
}

// goodMaskEachStep masks inside the loop after the store.
func goodMaskEachStep(r Row) Row {
	for i, w := range r.Words {
		r.Words[i] = ^w
		r.MaskTail()
	}
	return r
}

// suppressedAdopt documents why adoption is safe here.
func suppressedAdopt(words []uint64, n int) Row {
	//coruscantvet:ignore masktail -- words come from a plane already tail-masked
	return Row{Words: words, N: n}
}
