package masktail_test

import (
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/masktail"
)

func TestMaskTail(t *testing.T) {
	analyzertest.Run(t, "testdata", masktail.Analyzer, "a")
}
