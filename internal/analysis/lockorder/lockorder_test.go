package lockorder_test

import (
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/lockorder"
)

func TestLockOrder(t *testing.T) {
	analyzertest.Run(t, "testdata", lockorder.Analyzer, "mem")
}
