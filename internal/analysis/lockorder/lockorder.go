// Package lockorder defines a flow-sensitive analyzer enforcing the
// striped-locking discipline of the memory engine:
//
//   - multi-DBC lock sets must be acquired through the ordered
//     multi-lock helper (lockOrdered), never as direct .mu.Lock()
//     pairs — two goroutines pairing shards in opposite orders
//     deadlock;
//   - the cfg-class mutexes (cfgMu, tableMu) are ordered BEFORE the
//     per-shard mutexes: acquiring one while a shard lock is held —
//     directly, or by calling a function that locks one — inverts the
//     order against every Lock-cfg-then-shard path in the package.
//
// Classes are anchored structurally so the self-contained fixtures
// work like the production types: a shard lock is the `mu` field of a
// struct type named `shard`; a cfg-class lock is any field named
// `cfgMu` or `tableMu`. The check walks the ctrlflow CFG tracking how
// many shard locks each path holds; the call check uses a package-local
// transitive summary of which functions acquire cfg-class mutexes.
package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/ctrlflow"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/cfg"
	"golang.org/x/tools/go/types/typeutil"

	"repro/internal/analysis/vetutil"
)

// Name is the analyzer's name, as used in ignore directives.
const Name = "lockorder"

var Analyzer = &analysis.Analyzer{
	Name:     Name,
	Doc:      "striped-lock discipline: multi-shard acquisition goes through lockOrdered, and cfg-class mutexes (cfgMu/tableMu) are never acquired while a shard lock is held",
	Requires: []*analysis.Analyzer{inspect.Analyzer, ctrlflow.Analyzer},
	Run:      run,
}

// cfgMutexFields are the coarse attachment/table mutexes that order
// before every shard mutex.
var cfgMutexFields = map[string]bool{"cfgMu": true, "tableMu": true}

func run(pass *analysis.Pass) (interface{}, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	cfgs := pass.ResultOf[ctrlflow.Analyzer].(*ctrlflow.CFGs)

	locksCfg := cfgLockSummaries(pass, ins)

	reported := map[token.Pos]bool{}
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil), (*ast.FuncLit)(nil)}, func(n ast.Node) {
		var g *cfg.CFG
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body == nil {
				return
			}
			g = cfgs.FuncDecl(fn)
		case *ast.FuncLit:
			g = cfgs.FuncLit(fn)
		}
		if g != nil {
			checkFunc(pass, g, locksCfg, reported)
		}
	})
	return nil, nil
}

// cfgLockSummaries computes, transitively over the package's static
// call graph, which functions acquire a cfg-class mutex. Nested
// function literals are excluded: a closure that locks runs when
// invoked, not when its maker is called.
func cfgLockSummaries(pass *analysis.Pass, ins *inspector.Inspector) map[*types.Func]bool {
	direct := map[*types.Func]bool{}
	calls := map[*types.Func][]*types.Func{}

	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		decl := n.(*ast.FuncDecl)
		fn, ok := pass.TypesInfo.Defs[decl.Name].(*types.Func)
		if !ok || decl.Body == nil {
			return
		}
		ast.Inspect(decl.Body, func(m ast.Node) bool {
			if _, ok := m.(*ast.FuncLit); ok {
				return false
			}
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			if kind, _ := lockEvent(pass, call); kind == evLockCfg {
				direct[fn] = true
			}
			if callee := typeutil.StaticCallee(pass.TypesInfo, call); callee != nil && callee.Pkg() == pass.Pkg {
				calls[fn] = append(calls[fn], callee)
			}
			return true
		})
	})

	// Propagate to callers until fixpoint.
	for changed := true; changed; {
		changed = false
		for fn, callees := range calls {
			if direct[fn] {
				continue
			}
			for _, c := range callees {
				if direct[c] {
					direct[fn] = true
					changed = true
					break
				}
			}
		}
	}
	return direct
}

type eventKind int

const (
	evNone eventKind = iota
	evLockShard
	evUnlockShard
	evLockCfg
	evLockOrdered
)

// lockEvent classifies a call as one of the lock-state transitions. The
// second result is the mutex field name for diagnostics.
func lockEvent(pass *analysis.Pass, call *ast.CallExpr) (eventKind, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return evNone, ""
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		if fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok && fn.Name() == "lockOrdered" {
			return evLockOrdered, ""
		}
		return evNone, ""
	}
	field, ok := sel.X.(*ast.SelectorExpr)
	if !ok {
		return evNone, ""
	}
	locking := sel.Sel.Name == "Lock" || sel.Sel.Name == "RLock"
	if cfgMutexFields[field.Sel.Name] {
		if locking {
			return evLockCfg, field.Sel.Name
		}
		return evNone, ""
	}
	if field.Sel.Name == "mu" && isShardExpr(pass, field.X) {
		if locking {
			return evLockShard, "mu"
		}
		return evUnlockShard, "mu"
	}
	return evNone, ""
}

// isShardExpr reports whether e has the striped-shard type: a (pointer
// to a) struct named `shard` with a `mu` field.
func isShardExpr(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok {
		return false
	}
	t := types.Unalias(tv.Type)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "shard" {
		return false
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == "mu" {
			return true
		}
	}
	return false
}

// lockState is one path's shard-lock footprint: how many direct shard
// locks are held (capped — loops would otherwise grow it without
// bound), whether a lockOrdered set is held, and the unlock closure
// bound to it.
type lockState struct {
	count   int
	ordered bool
	unlock  types.Object
	// errObj is the error result bound alongside the lockOrdered set:
	// on the branch where it is non-nil, the helper acquired nothing.
	errObj types.Object
}

func (s lockState) held() bool { return s.count > 0 || s.ordered }

func (s lockState) key(block int32) [4]int32 {
	ord := int32(0)
	if s.ordered {
		ord = 1
	}
	return [4]int32{block, int32(min(s.count, 2)), ord, 0}
}

// checkFunc walks the CFG from the entry block, threading the
// shard-lock state through every path and reporting order violations.
func checkFunc(pass *analysis.Pass, g *cfg.CFG, locksCfg map[*types.Func]bool, reported map[token.Pos]bool) {
	report := func(pos token.Pos, format string, args ...interface{}) {
		if !reported[pos] {
			reported[pos] = true
			vetutil.Report(pass, Name, pos, format, args...)
		}
	}

	visited := map[[4]int32]bool{}
	var walk func(b *cfg.Block, st lockState)
	walk = func(b *cfg.Block, st lockState) {
		for _, node := range b.Nodes {
			st = transfer(pass, node, st, locksCfg, report)
		}
		for i, s := range b.Succs {
			next := st
			// `shards, unlock, err := m.lockOrdered(...)` followed by an
			// `if err != nil` early-out: on the error branch the helper
			// acquired nothing, so the ordered set is not held there.
			if next.errObj != nil && len(b.Succs) == 2 && errBranchTaken(pass, b, next.errObj, i) {
				next.ordered = false
				next.errObj = nil
			}
			k := next.key(s.Index)
			if visited[k] {
				continue
			}
			visited[k] = true
			walk(s, next)
		}
	}
	if len(g.Blocks) > 0 {
		walk(g.Blocks[0], lockState{})
	}
}

// errBranchTaken reports whether successor branch takes the path where
// errObj is known non-nil: the block must end in an `errObj != nil`
// (branch 0) or `errObj == nil` (branch 1) condition. go/cfg orders an
// if statement's successors as [then, else].
func errBranchTaken(pass *analysis.Pass, b *cfg.Block, errObj types.Object, branch int) bool {
	if len(b.Nodes) == 0 {
		return false
	}
	bin, ok := b.Nodes[len(b.Nodes)-1].(*ast.BinaryExpr)
	if !ok {
		return false
	}
	x, y := bin.X, bin.Y
	if isNilIdent(pass, x) {
		x, y = y, x
	}
	id, ok := x.(*ast.Ident)
	if !ok || pass.TypesInfo.Uses[id] != errObj || !isNilIdent(pass, y) {
		return false
	}
	switch bin.Op {
	case token.NEQ:
		return branch == 0
	case token.EQL:
		return branch == 1
	}
	return false
}

func isNilIdent(pass *analysis.Pass, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := pass.TypesInfo.Uses[id].(*types.Nil)
	return isNil
}

// transfer applies one CFG node's lock events to the path state.
// Events inside defers and nested function literals are skipped: a
// deferred Unlock runs at exit (the lock is held for the rest of the
// function), and a closure's locks happen when it is invoked.
func transfer(pass *analysis.Pass, node ast.Node, st lockState, locksCfg map[*types.Func]bool, report func(token.Pos, string, ...interface{})) lockState {
	if _, ok := node.(*ast.DeferStmt); ok {
		return st
	}

	// Bind the unlock closure of `shards, unlock, err := m.lockOrdered(...)`.
	if as, ok := node.(*ast.AssignStmt); ok && len(as.Rhs) == 1 && len(as.Lhs) >= 2 {
		if call, ok := as.Rhs[0].(*ast.CallExpr); ok {
			if kind, _ := lockEvent(pass, call); kind == evLockOrdered {
				if id, ok := as.Lhs[1].(*ast.Ident); ok {
					if obj := pass.TypesInfo.Defs[id]; obj != nil {
						st.unlock = obj
					} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
						st.unlock = obj
					}
				}
				st.errObj = nil
				if len(as.Lhs) >= 3 {
					if id, ok := as.Lhs[2].(*ast.Ident); ok {
						if obj := pass.TypesInfo.Defs[id]; obj != nil {
							st.errObj = obj
						} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
							st.errObj = obj
						}
					}
				}
			}
		}
	}

	ast.Inspect(node, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit, *ast.DeferStmt:
			return false
		case *ast.CallExpr:
			// Invoking the bound unlock closure releases the set.
			if id, ok := m.Fun.(*ast.Ident); ok && st.unlock != nil && pass.TypesInfo.Uses[id] == st.unlock {
				st.ordered = false
				return true
			}
			kind, field := lockEvent(pass, m)
			switch kind {
			case evLockShard:
				if st.held() {
					report(m.Pos(),
						"second shard lock acquired directly while one is already held; acquire multi-DBC lock sets through lockOrdered")
				}
				st.count++
			case evUnlockShard:
				st.count = max(0, st.count-1)
			case evLockOrdered:
				if st.held() {
					report(m.Pos(),
						"lockOrdered called while a shard lock is already held; merge the lock sets into one lockOrdered call")
				}
				st.ordered = true
			case evLockCfg:
				if st.held() {
					report(m.Pos(),
						"cfg-class mutex %s acquired while a shard lock is held; cfg-class mutexes order before shard locks", field)
				}
			case evNone:
				if st.held() {
					if fn := typeutil.StaticCallee(pass.TypesInfo, m); fn != nil && locksCfg[fn] {
						report(m.Pos(),
							"%s acquires a cfg-class mutex (cfgMu/tableMu) and is called while a shard lock is held; call it before taking shard locks", fn.Name())
					}
				}
			}
		}
		return true
	})
	return st
}
