// Package mem exercises the lockorder analyzer with a self-contained
// replica of the striped-locking memory: per-DBC shard mutexes, the
// coarse cfg-class mutexes, and the ordered multi-lock helper.
package mem

import "sync"

type shard struct {
	mu   sync.Mutex
	rows []int
}

type Memory struct {
	tableMu sync.RWMutex
	shards  map[int]*shard

	cfgMu sync.Mutex
	rec   int
}

// lockOrdered is the one sanctioned multi-shard acquisition path: the
// caller's bases arrive deduplicated and sorted, so the pairwise
// acquisition order is global.
func (m *Memory) lockOrdered(bases []int) ([]*shard, func(), error) {
	shards := make([]*shard, 0, len(bases))
	m.tableMu.RLock()
	for _, b := range bases {
		sh := m.shards[b]
		if sh == nil {
			m.tableMu.RUnlock()
			return nil, nil, errNoShard
		}
		shards = append(shards, sh)
	}
	m.tableMu.RUnlock()
	for _, sh := range shards {
		//coruscantvet:ignore lockorder -- the ordered helper itself: bases are sorted, the order is global
		sh.mu.Lock()
	}
	return shards, func() {
		for i := len(shards) - 1; i >= 0; i-- {
			shards[i].mu.Unlock()
		}
	}, nil
}

type lockErr string

func (e lockErr) Error() string { return string(e) }

const errNoShard = lockErr("no such shard")

// Recorder locks a cfg-class mutex; calling it under a shard lock
// inverts the cfg-before-shard order.
func (m *Memory) Recorder() int {
	m.cfgMu.Lock()
	defer m.cfgMu.Unlock()
	return m.rec
}

// reportHealth reaches Recorder transitively, so it inherits the
// cfg-locking summary.
func (m *Memory) reportHealth() int { return m.Recorder() }

func (m *Memory) directPair(a, b *shard) {
	a.mu.Lock()
	b.mu.Lock() // want `second shard lock acquired directly`
	b.mu.Unlock()
	a.mu.Unlock()
}

func (m *Memory) sequentialPairOK(a, b *shard) {
	a.mu.Lock()
	a.mu.Unlock()
	b.mu.Lock()
	b.mu.Unlock()
}

func (m *Memory) deferredHold(a, b *shard) {
	a.mu.Lock()
	defer a.mu.Unlock() // runs at exit: the lock is held below
	b.mu.Lock()         // want `second shard lock acquired directly`
	b.mu.Unlock()
}

func (m *Memory) cfgUnderShard(a *shard) {
	a.mu.Lock()
	m.cfgMu.Lock() // want `cfg-class mutex cfgMu acquired while a shard lock is held`
	m.cfgMu.Unlock()
	a.mu.Unlock()
}

func (m *Memory) tableUnderOrdered(bases []int) {
	_, unlock, _ := m.lockOrdered(bases)
	defer unlock()
	m.tableMu.RLock() // want `cfg-class mutex tableMu acquired while a shard lock is held`
	m.tableMu.RUnlock()
}

func (m *Memory) callLocksCfgUnderShard(a *shard) {
	a.mu.Lock()
	_ = m.Recorder() // want `Recorder acquires a cfg-class mutex`
	a.mu.Unlock()
}

func (m *Memory) transitiveCallUnderOrdered(bases []int) {
	_, unlock, _ := m.lockOrdered(bases)
	_ = m.reportHealth() // want `reportHealth acquires a cfg-class mutex`
	unlock()
}

func (m *Memory) hoistedRecorderOK(a *shard) {
	rec := m.Recorder() // cfg before shard: the sanctioned order
	a.mu.Lock()
	_ = rec
	a.mu.Unlock()
}

func (m *Memory) unlockedBetweenOK(bases []int, a *shard) {
	_, unlock, _ := m.lockOrdered(bases)
	unlock() // set released: the call below is clean
	_ = m.Recorder()
}

func (m *Memory) orderedThenDirect(bases []int, a *shard) {
	_, unlock, _ := m.lockOrdered(bases)
	defer unlock()
	a.mu.Lock() // want `second shard lock acquired directly`
	a.mu.Unlock()
}

func (m *Memory) cfgThenShardOK() {
	m.cfgMu.Lock()
	var sh shard
	sh.mu.Lock()
	sh.mu.Unlock()
	m.cfgMu.Unlock()
}

func (m *Memory) loopRelockOK(shards []*shard) {
	for _, sh := range shards {
		sh.mu.Lock()
		sh.rows = nil
		sh.mu.Unlock()
	}
}

// errCheckedLoopOK mirrors the serial batch path: the error branch of
// lockOrdered holds nothing, so continuing the loop (and calling a
// cfg-locking function after it) is clean on every path.
func (m *Memory) errCheckedLoopOK(basesList [][]int) {
	for _, bases := range basesList {
		_, unlock, err := m.lockOrdered(bases)
		if err != nil {
			continue
		}
		unlock()
	}
	_ = m.Recorder()
}

func (m *Memory) errCheckedEqlOK(bases []int) {
	_, unlock, err := m.lockOrdered(bases)
	if err == nil {
		unlock()
	}
	_ = m.Recorder()
}

// errCheckedStillHeld: the non-error branch does hold the set, so a
// cfg-locking call before unlock is still flagged.
func (m *Memory) errCheckedStillHeld(bases []int) {
	_, unlock, err := m.lockOrdered(bases)
	if err != nil {
		return
	}
	_ = m.Recorder() // want `Recorder acquires a cfg-class mutex`
	unlock()
}
