package facadeerr_test

import (
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/facadeerr"
)

func TestFacadeErr(t *testing.T) {
	analyzertest.Run(t, "testdata", facadeerr.Analyzer,
		"repro/internal/engine", "repro", "repro/cmd/app")
}
