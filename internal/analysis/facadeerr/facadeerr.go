// Package facadeerr defines an analyzer enforcing the error-surface
// contract of the public façade: the root coruscant package and the
// cmd/ binaries report failures as errors (or usage messages), never as
// panics. Internal packages may panic on programmer error — that is
// their documented style — but the boundary must convert.
//
// The analyzer works in two stages. In every package it computes, by a
// same-package fixpoint, which exported functions can panic: a direct
// call to the panic builtin, or a call to an unexported same-package
// helper that panics. Those functions are tagged with a MayPanicFact,
// which the go/analysis driver serializes across package boundaries.
// Propagation through *exported* callees is deliberately off: an
// exported function is its own contract point, and chaining would tag
// half the tree for one deep panic.
//
// In façade packages — those whose import path matches the -facades
// regexp, default `^repro$|^repro/cmd/` — every panic call and every
// call to a fact-tagged function is reported.
package facadeerr

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"repro/internal/analysis/vetutil"
)

// Name is the analyzer's name, as used in ignore directives.
const Name = "facadeerr"

// MayPanicFact marks an exported function that can reach a panic
// without an intervening recover.
type MayPanicFact struct{}

func (*MayPanicFact) AFact()         {}
func (*MayPanicFact) String() string { return "mayPanic" }

var Analyzer = &analysis.Analyzer{
	Name:      Name,
	Doc:       "the public façade (root package and cmd/) must surface errors, not panics",
	Requires:  []*analysis.Analyzer{inspect.Analyzer},
	FactTypes: []analysis.Fact{new(MayPanicFact)},
	Run:       run,
}

var facadeRE = regexp.MustCompile(`^repro$|^repro/cmd/`)

func init() {
	Analyzer.Flags.Func("facades",
		"regexp matching import paths that must not panic (default `^repro$|^repro/cmd/`)",
		func(s string) error {
			re, err := regexp.Compile(s)
			if err != nil {
				return err
			}
			facadeRE = re
			return nil
		})
}

// funcInfo is the per-function panic summary used by the fixpoint.
type funcInfo struct {
	decl        *ast.FuncDecl
	directPanic bool
	callees     []*types.Func // same-package callees
}

func run(pass *analysis.Pass) (interface{}, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	// Summarize every function in the package.
	infos := map[*types.Func]*funcInfo{}
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
		if !ok || fd.Body == nil {
			return
		}
		info := &funcInfo{decl: fd}
		ast.Inspect(fd.Body, func(m ast.Node) bool {
			if _, ok := m.(*ast.FuncLit); ok {
				return false // a panic inside a closure fires on the closure's call path
			}
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			if isPanicBuiltin(pass, call) {
				info.directPanic = true
				return true
			}
			if callee := calleeFunc(pass, call); callee != nil && callee.Pkg() == pass.Pkg {
				info.callees = append(info.callees, callee)
			}
			return true
		})
		infos[fn] = info
	})

	// Same-package fixpoint: panics propagate through unexported
	// helpers only.
	mayPanic := map[*types.Func]bool{}
	for fn, info := range infos {
		mayPanic[fn] = info.directPanic
	}
	for changed := true; changed; {
		changed = false
		for fn, info := range infos {
			if mayPanic[fn] {
				continue
			}
			for _, callee := range info.callees {
				if !callee.Exported() && mayPanic[callee] {
					mayPanic[fn] = true
					changed = true
					break
				}
			}
		}
	}
	for fn := range infos {
		if mayPanic[fn] && fn.Exported() {
			pass.ExportObjectFact(fn, new(MayPanicFact))
		}
	}

	if !facadeRE.MatchString(pass.Pkg.Path()) {
		return nil, nil
	}

	// Façade package: flag every panic and every call into a tagged
	// entry point, in exported and unexported functions alike (main and
	// its helpers are the whole point of cmd/).
	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		if isPanicBuiltin(pass, call) {
			vetutil.Report(pass, Name, call.Pos(),
				"panic in façade package %s; public entry points must return errors", pass.Pkg.Name())
			return
		}
		callee := calleeFunc(pass, call)
		if callee == nil || callee.Pkg() == pass.Pkg || callee.Pkg() == nil {
			return
		}
		// Only in-module entry points are held to the façade contract:
		// under go vet, facts are computed for the standard library too,
		// and fmt/os would otherwise drown the signal.
		if rootSegment(callee.Pkg().Path()) != rootSegment(pass.Pkg.Path()) {
			return
		}
		if pass.ImportObjectFact(callee, new(MayPanicFact)) {
			vetutil.Report(pass, Name, call.Pos(),
				"call to %s.%s, which may panic; wrap or use an error-returning entry point at the façade",
				callee.Pkg().Name(), callee.Name())
		}
	})
	return nil, nil
}

// rootSegment returns an import path's first segment — the module name
// for in-module packages ("repro/cmd/app" -> "repro").
func rootSegment(path string) string {
	if i := strings.IndexByte(path, '/'); i >= 0 {
		return path[:i]
	}
	return path
}

func isPanicBuiltin(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	_, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin)
	return isBuiltin
}

// calleeFunc resolves the static callee of a call, if it is a declared
// function or method (not a builtin, conversion, or func value).
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}
