package engine

import "errors"

// Unit is a stand-in for an engine object constructed by a panicking
// entry point.
type Unit struct {
	n int
}

// MustPower panics on invalid input: legal in an internal package,
// tagged with a MayPanicFact for callers.
func MustPower(n int) int {
	if n <= 0 || n&(n-1) != 0 {
		panic("engine: n must be a power of two")
	}
	return n
}

// NewUnit reaches a panic through an unexported helper; the fixpoint
// must tag it too.
func NewUnit(n int) *Unit {
	validate(n)
	return &Unit{n: n}
}

func validate(n int) {
	if n < 0 {
		panic("engine: negative size")
	}
}

// Safe is the error-returning twin: no fact.
func Safe(n int) (int, error) {
	if n < 0 {
		return 0, errors.New("engine: negative size")
	}
	return n, nil
}

// Helper calls an exported panicking function. Exported-to-exported
// propagation is deliberately off, so Helper itself carries no fact.
func Helper(n int) int {
	return MustPower(n)
}

// ErrQuarantined mirrors the engine's sentinel errors (ErrBadTRD,
// ErrLaneOverflow, ErrQuarantined): package-level error values the
// façade re-exports for errors.Is.
var ErrQuarantined = errors.New("engine: quarantined")

// CheckHealth wraps the sentinel with %w — the taxonomy style. Error
// construction and wrapping must never be confused with panicking.
func CheckHealth(n int) error {
	if n < 0 {
		return errors.Join(ErrQuarantined, errors.New("negative"))
	}
	return nil
}
