// Package coruscant mirrors the real root façade: import path "repro",
// matched by the default -facades regexp.
package coruscant

import "repro/internal/engine"

// BadNew forwards to a constructor that panics via an unexported
// helper.
func BadNew(n int) *engine.Unit {
	return engine.NewUnit(n) // want `call to engine\.NewUnit, which may panic`
}

// BadPower forwards to a directly panicking entry point.
func BadPower(n int) int {
	return engine.MustPower(n) // want `call to engine\.MustPower, which may panic`
}

// BadPanic panics in the façade itself.
func BadPanic(n int) int {
	if n < 0 {
		panic("coruscant: negative") // want `panic in façade package coruscant`
	}
	return n
}

// GoodSafe surfaces the error.
func GoodSafe(n int) (int, error) {
	return engine.Safe(n)
}

// GoodHelper calls an exported function that itself calls a panicking
// exported function: no fact chains through exported callees.
func GoodHelper(n int) int {
	return engine.Helper(n)
}

// SuppressedMust documents a deliberate panic passthrough.
func SuppressedMust(n int) int {
	//coruscantvet:ignore facadeerr -- Must-style constructor, documented to panic
	return engine.MustPower(n)
}

// ErrQuarantined re-exports an internal sentinel, the error-taxonomy
// pattern of the real façade: assignment of an error value is not a
// panic path and must not be flagged.
var ErrQuarantined = engine.ErrQuarantined

// GoodSentinel surfaces a wrapped sentinel through the façade.
func GoodSentinel(n int) error {
	return engine.CheckHealth(n)
}
