// Command app mirrors a cmd/ binary: unexported main is still part of
// the façade surface.
package main

import (
	"fmt"
	"os"

	"repro/internal/engine"
)

func main() {
	u := engine.NewUnit(8) // want `call to engine\.NewUnit, which may panic`
	fmt.Println(u)
}

// run is the error-returning shape the façade should use.
func run() error {
	n, err := engine.Safe(8)
	if err != nil {
		return err
	}
	if n == 0 {
		fmt.Fprintln(os.Stderr, "empty")
	}
	return nil
}
