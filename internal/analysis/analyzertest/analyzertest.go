// Package analyzertest is a self-contained replacement for
// golang.org/x/tools/go/analysis/analysistest. The real analysistest
// loads packages through go/packages, which is not part of the analysis
// subset vendored under third_party/ (it would drag in go/gcexportdata,
// x/mod and an external driver); this harness instead parses and
// type-checks the fixture packages directly, resolving standard-library
// imports with the source importer and sibling fixtures by their
// testdata path.
//
// Semantics follow analysistest where it matters:
//
//   - fixtures live under <analyzer>/testdata/src/<importpath>/*.go;
//   - a `// want "regexp" ["regexp" ...]` comment asserts the
//     diagnostics reported on its line, one regexp per diagnostic;
//   - analyzers listed in Requires run first and their results are
//     available through pass.ResultOf;
//   - object/package facts exported while analyzing an imported fixture
//     package are visible when the importing fixture is analyzed, so
//     fact-based analyzers (facadeerr) are testable cross-package.
package analyzertest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// Run analyzes the fixture packages named by their import paths under
// testdata/src and reports any mismatch against the // want annotations
// via t. testdata is the path of the testdata directory, typically
// "testdata" relative to the analyzer's own test.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	r := &runner{
		fset:     token.NewFileSet(),
		srcdir:   filepath.Join(testdata, "src"),
		pkgs:     map[string]*fixturePkg{},
		results:  map[resultKey]*action{},
		objFacts: map[types.Object][]analysis.Fact{},
		pkgFacts: map[*types.Package][]analysis.Fact{},
	}
	r.std = importer.ForCompiler(r.fset, "source", nil)
	for _, path := range paths {
		fp, err := r.load(path)
		if err != nil {
			t.Fatalf("loading fixture %q: %v", path, err)
		}
		act, err := r.analyze(a, fp)
		if err != nil {
			t.Fatalf("running %s on %q: %v", a.Name, path, err)
		}
		r.check(t, fp, act.diags)
	}
}

type resultKey struct {
	pkg string
	a   *analysis.Analyzer
}

// action is the memoized outcome of one (package, analyzer) run.
type action struct {
	result interface{}
	diags  []analysis.Diagnostic
}

type fixturePkg struct {
	path  string
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
}

type runner struct {
	fset     *token.FileSet
	srcdir   string
	std      types.Importer
	pkgs     map[string]*fixturePkg
	results  map[resultKey]*action
	objFacts map[types.Object][]analysis.Fact
	pkgFacts map[*types.Package][]analysis.Fact
}

// Import implements types.Importer: fixture packages shadow the
// standard library so fixtures can import each other by testdata path.
func (r *runner) Import(path string) (*types.Package, error) {
	if _, err := os.Stat(filepath.Join(r.srcdir, path)); err == nil {
		fp, err := r.load(path)
		if err != nil {
			return nil, err
		}
		return fp.pkg, nil
	}
	return r.std.Import(path)
}

func (r *runner) load(path string) (*fixturePkg, error) {
	if fp, ok := r.pkgs[path]; ok {
		return fp, nil
	}
	dir := filepath.Join(r.srcdir, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(r.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := &types.Info{
		Types:        map[ast.Expr]types.TypeAndValue{},
		Instances:    map[*ast.Ident]types.Instance{},
		Defs:         map[*ast.Ident]types.Object{},
		Uses:         map[*ast.Ident]types.Object{},
		Implicits:    map[ast.Node]types.Object{},
		Selections:   map[*ast.SelectorExpr]*types.Selection{},
		Scopes:       map[ast.Node]*types.Scope{},
		FileVersions: map[*ast.File]string{},
	}
	conf := types.Config{Importer: r}
	pkg, err := conf.Check(path, r.fset, files, info)
	if err != nil {
		return nil, err
	}
	fp := &fixturePkg{path: path, files: files, pkg: pkg, info: info}
	r.pkgs[path] = fp
	return fp, nil
}

// analyze runs a (and transitively its Requires) on fp, after first
// running a on any imported fixture packages so facts flow in
// dependency order as they would under unitchecker.
func (r *runner) analyze(a *analysis.Analyzer, fp *fixturePkg) (*action, error) {
	key := resultKey{fp.path, a}
	if act, done := r.results[key]; done {
		return act, nil
	}
	for _, imp := range fp.pkg.Imports() {
		if dep, ok := r.pkgs[imp.Path()]; ok {
			if _, err := r.analyze(a, dep); err != nil {
				return nil, err
			}
		}
	}
	deps := map[*analysis.Analyzer]interface{}{}
	for _, req := range a.Requires {
		act, err := r.analyze(req, fp)
		if err != nil {
			return nil, err
		}
		deps[req] = act.result
	}
	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:   a,
		Fset:       r.fset,
		Files:      fp.files,
		Pkg:        fp.pkg,
		TypesInfo:  fp.info,
		TypesSizes: types.SizesFor("gc", "amd64"),
		ResultOf:   deps,
		Report:     func(d analysis.Diagnostic) { diags = append(diags, d) },
		ImportObjectFact: func(obj types.Object, fact analysis.Fact) bool {
			return lookupFact(r.objFacts[obj], fact)
		},
		ImportPackageFact: func(pkg *types.Package, fact analysis.Fact) bool {
			return lookupFact(r.pkgFacts[pkg], fact)
		},
		ExportObjectFact: func(obj types.Object, fact analysis.Fact) {
			r.objFacts[obj] = append(r.objFacts[obj], fact)
		},
		ExportPackageFact: func(fact analysis.Fact) {
			r.pkgFacts[fp.pkg] = append(r.pkgFacts[fp.pkg], fact)
		},
		AllObjectFacts: func() []analysis.ObjectFact {
			var out []analysis.ObjectFact
			for obj, facts := range r.objFacts {
				for _, f := range facts {
					out = append(out, analysis.ObjectFact{Object: obj, Fact: f})
				}
			}
			return out
		},
		AllPackageFacts: func() []analysis.PackageFact {
			var out []analysis.PackageFact
			for pkg, facts := range r.pkgFacts {
				for _, f := range facts {
					out = append(out, analysis.PackageFact{Package: pkg, Fact: f})
				}
			}
			return out
		},
		ReadFile: os.ReadFile,
	}
	res, err := a.Run(pass)
	if err != nil {
		return nil, err
	}
	act := &action{result: res, diags: diags}
	r.results[key] = act
	return act, nil
}

// lookupFact copies the stored fact with the same concrete type as the
// query into it, reporting whether one was found.
func lookupFact(stored []analysis.Fact, query analysis.Fact) bool {
	qt := reflect.TypeOf(query)
	for _, f := range stored {
		if reflect.TypeOf(f) == qt {
			reflect.ValueOf(query).Elem().Set(reflect.ValueOf(f).Elem())
			return true
		}
	}
	return false
}

// expectation is one // want regexp with its file/line anchor.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	used bool
}

func (r *runner) check(t *testing.T, fp *fixturePkg, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range fp.files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := r.fset.Position(c.Pos())
				for _, pat := range parseWants(t, pos, strings.TrimPrefix(text, "want ")) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	for _, d := range diags {
		pos := r.fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.used && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.used {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}

// parseWants splits `"re1" "re2"` into its quoted regexps.
func parseWants(t *testing.T, pos token.Position, s string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		if s[0] != '"' && s[0] != '`' {
			t.Fatalf("%s: malformed want comment near %q", pos, s)
		}
		quote := s[0]
		end := 1
		for end < len(s) {
			if s[end] == quote && (quote == '`' || s[end-1] != '\\') {
				break
			}
			end++
		}
		if end == len(s) {
			t.Fatalf("%s: unterminated want regexp in %q", pos, s)
		}
		pat, err := strconv.Unquote(s[:end+1])
		if err != nil {
			t.Fatalf("%s: bad want regexp %q: %v", pos, s[:end+1], err)
		}
		out = append(out, pat)
		s = strings.TrimSpace(s[end+1:])
	}
	return out
}
