package spanbalance_test

import (
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/spanbalance"
)

func TestSpanBalance(t *testing.T) {
	analyzertest.Run(t, "testdata", spanbalance.Analyzer, "telemetry", "a", "replay")
}
