// Package spanbalance defines a flow-sensitive analyzer enforcing the
// telemetry recorder contract: every span opened in non-test code must
// be closed on every control-flow path out of the function — including
// early returns and panic exits.
//
// The recorder keeps a per-source span stack; an unclosed span skews
// every enclosing duration and, under the capture-replay batching
// engine, corrupts the replayed event stream for the whole bank. The
// safe idiom is `defer rec.Span(src, name)()`; this analyzer exists for
// the places that cannot use it and thread the closer by hand.
//
// Two opener shapes are recognized structurally (so the self-contained
// fixtures work like the production types):
//
//   - a method named Span returning exactly func() — the closer must be
//     invoked, deferred, returned, or otherwise escape on every path;
//   - a method named Begin on a type that also has an End method — an
//     End call (or a deferred End) must follow on every path.
//
// Balance is checked over the ctrlflow CFG, so loops, early returns and
// no-return calls (panic, log.Fatal) are all walked precisely.
package spanbalance

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/ctrlflow"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/cfg"

	"golang.org/x/tools/go/analysis/passes/inspect"

	"repro/internal/analysis/vetutil"
)

// Name is the analyzer's name, as used in ignore directives.
const Name = "spanbalance"

var Analyzer = &analysis.Analyzer{
	Name:     Name,
	Doc:      "telemetry spans must be closed on every control-flow path (recorder span stacks are per-source; a leaked closer skews every enclosing duration)",
	Requires: []*analysis.Analyzer{inspect.Analyzer, ctrlflow.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	cfgs := pass.ResultOf[ctrlflow.Analyzer].(*ctrlflow.CFGs)

	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil), (*ast.FuncLit)(nil)}, func(n ast.Node) {
		var g *cfg.CFG
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body == nil {
				return
			}
			g = cfgs.FuncDecl(fn)
		case *ast.FuncLit:
			g = cfgs.FuncLit(fn)
		}
		if g != nil {
			checkFunc(pass, g)
		}
	})
	return nil, nil
}

// checkFunc finds every span opener in the function's CFG and verifies
// each one is balanced along all paths from its program point.
func checkFunc(pass *analysis.Pass, g *cfg.CFG) {
	for _, b := range g.Blocks {
		if !b.Live {
			continue
		}
		for i, node := range b.Nodes {
			for _, op := range openersIn(pass, node) {
				checkOpener(pass, g, b, i, node, op)
			}
		}
	}
}

// opener is one span-opening call found inside a CFG node.
type opener struct {
	call  *ast.CallExpr
	span  bool         // Span-returning-closer shape (vs Begin/End)
	recv  types.Type   // receiver type, for End matching
	fnPos ast.Node     // the syntactic context the call appears in
	obj   types.Object // closer variable, when bound to one
}

// openersIn returns the span openers contained in one CFG node,
// classified by syntactic context. Openers whose closer escapes
// immediately — returned, passed to a call, immediately deferred as
// `defer Span(...)()` — are not returned: they are balanced by
// construction or become the caller's responsibility.
func openersIn(pass *analysis.Pass, node ast.Node) []opener {
	var out []opener
	switch s := node.(type) {
	case *ast.DeferStmt:
		if isSpanCall(pass, s.Call) {
			// `defer rec.Span(x)` without the trailing (): the opener
			// runs at exit and its closer is dropped on the floor.
			out = append(out, opener{call: s.Call, span: true, fnPos: s})
		}
		// `defer rec.Span(x)()` (s.Call.Fun is the opener) is the safe
		// idiom; `defer r.End(..)`/`defer done()` are consumptions seen
		// by the path walk, not openers.
		return out
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if isSpanCall(pass, call) {
				// Closer produced and immediately discarded.
				out = append(out, opener{call: call, span: true, fnPos: s})
			} else if rt, ok := isBeginCall(pass, call); ok {
				out = append(out, opener{call: call, recv: rt, fnPos: s})
			}
		}
		return out
	case *ast.AssignStmt:
		if len(s.Lhs) == 1 && len(s.Rhs) == 1 {
			if call, ok := s.Rhs[0].(*ast.CallExpr); ok && isSpanCall(pass, call) {
				if id, ok := s.Lhs[0].(*ast.Ident); ok {
					obj := pass.TypesInfo.Defs[id]
					if obj == nil {
						obj = pass.TypesInfo.Uses[id]
					}
					if obj != nil {
						out = append(out, opener{call: call, span: true, obj: obj, fnPos: s})
						return out
					}
				}
			}
		}
	case *ast.ValueSpec:
		if len(s.Names) == 1 && len(s.Values) == 1 {
			if call, ok := s.Values[0].(*ast.CallExpr); ok && isSpanCall(pass, call) {
				if obj := pass.TypesInfo.Defs[s.Names[0]]; obj != nil {
					out = append(out, opener{call: call, span: true, obj: obj, fnPos: s})
					return out
				}
			}
		}
	}
	// Bare Begin calls may also hide inside other statements
	// (e.g. `if cond { r.Begin(..) }` puts the call in an ExprStmt,
	// already handled; Begin used as an expression cannot occur — it
	// has no results). Span calls in any other position (return value,
	// call argument, composite literal) escape and are the consumer's
	// responsibility.
	return out
}

// isSpanCall reports whether call invokes a method named Span on some
// receiver returning exactly `func()` — the telemetry closer shape.
func isSpanCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn := callee(pass, call)
	if fn == nil || fn.Name() != "Span" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || sig.Results().Len() != 1 {
		return false
	}
	res, ok := sig.Results().At(0).Type().Underlying().(*types.Signature)
	return ok && res.Params().Len() == 0 && res.Results().Len() == 0
}

// isBeginCall reports whether call invokes a method named Begin on a
// type that also has an End method, returning that receiver type.
func isBeginCall(pass *analysis.Pass, call *ast.CallExpr) (types.Type, bool) {
	fn := callee(pass, call)
	if fn == nil || fn.Name() != "Begin" {
		return nil, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil, false
	}
	rt := sig.Recv().Type()
	if !hasMethod(rt, "End") {
		return nil, false
	}
	return rt, true
}

func callee(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	return fn
}

func hasMethod(t types.Type, name string) bool {
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	for i := 0; i < named.NumMethods(); i++ {
		if named.Method(i).Name() == name {
			return true
		}
	}
	return false
}

// checkOpener walks every CFG path from the opener's program point and
// reports if some path reaches a function exit (return or no-return
// call such as panic) with the span still open.
func checkOpener(pass *analysis.Pass, g *cfg.CFG, b *cfg.Block, idx int, node ast.Node, op opener) {
	if op.span && op.obj == nil {
		// Discarded closer (`rec.Span(x)` as a statement) or a deferred
		// opener (`defer rec.Span(x)`): unbalanced by construction.
		vetutil.Report(pass, Name, op.call.Pos(),
			"span closer is dropped: call it, defer it (`defer ...Span(...)()`), or bind it")
		return
	}

	// The opener's own statement may also consume it (e.g. a
	// self-contained `done := span(); done()` rewritten by gofmt onto
	// one line is impossible in Go, so start strictly after).
	visited := make(map[int32]bool)
	var walk func(blk *cfg.Block, from int) bool
	walk = func(blk *cfg.Block, from int) bool {
		for i := from; i < len(blk.Nodes); i++ {
			n := blk.Nodes[i]
			if op.span {
				switch consume(pass, n, op.obj) {
				case consumed:
					return true
				case killed:
					vetutil.Report(pass, Name, n.Pos(),
						"span closer reassigned before being called; the open span leaks")
					return true // don't double-report the exit paths
				}
			} else if endsSpan(pass, n, op.recv) {
				return true
			}
		}
		if len(blk.Succs) == 0 {
			return false // exit reached, still open
		}
		for _, s := range blk.Succs {
			if visited[s.Index] {
				continue
			}
			visited[s.Index] = true
			if !walk(s, 0) {
				return false
			}
		}
		return true
	}
	if !walk(b, idx+1) {
		if op.span {
			vetutil.Report(pass, Name, op.call.Pos(),
				"span closer is not called on every path to return/panic; use `defer ...Span(...)()`")
		} else {
			vetutil.Report(pass, Name, op.call.Pos(),
				"Begin without a matching End on every path to return/panic")
		}
	}
}

type consumption int

const (
	untouched consumption = iota
	consumed
	killed
)

// consume classifies what one CFG node does with the closer variable:
// any appearance of the variable — a call, a defer, a return, an
// argument, a capture by a closure — counts as consumption (the closer
// escaped to something responsible for it), except a plain reassignment
// that overwrites the closer before any use, which kills it.
func consume(pass *analysis.Pass, n ast.Node, obj types.Object) consumption {
	if as, ok := n.(*ast.AssignStmt); ok && len(as.Lhs) == 1 {
		if id, ok := as.Lhs[0].(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			// Overwritten. Uses on the RHS (e.g. `done = wrap(done)`)
			// still count as consumption first.
			for _, rhs := range as.Rhs {
				if usesObj(pass, rhs, obj) {
					return consumed
				}
			}
			return killed
		}
	}
	if usesObj(pass, n, obj) {
		return consumed
	}
	return untouched
}

func usesObj(pass *analysis.Pass, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// endsSpan reports whether the node contains a call to an End method on
// the given receiver type (including inside a defer or a closure that
// escapes through this node).
func endsSpan(pass *analysis.Pass, n ast.Node, recv types.Type) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		fn := callee(pass, call)
		if fn == nil || fn.Name() != "End" {
			return true
		}
		sig, ok := fn.Type().(*types.Signature)
		if ok && sig.Recv() != nil && types.Identical(sig.Recv().Type(), recv) {
			found = true
		}
		return !found
	})
	return found
}
