// Package telemetry is a self-contained stand-in for the production
// recorder: the analyzer matches its Span/Begin/End methods
// structurally, so the fixture behaves exactly like the real type.
package telemetry

// Source tags an event stream.
type Source string

// Recorder keeps a per-source span stack.
type Recorder struct{ depth int }

// Begin opens a span.
func (r *Recorder) Begin(src Source, name string) { r.depth++ }

// End closes the innermost span.
func (r *Recorder) End(src Source) { r.depth-- }

// Span opens a span and returns its closer.
func (r *Recorder) Span(src Source, name string) func() {
	r.Begin(src, name)
	return func() { r.End(src) }
}
