// Package a exercises the spanbalance analyzer: spans must be closed
// on every control-flow path, including early returns and panics.
package a

import "telemetry"

const src = telemetry.Source("a")

// Unit mirrors the pim.Unit wrapper: a Span method returning the
// closer of an inner recorder span. The opener escapes via return, so
// the wrapper itself is balanced by construction.
type Unit struct{ rec *telemetry.Recorder }

func (u *Unit) Span(name string) func() { return u.rec.Span(src, name) }

func deferredIdiom(rec *telemetry.Recorder) {
	defer rec.Span(src, "ok")() // the safe idiom
}

func discarded(rec *telemetry.Recorder) {
	rec.Span(src, "oops") // want `span closer is dropped`
}

func deferredOpener(rec *telemetry.Recorder) {
	defer rec.Span(src, "oops") // want `span closer is dropped`
}

func closerAllPaths(rec *telemetry.Recorder, fail bool) error {
	done := rec.Span(src, "ok")
	if fail {
		done()
		return errEarly
	}
	done()
	return nil
}

func closerLeaksOnEarlyReturn(rec *telemetry.Recorder, fail bool) error {
	done := rec.Span(src, "oops") // want `not called on every path`
	if fail {
		return errEarly // leaks here
	}
	done()
	return nil
}

func closerLeaksOnPanic(rec *telemetry.Recorder, fail bool) {
	done := rec.Span(src, "oops") // want `not called on every path`
	if fail {
		panic("boom") // leaks here
	}
	done()
}

func closerReturned(rec *telemetry.Recorder) func() {
	return rec.Span(src, "ok") // escapes: the caller owns it
}

func closerBoundAndReturned(rec *telemetry.Recorder) func() {
	done := rec.Span(src, "ok")
	return done
}

func closerReassigned(rec *telemetry.Recorder) {
	done := rec.Span(src, "first")
	done = rec.Span(src, "second") // want `reassigned before being called`
	done()
}

func closerHandedOff(rec *telemetry.Recorder) {
	done := rec.Span(src, "ok")
	runLater(done) // consumption: the callee owns it now
}

func sequentialSpans(rec *telemetry.Recorder) {
	done := rec.Span(src, "first")
	done()
	done = rec.Span(src, "second")
	done()
}

func beginBalanced(rec *telemetry.Recorder) {
	rec.Begin(src, "ok")
	rec.End(src)
}

func beginDeferredEnd(rec *telemetry.Recorder, fail bool) error {
	rec.Begin(src, "ok")
	defer rec.End(src)
	if fail {
		return errEarly
	}
	return nil
}

func beginLeaksOnEarlyReturn(rec *telemetry.Recorder, fail bool) error {
	rec.Begin(src, "oops") // want `Begin without a matching End`
	if fail {
		return errEarly // leaks here
	}
	rec.End(src)
	return nil
}

func insideClosure(rec *telemetry.Recorder, fail bool) {
	f := func() {
		done := rec.Span(src, "oops") // want `not called on every path`
		if fail {
			return
		}
		done()
	}
	f()
}

var errEarly = errorString("early")

type errorString string

func (e errorString) Error() string { return string(e) }

func runLater(f func()) { f() }
