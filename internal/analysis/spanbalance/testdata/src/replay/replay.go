// Package replay models the capture-replay merge path of the batch
// engine (telemetry.Recorder.Replay): a loop that mirrors recorded
// Begin/End pairs into a recorder verbatim. Span balance was already
// enforced when the events were captured, so the replaying Begin cannot
// be matched path-locally — the production code vouches for it with a
// line-targeted //coruscantvet:ignore directive. These fixtures pin the
// contract around that: the targeted directive (with a reason) silences
// exactly its line, the same loop without a directive still fires, a
// reasonless directive is void, and the batch serial fast path's
// `defer rec.Span(...)()` bracketing needs no directive at all.
package replay

import "telemetry"

// Phase mirrors the telemetry event phases the replay loop dispatches
// on.
type Phase int

const (
	// PhaseBegin opens a span.
	PhaseBegin Phase = iota
	// PhaseEnd closes the innermost span.
	PhaseEnd
)

// Event is one captured telemetry event.
type Event struct {
	Phase Phase
	Src   telemetry.Source
	Name  string
}

const src = telemetry.Source("replay")

// replayInPlace is the production idiom: the Begin mirrors a recorded
// pair whose balance was checked at capture time, vouched for by a
// line-targeted directive with a reason. No diagnostic.
func replayInPlace(rec *telemetry.Recorder, events []Event) {
	for _, e := range events {
		switch e.Phase {
		case PhaseBegin:
			//coruscantvet:ignore spanbalance -- replay mirrors recorded Begin/End pairs verbatim; balance was checked at capture time
			rec.Begin(e.Src, e.Name)
		case PhaseEnd:
			rec.End(e.Src)
		}
	}
}

// replayUnvouched is the same loop without the directive: the End in
// the sibling case runs on a different iteration's path, so the Begin
// must still be flagged — suppression is per-line, never blanket.
func replayUnvouched(rec *telemetry.Recorder, events []Event) {
	for _, e := range events {
		switch e.Phase {
		case PhaseBegin:
			rec.Begin(e.Src, e.Name) // want `Begin without a matching End`
		case PhaseEnd:
			rec.End(e.Src)
		}
	}
}

// replayReasonless carries a directive without the mandatory
// " -- reason" tail: the directive is void and the diagnostic stands.
func replayReasonless(rec *telemetry.Recorder, events []Event) {
	for _, e := range events {
		switch e.Phase {
		case PhaseBegin:
			//coruscantvet:ignore spanbalance
			rec.Begin(e.Src, e.Name) // want `Begin without a matching End`
		case PhaseEnd:
			rec.End(e.Src)
		}
	}
}

// windowedFastPath models the batch engine's serial fast path: the
// whole batch bracketed by a deferred span, each group's work under its
// own immediately-closed span. Balanced by construction — no directive
// needed.
func windowedFastPath(rec *telemetry.Recorder, groups int) {
	defer rec.Span(src, "batch")()
	for g := 0; g < groups; g++ {
		done := rec.Span(src, "group")
		done()
	}
}

var _ = replayInPlace
var _ = replayUnvouched
var _ = replayReasonless
var _ = windowedFastPath
