// Package resilient is the fault-recovery layer of the CORUSCANT
// engine: it wraps PIM execution in a detect → retry → degrade loop so
// the transient shift/TR faults of the §V-F fault model no longer
// silently poison results.
//
// The building blocks the paper provides are passive: device.FaultInjector
// perturbs transverse reads, pim.Unit.Vote implements the §III-F
// N-modular-redundancy majority, and internal/reliability predicts the
// resulting error rates. This package turns them into a runtime
// protocol:
//
//   - Detection. A Policy selects a verification mode per operation:
//     VerifyNMR executes the operation N ∈ {3,5,7} times and compares
//     the replicas (unanimity = verified; any disagreement = detected
//     fault), VerifyDup executes twice and compares, VerifyOff passes
//     through with zero overhead.
//   - Retry. A detected fault triggers bounded re-execution. Between
//     attempts the controller stalls the DBC for a deterministic
//     backoff-in-cycles (BackoffCycles << attempt), priced into
//     trace.Stats (StallSteps) and the telemetry clock, so recovery
//     cost is visible in every report the simulator produces.
//   - Degradation. When retries are exhausted, VerifyNMR falls back to
//     the device-level majority vote (§III-F) over the last replica
//     set — a best-effort result plus a "giveup" telemetry mark —
//     while VerifyDup, which cannot correct, surfaces ErrUnverified.
//
// Every recovery decision is emitted on the telemetry stream under
// Source "resilient": fault instants for detections, marks for retries,
// give-ups and quarantines. memory.Memory couples this executor with a
// per-DBC health ledger that quarantines clusters whose detected-fault
// count crosses Policy.QuarantineAfter and remaps them to spare DBCs
// (see memory's health ledger), and the Campaign type drives Monte
// Carlo fault sweeps through the recovered path to measure delivered
// versus raw error rates.
package resilient

import (
	"errors"
	"fmt"

	"repro/internal/dbc"
	"repro/internal/params"
	"repro/internal/pim"
	"repro/internal/telemetry"
)

// Source tags every telemetry event the recovery layer emits.
const Source = telemetry.Source("resilient")

// ErrUnverified reports a result that failed verification and exhausted
// its retry budget under a policy that cannot correct (VerifyDup).
// Test with errors.Is.
var ErrUnverified = errors.New("resilient: result unverified after retry budget")

// VerifyMode selects how an operation's result is checked.
type VerifyMode int

const (
	// VerifyOff disables verification: one execution, no checks, no
	// overhead (the zero value, so a zero Policy is a no-op).
	VerifyOff VerifyMode = iota
	// VerifyNMR executes the operation N times and requires unanimity,
	// falling back to the §III-F majority vote when retries run out.
	VerifyNMR
	// VerifyDup executes the operation twice and requires agreement;
	// disagreement after the retry budget is ErrUnverified.
	VerifyDup
)

func (v VerifyMode) String() string {
	switch v {
	case VerifyOff:
		return "off"
	case VerifyNMR:
		return "nmr"
	case VerifyDup:
		return "dup"
	}
	return fmt.Sprintf("verify(%d)", int(v))
}

// Policy configures the recovery protocol. The zero value disables
// recovery entirely.
type Policy struct {
	Verify VerifyMode
	// NMR is the replica count for VerifyNMR: 3, 5 or 7, and at most
	// the TRD of the executing unit (the §III-F vote needs the replicas
	// in one TR window).
	NMR int
	// MaxRetries bounds re-execution after a detected fault; 0 means
	// detect-only (accept the degraded result immediately).
	MaxRetries int
	// BackoffCycles is the base stall between attempts; retry k stalls
	// BackoffCycles<<k cycles (deterministic exponential backoff, priced
	// as trace.Stats.StallSteps).
	BackoffCycles int
	// QuarantineAfter is the number of detected faults on one DBC after
	// which memory.Memory quarantines and remaps it; 0 never
	// quarantines.
	QuarantineAfter int
}

// Enabled reports whether the policy performs any verification.
func (p Policy) Enabled() bool { return p.Verify != VerifyOff }

// Replicas returns the number of executions one verified attempt costs.
func (p Policy) Replicas() int {
	switch p.Verify {
	case VerifyNMR:
		return p.NMR
	case VerifyDup:
		return 2
	}
	return 1
}

// Validate reports policy encoding errors.
func (p Policy) Validate() error {
	switch p.Verify {
	case VerifyOff, VerifyDup:
	case VerifyNMR:
		if p.NMR != 3 && p.NMR != 5 && p.NMR != 7 {
			return fmt.Errorf("resilient: NMR degree %d (want 3, 5 or 7): %w", p.NMR, params.ErrBadTRD)
		}
	default:
		return fmt.Errorf("resilient: unknown verify mode %d", int(p.Verify))
	}
	if p.MaxRetries < 0 {
		return fmt.Errorf("resilient: negative retry budget %d", p.MaxRetries)
	}
	if p.BackoffCycles < 0 {
		return fmt.Errorf("resilient: negative backoff %d", p.BackoffCycles)
	}
	if p.QuarantineAfter < 0 {
		return fmt.Errorf("resilient: negative quarantine threshold %d", p.QuarantineAfter)
	}
	return nil
}

func (p Policy) String() string {
	switch p.Verify {
	case VerifyNMR:
		return fmt.Sprintf("nmr%d", p.NMR)
	default:
		return p.Verify.String()
	}
}

// ParsePolicy decodes the CLI spelling of a policy: "off", "dup",
// "nmr3", "nmr5" or "nmr7". Retry budget and thresholds come from
// DefaultPolicy and can be adjusted on the result.
func ParsePolicy(s string) (Policy, error) {
	p := DefaultPolicy()
	switch s {
	case "off", "":
		p.Verify = VerifyOff
	case "dup":
		p.Verify = VerifyDup
	case "nmr3", "nmr5", "nmr7":
		p.Verify = VerifyNMR
		p.NMR = int(s[3] - '0')
	default:
		return Policy{}, fmt.Errorf("resilient: unknown policy %q (want off, dup, nmr3, nmr5 or nmr7)", s)
	}
	return p, nil
}

// DefaultPolicy returns the reference protection level: triple modular
// redundancy with a small retry budget and an 8-cycle base backoff —
// the cheapest §III-F configuration that still corrects.
func DefaultPolicy() Policy {
	return Policy{Verify: VerifyNMR, NMR: 3, MaxRetries: 3, BackoffCycles: 8, QuarantineAfter: 0}
}

// Outcome summarizes one recovered execution.
type Outcome struct {
	Attempts    int  // verified attempts executed (1 when clean)
	Detected    int  // attempts whose replicas disagreed
	Retries     int  // re-executions after a detection
	StallCycles int  // backoff cycles priced into the trace
	GaveUp      bool // retry budget exhausted
	Voted       bool // result came from the §III-F majority vote
}

// Executor runs operations on one PIM unit under a recovery policy. It
// is single-threaded, like the unit it fronts; concurrent callers get
// one executor each (memory.Memory keeps one per PIM shard). The
// replica scratch is reused across calls, so the steady-state verified
// path allocates only what the wrapped operation itself allocates.
type Executor struct {
	U      *pim.Unit
	Policy Policy

	replicas []dbc.Row
}

// NewExecutor wraps a unit with a recovery policy.
func NewExecutor(u *pim.Unit, p Policy) (*Executor, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.Verify == VerifyNMR && !u.ValidNMR(p.NMR) {
		return nil, fmt.Errorf("resilient: NMR degree %d exceeds %v window: %w",
			p.NMR, u.TRD(), params.ErrBadTRD)
	}
	return &Executor{U: u, Policy: p}, nil
}

// Do executes op under the policy and returns the delivered row, the
// recovery outcome, and any error. name labels the operation in
// telemetry marks. The VerifyOff path is a plain call: no allocation,
// no extra cycles.
//
// op must be re-executable: it is invoked Policy.Replicas() times per
// attempt, and again on every retry. All PIM operations qualify — they
// are deterministic up to injected faults, which is exactly what the
// replica comparison detects.
func (e *Executor) Do(name string, op func() (dbc.Row, error)) (dbc.Row, Outcome, error) {
	var out Outcome
	if !e.Policy.Enabled() {
		out.Attempts = 1
		row, err := op()
		return row, out, err
	}
	n := e.Policy.Replicas()
	if cap(e.replicas) < n {
		e.replicas = make([]dbc.Row, n)
	}
	replicas := e.replicas[:n]
	rec := e.U.Recorder()

	for attempt := 0; ; attempt++ {
		out.Attempts++
		for i := 0; i < n; i++ {
			r, err := op()
			if err != nil {
				return dbc.Row{}, out, err
			}
			replicas[i] = r
		}
		if unanimous(replicas) {
			return replicas[0], out, nil
		}
		out.Detected++
		rec.Fault(Source, "detect:"+name, disagreeing(replicas))
		if attempt < e.Policy.MaxRetries {
			out.Retries++
			stall := e.Policy.BackoffCycles << attempt
			if stall > 0 {
				out.StallCycles += stall
				e.U.D.Tracer().Stall(stall)
				rec.Stall(Source, stall)
			}
			rec.Mark(Source, "retry:"+name, attempt+1)
			continue
		}
		// Budget exhausted: degrade.
		out.GaveUp = true
		rec.Mark(Source, "giveup:"+name, out.Attempts)
		if e.Policy.Verify == VerifyNMR {
			row, err := e.U.Vote(replicas)
			if err != nil {
				return dbc.Row{}, out, err
			}
			out.Voted = true
			return row, out, nil
		}
		return replicas[0], out, fmt.Errorf("resilient: %s disagreed on %d attempts: %w",
			name, out.Attempts, ErrUnverified)
	}
}

// unanimous reports whether every replica equals the first.
func unanimous(rows []dbc.Row) bool {
	for _, r := range rows[1:] {
		if !r.Equal(rows[0]) {
			return false
		}
	}
	return true
}

// disagreeing counts the replicas that differ from the first — the
// wire payload of the detection fault event.
func disagreeing(rows []dbc.Row) int {
	n := 0
	for _, r := range rows[1:] {
		if !r.Equal(rows[0]) {
			n++
		}
	}
	return n
}
