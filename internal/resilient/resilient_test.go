package resilient

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/dbc"
	"repro/internal/params"
	"repro/internal/pim"
	"repro/internal/telemetry"
)

func testUnit(t *testing.T) *pim.Unit {
	t.Helper()
	cfg := params.DefaultConfig()
	cfg.Geometry.TrackWidth = 8
	u, err := pim.NewUnit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func row8(v uint64) dbc.Row { return pim.MustPackLanes([]uint64{v}, 8, 8) }

func TestPolicyValidate(t *testing.T) {
	cases := []struct {
		p  Policy
		ok bool
	}{
		{Policy{}, true},
		{Policy{Verify: VerifyDup, MaxRetries: 3}, true},
		{Policy{Verify: VerifyNMR, NMR: 3}, true},
		{Policy{Verify: VerifyNMR, NMR: 5}, true},
		{Policy{Verify: VerifyNMR, NMR: 7}, true},
		{Policy{Verify: VerifyNMR, NMR: 4}, false},
		{Policy{Verify: VerifyNMR, NMR: 9}, false},
		{Policy{Verify: VerifyDup, MaxRetries: -1}, false},
		{Policy{Verify: VerifyDup, BackoffCycles: -1}, false},
		{Policy{Verify: VerifyDup, QuarantineAfter: -1}, false},
		{Policy{Verify: VerifyMode(42)}, false},
	}
	for _, c := range cases {
		err := c.p.Validate()
		if c.ok && err != nil {
			t.Errorf("%+v: unexpected error %v", c.p, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%+v: error expected", c.p)
		}
	}
	if err := (Policy{Verify: VerifyNMR, NMR: 4}).Validate(); !errors.Is(err, params.ErrBadTRD) {
		t.Errorf("bad NMR degree should wrap ErrBadTRD, got %v", err)
	}
}

func TestParsePolicy(t *testing.T) {
	for _, spec := range []string{"off", "dup", "nmr3", "nmr5", "nmr7"} {
		p, err := ParsePolicy(spec)
		if err != nil {
			t.Fatalf("%q: %v", spec, err)
		}
		if spec != "off" && p.String() != spec {
			t.Errorf("ParsePolicy(%q).String() = %q", spec, p.String())
		}
		if spec == "off" && p.Enabled() {
			t.Errorf("ParsePolicy(off) should be disabled")
		}
	}
	if _, err := ParsePolicy("nmr4"); err == nil {
		t.Error("nmr4 should not parse")
	}
	if p, err := ParsePolicy(""); err != nil || p.Enabled() {
		t.Errorf("empty spec should parse to off, got %+v, %v", p, err)
	}
}

func TestNewExecutorRejectsNMRAboveTRD(t *testing.T) {
	cfg := params.DefaultConfig()
	cfg.TRD = params.TRD3
	cfg.Geometry.TrackWidth = 8
	u, err := pim.NewUnit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = NewExecutor(u, Policy{Verify: VerifyNMR, NMR: 5})
	if !errors.Is(err, params.ErrBadTRD) {
		t.Fatalf("NMR 5 on TRD3 should wrap ErrBadTRD, got %v", err)
	}
}

func TestDoOffIsPassThrough(t *testing.T) {
	u := testUnit(t)
	ex, err := NewExecutor(u, Policy{})
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	row, out, err := ex.Do("op", func() (dbc.Row, error) { calls++; return row8(42), nil })
	if err != nil || calls != 1 {
		t.Fatalf("off path: calls=%d err=%v", calls, err)
	}
	if out != (Outcome{Attempts: 1}) {
		t.Fatalf("off outcome = %+v", out)
	}
	if pim.UnpackLanes(row, 8)[0] != 42 {
		t.Fatalf("wrong row delivered")
	}
}

func TestDoUnanimousAcceptsFirstAttempt(t *testing.T) {
	u := testUnit(t)
	ex, err := NewExecutor(u, Policy{Verify: VerifyNMR, NMR: 3, MaxRetries: 2, BackoffCycles: 8})
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	row, out, err := ex.Do("op", func() (dbc.Row, error) { calls++; return row8(7), nil })
	if err != nil {
		t.Fatal(err)
	}
	if calls != 3 {
		t.Fatalf("NMR3 should execute 3 replicas, got %d", calls)
	}
	if out.Detected != 0 || out.Retries != 0 || out.GaveUp || out.Voted || out.StallCycles != 0 {
		t.Fatalf("clean outcome = %+v", out)
	}
	if pim.UnpackLanes(row, 8)[0] != 7 {
		t.Fatal("wrong row delivered")
	}
	if st := u.Stats(); st.StallSteps != 0 {
		t.Fatalf("clean run priced %d stall cycles", st.StallSteps)
	}
}

func TestDoTransientFaultRetriesAndPricesBackoff(t *testing.T) {
	u := testUnit(t)
	ring := telemetry.NewRingSink(256)
	rec := telemetry.NewRecorder(u.Config(), ring)
	u.SetTelemetry(rec, "unit")
	ex, err := NewExecutor(u, Policy{Verify: VerifyNMR, NMR: 3, MaxRetries: 2, BackoffCycles: 8})
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	// Replica 2 of attempt 1 is wrong; attempt 2 is clean.
	row, out, err := ex.Do("add", func() (dbc.Row, error) {
		calls++
		if calls == 2 {
			return row8(99), nil
		}
		return row8(7), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if pim.UnpackLanes(row, 8)[0] != 7 {
		t.Fatal("wrong row delivered after retry")
	}
	want := Outcome{Attempts: 2, Detected: 1, Retries: 1, StallCycles: 8}
	if out != want {
		t.Fatalf("outcome = %+v, want %+v", out, want)
	}
	if st := u.Stats(); st.StallSteps != 8 {
		t.Fatalf("backoff priced %d stall cycles, want 8", st.StallSteps)
	}
	var detects, retries, stalls int
	for _, e := range ring.Events() {
		switch {
		case e.Op == telemetry.OpFault && e.Src == Source && e.Name == "detect:add":
			detects++
		case e.Op == telemetry.OpMark && e.Src == Source && e.Name == "retry:add":
			retries++
		case e.Op == telemetry.OpStall && e.Src == Source:
			stalls++
		}
	}
	if detects != 1 || retries != 1 || stalls != 8 {
		t.Fatalf("telemetry detects=%d retries=%d stalls=%d, want 1/1/8", detects, retries, stalls)
	}
}

func TestDoBackoffIsExponential(t *testing.T) {
	u := testUnit(t)
	ex, err := NewExecutor(u, Policy{Verify: VerifyDup, MaxRetries: 3, BackoffCycles: 4})
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	// Never agrees: replica 2 of each attempt differs.
	_, out, err := ex.Do("op", func() (dbc.Row, error) {
		calls++
		return row8(uint64(calls)), nil
	})
	if !errors.Is(err, ErrUnverified) {
		t.Fatalf("persistent dup disagreement should be ErrUnverified, got %v", err)
	}
	// Backoffs: 4, 8, 16 (<<0, <<1, <<2) = 28 cycles total.
	if out.StallCycles != 28 {
		t.Fatalf("stall cycles = %d, want 28", out.StallCycles)
	}
	if out.Attempts != 4 || out.Retries != 3 || !out.GaveUp || out.Voted {
		t.Fatalf("outcome = %+v", out)
	}
	if st := u.Stats(); st.StallSteps != 28 {
		t.Fatalf("trace priced %d stalls, want 28", st.StallSteps)
	}
}

func TestDoNMRGiveUpVotes(t *testing.T) {
	u := testUnit(t)
	ring := telemetry.NewRingSink(1024)
	rec := telemetry.NewRecorder(u.Config(), ring)
	u.SetTelemetry(rec, "unit")
	ex, err := NewExecutor(u, Policy{Verify: VerifyNMR, NMR: 3, MaxRetries: 1})
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	// Every attempt: replicas {7, 99, 7} — majority 7, never unanimous.
	row, out, err := ex.Do("add", func() (dbc.Row, error) {
		calls++
		if calls%3 == 2 {
			return row8(99), nil
		}
		return row8(7), nil
	})
	if err != nil {
		t.Fatalf("NMR give-up should still deliver the vote: %v", err)
	}
	if !out.GaveUp || !out.Voted || out.Attempts != 2 {
		t.Fatalf("outcome = %+v", out)
	}
	if got := pim.UnpackLanes(row, 8)[0]; got != 7 {
		t.Fatalf("vote delivered %d, want majority 7", got)
	}
	giveups := 0
	for _, e := range ring.Events() {
		if e.Op == telemetry.OpMark && e.Name == "giveup:add" {
			giveups++
		}
	}
	if giveups != 1 {
		t.Fatalf("giveup marks = %d, want 1", giveups)
	}
}

func TestDoPropagatesOpError(t *testing.T) {
	u := testUnit(t)
	ex, err := NewExecutor(u, Policy{Verify: VerifyNMR, NMR: 3})
	if err != nil {
		t.Fatal(err)
	}
	boom := fmt.Errorf("boom")
	_, _, err = ex.Do("op", func() (dbc.Row, error) { return dbc.Row{}, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("op error should propagate, got %v", err)
	}
}

func TestReplicas(t *testing.T) {
	if n := (Policy{Verify: VerifyNMR, NMR: 5}).Replicas(); n != 5 {
		t.Errorf("nmr5 replicas = %d", n)
	}
	if n := (Policy{Verify: VerifyDup}).Replicas(); n != 2 {
		t.Errorf("dup replicas = %d", n)
	}
	if n := (Policy{}).Replicas(); n != 1 {
		t.Errorf("off replicas = %d", n)
	}
}
