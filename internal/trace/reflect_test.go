package trace

import (
	"reflect"
	"strings"
	"testing"
)

// TestStatsAddCoversEveryField seeds every Stats field with a distinct
// value via reflection and asserts Add accumulates each one — so a
// newly added counter that Add forgets fails this test instead of
// silently dropping events.
func TestStatsAddCoversEveryField(t *testing.T) {
	var a, b Stats
	va := reflect.ValueOf(&a).Elem()
	vb := reflect.ValueOf(&b).Elem()
	typ := va.Type()
	for i := 0; i < va.NumField(); i++ {
		if va.Field(i).Kind() != reflect.Int {
			t.Fatalf("Stats.%s is %v, want int (update this test and Add/Scale together)",
				typ.Field(i).Name, va.Field(i).Kind())
		}
		va.Field(i).SetInt(int64(i + 1))
		vb.Field(i).SetInt(int64(100 * (i + 1)))
	}
	a.Add(b)
	for i := 0; i < va.NumField(); i++ {
		want := int64(i+1) + int64(100*(i+1))
		if got := va.Field(i).Int(); got != want {
			t.Errorf("Add ignores Stats.%s: got %d, want %d", typ.Field(i).Name, got, want)
		}
	}
}

// TestStatsScaleCoversEveryField does the same for Scale.
func TestStatsScaleCoversEveryField(t *testing.T) {
	var s Stats
	vs := reflect.ValueOf(&s).Elem()
	typ := vs.Type()
	for i := 0; i < vs.NumField(); i++ {
		vs.Field(i).SetInt(int64(i + 1))
	}
	got := s.Scale(7)
	vg := reflect.ValueOf(got)
	for i := 0; i < vg.NumField(); i++ {
		want := int64(7 * (i + 1))
		if g := vg.Field(i).Int(); g != want {
			t.Errorf("Scale ignores Stats.%s: got %d, want %d", typ.Field(i).Name, g, want)
		}
	}
}

// TestStatsCyclesCoversStepFields asserts Cycles() is exactly the sum
// of the *Steps fields: setting any single step counter must move
// Cycles by the same amount, and wire-event fields must not.
func TestStatsCyclesCoversStepFields(t *testing.T) {
	typ := reflect.TypeOf(Stats{})
	for i := 0; i < typ.NumField(); i++ {
		var s Stats
		reflect.ValueOf(&s).Elem().Field(i).SetInt(5)
		name := typ.Field(i).Name
		isStep := strings.HasSuffix(name, "Steps")
		switch {
		case isStep && s.Cycles() != 5:
			t.Errorf("Cycles ignores step field Stats.%s", name)
		case !isStep && s.Cycles() != 0:
			t.Errorf("Cycles counts non-step field Stats.%s", name)
		}
	}
}
