package trace

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/params"
)

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tr.Shift(8)
	tr.TR(8)
	tr.Write(8)
	tr.Read(8)
	tr.TW(8)
	tr.Copy(8)
	tr.Logic()
	tr.Reset()
	if got := tr.Stats(); got != (Stats{}) {
		t.Errorf("nil tracer accumulated %+v", got)
	}
}

func TestTracerAccumulates(t *testing.T) {
	tr := &Tracer{}
	tr.Shift(4)
	tr.Shift(4)
	tr.TR(16)
	tr.Write(3)
	tr.Read(2)
	tr.TW(8)
	tr.Copy(8)
	tr.Logic()
	s := tr.Stats()
	if s.ShiftSteps != 2 || s.ShiftWires != 8 {
		t.Errorf("shift %d/%d", s.ShiftSteps, s.ShiftWires)
	}
	if s.Cycles() != 8 {
		t.Errorf("cycles = %d, want 8", s.Cycles())
	}
	tr.Reset()
	if tr.Stats() != (Stats{}) {
		t.Error("reset did not clear")
	}
}

func TestStatsAddScale(t *testing.T) {
	a := Stats{ShiftSteps: 1, TRSteps: 2, WriteBits: 3, CopySteps: 1, CopyBits: 4}
	b := a
	b.Add(a)
	if b.ShiftSteps != 2 || b.TRSteps != 4 || b.WriteBits != 6 || b.CopyBits != 8 {
		t.Errorf("Add: %+v", b)
	}
	c := a.Scale(3)
	if c.ShiftSteps != 3 || c.TRSteps != 6 || c.WriteBits != 9 || c.CopySteps != 3 {
		t.Errorf("Scale: %+v", c)
	}
}

func TestStatsAddScaleEquivalence(t *testing.T) {
	check := func(sh, tr, w uint8, n uint8) bool {
		s := Stats{ShiftSteps: int(sh), TRSteps: int(tr), WriteBits: int(w)}
		k := int(n%8) + 1
		var acc Stats
		for i := 0; i < k; i++ {
			acc.Add(s)
		}
		return acc == s.Scale(k)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestEnergyComposition(t *testing.T) {
	e := params.DefaultEnergy()
	s := Stats{TRWires: 2, WriteBits: 10, ShiftWires: 5, ReadBits: 4, TWBits: 3, CopyBits: 2}
	want := 2*e.TRPJ(params.TRD7) + 10*e.WritePJ + 5*e.ShiftPJ + 4*e.ReadPJ + 3*e.TWPJ + 2*(e.ReadPJ+e.WritePJ)
	if got := s.EnergyPJ(e, params.TRD7); got != want {
		t.Errorf("energy = %v, want %v", got, want)
	}
	if s.EnergyPJ(e, params.TRD3) >= s.EnergyPJ(e, params.TRD7) {
		t.Error("TRD=3 TR energy should be below TRD=7")
	}
}

func TestCostArithmetic(t *testing.T) {
	c := Cost{Cycles: 10, EnergyPJ: 2.5}
	if got := c.Add(Cost{Cycles: 5, EnergyPJ: 1.5}); got.Cycles != 15 || got.EnergyPJ != 4 {
		t.Errorf("Add = %+v", got)
	}
	if got := c.Scale(4); got.Cycles != 40 || got.EnergyPJ != 10 {
		t.Errorf("Scale = %+v", got)
	}
}

func TestOfStats(t *testing.T) {
	s := Stats{TRSteps: 1, TRWires: 8, WriteSteps: 2, WriteBits: 16}
	c := OfStats(s, params.DefaultEnergy(), params.TRD7)
	if c.Cycles != 3 {
		t.Errorf("cycles = %d, want 3", c.Cycles)
	}
	if c.EnergyPJ <= 0 {
		t.Error("energy not positive")
	}
}

func TestStatsString(t *testing.T) {
	s := Stats{ShiftSteps: 1, TRSteps: 2}
	str := s.String()
	for _, want := range []string{"cycles=3", "shifts=1", "trs=2"} {
		if !strings.Contains(str, want) {
			t.Errorf("String %q missing %q", str, want)
		}
	}
}
