package trace

// Timeline models the critical-path cycle count of an operation stream
// that is partly parallel across DBCs. Where Stats.Cycles() charges one
// cycle per control step no matter which DBC executed it — the serial
// sum — a Timeline distinguishes serial stretches from parallelism
// windows: inside a window, steps are grouped into lanes (one lane per
// independent request group), lanes start together at the window's
// opening cycle, and the window as a whole costs only its longest lane.
// The resulting Makespan is the latency a banked PIM memory actually
// delivers when disjoint DBC groups run concurrently, while Cycles
// remains the device-work (and energy-proportional) total.
//
// The accounting is deterministic and worker-count independent: it is a
// pure function of the event stream's window markers, not of how the
// host happened to schedule goroutines. A stream with no windows has
// Makespan == steps recorded, matching Stats.Cycles() exactly.
//
// The zero value is ready to use. Timeline is plain state with no
// locking; the telemetry Recorder advances it under its own mutex.
type Timeline struct {
	frontier uint64 // critical-path cycles committed so far
	winStart uint64 // frontier when the open window began
	winMax   uint64 // longest lane seen in the open window
	lane     uint64 // cycle cursor of the current lane
	depth    int    // open-window nesting depth (only the outermost counts)
}

// Step advances the timeline by one control step: serially outside a
// window, on the current lane inside one.
func (t *Timeline) Step() {
	if t.depth == 0 {
		t.frontier++
		return
	}
	t.lane++
	if t.lane > t.winMax {
		t.winMax = t.lane
	}
}

// WindowBegin opens a parallelism window at the current frontier.
// Nested windows fold into the outermost one: a batch issued while a
// window is already open contributes to the enclosing lane, which is
// the conservative (serial) reading of a schedule the marker stream
// cannot prove parallel.
func (t *Timeline) WindowBegin() {
	t.depth++
	if t.depth > 1 {
		return
	}
	t.winStart = t.frontier
	t.winMax = t.frontier
	t.lane = t.frontier
}

// Lane starts a new lane of the open window: subsequent steps are
// charged from the window's opening cycle again, concurrent with every
// other lane. Outside a window (or in a nested one) Lane is a no-op.
func (t *Timeline) Lane() {
	if t.depth != 1 {
		return
	}
	if t.lane > t.winMax {
		t.winMax = t.lane
	}
	t.lane = t.winStart
}

// WindowEnd closes the window, committing the longest lane to the
// frontier. Unmatched ends are ignored.
func (t *Timeline) WindowEnd() {
	if t.depth == 0 {
		return
	}
	t.depth--
	if t.depth > 0 {
		return
	}
	if t.lane > t.winMax {
		t.winMax = t.lane
	}
	t.frontier = t.winMax
}

// Makespan returns the critical-path cycle count: committed frontier
// plus, while a window is open, the longest lane in flight.
func (t *Timeline) Makespan() uint64 {
	if t.depth == 0 {
		return t.frontier
	}
	if t.lane > t.winMax {
		return t.lane
	}
	return t.winMax
}

// Reset returns the timeline to its zero state.
func (t *Timeline) Reset() { *t = Timeline{} }
