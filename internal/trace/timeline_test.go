package trace

import "testing"

func steps(t *Timeline, n int) {
	for i := 0; i < n; i++ {
		t.Step()
	}
}

func TestTimelineSerialEqualsSteps(t *testing.T) {
	var tl Timeline
	steps(&tl, 17)
	if got := tl.Makespan(); got != 17 {
		t.Fatalf("serial makespan = %d, want 17", got)
	}
}

func TestTimelineWindowTakesLongestLane(t *testing.T) {
	var tl Timeline
	steps(&tl, 5) // serial prologue
	tl.WindowBegin()
	tl.Lane()
	steps(&tl, 3)
	tl.Lane()
	steps(&tl, 9) // critical lane
	tl.Lane()
	steps(&tl, 4)
	tl.WindowEnd()
	steps(&tl, 2) // serial epilogue
	if got := tl.Makespan(); got != 5+9+2 {
		t.Fatalf("makespan = %d, want %d", got, 5+9+2)
	}
}

func TestTimelineOpenWindowReportsInFlightLane(t *testing.T) {
	var tl Timeline
	tl.WindowBegin()
	steps(&tl, 4)
	tl.Lane()
	steps(&tl, 2)
	if got := tl.Makespan(); got != 4 {
		t.Fatalf("open-window makespan = %d, want 4 (longest lane so far)", got)
	}
	tl.WindowEnd()
	if got := tl.Makespan(); got != 4 {
		t.Fatalf("closed-window makespan = %d, want 4", got)
	}
}

func TestTimelineNestedWindowsFoldIntoOuter(t *testing.T) {
	var tl Timeline
	tl.WindowBegin()
	steps(&tl, 2)
	tl.WindowBegin() // nested: contributes to the enclosing lane
	steps(&tl, 3)
	tl.WindowEnd()
	steps(&tl, 1)
	tl.Lane()
	steps(&tl, 4)
	tl.WindowEnd()
	if got := tl.Makespan(); got != 6 {
		t.Fatalf("nested makespan = %d, want 6 (2+3+1 lane)", got)
	}
}

func TestTimelineUnmatchedEndIgnored(t *testing.T) {
	var tl Timeline
	tl.WindowEnd()
	tl.Lane()
	steps(&tl, 3)
	if got := tl.Makespan(); got != 3 {
		t.Fatalf("makespan = %d, want 3", got)
	}
}

func TestTimelineEmptyWindowCostsNothing(t *testing.T) {
	var tl Timeline
	steps(&tl, 2)
	tl.WindowBegin()
	tl.WindowEnd()
	if got := tl.Makespan(); got != 2 {
		t.Fatalf("makespan = %d, want 2", got)
	}
}

func TestTimelineReset(t *testing.T) {
	var tl Timeline
	tl.WindowBegin()
	steps(&tl, 5)
	tl.Reset()
	if got := tl.Makespan(); got != 0 {
		t.Fatalf("makespan after reset = %d, want 0", got)
	}
	steps(&tl, 1)
	if got := tl.Makespan(); got != 1 {
		t.Fatalf("makespan = %d, want 1", got)
	}
}
