// Package trace provides primitive-operation accounting for the
// CORUSCANT simulator. Every device-level primitive executed by the
// functional model (shifts, port reads/writes, transverse reads,
// transverse writes) is counted in a Stats value; latency and energy are
// then pure functions of those counts plus the params constants.
//
// This mirrors the paper's methodology: the architecture-level results
// are derived from per-primitive costs (NVSIM/LLG-derived in the paper,
// calibrated constants here) multiplied by the operation counts of the
// cycle-level simulator.
package trace

import (
	"fmt"
	"strings"

	"repro/internal/params"
)

// Stats counts device primitives. Parallel fields distinguish events that
// occupy a cycle slot (serialized control steps) from events that happen
// in the same cycle across many nanowires (energy accrues per nanowire,
// latency per control step).
type Stats struct {
	// Control-step counts: each costs one device cycle.
	ShiftSteps int // DBC-wide domain-wall shift steps
	TRSteps    int // transverse-read control steps (all selected wires in parallel)
	WriteSteps int // access-port write control steps
	ReadSteps  int // access-port read control steps
	TWSteps    int // transverse-write (write + segmented shift) control steps
	CopySteps  int // laterally shifted read/write steps (Fig. 4(a) brown path)
	LogicSteps int // PIM-logic / row-buffer-only steps (predication, mux reconfig)
	StallSteps int // idle cycles (recovery backoff, controller stalls); no energy

	// Per-wire event counts: energy accrues per affected nanowire.
	ShiftWires int // nanowire·step shift events
	TRWires    int // individual transverse reads performed
	WriteBits  int // individual bits written at ports
	ReadBits   int // individual bits read at ports
	TWBits     int // individual transverse-write bit events
	CopyBits   int // individual bits moved by shifted copies
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.ShiftSteps += other.ShiftSteps
	s.TRSteps += other.TRSteps
	s.WriteSteps += other.WriteSteps
	s.ReadSteps += other.ReadSteps
	s.TWSteps += other.TWSteps
	s.CopySteps += other.CopySteps
	s.LogicSteps += other.LogicSteps
	s.StallSteps += other.StallSteps
	s.ShiftWires += other.ShiftWires
	s.TRWires += other.TRWires
	s.WriteBits += other.WriteBits
	s.ReadBits += other.ReadBits
	s.TWBits += other.TWBits
	s.CopyBits += other.CopyBits
}

// Scale returns s with every count multiplied by n (n repetitions of the
// traced operation).
func (s Stats) Scale(n int) Stats {
	return Stats{
		ShiftSteps: s.ShiftSteps * n,
		TRSteps:    s.TRSteps * n,
		WriteSteps: s.WriteSteps * n,
		ReadSteps:  s.ReadSteps * n,
		TWSteps:    s.TWSteps * n,
		CopySteps:  s.CopySteps * n,
		LogicSteps: s.LogicSteps * n,
		StallSteps: s.StallSteps * n,
		ShiftWires: s.ShiftWires * n,
		TRWires:    s.TRWires * n,
		WriteBits:  s.WriteBits * n,
		ReadBits:   s.ReadBits * n,
		TWBits:     s.TWBits * n,
		CopyBits:   s.CopyBits * n,
	}
}

// Cycles returns the device-cycle latency of the traced operation
// sequence: one cycle per control step.
func (s Stats) Cycles() int {
	return s.ShiftSteps + s.TRSteps + s.WriteSteps + s.ReadSteps + s.TWSteps + s.CopySteps + s.LogicSteps + s.StallSteps
}

// EnergyPJ returns the energy in picojoules of the traced sequence under
// the given energy table and TR window length.
func (s Stats) EnergyPJ(e params.Energy, trd params.TRD) float64 {
	return float64(s.ShiftWires)*e.ShiftPJ +
		float64(s.TRWires)*e.TRPJ(trd) +
		float64(s.WriteBits)*e.WritePJ +
		float64(s.ReadBits)*e.ReadPJ +
		float64(s.TWBits)*e.TWPJ +
		float64(s.CopyBits)*(e.ReadPJ+e.WritePJ)
}

// String renders the counters compactly for logs and test output.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cycles=%d", s.Cycles())
	fmt.Fprintf(&b, " shifts=%d trs=%d writes=%d reads=%d tws=%d copies=%d logic=%d stalls=%d",
		s.ShiftSteps, s.TRSteps, s.WriteSteps, s.ReadSteps, s.TWSteps, s.CopySteps, s.LogicSteps, s.StallSteps)
	fmt.Fprintf(&b, " (wire events: shift=%d tr=%d w=%d r=%d tw=%d)",
		s.ShiftWires, s.TRWires, s.WriteBits, s.ReadBits, s.TWBits)
	return b.String()
}

// Tracer accumulates Stats. The zero value is ready to use. A nil *Tracer
// is also valid and discards all events, so hot paths need no nil checks
// at call sites.
type Tracer struct {
	stats Stats
}

// Shift records one DBC-wide shift step affecting wires nanowires.
func (t *Tracer) Shift(wires int) {
	if t == nil {
		return
	}
	t.stats.ShiftSteps++
	t.stats.ShiftWires += wires
}

// TR records one transverse-read step over wires nanowires in parallel.
func (t *Tracer) TR(wires int) {
	if t == nil {
		return
	}
	t.stats.TRSteps++
	t.stats.TRWires += wires
}

// Write records one port-write step touching bits individual bits.
func (t *Tracer) Write(bits int) {
	if t == nil {
		return
	}
	t.stats.WriteSteps++
	t.stats.WriteBits += bits
}

// Read records one port-read step touching bits individual bits.
func (t *Tracer) Read(bits int) {
	if t == nil {
		return
	}
	t.stats.ReadSteps++
	t.stats.ReadBits += bits
}

// TW records one transverse-write step touching bits individual bits.
func (t *Tracer) TW(bits int) {
	if t == nil {
		return
	}
	t.stats.TWSteps++
	t.stats.TWBits += bits
}

// Copy records one laterally shifted read/write step (the Fig. 4(a)
// brown forwarding path) touching bits individual bits.
func (t *Tracer) Copy(bits int) {
	if t == nil {
		return
	}
	t.stats.CopySteps++
	t.stats.CopyBits += bits
}

// Logic records one control step that uses only the PIM logic or row
// buffer (no storage-array event).
func (t *Tracer) Logic() {
	if t == nil {
		return
	}
	t.stats.LogicSteps++
}

// Stall records n idle cycles in which the controller holds the DBC
// quiescent (recovery backoff between retry attempts). Stalls cost
// latency but no energy.
func (t *Tracer) Stall(n int) {
	if t == nil || n <= 0 {
		return
	}
	t.stats.StallSteps += n
}

// Stats returns a copy of the accumulated counters.
func (t *Tracer) Stats() Stats {
	if t == nil {
		return Stats{}
	}
	return t.stats
}

// Reset clears the accumulated counters.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.stats = Stats{}
}

// Cost is a latency/energy pair used by analytic models (baselines and
// system-level experiments) where no functional trace exists.
type Cost struct {
	Cycles   int
	EnergyPJ float64
}

// Add returns the sum of two costs.
func (c Cost) Add(other Cost) Cost {
	return Cost{Cycles: c.Cycles + other.Cycles, EnergyPJ: c.EnergyPJ + other.EnergyPJ}
}

// Scale returns the cost of n repetitions.
func (c Cost) Scale(n int) Cost {
	return Cost{Cycles: c.Cycles * n, EnergyPJ: c.EnergyPJ * float64(n)}
}

// OfStats converts a functional trace into a Cost.
func OfStats(s Stats, e params.Energy, trd params.TRD) Cost {
	return Cost{Cycles: s.Cycles(), EnergyPJ: s.EnergyPJ(e, trd)}
}
