package bitmapidx

import (
	"testing"

	"repro/internal/params"
)

func queryStore(t *testing.T) *Store {
	t.Helper()
	return NewStore(2048, 6, 5)
}

func TestQueryAndMatchesReference(t *testing.T) {
	s := queryStore(t)
	// The §V-D query expressed as an expression tree.
	e := And(Male(), Week(0), Week(1))
	got, err := Count(s, e)
	if err != nil {
		t.Fatal(err)
	}
	want, err := s.Reference(2)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("Count = %d, want %d", got, want)
	}
}

func TestQueryCombinators(t *testing.T) {
	s := queryStore(t)
	// Verify against direct bit math for a compound query:
	// male AND (week0 OR week1) AND NOT week2.
	e := And(Male(), Or(Week(0), Week(1)), Not(Week(2)))
	got, err := Count(s, e)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for i := 0; i < s.Users; i++ {
		if s.Male.Get(i) && (s.Weeks[0].Get(i) || s.Weeks[1].Get(i)) && !s.Weeks[2].Get(i) {
			want++
		}
	}
	if got != want {
		t.Errorf("compound query = %d, want %d", got, want)
	}
}

func TestQueryDeMorgan(t *testing.T) {
	// NOT(a AND b) must equal NOT a OR NOT b on every store.
	s := queryStore(t)
	lhs, err := Count(s, Not(And(Male(), Week(0))))
	if err != nil {
		t.Fatal(err)
	}
	rhs, err := Count(s, Or(Not(Male()), Not(Week(0))))
	if err != nil {
		t.Fatal(err)
	}
	if lhs != rhs {
		t.Errorf("De Morgan violated: %d vs %d", lhs, rhs)
	}
}

func TestQueryXor(t *testing.T) {
	s := queryStore(t)
	got, err := Count(s, Xor(Week(0), Week(1)))
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for i := 0; i < s.Users; i++ {
		if s.Weeks[0].Get(i) != s.Weeks[1].Get(i) {
			want++
		}
	}
	if got != want {
		t.Errorf("xor query = %d, want %d", got, want)
	}
}

func TestQueryNotMasksTailBits(t *testing.T) {
	// A store whose size is not a multiple of 64 must not count ghost
	// users beyond the population after a NOT.
	s := NewStore(100, 1, 9)
	got, err := Count(s, Or(Not(Male()), Male()))
	if err != nil {
		t.Fatal(err)
	}
	if got != 100 {
		t.Errorf("NOT leaked tail bits: universe = %d, want 100", got)
	}
}

func TestExprErrors(t *testing.T) {
	s := queryStore(t)
	if _, err := Count(s, Week(99)); err == nil {
		t.Error("out-of-range week accepted")
	}
	if _, err := Count(s, And()); err == nil {
		t.Error("empty AND accepted")
	}
}

func TestPlanQueryPassCounts(t *testing.T) {
	// The §V-D structural claim: a 5-ary AND is one CORUSCANT pass but
	// four two-operand passes.
	e := And(Male(), Week(0), Week(1), Week(2), Week(3))
	p := PlanQuery(e, params.TRD7)
	if p.CoruscantPasses != 1 {
		t.Errorf("CORUSCANT passes = %d, want 1", p.CoruscantPasses)
	}
	if p.TwoOpPasses != 4 {
		t.Errorf("two-op passes = %d, want 4", p.TwoOpPasses)
	}
	// On TRD=3 the same query folds 2 operands per pass: ceil(4/2) = 2.
	p3 := PlanQuery(e, params.TRD3)
	if p3.CoruscantPasses != 2 {
		t.Errorf("TRD=3 passes = %d, want 2", p3.CoruscantPasses)
	}
}

func TestPlanQueryCompound(t *testing.T) {
	e := And(Male(), Or(Week(0), Week(1), Week(2)), Not(Week(3)))
	p := PlanQuery(e, params.TRD7)
	// Nodes: and(3-ary) = 1 pass, or(3-ary) = 1 pass, not = 0 extra.
	if p.CoruscantPasses != 2 {
		t.Errorf("CORUSCANT passes = %d, want 2", p.CoruscantPasses)
	}
	// Two-op: and 2 + or 2 + not 1 = 5.
	if p.TwoOpPasses != 5 {
		t.Errorf("two-op passes = %d, want 5", p.TwoOpPasses)
	}
	if p.Query == "" {
		t.Error("empty rendering")
	}
}

func TestPlanQueryLeaf(t *testing.T) {
	p := PlanQuery(Male(), params.TRD7)
	if p.CoruscantPasses != 1 || p.TwoOpPasses != 1 {
		t.Errorf("bare leaf plan = %+v", p)
	}
}
