// Package bitmapidx implements the bitmap-index database query of §V-D
// (Fig. 12), the experiment CORUSCANT inherits from prior DRAM PIM work:
// over a 16-million-user table, count the male users active in each of
// the past w weeks — an AND reduction of w+1 bitmaps followed by a
// population count.
//
// Four engines answer the query: a standard DRAM+CPU system, Ambit,
// ELP²IM, and CORUSCANT. All four produce bit-exact counts (the PIM
// engines run their functional bulk-logic models); latency comes from
// each engine's cost model over the full 16M-bit bitmaps.
package bitmapidx

import (
	"fmt"
	"math/bits"
	"math/rand"

	"repro/internal/baseline/ambit"
	"repro/internal/baseline/elp2im"
	"repro/internal/mem"
	"repro/internal/params"
)

// Bitmap is a packed bit vector, one bit per user.
type Bitmap []uint64

// NewBitmap returns a bitmap for n users.
func NewBitmap(n int) Bitmap { return make(Bitmap, (n+63)/64) }

// Set sets user i's bit.
func (b Bitmap) Set(i int) { b[i/64] |= 1 << uint(i%64) }

// Get reports user i's bit.
func (b Bitmap) Get(i int) bool { return b[i/64]&(1<<uint(i%64)) != 0 }

// Popcount returns the number of set bits.
func (b Bitmap) Popcount() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// Store is the user table: a gender bitmap plus one activity bitmap per
// week (§V-D: 16 million users).
type Store struct {
	Users int
	Male  Bitmap
	Weeks []Bitmap
}

// NewStore synthesizes a store with deterministic pseudo-random
// attributes: P(male)≈0.5 and weekly activity ≈0.6 per week.
func NewStore(users, weeks int, seed int64) *Store {
	rng := rand.New(rand.NewSource(seed))
	s := &Store{Users: users, Male: NewBitmap(users)}
	for w := 0; w < weeks; w++ {
		s.Weeks = append(s.Weeks, NewBitmap(users))
	}
	for i := 0; i < users; i++ {
		if rng.Intn(2) == 1 {
			s.Male.Set(i)
		}
		for w := range s.Weeks {
			if rng.Intn(10) < 6 {
				s.Weeks[w].Set(i)
			}
		}
	}
	return s
}

// operandRows returns the k = w+1 query bitmaps.
func (s *Store) operandRows(w int) ([]Bitmap, error) {
	if w < 1 || w > len(s.Weeks) {
		return nil, fmt.Errorf("bitmapidx: w=%d outside stored weeks %d", w, len(s.Weeks))
	}
	ops := []Bitmap{s.Male}
	for i := 0; i < w; i++ {
		ops = append(ops, s.Weeks[i])
	}
	return ops, nil
}

// Reference answers the query directly (the ground truth).
func (s *Store) Reference(w int) (int, error) {
	ops, err := s.operandRows(w)
	if err != nil {
		return 0, err
	}
	acc := make(Bitmap, len(s.Male))
	copy(acc, ops[0])
	for _, o := range ops[1:] {
		for i := range acc {
			acc[i] &= o[i]
		}
	}
	return acc.Popcount(), nil
}

// Result is one engine's answer with its modelled latency.
type Result struct {
	Engine    string
	Count     int
	LatencyNS float64
}

// unpack converts a bitmap chunk to the byte-per-bit rows the functional
// PIM models consume.
func unpack(b Bitmap, users int) []uint8 {
	row := make([]uint8, users)
	for i := 0; i < users; i++ {
		if b.Get(i) {
			row[i] = 1
		}
	}
	return row
}

func countRow(row []uint8) int {
	n := 0
	for _, b := range row {
		n += int(b)
	}
	return n
}

// QueryCPU answers on the baseline DRAM+CPU system: every bitmap streams
// over the memory bus and the cores AND them at line rate; the bus is
// the bottleneck.
func QueryCPU(s *Store, w int, sys *mem.System) (Result, error) {
	count, err := s.Reference(w)
	if err != nil {
		return Result{}, err
	}
	k := w + 1
	bytes := float64(k) * float64(s.Users) / 8
	// Effective bus bandwidth: 8 bytes per memory cycle (DDR3-1600
	// x64), derated 20% for row crossings.
	bw := 8.0 / sys.Cfg.Timing.MemCycleNS * 0.8
	return Result{Engine: "DRAM-CPU", Count: count, LatencyNS: bytes / bw}, nil
}

// functionalLimit bounds the store size for which the DRAM PIM engines
// run their byte-per-bit functional models; beyond it the packed
// reference computes the (identical) count so that paper-scale 16M-user
// queries stay fast. The functional equivalence itself is covered by
// tests at smaller sizes.
const functionalLimit = 1 << 20

// dramCount answers the query through the engine's functional AND chain
// (or the packed reference above functionalLimit).
func dramCount(s *Store, w int, andMulti func([]ambit.Row) (ambit.Row, error)) (int, error) {
	if s.Users > functionalLimit {
		return s.Reference(w)
	}
	ops, err := s.operandRows(w)
	if err != nil {
		return 0, err
	}
	rows := make([]ambit.Row, len(ops))
	for i, o := range ops {
		rows[i] = unpack(o, s.Users)
	}
	res, err := andMulti(rows)
	if err != nil {
		return 0, err
	}
	return countRow(res), nil
}

// QueryAmbit answers with (k−1) sequential two-operand AND passes of
// four AAPs each, 32-bank parallel, 8 KB DRAM rows.
func QueryAmbit(s *Store, w int, cfg params.Config) (Result, error) {
	count, err := dramCount(s, w, ambit.AndMulti)
	if err != nil {
		return Result{}, err
	}
	k := w + 1
	m := ambit.NewModel(cfg)
	lat := passLatencyNS(s.Users, cfg, m.And2().Cycles) * float64(k-1)
	return Result{Engine: "Ambit", Count: count, LatencyNS: lat}, nil
}

// QueryELP2IM answers like Ambit but with in-place pseudo-precharge
// operations (3.2× cheaper per pass).
func QueryELP2IM(s *Store, w int, cfg params.Config) (Result, error) {
	count, err := dramCount(s, w, elp2im.AndMulti)
	if err != nil {
		return Result{}, err
	}
	k := w + 1
	m := elp2im.NewModel(cfg)
	lat := passLatencyNS(s.Users, cfg, m.And2().Cycles) * float64(k-1)
	return Result{Engine: "ELP2IM", Count: count, LatencyNS: lat}, nil
}

// dramRowBits is the 8 KB DRAM row the DRAM PIM engines operate on.
const dramRowBits = 65536

// passLatencyNS is one full AND pass over the bitmaps for a DRAM PIM
// engine: row-pair operations spread over the banks.
func passLatencyNS(users int, cfg params.Config, opCycles int) float64 {
	rowOps := (users + dramRowBits - 1) / dramRowBits
	serial := (rowOps + cfg.Geometry.Banks - 1) / cfg.Geometry.Banks
	return float64(serial*opCycles) * cfg.Timing.MemCycleNS
}

// CoruscantStepNS is the per-broadcast-step latency of the CORUSCANT
// engine: the cpim issue sequence (13 memory cycles), the shift
// alignment of the resident bitmap rows with the TR window (≈14 device
// cycles), and the TR sense plus result write-back (≈17 ns, calibrated
// against Fig. 12's 1.6× gain over ELP²IM at three criteria). The step
// is independent of the operand count: all k ≤ TRD bitmaps are sensed by
// the same transverse read.
func coruscantStepNS(sys *mem.System) float64 {
	issue := float64(sys.IssueGapCycles) * sys.Cfg.Timing.MemCycleNS
	align := 14 * sys.Cfg.Timing.DeviceCycleNS
	sense := 17.0
	return issue + align + sense
}

// QueryCoruscant answers with a single multi-operand AND pass: the k
// bitmaps live in adjacent rows of the PIM-enabled DBCs (padded with
// '1's per Fig. 7(a)), and every broadcast step processes 512 bits in
// each of the 2048 PIM DBCs at once.
func QueryCoruscant(s *Store, w int, sys *mem.System) (Result, error) {
	ops, err := s.operandRows(w)
	if err != nil {
		return Result{}, err
	}
	k := len(ops)
	if k > int(sys.Cfg.TRD) {
		return Result{}, fmt.Errorf("bitmapidx: %d criteria exceed TRD %d", k, int(sys.Cfg.TRD))
	}
	// Functional result via the reference AND (the PIM unit path is
	// exercised bit-exactly in the tests on store slices).
	count, err := s.Reference(w)
	if err != nil {
		return Result{}, err
	}
	bitsPerStep := sys.Cfg.Geometry.TrackWidth * sys.Cfg.Geometry.PIMDBCs()
	steps := (s.Users + bitsPerStep - 1) / bitsPerStep
	lat := float64(steps) * coruscantStepNS(sys)
	return Result{Engine: "CORUSCANT", Count: count, LatencyNS: lat}, nil
}

// Query runs all four engines for the given look-back window.
func Query(s *Store, w int, sys *mem.System) ([]Result, error) {
	var out []Result
	r, err := QueryCPU(s, w, sys)
	if err != nil {
		return nil, err
	}
	out = append(out, r)
	r, err = QueryAmbit(s, w, sys.Cfg)
	if err != nil {
		return nil, err
	}
	out = append(out, r)
	r, err = QueryELP2IM(s, w, sys.Cfg)
	if err != nil {
		return nil, err
	}
	out = append(out, r)
	r, err = QueryCoruscant(s, w, sys)
	if err != nil {
		return nil, err
	}
	out = append(out, r)
	return out, nil
}
