package bitmapidx

import (
	"testing"

	"repro/internal/memory"
	"repro/internal/params"
)

func compileMemory(t *testing.T) *memory.Memory {
	t.Helper()
	cfg := params.DefaultConfig()
	cfg.Geometry.TrackWidth = 64
	m, err := memory.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestExecuteOnMemoryMatchesReference(t *testing.T) {
	s := NewStore(1000, 4, 33)
	queries := []Expr{
		And(Male(), Week(0), Week(1)),
		Or(Week(0), Week(1), Week(2), Week(3)),
		And(Male(), Or(Week(0), Week(1)), Not(Week(2))),
		Xor(Week(0), Week(1)),
		Not(Male()),
	}
	for i, q := range queries {
		m := compileMemory(t)
		got, err := ExecuteOnMemory(m, s, q)
		if err != nil {
			t.Fatalf("query %d (%s): %v", i, q, err)
		}
		want, err := Count(s, q)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("query %d (%s): memory count %d, reference %d", i, q, got, want)
		}
		if m.Moves().RowWrites == 0 || m.Stats().TRSteps == 0 {
			t.Errorf("query %d: no memory traffic traced", i)
		}
	}
}

func TestExecuteOnMemoryWideFold(t *testing.T) {
	// A 6-ary AND on TRD=7 folds in one pass per chunk; verify it still
	// counts correctly (and again on TRD=3, which needs three passes).
	s := NewStore(500, 5, 44)
	q := And(Male(), Week(0), Week(1), Week(2), Week(3), Week(4))
	want, err := Count(s, q)
	if err != nil {
		t.Fatal(err)
	}
	for _, trd := range []params.TRD{params.TRD3, params.TRD7} {
		cfg := params.DefaultConfig()
		cfg.TRD = trd
		cfg.Geometry.TrackWidth = 64
		m, err := memory.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ExecuteOnMemory(m, s, q)
		if err != nil {
			t.Fatalf("%v: %v", trd, err)
		}
		if got != want {
			t.Errorf("%v: count %d, want %d", trd, got, want)
		}
	}
}

func TestExecuteOnMemoryWorkerInvariant(t *testing.T) {
	// The batched compile path must produce the same count and the same
	// primitive totals for any worker count (serial is workers=1).
	s := NewStore(2000, 3, 66)
	q := And(Male(), Or(Week(0), Week(1)), Not(Week(2)))
	want, err := Count(s, q)
	if err != nil {
		t.Fatal(err)
	}
	var refStats string
	for _, workers := range []int{1, 2, 8} {
		m := compileMemory(t)
		m.SetWorkers(workers)
		got, err := ExecuteOnMemory(m, s, q)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got != want {
			t.Errorf("workers=%d: count %d, want %d", workers, got, want)
		}
		stats := m.Stats().String()
		if workers == 1 {
			refStats = stats
		} else if stats != refStats {
			t.Errorf("workers=%d: stats %s, serial %s", workers, stats, refStats)
		}
	}
}

func TestExecuteOnMemoryNonMultipleWidth(t *testing.T) {
	// User counts that do not fill the last row chunk must not leak
	// ghost bits, even through NOT.
	s := NewStore(77, 2, 55)
	m := compileMemory(t)
	got, err := ExecuteOnMemory(m, s, Or(Not(Week(0)), Week(0)))
	if err != nil {
		t.Fatal(err)
	}
	if got != 77 {
		t.Errorf("universe count = %d, want 77", got)
	}
}
