package bitmapidx

import (
	"fmt"
	"strings"

	"repro/internal/params"
)

// Boolean query expressions over the store's bitmaps — the general form
// of the §V-D experiment. CORUSCANT collapses every ≤TRD-ary AND/OR/XOR
// node into a single transverse read, while two-operand DRAM PIM engines
// chain k−1 passes per node; Plan quantifies exactly that gap.

// Expr is a boolean query over user bitmaps.
type Expr interface {
	eval(s *Store) (Bitmap, error)
	// arity walks the tree collecting per-node operand counts.
	arity(counts *[]int)
	String() string
}

// Male selects the gender bitmap.
func Male() Expr {
	return leaf{name: "male", get: func(s *Store) (Bitmap, error) { return s.Male, nil }}
}

// Week selects week i's activity bitmap.
func Week(i int) Expr {
	return leaf{
		name: fmt.Sprintf("week%d", i),
		get: func(s *Store) (Bitmap, error) {
			if i < 0 || i >= len(s.Weeks) {
				return nil, fmt.Errorf("bitmapidx: week %d outside store", i)
			}
			return s.Weeks[i], nil
		},
	}
}

type leaf struct {
	name string
	get  func(*Store) (Bitmap, error)
}

func (l leaf) eval(s *Store) (Bitmap, error) { return l.get(s) }
func (l leaf) arity(*[]int)                  {}
func (l leaf) String() string                { return l.name }

type nary struct {
	op   string // "and", "or", "xor"
	args []Expr
}

// And combines sub-queries conjunctively.
func And(args ...Expr) Expr { return nary{op: "and", args: args} }

// Or combines sub-queries disjunctively.
func Or(args ...Expr) Expr { return nary{op: "or", args: args} }

// Xor combines sub-queries by parity.
func Xor(args ...Expr) Expr { return nary{op: "xor", args: args} }

// Not negates a sub-query.
func Not(arg Expr) Expr { return negate{arg} }

type negate struct{ arg Expr }

func (n negate) eval(s *Store) (Bitmap, error) {
	b, err := n.arg.eval(s)
	if err != nil {
		return nil, err
	}
	out := make(Bitmap, len(b))
	for i, w := range b {
		out[i] = ^w
	}
	// Mask bits beyond the user count.
	if extra := len(out)*64 - s.Users; extra > 0 {
		out[len(out)-1] &= ^uint64(0) >> uint(extra)
	}
	return out, nil
}

func (n negate) arity(counts *[]int) {
	*counts = append(*counts, 1)
	n.arg.arity(counts)
}
func (n negate) String() string { return "not(" + n.arg.String() + ")" }

func (n nary) eval(s *Store) (Bitmap, error) {
	if len(n.args) == 0 {
		return nil, fmt.Errorf("bitmapidx: empty %s", n.op)
	}
	first, err := n.args[0].eval(s)
	if err != nil {
		return nil, err
	}
	acc := make(Bitmap, len(first))
	copy(acc, first)
	for _, a := range n.args[1:] {
		b, err := a.eval(s)
		if err != nil {
			return nil, err
		}
		for i := range acc {
			switch n.op {
			case "and":
				acc[i] &= b[i]
			case "or":
				acc[i] |= b[i]
			default:
				acc[i] ^= b[i]
			}
		}
	}
	return acc, nil
}

func (n nary) arity(counts *[]int) {
	*counts = append(*counts, len(n.args))
	for _, a := range n.args {
		a.arity(counts)
	}
}

func (n nary) String() string {
	parts := make([]string, len(n.args))
	for i, a := range n.args {
		parts[i] = a.String()
	}
	return n.op + "(" + strings.Join(parts, ", ") + ")"
}

// Plan summarizes how many full-bitmap passes each engine needs for the
// query: CORUSCANT serves a k-ary node with ⌈(k−1)/(TRD−1)⌉ multi-operand
// passes (each pass folds up to TRD operands, one slot carrying the
// running result after the first); a two-operand engine needs k−1.
// Negations are free on CORUSCANT (the NOR/NAND/XNOR outputs of the same
// sense, §III-B) but cost a pass (DCC copy) on Ambit-style engines.
type Plan struct {
	Query           string
	CoruscantPasses int
	TwoOpPasses     int
}

// PlanQuery analyses an expression for the given TRD.
func PlanQuery(e Expr, trd params.TRD) Plan {
	var counts []int
	e.arity(&counts)
	p := Plan{Query: e.String()}
	for _, k := range counts {
		if k == 1 { // negation
			p.TwoOpPasses++
			continue
		}
		per := int(trd) - 1
		p.CoruscantPasses += (k - 2 + per) / per
		p.TwoOpPasses += k - 1
	}
	if p.CoruscantPasses == 0 && p.TwoOpPasses == 0 {
		// Bare leaf: a single read either way.
		p.CoruscantPasses, p.TwoOpPasses = 1, 1
	}
	return p
}

// Count evaluates the query and returns the matching-user count (the
// ground-truth result every engine must reproduce).
func Count(s *Store, e Expr) (int, error) {
	b, err := e.eval(s)
	if err != nil {
		return 0, err
	}
	return b.Popcount(), nil
}
