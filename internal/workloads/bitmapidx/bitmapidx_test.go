package bitmapidx

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dbc"
	"repro/internal/mem"
	"repro/internal/params"
	"repro/internal/pim"
)

func testSystem() *mem.System {
	return mem.NewSystem(params.DefaultConfig())
}

func TestBitmapBasics(t *testing.T) {
	b := NewBitmap(130)
	b.Set(0)
	b.Set(64)
	b.Set(129)
	if !b.Get(0) || !b.Get(64) || !b.Get(129) || b.Get(1) {
		t.Error("set/get broken")
	}
	if b.Popcount() != 3 {
		t.Errorf("popcount = %d, want 3", b.Popcount())
	}
}

func TestStoreDeterministic(t *testing.T) {
	a := NewStore(1000, 4, 7)
	b := NewStore(1000, 4, 7)
	ra, _ := a.Reference(3)
	rb, _ := b.Reference(3)
	if ra != rb {
		t.Error("store not deterministic for equal seeds")
	}
}

func TestReferenceCountsByHand(t *testing.T) {
	s := &Store{Users: 8, Male: NewBitmap(8), Weeks: []Bitmap{NewBitmap(8), NewBitmap(8)}}
	for _, i := range []int{0, 1, 2, 3} {
		s.Male.Set(i)
	}
	for _, i := range []int{1, 2, 5} {
		s.Weeks[0].Set(i)
	}
	for _, i := range []int{2, 3, 5} {
		s.Weeks[1].Set(i)
	}
	got, err := s.Reference(2)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 { // only user 2 is male and active both weeks
		t.Errorf("reference = %d, want 1", got)
	}
}

func TestAllEnginesAgree(t *testing.T) {
	sys := testSystem()
	s := NewStore(4096, 4, 99)
	for w := 1; w <= 4; w++ {
		ref, err := s.Reference(w)
		if err != nil {
			t.Fatal(err)
		}
		results, err := Query(s, w, sys)
		if err != nil {
			t.Fatal(err)
		}
		if len(results) != 4 {
			t.Fatalf("w=%d: %d engines, want 4", w, len(results))
		}
		for _, r := range results {
			if r.Count != ref {
				t.Errorf("w=%d %s count = %d, want %d", w, r.Engine, r.Count, ref)
			}
			if r.LatencyNS <= 0 {
				t.Errorf("w=%d %s non-positive latency", w, r.Engine)
			}
		}
	}
}

func TestQueryOnPIMUnit(t *testing.T) {
	// Cross-check the CORUSCANT engine semantics on the real bit-level
	// simulator: a store slice ANDed through BulkBitwise must match the
	// reference count.
	s := NewStore(256, 2, 5)
	cfg := params.DefaultConfig()
	cfg.Geometry.TrackWidth = 256
	u := pim.MustNewUnit(cfg)
	ops, err := s.operandRows(2)
	if err != nil {
		t.Fatal(err)
	}
	rows := make([]dbc.Row, len(ops))
	for i, o := range ops {
		rows[i] = dbc.FromBits(unpack(o, s.Users)...)
	}
	res, err := u.BulkBitwise(dbc.OpAND, rows)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := s.Reference(2)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.OnesCount(); got != ref {
		t.Errorf("PIM-unit count = %d, want %d", got, ref)
	}
}

func TestFig12Shape(t *testing.T) {
	// The headline: CORUSCANT stays nearly flat in the criteria count
	// while the DRAM PIMs grow linearly, yielding the 1.6×/2.2×/3.4×
	// ELP²IM speedups (±30%).
	sys := testSystem()
	s := NewStore(1<<24, 4, 1)
	want := map[int]float64{2: 1.6, 3: 2.2, 4: 3.4}
	var prevCor float64
	for w := 2; w <= 4; w++ {
		results, err := Query(s, w, sys)
		if err != nil {
			t.Fatal(err)
		}
		var elp, cor, amb float64
		for _, r := range results {
			switch r.Engine {
			case "ELP2IM":
				elp = r.LatencyNS
			case "Ambit":
				amb = r.LatencyNS
			case "CORUSCANT":
				cor = r.LatencyNS
			}
		}
		ratio := elp / cor
		if ratio < want[w]*0.7 || ratio > want[w]*1.3 {
			t.Errorf("w=%d: speedup over ELP2IM %.2f, want ≈%.1f", w, ratio, want[w])
		}
		if amb <= elp {
			t.Errorf("w=%d: Ambit should be slower than ELP2IM", w)
		}
		if prevCor != 0 && cor != prevCor {
			t.Errorf("w=%d: CORUSCANT latency changed with criteria count (%.0f vs %.0f ns)", w, cor, prevCor)
		}
		prevCor = cor
	}
}

func TestQueryErrors(t *testing.T) {
	sys := testSystem()
	s := NewStore(100, 2, 1)
	if _, err := s.Reference(5); err == nil {
		t.Error("out-of-range week accepted")
	}
	if _, err := QueryCoruscant(s, 0, sys); err == nil {
		t.Error("w=0 accepted")
	}
	// More criteria than the TR window.
	cfg := params.DefaultConfig()
	cfg.TRD = params.TRD3
	small := mem.NewSystem(cfg)
	s4 := NewStore(100, 4, 1)
	if _, err := QueryCoruscant(s4, 4, small); err == nil {
		t.Error("5 criteria on TRD=3 accepted")
	}
}

func TestPopcountProperty(t *testing.T) {
	check := func(words [4]uint64) bool {
		b := Bitmap(words[:])
		n := 0
		for i := 0; i < 256; i++ {
			if b.Get(i) {
				n++
			}
		}
		return n == b.Popcount()
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestUnpackRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	b := NewBitmap(200)
	for i := 0; i < 200; i++ {
		if rng.Intn(2) == 1 {
			b.Set(i)
		}
	}
	row := unpack(b, 200)
	if countRow(row) != b.Popcount() {
		t.Error("unpack changed the popcount")
	}
	for i := 0; i < 200; i++ {
		if (row[i] == 1) != b.Get(i) {
			t.Fatalf("bit %d mismatch", i)
		}
	}
}
