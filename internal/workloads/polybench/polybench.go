// Package polybench implements the add/multiply-heavy subset of the
// Polybench suite used by Fig. 10/11 (§V-C): linear-algebra,
// matrix-multiply and data-mining kernels. Each kernel exists twice:
//
//   - a functional implementation over an instrumented arithmetic
//     context, executable at any problem size (the tests run small sizes
//     and check the analytic formulas against the instrumented counts);
//   - analytic operation/traffic counts at the benchmark size, standing
//     in for the paper's pintool traces (the trace is consumed only as
//     #adds, #mults and off-chip bytes).
//
// Off-chip traffic uses a per-kernel streaming model documented on each
// Counts function: element size 8 bytes (double), 64-byte lines, with line-level
// reuse for unit-stride streams and full misses for strided ones.
package polybench

import (
	"fmt"

	"repro/internal/baseline/cpu"
)

// Ctx is the instrumented arithmetic context: kernels perform all
// floating-point work through it so operation counts are observable.
type Ctx struct {
	Adds, Mults int64
}

// Add returns a+b, counting one addition.
func (c *Ctx) Add(a, b float64) float64 { c.Adds++; return a + b }

// Sub returns a-b, counting one addition (same ALU class).
func (c *Ctx) Sub(a, b float64) float64 { c.Adds++; return a - b }

// Mul returns a*b, counting one multiplication.
func (c *Ctx) Mul(a, b float64) float64 { c.Mults++; return a * b }

// Kernel is one Polybench benchmark.
type Kernel struct {
	Name   string
	Domain string

	// Run executes the kernel functionally at size n and returns a
	// checksum of the outputs.
	Run func(c *Ctx, n int) float64

	// Counts returns the analytic operation and traffic counts at
	// size n.
	Counts func(n int) cpu.OpCounts

	// DefaultN is the Fig. 10/11 problem size.
	DefaultN int
}

// Kernels returns the Fig. 10/11 benchmark set in display order.
func Kernels() []Kernel {
	return []Kernel{
		{"2mm", "linear-algebra", run2mm, counts2mm, 512},
		{"3mm", "linear-algebra", run3mm, counts3mm, 512},
		{"atax", "linear-algebra", runAtax, countsAtax, 2048},
		{"bicg", "linear-algebra", runBicg, countsBicg, 2048},
		{"doitgen", "linear-algebra", runDoitgen, countsDoitgen, 128},
		{"gemm", "linear-algebra", runGemm, countsGemm, 512},
		{"gemver", "linear-algebra", runGemver, countsGemver, 2048},
		{"gesummv", "linear-algebra", runGesummv, countsGesummv, 2048},
		{"mvt", "linear-algebra", runMvt, countsMvt, 2048},
		{"symm", "linear-algebra", runSymm, countsSymm, 512},
		{"syr2k", "linear-algebra", runSyr2k, countsSyr2k, 512},
		{"syrk", "linear-algebra", runSyrk, countsSyrk, 512},
		{"trmm", "linear-algebra", runTrmm, countsTrmm, 512},
		{"covariance", "datamining", runCovariance, countsCovariance, 512},
	}
}

// ByName returns the named kernel.
func ByName(name string) (Kernel, error) {
	for _, k := range Kernels() {
		if k.Name == name {
			return k, nil
		}
	}
	return Kernel{}, fmt.Errorf("polybench: unknown kernel %q", name)
}

// --- helpers -------------------------------------------------------------

const (
	elemBytes = 8 // Polybench's default DATA_TYPE is double
	lineBytes = 64
	lineElems = lineBytes / elemBytes
)

// matrix returns an n×n matrix with deterministic pseudo-data.
func matrix(n int, seed float64) [][]float64 {
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
		for j := range m[i] {
			m[i][j] = float64((i*7+j*3)%13)/13 + seed
		}
	}
	return m
}

// vector returns a deterministic vector.
func vector(n int, seed float64) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = float64(i%11)/11 + seed
	}
	return v
}

// checksum folds a matrix into one value.
func checksum(m [][]float64) float64 {
	var s float64
	for _, row := range m {
		for _, v := range row {
			s += v
		}
	}
	return s
}

func checksumVec(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// matmulInto computes dst = A·B through the context.
func matmulInto(c *Ctx, dst, a, b [][]float64) {
	n := len(dst)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var acc float64
			for k := 0; k < n; k++ {
				acc = c.Add(acc, c.Mul(a[i][k], b[k][j]))
			}
			dst[i][j] = acc
		}
	}
}

// zeros returns an n×n zero matrix.
func zeros(n int) [][]float64 {
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
	}
	return m
}

// n2 and n3 avoid overflow-prone int multiplication chains.
func n2(n int) int64 { return int64(n) * int64(n) }
func n3(n int) int64 { return int64(n) * int64(n) * int64(n) }

// streamBytes is the traffic of streaming k arrays of e elements once
// with unit stride (line-filtered compulsory misses).
func streamBytes(k int, e int64) int64 {
	return int64(k) * e * elemBytes
}

// stridedBytes is the traffic of e strided (column-order) accesses that
// miss on every line-sized group of lineElems rows — conservatively one
// line fetch per lineElems accesses once the working set exceeds cache.
func stridedBytes(e int64) int64 {
	return e * elemBytes
}
