package polybench

import "repro/internal/baseline/cpu"

// Each kernel below documents its loop nest, the exact operation-count
// formula the tests verify against the instrumented run, and the
// traffic model used for the Fig. 10/11 CPU baseline.

// --- gemm: C = α·A·B + β·C ------------------------------------------------

func runGemm(c *Ctx, n int) float64 {
	a, b := matrix(n, 0.1), matrix(n, 0.2)
	cm := matrix(n, 0.3)
	const alpha, beta = 1.5, 1.2
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			cm[i][j] = c.Mul(beta, cm[i][j])
			var acc float64
			for k := 0; k < n; k++ {
				acc = c.Add(acc, c.Mul(a[i][k], b[k][j]))
			}
			cm[i][j] = c.Add(cm[i][j], c.Mul(alpha, acc))
		}
	}
	return checksum(cm)
}

// countsGemm: mults = N³ + 2N², adds = N³ + N². Traffic: A and C
// streamed once; B is column-accessed inside the k-loop, and for the
// benchmark N its column working set exceeds the caches, so every inner
// iteration fetches one element off-chip (plain-code Polybench defeats
// line reuse on the strided operand).
func countsGemm(n int) cpu.OpCounts {
	return cpu.OpCounts{
		Mults:    n3(n) + 2*n2(n),
		Adds:     n3(n) + n2(n),
		BusBytes: streamBytes(3, n2(n)) + stridedBytes(n3(n)),
	}
}

// --- 2mm: D = A·B, E = D·C ------------------------------------------------

func run2mm(c *Ctx, n int) float64 {
	a, b, cc := matrix(n, 0.1), matrix(n, 0.2), matrix(n, 0.3)
	d, e := zeros(n), zeros(n)
	matmulInto(c, d, a, b)
	matmulInto(c, e, d, cc)
	return checksum(e)
}

// counts2mm: two N³ matmuls.
func counts2mm(n int) cpu.OpCounts {
	return cpu.OpCounts{
		Mults:    2 * n3(n),
		Adds:     2 * n3(n),
		BusBytes: streamBytes(5, n2(n)) + stridedBytes(2*n3(n)),
	}
}

// --- 3mm: E = A·B, F = C·D, G = E·F ----------------------------------------

func run3mm(c *Ctx, n int) float64 {
	a, b := matrix(n, 0.1), matrix(n, 0.2)
	cc, d := matrix(n, 0.3), matrix(n, 0.4)
	e, f, g := zeros(n), zeros(n), zeros(n)
	matmulInto(c, e, a, b)
	matmulInto(c, f, cc, d)
	matmulInto(c, g, e, f)
	return checksum(g)
}

func counts3mm(n int) cpu.OpCounts {
	return cpu.OpCounts{
		Mults:    3 * n3(n),
		Adds:     3 * n3(n),
		BusBytes: streamBytes(7, n2(n)) + stridedBytes(3*n3(n)),
	}
}

// --- atax: y = Aᵀ·(A·x) -----------------------------------------------------

func runAtax(c *Ctx, n int) float64 {
	a := matrix(n, 0.1)
	x := vector(n, 0.2)
	tmp := make([]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		var acc float64
		for j := 0; j < n; j++ {
			acc = c.Add(acc, c.Mul(a[i][j], x[j]))
		}
		tmp[i] = acc
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			y[j] = c.Add(y[j], c.Mul(a[i][j], tmp[i]))
		}
	}
	return checksumVec(y)
}

// countsAtax: two N² matrix-vector products; A streamed twice with no
// reuse between them (matrix exceeds cache), vectors cached.
func countsAtax(n int) cpu.OpCounts {
	return cpu.OpCounts{
		Mults:    2 * n2(n),
		Adds:     2 * n2(n),
		BusBytes: 2 * streamBytes(1, n2(n)),
	}
}

// --- bicg: q = A·p, s = Aᵀ·r -------------------------------------------------

func runBicg(c *Ctx, n int) float64 {
	a := matrix(n, 0.1)
	p, r := vector(n, 0.2), vector(n, 0.3)
	q := make([]float64, n)
	s := make([]float64, n)
	for i := 0; i < n; i++ {
		var acc float64
		for j := 0; j < n; j++ {
			s[j] = c.Add(s[j], c.Mul(r[i], a[i][j]))
			acc = c.Add(acc, c.Mul(a[i][j], p[j]))
		}
		q[i] = acc
	}
	return checksumVec(q) + checksumVec(s)
}

// countsBicg: both products share one streaming pass over A.
func countsBicg(n int) cpu.OpCounts {
	return cpu.OpCounts{
		Mults:    2 * n2(n),
		Adds:     2 * n2(n),
		BusBytes: streamBytes(1, n2(n)),
	}
}

// --- doitgen: sum[r][q][p] = Σs A[r][q][s]·C4[s][p] --------------------------

func runDoitgen(c *Ctx, n int) float64 {
	nr, nq, np := n, n, n
	a := make([][][]float64, nr)
	for r := range a {
		a[r] = matrix(nq, float64(r)*0.01)
	}
	c4 := matrix(np, 0.5)
	var sum float64
	for r := 0; r < nr; r++ {
		for q := 0; q < nq; q++ {
			out := make([]float64, np)
			for p := 0; p < np; p++ {
				var acc float64
				for s := 0; s < np; s++ {
					acc = c.Add(acc, c.Mul(a[r][q][s], c4[s][p]))
				}
				out[p] = acc
			}
			copy(a[r][q], out)
			sum += out[np-1]
		}
	}
	return sum
}

// countsDoitgen: NR·NQ·NP² MACs with the C4 matrix cached (NP² small).
func countsDoitgen(n int) cpu.OpCounts {
	ops := n3(n) * int64(n)
	return cpu.OpCounts{
		Mults: ops,
		Adds:  ops,
		// A read and rewritten, plus the column-strided C4 operand
		// fetched per inner iteration.
		BusBytes: 2*streamBytes(1, n3(n)) + stridedBytes(ops),
	}
}

// --- gemver: B = A + u1·v1ᵀ + u2·v2ᵀ; x = βBᵀy + z; w = αBx -------------------

func runGemver(c *Ctx, n int) float64 {
	a := matrix(n, 0.1)
	u1, v1 := vector(n, 0.2), vector(n, 0.3)
	u2, v2 := vector(n, 0.4), vector(n, 0.5)
	y, z := vector(n, 0.6), vector(n, 0.7)
	const alpha, beta = 1.1, 1.3
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a[i][j] = c.Add(a[i][j], c.Add(c.Mul(u1[i], v1[j]), c.Mul(u2[i], v2[j])))
		}
	}
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			x[j] = c.Add(x[j], c.Mul(c.Mul(beta, a[i][j]), y[i]))
		}
	}
	for i := 0; i < n; i++ {
		x[i] = c.Add(x[i], z[i])
	}
	w := make([]float64, n)
	for i := 0; i < n; i++ {
		var acc float64
		for j := 0; j < n; j++ {
			acc = c.Add(acc, c.Mul(c.Mul(alpha, a[i][j]), x[j]))
		}
		w[i] = acc
	}
	return checksumVec(w)
}

// countsGemver: rank-2 update (2N² mult, 2N² add) plus two scaled
// matrix-vector products (2N² mult + N² add each) and a vector add.
func countsGemver(n int) cpu.OpCounts {
	return cpu.OpCounts{
		Mults:    6 * n2(n),
		Adds:     4*n2(n) + int64(n),
		BusBytes: 3 * streamBytes(1, n2(n)), // A updated then read twice
	}
}

// --- gesummv: y = α·A·x + β·B·x ----------------------------------------------

func runGesummv(c *Ctx, n int) float64 {
	a, b := matrix(n, 0.1), matrix(n, 0.2)
	x := vector(n, 0.3)
	y := make([]float64, n)
	const alpha, beta = 1.4, 1.6
	for i := 0; i < n; i++ {
		var ta, tb float64
		for j := 0; j < n; j++ {
			ta = c.Add(ta, c.Mul(a[i][j], x[j]))
			tb = c.Add(tb, c.Mul(b[i][j], x[j]))
		}
		y[i] = c.Add(c.Mul(alpha, ta), c.Mul(beta, tb))
	}
	return checksumVec(y)
}

func countsGesummv(n int) cpu.OpCounts {
	return cpu.OpCounts{
		Mults:    2*n2(n) + 2*int64(n),
		Adds:     2*n2(n) + int64(n),
		BusBytes: streamBytes(2, n2(n)),
	}
}

// --- mvt: x1 += A·y1; x2 += Aᵀ·y2 ---------------------------------------------

func runMvt(c *Ctx, n int) float64 {
	a := matrix(n, 0.1)
	x1, x2 := vector(n, 0.2), vector(n, 0.3)
	y1, y2 := vector(n, 0.4), vector(n, 0.5)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			x1[i] = c.Add(x1[i], c.Mul(a[i][j], y1[j]))
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			x2[i] = c.Add(x2[i], c.Mul(a[j][i], y2[j]))
		}
	}
	return checksumVec(x1) + checksumVec(x2)
}

// countsMvt: the transposed product's column accesses miss per line
// group, adding strided traffic on top of the two streaming passes.
func countsMvt(n int) cpu.OpCounts {
	return cpu.OpCounts{
		Mults:    2 * n2(n),
		Adds:     2 * n2(n),
		BusBytes: streamBytes(1, n2(n)) + stridedBytes(n2(n)),
	}
}

// --- symm: C = α·A·B + β·C with A symmetric (lower stored) --------------------

func runSymm(c *Ctx, n int) float64 {
	a, b := matrix(n, 0.1), matrix(n, 0.2)
	cm := matrix(n, 0.3)
	const alpha, beta = 1.2, 1.1
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var temp float64
			for k := 0; k < i; k++ {
				cm[k][j] = c.Add(cm[k][j], c.Mul(c.Mul(alpha, b[i][j]), a[i][k]))
				temp = c.Add(temp, c.Mul(b[k][j], a[i][k]))
			}
			cm[i][j] = c.Add(c.Mul(beta, cm[i][j]),
				c.Add(c.Mul(c.Mul(alpha, b[i][j]), a[i][i]), c.Mul(alpha, temp)))
		}
	}
	return checksum(cm)
}

// countsSymm: the k<i triangle contributes (N³−N²)/2 iterations with 3
// mults and 2 adds each, plus 4 mults and 2 adds per (i,j).
func countsSymm(n int) cpu.OpCounts {
	tri := (n3(n) - n2(n)) / 2
	return cpu.OpCounts{
		Mults:    3*tri + 4*n2(n),
		Adds:     2*tri + 2*n2(n),
		BusBytes: streamBytes(3, n2(n)) + stridedBytes(tri),
	}
}

// --- syr2k: C = α(A·Bᵀ + B·Aᵀ) + β·C ------------------------------------------

func runSyr2k(c *Ctx, n int) float64 {
	a, b := matrix(n, 0.1), matrix(n, 0.2)
	cm := matrix(n, 0.3)
	const alpha, beta = 1.3, 1.2
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			cm[i][j] = c.Mul(beta, cm[i][j])
			for k := 0; k < n; k++ {
				cm[i][j] = c.Add(cm[i][j],
					c.Add(c.Mul(c.Mul(alpha, a[i][k]), b[j][k]),
						c.Mul(c.Mul(alpha, b[i][k]), a[j][k])))
			}
		}
	}
	return checksum(cm)
}

func countsSyr2k(n int) cpu.OpCounts {
	return cpu.OpCounts{
		Mults: 4*n3(n) + n2(n),
		Adds:  2 * n3(n),
		// A and B are each fully re-streamed for every output row: the
		// matrices exceed the caches at benchmark sizes.
		BusBytes: streamBytes(1, n2(n)) + 2*streamBytes(1, n3(n)),
	}
}

// --- syrk: C = α·A·Aᵀ + β·C ----------------------------------------------------

func runSyrk(c *Ctx, n int) float64 {
	a := matrix(n, 0.1)
	cm := matrix(n, 0.3)
	const alpha, beta = 1.5, 1.4
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			cm[i][j] = c.Mul(beta, cm[i][j])
			for k := 0; k < n; k++ {
				cm[i][j] = c.Add(cm[i][j], c.Mul(c.Mul(alpha, a[i][k]), a[j][k]))
			}
		}
	}
	return checksum(cm)
}

func countsSyrk(n int) cpu.OpCounts {
	return cpu.OpCounts{
		Mults: 2*n3(n) + n2(n),
		Adds:  n3(n),
		// A is fully re-streamed for every output row.
		BusBytes: streamBytes(1, n2(n)) + streamBytes(1, n3(n)),
	}
}

// --- trmm: B = α·Aᵀ·B with A unit lower triangular ------------------------------

func runTrmm(c *Ctx, n int) float64 {
	a, b := matrix(n, 0.1), matrix(n, 0.2)
	const alpha = 1.1
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := i + 1; k < n; k++ {
				b[i][j] = c.Add(b[i][j], c.Mul(a[k][i], b[k][j]))
			}
			b[i][j] = c.Mul(alpha, b[i][j])
		}
	}
	return checksum(b)
}

func countsTrmm(n int) cpu.OpCounts {
	tri := (n3(n) - n2(n)) / 2
	return cpu.OpCounts{
		Mults:    tri + n2(n),
		Adds:     tri,
		BusBytes: streamBytes(2, n2(n)) + stridedBytes(2*tri),
	}
}

// --- covariance ---------------------------------------------------------------

func runCovariance(c *Ctx, n int) float64 {
	data := matrix(n, 0.1)
	mean := make([]float64, n)
	for j := 0; j < n; j++ {
		var acc float64
		for i := 0; i < n; i++ {
			acc = c.Add(acc, data[i][j])
		}
		mean[j] = acc / float64(n)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			data[i][j] = c.Sub(data[i][j], mean[j])
		}
	}
	cov := zeros(n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			var acc float64
			for k := 0; k < n; k++ {
				acc = c.Add(acc, c.Mul(data[k][i], data[k][j]))
			}
			cov[i][j] = acc / float64(n-1)
			cov[j][i] = cov[i][j]
		}
	}
	return checksum(cov)
}

// countsCovariance: mean (N² adds) + centering (N² subs) + upper
// triangle of products (~N³/2 MACs over i≤j).
func countsCovariance(n int) cpu.OpCounts {
	tri := n3(n)/2 + n2(n)/2
	return cpu.OpCounts{
		Mults:    tri,
		Adds:     2*n2(n) + tri,
		BusBytes: 3*streamBytes(1, n2(n)) + stridedBytes(2*tri),
	}
}
