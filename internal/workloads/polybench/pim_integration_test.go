package polybench

import (
	"testing"

	"repro/internal/dbc"
	"repro/internal/params"
	"repro/internal/pim"
)

// TestGemmOnPIMUnit ties the workload layer to the bit-level simulator:
// a small integer matrix multiplication executed entirely through PIM
// operations — lane-parallel multiplies and carry-save large additions —
// must match direct arithmetic. This is the §V-C offload path in
// miniature: the Fig. 10/11 models assume each traced multiply and add
// runs as one of exactly these operations.
func TestGemmOnPIMUnit(t *testing.T) {
	const n = 4
	cfg := params.DefaultConfig()
	cfg.Geometry.TrackWidth = 256 // eight 32-bit product lanes
	u := pim.MustNewUnit(cfg)

	var a, b [n][n]uint64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a[i][j] = uint64((i*31 + j*17) % 251)
			b[i][j] = uint64((i*13 + j*41) % 239)
		}
	}

	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			// Products of one output element, computed lane-parallel.
			av := make([]uint64, n)
			bv := make([]uint64, n)
			for k := 0; k < n; k++ {
				av[k] = a[i][k]
				bv[k] = b[k][j]
			}
			prods, err := u.MultiplyValues(av, bv, 16)
			if err != nil {
				t.Fatal(err)
			}
			// Reduce the partial products with the large-cardinality
			// adder (each product in its own row, 32-bit lanes).
			rows := make([]dbc.Row, n)
			for k := 0; k < n; k++ {
				rows[k] = pim.MustPackLanes([]uint64{prods[k]}, 32, 256)
			}
			sum, err := u.AddLarge(rows, 32)
			if err != nil {
				t.Fatal(err)
			}
			got := pim.UnpackLanes(sum, 32)[0]
			var want uint64
			for k := 0; k < n; k++ {
				want += a[i][k] * b[k][j]
			}
			if got != want {
				t.Fatalf("C[%d][%d] = %d, want %d", i, j, got, want)
			}
		}
	}
}
