package polybench

import (
	"math"
	"testing"
)

func TestKernelRegistry(t *testing.T) {
	ks := Kernels()
	if len(ks) != 14 {
		t.Fatalf("kernel count = %d, want 14", len(ks))
	}
	seen := map[string]bool{}
	for _, k := range ks {
		if seen[k.Name] {
			t.Errorf("duplicate kernel %q", k.Name)
		}
		seen[k.Name] = true
		if k.Run == nil || k.Counts == nil || k.DefaultN <= 0 {
			t.Errorf("kernel %q incomplete", k.Name)
		}
	}
	if !seen["2mm"] || !seen["gemm"] {
		t.Error("§V-C names 2mm and gemm explicitly; both must be present")
	}
}

func TestByName(t *testing.T) {
	k, err := ByName("gemm")
	if err != nil || k.Name != "gemm" {
		t.Fatalf("ByName(gemm) = %v, %v", k.Name, err)
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Error("unknown kernel accepted")
	}
}

// TestAnalyticCountsMatchInstrumented is the core trace-substitute
// validation: the closed-form operation counts must equal the counts
// observed by actually running each kernel.
func TestAnalyticCountsMatchInstrumented(t *testing.T) {
	for _, k := range Kernels() {
		for _, n := range []int{8, 12, 16} {
			if k.Name == "doitgen" && n > 12 {
				continue // quartic kernel; keep test fast
			}
			var c Ctx
			k.Run(&c, n)
			want := k.Counts(n)
			if c.Adds != want.Adds {
				t.Errorf("%s n=%d: instrumented adds %d, analytic %d", k.Name, n, c.Adds, want.Adds)
			}
			if c.Mults != want.Mults {
				t.Errorf("%s n=%d: instrumented mults %d, analytic %d", k.Name, n, c.Mults, want.Mults)
			}
		}
	}
}

func TestKernelsDeterministic(t *testing.T) {
	for _, k := range Kernels() {
		var c1, c2 Ctx
		r1 := k.Run(&c1, 8)
		r2 := k.Run(&c2, 8)
		if r1 != r2 {
			t.Errorf("%s not deterministic: %v vs %v", k.Name, r1, r2)
		}
		if math.IsNaN(r1) || math.IsInf(r1, 0) {
			t.Errorf("%s checksum %v", k.Name, r1)
		}
	}
}

func TestTrafficPositiveAndScaling(t *testing.T) {
	for _, k := range Kernels() {
		small := k.Counts(64)
		big := k.Counts(128)
		if small.BusBytes <= 0 {
			t.Errorf("%s: non-positive traffic", k.Name)
		}
		if big.BusBytes <= small.BusBytes {
			t.Errorf("%s: traffic not increasing with n", k.Name)
		}
		if big.Ops() <= small.Ops() {
			t.Errorf("%s: ops not increasing with n", k.Name)
		}
	}
}

func TestBytesPerOpInMemoryBoundRange(t *testing.T) {
	// The kernels are selected for being memory-bound on a CPU: the
	// cache-filtered traffic should be a fraction of a byte up to a few
	// bytes per operation at benchmark sizes.
	for _, k := range Kernels() {
		b := k.Counts(k.DefaultN).BytesPerOp()
		if b < 0.02 || b > 10 {
			t.Errorf("%s: %.3f bytes/op outside memory-bound range", k.Name, b)
		}
	}
}
