package cnn

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/baseline/isaac"
	"repro/internal/params"
	"repro/internal/pim"
)

// Precision selects the inference mode of Table IV.
type Precision int

// Inference modes: 8-bit full precision, ternary weights (DrAcc [41]),
// binary weights (NID [44]).
const (
	Full Precision = iota
	TWN
	BWN
)

func (p Precision) String() string {
	switch p {
	case Full:
		return "full"
	case TWN:
		return "TWN"
	default:
		return "BWN"
	}
}

// Cell is one Table IV entry.
type Cell struct {
	Backend   string
	Precision Precision
	Network   string
	FPS       float64
}

// --- Per-operation cost models -------------------------------------------

// measuredMultCycles returns the PIM unit's measured 8-bit multiply
// latency for a TRD, from the bit-level simulator (cached).
var measuredMultCycles = sync.OnceValue(func() map[params.TRD]int {
	out := map[params.TRD]int{}
	for _, trd := range []params.TRD{params.TRD3, params.TRD5, params.TRD7} {
		cfg := params.DefaultConfig()
		cfg.TRD = trd
		cfg.Geometry.TrackWidth = 16
		u := pim.MustNewUnit(cfg)
		if _, err := u.MultiplyValues([]uint64{173}, []uint64{89}, 8); err != nil {
			panic(err)
		}
		out[trd] = u.Stats().Cycles()
	}
	return out
})

// coruscantMACCycles is the full-precision per-MAC cost: the measured
// 8-bit multiply plus the accumulation share of one 7→3 reduction.
func coruscantMACCycles(trd params.TRD) float64 {
	return float64(measuredMultCycles()[trd]) + 4
}

// spimMACCycles is SPIM's per-MAC cost: the Table III multiply plus one
// two-operand accumulate.
const spimMACCycles = 149 + 49

// twnCyclesPerAdd is the CORUSCANT ternary-mode cost per Eq. 2 addition,
// normalized to TRD=7. The TRD=5 and TRD=3 factors encode the paper's
// measured sensitivity (§V-E: "increasing the TRD from 3→5 increases
// performance 30-40%, and 5→7 by another 10-20%").
var twnCyclesPerAdd = map[params.TRD]float64{
	params.TRD7: 1.0,
	params.TRD5: 1.09,
	params.TRD3: 1.37,
}

// DRAM PIM per-addition-step costs (memory cycles): ELP²IM's Eq. 3
// carry-lookahead step is 40 cycles (§IV-A); Ambit's is calibrated to
// the Table IV BWN ratio. XNOR passes amortize across the row's lanes.
const (
	elp2imStepCycles = 40
	ambitStepCycles  = 45
	elp2imXnorShare  = 120.0 / 64
	ambitXnorShare   = 336.0 / 64
	memCycleNS       = 1.25
	devCycleNS       = 1.0
	// twnOverDrAccFactor is the DrAcc ternary-weight work relative to the
	// NID binary mode (sign handling doubles the reduction and adds the
	// negation pass); calibrated to Table IV's Ambit BWN/TWN ratio.
	twnOverDrAccFactor = 2.65
)

// --- Work functions (ns of serialized PIM work per inference) -------------

// fpWorkNS is full-precision work: MACs at the per-MAC device cycles.
func fpWorkNS(macCycles float64, n Network) float64 {
	return float64(n.MACs()) * macCycles * devCycleNS
}

// corTWNWorkNS is CORUSCANT ternary work: the Eq. 2 additions consumed
// by carry-save reductions at the TRD-dependent rate.
func corTWNWorkNS(trd params.TRD, n Network) float64 {
	return float64(n.Adds()) * twnCyclesPerAdd[trd] * devCycleNS
}

// dramWorkNS is DRAM PIM binary/ternary work: per output, a
// ⌈log₂ m⌉-level addition tree at the backend's step cost plus the
// amortized XNOR pass; ternary scales by the DrAcc factor.
func dramWorkNS(stepCycles int, xnorShare float64, p Precision, n Network) float64 {
	var cycles float64
	for _, l := range n.Layers {
		if l.Kind == Pool {
			continue
		}
		m := l.ReductionFanIn()
		levels := math.Ceil(math.Log2(float64(m)))
		cycles += float64(l.Outputs()) * (levels*float64(stepCycles) + xnorShare)
	}
	if p == TWN {
		cycles *= twnOverDrAccFactor
	}
	return cycles * memCycleNS
}

// --- Family calibration ----------------------------------------------------

// family is one hardware family's throughput model: T = W/P + T0, with
// the effective parallelism P and the fixed per-inference overhead T0
// (input staging and layer-serialization) calibrated from the family's
// two published operating points. All other cells of the family are
// model outputs.
type family struct {
	P  float64 // effective parallel work units
	T0 float64 // fixed per-inference overhead, ns
}

// calibrate solves P and T0 from work and anchor-FPS pairs on AlexNet
// and LeNet-5.
func calibrate(wAlex, wLenet, fpsAlex, fpsLenet float64) (family, error) {
	tA := 1e9 / fpsAlex
	tL := 1e9 / fpsLenet
	p := (wAlex - wLenet) / (tA - tL)
	if p <= 0 {
		return family{}, fmt.Errorf("cnn: calibration yields non-positive parallelism %v", p)
	}
	t0 := tA - wAlex/p
	if t0 < 0 {
		return family{}, fmt.Errorf("cnn: calibration yields negative overhead %v", t0)
	}
	return family{P: p, T0: t0}, nil
}

// Published anchor cells (Table IV). One family is anchored on its
// reference backend's two operating points; every other cell in the
// family derives from the per-operation cost models above.
const (
	anchorSPIMAlexFPS    = 32.1
	anchorSPIMLenetFPS   = 59
	anchorAmbitBWNAlex   = 227
	anchorAmbitBWNLenet  = 7525
	anchorCor3TWNAlexFPS = 358
	anchorCor3TWNLenet   = 22172
)

// fps evaluates the family model.
func (f family) fps(work float64) float64 {
	return 1e9 / (work/f.P + f.T0)
}

// elp2imOverheadFactor scales the DRAM family's fixed per-inference
// overhead for ELP²IM: it needs no RowClone staging copies, so its fixed
// data-movement cost is lower (calibrated to the Table IV LeNet-5 BWN
// cells).
const elp2imOverheadFactor = 0.72

// Table4 computes the full Table IV matrix.
func Table4() ([]Cell, error) {
	alex, lenet := AlexNet(), LeNet5()
	var cells []Cell

	// DWM full-precision family, anchored on SPIM. The per-inference
	// time of a full-precision mapping is dominated end to end by PIM
	// operations (including its staging, which runs through the same
	// units), so throughput scales inversely with the per-MAC cycles:
	// FPS(b) = FPS(SPIM) · cyclesPerMAC(SPIM)/cyclesPerMAC(b).
	fpAnchor := map[string]float64{alex.Name: anchorSPIMAlexFPS, lenet.Name: anchorSPIMLenetFPS}
	for _, n := range []Network{alex, lenet} {
		cells = append(cells, Cell{"SPIM", Full, n.Name, fpAnchor[n.Name]})
		for _, trd := range []params.TRD{params.TRD3, params.TRD5, params.TRD7} {
			cells = append(cells, Cell{
				corName(trd), Full, n.Name,
				fpAnchor[n.Name] * spimMACCycles / coruscantMACCycles(trd),
			})
		}
	}

	// ISAAC (ReRAM crossbar), its own two published operating points.
	for _, n := range []Network{alex, lenet} {
		cells = append(cells, Cell{"ISAAC", Full, n.Name, isaac.FPS(n.MACs())})
	}

	// DRAM PIM family, anchored on Ambit BWN.
	dram, err := calibrate(
		dramWorkNS(ambitStepCycles, ambitXnorShare, BWN, alex),
		dramWorkNS(ambitStepCycles, ambitXnorShare, BWN, lenet),
		anchorAmbitBWNAlex, anchorAmbitBWNLenet)
	if err != nil {
		return nil, err
	}
	elp := family{P: dram.P, T0: dram.T0 * elp2imOverheadFactor}
	for _, n := range []Network{alex, lenet} {
		for _, p := range []Precision{BWN, TWN} {
			cells = append(cells,
				Cell{"Ambit", p, n.Name, dram.fps(dramWorkNS(ambitStepCycles, ambitXnorShare, p, n))},
				Cell{"ELP2IM", p, n.Name, elp.fps(dramWorkNS(elp2imStepCycles, elp2imXnorShare, p, n))})
		}
	}

	// CORUSCANT ternary family, anchored on CORUSCANT-3. The fixed
	// overhead consists of PIM operations itself, so it scales with the
	// TRD-dependent per-add cost.
	cor, err := calibrate(
		corTWNWorkNS(params.TRD3, alex), corTWNWorkNS(params.TRD3, lenet),
		anchorCor3TWNAlexFPS, anchorCor3TWNLenet)
	if err != nil {
		return nil, err
	}
	for _, n := range []Network{alex, lenet} {
		for _, trd := range []params.TRD{params.TRD3, params.TRD5, params.TRD7} {
			fam := family{P: cor.P, T0: cor.T0 * twnCyclesPerAdd[trd] / twnCyclesPerAdd[params.TRD3]}
			cells = append(cells, Cell{corName(trd), TWN, n.Name, fam.fps(corTWNWorkNS(trd, n))})
		}
	}
	return cells, nil
}

func corName(trd params.TRD) string {
	return fmt.Sprintf("CORUSCANT-%d", int(trd))
}

// Find returns the named cell from a Table4 result.
func Find(cells []Cell, backend string, p Precision, network string) (Cell, error) {
	for _, c := range cells {
		if c.Backend == backend && c.Precision == p && c.Network == network {
			return c, nil
		}
	}
	return Cell{}, fmt.Errorf("cnn: no cell %s/%v/%s", backend, p, network)
}

// --- Table VI: N-modular redundancy ---------------------------------------

// voteOverhead is the fractional cost of the inserted voting
// instructions per protected operation (§V-F: "nominal overheads for the
// inserted voting instructions"). A TRD=3 window makes voting a
// multi-step operation (no C' majority gate, §III-F), so its overhead is
// much higher; values calibrated to Table VI's TMR columns.
var voteOverhead = map[params.TRD]float64{
	params.TRD3: 0.33,
	params.TRD5: 0.045,
	params.TRD7: 0.04,
}

// NMRCell is one Table VI entry.
type NMRCell struct {
	TRD       params.TRD
	N         int
	Precision Precision
	Network   string
	FPS       float64
}

// Table6 computes CORUSCANT CNN throughput under N-modular redundancy:
// every PIM operation (including the staged data movement) repeats N
// times, plus the inserted voting instructions.
func Table6() ([]NMRCell, error) {
	base, err := Table4()
	if err != nil {
		return nil, err
	}
	var out []NMRCell
	for _, netName := range []string{AlexNet().Name, LeNet5().Name} {
		for _, prec := range []Precision{Full, TWN} {
			for _, trd := range []params.TRD{params.TRD3, params.TRD5, params.TRD7} {
				c, err := Find(base, corName(trd), prec, netName)
				if err != nil {
					return nil, err
				}
				for _, nmr := range []int{3, 5, 7} {
					if nmr > int(trd) {
						continue
					}
					fps := c.FPS / (float64(nmr) * (1 + voteOverhead[trd]))
					out = append(out, NMRCell{trd, nmr, prec, netName, fps})
				}
			}
		}
	}
	return out, nil
}

// FindNMR returns the matching Table VI cell.
func FindNMR(cells []NMRCell, trd params.TRD, n int, p Precision, network string) (NMRCell, error) {
	for _, c := range cells {
		if c.TRD == trd && c.N == n && c.Precision == p && c.Network == network {
			return c, nil
		}
	}
	return NMRCell{}, fmt.Errorf("cnn: no NMR cell TRD=%d N=%d %v %s", int(trd), n, p, network)
}
