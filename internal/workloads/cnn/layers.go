package cnn

import (
	"fmt"

	"repro/internal/dbc"
	"repro/internal/pim"
)

// This file completes the §IV case study functionally: multi-channel
// convolution (§IV-A), max pooling (§IV-B) and the fully-connected layer
// with bias and ReLU (§IV-C), composed into a Sequential network that
// runs end to end on the PIM unit and is verified against integer
// references.

// Tensor3 is a [channel][row][col] integer activation volume.
type Tensor3 [][][]int

// NewTensor3 allocates a zero tensor.
func NewTensor3(c, h, w int) Tensor3 {
	t := make(Tensor3, c)
	for i := range t {
		t[i] = make([][]int, h)
		for y := range t[i] {
			t[i][y] = make([]int, w)
		}
	}
	return t
}

// Dims returns the tensor's shape.
func (t Tensor3) Dims() (c, h, w int) {
	if len(t) == 0 || len(t[0]) == 0 {
		return len(t), 0, 0
	}
	return len(t), len(t[0]), len(t[0][0])
}

// PIMLayer is one stage of a Sequential network (distinct from the
// analytic Layer descriptors of nets.go: these layers actually execute).
type PIMLayer interface {
	// Forward computes the layer output on the PIM unit.
	Forward(u *pim.Unit, x Tensor3) (Tensor3, error)
	// ForwardRef computes the reference output with plain integers.
	ForwardRef(x Tensor3) Tensor3
}

// ConvLayer is a 3×3 valid-padding convolution with signed integer
// weights, per-output-channel bias, and ReLU.
type ConvLayer struct {
	W [][][3][3]int // [outC][inC] kernels, weights in [-15, 15]
	B []int         // per-output-channel bias
}

// ForwardRef computes the reference convolution.
func (l *ConvLayer) ForwardRef(x Tensor3) Tensor3 {
	_, h, w := x.Dims()
	out := NewTensor3(len(l.W), h-2, w-2)
	for oc := range l.W {
		for y := 0; y < h-2; y++ {
			for xx := 0; xx < w-2; xx++ {
				acc := l.B[oc]
				for ic := range l.W[oc] {
					for ky := 0; ky < 3; ky++ {
						for kx := 0; kx < 3; kx++ {
							acc += l.W[oc][ic][ky][kx] * x[ic][y+ky][xx+kx]
						}
					}
				}
				if acc < 0 {
					acc = 0
				}
				out[oc][y][xx] = acc
			}
		}
	}
	return out
}

// Forward computes the convolution on the PIM unit: per output channel,
// the taps of every input channel become lane-parallel multiplications,
// positive and negative partial sums accumulate through the
// large-cardinality adder, and the ReLU predicated refresh applies the
// activation.
func (l *ConvLayer) Forward(u *pim.Unit, x Tensor3) (Tensor3, error) {
	c, h, w := x.Dims()
	if len(l.W) == 0 || len(l.B) != len(l.W) {
		return nil, fmt.Errorf("cnn: malformed conv layer")
	}
	if h < 3 || w < 3 {
		return nil, fmt.Errorf("cnn: input %dx%d too small for 3x3 kernels", h, w)
	}
	lanes := u.Width() / laneW
	out := NewTensor3(len(l.W), h-2, w-2)
	pixels := make([][2]int, 0, (h-2)*(w-2))
	for y := 0; y < h-2; y++ {
		for xx := 0; xx < w-2; xx++ {
			pixels = append(pixels, [2]int{y, xx})
		}
	}
	for oc := range l.W {
		if len(l.W[oc]) != c {
			return nil, fmt.Errorf("cnn: conv out-channel %d has %d kernels for %d input channels",
				oc, len(l.W[oc]), c)
		}
		for start := 0; start < len(pixels); start += lanes {
			batch := pixels[start:min(start+lanes, len(pixels))]
			var posRows, negRows []dbc.Row
			for ic := 0; ic < c; ic++ {
				for ky := 0; ky < 3; ky++ {
					for kx := 0; kx < 3; kx++ {
						wgt := l.W[oc][ic][ky][kx]
						if wgt == 0 {
							continue
						}
						av := make([]uint64, len(batch))
						bv := make([]uint64, len(batch))
						for i, p := range batch {
							av[i] = uint64(x[ic][p[0]+ky][p[1]+kx])
							bv[i] = uint64(abs(wgt))
						}
						prods, err := u.MultiplyValues(av, bv, laneW/2)
						if err != nil {
							return nil, err
						}
						row, err := pim.PackLanes(prods, laneW, u.Width())
						if err != nil {
							return nil, err
						}
						if wgt > 0 {
							posRows = append(posRows, row)
						} else {
							negRows = append(negRows, row)
						}
					}
				}
			}
			// Bias joins the positive (or, two's complement, negative)
			// partial sums as one more operand row.
			bias := l.B[oc]
			if bias != 0 {
				bv := make([]uint64, len(batch))
				for i := range bv {
					bv[i] = uint64(abs(bias))
				}
				row, err := pim.PackLanes(bv, laneW, u.Width())
				if err != nil {
					return nil, err
				}
				if bias > 0 {
					posRows = append(posRows, row)
				} else {
					negRows = append(negRows, row)
				}
			}
			acc, err := signedSum(u, posRows, negRows, len(batch))
			if err != nil {
				return nil, err
			}
			relued, err := u.ReLU(acc, laneW)
			if err != nil {
				return nil, err
			}
			vals := pim.UnpackLanes(relued, laneW)
			for i, p := range batch {
				out[oc][p[0]][p[1]] = int(vals[i])
			}
		}
	}
	return out, nil
}

// signedSum computes Σpos − Σneg in two's-complement lanes.
func signedSum(u *pim.Unit, posRows, negRows []dbc.Row, batch int) (dbc.Row, error) {
	pos, err := sumRows(u, posRows)
	if err != nil {
		return dbc.Row{}, err
	}
	if len(negRows) == 0 {
		if pos.IsEmpty() {
			return dbc.NewRow(u.Width()), nil
		}
		return pos, nil
	}
	neg, err := sumRows(u, negRows)
	if err != nil {
		return dbc.Row{}, err
	}
	ones := make([]uint64, batch)
	for i := range ones {
		ones[i] = 1
	}
	oneRow, err := pim.PackLanes(ones, laneW, u.Width())
	if err != nil {
		return dbc.Row{}, err
	}
	operands := []dbc.Row{complementRow(neg), oneRow}
	if !pos.IsEmpty() {
		operands = append([]dbc.Row{pos}, operands...)
	}
	return u.AddLarge(operands, laneW)
}

// PoolLayer is a 2×2 max pool (§IV-B), executed through the TR
// tournament.
type PoolLayer struct{}

// ForwardRef computes the reference pooling.
func (PoolLayer) ForwardRef(x Tensor3) Tensor3 {
	c, h, w := x.Dims()
	out := NewTensor3(c, h/2, w/2)
	for ch := 0; ch < c; ch++ {
		for y := 0; y < h/2; y++ {
			for xx := 0; xx < w/2; xx++ {
				m := x[ch][2*y][2*xx]
				for _, v := range []int{x[ch][2*y][2*xx+1], x[ch][2*y+1][2*xx], x[ch][2*y+1][2*xx+1]} {
					if v > m {
						m = v
					}
				}
				out[ch][y][xx] = m
			}
		}
	}
	return out
}

// Forward pools on the PIM unit.
func (PoolLayer) Forward(u *pim.Unit, x Tensor3) (Tensor3, error) {
	c, h, w := x.Dims()
	if h%2 != 0 || w%2 != 0 {
		return nil, fmt.Errorf("cnn: %dx%d not 2x2-poolable", h, w)
	}
	lanes := u.Width() / laneW
	out := NewTensor3(c, h/2, w/2)
	type win struct{ ch, y, x int }
	wins := make([]win, 0, c*(h/2)*(w/2))
	for ch := 0; ch < c; ch++ {
		for y := 0; y < h/2; y++ {
			for xx := 0; xx < w/2; xx++ {
				wins = append(wins, win{ch, y, xx})
			}
		}
	}
	for start := 0; start < len(wins); start += lanes {
		batch := wins[start:min(start+lanes, len(wins))]
		cand := make([]dbc.Row, 4)
		for cIdx := 0; cIdx < 4; cIdx++ {
			vals := make([]uint64, len(batch))
			for i, p := range batch {
				vals[i] = uint64(x[p.ch][2*p.y+cIdx/2][2*p.x+cIdx%2])
			}
			row, err := pim.PackLanes(vals, laneW, u.Width())
			if err != nil {
				return nil, err
			}
			cand[cIdx] = row
		}
		maxRow, err := u.MaxLarge(cand, laneW)
		if err != nil {
			return nil, err
		}
		vals := pim.UnpackLanes(maxRow, laneW)
		for i, p := range batch {
			out[p.ch][p.y][p.x] = int(vals[i])
		}
	}
	return out, nil
}

// FCLayer is the fully-connected layer of §IV-C: y = ReLU(W·x + b),
// with the flattened input vector and signed integer weights.
type FCLayer struct {
	W [][]int // [out][in]
	B []int
}

// flatten lays a tensor out channel-major.
func flatten(x Tensor3) []int {
	var v []int
	for _, ch := range x {
		for _, row := range ch {
			v = append(v, row...)
		}
	}
	return v
}

// ForwardRef computes the reference output as a 1×1×out tensor.
func (l *FCLayer) ForwardRef(x Tensor3) Tensor3 {
	in := flatten(x)
	out := NewTensor3(len(l.W), 1, 1)
	for j := range l.W {
		acc := l.B[j]
		for i, w := range l.W[j] {
			acc += w * in[i]
		}
		if acc < 0 {
			acc = 0
		}
		out[j][0][0] = acc
	}
	return out
}

// Forward computes the layer on the PIM unit: output neurons batch
// across lanes; every input feature contributes one lane-parallel
// multiplication row, and the signed accumulation plus ReLU follow
// §IV-C's predicated row refresh on the sign bit.
func (l *FCLayer) Forward(u *pim.Unit, x Tensor3) (Tensor3, error) {
	in := flatten(x)
	if len(l.W) == 0 || len(l.B) != len(l.W) {
		return nil, fmt.Errorf("cnn: malformed fc layer")
	}
	lanes := u.Width() / laneW
	out := NewTensor3(len(l.W), 1, 1)
	for start := 0; start < len(l.W); start += lanes {
		end := min(start+lanes, len(l.W))
		batch := end - start
		var posRows, negRows []dbc.Row
		for i, xi := range in {
			if xi == 0 {
				continue
			}
			av := make([]uint64, batch)
			bv := make([]uint64, batch)
			anyPos, anyNeg := false, false
			for j := 0; j < batch; j++ {
				wji := l.W[start+j][i]
				av[j] = uint64(xi)
				bv[j] = uint64(abs(wji))
				if wji > 0 {
					anyPos = true
				}
				if wji < 0 {
					anyNeg = true
				}
			}
			prods, err := u.MultiplyValues(av, bv, laneW/2)
			if err != nil {
				return nil, err
			}
			// Split by weight sign per lane.
			if anyPos {
				pv := make([]uint64, batch)
				for j := 0; j < batch; j++ {
					if l.W[start+j][i] > 0 {
						pv[j] = prods[j]
					}
				}
				row, err := pim.PackLanes(pv, laneW, u.Width())
				if err != nil {
					return nil, err
				}
				posRows = append(posRows, row)
			}
			if anyNeg {
				nv := make([]uint64, batch)
				for j := 0; j < batch; j++ {
					if l.W[start+j][i] < 0 {
						nv[j] = prods[j]
					}
				}
				row, err := pim.PackLanes(nv, laneW, u.Width())
				if err != nil {
					return nil, err
				}
				negRows = append(negRows, row)
			}
		}
		// Bias, split by sign per lane.
		pb := make([]uint64, batch)
		nb := make([]uint64, batch)
		hasPB, hasNB := false, false
		for j := 0; j < batch; j++ {
			b := l.B[start+j]
			if b > 0 {
				pb[j] = uint64(b)
				hasPB = true
			} else if b < 0 {
				nb[j] = uint64(-b)
				hasNB = true
			}
		}
		if hasPB {
			row, err := pim.PackLanes(pb, laneW, u.Width())
			if err != nil {
				return nil, err
			}
			posRows = append(posRows, row)
		}
		if hasNB {
			row, err := pim.PackLanes(nb, laneW, u.Width())
			if err != nil {
				return nil, err
			}
			negRows = append(negRows, row)
		}
		acc, err := signedSum(u, posRows, negRows, batch)
		if err != nil {
			return nil, err
		}
		relued, err := u.ReLU(acc, laneW)
		if err != nil {
			return nil, err
		}
		vals := pim.UnpackLanes(relued, laneW)
		for j := 0; j < batch; j++ {
			out[start+j][0][0] = int(vals[j])
		}
	}
	return out, nil
}

// Sequential chains layers into a network.
type Sequential struct {
	Layers []PIMLayer
}

// Forward runs the network on the PIM unit.
func (s *Sequential) Forward(u *pim.Unit, x Tensor3) (Tensor3, error) {
	cur := x
	for i, l := range s.Layers {
		next, err := l.Forward(u, cur)
		if err != nil {
			return nil, fmt.Errorf("cnn: layer %d: %w", i, err)
		}
		cur = next
	}
	return cur, nil
}

// ForwardRef runs the reference network.
func (s *Sequential) ForwardRef(x Tensor3) Tensor3 {
	cur := x
	for _, l := range s.Layers {
		cur = l.ForwardRef(cur)
	}
	return cur
}
