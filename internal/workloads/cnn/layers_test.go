package cnn

import (
	"math/rand"
	"testing"

	"repro/internal/params"
	"repro/internal/pim"
)

func layerUnit(t *testing.T, trd params.TRD) *pim.Unit {
	t.Helper()
	cfg := params.DefaultConfig()
	cfg.TRD = trd
	cfg.Geometry.TrackWidth = 256
	return pim.MustNewUnit(cfg)
}

func randTensor(c, h, w int, rng *rand.Rand) Tensor3 {
	t := NewTensor3(c, h, w)
	for ch := range t {
		for y := range t[ch] {
			for x := range t[ch][y] {
				t[ch][y][x] = rng.Intn(16)
			}
		}
	}
	return t
}

func assertEqual(t *testing.T, got, want Tensor3, context string) {
	t.Helper()
	gc, gh, gw := got.Dims()
	wc, wh, ww := want.Dims()
	if gc != wc || gh != wh || gw != ww {
		t.Fatalf("%s: dims (%d,%d,%d) vs (%d,%d,%d)", context, gc, gh, gw, wc, wh, ww)
	}
	for c := range want {
		for y := range want[c] {
			for x := range want[c][y] {
				if got[c][y][x] != want[c][y][x] {
					t.Fatalf("%s: [%d][%d][%d] = %d, want %d",
						context, c, y, x, got[c][y][x], want[c][y][x])
				}
			}
		}
	}
}

func TestConvLayerMultiChannel(t *testing.T) {
	rng := rand.New(rand.NewSource(100))
	u := layerUnit(t, params.TRD7)
	layer := &ConvLayer{
		W: [][][3][3]int{
			{{{1, 0, -1}, {2, 0, -2}, {1, 0, -1}}, {{0, 1, 0}, {1, -4, 1}, {0, 1, 0}}},
			{{{-1, -1, -1}, {-1, 8, -1}, {-1, -1, -1}}, {{1, 1, 1}, {1, 1, 1}, {1, 1, 1}}},
		},
		B: []int{3, -5},
	}
	x := randTensor(2, 6, 6, rng)
	got, err := layer.Forward(u, x)
	if err != nil {
		t.Fatal(err)
	}
	assertEqual(t, got, layer.ForwardRef(x), "2-in 2-out conv")
}

func TestPoolLayer(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	u := layerUnit(t, params.TRD7)
	x := randTensor(3, 4, 6, rng)
	var pool PoolLayer
	got, err := pool.Forward(u, x)
	if err != nil {
		t.Fatal(err)
	}
	assertEqual(t, got, pool.ForwardRef(x), "3-channel pool")
}

func TestFCLayer(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	u := layerUnit(t, params.TRD7)
	const in, out = 12, 5
	layer := &FCLayer{W: make([][]int, out), B: make([]int, out)}
	for j := range layer.W {
		layer.W[j] = make([]int, in)
		for i := range layer.W[j] {
			layer.W[j][i] = rng.Intn(9) - 4
		}
		layer.B[j] = rng.Intn(21) - 10
	}
	x := randTensor(3, 2, 2, rng)
	got, err := layer.Forward(u, x)
	if err != nil {
		t.Fatal(err)
	}
	assertEqual(t, got, layer.ForwardRef(x), "fc 12->5")
}

func TestSequentialEndToEnd(t *testing.T) {
	// A LeNet-shaped micro network: conv(1→2) → pool → fc, running
	// entirely on the PIM unit across all TRD variants.
	rng := rand.New(rand.NewSource(103))
	for _, trd := range []params.TRD{params.TRD3, params.TRD5, params.TRD7} {
		u := layerUnit(t, trd)
		conv := &ConvLayer{
			W: [][][3][3]int{
				{{{1, 2, 1}, {0, 0, 0}, {-1, -2, -1}}},
				{{{1, 0, -1}, {2, 0, -2}, {1, 0, -1}}},
			},
			B: []int{0, 2},
		}
		fcIn := 2 * 2 * 2 // channels × pooled dims for a 6×6 input
		fc := &FCLayer{W: make([][]int, 3), B: []int{1, -2, 0}}
		for j := range fc.W {
			fc.W[j] = make([]int, fcIn)
			for i := range fc.W[j] {
				fc.W[j][i] = rng.Intn(5) - 2
			}
		}
		net := &Sequential{Layers: []PIMLayer{conv, PoolLayer{}, fc}}
		x := randTensor(1, 6, 6, rng)
		got, err := net.Forward(u, x)
		if err != nil {
			t.Fatalf("%v: %v", trd, err)
		}
		assertEqual(t, got, net.ForwardRef(x), trd.String()+" sequential")
	}
}

func TestConvLayerErrors(t *testing.T) {
	u := layerUnit(t, params.TRD7)
	bad := &ConvLayer{W: [][][3][3]int{{{}}}, B: []int{0, 1}}
	if _, err := bad.Forward(u, NewTensor3(1, 6, 6)); err == nil {
		t.Error("bias/weight mismatch accepted")
	}
	ok := &ConvLayer{W: [][][3][3]int{{{}}}, B: []int{0}}
	if _, err := ok.Forward(u, NewTensor3(1, 2, 2)); err == nil {
		t.Error("too-small input accepted")
	}
	if _, err := ok.Forward(u, NewTensor3(2, 6, 6)); err == nil {
		t.Error("channel mismatch accepted")
	}
}

func TestPoolLayerErrors(t *testing.T) {
	u := layerUnit(t, params.TRD7)
	var pool PoolLayer
	if _, err := pool.Forward(u, NewTensor3(1, 3, 4)); err == nil {
		t.Error("odd height accepted")
	}
}
