package cnn

import (
	"fmt"

	"repro/internal/dbc"
	"repro/internal/pim"
)

// BinaryConv is a NID-style [44] binary-weight convolution (§V-E's BWN
// mode) executed bit-exactly on the PIM unit: activations and weights
// are single bits, point-wise multiplication degenerates to XNOR, and
// the accumulation is a popcount realized with the large-cardinality
// adder. The output bit is the sign of popcount − K²/2 (majority).
type BinaryConv struct {
	Kernel [3][3]uint8 // weights in {0,1}; 0 encodes −1
}

// InferRef computes the reference output for a binary image (valid
// padding): out = 1 iff the XNOR popcount exceeds half the taps.
func (b *BinaryConv) InferRef(img [][]uint8) [][]uint8 {
	h, w := len(img)-2, len(img[0])-2
	out := make([][]uint8, h)
	for y := 0; y < h; y++ {
		out[y] = make([]uint8, w)
		for x := 0; x < w; x++ {
			pop := 0
			for ky := 0; ky < 3; ky++ {
				for kx := 0; kx < 3; kx++ {
					if img[y+ky][x+kx] == b.Kernel[ky][kx] { // XNOR
						pop++
					}
				}
			}
			if pop > 4 {
				out[y][x] = 1
			}
		}
	}
	return out
}

// InferPIM runs the same convolution on the PIM unit: one XNOR bulk
// operation per tap (bit-parallel across output pixels), a 9-operand
// popcount through AddLarge, and the majority threshold from the lane
// comparison.
func (b *BinaryConv) InferPIM(u *pim.Unit, img [][]uint8) ([][]uint8, error) {
	defer u.Span("cnn-binary")()
	h, w := len(img)-2, len(img[0])-2
	if h <= 0 || w <= 0 {
		return nil, fmt.Errorf("cnn: image too small for a 3x3 kernel")
	}
	const lane = 8 // popcount of 9 fits in 8 bits with headroom
	lanes := u.Width() / lane
	out := make([][]uint8, h)
	for y := range out {
		out[y] = make([]uint8, w)
	}
	pixels := make([][2]int, 0, h*w)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			pixels = append(pixels, [2]int{y, x})
		}
	}
	for start := 0; start < len(pixels); start += lanes {
		batch := pixels[start:min(start+lanes, len(pixels))]
		// One row per tap: bit 0 of each lane holds the tap's XNOR.
		tapRows := make([]dbc.Row, 0, 9)
		for ky := 0; ky < 3; ky++ {
			for kx := 0; kx < 3; kx++ {
				acts := dbc.NewRow(u.Width())
				wgts := dbc.NewRow(u.Width())
				for i, p := range batch {
					acts.Set(i*lane, img[p[0]+ky][p[1]+kx])
					wgts.Set(i*lane, b.Kernel[ky][kx])
				}
				xnor, err := u.BulkBitwise(dbc.OpXNOR, []dbc.Row{acts, wgts})
				if err != nil {
					return nil, err
				}
				// Mask to the lanes' bit 0 (the XNOR of the padding
				// positions is 1 and must not pollute the popcount).
				row := dbc.NewRow(u.Width())
				for i := range batch {
					row.Set(i*lane, xnor.Get(i*lane))
				}
				tapRows = append(tapRows, row)
			}
		}
		pop, err := u.AddLarge(tapRows, lane)
		if err != nil {
			return nil, err
		}
		counts := pim.UnpackLanes(pop, lane)
		for i, p := range batch {
			if counts[i] > 4 {
				out[p[0]][p[1]] = 1
			}
		}
	}
	return out, nil
}
