package cnn

import (
	"math/rand"
	"testing"

	"repro/internal/params"
	"repro/internal/pim"
)

func TestBinaryConvMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	for _, trd := range []params.TRD{params.TRD3, params.TRD5, params.TRD7} {
		cfg := params.DefaultConfig()
		cfg.TRD = trd
		cfg.Geometry.TrackWidth = 128
		u := pim.MustNewUnit(cfg)
		conv := &BinaryConv{Kernel: [3][3]uint8{{1, 0, 1}, {0, 1, 0}, {1, 0, 1}}}
		img := make([][]uint8, 8)
		for y := range img {
			img[y] = make([]uint8, 8)
			for x := range img[y] {
				img[y][x] = uint8(rng.Intn(2))
			}
		}
		want := conv.InferRef(img)
		got, err := conv.InferPIM(u, img)
		if err != nil {
			t.Fatalf("%v: %v", trd, err)
		}
		for y := range want {
			for x := range want[y] {
				if got[y][x] != want[y][x] {
					t.Errorf("%v: out[%d][%d] = %d, want %d", trd, y, x, got[y][x], want[y][x])
				}
			}
		}
	}
}

func TestBinaryConvAllOnes(t *testing.T) {
	cfg := params.DefaultConfig()
	cfg.Geometry.TrackWidth = 64
	u := pim.MustNewUnit(cfg)
	conv := &BinaryConv{Kernel: [3][3]uint8{{1, 1, 1}, {1, 1, 1}, {1, 1, 1}}}
	img := make([][]uint8, 4)
	for y := range img {
		img[y] = []uint8{1, 1, 1, 1}
	}
	got, err := conv.InferPIM(u, img)
	if err != nil {
		t.Fatal(err)
	}
	for y := range got {
		for x := range got[y] {
			if got[y][x] != 1 { // all taps match: popcount 9 > 4
				t.Errorf("out[%d][%d] = %d, want 1", y, x, got[y][x])
			}
		}
	}
}

func TestBinaryConvTooSmall(t *testing.T) {
	cfg := params.DefaultConfig()
	cfg.Geometry.TrackWidth = 64
	u := pim.MustNewUnit(cfg)
	conv := &BinaryConv{}
	if _, err := conv.InferPIM(u, [][]uint8{{1, 1}, {1, 1}}); err == nil {
		t.Error("2x2 image accepted for a 3x3 kernel")
	}
}
