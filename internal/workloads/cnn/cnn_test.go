package cnn

import (
	"math/rand"
	"testing"

	"repro/internal/params"
	"repro/internal/pim"
)

func TestNetworkShapes(t *testing.T) {
	alex, lenet := AlexNet(), LeNet5()
	// AlexNet is ~724M MACs, LeNet-5 ~416k (standard figures ±5%).
	if m := alex.MACs(); m < 650e6 || m > 800e6 {
		t.Errorf("AlexNet MACs = %d, want ≈724M", m)
	}
	if m := lenet.MACs(); m < 380e3 || m > 450e3 {
		t.Errorf("LeNet-5 MACs = %d, want ≈416k", m)
	}
	if alex.Adds() >= alex.MACs() {
		t.Error("Eq. 2 additions must be below MACs (m−1 per output)")
	}
	for _, n := range []Network{alex, lenet} {
		for _, l := range n.Layers {
			if l.Kind != Pool && l.MACs() == 0 {
				t.Errorf("%s/%s: zero MACs", n.Name, l.Name)
			}
			if l.Outputs() <= 0 {
				t.Errorf("%s/%s: no outputs", n.Name, l.Name)
			}
		}
	}
}

func TestEq2AdditionCounts(t *testing.T) {
	// §IV-A: "The first reduction step of Alexnet requires 362
	// additions" per output — conv1 has K²·Ic = 363 products, 362 adds.
	conv1 := AlexNet().Layers[0]
	if got := conv1.ReductionFanIn(); got != 363 {
		t.Errorf("conv1 fan-in = %d, want 363", got)
	}
	if got := conv1.Adds() / conv1.Outputs(); got != 362 {
		t.Errorf("conv1 adds per output = %d, want 362", got)
	}
}

func findFPS(t *testing.T, cells []Cell, backend string, p Precision, net string) float64 {
	t.Helper()
	c, err := Find(cells, backend, p, net)
	if err != nil {
		t.Fatal(err)
	}
	return c.FPS
}

func TestTable4AnchorsReproduce(t *testing.T) {
	cells, err := Table4()
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range []struct {
		backend string
		p       Precision
		net     string
		fps     float64
	}{
		{"SPIM", Full, "Alexnet", 32.1},
		{"SPIM", Full, "Lenet5", 59},
		{"Ambit", BWN, "Alexnet", 227},
		{"Ambit", BWN, "Lenet5", 7525},
		{"CORUSCANT-3", TWN, "Alexnet", 358},
		{"CORUSCANT-3", TWN, "Lenet5", 22172},
		{"ISAAC", Full, "Alexnet", 34},
		{"ISAAC", Full, "Lenet5", 2581},
	} {
		got := findFPS(t, cells, a.backend, a.p, a.net)
		if got < a.fps*0.98 || got > a.fps*1.02 {
			t.Errorf("%s/%v/%s = %.1f FPS, want anchor %.1f", a.backend, a.p, a.net, got, a.fps)
		}
	}
}

func TestTable4DerivedShape(t *testing.T) {
	cells, err := Table4()
	if err != nil {
		t.Fatal(err)
	}
	// Headline claim: CORUSCANT-7 beats SPIM by 2.8× on full precision
	// (Table IV speedup column); accept the band [2.4, 3.4].
	for _, net := range []string{"Alexnet", "Lenet5"} {
		s := findFPS(t, cells, "CORUSCANT-7", Full, net) / findFPS(t, cells, "SPIM", Full, net)
		if s < 2.4 || s > 3.4 {
			t.Errorf("%s: C7/SPIM full-precision speedup %.2f, want ≈2.8", net, s)
		}
		// TRD monotonicity (§V-E).
		c3 := findFPS(t, cells, "CORUSCANT-3", Full, net)
		c5 := findFPS(t, cells, "CORUSCANT-5", Full, net)
		c7 := findFPS(t, cells, "CORUSCANT-7", Full, net)
		if !(c3 < c5 && c5 < c7) {
			t.Errorf("%s: full-precision FPS not monotone in TRD: %v %v %v", net, c3, c5, c7)
		}
	}
	// Ternary: CORUSCANT-3 beats ELP2IM TWN by ≈3.7× on AlexNet.
	s := findFPS(t, cells, "CORUSCANT-3", TWN, "Alexnet") / findFPS(t, cells, "ELP2IM", TWN, "Alexnet")
	if s < 3.0 || s > 4.4 {
		t.Errorf("C3/ELP2IM ternary speedup %.2f, want ≈3.7", s)
	}
	// ELP2IM must beat Ambit everywhere (its 3.2× bulk advantage).
	for _, net := range []string{"Alexnet", "Lenet5"} {
		for _, p := range []Precision{BWN, TWN} {
			if findFPS(t, cells, "ELP2IM", p, net) <= findFPS(t, cells, "Ambit", p, net) {
				t.Errorf("%s/%v: ELP2IM not faster than Ambit", net, p)
			}
		}
	}
	// BWN is faster than TWN for the DRAM backends (simpler binary mode).
	if findFPS(t, cells, "Ambit", BWN, "Alexnet") <= findFPS(t, cells, "Ambit", TWN, "Alexnet") {
		t.Error("Ambit BWN not faster than TWN")
	}
	// ISAAC: an order of magnitude ahead on LeNet-5, but CORUSCANT full
	// precision beats it on AlexNet (§V-E).
	if findFPS(t, cells, "ISAAC", Full, "Lenet5") < 5*findFPS(t, cells, "CORUSCANT-7", Full, "Lenet5") {
		t.Error("ISAAC should dominate LeNet-5 full precision")
	}
	if findFPS(t, cells, "CORUSCANT-7", Full, "Alexnet") < findFPS(t, cells, "ISAAC", Full, "Alexnet") {
		t.Error("CORUSCANT-7 should edge out ISAAC on AlexNet")
	}
}

func TestTable4TRDSensitivityBands(t *testing.T) {
	// §V-E: "increasing the TRD from 3→5 increases CORUSCANT
	// performance 30-40%, and increasing from 5→7 increases performance
	// by another 10-20%" (ternary mode, AlexNet).
	cells, err := Table4()
	if err != nil {
		t.Fatal(err)
	}
	c3 := findFPS(t, cells, "CORUSCANT-3", TWN, "Alexnet")
	c5 := findFPS(t, cells, "CORUSCANT-5", TWN, "Alexnet")
	c7 := findFPS(t, cells, "CORUSCANT-7", TWN, "Alexnet")
	if g := c5/c3 - 1; g < 0.20 || g > 0.45 {
		t.Errorf("TRD 3→5 gain %.0f%%, want 30-40%%", g*100)
	}
	if g := c7/c5 - 1; g < 0.05 || g > 0.25 {
		t.Errorf("TRD 5→7 gain %.0f%%, want 10-20%%", g*100)
	}
}

func TestTable6NMR(t *testing.T) {
	cells, err := Table6()
	if err != nil {
		t.Fatal(err)
	}
	base, err := Table4()
	if err != nil {
		t.Fatal(err)
	}
	// TMR costs slightly more than 3×; N=5/7 scale accordingly; voting
	// on TRD=3 is markedly more expensive (§III-F).
	for _, net := range []string{"Alexnet", "Lenet5"} {
		fp7 := findFPS(t, base, "CORUSCANT-7", Full, net)
		tmr, err := FindNMR(cells, params.TRD7, 3, Full, net)
		if err != nil {
			t.Fatal(err)
		}
		if r := fp7 / tmr.FPS; r < 3.0 || r > 3.6 {
			t.Errorf("%s: TMR slowdown %.2f, want slightly above 3", net, r)
		}
		n7, err := FindNMR(cells, params.TRD7, 7, Full, net)
		if err != nil {
			t.Fatal(err)
		}
		if r := fp7 / n7.FPS; r < 7.0 || r > 8.0 {
			t.Errorf("%s: 7MR slowdown %.2f, want slightly above 7", net, r)
		}
		tmr3, err := FindNMR(cells, params.TRD3, 3, Full, net)
		if err != nil {
			t.Fatal(err)
		}
		fp3 := findFPS(t, base, "CORUSCANT-3", Full, net)
		if r := fp3 / tmr3.FPS; r < 3.6 {
			t.Errorf("%s: TRD=3 TMR slowdown %.2f, want ≈4 (multi-step voting)", net, r)
		}
	}
	// Paper's ISO-area headline: CORUSCANT-7 ternary with TMR is still
	// faster than Ambit and ELP2IM without fault tolerance (×1.83/×1.62).
	tmr, err := FindNMR(cells, params.TRD7, 3, TWN, "Alexnet")
	if err != nil {
		t.Fatal(err)
	}
	ambitFPS := findFPS(t, base, "Ambit", TWN, "Alexnet")
	elpFPS := findFPS(t, base, "ELP2IM", TWN, "Alexnet")
	if tmr.FPS <= ambitFPS || tmr.FPS <= elpFPS {
		t.Errorf("TMR CORUSCANT-7 (%.0f FPS) must beat unprotected Ambit (%.0f) and ELP2IM (%.0f)",
			tmr.FPS, ambitFPS, elpFPS)
	}
	// No NMR degree above the TRD.
	for _, c := range cells {
		if c.N > int(c.TRD) {
			t.Errorf("cell with N=%d on TRD=%d", c.N, int(c.TRD))
		}
	}
}

func TestFunctionalTinyCNNMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, trd := range []params.TRD{params.TRD3, params.TRD5, params.TRD7} {
		cfg := params.DefaultConfig()
		cfg.TRD = trd
		cfg.Geometry.TrackWidth = 256 // 16 lanes of 16 bits
		u := pim.MustNewUnit(cfg)
		net := &TinyCNN{Kernel: [3][3]int{{1, -2, 1}, {2, 4, -1}, {-3, 1, 2}}}
		img := make([][]int, 6)
		for y := range img {
			img[y] = make([]int, 6)
			for x := range img[y] {
				img[y][x] = rng.Intn(16)
			}
		}
		want := net.InferRef(img)
		got, err := net.InferPIM(u, img)
		if err != nil {
			t.Fatalf("%v: %v", trd, err)
		}
		for y := range want {
			for x := range want[y] {
				if got[y][x] != want[y][x] {
					t.Errorf("%v: out[%d][%d] = %d, want %d", trd, y, x, got[y][x], want[y][x])
				}
			}
		}
	}
}

func TestFunctionalTinyCNNAllZeroKernel(t *testing.T) {
	cfg := params.DefaultConfig()
	cfg.Geometry.TrackWidth = 128
	u := pim.MustNewUnit(cfg)
	net := &TinyCNN{} // zero kernel: every output zero
	img := [][]int{{1, 2, 3, 4}, {5, 6, 7, 8}, {9, 1, 2, 3}, {4, 5, 6, 7}}
	got, err := net.InferPIM(u, img)
	if err != nil {
		t.Fatal(err)
	}
	for y := range got {
		for x := range got[y] {
			if got[y][x] != 0 {
				t.Errorf("out[%d][%d] = %d, want 0", y, x, got[y][x])
			}
		}
	}
}
