package cnn

import (
	"fmt"
	"sync"

	"repro/internal/pim"
)

// InferPIMParallel runs the same network as InferPIM with the lane
// batches spread across several PIM units — the §IV-B high-throughput
// mapping where the memory controller drives one unit per subarray.
// Every batch is self-contained (operands are freshly staged, results
// land in disjoint output pixels), so the output is bit-identical to
// InferPIM for any unit count; only wall-clock and per-unit cost
// distribution change. Each unit is driven by exactly one goroutine.
//
// The units must share a geometry; one unit degenerates to the serial
// schedule.
func (t *TinyCNN) InferPIMParallel(units []*pim.Unit, img [][]int) ([][]int, error) {
	if len(units) == 0 {
		return nil, fmt.Errorf("cnn: no units")
	}
	if len(units) == 1 {
		return t.InferPIM(units[0], img)
	}
	width := units[0].Width()
	for _, u := range units[1:] {
		if u.Width() != width {
			return nil, fmt.Errorf("cnn: unit widths differ (%d vs %d)", width, u.Width())
		}
	}
	h, w := len(img)-2, len(img[0])-2
	if h <= 0 || w <= 0 || h%2 != 0 || w%2 != 0 {
		return nil, fmt.Errorf("cnn: conv output %dx%d not poolable", h, w)
	}
	lanes := width / laneW
	conv := make([][]int, h)
	for y := range conv {
		conv[y] = make([]int, w)
	}

	// Phase 1: convolution + ReLU, batches fanned out across units.
	pixels := make([][2]int, 0, h*w)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			pixels = append(pixels, [2]int{y, x})
		}
	}
	convWork := func(u *pim.Unit, batch [][2]int) error {
		return t.convBatch(u, img, batch, conv)
	}
	if err := runBatches(units, pixels, lanes, "cnn-conv-par", convWork); err != nil {
		return nil, err
	}

	// Phase 2 (after the conv barrier): max pooling, same fan-out.
	out := make([][]int, h/2)
	for y := range out {
		out[y] = make([]int, w/2)
	}
	windows := make([][2]int, 0, (h/2)*(w/2))
	for y := 0; y < h/2; y++ {
		for x := 0; x < w/2; x++ {
			windows = append(windows, [2]int{y, x})
		}
	}
	poolWork := func(u *pim.Unit, batch [][2]int) error {
		return poolBatch(u, conv, batch, out)
	}
	if err := runBatches(units, windows, lanes, "cnn-pool-par", poolWork); err != nil {
		return nil, err
	}
	return out, nil
}

// runBatches splits items into lane-sized batches and deals them to one
// worker goroutine per unit. The first error (in batch order) wins.
func runBatches(units []*pim.Unit, items [][2]int, lanes int, span string, work func(*pim.Unit, [][2]int) error) error {
	nBatch := (len(items) + lanes - 1) / lanes
	errs := make([]error, nBatch)
	next := make(chan int)
	var wg sync.WaitGroup
	n := len(units)
	if n > nBatch {
		n = nBatch
	}
	wg.Add(n)
	for _, u := range units[:n] {
		go func(u *pim.Unit) {
			defer wg.Done()
			defer u.Span(span)()
			for bi := range next {
				start := bi * lanes
				end := start + lanes
				if end > len(items) {
					end = len(items)
				}
				errs[bi] = work(u, items[start:end])
			}
		}(u)
	}
	for bi := 0; bi < nBatch; bi++ {
		next <- bi
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
