package cnn

import (
	"math/rand"
	"testing"

	"repro/internal/params"
	"repro/internal/pim"
)

func TestTernaryConvMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(90))
	kernels := [][3][3]int{
		{{1, 0, -1}, {1, 0, -1}, {1, 0, -1}},  // vertical edge
		{{-1, -1, -1}, {0, 0, 0}, {1, 1, 1}},  // horizontal edge
		{{0, 1, 0}, {1, -1, 1}, {0, 1, 0}},    // cross
		{{-1, 1, -1}, {1, 1, 1}, {-1, 1, -1}}, // plus
	}
	for _, trd := range []params.TRD{params.TRD3, params.TRD5, params.TRD7} {
		for ki, kernel := range kernels {
			cfg := params.DefaultConfig()
			cfg.TRD = trd
			cfg.Geometry.TrackWidth = 128
			u := pim.MustNewUnit(cfg)
			conv := &TernaryConv{Kernel: kernel}
			img := make([][]uint8, 7)
			for y := range img {
				img[y] = make([]uint8, 7)
				for x := range img[y] {
					img[y][x] = uint8(rng.Intn(2))
				}
			}
			want := conv.InferRef(img)
			got, err := conv.InferPIM(u, img)
			if err != nil {
				t.Fatalf("%v kernel %d: %v", trd, ki, err)
			}
			for y := range want {
				for x := range want[y] {
					if got[y][x] != want[y][x] {
						t.Errorf("%v kernel %d out[%d][%d] = %d, want %d",
							trd, ki, y, x, got[y][x], want[y][x])
					}
				}
			}
		}
	}
}

func TestTernaryConvZeroKernel(t *testing.T) {
	cfg := params.DefaultConfig()
	cfg.Geometry.TrackWidth = 64
	u := pim.MustNewUnit(cfg)
	conv := &TernaryConv{} // all-zero weights: no output fires
	img := [][]uint8{{1, 1, 1, 1}, {1, 1, 1, 1}, {1, 1, 1, 1}, {1, 1, 1, 1}}
	got, err := conv.InferPIM(u, img)
	if err != nil {
		t.Fatal(err)
	}
	for y := range got {
		for x := range got[y] {
			if got[y][x] != 0 {
				t.Errorf("out[%d][%d] fired with zero weights", y, x)
			}
		}
	}
}
