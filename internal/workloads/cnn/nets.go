// Package cnn implements the CNN case study of §IV and the Table IV/VI
// evaluation: LeNet-5 and AlexNet inference mapped onto CORUSCANT
// (full-precision and ternary-weight modes), SPIM, Ambit, ELP²IM and
// ISAAC.
//
// Two levels exist side by side:
//
//   - a functional path (functional.go) that runs a small convolution +
//     pooling + ReLU network bit-exactly on the PIM unit, validating the
//     §IV mapping end to end;
//   - analytic throughput models (backends.go) producing the Table IV
//     frames-per-second matrix, with per-operation costs taken from the
//     measured PIM unit and the baseline models, and per-family
//     parallelism/staging constants calibrated on the anchor cells
//     documented there.
package cnn

// LayerKind distinguishes the three layer types of §IV.
type LayerKind int

// CNN layer kinds.
const (
	Conv LayerKind = iota
	Pool
	FC
)

func (k LayerKind) String() string {
	switch k {
	case Conv:
		return "conv"
	case Pool:
		return "pool"
	default:
		return "fc"
	}
}

// Layer describes one network layer.
type Layer struct {
	Kind LayerKind
	Name string

	InC, OutC  int // channels
	K          int // kernel size (conv/pool)
	OutH, OutW int // output spatial dims
	In, Out    int // fc dims
}

// Outputs returns the number of output values the layer produces.
func (l Layer) Outputs() int64 {
	if l.Kind == FC {
		return int64(l.Out)
	}
	return int64(l.OutC) * int64(l.OutH) * int64(l.OutW)
}

// MACs returns the multiply-accumulates of the layer.
func (l Layer) MACs() int64 {
	switch l.Kind {
	case Conv:
		return l.Outputs() * int64(l.K) * int64(l.K) * int64(l.InC)
	case FC:
		return int64(l.In) * int64(l.Out)
	default:
		return 0
	}
}

// ReductionFanIn returns m, the number of values summed per output
// (Eq. 2's (K²−1)·Ic + (Ic−1) additions come from reducing m = K²·Ic
// products).
func (l Layer) ReductionFanIn() int {
	switch l.Kind {
	case Conv:
		return l.K * l.K * l.InC
	case FC:
		return l.In
	default:
		return l.K * l.K // pooling compares K² candidates
	}
}

// Adds returns the Eq. 2 addition count of the layer: one output needs
// m−1 additions.
func (l Layer) Adds() int64 {
	if l.Kind == Pool {
		return 0
	}
	return l.Outputs() * int64(l.ReductionFanIn()-1)
}

// Network is a full model.
type Network struct {
	Name   string
	Layers []Layer
	// InputBytes is the input image size (activations staged per
	// inference).
	InputBytes int64
}

// MACs returns the network's total multiply-accumulates.
func (n Network) MACs() int64 {
	var t int64
	for _, l := range n.Layers {
		t += l.MACs()
	}
	return t
}

// Adds returns the network's total Eq. 2 additions.
func (n Network) Adds() int64 {
	var t int64
	for _, l := range n.Layers {
		t += l.Adds()
	}
	return t
}

// ActivationBytes returns the total activation traffic per inference at
// the given bytes-per-value (1 for 8-bit, 0.25 for ternary packing):
// every layer's outputs move between tiles once.
func (n Network) ActivationBytes(bytesPerVal float64) int64 {
	var vals int64 = 0
	for _, l := range n.Layers {
		vals += l.Outputs()
	}
	return int64(float64(vals)*bytesPerVal) + n.InputBytes
}

// LeNet5 returns the LeNet-5 [55] layer table (MNIST, 28×28 input).
func LeNet5() Network {
	return Network{
		Name:       "Lenet5",
		InputBytes: 28 * 28,
		Layers: []Layer{
			{Kind: Conv, Name: "C1", InC: 1, OutC: 6, K: 5, OutH: 28, OutW: 28},
			{Kind: Pool, Name: "S2", InC: 6, OutC: 6, K: 2, OutH: 14, OutW: 14},
			{Kind: Conv, Name: "C3", InC: 6, OutC: 16, K: 5, OutH: 10, OutW: 10},
			{Kind: Pool, Name: "S4", InC: 16, OutC: 16, K: 2, OutH: 5, OutW: 5},
			{Kind: Conv, Name: "C5", InC: 16, OutC: 120, K: 5, OutH: 1, OutW: 1},
			{Kind: FC, Name: "F6", In: 120, Out: 84},
			{Kind: FC, Name: "OUT", In: 84, Out: 10},
		},
	}
}

// AlexNet returns the AlexNet [56] layer table (ImageNet, 227×227×3
// input, grouped convolutions as in the original).
func AlexNet() Network {
	return Network{
		Name:       "Alexnet",
		InputBytes: 227 * 227 * 3,
		Layers: []Layer{
			{Kind: Conv, Name: "conv1", InC: 3, OutC: 96, K: 11, OutH: 55, OutW: 55},
			{Kind: Pool, Name: "pool1", InC: 96, OutC: 96, K: 3, OutH: 27, OutW: 27},
			{Kind: Conv, Name: "conv2", InC: 48, OutC: 256, K: 5, OutH: 27, OutW: 27},
			{Kind: Pool, Name: "pool2", InC: 256, OutC: 256, K: 3, OutH: 13, OutW: 13},
			{Kind: Conv, Name: "conv3", InC: 256, OutC: 384, K: 3, OutH: 13, OutW: 13},
			{Kind: Conv, Name: "conv4", InC: 192, OutC: 384, K: 3, OutH: 13, OutW: 13},
			{Kind: Conv, Name: "conv5", InC: 192, OutC: 256, K: 3, OutH: 13, OutW: 13},
			{Kind: FC, Name: "fc6", In: 9216, Out: 4096},
			{Kind: FC, Name: "fc7", In: 4096, Out: 4096},
			{Kind: FC, Name: "fc8", In: 4096, Out: 1000},
		},
	}
}
