package cnn

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/params"
	"repro/internal/pim"
	"repro/internal/telemetry"
)

// TestInferPIMParallelMatchesSerial: the multi-unit schedule is
// bit-identical to the single-unit one for any unit count.
func TestInferPIMParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	cfg := params.DefaultConfig()
	cfg.Geometry.TrackWidth = 256 // 16 lanes of 16 bits
	net := &TinyCNN{Kernel: [3][3]int{{1, -2, 1}, {2, 4, -1}, {-3, 1, 2}}}
	img := make([][]int, 10)
	for y := range img {
		img[y] = make([]int, 10)
		for x := range img[y] {
			img[y][x] = rng.Intn(16)
		}
	}
	want, err := net.InferPIM(pim.MustNewUnit(cfg), img)
	if err != nil {
		t.Fatal(err)
	}
	ref := net.InferRef(img)
	for y := range want {
		for x := range want[y] {
			if want[y][x] != ref[y][x] {
				t.Fatalf("serial out[%d][%d] = %d, reference %d", y, x, want[y][x], ref[y][x])
			}
		}
	}
	for _, n := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("units=%d", n), func(t *testing.T) {
			rec := telemetry.NewRecorder(cfg)
			units := make([]*pim.Unit, n)
			for i := range units {
				units[i] = pim.MustNewUnit(cfg)
				units[i].SetTelemetry(rec, telemetry.Source(fmt.Sprintf("cnn.u%d", i)))
			}
			got, err := net.InferPIMParallel(units, img)
			if err != nil {
				t.Fatal(err)
			}
			for y := range want {
				for x := range want[y] {
					if got[y][x] != want[y][x] {
						t.Errorf("out[%d][%d] = %d, serial %d", y, x, got[y][x], want[y][x])
					}
				}
			}
		})
	}
}

func TestInferPIMParallelRejectsBadInput(t *testing.T) {
	net := &TinyCNN{}
	if _, err := net.InferPIMParallel(nil, [][]int{{1}}); err == nil {
		t.Error("no units: want error")
	}
	cfgA := params.DefaultConfig()
	cfgA.Geometry.TrackWidth = 128
	cfgB := params.DefaultConfig()
	cfgB.Geometry.TrackWidth = 256
	units := []*pim.Unit{pim.MustNewUnit(cfgA), pim.MustNewUnit(cfgB)}
	if _, err := net.InferPIMParallel(units, [][]int{{1, 2, 3, 4}, {5, 6, 7, 8}, {9, 1, 2, 3}, {4, 5, 6, 7}}); err == nil {
		t.Error("mismatched widths: want error")
	}
}
