package cnn

import (
	"fmt"

	"repro/internal/dbc"
	"repro/internal/pim"
)

// TernaryConv is a DrAcc-style [41] ternary-weight convolution (§V-E's
// TWN mode) on binary activations, executed bit-exactly on the PIM
// unit: weights in {-1, 0, +1} split the taps into a positive and a
// negative popcount; the pre-activation is pop(+) − pop(−), and the
// output bit is its sign (a binarized activation for the next layer).
type TernaryConv struct {
	Kernel [3][3]int // weights in {-1, 0, 1}
}

// InferRef computes the reference output (valid padding): out = 1 iff
// Σ w·a > 0 for binary activations a.
func (t *TernaryConv) InferRef(img [][]uint8) [][]uint8 {
	h, w := len(img)-2, len(img[0])-2
	out := make([][]uint8, h)
	for y := 0; y < h; y++ {
		out[y] = make([]uint8, w)
		for x := 0; x < w; x++ {
			acc := 0
			for ky := 0; ky < 3; ky++ {
				for kx := 0; kx < 3; kx++ {
					acc += t.Kernel[ky][kx] * int(img[y+ky][x+kx])
				}
			}
			if acc > 0 {
				out[y][x] = 1
			}
		}
	}
	return out
}

// InferPIM runs the convolution on the PIM unit: one tap row per
// non-zero weight, positive and negative popcounts through AddLarge,
// the subtraction in two's complement, and the sign from the lane MSB
// (via ReLU's predicated refresh: positive pre-activations survive).
func (t *TernaryConv) InferPIM(u *pim.Unit, img [][]uint8) ([][]uint8, error) {
	defer u.Span("cnn-ternary")()
	h, w := len(img)-2, len(img[0])-2
	if h <= 0 || w <= 0 {
		return nil, fmt.Errorf("cnn: image too small for a 3x3 kernel")
	}
	const lane = 8
	lanes := u.Width() / lane
	out := make([][]uint8, h)
	for y := range out {
		out[y] = make([]uint8, w)
	}
	pixels := make([][2]int, 0, h*w)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			pixels = append(pixels, [2]int{y, x})
		}
	}
	for start := 0; start < len(pixels); start += lanes {
		batch := pixels[start:min(start+lanes, len(pixels))]
		var posRows, negRows []dbc.Row
		for ky := 0; ky < 3; ky++ {
			for kx := 0; kx < 3; kx++ {
				wgt := t.Kernel[ky][kx]
				if wgt == 0 {
					continue
				}
				row := dbc.NewRow(u.Width())
				for i, p := range batch {
					row.Set(i*lane, img[p[0]+ky][p[1]+kx])
				}
				if wgt > 0 {
					posRows = append(posRows, row)
				} else {
					negRows = append(negRows, row)
				}
			}
		}
		pos, err := popcount(u, posRows, lane)
		if err != nil {
			return nil, err
		}
		neg, err := popcount(u, negRows, lane)
		if err != nil {
			return nil, err
		}
		// pre = pos − neg = pos + ~neg + 1 (two's complement, 8-bit lanes).
		ones := make([]uint64, u.Width()/lane)
		for i := range ones {
			ones[i] = 1
		}
		oneRow, err := pim.PackLanes(ones, lane, u.Width())
		if err != nil {
			return nil, err
		}
		pre, err := u.AddLarge([]dbc.Row{pos, complementRow(neg), oneRow}, lane)
		if err != nil {
			return nil, err
		}
		// Sign: lanes with MSB set (negative) or zero are inactive; the
		// ReLU predicated refresh zeroes the negatives, then any nonzero
		// lane is a firing output.
		relued, err := u.ReLU(pre, lane)
		if err != nil {
			return nil, err
		}
		vals := pim.UnpackLanes(relued, lane)
		for i, p := range batch {
			if vals[i] > 0 {
				out[p[0]][p[1]] = 1
			}
		}
	}
	return out, nil
}

// popcount sums single-bit tap rows lane-wise; no rows give a zero row.
func popcount(u *pim.Unit, rows []dbc.Row, lane int) (dbc.Row, error) {
	if len(rows) == 0 {
		return dbc.NewRow(u.Width()), nil
	}
	if len(rows) == 1 {
		return rows[0], nil
	}
	return u.AddLarge(rows, lane)
}
