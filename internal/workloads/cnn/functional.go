package cnn

import (
	"fmt"

	"repro/internal/dbc"
	"repro/internal/pim"
)

// This file is the functional counterpart of §IV: a small convolutional
// network executed bit-exactly on the PIM unit — multiplications through
// the shifted-copy/CSA path, accumulation through multi-operand
// addition, signed arithmetic via two's complement, ReLU via the
// sign-bit-predicated refresh, and max pooling via the TR tournament.
// The tests compare it against a plain integer reference.

// TinyCNN is a one-channel 3×3 convolution + ReLU + 2×2 max-pool
// network with signed integer weights.
type TinyCNN struct {
	Kernel [3][3]int // weights in [-15, 15]
}

// laneW is the two's-complement accumulator width used on the DBC.
const laneW = 16

// InferRef computes the reference output: convolve (valid padding),
// ReLU, then 2×2 max pool (input dims must make conv output even).
func (t *TinyCNN) InferRef(img [][]int) [][]int {
	h, w := len(img)-2, len(img[0])-2
	conv := make([][]int, h)
	for y := 0; y < h; y++ {
		conv[y] = make([]int, w)
		for x := 0; x < w; x++ {
			acc := 0
			for ky := 0; ky < 3; ky++ {
				for kx := 0; kx < 3; kx++ {
					acc += t.Kernel[ky][kx] * img[y+ky][x+kx]
				}
			}
			if acc < 0 {
				acc = 0
			}
			conv[y][x] = acc
		}
	}
	out := make([][]int, h/2)
	for y := range out {
		out[y] = make([]int, w/2)
		for x := range out[y] {
			m := conv[2*y][2*x]
			for _, v := range []int{conv[2*y][2*x+1], conv[2*y+1][2*x], conv[2*y+1][2*x+1]} {
				if v > m {
					m = v
				}
			}
			out[y][x] = m
		}
	}
	return out
}

// InferPIM runs the same network on the PIM unit. Image values must be
// in [0, 15] so products fit the 8-bit multiplier lanes.
func (t *TinyCNN) InferPIM(u *pim.Unit, img [][]int) ([][]int, error) {
	defer u.Span("cnn-functional")()
	h, w := len(img)-2, len(img[0])-2
	if h <= 0 || w <= 0 || h%2 != 0 || w%2 != 0 {
		return nil, fmt.Errorf("cnn: conv output %dx%d not poolable", h, w)
	}
	lanes := u.Width() / laneW
	conv := make([][]int, h)
	for y := range conv {
		conv[y] = make([]int, w)
	}
	// Convolution + ReLU, one row of output pixels per batch of lanes.
	pixels := make([][2]int, 0, h*w)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			pixels = append(pixels, [2]int{y, x})
		}
	}
	for start := 0; start < len(pixels); start += lanes {
		batch := pixels[start:min(start+lanes, len(pixels))]
		if err := t.convBatch(u, img, batch, conv); err != nil {
			return nil, err
		}
	}

	// Max pooling through the TR tournament: the four pool candidates
	// become four rows whose lane l holds window l's candidate.
	out := make([][]int, h/2)
	for y := range out {
		out[y] = make([]int, w/2)
	}
	windows := make([][2]int, 0, (h/2)*(w/2))
	for y := 0; y < h/2; y++ {
		for x := 0; x < w/2; x++ {
			windows = append(windows, [2]int{y, x})
		}
	}
	for start := 0; start < len(windows); start += lanes {
		batch := windows[start:min(start+lanes, len(windows))]
		if err := poolBatch(u, conv, batch, out); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// convBatch computes convolution + ReLU for one batch of output pixels
// on one unit, writing the results into conv. Distinct batches touch
// distinct pixels, so batches may run concurrently on distinct units.
func (t *TinyCNN) convBatch(u *pim.Unit, img [][]int, batch [][2]int, conv [][]int) error {
	var posRows, negRows []dbc.Row
	for ky := 0; ky < 3; ky++ {
		for kx := 0; kx < 3; kx++ {
			wgt := t.Kernel[ky][kx]
			if wgt == 0 {
				continue
			}
			a := make([]uint64, len(batch))
			b := make([]uint64, len(batch))
			for i, p := range batch {
				a[i] = uint64(img[p[0]+ky][p[1]+kx])
				b[i] = uint64(abs(wgt))
			}
			prods, err := u.MultiplyValues(a, b, laneW/2)
			if err != nil {
				return err
			}
			row, err := pim.PackLanes(prods, laneW, u.Width())
			if err != nil {
				return err
			}
			if wgt > 0 {
				posRows = append(posRows, row)
			} else {
				negRows = append(negRows, row)
			}
		}
	}
	pos, err := sumRows(u, posRows)
	if err != nil {
		return err
	}
	neg, err := sumRows(u, negRows)
	if err != nil {
		return err
	}
	// acc = pos − neg via two's complement: pos + ~neg + 1.
	acc := pos
	if !neg.IsEmpty() {
		ones := make([]uint64, len(batch))
		for i := range ones {
			ones[i] = 1
		}
		oneRow, err := pim.PackLanes(ones, laneW, u.Width())
		if err != nil {
			return err
		}
		operands := []dbc.Row{complementRow(neg), oneRow}
		if !acc.IsEmpty() {
			operands = append([]dbc.Row{acc}, operands...)
		}
		acc, err = sumRows(u, operands)
		if err != nil {
			return err
		}
	}
	if acc.IsEmpty() {
		acc = dbc.NewRow(u.Width())
	}
	relued, err := u.ReLU(acc, laneW)
	if err != nil {
		return err
	}
	vals := pim.UnpackLanes(relued, laneW)
	for i, p := range batch {
		conv[p[0]][p[1]] = int(vals[i])
	}
	return nil
}

// poolBatch runs the 2×2 TR max-pool tournament for one batch of pool
// windows on one unit, writing the results into out. Distinct batches
// touch distinct windows, so batches may run concurrently on distinct
// units.
func poolBatch(u *pim.Unit, conv [][]int, batch [][2]int, out [][]int) error {
	cand := make([]dbc.Row, 4)
	for c := 0; c < 4; c++ {
		vals := make([]uint64, len(batch))
		for i, p := range batch {
			vals[i] = uint64(conv[2*p[0]+c/2][2*p[1]+c%2])
		}
		row, err := pim.PackLanes(vals, laneW, u.Width())
		if err != nil {
			return err
		}
		cand[c] = row
	}
	maxRow, err := u.MaxLarge(cand, laneW)
	if err != nil {
		return err
	}
	vals := pim.UnpackLanes(maxRow, laneW)
	for i, p := range batch {
		out[p[0]][p[1]] = int(vals[i])
	}
	return nil
}

// sumRows adds rows lane-wise in chunks of the unit's operand limit.
// Empty input yields the empty Row sentinel.
func sumRows(u *pim.Unit, rows []dbc.Row) (dbc.Row, error) {
	switch len(rows) {
	case 0:
		return dbc.Row{}, nil
	case 1:
		return rows[0], nil
	}
	maxK := u.TRD().MaxAddOperands()
	acc := rows[0]
	rest := rows[1:]
	for len(rest) > 0 {
		k := min(maxK-1, len(rest))
		operands := append([]dbc.Row{acc}, rest[:k]...)
		var err error
		acc, err = u.AddMulti(operands, laneW)
		if err != nil {
			return dbc.Row{}, err
		}
		rest = rest[k:]
	}
	return acc, nil
}

func complementRow(r dbc.Row) dbc.Row {
	out := dbc.NewRow(r.N)
	for i, w := range r.Words {
		out.Words[i] = ^w
	}
	out.MaskTail()
	return out
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
