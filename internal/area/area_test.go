package area

import (
	"testing"

	"repro/internal/params"
)

func TestTableIMatchesPaper(t *testing.T) {
	// Table I: 3.7% / 9.2% / 9.4% / 10.0% overhead; allow ±0.3pp.
	got := TableI(params.DefaultGeometry())
	want := map[Design]float64{ADD2: 0.037, ADD5: 0.092, MulAdd5: 0.094, Full: 0.100}
	for d, w := range want {
		if diff := got[d] - w; diff < -0.003 || diff > 0.003 {
			t.Errorf("%v overhead = %.2f%%, want %.1f%%", d, got[d]*100, w*100)
		}
	}
}

func TestOverheadOrdering(t *testing.T) {
	got := TableI(params.DefaultGeometry())
	if !(got[ADD2] < got[ADD5] && got[ADD5] < got[MulAdd5] && got[MulAdd5] < got[Full]) {
		t.Errorf("overheads not monotone across capability levels: %v", got)
	}
}

func TestDesignTRD(t *testing.T) {
	if ADD2.TRD() != params.TRD3 {
		t.Error("ADD2 must be the TRD=3 design")
	}
	for _, d := range []Design{ADD5, MulAdd5, Full} {
		if d.TRD() != params.TRD7 {
			t.Errorf("%v must be a TRD=7 design", d)
		}
	}
}

func TestDesignStrings(t *testing.T) {
	if Full.String() != "MUL+ADD5+BBO" || ADD2.String() != "ADD2" {
		t.Error("design names wrong")
	}
}

func TestPIMDBCLargerThanBase(t *testing.T) {
	m := DefaultModel()
	g := params.DefaultGeometry()
	base := m.baseDBCArea(g)
	for _, d := range []Design{ADD2, ADD5, MulAdd5, Full} {
		if m.pimDBCArea(g, d) <= base {
			t.Errorf("%v PIM DBC not larger than base", d)
		}
	}
}

func TestPerWirePIMF2(t *testing.T) {
	m := DefaultModel()
	g := params.DefaultGeometry()
	per := m.PerWirePIMF2(g, Full)
	if per*float64(g.TrackWidth) != m.pimDBCArea(g, Full) {
		t.Error("per-wire area inconsistent with DBC area")
	}
}

func TestOverheadScalesWithPIMTiles(t *testing.T) {
	// Doubling the PIM-enabled tiles should roughly double the overhead
	// (the §V-F performance-vs-area tradeoff discussion).
	m := DefaultModel()
	g := params.DefaultGeometry()
	one := m.Overhead(g, Full)
	g2 := g
	g2.PIMTilesPerSub = 2
	two := m.Overhead(g2, Full)
	if two < one*1.8 || two > one*2.2 {
		t.Errorf("2-PIM overhead %.3f not ≈2× 1-PIM %.3f", two, one)
	}
}
