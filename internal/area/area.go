// Package area models the silicon cost of PIM-enabling a DWM main
// memory (Table I): extra overhead domains for the TR-constrained port
// placement, the second access port, the seven-level sense amplifier
// extension, and the synthesized PIM logic, applied to one tile per
// subarray.
//
// Component areas are expressed in F² (F = 32 nm, following the paper's
// scaling of the FreePDK45 synthesis results) and calibrated so the four
// Table I design points land on the published percentages.
package area

import (
	"fmt"

	"repro/internal/params"
)

// Design selects which PIM capabilities are provisioned (Table I).
type Design int

// Table I design points.
const (
	ADD2    Design = iota // two-operand adder only (what TRD=3 affords)
	ADD5                  // five-operand adder (TRD=7 window)
	MulAdd5               // + multiplication (lateral shift network)
	Full                  // + seven-operand bulk-bitwise logic
)

var designNames = map[Design]string{
	ADD2: "ADD2", ADD5: "ADD5", MulAdd5: "MUL+ADD5", Full: "MUL+ADD5+BBO",
}

func (d Design) String() string {
	if n, ok := designNames[d]; ok {
		return n
	}
	return fmt.Sprintf("Design(%d)", int(d))
}

// TRD returns the window length the design point provisions.
func (d Design) TRD() params.TRD {
	if d == ADD2 {
		return params.TRD3
	}
	return params.TRD7
}

// Model carries the component areas in F² per bit or per nanowire.
// Anchors: a DWM cell is 1–4 F² (§I); the sense amplifier, write driver
// and PIM logic values are scaled from the paper's FreePDK45 synthesis
// so that Table I reproduces.
type Model struct {
	CellF2 float64 // one domain (storage or overhead)

	PortF2        float64 // one access transistor set per port per wire
	SenseAmpF2    float64 // baseline single-level SA share per wire
	MultiLevelF2  float64 // 7-level SA extension per wire (hashed tan block)
	TwoLevelF2    float64 // 2-level SA extension (TRD=3 designs)
	CarryLogicF2  float64 // S/C/C' adder logic per wire (TRD=7 window)
	Carry2LogicF2 float64 // S/C logic per wire (TRD=3 window)
	ShiftMuxF2    float64 // lateral i→i+1/i+2 multiplexing per wire (mult)
	BulkLogicF2   float64 // OR/NOR/AND/NAND/XOR/XNOR decode per wire
	WriteDriverF2 float64 // per-wire write driver share
}

// DefaultModel returns the calibrated component areas. Anchors (Table I,
// 1-PIM dilution of 1/16 over a 146 F²-per-wire base DBC): the extra
// per-wire area must reach 86.4 F² (ADD2), 215 F² (ADD5), 219.6 F²
// (+MUL) and 233.6 F² (+BBO); the multi-level sense circuit dominates,
// consistent with the paper's note that the seven-level SA extension is
// the main circuit cost (§III-B).
func DefaultModel() Model {
	return Model{
		CellF2:        2.0,
		PortF2:        4.0,
		SenseAmpF2:    10.0,
		MultiLevelF2:  160.0,
		TwoLevelF2:    60.0,
		CarryLogicF2:  63.0,
		Carry2LogicF2: 30.4,
		ShiftMuxF2:    4.6,
		BulkLogicF2:   14.0,
		WriteDriverF2: 6.0,
	}
}

// baseDBCArea returns the F² area of one non-PIM DBC: wires × (data
// domains + single-port overhead) cells plus one port, SA and driver per
// wire.
func (m Model) baseDBCArea(g params.Geometry) float64 {
	perWire := float64(2*g.RowsPerDBC-1)*m.CellF2 + // 2Y−1 domains, single AP
		m.PortF2 + m.SenseAmpF2 + m.WriteDriverF2
	return perWire * float64(g.TrackWidth)
}

// pimDBCArea returns the F² area of one PIM-enabled DBC for the design.
func (m Model) pimDBCArea(g params.Geometry, d Design) float64 {
	trd := d.TRD()
	domains := float64(g.RowsPerDBC + params.OverheadDomains(g.RowsPerDBC, trd))
	perWire := domains*m.CellF2 +
		2*m.PortF2 + // second access port for TR
		m.SenseAmpF2 + m.WriteDriverF2
	switch d {
	case ADD2:
		perWire += m.TwoLevelF2 + m.Carry2LogicF2
	case ADD5:
		perWire += m.MultiLevelF2 + m.CarryLogicF2
	case MulAdd5:
		perWire += m.MultiLevelF2 + m.CarryLogicF2 + m.ShiftMuxF2
	case Full:
		perWire += m.MultiLevelF2 + m.CarryLogicF2 + m.ShiftMuxF2 + m.BulkLogicF2
	}
	return perWire * float64(g.TrackWidth)
}

// PerWirePIMF2 returns the per-nanowire area of a PIM-enabled DBC in F²
// (used by the Table III µm² comparison).
func (m Model) PerWirePIMF2(g params.Geometry, d Design) float64 {
	return m.pimDBCArea(g, d) / float64(g.TrackWidth)
}

// Overhead returns the fractional area increase of the whole memory when
// one tile per subarray swaps a DBC-worth of its cells for PIM-enabled
// DBCs (Table I's 1-PIM configuration enables the full PIM tile).
func (m Model) Overhead(g params.Geometry, d Design) float64 {
	base := m.baseDBCArea(g)
	pim := m.pimDBCArea(g, d)
	// Per subarray: TilesPerSubarray × DBCsPerTile DBCs, of which one
	// tile's worth become PIM-enabled.
	total := g.TilesPerSubarray * g.DBCsPerTile
	pimDBCs := g.PIMTilesPerSub * g.DBCsPerTile
	baseArea := float64(total) * base
	newArea := float64(total-pimDBCs)*base + float64(pimDBCs)*pim
	return newArea/baseArea - 1
}

// TableI returns the Table I row: overhead percentages for the four
// design points under the default geometry and model.
func TableI(g params.Geometry) map[Design]float64 {
	m := DefaultModel()
	out := make(map[Design]float64, 4)
	for _, d := range []Design{ADD2, ADD5, MulAdd5, Full} {
		out[d] = m.Overhead(g, d)
	}
	return out
}
