package params

import "testing"

func TestDefaultGeometryCapacity(t *testing.T) {
	// Table II: 1 GB (8 Gb) memory.
	g := DefaultGeometry()
	if got := g.TotalBytes(); got != 1<<30 {
		t.Errorf("TotalBytes = %d, want 1 GiB", got)
	}
}

func TestPIMDBCCount(t *testing.T) {
	// One PIM DBC per subarray: 32 banks × 64 subarrays = 2048 units of
	// PIM parallelism.
	g := DefaultGeometry()
	if got := g.PIMDBCs(); got != 2048 {
		t.Errorf("PIMDBCs = %d, want 2048", got)
	}
}

func TestPortPlacementPaperAnchor(t *testing.T) {
	// §III-A: Y=32, TRD=7 → ports at 1-indexed 14 and 20; overhead
	// drops from 31 (single port) to 25.
	pl, pr := PortPlacement(32, TRD7)
	if pl+1 != 14 || pr+1 != 20 {
		t.Errorf("ports at 1-indexed (%d,%d), want (14,20)", pl+1, pr+1)
	}
	if got := OverheadDomains(32, TRD7); got != 25 {
		t.Errorf("overhead = %d, want 25", got)
	}
}

func TestOverheadMonotoneInTRD(t *testing.T) {
	// Wider windows pull the ports closer to the middle, shrinking
	// overhead (§III-A: TR-constrained ports reduce overhead less than
	// optimally-placed ones).
	o3 := OverheadDomains(32, TRD3)
	o5 := OverheadDomains(32, TRD5)
	o7 := OverheadDomains(32, TRD7)
	if !(o3 > o5 && o5 > o7) {
		t.Errorf("overhead not monotone: %d, %d, %d", o3, o5, o7)
	}
}

func TestTRDProperties(t *testing.T) {
	if TRD3.MaxAddOperands() != 2 {
		t.Errorf("TRD3 add operands = %d, want 2", TRD3.MaxAddOperands())
	}
	if TRD5.MaxAddOperands() != 3 {
		t.Errorf("TRD5 add operands = %d, want 3", TRD5.MaxAddOperands())
	}
	if TRD7.MaxAddOperands() != 5 {
		t.Errorf("TRD7 add operands = %d, want 5", TRD7.MaxAddOperands())
	}
	if TRD3.HasSuperCarry() {
		t.Error("TRD3 cannot produce a super-carry")
	}
	if !TRD7.HasSuperCarry() || !TRD5.HasSuperCarry() {
		t.Error("TRD5/TRD7 must produce a super-carry")
	}
	if TRD(4).Valid() || TRD(9).Valid() {
		t.Error("invalid TRDs accepted")
	}
}

func TestValidate(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	bad := cfg
	bad.TRD = TRD(6)
	if err := bad.Validate(); err == nil {
		t.Error("TRD=6 accepted")
	}
	bad = cfg
	bad.Geometry.RowsPerDBC = 4
	if err := bad.Validate(); err == nil {
		t.Error("rows < TRD accepted")
	}
	bad = cfg
	bad.TRFaultProb = 2
	if err := bad.Validate(); err == nil {
		t.Error("probability 2 accepted")
	}
}

func TestBlockSizes(t *testing.T) {
	for _, b := range []int{8, 64, 512} {
		if !ValidBlockSize(b) {
			t.Errorf("blocksize %d rejected", b)
		}
	}
	for _, b := range []int{0, 7, 9, 1024} {
		if ValidBlockSize(b) {
			t.Errorf("blocksize %d accepted", b)
		}
	}
}

func TestEnergyTRMonotone(t *testing.T) {
	e := DefaultEnergy()
	if !(e.TRPJ(TRD3) < e.TRPJ(TRD5) && e.TRPJ(TRD5) < e.TRPJ(TRD7)) {
		t.Error("TR energy must grow with window length")
	}
}

func TestDDRTimings(t *testing.T) {
	tm := DefaultTiming()
	// Table II: DRAM 20-8-8-8-8; DWM 9-4-S-4-4 with no precharge.
	if tm.DRAM.TRAS != 20 || tm.DRAM.TRCD != 8 || tm.DRAM.TRP != 8 {
		t.Errorf("DRAM timings %+v", tm.DRAM)
	}
	if tm.DWM.TRP != 0 || tm.DWM.TRCD != 4 {
		t.Errorf("DWM timings %+v", tm.DWM)
	}
	// A DWM row read with 3 shifts: tRCD + tCAS + 3·S.
	if got := tm.DWM.RowCycleRead(3); got != 4+4+3 {
		t.Errorf("DWM row read = %d cycles, want 11", got)
	}
	if got := tm.DRAM.RowCycleRead(0); got != 8+8+8 {
		t.Errorf("DRAM row read = %d cycles, want 24", got)
	}
}
