// Package params holds the device, circuit, timing, energy, and geometry
// constants used throughout the CORUSCANT simulator.
//
// The constants fall into two groups:
//
//   - Published values quoted directly from the paper (Table II system
//     parameters, Xeon X5670 energy figures, DDR3-1600 timings).
//   - Calibrated component values (per-primitive energies and areas)
//     chosen so that the anchor operations of Table III — the 8-bit
//     add and multiply costs — land on the published numbers. Each
//     calibrated constant documents its anchor.
package params

import (
	"errors"
	"fmt"
)

// ErrBadTRD reports a transverse-read-distance violation: an unsupported
// TRD value, or an operation that does not fit the TR window the TRD
// defines (too many operands, an invalid redundancy degree). Wrapped by
// the validation errors of this package, pim and isa; test with
// errors.Is.
var ErrBadTRD = errors.New("params: invalid TRD or TR-window constraint")

// TRD is a transverse-read distance: the maximum number of domains that a
// single transverse read can sense between two access ports (inclusive of
// the domains under both ports). The paper evaluates TRD ∈ {3, 5, 7}.
type TRD int

// Supported transverse read distances.
const (
	TRD3 TRD = 3
	TRD5 TRD = 5
	TRD7 TRD = 7
)

// Valid reports whether t is one of the TRDs supported by the sensing
// circuit (odd values from 3 to 7, per the paper's sensitivity study).
func (t TRD) Valid() bool { return t == TRD3 || t == TRD5 || t == TRD7 }

func (t TRD) String() string { return fmt.Sprintf("TRD=%d", int(t)) }

// MaxAddOperands returns the largest number of operands a single
// multi-operand addition can take: two window slots are reserved for the
// incoming carry C and super-carry C' (only one slot for TRD=3, which has
// no super-carry because a count of at most 3 fits in two bits).
func (t TRD) MaxAddOperands() int {
	if t == TRD3 {
		return 1 + 1 // one operand slot + carry; add is 2-operand via chain slot reuse
	}
	return int(t) - 2
}

// MaxBulkOperands returns the largest number of operands for a bulk
// bitwise operation, which uses the full window.
func (t TRD) MaxBulkOperands() int { return int(t) }

// HasSuperCarry reports whether the TR level range is wide enough to
// produce the super-carry C' (needs counts ≥ 4, i.e. three count bits).
func (t TRD) HasSuperCarry() bool { return t >= 4 }

// Geometry describes the CORUSCANT main-memory organization (Table II)
// and the DBC internal layout (Fig. 2(d)).
type Geometry struct {
	Banks            int // banks in the memory (Table II: 32)
	SubarraysPerBank int // subarrays per bank (Table II: 64)
	TilesPerSubarray int // tiles per subarray (Table II: 16)
	DBCsPerTile      int // DBCs per tile (Table II: 15 + 1 PIM)
	PIMDBCsPerTile   int // PIM-enabled DBCs per tile (Table II: 1)
	PIMTilesPerSub   int // tiles per subarray with PIM DBCs (§III-B: 1)

	TrackWidth int // X: nanowires per DBC = bits per row (512)
	RowsPerDBC int // Y: data domains per nanowire = row addresses (32)
}

// DefaultGeometry returns the Table II configuration: a 1 GB memory of
// 32 banks × 64 subarrays × 16 tiles × 16 DBCs × (512 × 32) bits.
func DefaultGeometry() Geometry {
	return Geometry{
		Banks:            32,
		SubarraysPerBank: 64,
		TilesPerSubarray: 16,
		DBCsPerTile:      16,
		PIMDBCsPerTile:   1,
		PIMTilesPerSub:   1,
		TrackWidth:       512,
		RowsPerDBC:       32,
	}
}

// TotalBytes returns the memory capacity implied by the geometry.
func (g Geometry) TotalBytes() int64 {
	bitsPerDBC := int64(g.TrackWidth) * int64(g.RowsPerDBC)
	return int64(g.Banks) * int64(g.SubarraysPerBank) * int64(g.TilesPerSubarray) *
		int64(g.DBCsPerTile) * bitsPerDBC / 8
}

// PIMDBCs returns the number of concurrently dispatchable PIM DBCs in
// high-throughput mode: one per subarray, since a subarray's PIM DBCs
// share the local sensing circuitry and row buffer (Fig. 2(c)).
func (g Geometry) PIMDBCs() int {
	return g.Banks * g.SubarraysPerBank * g.PIMTilesPerSub * g.PIMDBCsPerTile
}

// TotalPIMDBCs returns every PIM-enabled DBC in the memory (Table II:
// one of each tile's 16 DBCs), the peak-throughput parallelism used by
// the §V-E TOPS figure.
func (g Geometry) TotalPIMDBCs() int {
	return g.Banks * g.SubarraysPerBank * g.TilesPerSubarray * g.PIMDBCsPerTile
}

// PortPlacement returns the 0-indexed data-row positions of the left and
// right access ports for a nanowire with rows data rows and a window of
// trd domains. The ports are centred (§III-A: for Y=32 and TRD=7 the
// ports sit at 1-indexed positions 14 and 20, i.e. 0-indexed 13 and 19).
func PortPlacement(rows int, trd TRD) (left, right int) {
	left = (rows - int(trd) + 1) / 2
	right = left + int(trd) - 1
	return left, right
}

// OverheadDomains returns the number of extra (non-data) domains a
// nanowire needs so that every data row can reach its nearest port
// without data falling off an extremity. For Y=32, TRD=7 this is 25,
// matching §III-A ("the overhead domains would only reduce from 31 to 25").
func OverheadDomains(rows int, trd TRD) int {
	left, right := PortPlacement(rows, trd)
	// Rows left of the window align to the left port (max shift = left);
	// rows right of it align to the right port (max shift = rows-1-right).
	return left + (rows - 1 - right)
}

// Timing holds cycle-domain timing constants.
type Timing struct {
	DeviceCycleNS float64 // nanowire/DBC op cycle, §V-B: 1 ns
	MemCycleNS    float64 // DDR bus cycle, Table II: 1.25 ns
	BusMHz        int     // Table II: 1000 MHz

	// DDR command timings in memory cycles (Table II).
	// DRAM: tRAS-tRCD-tRP-tCAS-tWR = 20-8-8-8-8.
	// DWM replaces precharge with shifting: 9-4-S-4-4.
	DRAM DDRTimings
	DWM  DDRTimings
}

// DDRTimings is a DDR3-style command timing tuple, in memory cycles.
// For DWM, TRP is zero and shift cycles are charged per DW shift instead
// (spintronic cells need no precharge; see §V-C).
type DDRTimings struct {
	TRAS, TRCD, TRP, TCAS, TWR int
	ShiftPerStep               int // DWM only: cycles per single-domain shift ("S")
}

// RowCycleRead returns the cycles to activate+read+restore one row,
// given an additional shift distance (DWM) in steps.
func (t DDRTimings) RowCycleRead(shiftSteps int) int {
	return t.TRCD + t.TCAS + t.TRP + shiftSteps*t.ShiftPerStep
}

// RowCycleWrite returns the cycles to activate+write one row.
func (t DDRTimings) RowCycleWrite(shiftSteps int) int {
	return t.TRCD + t.TWR + t.TRP + shiftSteps*t.ShiftPerStep
}

// DefaultTiming returns the Table II timing configuration.
func DefaultTiming() Timing {
	return Timing{
		DeviceCycleNS: 1.0,
		MemCycleNS:    1.25,
		BusMHz:        1000,
		DRAM:          DDRTimings{TRAS: 20, TRCD: 8, TRP: 8, TCAS: 8, TWR: 8},
		DWM:           DDRTimings{TRAS: 9, TRCD: 4, TRP: 0, TCAS: 4, TWR: 4, ShiftPerStep: 1},
	}
}

// Energy holds per-primitive energies in picojoules. The component values
// are calibrated so the Table III anchors reproduce:
//
//	8-bit 2-op add, TRD=3:  8·TR3 + 18·W + 2·Sh ≈ 10.15 pJ
//	8-bit 5-op add, TRD=7:  8·TR7 + 29·W + 5·Sh ≈ 22.14 pJ
//
// with Write/Shift at the paper's published ~0.1 pJ device values (§I).
type Energy struct {
	WritePJ float64 // per-bit access-port write (§I: circa 0.1 pJ)
	ReadPJ  float64 // per-bit access-port read
	ShiftPJ float64 // per nanowire per single-domain shift
	TWPJ    float64 // transverse write (write + segmented shift in one op)

	// TRPJ[t] is the energy of one transverse read over a window of t
	// domains, including the multi-level sense amplifier and the PIM
	// logic block evaluation. Calibrated anchors: Table III.
	TR3PJ float64
	TR5PJ float64
	TR7PJ float64

	// CPU-side constants (Table II / [3]).
	CPUAdd32PJ   float64 // 111 pJ per 32-bit add
	CPUMult32PJ  float64 // 164 pJ per 32-bit multiply
	TransPJPerB  float64 // 1250 pJ per byte moved over the memory bus
	DRAMRowActPJ float64 // DRAM row activation (for Ambit/ELP2IM models)
}

// DefaultEnergy returns the calibrated energy table.
func DefaultEnergy() Energy {
	return Energy{
		WritePJ: 0.1,
		ReadPJ:  0.08,
		ShiftPJ: 0.1,
		TWPJ:    0.14, // write plus a one-window segmented shift
		// Solving the Table III anchors against the traced primitive
		// counts of the 8-bit adds (TRD=7 five-operand: 40 shift-wire
		// events, 61 written bits, 8 TRs; TRD=3 two-operand: 8 shift
		// wires, 31 written bits, 8 TRs) with W=Sh=0.1 pJ:
		//   TR7: (22.14 − 4.0 − 6.1)/8 = 1.505
		//   TR3: (10.15 − 0.8 − 3.1)/8 = 0.781
		// TR5 interpolated linearly on window length.
		TR3PJ:        0.781,
		TR5PJ:        1.143,
		TR7PJ:        1.505,
		CPUAdd32PJ:   111,
		CPUMult32PJ:  164,
		TransPJPerB:  1250,
		DRAMRowActPJ: 909, // per-row activation energy used by the DRAM PIM models
	}
}

// TRPJ returns the transverse-read energy for the given window length.
func (e Energy) TRPJ(t TRD) float64 {
	switch t {
	case TRD3:
		return e.TR3PJ
	case TRD5:
		return e.TR5PJ
	default:
		return e.TR7PJ
	}
}

// Config bundles the full parameter set for a CORUSCANT instance.
type Config struct {
	TRD      TRD
	Geometry Geometry
	Timing   Timing
	Energy   Energy

	// TRFaultProb is the probability that a single transverse read
	// returns a level off by one (§V-F: circa 1e-6 for 4 domains).
	// Zero disables fault injection.
	TRFaultProb float64
	// ShiftFaultProb is the probability of an over/under-shift per
	// shift step. The paper assumes orthogonal fault tolerance makes
	// this negligible; it is exposed for the reliability experiments.
	ShiftFaultProb float64
}

// DefaultConfig returns the paper's primary configuration (TRD=7,
// Table II geometry, calibrated energies, no fault injection).
func DefaultConfig() Config {
	return Config{
		TRD:      TRD7,
		Geometry: DefaultGeometry(),
		Timing:   DefaultTiming(),
		Energy:   DefaultEnergy(),
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if !c.TRD.Valid() {
		return fmt.Errorf("params: unsupported TRD %d (want 3, 5, or 7): %w", int(c.TRD), ErrBadTRD)
	}
	g := c.Geometry
	if g.TrackWidth <= 0 || g.RowsPerDBC <= 0 {
		return fmt.Errorf("params: non-positive DBC dimensions %dx%d", g.TrackWidth, g.RowsPerDBC)
	}
	if g.RowsPerDBC < int(c.TRD) {
		return fmt.Errorf("params: DBC rows %d smaller than TRD %d: %w", g.RowsPerDBC, int(c.TRD), ErrBadTRD)
	}
	if c.TRFaultProb < 0 || c.TRFaultProb > 1 {
		return fmt.Errorf("params: TR fault probability %v out of [0,1]", c.TRFaultProb)
	}
	if c.ShiftFaultProb < 0 || c.ShiftFaultProb > 1 {
		return fmt.Errorf("params: shift fault probability %v out of [0,1]", c.ShiftFaultProb)
	}
	return nil
}

// BlockSizes are the word widths supported by the cpim instruction's
// blocksize field (§III-E).
var BlockSizes = []int{8, 16, 32, 64, 128, 256, 512}

// ValidBlockSize reports whether b is a legal cpim blocksize.
func ValidBlockSize(b int) bool {
	for _, v := range BlockSizes {
		if v == b {
			return true
		}
	}
	return false
}
