package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestJSONLSinkOneObjectPerLine(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	r := NewRecorder(testConfig(), sink)
	r.Step("d0", OpWrite, 3)
	r.Fault("d0", "tr-level", 1)
	r.Begin("d0", "add")
	r.End("d0")
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 4:\n%s", len(lines), buf.String())
	}
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	var decoded []map[string]any
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		decoded = append(decoded, m)
	}
	if decoded[0]["op"] != "write" || decoded[0]["ph"] != "step" || decoded[0]["wires"] != float64(3) {
		t.Errorf("step line %v", decoded[0])
	}
	if decoded[1]["op"] != "fault" || decoded[1]["name"] != "tr-level" || decoded[1]["ph"] != "instant" {
		t.Errorf("fault line %v", decoded[1])
	}
	if decoded[2]["ph"] != "begin" || decoded[3]["ph"] != "end" {
		t.Errorf("span lines %v / %v", decoded[2], decoded[3])
	}
	// The step line prices 3 written bits at 1 pJ each.
	if decoded[0]["energy_pj"] != float64(3) {
		t.Errorf("energy_pj=%v, want 3", decoded[0]["energy_pj"])
	}
}

func TestMetricsWriteTextIsStable(t *testing.T) {
	r := NewRecorder(testConfig())
	r.Step("b", OpShift, 2)
	r.Step("a", OpWrite, 4)
	r.Span("a", "op")()
	var first, second bytes.Buffer
	if err := r.Metrics().WriteText(&first); err != nil {
		t.Fatal(err)
	}
	if err := r.Metrics().WriteText(&second); err != nil {
		t.Fatal(err)
	}
	if first.String() != second.String() {
		t.Fatal("WriteText output is not deterministic")
	}
	for _, want := range []string{"## per op kind", "## per source", "## spans", "shift", "write"} {
		if !strings.Contains(first.String(), want) {
			t.Errorf("report missing %q:\n%s", want, first.String())
		}
	}
	// Sources render sorted: "a" before "b".
	if ai, bi := strings.Index(first.String(), "\na "), strings.Index(first.String(), "\nb "); ai == -1 || bi == -1 || ai > bi {
		t.Errorf("sources not sorted in report:\n%s", first.String())
	}
}
