package telemetry

import "sync"

// RingSink keeps the most recent events in a fixed-capacity ring
// buffer, for in-process inspection (tests, the façade, post-mortem
// dumps) without unbounded memory growth.
type RingSink struct {
	mu   sync.Mutex
	buf  []Event
	next int
	full bool
}

// NewRingSink returns a ring buffer holding the last capacity events
// (minimum 1).
func NewRingSink(capacity int) *RingSink {
	if capacity < 1 {
		capacity = 1
	}
	return &RingSink{buf: make([]Event, capacity)}
}

// Emit stores the event, evicting the oldest when full.
func (s *RingSink) Emit(e Event) {
	s.mu.Lock()
	s.buf[s.next] = e
	s.next++
	if s.next == len(s.buf) {
		s.next = 0
		s.full = true
	}
	s.mu.Unlock()
}

// Events returns the buffered events, oldest first, as an owned copy.
func (s *RingSink) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.full {
		return append([]Event(nil), s.buf[:s.next]...)
	}
	out := make([]Event, 0, len(s.buf))
	out = append(out, s.buf[s.next:]...)
	out = append(out, s.buf[:s.next]...)
	return out
}

// Len returns the number of buffered events.
func (s *RingSink) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.full {
		return len(s.buf)
	}
	return s.next
}

// Close is a no-op; the buffer stays readable.
func (s *RingSink) Close() error { return nil }
