package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
	"sort"
	"sync"
)

// ChromeSink streams the event stream in the Chrome trace_event JSON
// array format, loadable directly in Perfetto (ui.perfetto.dev) or
// chrome://tracing. One process (pid 1) represents the memory; each
// Source becomes a named thread lane, so per-DBC activity renders as
// parallel tracks on a shared timeline.
//
// The viewer's microsecond timestamps carry device cycles one-to-one:
// 1 µs on screen = 1 device cycle. Mapping:
//
//   - primitive steps → complete events (ph "X", dur 1) named after the
//     op kind, with wires and energy_pj in args;
//   - spans → duration pairs (ph "B"/"E") named after the operation;
//   - faults and row moves → instant events (ph "i", thread scope).
//
// Events are streamed as emitted; Close terminates the JSON array and
// flushes (the caller owns the underlying writer).
type ChromeSink struct {
	mu     sync.Mutex
	w      *bufio.Writer
	tids   map[Source]int
	wrote  bool
	closed bool
	err    error
}

// chromeEvent is one trace_event record.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Ph    string         `json:"ph"`
	Ts    uint64         `json:"ts"`
	Dur   *uint64        `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// NewChromeSink returns a sink streaming a trace_event JSON array to w.
func NewChromeSink(w io.Writer) *ChromeSink {
	return &ChromeSink{w: bufio.NewWriter(w), tids: make(map[Source]int)}
}

const chromePid = 1

// tid maps a source to its thread lane, emitting the thread_name
// metadata event on first sight so the viewer labels the track.
func (s *ChromeSink) tid(src Source) int {
	if t, ok := s.tids[src]; ok {
		return t
	}
	t := len(s.tids) + 1
	s.tids[src] = t
	s.write(chromeEvent{
		Name: "thread_name", Ph: "M", Pid: chromePid, Tid: t,
		Args: map[string]any{"name": string(src)},
	})
	return t
}

// write appends one record to the JSON array, retaining the first error.
func (s *ChromeSink) write(e chromeEvent) {
	if s.err != nil {
		return
	}
	b, err := json.Marshal(e)
	if err != nil {
		s.err = err
		return
	}
	lead := ",\n"
	if !s.wrote {
		lead = "[\n"
		s.wrote = true
	}
	if _, err := s.w.WriteString(lead); err != nil {
		s.err = err
		return
	}
	if _, err := s.w.Write(b); err != nil {
		s.err = err
	}
}

var one = uint64(1)

// Emit converts and streams one telemetry event.
func (s *ChromeSink) Emit(e Event) {
	if e.Op == OpWindow {
		// Scheduling annotations, not device activity: window markers
		// carry no source and would only clutter the timeline; the
		// makespan they encode is exported as a counter by callers.
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	t := s.tid(e.Src)
	switch e.Phase {
	case PhaseStep:
		args := map[string]any{"wires": e.Wires, "energy_pj": e.EnergyPJ}
		// Spatial attribution, when present, rides in extra args so
		// Perfetto tooltips show where the step landed. Unattributed
		// events keep the original schema exactly.
		if e.Row > 0 {
			args["row"] = e.Row - 1
			switch e.Pos {
			case PortLeft:
				args["port"] = "left"
			case PortRight:
				args["port"] = "right"
			case PortBoth:
				args["port"] = "both"
			}
		} else if e.Pos > 0 {
			args["head"] = e.Pos - PosBias
		}
		s.write(chromeEvent{
			Name: e.Op.String(), Cat: "primitive", Ph: "X", Ts: e.Cycle, Dur: &one,
			Pid: chromePid, Tid: t,
			Args: args,
		})
	case PhaseBegin:
		s.write(chromeEvent{Name: e.Name, Cat: "span", Ph: "B", Ts: e.Cycle, Pid: chromePid, Tid: t})
	case PhaseEnd:
		s.write(chromeEvent{Name: e.Name, Cat: "span", Ph: "E", Ts: e.Cycle, Pid: chromePid, Tid: t})
	case PhaseInstant:
		name := e.Op.String()
		if e.Name != "" {
			name += ":" + e.Name
		}
		cat := "move"
		switch e.Op {
		case OpFault:
			cat = "fault"
		case OpMark:
			cat = "mark"
		}
		s.write(chromeEvent{
			Name: name, Cat: cat, Ph: "i", Ts: e.Cycle, Pid: chromePid, Tid: t,
			Scope: "t", Args: map[string]any{"wires": e.Wires},
		})
	}
}

// EmitCounter writes a counter-phase ('C') sample on the source's
// lane: name is the counter track and values its series (Perfetto
// renders each series as a stacked heatline). Timestamps must be
// non-decreasing per source, like every other event of the lane; the
// profiler derives them from event cycles, which satisfy this by
// construction. Empty values are dropped — a counter record without
// args is invalid trace_event JSON.
func (s *ChromeSink) EmitCounter(src Source, ts uint64, name string, values map[string]float64) {
	if len(values) == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	args := make(map[string]any, len(values))
	for k, v := range values {
		args[k] = v
	}
	s.write(chromeEvent{
		Name: name, Cat: "counter", Ph: "C", Ts: ts,
		Pid: chromePid, Tid: s.tid(src), Args: args,
	})
}

// Close terminates the JSON array and flushes. Emits after Close are
// dropped. Closing an empty sink still writes a valid empty array.
func (s *ChromeSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return s.err
	}
	s.closed = true
	if s.err == nil {
		tail := "\n]\n"
		if !s.wrote {
			tail = "[]\n"
		}
		if _, err := s.w.WriteString(tail); err != nil {
			s.err = err
		}
	}
	if err := s.w.Flush(); err != nil && s.err == nil {
		s.err = err
	}
	return s.err
}

// Lanes returns the source → thread-lane mapping assigned so far, for
// tests and tooling (sorted iteration is the caller's concern).
func (s *ChromeSink) Lanes() map[Source]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[Source]int, len(s.tids))
	for k, v := range s.tids {
		out[k] = v
	}
	return out
}

// SortedSources returns the sink's sources in lane order.
func (s *ChromeSink) SortedSources() []Source {
	s.mu.Lock()
	defer s.mu.Unlock()
	srcs := make([]Source, 0, len(s.tids))
	for k := range s.tids {
		srcs = append(srcs, k)
	}
	sort.Slice(srcs, func(i, j int) bool { return s.tids[srcs[i]] < s.tids[srcs[j]] })
	return srcs
}
