package telemetry

import (
	"bytes"
	"strings"
	"testing"
)

// TestChromeSinkGolden drives a recorder through a fixed sequence and
// compares the exact trace_event output, pinning the export schema.
func TestChromeSinkGolden(t *testing.T) {
	var buf bytes.Buffer
	sink := NewChromeSink(&buf)
	r := NewRecorder(testConfig(), sink)

	r.Begin("d0", "add")
	r.Step("d0", OpWrite, 2) // cycle 0: 2 bits * 1 pJ
	r.Step("d0", OpShift, 2) // cycle 1: 2 wires * 0.5 pJ
	r.Fault("d0", "tr-level", 1)
	r.End("d0")
	r.Move("d1", OpRowRead, 4)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	want := strings.Join([]string{
		"[",
		`{"name":"thread_name","ph":"M","ts":0,"pid":1,"tid":1,"args":{"name":"d0"}},`,
		`{"name":"add","cat":"span","ph":"B","ts":0,"pid":1,"tid":1},`,
		`{"name":"write","cat":"primitive","ph":"X","ts":0,"dur":1,"pid":1,"tid":1,"args":{"energy_pj":2,"wires":2}},`,
		`{"name":"shift","cat":"primitive","ph":"X","ts":1,"dur":1,"pid":1,"tid":1,"args":{"energy_pj":1,"wires":2}},`,
		`{"name":"fault:tr-level","cat":"fault","ph":"i","ts":2,"pid":1,"tid":1,"s":"t","args":{"wires":1}},`,
		`{"name":"add","cat":"span","ph":"E","ts":2,"pid":1,"tid":1},`,
		`{"name":"thread_name","ph":"M","ts":0,"pid":1,"tid":2,"args":{"name":"d1"}},`,
		`{"name":"row-read","cat":"move","ph":"i","ts":2,"pid":1,"tid":2,"s":"t","args":{"wires":4}}`,
		"]",
		"",
	}, "\n")
	// The streaming writer puts each record on its own line with ",\n"
	// separators; normalize the leading separator placement.
	got := buf.String()
	if got != want {
		t.Fatalf("chrome export mismatch:\n got: %q\nwant: %q", got, want)
	}

	if lanes := sink.Lanes(); lanes["d0"] != 1 || lanes["d1"] != 2 {
		t.Errorf("lanes=%v, want d0:1 d1:2", lanes)
	}
	if srcs := sink.SortedSources(); len(srcs) != 2 || srcs[0] != "d0" || srcs[1] != "d1" {
		t.Errorf("sorted sources=%v", srcs)
	}
}

func TestChromeSinkEmptyTraceIsValidJSON(t *testing.T) {
	var buf bytes.Buffer
	sink := NewChromeSink(&buf)
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "[]\n" {
		t.Fatalf("empty trace = %q, want %q", got, "[]\n")
	}
}

func TestChromeSinkDropsEmitsAfterClose(t *testing.T) {
	var buf bytes.Buffer
	sink := NewChromeSink(&buf)
	sink.Emit(Event{Op: OpShift, Phase: PhaseStep, Src: "d0"})
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	n := buf.Len()
	sink.Emit(Event{Op: OpShift, Phase: PhaseStep, Src: "d0"})
	if buf.Len() != n {
		t.Fatal("Emit after Close wrote output")
	}
	if _, err := ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
}

// TestValidateChromeTraceRejectsBadTraces exercises the validator's
// failure modes so the CLI tests can rely on it.
func TestValidateChromeTraceRejectsBadTraces(t *testing.T) {
	bad := []struct {
		name string
		data string
	}{
		{"not-array", `{"name":"x"}`},
		{"missing-fields", `[{"ph":"X","ts":0}]`},
		{"no-dur", `[{"name":"w","ph":"X","ts":0,"pid":1,"tid":1}]`},
		{"ts-regression", `[{"name":"a","ph":"X","ts":5,"dur":1,"pid":1,"tid":1},{"name":"b","ph":"X","ts":4,"dur":1,"pid":1,"tid":1}]`},
		{"unmatched-end", `[{"name":"s","ph":"E","ts":0,"pid":1,"tid":1}]`},
		{"unclosed-begin", `[{"name":"s","ph":"B","ts":0,"pid":1,"tid":1}]`},
		{"crossed-spans", `[{"name":"a","ph":"B","ts":0,"pid":1,"tid":1},{"name":"b","ph":"B","ts":1,"pid":1,"tid":1},{"name":"a","ph":"E","ts":2,"pid":1,"tid":1},{"name":"b","ph":"E","ts":3,"pid":1,"tid":1}]`},
		{"instant-no-scope", `[{"name":"f","ph":"i","ts":0,"pid":1,"tid":1}]`},
		{"unknown-phase", `[{"name":"x","ph":"Z","ts":0,"pid":1,"tid":1}]`},
	}
	for _, tc := range bad {
		if _, err := ValidateChromeTrace([]byte(tc.data)); err == nil {
			t.Errorf("%s: validator accepted invalid trace", tc.name)
		}
	}
}
