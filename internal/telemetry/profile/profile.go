// Package profile is the racetrack hardware profiler: a telemetry.Sink
// that attributes the event stream spatially, the way the performance
// of a racetrack memory is actually decided — which DBC shifted how
// far, which rows absorb the write wear, where the access-port heads
// spend their cycles, and where the energy goes.
//
// Where telemetry.Metrics aggregates by op kind and source, the
// profiler keeps per-DBC spatial state: per-row access/write counts
// (the wear heatmap endurance planning needs), head-position occupancy
// (how the shift excursion is used), shift-distance histograms per
// access port (the locality lever of the "Perspectives of Racetrack
// Memory" survey), and energy split by primitive kind. It is fed by
// the spatially-attributed events the dbc layer emits (Event.Row /
// Event.Pos, see telemetry.StepShift/StepPort): shift steps carry the
// head offset after the step, port accesses the data row under the
// port. Shift distance is derived structurally — a run of consecutive
// shift steps on one DBC ends at the port access that needed the
// alignment, so the run length is exactly the align distance the
// placement cost model predicts.
//
// Overhead contract: the profiler attaches as an ordinary sink, so the
// nil-recorder engine path is untouched (one branch per hook), and a
// recorder without a profiler pays nothing new. ExecuteBatch capture
// recorders replay their streams — including the spatial fields —
// into the main recorder, so profiled counters from a parallel batch
// are bit-identical to a serial run.
//
// The aggregate is exposed three ways: Prometheus text exposition
// (WritePrometheus / Handler, mounted on -debug-addr next to expvar
// and pprof), Chrome trace counter events (WithChromeCounters, so
// per-DBC heatlines render in Perfetto), and the `coruscant top` live
// terminal view (RenderTop).
package profile

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/device"
	"repro/internal/params"
	"repro/internal/telemetry"
)

// Port indexes the per-access-port aggregates: 0 = left, 1 = right.
const (
	PortLeft = iota
	PortRight
	numPorts
)

var portNames = [numPorts]string{"left", "right"}

// dbcProf is the spatial aggregate of one telemetry source (one DBC,
// or any caller-labelled unit).
type dbcProf struct {
	steps    [telemetry.NumOps]uint64  // control steps / instants per op kind
	energyPJ [telemetry.NumOps]float64 // energy per op kind
	totalPJ  float64

	rowReads  []uint64 // per-row port-read counts (grown on demand)
	rowWrites []uint64 // per-row port-write + TW counts (wear)

	occupancy map[int]uint64 // head offset -> shift steps ending there

	shiftRun  uint64                   // current consecutive shift-step run
	portDist  [numPorts]telemetry.Hist // align distance per consumed port
	shiftDist telemetry.Hist           // align distance regardless of port

	lastCycle uint64 // cycle of the newest event (counter timestamps)
	counted   uint64 // events since the last Chrome counter sample
}

// Profiler aggregates spatially-attributed telemetry events. Attach it
// to a Recorder as a sink; all methods are safe for concurrent use.
type Profiler struct {
	mu   sync.Mutex
	cfg  params.Config
	gap  int // right-port row minus left-port row (TRD-1)
	srcs map[telemetry.Source]*dbcProf

	counters     *telemetry.ChromeSink
	counterEvery uint64

	// labels is the rendered constant-label prefix (`shard="3",`) every
	// Prometheus sample of this profiler carries; see WithLabel.
	labels string
}

// Option configures a Profiler.
type Option func(*Profiler)

// WithChromeCounters streams per-DBC counter ('C') samples into the
// given Chrome sink: every `every` events per source (default 64 when
// every <= 0), the source's cumulative shift steps, row writes and
// energy are sampled at the current cycle, so Perfetto renders them as
// per-DBC heatlines alongside the event tracks. Sampling is a pure
// function of the event stream, so capture-replayed batches produce
// the same counters as serial runs.
func WithChromeCounters(sink *telemetry.ChromeSink, every int) Option {
	if every <= 0 {
		every = 64
	}
	return func(p *Profiler) {
		p.counters = sink
		p.counterEvery = uint64(every)
	}
}

// WithLabel attaches a constant label (e.g. shard="3") to every
// Prometheus sample the profiler emits. A multi-shard service gives
// each shard's profiler its own shard label, so a combined /metrics
// page (WriteManyPrometheus) keeps same-named DBC series distinct —
// and `coruscant top` renders one utilization line per (shard, DBC)
// instead of silently merging them.
func WithLabel(name, value string) Option {
	return func(p *Profiler) {
		p.labels += fmt.Sprintf("%s=%q,", name, value)
	}
}

// New returns an empty profiler for the given device configuration
// (the geometry scales the wear and occupancy axes).
func New(cfg params.Config, opts ...Option) *Profiler {
	p := &Profiler{
		cfg:  cfg,
		gap:  int(cfg.TRD) - 1,
		srcs: make(map[telemetry.Source]*dbcProf),
	}
	for _, o := range opts {
		o(p)
	}
	return p
}

func (p *Profiler) src(s telemetry.Source) *dbcProf {
	d := p.srcs[s]
	if d == nil {
		d = &dbcProf{occupancy: make(map[int]uint64)}
		p.srcs[s] = d
	}
	return d
}

// Emit folds one telemetry event into the spatial aggregate (Sink).
func (p *Profiler) Emit(e telemetry.Event) {
	if e.Op == telemetry.OpWindow {
		// Window markers are scheduling annotations with no source or
		// device work; folding them in would fabricate an unattributed
		// DBC and make windowed and serial snapshots diverge.
		return
	}
	p.mu.Lock()
	d := p.src(e.Src)
	if e.Cycle > d.lastCycle {
		d.lastCycle = e.Cycle
	}
	switch e.Phase {
	case telemetry.PhaseStep:
		d.steps[e.Op]++
		d.energyPJ[e.Op] += e.EnergyPJ
		d.totalPJ += e.EnergyPJ
		if e.Op == telemetry.OpShift {
			d.shiftRun++
			if e.Pos > 0 {
				d.occupancy[e.Pos-telemetry.PosBias]++
			}
		} else {
			d.endRun(e, p.gap)
		}
		p.sampleCounters(e.Src, d)
	case telemetry.PhaseInstant:
		d.steps[e.Op]++
		p.sampleCounters(e.Src, d)
	}
	p.mu.Unlock()
}

// endRun closes the current shift run at a non-shift step: the run
// length is the align distance that step needed. Port accesses also
// record per-row wear and attribute the run to the consumed port.
func (d *dbcProf) endRun(e telemetry.Event, gap int) {
	run := d.shiftRun
	d.shiftRun = 0
	if run > 0 {
		d.shiftDist.Observe(run)
	}
	if e.Row <= 0 {
		return
	}
	row := e.Row - 1
	switch e.Op {
	case telemetry.OpRead:
		d.wear(&d.rowReads, row)
	case telemetry.OpWrite, telemetry.OpTW:
		d.wear(&d.rowWrites, row)
	default:
		return
	}
	port := PortLeft
	switch e.Pos {
	case telemetry.PortRight:
		port = PortRight
	case telemetry.PortBoth:
		// Scatter across both ports: wear lands on both aligned rows
		// (the event's row is the left-port one, the right-port row
		// sits TRD-1 data rows further); the shift run is attributed
		// once, to the left port.
		if e.Op != telemetry.OpRead {
			d.wear(&d.rowWrites, row+gap)
		}
	}
	if run > 0 {
		d.portDist[port].Observe(run)
	}
}

// wear bumps a per-row counter, growing the slice to cover the row.
func (d *dbcProf) wear(rows *[]uint64, row int) {
	for len(*rows) <= row {
		*rows = append(*rows, 0)
	}
	(*rows)[row]++
}

func (p *Profiler) sampleCounters(src telemetry.Source, d *dbcProf) {
	if p.counters == nil {
		return
	}
	d.counted++
	if d.counted < p.counterEvery {
		return
	}
	d.counted = 0
	p.counters.EmitCounter(src, d.lastCycle, "hw."+string(src), map[string]float64{
		"shift_steps": float64(d.steps[telemetry.OpShift]),
		"row_writes":  float64(sum(d.rowWrites)),
		"energy_pj":   d.totalPJ,
		"busy_cycles": float64(d.busyCycles()),
	})
}

// busyCycles sums the source's control-step cycles — the per-DBC busy
// timeline the makespan accounting maximizes over.
func (d *dbcProf) busyCycles() uint64 {
	var n uint64
	for op := telemetry.OpShift; op <= telemetry.OpStall; op++ {
		n += d.steps[op]
	}
	return n
}

func sum(v []uint64) uint64 {
	var n uint64
	for _, x := range v {
		n += x
	}
	return n
}

// Close flushes nothing — the aggregate stays readable (Sink).
func (p *Profiler) Close() error { return nil }

// DBCSnapshot is the exported spatial aggregate of one source.
type DBCSnapshot struct {
	Src      string
	Steps    [telemetry.NumOps]uint64  // per op kind (indexed by telemetry.Op)
	EnergyPJ [telemetry.NumOps]float64 // per op kind
	TotalPJ  float64

	Cycles uint64 // control-step cycles attributed to the source

	RowReads  []uint64 // per-row port reads
	RowWrites []uint64 // per-row port writes + TWs (wear)

	Occupancy map[int]uint64 // head offset -> shift steps ending there

	ShiftDist telemetry.Hist           // align-run distance, any port
	PortDist  [numPorts]telemetry.Hist // align-run distance per port
}

// ShiftSteps returns the source's total shift-step count.
func (s DBCSnapshot) ShiftSteps() uint64 { return s.Steps[telemetry.OpShift] }

// WearTotal returns the source's total write wear (port writes + TWs).
func (s DBCSnapshot) WearTotal() uint64 { return sum(s.RowWrites) }

// HottestRow returns the row with the highest write wear and its
// count, or (-1, 0) when nothing was written.
func (s DBCSnapshot) HottestRow() (row int, writes uint64) {
	row = -1
	for r, n := range s.RowWrites {
		if n > writes {
			row, writes = r, n
		}
	}
	return row, writes
}

// Snapshot returns the per-source aggregates, sorted by source name,
// as owned copies.
func (p *Profiler) Snapshot() []DBCSnapshot {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]DBCSnapshot, 0, len(p.srcs))
	for src, d := range p.srcs {
		snap := DBCSnapshot{
			Src:       string(src),
			Steps:     d.steps,
			EnergyPJ:  d.energyPJ,
			TotalPJ:   d.totalPJ,
			RowReads:  append([]uint64(nil), d.rowReads...),
			RowWrites: append([]uint64(nil), d.rowWrites...),
			Occupancy: make(map[int]uint64, len(d.occupancy)),
			ShiftDist: d.shiftDist,
			PortDist:  d.portDist,
		}
		for off, n := range d.occupancy {
			snap.Occupancy[off] = n
		}
		for op := telemetry.OpShift; op <= telemetry.OpStall; op++ {
			snap.Cycles += d.steps[op]
		}
		out = append(out, snap)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Src < out[j].Src })
	return out
}

// ShiftStepsBySource returns the measured shift-step count per source,
// the counters `pimasm exec -profile` joins against the placement
// model's predictions.
func (p *Profiler) ShiftStepsBySource() map[string]uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]uint64, len(p.srcs))
	for src, d := range p.srcs {
		if n := d.steps[telemetry.OpShift]; n > 0 {
			out[string(src)] = n
		}
	}
	return out
}

// OffsetRange returns the legal head-offset excursion of the profiled
// geometry, bounding the occupancy axis.
func (p *Profiler) OffsetRange() (lo, hi int) {
	return device.OffsetRange(p.cfg.Geometry.RowsPerDBC, p.cfg.TRD)
}
